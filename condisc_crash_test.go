package condisc

import (
	"bytes"
	"fmt"
	"testing"

	"condisc/internal/journal"
)

func TestCrashRequiresReplication(t *testing.T) {
	d := New(8, Options{Seed: 31})
	defer d.Close()
	if _, err := d.Crash(d.IDAt(0)); err == nil {
		t.Fatal("Crash without replication succeeded")
	}
}

func TestCrashLosesNothingAcked(t *testing.T) {
	// The simulator's crash story: every settled write survives the
	// ungraceful death of any single server — the replicas re-materialize
	// the dead range, the journal records the crash, and the unknown-id
	// path stays an error.
	const keys = 300
	jrn := journal.New(1 << 12)
	d := New(16, Options{Seed: 33, Replication: 3, Journal: jrn})
	defer d.Close()
	for i := 0; i < keys; i++ {
		d.Put(i%d.N(), fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i)))
	}
	victim := d.IDAt(5)
	lost := d.ItemsOf(victim)
	repaired, err := d.Crash(victim)
	if err != nil {
		t.Fatalf("crash: %v", err)
	}
	if repaired < lost {
		t.Fatalf("crash destroyed %d items but repaired only %d", lost, repaired)
	}
	if d.N() != 15 {
		t.Fatalf("ring has %d servers after the crash, want 15", d.N())
	}
	for i := 0; i < keys; i++ {
		v, _, ok := d.Get(i%d.N(), fmt.Sprintf("key-%d", i))
		if !ok || !bytes.Equal(v, []byte(fmt.Sprintf("val-%d", i))) {
			t.Fatalf("key-%d lost by the crash: ok=%v v=%q", i, ok, v)
		}
	}
	absorbs := 0
	for _, rec := range jrn.Records() {
		if rec.Kind == journal.KindCrashAbsorb {
			absorbs++
		}
	}
	if absorbs != 1 {
		t.Fatalf("journal holds %d crash_absorb records, want 1", absorbs)
	}
	if _, err := d.Crash(victim); err == nil {
		t.Fatal("crashing an already-dead id succeeded")
	}
}

func TestSequentialCrashesWithRepairBetween(t *testing.T) {
	// Repair restores the replication factor, so a SECOND crash — of a
	// server that may well have been a replica holder for the first
	// victim's range — still loses nothing.
	const keys = 200
	d := New(12, Options{Seed: 35, Replication: 3})
	defer d.Close()
	for i := 0; i < keys; i++ {
		d.Put(i%d.N(), fmt.Sprintf("key-%d", i), []byte("v"))
	}
	for round := 0; round < 3; round++ {
		if _, err := d.Crash(d.IDAt(round * 2)); err != nil {
			t.Fatalf("crash %d: %v", round, err)
		}
		for i := 0; i < keys; i++ {
			if _, _, ok := d.Get(i%d.N(), fmt.Sprintf("key-%d", i)); !ok {
				t.Fatalf("key-%d lost after crash %d", i, round)
			}
		}
	}
	if d.N() != 9 {
		t.Fatalf("ring has %d servers after 3 crashes, want 9", d.N())
	}
}

func TestReplicaFallbackIsInvisibleOnHealthyRing(t *testing.T) {
	// A genuine miss on a healthy ring must stay a miss: the replicas
	// never hold anything the primaries don't, so the fallback cannot
	// invent values — and misses keep returning (nil, 0, false).
	d := New(8, Options{Seed: 37, Replication: 3})
	defer d.Close()
	d.Put(0, "present", []byte("v"))
	if _, _, ok := d.Get(1, "absent"); ok {
		t.Fatal("healthy-ring miss served a value")
	}
	if v, _, ok := d.Get(1, "present"); !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("healthy-ring hit: ok=%v v=%q", ok, v)
	}
}

func TestReplicationSurvivesChurnThenCrash(t *testing.T) {
	// Joins and leaves interleaved with writes, then a crash: the replica
	// plane must have tracked ownership moves well enough that the crash
	// still loses nothing (overwrites re-place copies; crash repair
	// re-spreads them).
	const keys = 150
	d := New(10, Options{Seed: 39, Replication: 3})
	defer d.Close()
	for i := 0; i < keys; i++ {
		d.Put(i%d.N(), fmt.Sprintf("key-%d", i), []byte("v1"))
	}
	d.Join()
	d.Join()
	if err := d.Leave(d.IDAt(3)); err != nil {
		t.Fatal(err)
	}
	// Overwrite everything post-churn: placement is re-resolved against
	// the new decomposition, restoring full replication for every key.
	for i := 0; i < keys; i++ {
		d.Put(i%d.N(), fmt.Sprintf("key-%d", i), []byte("v2"))
	}
	if _, err := d.Crash(d.IDAt(7)); err != nil {
		t.Fatalf("crash: %v", err)
	}
	for i := 0; i < keys; i++ {
		v, _, ok := d.Get(i%d.N(), fmt.Sprintf("key-%d", i))
		if !ok || !bytes.Equal(v, []byte("v2")) {
			t.Fatalf("key-%d after churn+crash: ok=%v v=%q", i, ok, v)
		}
	}
}
