// Package condisc is a Go implementation of the continuous-discrete
// approach to peer-to-peer networks (Naor & Wieder, "Novel Architectures
// for P2P Applications: the Continuous-Discrete Approach", SPAA 2003).
//
// The package root offers a high-level simulated Distance Halving DHT —
// join/leave, logarithmic lookups, and the paper's hot-spot caching
// protocol — while the full machinery lives in the internal packages:
//
//	internal/interval    exact fixed-point arithmetic on [0,1)
//	internal/continuous  the continuous DH graph and its path trees
//	internal/partition   dynamic decompositions + §4 ID selection
//	internal/dhgraph     the discrete DH graph (Theorems 2.1, 2.2)
//	internal/route       Fast and Distance Halving lookups (§2.2)
//	internal/cache       the §3 dynamic caching protocol
//	internal/overlap     the §6 fault-tolerant overlapping DHT
//	internal/expander    the §5 Gabber–Galil dynamic expander
//	internal/emulate     the §7 general graph emulation
//	internal/baselines   Chord, Tapestry-style, CAN, small worlds, butterfly
//	internal/store       ordered item stores (in-memory + disk-backed WAL)
//	internal/handoff     streaming two-phase churn transfer sessions
//	internal/churntest   the differential concurrent-churn harness
//	internal/p2p         a real TCP implementation of the DH node
//	internal/experiments drivers reproducing every table/figure/theorem
//
// A real-network node is available under cmd/dhnode with the client
// cmd/dhctl, and cmd/condisc-bench regenerates every paper experiment.
package condisc

import (
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"

	"condisc/internal/cache"
	"condisc/internal/dhgraph"
	"condisc/internal/hashing"
	"condisc/internal/interval"
	"condisc/internal/partition"
	"condisc/internal/route"
	"condisc/internal/store"
)

// Point is a point of the unit interval I = [0,1) in 64-bit fixed point.
type Point = interval.Point

// ServerID is a stable identifier for a server, assigned at join time and
// never reused. Unlike a server's index (its position in the sorted
// decomposition, which shifts whenever any other server joins or leaves),
// a ServerID keeps naming the same server across arbitrary churn, so it is
// the only safe way to remove a specific server.
type ServerID = partition.Handle

// StorageEngine selects the item-store backend of a DHT.
type StorageEngine int

const (
	// StorageMem keeps each server's items in an in-memory ordered store
	// (the default).
	StorageMem StorageEngine = iota
	// StorageLog keeps each server's items in a disk-backed WAL store
	// under Options.DataDir, scaling the item population past RAM.
	StorageLog
)

// Options configures a simulated DHT.
type Options struct {
	// Delta is the alphabet size ∆ of the underlying De Bruijn-style graph
	// (degree/path tradeoff of §2.3). Default 2.
	Delta uint64
	// Seed makes the instance deterministic. Default 1.
	Seed uint64
	// CacheThreshold is the hot-spot protocol's threshold c; 0 selects
	// Θ(log n) at construction. Negative disables caching.
	CacheThreshold int
	// Storage selects the per-server item-store engine. Both engines keep
	// items ordered by hash point, so Join/Leave item migration is a pure
	// range move (internal/store).
	Storage StorageEngine
	// DataDir is the root directory for StorageLog stores; required when
	// Storage == StorageLog.
	DataDir string
}

// DHT is a simulated Distance Halving network: n servers holding segments
// of I, routing lookups over the discrete DH graph, storing items at the
// server covering their hash point. All per-server state — routing edges,
// load counters, cache supply counts, and the item stores — is keyed by
// the stable ServerID, so a churn event rewrites exactly the state of the
// servers adjacent to the changed segment and nothing else.
type DHT struct {
	opts     Options
	rng      *rand.Rand
	ring     *partition.Ring
	net      *route.Network
	hash     *hashing.Func
	cache    *cache.System
	stores   map[ServerID]store.Store
	newStore func() store.Store
	storeSeq int

	// churnMu serializes churn entry points (Join/Leave and the batch
	// forms) against each other; inside a batch, disjoint events
	// parallelize under arc leases (condisc_batch.go).
	churnMu   sync.Mutex
	leases    *partition.Leases
	schedHook func(event int, step string) // test-only interleaving hook
}

// New builds a DHT of n servers (n >= 2) with Multiple Choice IDs.
func New(n int, opts Options) *DHT {
	if n < 2 {
		panic("condisc: need at least 2 servers")
	}
	if opts.Delta == 0 {
		opts.Delta = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	d := &DHT{
		opts: opts,
		rng:  rand.New(rand.NewPCG(opts.Seed, opts.Seed^0x632be59bd9b4e019)),
	}
	d.hash = hashing.NewKWise(16, d.rng)
	d.ring = partition.Grow(partition.New(), n, partition.MultipleChooser(2), d.rng)
	d.net = route.NewNetwork(dhgraph.Build(d.ring, d.opts.Delta))
	d.leases = partition.NewLeases()
	if d.opts.Delta == 2 && d.opts.CacheThreshold >= 0 {
		d.cache = cache.NewSystem(d.net, d.hash, d.autoThreshold())
	}
	switch opts.Storage {
	case StorageMem:
		d.newStore = func() store.Store { return store.NewMem() }
	case StorageLog:
		if opts.DataDir == "" {
			panic("condisc: StorageLog requires Options.DataDir")
		}
		// The simulated DHT does not adopt prior on-disk state: the ring
		// decomposition is rebuilt from the seed, so items replayed from a
		// previous run would sit in stores whose segments no longer cover
		// them. Refuse a non-empty DataDir instead of corrupting silently.
		if entries, err := os.ReadDir(opts.DataDir); err == nil && len(entries) > 0 {
			panic(fmt.Sprintf("condisc: DataDir %s is not empty; the simulated DHT does not adopt prior state", opts.DataDir))
		}
		d.newStore = func() store.Store {
			d.storeSeq++
			s, err := store.OpenLog(filepath.Join(opts.DataDir, fmt.Sprintf("s-%06d", d.storeSeq)), store.LogOptions{})
			if err != nil {
				panic(fmt.Sprintf("condisc: open log store: %v", err))
			}
			return s
		}
	default:
		panic(fmt.Sprintf("condisc: unknown storage engine %d", opts.Storage))
	}
	d.stores = make(map[ServerID]store.Store, n)
	for i := 0; i < n; i++ {
		d.stores[d.ring.HandleAt(i)] = d.newStore()
	}
	return d
}

// Close releases the per-server stores (the disk-backed engine holds open
// WAL files). The DHT must not be used afterwards.
func (d *DHT) Close() error {
	var first error
	for _, s := range d.stores {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// autoThreshold resolves the caching threshold c for the current size.
func (d *DHT) autoThreshold() int {
	if c := d.opts.CacheThreshold; c != 0 {
		return c
	}
	return int(math.Log2(float64(d.ring.N()))) + 1
}

// N returns the number of servers.
func (d *DHT) N() int { return d.ring.N() }

// Smoothness returns ρ of the current decomposition (Definition 1).
func (d *DHT) Smoothness() float64 { return d.ring.Smoothness() }

// MaxDegree returns the maximum routing-table size.
func (d *DHT) MaxDegree() int { return d.net.G.MaxDegree() }

// KeyPoint returns the hash point of a key.
func (d *DHT) KeyPoint(key string) Point { return d.hash.Point(key) }

// Owner returns the server index responsible for a key.
func (d *DHT) Owner(key string) int { return d.ring.Cover(d.hash.Point(key)) }

// Lookup routes from server src to the owner of key using the randomized
// Distance Halving Lookup and returns the path of servers visited.
func (d *DHT) Lookup(src int, key string) []int {
	return d.net.DHLookup(src, d.hash.Point(key), d.rng)
}

// Put stores a value from server src, returning the routing path length.
func (d *DHT) Put(src int, key string, value []byte) int {
	path := d.Lookup(src, key)
	owner := path[len(path)-1]
	if err := d.stores[d.ring.HandleAt(owner)].Put(d.hash.Point(key), key, value); err != nil {
		panic(fmt.Sprintf("condisc: store put: %v", err))
	}
	return len(path) - 1
}

// Get retrieves a value from server src. With caching enabled, hot items
// are served by cache-tree copies without reaching the owner (§3).
func (d *DHT) Get(src int, key string) (value []byte, hops int, ok bool) {
	p := d.hash.Point(key)
	owner := d.ring.CoverHandle(p)
	v, ok, err := d.stores[owner].Get(p, key)
	if err != nil {
		panic(fmt.Sprintf("condisc: store get: %v", err))
	}
	if !ok {
		return nil, 0, false
	}
	if d.cache != nil {
		path, _ := d.cache.Request(src, key, d.rng)
		return v, len(path) - 1, true
	}
	path := d.Lookup(src, key)
	return v, len(path) - 1, true
}

// EndEpoch advances the caching protocol's epoch (step 2–3 of §3.1).
func (d *DHT) EndEpoch() {
	if d.cache != nil {
		d.cache.EndEpoch()
	}
}

// Join adds a server with a Multiple Choice ID (§4), patching the routing
// graph locally and migrating only the items of the split segment (§2.1
// Join step 3). It returns the new server's stable identifier.
//
// Because every layer keys its state by ServerID, the join is a pure
// range handoff: the graph patches the O(ρ·∆) servers around the split,
// the load and supply counters are untouched (the newcomer simply has no
// entries yet), and the item split moves the new segment's items out of
// the predecessor's ordered store in O(log S + moved) — no scan of the
// items that stay behind, no other server's state read or written. Join
// is the width-1 form of JoinBatch; disjoint joins batch and run
// concurrently (condisc_batch.go).
func (d *DHT) Join() ServerID {
	return d.JoinBatch(1)[0]
}

// Leave removes the server named by id; its segment, items and routing
// edges are absorbed by the ring predecessor (§2.1), touching only that
// neighbourhood. The id stays valid across unrelated churn, so the caller
// can never remove the wrong server. Leave is the width-1 form of
// LeaveBatch.
func (d *DHT) Leave(id ServerID) error {
	return d.LeaveBatch([]ServerID{id})
}

// Servers returns the stable identifiers of all current servers in index
// order.
func (d *DHT) Servers() []ServerID {
	out := make([]ServerID, d.ring.N())
	for i := range out {
		out[i] = d.ring.HandleAt(i)
	}
	return out
}

// IDAt returns the stable identifier of the server currently at index i.
func (d *DHT) IDAt(i int) ServerID { return d.ring.HandleAt(i) }

// IndexOf returns the current index of the server named by id.
func (d *DHT) IndexOf(id ServerID) (int, bool) { return d.ring.IndexOfHandle(id) }

// MaxLoad returns the highest per-server message count since the last
// ResetLoad — the congestion the §2.2 theorems bound.
func (d *DHT) MaxLoad() int64 { return d.net.MaxLoad() }

// LoadOf returns the message count of the server named by id.
func (d *DHT) LoadOf(id ServerID) int64 { return d.net.LoadOf(id) }

// SuppliedOf returns how many requests the server named by id has served
// from its cache (0 when caching is disabled).
func (d *DHT) SuppliedOf(id ServerID) int64 {
	if d.cache == nil {
		return 0
	}
	return d.cache.SuppliedOf(id)
}

// ResetLoad zeroes the congestion counters.
func (d *DHT) ResetLoad() { d.net.ResetLoad() }

// Items returns how many items server i currently stores.
func (d *DHT) Items(i int) int { return d.stores[d.ring.HandleAt(i)].Len() }

// ItemsOf returns how many items the server named by id currently stores.
func (d *DHT) ItemsOf(id ServerID) int { return d.stores[id].Len() }
