// Package condisc is a Go implementation of the continuous-discrete
// approach to peer-to-peer networks (Naor & Wieder, "Novel Architectures
// for P2P Applications: the Continuous-Discrete Approach", SPAA 2003).
//
// The package root offers a high-level simulated Distance Halving DHT —
// join/leave, logarithmic lookups, and the paper's hot-spot caching
// protocol — while the full machinery lives in the internal packages:
//
//	internal/interval    exact fixed-point arithmetic on [0,1)
//	internal/continuous  the continuous DH graph and its path trees
//	internal/partition   dynamic decompositions + §4 ID selection
//	internal/dhgraph     the discrete DH graph (Theorems 2.1, 2.2)
//	internal/route       Fast and Distance Halving lookups (§2.2)
//	internal/cache       the §3 dynamic caching protocol
//	internal/overlap     the §6 fault-tolerant overlapping DHT
//	internal/expander    the §5 Gabber–Galil dynamic expander
//	internal/emulate     the §7 general graph emulation
//	internal/baselines   Chord, Tapestry-style, CAN, small worlds, butterfly
//	internal/store       ordered item stores (in-memory + disk-backed WAL)
//	internal/handoff     streaming two-phase churn transfer sessions
//	internal/churntest   the differential concurrent-churn harness
//	internal/p2p         a real TCP implementation of the DH node
//	internal/experiments drivers reproducing every table/figure/theorem
//
// A real-network node is available under cmd/dhnode with the client
// cmd/dhctl, and cmd/condisc-bench regenerates every paper experiment.
package condisc

import (
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"condisc/internal/cache"
	"condisc/internal/dhgraph"
	"condisc/internal/doctor"
	"condisc/internal/hashing"
	"condisc/internal/interval"
	"condisc/internal/journal"
	"condisc/internal/partition"
	"condisc/internal/route"
	"condisc/internal/store"
	"condisc/internal/telemetry"
)

// Point is a point of the unit interval I = [0,1) in 64-bit fixed point.
type Point = interval.Point

// ServerID is a stable identifier for a server, assigned at join time and
// never reused. Unlike a server's index (its position in the sorted
// decomposition, which shifts whenever any other server joins or leaves),
// a ServerID keeps naming the same server across arbitrary churn, so it is
// the only safe way to remove a specific server.
type ServerID = partition.Handle

// StorageEngine selects the item-store backend of a DHT.
type StorageEngine int

const (
	// StorageMem keeps each server's items in an in-memory ordered store
	// (the default).
	StorageMem StorageEngine = iota
	// StorageLog keeps each server's items in a disk-backed WAL store
	// under Options.DataDir, scaling the item population past RAM.
	StorageLog
)

// Options configures a simulated DHT.
type Options struct {
	// Delta is the alphabet size ∆ of the underlying De Bruijn-style graph
	// (degree/path tradeoff of §2.3). Default 2.
	Delta uint64
	// Seed makes the instance deterministic. Default 1.
	Seed uint64
	// CacheThreshold is the hot-spot protocol's threshold c; 0 selects
	// Θ(log n) at construction. Negative disables caching.
	CacheThreshold int
	// Storage selects the per-server item-store engine. Both engines keep
	// items ordered by hash point, so Join/Leave item migration is a pure
	// range move (internal/store).
	Storage StorageEngine
	// DataDir is the root directory for StorageLog stores; required when
	// Storage == StorageLog.
	DataDir string
	// Replication, when >= 2, keeps every item on its owner plus
	// Replication−1 ring successors: Put writes the extra copies into
	// per-server replica stores, Get falls back to them on a primary
	// miss, and Crash uses them to re-materialize a dead server's
	// segment (condisc_crash.go). The replica stores are pure observers
	// of the primary state — WriteState never includes them and no code
	// path reads them except the miss fallback and crash repair — so the
	// churntest digest-invariance arms hold with replication on or off.
	Replication int
	// Telemetry receives the instance's runtime metrics; nil selects the
	// process-wide telemetry.Default. Metrics are pure observers — no code
	// path reads one back into a decision — so two instances differing only
	// in Telemetry (or with recording disabled) behave identically.
	Telemetry *telemetry.Registry
	// Journal, when non-nil, receives one flight-recorder record per
	// churn admit/apply/retire and epoch publish (internal/journal).
	// Like Telemetry it is a pure observer: attaching one changes no
	// externally visible state (the churntest digest arm enforces it).
	Journal *journal.Journal
}

// dhtMetrics holds the DHT's pre-resolved telemetry handles: resolved
// once in New so every hot-path record is a plain sharded-atomic write.
type dhtMetrics struct {
	reads       *telemetry.Counter   // Get calls
	puts        *telemetry.Counter   // Put calls
	readRetries *telemetry.Counter   // epoch flips absorbed by Get/Put retry loops
	fenceWaits  *telemetry.Counter   // writes that waited on the moving-range fence
	waves       *telemetry.Counter   // published churn waves
	waveNanos   *telemetry.Histogram // wall time per wave, fence to fence-lift
	epoch       *telemetry.Gauge     // published epoch, stamped at publish time
}

func newDHTMetrics(reg *telemetry.Registry) dhtMetrics {
	m := dhtMetrics{
		reads:       reg.Counter("condisc_reads_total"),
		puts:        reg.Counter("condisc_puts_total"),
		readRetries: reg.Counter("condisc_read_retries_total"),
		fenceWaits:  reg.Counter("condisc_fence_waits_total"),
		waves:       reg.Counter("condisc_waves_total"),
		waveNanos:   reg.Histogram("condisc_wave_duration_nanos"),
		epoch:       reg.Gauge("condisc_epoch"),
	}
	// Snapshot age is derived at scrape time from the epoch gauge's stamp
	// (how long ago the last wave published — 0 forever on a churn-free
	// instance). Re-registering after a second New replaces the closure,
	// which is the right answer for the shared Default registry: the
	// newest instance is the one being observed.
	reg.RegisterCollector("condisc_snapshot_age_seconds", func() float64 {
		return m.epoch.Age().Seconds()
	})
	return m
}

// DHT is a simulated Distance Halving network: n servers holding segments
// of I, routing lookups over the discrete DH graph, storing items at the
// server covering their hash point. All per-server state — routing edges,
// load counters, cache supply counts, and the item stores — is keyed by
// the stable ServerID, so a churn event rewrites exactly the state of the
// servers adjacent to the changed segment and nothing else.
type DHT struct {
	opts   Options
	rng    *rand.Rand
	ring   *partition.Ring
	net    *route.Network
	hash   *hashing.Func
	cache  *cache.System
	stores map[ServerID]store.Store
	// rstores, non-nil when Options.Replication >= 2, holds each server's
	// replica payloads — copies of OTHER servers' items, placed at Put
	// time on the owner's ring successors. Guarded by storesMu alongside
	// stores; always in-memory (replicas are a crash-repair source, not
	// durable state — a crashed server's replicas die with it).
	rstores  map[ServerID]store.Store
	newStore func() store.Store
	storeSeq int
	met      dhtMetrics
	jrn      *journal.Journal // nil when no flight recorder is attached

	// storesMu guards the stores MAP (insertion at join admit, deletion at
	// wave cleanup); the stores themselves are internally synchronized.
	// Readers resolve an owner's store through storeOf and never hold any
	// churn lock.
	storesMu sync.RWMutex

	// churnMu serializes churn entry points (Join/Leave and the batch
	// forms) against each other; inside a batch, disjoint events
	// parallelize under arc leases (condisc_batch.go). The read path
	// (Get/Put/Lookup/Owner) never takes it: reads resolve ownership
	// against the ring's epoch snapshots and retry if an epoch flips
	// mid-call.
	churnMu   sync.Mutex
	leases    *partition.Leases
	schedHook func(event int, step string) // test-only interleaving hook

	// readSeed/readCtr derive a private PCG stream per read-path call
	// (stream = the call's ticket), so concurrent reads never share a
	// *rand.Rand with each other or with the churn path's d.rng.
	readSeed uint64
	readCtr  atomic.Uint64

	// moving, while a churn wave is in flight, holds the wave's
	// owner-changing ranges (each event's invSeg). Put fences on it: a
	// write into a mid-handoff range waits for the wave's publish, closing
	// the window where a fresh key could land on the source store behind
	// the copy cursor and vanish. nil when no wave is running.
	moving atomic.Pointer[[]interval.Segment]
}

// New builds a DHT of n servers (n >= 2) with Multiple Choice IDs.
func New(n int, opts Options) *DHT {
	if n < 2 {
		panic("condisc: need at least 2 servers")
	}
	if opts.Delta == 0 {
		opts.Delta = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	d := &DHT{
		opts:     opts,
		rng:      rand.New(rand.NewPCG(opts.Seed, opts.Seed^0x632be59bd9b4e019)),
		readSeed: opts.Seed ^ 0x9e3779b97f4a7c15,
	}
	d.hash = hashing.NewKWise(16, d.rng)
	d.ring = partition.Grow(partition.New(), n, partition.MultipleChooser(2), d.rng)
	d.net = route.NewNetwork(dhgraph.Build(d.ring, d.opts.Delta))
	if opts.Telemetry == nil {
		opts.Telemetry = telemetry.Default
	}
	d.opts.Telemetry = opts.Telemetry
	d.met = newDHTMetrics(opts.Telemetry)
	d.net.SetTelemetry(opts.Telemetry)
	d.jrn = opts.Journal
	d.ring.SetJournal(d.jrn)
	d.leases = partition.NewLeases()
	if d.opts.Delta == 2 && d.opts.CacheThreshold >= 0 {
		d.cache = cache.NewSystem(d.net, d.hash, d.autoThreshold())
	}
	switch opts.Storage {
	case StorageMem:
		d.newStore = func() store.Store { return store.NewMem() }
	case StorageLog:
		if opts.DataDir == "" {
			panic("condisc: StorageLog requires Options.DataDir")
		}
		// The simulated DHT does not adopt prior on-disk state: the ring
		// decomposition is rebuilt from the seed, so items replayed from a
		// previous run would sit in stores whose segments no longer cover
		// them. Refuse a non-empty DataDir instead of corrupting silently.
		if entries, err := os.ReadDir(opts.DataDir); err == nil && len(entries) > 0 {
			panic(fmt.Sprintf("condisc: DataDir %s is not empty; the simulated DHT does not adopt prior state", opts.DataDir))
		}
		d.newStore = func() store.Store {
			d.storeSeq++
			s, err := store.OpenLog(filepath.Join(opts.DataDir, fmt.Sprintf("s-%06d", d.storeSeq)), store.LogOptions{})
			if err != nil {
				panic(fmt.Sprintf("condisc: open log store: %v", err))
			}
			return s
		}
	default:
		panic(fmt.Sprintf("condisc: unknown storage engine %d", opts.Storage))
	}
	d.stores = make(map[ServerID]store.Store, n)
	for i := 0; i < n; i++ {
		d.stores[d.ring.HandleAt(i)] = d.newStore()
	}
	if opts.Replication >= 2 {
		d.rstores = make(map[ServerID]store.Store, n)
		for i := 0; i < n; i++ {
			d.rstores[d.ring.HandleAt(i)] = store.NewMem()
		}
	}
	return d
}

// Close releases the per-server stores (the disk-backed engine holds open
// WAL files). The DHT must not be used afterwards.
func (d *DHT) Close() error {
	d.storesMu.Lock()
	defer d.storesMu.Unlock()
	var first error
	for _, s := range d.stores {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range d.rstores {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// storeOf resolves the store of the server named by id without holding
// any churn lock.
func (d *DHT) storeOf(id ServerID) (store.Store, bool) {
	d.storesMu.RLock()
	s, ok := d.stores[id]
	d.storesMu.RUnlock()
	return s, ok
}

// readRand returns a fresh deterministic PRNG for one read-path call:
// every call gets its own PCG stream (the ticket from readCtr), split
// from the instance seed. Concurrent reads therefore share no RNG state,
// and a serial sequence of reads draws a reproducible digit sequence
// regardless of churn interleaving — reads no longer consume the churn
// path's d.rng.
func (d *DHT) readRand() *rand.Rand {
	return rand.New(rand.NewPCG(d.readSeed, d.readCtr.Add(1)))
}

// --- the moving-range fence ---

// setMoving installs the wave's owner-changing ranges; writers into those
// ranges wait out the wave.
func (d *DHT) setMoving(segs []interval.Segment) { d.moving.Store(&segs) }

// clearMoving lifts the fence after the wave's cleanup.
func (d *DHT) clearMoving() { d.moving.Store(nil) }

// pointMoving reports whether p lies in a range whose owner is changing
// in the wave currently in flight.
func (d *DHT) pointMoving(p Point) bool {
	segs := d.moving.Load()
	if segs == nil {
		return false
	}
	for _, s := range *segs {
		if s.Contains(p) {
			return true
		}
	}
	return false
}

// waitNotMoving spins (yielding) until p's range has no handoff in
// flight. Waves are bounded (copy + publish + cleanup), so the wait is
// too; the iteration bound turns a stuck wave into a loud failure instead
// of a silent hang.
func (d *DHT) waitNotMoving(p Point) {
	for i := 0; d.pointMoving(p); i++ {
		if i == 0 {
			d.met.fenceWaits.Inc() // one wait episode, however many spins
		}
		if i > 1<<26 {
			panic("condisc: put stalled on an unfinished churn wave")
		}
		runtime.Gosched()
	}
}

// autoThreshold resolves the caching threshold c for the current size.
func (d *DHT) autoThreshold() int {
	if c := d.opts.CacheThreshold; c != 0 {
		return c
	}
	return int(math.Log2(float64(d.ring.N()))) + 1
}

// N returns the number of servers.
func (d *DHT) N() int { return d.ring.N() }

// Smoothness returns ρ of the current decomposition (Definition 1).
func (d *DHT) Smoothness() float64 { return d.ring.Smoothness() }

// MaxDegree returns the maximum routing-table size.
func (d *DHT) MaxDegree() int { return d.net.G.MaxDegree() }

// Doctor recomputes the paper's cluster-wide bounds — smoothness,
// degree, lookup dilation, routed-load skew — from the live
// decomposition, graph index, and load counters, and returns one
// verdict per invariant (internal/doctor). It serializes against churn,
// so the verdicts describe one quiescent instant; a breach shows up on
// the first Doctor call after the wave that caused it.
func (d *DHT) Doctor() doctor.Report {
	d.churnMu.Lock()
	defer d.churnMu.Unlock()
	segs := d.ring.Segments()
	cs := doctor.ClusterStats{
		N:      d.ring.N(),
		Delta:  d.opts.Delta,
		MaxDeg: d.net.G.MaxDegree(),
		HopP99: d.opts.Telemetry.Histogram("condisc_route_lookup_hops").Quantile(0.99),
	}
	cs.SegLens = make([]uint64, len(segs))
	for i, s := range segs {
		cs.SegLens[i] = s.Len
	}
	cs.Loads = make([]float64, 0, cs.N)
	for i := 0; i < cs.N; i++ {
		cs.Loads = append(cs.Loads, float64(d.net.LoadOf(d.ring.HandleAt(i))))
	}
	return doctor.Diagnose(cs)
}

// KeyPoint returns the hash point of a key.
func (d *DHT) KeyPoint(key string) Point { return d.hash.Point(key) }

// Owner returns the server index responsible for a key, resolved against
// the latest published epoch snapshot (wait-free under churn).
func (d *DHT) Owner(key string) int {
	return d.ring.Snapshot().Cover(d.hash.Point(key))
}

// Lookup routes from server src to the owner of key using the randomized
// Distance Halving Lookup and returns the path of servers visited. The
// route resolves covers against one epoch snapshot and draws digits from
// a private per-call stream, so concurrent lookups (and lookups under
// churn) never block or race.
func (d *DHT) Lookup(src int, key string) []int {
	return d.net.DHLookup(src, d.hash.Point(key), d.readRand())
}

// readRetryLimit bounds the stale-owner retries of Get and Put. A retry
// is only taken when the published epoch actually advanced, so the limit
// is consumed only if distinct churn waves keep landing mid-call.
const readRetryLimit = 8

// Put stores a value from server src, returning the routing path length.
//
// Put is wait-free against churn except in one range: a write whose point
// lies in a segment whose ownership is mid-handoff waits for the wave to
// publish (the moving-range fence) — otherwise a fresh key could land on
// the source store behind the copy cursor and be lost by the post-publish
// DeleteRange. After writing, Put re-resolves the owner; if the epoch
// flipped and moved the point's segment mid-write, the write is undone
// and retried against the new owner (bounded by readRetryLimit).
func (d *DHT) Put(src int, key string, value []byte) int {
	d.met.puts.Inc()
	p := d.hash.Point(key)
	path := d.Lookup(src, key)
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			d.met.readRetries.Inc()
		}
		d.waitNotMoving(p)
		snap := d.ring.Snapshot()
		owner := snap.CoverHandle(p)
		st, ok := d.storeOf(owner)
		if ok {
			if err := st.Put(p, key, value); err != nil {
				if d.ring.Snapshot().Epoch() == snap.Epoch() {
					// Errors are only expected from a store being retired
					// by a wave, which always advances the epoch first.
					panic(fmt.Sprintf("condisc: store put: %v", err))
				}
				// Store retired mid-call: re-resolve and retry.
			} else if fresh := d.ring.Snapshot(); fresh.CoverHandle(p) != owner {
				// The owner changed under the write (the snapshot was
				// stale, or a wave published mid-put): reclaim the orphan
				// before retrying at the real owner, so the old store
				// never retains an item outside its segment. An error here
				// is benign — a destroyed store takes the orphan with it.
				_ = st.Delete(p, key)
			} else if !d.pointMoving(p) {
				// Settled: the write landed on the store the current epoch
				// names as p's owner, with no handoff of p in flight. With
				// replication on, the extra copies are placed now — against
				// the same settled snapshot the write was validated by.
				d.replicatePut(snap, p, key, value)
				return len(path) - 1
			}
			// Owner unchanged but p's range is mid-handoff: the copy
			// cursor may have passed p before the write landed. Leave the
			// write in place (the post-publish cleanup wipes that range at
			// the source), wait the wave out, and re-put on the settled
			// owner.
		}
		if attempt >= readRetryLimit {
			panic(fmt.Sprintf("condisc: put of %q could not settle after %d owner changes", key, attempt))
		}
	}
}

// Get retrieves a value from server src. With caching enabled, hot items
// are served by cache-tree copies without reaching the owner (§3).
//
// Get is wait-free: it resolves the owner against the latest epoch
// snapshot and reads that server's store directly. If the read misses (or
// the store errors / is gone) while the published epoch has advanced
// mid-call, the owner may have changed — Get re-resolves and retries,
// bounded by readRetryLimit. A miss with a stable epoch is a genuine
// miss.
func (d *DHT) Get(src int, key string) (value []byte, hops int, ok bool) {
	d.met.reads.Inc()
	p := d.hash.Point(key)
	snap := d.ring.Snapshot()
	var v []byte
	for attempt := 0; ; attempt++ {
		owner := snap.CoverHandle(p)
		st, live := d.storeOf(owner)
		var found bool
		var err error
		if live {
			v, found, err = st.Get(p, key)
		}
		if live && err == nil && found {
			break
		}
		// Miss, vanished store, or store error: all are expected exactly
		// when a churn wave republished mid-call. Re-resolve and retry.
		fresh := d.ring.Snapshot()
		if fresh.Epoch() != snap.Epoch() && attempt < readRetryLimit {
			d.met.readRetries.Inc()
			snap = fresh
			continue
		}
		if err != nil {
			panic(fmt.Sprintf("condisc: store get: %v", err))
		}
		if !live {
			panic(fmt.Sprintf("condisc: epoch %d names server %d, which has no store", snap.Epoch(), owner))
		}
		if rv, rok := d.replicaGet(p, key); rok {
			// Genuine primary miss with replication on: a crashed (not yet
			// repaired) owner lost the copy, but a replica survives. Served
			// with zero hops — the primary route never reached a value.
			return rv, 0, true
		}
		return nil, 0, false
	}
	if d.cache != nil {
		path, _ := d.cache.Request(src, key, d.readRand())
		return v, len(path) - 1, true
	}
	path := d.Lookup(src, key)
	return v, len(path) - 1, true
}

// EndEpoch advances the caching protocol's epoch (step 2–3 of §3.1).
func (d *DHT) EndEpoch() {
	if d.cache != nil {
		d.cache.EndEpoch()
	}
}

// Join adds a server with a Multiple Choice ID (§4), patching the routing
// graph locally and migrating only the items of the split segment (§2.1
// Join step 3). It returns the new server's stable identifier.
//
// Because every layer keys its state by ServerID, the join is a pure
// range handoff: the graph patches the O(ρ·∆) servers around the split,
// the load and supply counters are untouched (the newcomer simply has no
// entries yet), and the item split moves the new segment's items out of
// the predecessor's ordered store in O(log S + moved) — no scan of the
// items that stay behind, no other server's state read or written. Join
// is the width-1 form of JoinBatch; disjoint joins batch and run
// concurrently (condisc_batch.go).
func (d *DHT) Join() ServerID {
	return d.JoinBatch(1)[0]
}

// Leave removes the server named by id; its segment, items and routing
// edges are absorbed by the ring predecessor (§2.1), touching only that
// neighbourhood. The id stays valid across unrelated churn, so the caller
// can never remove the wrong server. Leave is the width-1 form of
// LeaveBatch.
func (d *DHT) Leave(id ServerID) error {
	return d.LeaveBatch([]ServerID{id})
}

// Servers returns the stable identifiers of all current servers in index
// order.
func (d *DHT) Servers() []ServerID {
	out := make([]ServerID, d.ring.N())
	for i := range out {
		out[i] = d.ring.HandleAt(i)
	}
	return out
}

// IDAt returns the stable identifier of the server currently at index i.
func (d *DHT) IDAt(i int) ServerID { return d.ring.HandleAt(i) }

// IndexOf returns the current index of the server named by id.
func (d *DHT) IndexOf(id ServerID) (int, bool) { return d.ring.IndexOfHandle(id) }

// MaxLoad returns the highest per-server message count since the last
// ResetLoad — the congestion the §2.2 theorems bound.
func (d *DHT) MaxLoad() int64 { return d.net.MaxLoad() }

// LoadOf returns the message count of the server named by id.
func (d *DHT) LoadOf(id ServerID) int64 { return d.net.LoadOf(id) }

// SuppliedOf returns how many requests the server named by id has served
// from its cache (0 when caching is disabled).
func (d *DHT) SuppliedOf(id ServerID) int64 {
	if d.cache == nil {
		return 0
	}
	return d.cache.SuppliedOf(id)
}

// ResetLoad zeroes the congestion counters.
func (d *DHT) ResetLoad() { d.net.ResetLoad() }

// Items returns how many items server i currently stores.
func (d *DHT) Items(i int) int {
	st, ok := d.storeOf(d.ring.HandleAt(i))
	if !ok {
		return 0
	}
	return st.Len()
}

// ItemsOf returns how many items the server named by id currently stores.
func (d *DHT) ItemsOf(id ServerID) int {
	st, ok := d.storeOf(id)
	if !ok {
		return 0
	}
	return st.Len()
}
