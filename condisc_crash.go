package condisc

// Crash tolerance for the simulated DHT: k-successor replication of every
// settled write, a replica fallback on genuine primary misses, and
// Crash — the ungraceful counterpart of Leave, which drops the dead
// server's items on the floor (as a real crash would) and re-materializes
// the lost range from the surviving replicas.
//
// Replica placement mirrors internal/p2p: an item owned by the server at
// index i lives as a copy on the servers at indices i+1 … i+K−1 (ring
// order). The replica stores are pure observers of the primary state —
// WriteState never hashes them, and nothing reads them except the miss
// fallback and crash repair — so the churntest digest-invariance arms
// hold with replication on or off, and placement consumes no RNG.

import (
	"fmt"

	"condisc/internal/interval"
	"condisc/internal/journal"
	"condisc/internal/partition"
	"condisc/internal/store"
)

// replicaFactor clamps the configured replication factor to the ring size
// (a 2-server ring can hold at most 2 copies of anything).
func (d *DHT) replicaFactor(n int) int {
	k := d.opts.Replication
	if k > n {
		k = n
	}
	return k
}

// replicatePut places value on the K−1 ring successors of p's owner,
// resolved against the same settled snapshot the primary write was
// validated by. No-op when replication is off. Placement is pure map and
// store writes — no RNG, no load counters — so enabling replication
// changes nothing the digest arms observe.
func (d *DHT) replicatePut(snap *partition.Snapshot, p Point, key string, value []byte) {
	if d.rstores == nil {
		return
	}
	n := snap.N()
	k := d.replicaFactor(n)
	idx := snap.Cover(p)
	d.storesMu.RLock()
	defer d.storesMu.RUnlock()
	for s := 1; s < k; s++ {
		rs, ok := d.rstores[snap.HandleAt((idx+s)%n)]
		if !ok {
			// The successor joined after this DHT's rstores map was built
			// mid-wave; its replica store lands with the wave's publish and
			// the next overwrite (or crash repair) re-covers the item.
			continue
		}
		if err := rs.Put(p, key, value); err != nil {
			panic(fmt.Sprintf("condisc: replica put: %v", err))
		}
	}
}

// replicaGet serves a genuine primary miss from the surviving replicas,
// scanning the ring in deterministic index order starting at p's owner.
// It only ever fires in the window between a crash and its repair (a
// healthy ring's primary store holds everything its replicas do), so it
// is invisible to the digest arms.
func (d *DHT) replicaGet(p Point, key string) ([]byte, bool) {
	if d.rstores == nil {
		return nil, false
	}
	snap := d.ring.Snapshot()
	n := snap.N()
	start := snap.Cover(p)
	d.storesMu.RLock()
	defer d.storesMu.RUnlock()
	for s := 0; s < n; s++ {
		rs, ok := d.rstores[snap.HandleAt((start+s)%n)]
		if !ok {
			continue
		}
		if v, found, err := rs.Get(p, key); err == nil && found {
			return v, true
		}
	}
	return nil, false
}

// Crash simulates the ungraceful death of the server named by id. Unlike
// Leave, nothing is handed off: the server's primary store is destroyed
// with it (its replica store too — a corpse serves no reads), the ring
// absorbs the orphaned segment, and the lost range is re-materialized
// into its new owner from the surviving replicas, which are then
// re-spread so every item is back on Replication servers. Returns the
// number of items repaired into primary stores. Requires
// Options.Replication >= 2; any write the replicas never saw (none, on a
// settled ring) is lost, exactly as a real crash would lose it.
func (d *DHT) Crash(id ServerID) (repaired int, err error) {
	if d.rstores == nil {
		return 0, fmt.Errorf("condisc: Crash requires Options.Replication >= 2")
	}
	d.churnMu.Lock()
	idx, ok := d.ring.IndexOfHandle(id)
	if !ok {
		d.churnMu.Unlock()
		return 0, fmt.Errorf("condisc: crash of unknown server %v", id)
	}
	seg := d.ring.Segment(idx)
	epoch := d.ring.Epoch()
	// The crash itself: the dead server's stores vanish. Swapping an empty
	// primary in (rather than deleting the map entry) keeps the
	// ring→store invariant intact for the absorption that follows — the
	// departing "server" simply has nothing left to migrate.
	d.storesMu.Lock()
	dead := d.stores[id]
	d.stores[id] = store.NewMem()
	deadReplicas := d.rstores[id]
	delete(d.rstores, id)
	d.storesMu.Unlock()
	d.churnMu.Unlock()
	if d.jrn != nil {
		d.jrn.Record(journal.KindCrashAbsorb, epoch, epoch, uint64(id), uint64(seg.Start), seg.Len)
	}
	if err := store.Destroy(dead); err != nil {
		return 0, fmt.Errorf("condisc: destroying crashed store: %w", err)
	}
	if deadReplicas != nil {
		_ = deadReplicas.Close()
	}
	// Ring absorption reuses the Leave machinery — with an empty store the
	// "handoff" moves zero items, leaving only the pointer surgery.
	if err := d.Leave(id); err != nil {
		return 0, err
	}
	return d.repairSegment(seg)
}

// repairSegment re-materializes the crashed range into its new owner from
// the surviving replica payloads, then re-spreads the affected items so
// the replication factor is restored. Iteration is in deterministic ring
// index order; fresher primary writes win over stale replicas
// (store.PutIfAbsent — a write that raced the repair is already the
// newest copy).
func (d *DHT) repairSegment(seg interval.Segment) (int, error) {
	snap := d.ring.Snapshot()
	n := snap.N()
	// Collect the surviving replica payloads of the dead range.
	d.storesMu.RLock()
	holders := make([]store.Store, 0, n)
	for i := 0; i < n; i++ {
		if rs, ok := d.rstores[snap.HandleAt(i)]; ok {
			holders = append(holders, rs)
		}
	}
	d.storesMu.RUnlock()
	repaired := 0
	for _, rs := range holders {
		var items []store.Item
		if err := rs.Ascend(seg, func(it store.Item) bool {
			items = append(items, it)
			return true
		}); err != nil {
			return repaired, fmt.Errorf("condisc: reading replicas: %w", err)
		}
		for _, it := range items {
			st, ok := d.storeOf(snap.CoverHandle(it.Point))
			if !ok {
				continue
			}
			added, err := store.PutIfAbsent(st, it.Point, it.Key, it.Value)
			if err != nil {
				return repaired, fmt.Errorf("condisc: repairing %q: %w", it.Key, err)
			}
			if added {
				repaired++
			}
			// Re-spread onto the new owner's successor chain: the crash
			// removed one replica holder of this item.
			d.replicatePut(snap, it.Point, it.Key, it.Value)
		}
	}
	// The dead server was also a replica HOLDER for its K−1 ring
	// predecessors' items; walk those primaries and re-spread them so
	// every item is back on Replication servers.
	k := d.replicaFactor(n)
	start := snap.Cover(seg.Start)
	for s := 1; s < k; s++ {
		i := ((start-s)%n + n) % n
		st, ok := d.storeOf(snap.HandleAt(i))
		if !ok {
			continue
		}
		var items []store.Item
		if err := st.Ascend(snap.Segment(i), func(it store.Item) bool {
			items = append(items, it)
			return true
		}); err != nil {
			return repaired, fmt.Errorf("condisc: re-replicating: %w", err)
		}
		for _, it := range items {
			d.replicatePut(snap, it.Point, it.Key, it.Value)
		}
	}
	return repaired, nil
}
