package condisc

import (
	"bytes"
	"testing"
)

// TestJoinBatchLeaveBatchRoundTrip: the batch API grows and shrinks the
// network, ids are distinct and stable, and the per-server invariants
// (every key still owned, counters for newcomers zero) hold.
func TestJoinBatchLeaveBatchRoundTrip(t *testing.T) {
	d := New(64, Options{Seed: 11})
	defer d.Close()
	for i := 0; i < 32; i++ {
		d.Put(i%d.N(), string(rune('a'+i)), []byte{byte(i)})
	}
	before := d.N()
	ids := d.JoinBatch(16)
	if len(ids) != 16 {
		t.Fatalf("JoinBatch returned %d ids", len(ids))
	}
	seen := map[ServerID]bool{}
	for _, id := range ids {
		if id == 0 || seen[id] {
			t.Fatalf("bad or duplicate id %d in %v", id, ids)
		}
		seen[id] = true
		if _, ok := d.IndexOf(id); !ok {
			t.Fatalf("joined server %d not in ring", id)
		}
	}
	if d.N() != before+16 {
		t.Fatalf("N = %d after JoinBatch(16), want %d", d.N(), before+16)
	}
	for i := 0; i < 32; i++ {
		if _, _, ok := d.Get(i%d.N(), string(rune('a'+i))); !ok {
			t.Fatalf("key %q lost across JoinBatch", string(rune('a'+i)))
		}
	}
	if err := d.LeaveBatch(ids); err != nil {
		t.Fatal(err)
	}
	if d.N() != before {
		t.Fatalf("N = %d after LeaveBatch, want %d", d.N(), before)
	}
	for i := 0; i < 32; i++ {
		if _, _, ok := d.Get(i%d.N(), string(rune('a'+i))); !ok {
			t.Fatalf("key %q lost across LeaveBatch", string(rune('a'+i)))
		}
	}
}

// TestLeaveBatchValidation: duplicate ids, unknown ids, and below-floor
// shrinks fail atomically — no partial application.
func TestLeaveBatchValidation(t *testing.T) {
	d := New(8, Options{Seed: 3})
	defer d.Close()
	ids := d.Servers()
	if err := d.LeaveBatch([]ServerID{ids[0], ids[0]}); err == nil {
		t.Fatal("duplicate ids accepted")
	}
	if err := d.LeaveBatch([]ServerID{99999}); err == nil {
		t.Fatal("unknown id accepted")
	}
	if err := d.LeaveBatch(ids[:7]); err == nil {
		t.Fatal("shrink below 2 servers accepted")
	}
	if d.N() != 8 {
		t.Fatalf("failed batches mutated the network: N = %d", d.N())
	}
	if err := d.LeaveBatch(ids[:6]); err != nil {
		t.Fatal(err)
	}
	if d.N() != 2 {
		t.Fatalf("N = %d, want 2", d.N())
	}
}

// TestJoinAtExplicitPoint: JoinAt admits an explicit point once and
// refuses the duplicate without burning a handle.
func TestJoinAtExplicitPoint(t *testing.T) {
	d := New(4, Options{Seed: 5})
	defer d.Close()
	p := Point(0x4242424242424242)
	id, ok := d.JoinAt(p)
	if !ok || id == 0 {
		t.Fatalf("JoinAt(%d) = %d, %v", uint64(p), id, ok)
	}
	if id2, ok2 := d.JoinAt(p); ok2 || id2 != 0 {
		t.Fatalf("duplicate JoinAt admitted: %d, %v", id2, ok2)
	}
	if d.N() != 5 {
		t.Fatalf("N = %d, want 5", d.N())
	}
}

// TestWidth1BatchMatchesSerialSingles: Join/Leave are defined as the
// width-1 batch forms; a fresh DHT driven by singles and another by
// width-1 batches from the same seed end in byte-identical state.
func TestWidth1BatchMatchesSerialSingles(t *testing.T) {
	a := New(32, Options{Seed: 9})
	defer a.Close()
	b := New(32, Options{Seed: 9})
	defer b.Close()
	for i := 0; i < 20; i++ {
		ida := a.Join()
		idb := b.JoinBatch(1)[0]
		if ida != idb {
			t.Fatalf("single vs width-1 batch diverged: %d vs %d", ida, idb)
		}
		if i%3 == 0 {
			if err := a.Leave(ida); err != nil {
				t.Fatal(err)
			}
			if err := b.LeaveBatch([]ServerID{idb}); err != nil {
				t.Fatal(err)
			}
		}
	}
	var da, db bytes.Buffer
	if err := a.WriteState(&da); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteState(&db); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da.Bytes(), db.Bytes()) {
		t.Fatal("singles and width-1 batches diverged")
	}
}
