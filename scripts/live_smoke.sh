#!/usr/bin/env bash
# live_smoke.sh — end-to-end smoke test of the observability plane on a
# real three-node dhnode cluster: start the nodes with -admin and
# -replicas 3, drive traffic through dhctl (put/get/trace/top), scrape
# every admin endpoint (/metrics, /statusz, /healthz, /journalz,
# /doctorz, /debug/pprof), assert the scraped content is sane, check
# `dhctl doctor` passes every paper invariant on the healthy cluster,
# and check `dhctl journal` merges the same deterministic timeline from
# any bootstrap node. Then the crash phase: kill -9 one node and assert
# the survivors absorb its range, repair it from replicas, recover a
# healthy doctor verdict, and keep serving every key. Exits non-zero on
# the first failed assertion.
#
# Usage: scripts/live_smoke.sh   (from the repository root; needs ports
# 17101-17103 and 18101-18103 free on 127.0.0.1)
set -euo pipefail

SEED=424242
NODE1=127.0.0.1:17101
NODE2=127.0.0.1:17102
NODE3=127.0.0.1:17103
ADMIN1=127.0.0.1:18101
ADMIN2=127.0.0.1:18102
ADMIN3=127.0.0.1:18103

workdir=$(mktemp -d)
pids=()
cleanup() {
  # SIGTERM each node: the graceful-leave path (and its telemetry flush)
  # runs on every teardown, so a shutdown regression fails the smoke too.
  for pid in "${pids[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
  done
  for pid in "${pids[@]}"; do
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "live_smoke: FAIL: $*" >&2; exit 1; }

echo "== build"
go build -o "$workdir/dhnode" ./cmd/dhnode
go build -o "$workdir/dhctl" ./cmd/dhctl

echo "== start 3-node cluster (replicas=3)"
"$workdir/dhnode" -listen $NODE1 -seed $SEED -admin $ADMIN1 -stabilize 500ms \
  -replicas 3 -rpc-timeout 1s \
  >"$workdir/node1.log" 2>&1 & pids+=($!)
sleep 1
"$workdir/dhnode" -listen $NODE2 -join $NODE1 -seed $SEED -admin $ADMIN2 -stabilize 500ms \
  -replicas 3 -rpc-timeout 1s \
  >"$workdir/node2.log" 2>&1 & pids+=($!)
sleep 1
"$workdir/dhnode" -listen $NODE3 -join $NODE1 -seed $SEED -admin $ADMIN3 -stabilize 500ms \
  -replicas 3 -rpc-timeout 1s \
  >"$workdir/node3.log" 2>&1 & pids+=($!)
# Let the ring close and the tables stabilize at least once.
sleep 2

for log in node1 node2 node3; do
  grep -q "admin plane at" "$workdir/$log.log" \
    || fail "$log did not announce its admin plane ($(cat "$workdir/$log.log"))"
done

echo "== traffic through dhctl"
for i in $(seq 1 20); do
  "$workdir/dhctl" -node $NODE1 -seed $SEED put "key-$i" "val-$i" >/dev/null \
    || fail "put key-$i"
done
for i in 1 7 20; do
  out=$("$workdir/dhctl" -node $NODE2 -seed $SEED get "key-$i")
  case "$out" in
    "val-$i"*) ;;
    *) fail "get key-$i returned: $out" ;;
  esac
done

echo "== dhctl trace prints an actual hop path"
trace=$("$workdir/dhctl" -node $NODE3 -seed $SEED trace key-7)
echo "$trace"
echo "$trace" | grep -q "owner 127.0.0.1:" || fail "trace reports no owner"
# The per-hop table: at least one row, the last one marked owner (or the
# single-row entry+owner), each row carrying a point and a latency.
echo "$trace" | grep -Eq "^[[:space:]]+[0-9]+[[:space:]]+(owner|entry\+owner)[[:space:]]" \
  || fail "trace prints no owner hop row"
echo "$trace" | grep -Eq "ring-ver=[0-9]+" || fail "trace rows carry no ring-ver"

echo "== dhctl top scrapes the whole ring"
top=$("$workdir/dhctl" -node $NODE1 top)
echo "$top"
[ "$(echo "$top" | grep -c "^127.0.0.1:171")" -eq 3 ] \
  || fail "top does not list all 3 nodes"
echo "$top" | grep -q "(no -admin)" && fail "top found a node without its admin address"
echo "$top" | grep -Eq "load: 3 scraped nodes" || fail "top scraped fewer than 3 nodes"

echo "== /healthz"
for a in $ADMIN1 $ADMIN2 $ADMIN3; do
  [ "$(curl -fsS "http://$a/healthz")" = "ok" ] || fail "$a/healthz not ok"
done

echo "== /metrics (Prometheus text)"
metrics=$(curl -fsS "http://$ADMIN1/metrics")
for fam in condisc_p2p_rpc_total condisc_p2p_lookup_hops condisc_p2p_owner_served_total; do
  echo "$metrics" | grep -q "^# TYPE $fam" || fail "/metrics missing family $fam"
done
echo "$metrics" | grep -Eq '^condisc_p2p_rpc_total\{op="put"\} [1-9]' \
  || fail "/metrics: put RPCs were not counted"
echo "$metrics" | grep -Eq '^condisc_p2p_lookup_hops_count [0-9]+' \
  || fail "/metrics: lookup hop histogram has no count"

echo "== /statusz (JSON)"
for a in $ADMIN1 $ADMIN2 $ADMIN3; do
  curl -fsS "http://$a/statusz" >"$workdir/status.json"
  python3 - "$workdir/status.json" <<'PY' || fail "$a/statusz failed validation"
import json, sys
doc = json.load(open(sys.argv[1]))
node, mets = doc["node"], doc["metrics"]
addr = node["addr"]
assert node["ready"], addr + ": not ready"
assert node["succ"]["Addr"] and node["pred"]["Addr"], addr + ": ring pointers missing"
assert mets["counters"].get('condisc_p2p_rpc_total{op="state"}', 0) > 0, \
    addr + ": no state RPCs counted (top scraped through this node)"
print("  " + addr + ": point=" + str(node["point"]) + " items=" + str(node["items"]) + " ok")
PY
done

echo "== /journalz (flight recorder)"
i=0
for a in $ADMIN1 $ADMIN2 $ADMIN3; do
  i=$((i+1))
  curl -fsS "http://$a/journalz" >"$workdir/journal$i.json"
  python3 - "$workdir/journal$i.json" <<'PY' || fail "$a/journalz failed validation"
import json, sys
doc = json.load(open(sys.argv[1]))
assert "node_id" in doc and "records" in doc, "journal stream shape"
kinds = {r["kind"] for r in doc["records"]}
assert kinds, "journal is empty after churn + traffic"
print("  node " + str(doc["node_id"]) + ": " + str(len(doc["records"]))
      + " records, kinds " + str(sorted(kinds)))
PY
done
# Across the cluster the recorders must have caught the full join handoff
# lifecycle (both joins were fenced, streamed, committed somewhere) and
# the end/succ flips on every node.
python3 - "$workdir"/journal{1,2,3}.json <<'PY' || fail "cluster journals miss the join handoff lifecycle"
import json, sys
kinds = set()
for path in sys.argv[1:]:
    kinds |= {r["kind"] for r in json.load(open(path))["records"]}
for want in ("hand_prepare", "hand_stream", "hand_commit", "end_succ_flip"):
    assert want in kinds, "missing " + want + " in " + str(sorted(kinds))
PY

echo "== /doctorz (live invariant verdicts)"
for a in $ADMIN1 $ADMIN2 $ADMIN3; do
  curl -fsS "http://$a/doctorz" >"$workdir/doctor.json"
  python3 - "$workdir/doctor.json" <<'PY' || fail "$a/doctorz failed validation"
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["healthy"], "unhealthy: " + str([v for v in doc["verdicts"] if not v["ok"]])
names = {v["invariant"] for v in doc["verdicts"]}
assert {"degree", "hop_p99", "local_balance"} <= names, "verdicts missing: " + str(names)
print("  healthy, invariants: " + str(sorted(names)))
PY
done

echo "== dhctl doctor exits 0 on the healthy cluster"
doctor_out=$("$workdir/dhctl" -node $NODE1 doctor) || fail "dhctl doctor exited non-zero on a healthy cluster"
echo "$doctor_out"
echo "$doctor_out" | grep -q "verdict: healthy" || fail "dhctl doctor verdict not healthy"
[ "$(echo "$doctor_out" | grep -c "healthy$")" -ge 3 ] || fail "dhctl doctor did not report all 3 nodes healthy"

echo "== dhctl journal merges a deterministic cluster timeline"
"$workdir/dhctl" -node $NODE1 journal >"$workdir/timeline1.txt" || fail "dhctl journal (run 1)"
"$workdir/dhctl" -node $NODE2 journal >"$workdir/timeline2.txt" || fail "dhctl journal (run 2, different bootstrap)"
grep -Eq "records from 3 nodes" "$workdir/timeline1.txt" || fail "dhctl journal did not merge 3 streams"
grep -q "hand_commit" "$workdir/timeline1.txt" || fail "merged timeline misses handoff commits"
# Same cluster, different bootstrap node => identical merged timeline
# (ring-version total order with deterministic tie-breaks, no clocks).
diff "$workdir/timeline1.txt" "$workdir/timeline2.txt" >/dev/null \
  || fail "merged timeline differs across bootstrap nodes"

echo "== /debug/pprof"
curl -fsS "http://$ADMIN1/debug/pprof/cmdline" >/dev/null || fail "pprof cmdline"
curl -fsS "http://$ADMIN1/debug/pprof/goroutine?debug=1" | grep -q goroutine \
  || fail "pprof goroutine dump"

echo "== crash phase: kill -9 node2, survivors absorb + repair"
kill -KILL "${pids[1]}"
wait "${pids[1]}" 2>/dev/null || true
# The survivors' failure detectors must trip (3 consecutive missed
# probes at the 500ms stabilize cadence), absorb the corpse's range, and
# re-materialize it from replicas. Poll until `dhctl doctor` is healthy
# again AND every key is served — the dead node's keys included.
deadline=$((SECONDS + 60))
healed=0
while [ $SECONDS -lt $deadline ]; do
  if "$workdir/dhctl" -node $NODE1 doctor >"$workdir/doctor_crash.txt" 2>/dev/null; then
    all_keys_ok=1
    for i in $(seq 1 20); do
      out=$("$workdir/dhctl" -node $NODE1 -seed $SEED get "key-$i" 2>/dev/null) || { all_keys_ok=0; break; }
      case "$out" in
        "val-$i"*) ;;
        *) all_keys_ok=0; break ;;
      esac
    done
    if [ "$all_keys_ok" = 1 ]; then healed=1; break; fi
  fi
  sleep 1
done
[ "$healed" = 1 ] || fail "cluster did not heal within 60s of kill -9 ($(cat "$workdir/doctor_crash.txt" 2>/dev/null))"
grep -q "verdict: healthy" "$workdir/doctor_crash.txt" \
  || fail "post-crash doctor verdict not healthy"
echo "  all 20 keys served after losing node2 ungracefully"

# The crash must be visible in the observability plane: a crash_absorb
# journal record and a non-zero absorb counter on some survivor.
absorbs=0
for a in $ADMIN1 $ADMIN3; do
  n=$(curl -fsS "http://$a/metrics" | sed -n 's/^condisc_p2p_crash_absorbs_total \([0-9]*\)/\1/p')
  absorbs=$((absorbs + ${n:-0}))
done
[ "$absorbs" -ge 1 ] || fail "no survivor counted a crash absorb"
"$workdir/dhctl" -node $NODE1 journal >"$workdir/timeline_crash.txt" || fail "dhctl journal after crash"
grep -q "crash_absorb" "$workdir/timeline_crash.txt" \
  || fail "merged timeline misses the crash_absorb record"
echo "  crash_absorb journaled, $absorbs absorb(s) counted"

echo "== graceful shutdown flushes telemetry"
kill -TERM "${pids[2]}"
wait "${pids[2]}" 2>/dev/null || true
grep -q "final telemetry snapshot" "$workdir/node3.log" \
  || fail "node3 did not flush telemetry on SIGTERM ($(tail -5 "$workdir/node3.log"))"
pids=("${pids[0]}" "${pids[1]}")

echo "live_smoke: PASS"
