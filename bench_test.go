package condisc

// This file maps every table and figure of the paper (and each
// theorem-level experiment indexed in DESIGN.md) to a benchmark target.
// `go test -bench=BenchmarkTable1` regenerates Table 1; the other targets
// follow the E-numbering of DESIGN.md. Each benchmark runs the shared
// experiment driver (internal/experiments) at a reduced scale so a full
// `go test -bench=.` completes in minutes; cmd/condisc-bench runs the same
// drivers at paper scale and prints the tables.

import (
	"testing"

	"condisc/internal/experiments"
)

// benchCfg trades problem size for bench-loop friendliness.
var benchCfg = experiments.Config{Seed: 42, Scale: 4}

func run(b *testing.B, f func(experiments.Config) experiments.Result) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := f(benchCfg)
		if r.Table == nil {
			b.Fatal("experiment produced no table")
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (E1): path length, congestion and
// linkage for Chord, Tapestry-style, CAN, small worlds, butterfly and
// Distance Halving.
func BenchmarkTable1(b *testing.B) { run(b, experiments.Table1) }

// BenchmarkFig1ContinuousMaps regenerates Figure 1 (E2).
func BenchmarkFig1ContinuousMaps(b *testing.B) { run(b, experiments.Fig1ContinuousMaps) }

// BenchmarkFig2PathTree regenerates Figure 2 (E3).
func BenchmarkFig2PathTree(b *testing.B) { run(b, experiments.Fig2PathTree) }

// BenchmarkFig3ActiveTreeMapping regenerates Figure 3 (E4).
func BenchmarkFig3ActiveTreeMapping(b *testing.B) { run(b, experiments.Fig3ActiveTreeMapping) }

// BenchmarkFig4FMRLookup regenerates Figure 4 (E5).
func BenchmarkFig4FMRLookup(b *testing.B) { run(b, experiments.Fig4FMRLookup) }

// BenchmarkThm21EdgeCount regenerates E6.
func BenchmarkThm21EdgeCount(b *testing.B) { run(b, experiments.Thm21EdgeCount) }

// BenchmarkThm22Degrees regenerates E7.
func BenchmarkThm22Degrees(b *testing.B) { run(b, experiments.Thm22Degrees) }

// BenchmarkCor25FastLookupPath regenerates E8.
func BenchmarkCor25FastLookupPath(b *testing.B) { run(b, experiments.Cor25FastLookupPath) }

// BenchmarkThm27Congestion regenerates E9.
func BenchmarkThm27Congestion(b *testing.B) { run(b, experiments.Thm27Congestion) }

// BenchmarkThm28DHLookupPath regenerates E10.
func BenchmarkThm28DHLookupPath(b *testing.B) { run(b, experiments.Thm28DHLookupPath) }

// BenchmarkThm210Permutation regenerates E11.
func BenchmarkThm210Permutation(b *testing.B) { run(b, experiments.Thm210Permutation) }

// BenchmarkThm213DegreeSweep regenerates E12 (Table 1's ∆ row family).
func BenchmarkThm213DegreeSweep(b *testing.B) { run(b, experiments.Thm213DegreeSweep) }

// BenchmarkLemma33ActiveTree regenerates E13.
func BenchmarkLemma33ActiveTree(b *testing.B) { run(b, experiments.Lemma33ActiveTree) }

// BenchmarkThm36SingleHotspot regenerates E14 (with the caching-off
// ablation).
func BenchmarkThm36SingleHotspot(b *testing.B) { run(b, experiments.Thm36SingleHotspot) }

// BenchmarkThm38MultiHotspot regenerates E15.
func BenchmarkThm38MultiHotspot(b *testing.B) { run(b, experiments.Thm38MultiHotspot) }

// BenchmarkContentUpdate regenerates E16.
func BenchmarkContentUpdate(b *testing.B) { run(b, experiments.ContentUpdate) }

// BenchmarkLemma41SingleChoice regenerates E17.
func BenchmarkLemma41SingleChoice(b *testing.B) { run(b, experiments.Lemma41SingleChoice) }

// BenchmarkLemma42ImprovedChoice regenerates E18.
func BenchmarkLemma42ImprovedChoice(b *testing.B) { run(b, experiments.Lemma42ImprovedChoice) }

// BenchmarkLemma43MultipleChoice regenerates E19.
func BenchmarkLemma43MultipleChoice(b *testing.B) { run(b, experiments.Lemma43MultipleChoice) }

// BenchmarkThm44SelfCorrection regenerates E20a.
func BenchmarkThm44SelfCorrection(b *testing.B) { run(b, experiments.Thm44SelfCorrection) }

// BenchmarkBucketChurn regenerates E20.
func BenchmarkBucketChurn(b *testing.B) { run(b, experiments.BucketChurn) }

// BenchmarkLemma53Smoothness2D regenerates E21.
func BenchmarkLemma53Smoothness2D(b *testing.B) { run(b, experiments.Lemma53Smoothness2D) }

// BenchmarkCor52Expander regenerates E22.
func BenchmarkCor52Expander(b *testing.B) { run(b, experiments.Cor52Expander) }

// BenchmarkThm63SimpleLookup regenerates E23.
func BenchmarkThm63SimpleLookup(b *testing.B) { run(b, experiments.Thm63SimpleLookup) }

// BenchmarkThm64FailStop regenerates E24.
func BenchmarkThm64FailStop(b *testing.B) { run(b, experiments.Thm64FailStop) }

// BenchmarkThm66FMR regenerates E25.
func BenchmarkThm66FMR(b *testing.B) { run(b, experiments.Thm66FMR) }

// BenchmarkThm71Emulation regenerates E26.
func BenchmarkThm71Emulation(b *testing.B) { run(b, experiments.Thm71Emulation) }

// BenchmarkJoinLeaveCost regenerates E27.
func BenchmarkJoinLeaveCost(b *testing.B) { run(b, experiments.JoinLeaveCost) }

// BenchmarkErasureVsReplication regenerates E29 (the §6.2 storage
// extension: erasure coding across an item's covers vs replication).
func BenchmarkErasureVsReplication(b *testing.B) { run(b, experiments.ErasureVsReplication) }

// BenchmarkDHTGet measures the end-to-end cost of a cached Get on the
// public facade (not a paper item; a library-level micro-benchmark).
func BenchmarkDHTGet(b *testing.B) {
	d := New(1024, Options{Seed: 99})
	d.Put(0, "bench", []byte("value"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := d.Get(i%d.N(), "bench"); !ok {
			b.Fatal("miss")
		}
	}
}
