package condisc

// This file maps every table and figure of the paper (and each
// theorem-level experiment indexed in DESIGN.md) to a benchmark target.
// `go test -bench=BenchmarkTable1` regenerates Table 1; the other targets
// follow the E-numbering of DESIGN.md. Each benchmark runs the shared
// experiment driver (internal/experiments) at a reduced scale so a full
// `go test -bench=.` completes in minutes; cmd/condisc-bench runs the same
// drivers at paper scale and prints the tables.

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"condisc/internal/cache"
	"condisc/internal/dhgraph"
	"condisc/internal/experiments"
	"condisc/internal/interval"
	"condisc/internal/route"
	"condisc/internal/store"
	"condisc/internal/telemetry"
)

// benchCfg trades problem size for bench-loop friendliness.
var benchCfg = experiments.Config{Seed: 42, Scale: 4}

func run(b *testing.B, f func(experiments.Config) experiments.Result) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := f(benchCfg)
		if r.Table == nil {
			b.Fatal("experiment produced no table")
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (E1): path length, congestion and
// linkage for Chord, Tapestry-style, CAN, small worlds, butterfly and
// Distance Halving.
func BenchmarkTable1(b *testing.B) { run(b, experiments.Table1) }

// BenchmarkFig1ContinuousMaps regenerates Figure 1 (E2).
func BenchmarkFig1ContinuousMaps(b *testing.B) { run(b, experiments.Fig1ContinuousMaps) }

// BenchmarkFig2PathTree regenerates Figure 2 (E3).
func BenchmarkFig2PathTree(b *testing.B) { run(b, experiments.Fig2PathTree) }

// BenchmarkFig3ActiveTreeMapping regenerates Figure 3 (E4).
func BenchmarkFig3ActiveTreeMapping(b *testing.B) { run(b, experiments.Fig3ActiveTreeMapping) }

// BenchmarkFig4FMRLookup regenerates Figure 4 (E5).
func BenchmarkFig4FMRLookup(b *testing.B) { run(b, experiments.Fig4FMRLookup) }

// BenchmarkThm21EdgeCount regenerates E6.
func BenchmarkThm21EdgeCount(b *testing.B) { run(b, experiments.Thm21EdgeCount) }

// BenchmarkThm22Degrees regenerates E7.
func BenchmarkThm22Degrees(b *testing.B) { run(b, experiments.Thm22Degrees) }

// BenchmarkCor25FastLookupPath regenerates E8.
func BenchmarkCor25FastLookupPath(b *testing.B) { run(b, experiments.Cor25FastLookupPath) }

// BenchmarkThm27Congestion regenerates E9.
func BenchmarkThm27Congestion(b *testing.B) { run(b, experiments.Thm27Congestion) }

// BenchmarkThm28DHLookupPath regenerates E10.
func BenchmarkThm28DHLookupPath(b *testing.B) { run(b, experiments.Thm28DHLookupPath) }

// BenchmarkThm210Permutation regenerates E11.
func BenchmarkThm210Permutation(b *testing.B) { run(b, experiments.Thm210Permutation) }

// BenchmarkThm213DegreeSweep regenerates E12 (Table 1's ∆ row family).
func BenchmarkThm213DegreeSweep(b *testing.B) { run(b, experiments.Thm213DegreeSweep) }

// BenchmarkLemma33ActiveTree regenerates E13.
func BenchmarkLemma33ActiveTree(b *testing.B) { run(b, experiments.Lemma33ActiveTree) }

// BenchmarkThm36SingleHotspot regenerates E14 (with the caching-off
// ablation).
func BenchmarkThm36SingleHotspot(b *testing.B) { run(b, experiments.Thm36SingleHotspot) }

// BenchmarkThm38MultiHotspot regenerates E15.
func BenchmarkThm38MultiHotspot(b *testing.B) { run(b, experiments.Thm38MultiHotspot) }

// BenchmarkContentUpdate regenerates E16.
func BenchmarkContentUpdate(b *testing.B) { run(b, experiments.ContentUpdate) }

// BenchmarkLemma41SingleChoice regenerates E17.
func BenchmarkLemma41SingleChoice(b *testing.B) { run(b, experiments.Lemma41SingleChoice) }

// BenchmarkLemma42ImprovedChoice regenerates E18.
func BenchmarkLemma42ImprovedChoice(b *testing.B) { run(b, experiments.Lemma42ImprovedChoice) }

// BenchmarkLemma43MultipleChoice regenerates E19.
func BenchmarkLemma43MultipleChoice(b *testing.B) { run(b, experiments.Lemma43MultipleChoice) }

// BenchmarkThm44SelfCorrection regenerates E20a.
func BenchmarkThm44SelfCorrection(b *testing.B) { run(b, experiments.Thm44SelfCorrection) }

// BenchmarkBucketChurn regenerates E20.
func BenchmarkBucketChurn(b *testing.B) { run(b, experiments.BucketChurn) }

// BenchmarkLemma53Smoothness2D regenerates E21.
func BenchmarkLemma53Smoothness2D(b *testing.B) { run(b, experiments.Lemma53Smoothness2D) }

// BenchmarkCor52Expander regenerates E22.
func BenchmarkCor52Expander(b *testing.B) { run(b, experiments.Cor52Expander) }

// BenchmarkThm63SimpleLookup regenerates E23.
func BenchmarkThm63SimpleLookup(b *testing.B) { run(b, experiments.Thm63SimpleLookup) }

// BenchmarkThm64FailStop regenerates E24.
func BenchmarkThm64FailStop(b *testing.B) { run(b, experiments.Thm64FailStop) }

// BenchmarkThm66FMR regenerates E25.
func BenchmarkThm66FMR(b *testing.B) { run(b, experiments.Thm66FMR) }

// BenchmarkThm71Emulation regenerates E26.
func BenchmarkThm71Emulation(b *testing.B) { run(b, experiments.Thm71Emulation) }

// BenchmarkJoinLeaveCost regenerates E27.
func BenchmarkJoinLeaveCost(b *testing.B) { run(b, experiments.JoinLeaveCost) }

// BenchmarkErasureVsReplication regenerates E29 (the §6.2 storage
// extension: erasure coding across an item's covers vs replication).
func BenchmarkErasureVsReplication(b *testing.B) { run(b, experiments.ErasureVsReplication) }

// BenchmarkChurnLocality regenerates E28 (incremental churn vs rebuild).
func BenchmarkChurnLocality(b *testing.B) { run(b, experiments.ChurnLocality) }

// BenchmarkStoreEngines regenerates E30 (the ordered item-store layer:
// put/get cost per engine and split-cost flatness in resident items).
func BenchmarkStoreEngines(b *testing.B) { run(b, experiments.StoreEngines) }

// BenchmarkStalenessVsStabilization regenerates E31 (stale-route rate vs
// stabilization period under churn, on the live TCP cluster).
func BenchmarkStalenessVsStabilization(b *testing.B) {
	run(b, experiments.StalenessVsStabilization)
}

// BenchmarkZipfLoadSkew regenerates E32 (per-node load skew under a Zipf
// workload on a live cluster, measured entirely from scraped /statusz).
func BenchmarkZipfLoadSkew(b *testing.B) { run(b, experiments.ZipfLoadSkew) }

// BenchmarkCrashFaultTolerance regenerates the k=3 arm of E34 (mass
// ungraceful crash on the live TCP cluster) and reports the availability
// and loss numbers as custom metrics, so bench2json tracks the
// fault-tolerance plane release over release. Zero lost acked writes is
// a hard gate, not a trend.
func BenchmarkCrashFaultTolerance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		avail, lost, acked := experiments.CrashAvailabilityK3(benchCfg)
		if acked == 0 {
			b.Fatal("E34: no writes were acknowledged")
		}
		if lost > 0 {
			b.Fatalf("E34: %d of %d acked writes lost after crash repair", lost, acked)
		}
		b.ReportMetric(avail, "availability")
		b.ReportMetric(float64(lost), "lost-writes")
	}
}

// ---- churn benchmarks: incremental join/leave vs the full rebuild ----
//
// The incremental engine patches only the O(ρ·∆) servers around the changed
// segment and migrates only the split segment's items; the baseline below
// reproduces the seed's behaviour — rebuild the whole discrete graph, drop
// all cache state, and rehash every stored item — for the same DHT.
//
// BenchmarkJoin and BenchmarkLeave sweep n = 1k, 10k, 100k with a constant
// 10 items per server. The acceptance bar for the handle-keyed state model
// is that the per-op cost stays flat in n (within small-constant drift from
// the O(log n) factors): nothing in the join/leave path may scan, shift, or
// renumber Θ(n) state.

const itemsPerServer = 10

var (
	churnMu   sync.Mutex
	churnDHTs = map[int]*DHT{}
)

// benchChurnDHT builds (once per size) an n-server DHT holding 10n items,
// placing the items directly at their owners to keep setup time out of the
// way.
func benchChurnDHT(b *testing.B, n int) *DHT {
	churnMu.Lock()
	defer churnMu.Unlock()
	if d, ok := churnDHTs[n]; ok {
		return d
	}
	d := New(n, Options{Seed: 4242})
	for i := 0; i < n*itemsPerServer; i++ {
		k := fmt.Sprintf("item-%d", i)
		p := d.hash.Point(k)
		if err := d.stores[d.ring.CoverHandle(p)].Put(p, k, []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	churnDHTs[n] = d
	return d
}

var churnSizes = []struct {
	name string
	n    int
}{{"n=1k", 1_000}, {"n=10k", 10_000}, {"n=100k", 100_000}}

// BenchmarkJoin measures one incremental Join per size (the paired Leave is
// untimed, keeping the network size stable).
func BenchmarkJoin(b *testing.B) {
	for _, sz := range churnSizes {
		b.Run(sz.name, func(b *testing.B) {
			d := benchChurnDHT(b, sz.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := d.Join()
				b.StopTimer()
				if err := d.Leave(id); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkLeave measures one incremental Leave per size (the paired Join
// is untimed).
func BenchmarkLeave(b *testing.B) {
	for _, sz := range churnSizes {
		b.Run(sz.name, func(b *testing.B) {
			d := benchChurnDHT(b, sz.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				id := d.Join()
				b.StartTimer()
				if err := d.Leave(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChurnConcurrent sweeps the batch width of concurrent churn at
// n = 100k: each iteration joins `width` servers through JoinBatch and
// removes them again through LeaveBatch, so the network size is stable
// and every iteration processes 2·width churn events. The derived
// "ns/event" metric is the per-event cost at that width; the CI gate
// compares width=16 against width=1 (the serial baseline — Join/Leave
// are the width-1 forms of the batch API) and requires the throughput
// ratio the runner's core count makes possible, up to the 4× target.
// "cpus" records GOMAXPROCS so the gate can scale its bar.
func BenchmarkChurnConcurrent(b *testing.B) {
	d := benchChurnDHT(b, 100_000)
	for _, width := range []int{1, 2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids := d.JoinBatch(width)
				if err := d.LeaveBatch(ids); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			events := float64(b.N) * 2 * float64(width)
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/events, "ns/event")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cpus")
		})
	}
}

// ---- read-under-churn: the wait-free read path's acceptance bench ----
//
// BenchmarkReadUnderChurn measures Get throughput on a 100k-server DHT
// while a churn wave of the given width is continuously in flight, against
// the quiescent baseline on the same instance. The read path resolves
// owners against epoch snapshots and never takes the churn lock, so
// throughput during a wave must stay within a small constant of quiescent
// — the CI gate requires width-16 reads at >= 0.7x quiescent (scaled to
// the runner's core count: with one core the churn goroutine and the
// reader share the CPU, which is scheduler fairness, not read-path
// blocking). Caching is disabled: cache hits would measure the cache, not
// the snapshot-resolving owner read.

const readBenchKeys = 1024

var (
	readDHTOnce sync.Once
	readDHT     *DHT
)

// benchReadDHT builds (once) the 100k-server cacheless DHT with the read
// key universe placed directly at the owners.
func benchReadDHT() *DHT {
	readDHTOnce.Do(func() {
		d := New(100_000, Options{Seed: 2718, CacheThreshold: -1})
		for i := 0; i < readBenchKeys; i++ {
			k := fmt.Sprintf("read-%d", i)
			p := d.hash.Point(k)
			if err := d.stores[d.ring.CoverHandle(p)].Put(p, k, []byte("v")); err != nil {
				panic(err)
			}
		}
		readDHT = d
	})
	return readDHT
}

// readUnderChurnLoop runs b.N Gets; width > 0 keeps a JoinBatch/LeaveBatch
// wave of that width continuously in flight in the background. The wave
// count is reported so a run where churn silently stalled is visible.
func readUnderChurnLoop(b *testing.B, width int) {
	d := benchReadDHT()
	stop := make(chan struct{})
	done := make(chan struct{})
	var waves int64
	if width > 0 {
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
				}
				ids := d.JoinBatch(width)
				if err := d.LeaveBatch(ids); err != nil {
					panic(err)
				}
				waves++
			}
		}()
	} else {
		close(done)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("read-%d", i%readBenchKeys)
		if _, _, ok := d.Get(i%100_000, key); !ok {
			b.Fatalf("Get(%s) missed under churn", key)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/sec")
	b.ReportMetric(float64(waves), "waves")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cpus")
}

// BenchmarkReadUnderChurn sweeps the in-flight wave width; "quiescent" is
// the no-churn baseline the gate compares against. The "notel-width=16"
// arm reruns the width-16 sweep point with the global telemetry kill
// switch off: it is the overhead baseline for the observability gate,
// which requires the instrumented read path to hold >= 0.9x of it.
func BenchmarkReadUnderChurn(b *testing.B) {
	b.Run("quiescent", func(b *testing.B) { readUnderChurnLoop(b, 0) })
	for _, width := range []int{16, 64} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) { readUnderChurnLoop(b, width) })
	}
	b.Run("notel-width=16", func(b *testing.B) {
		prev := telemetry.Enabled()
		telemetry.SetEnabled(false)
		defer telemetry.SetEnabled(prev)
		readUnderChurnLoop(b, 16)
	})
}

// fullRebuild reproduces the seed's per-churn work: rebuild the discrete
// graph and network from scratch, recreate the caching system (discarding
// all §3 state), and rehash every stored item.
func fullRebuild(d *DHT) {
	old := d.stores
	d.net = route.NewNetwork(dhgraph.Build(d.ring, d.opts.Delta))
	if d.opts.Delta == 2 && d.opts.CacheThreshold >= 0 {
		c := d.opts.CacheThreshold
		if c == 0 {
			c = int(math.Log2(float64(d.ring.N()))) + 1
		}
		d.cache = cache.NewSystem(d.net, d.hash, c)
	} else {
		d.cache = nil
	}
	d.stores = make(map[ServerID]store.Store, d.ring.N())
	for i := 0; i < d.ring.N(); i++ {
		d.stores[d.ring.HandleAt(i)] = d.newStore()
	}
	for _, m := range old {
		m.Ascend(interval.FullCircle, func(it store.Item) bool {
			d.stores[d.ring.CoverHandle(it.Point)].Put(it.Point, it.Key, it.Value)
			return true
		})
	}
}

// BenchmarkJoinFullRebuild is the seed's baseline at n=10k: every churn
// event rebuilds the graph and rehashes all items. Compare against
// BenchmarkJoin/n=10k.
func BenchmarkJoinFullRebuild(b *testing.B) {
	d := benchChurnDHT(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := d.Join()
		fullRebuild(d)
		b.StopTimer()
		if err := d.Leave(id); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkLeaveFullRebuild is the leave-side baseline at n=10k.
func BenchmarkLeaveFullRebuild(b *testing.B) {
	d := benchChurnDHT(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		id := d.Join()
		b.StartTimer()
		if err := d.Leave(id); err != nil {
			b.Fatal(err)
		}
		fullRebuild(d)
	}
}

// BenchmarkDHTGet measures the end-to-end cost of a cached Get on the
// public facade (not a paper item; a library-level micro-benchmark).
func BenchmarkDHTGet(b *testing.B) {
	d := New(1024, Options{Seed: 99})
	d.Put(0, "bench", []byte("value"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := d.Get(i%d.N(), "bench"); !ok {
			b.Fatal("miss")
		}
	}
}
