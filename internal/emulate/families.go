// Package emulate implements §7: dynamically emulating any family of
// bounded-degree graphs over a smooth decomposition of [0,1).
//
// Given a family {G_1, G_2, ...} where G_k has N_k vertices, the mapping
// Φ_k(u_j) = V_i iff j/N_k ∈ s(x_i) spreads the nodes of G_k evenly over
// the servers; the emulated overlay G⃗x opens an edge (V_i, V_j) for every
// G_k edge whose endpoints map to V_i and V_j. For a ρ-smooth
// decomposition with N_k ≥ n, every server simulates at most ρ·N_k/n + 1
// nodes, every overlay edge carries at most (ρ·N_k/n+1)·d G_k-edges, and
// the overlay degree is at most (ρ·N_k/n+1)·d (the three properties listed
// in §7) — so G⃗x emulates G_k in real time with constant slowdown.
package emulate

// Family is an infinite family of fixed-degree graphs, G_k having Nodes(k)
// vertices labelled 0..Nodes(k)-1.
type Family interface {
	// Name identifies the family.
	Name() string
	// Nodes returns |V(G_k)|; it must be non-decreasing in k.
	Nodes(k int) int
	// Degree returns the maximum degree of G_k.
	Degree(k int) int
	// Neighbors returns the (undirected) neighbour list of node u in G_k.
	Neighbors(k, u int) []int
}

// Hypercube is the k-dimensional hypercube: 2^k nodes of degree k. (Not
// constant degree — included because the paper's methodology covers it and
// it exercises the degree-dependent bounds.)
type Hypercube struct{}

func (Hypercube) Name() string     { return "hypercube" }
func (Hypercube) Nodes(k int) int  { return 1 << k }
func (Hypercube) Degree(k int) int { return k }
func (Hypercube) Neighbors(k, u int) []int {
	out := make([]int, k)
	for b := 0; b < k; b++ {
		out[b] = u ^ 1<<b
	}
	return out
}

// DeBruijn is the binary de Bruijn graph: 2^k nodes, undirected degree <= 4
// (Definition 2).
type DeBruijn struct{}

func (DeBruijn) Name() string     { return "debruijn" }
func (DeBruijn) Nodes(k int) int  { return 1 << k }
func (DeBruijn) Degree(k int) int { return 4 }
func (DeBruijn) Neighbors(k, u int) []int {
	n := 1 << k
	set := map[int]bool{}
	set[(2*u)%n] = true
	set[(2*u+1)%n] = true
	set[u>>1] = true
	set[u>>1|n>>1] = true
	delete(set, u)
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	return out
}

// Torus2D is the 2^⌈k/2⌉ × 2^⌊k/2⌋ wrap-around grid: 2^k nodes of degree 4
// (the topology CAN approximates).
type Torus2D struct{}

func (Torus2D) Name() string     { return "torus2d" }
func (Torus2D) Nodes(k int) int  { return 1 << k }
func (Torus2D) Degree(k int) int { return 4 }
func (Torus2D) Neighbors(k, u int) []int {
	w := 1 << ((k + 1) / 2) // width
	h := 1 << (k / 2)       // height
	x, y := u%w, u/w
	set := map[int]bool{
		(x+1)%w + y*w:   true,
		(x-1+w)%w + y*w: true,
		x + (y+1)%h*w:   true,
		x + (y-1+h)%h*w: true,
	}
	delete(set, u)
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	return out
}

// CCC is the cube-connected-cycles network: k·2^k nodes of degree 3 — the
// classic constant-degree stand-in for the hypercube.
type CCC struct{}

func (CCC) Name() string { return "ccc" }
func (CCC) Nodes(k int) int {
	if k < 1 {
		return 1
	}
	return k << k
}
func (CCC) Degree(k int) int { return 3 }
func (CCC) Neighbors(k, u int) []int {
	if k < 2 {
		return nil
	}
	w, pos := u/k, u%k
	set := map[int]bool{
		w*k + (pos+1)%k:      true,
		w*k + (pos-1+k)%k:    true,
		(w^(1<<pos))*k + pos: true,
	}
	delete(set, u)
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	return out
}

// Butterfly is the wrapped butterfly: k·2^k nodes of degree 4 (the
// topology Viceroy approximates, §1).
type Butterfly struct{}

func (Butterfly) Name() string { return "butterfly" }
func (Butterfly) Nodes(k int) int {
	if k < 1 {
		return 1
	}
	return k << k
}
func (Butterfly) Degree(k int) int { return 4 }
func (Butterfly) Neighbors(k, u int) []int {
	if k < 2 {
		return nil
	}
	w, l := u/k, u%k
	next, prev := (l+1)%k, (l-1+k)%k
	set := map[int]bool{
		w*k + next:             true,
		(w^(1<<l))*k + next:    true,
		w*k + prev:             true,
		(w^(1<<prev))*k + prev: true,
	}
	delete(set, u)
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	return out
}

// AllFamilies lists the built-in families.
func AllFamilies() []Family {
	return []Family{Hypercube{}, DeBruijn{}, Torus2D{}, CCC{}, Butterfly{}}
}
