package emulate

import (
	"math/rand/v2"
	"sort"
	"testing"

	"condisc/internal/interval"
	"condisc/internal/partition"
)

// TestFamiliesAreSymmetric: every family's Neighbors relation is symmetric
// and respects the declared degree bound.
func TestFamiliesAreSymmetric(t *testing.T) {
	for _, fam := range AllFamilies() {
		for _, k := range []int{3, 4, 6} {
			N := fam.Nodes(k)
			for u := 0; u < N; u++ {
				nbrs := fam.Neighbors(k, u)
				if len(nbrs) > fam.Degree(k) {
					t.Fatalf("%s k=%d: node %d degree %d > bound %d",
						fam.Name(), k, u, len(nbrs), fam.Degree(k))
				}
				for _, v := range nbrs {
					if v < 0 || v >= N {
						t.Fatalf("%s k=%d: neighbour %d out of range", fam.Name(), k, v)
					}
					found := false
					for _, w := range fam.Neighbors(k, v) {
						if w == u {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("%s k=%d: edge %d-%d not symmetric", fam.Name(), k, u, v)
					}
				}
			}
		}
	}
}

func TestFamilySizes(t *testing.T) {
	if (Hypercube{}).Nodes(5) != 32 || (DeBruijn{}).Nodes(5) != 32 {
		t.Error("2^k families wrong size")
	}
	if (CCC{}).Nodes(3) != 24 || (Butterfly{}).Nodes(3) != 24 {
		t.Error("k·2^k families wrong size")
	}
}

// TestPhiPartition: Φ_k maps every node to exactly one server, and NodesOf
// is the exact inverse of ServerOf.
func TestPhiPartition(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	ring := partition.Grow(partition.New(), 100, partition.MultipleChooser(2), rng)
	e := Build(DeBruijn{}, ring)
	N := e.Fam.Nodes(e.K)
	if N < ring.N() {
		t.Fatalf("chose k with too few nodes: %d < %d", N, ring.N())
	}
	owned := make([]int, N)
	for i := range owned {
		owned[i] = -1
	}
	for s := 0; s < ring.N(); s++ {
		for _, j := range e.NodesOf(s) {
			if owned[j] != -1 {
				t.Fatalf("node %d owned by both %d and %d", j, owned[j], s)
			}
			owned[j] = s
			if e.ServerOf(j) != s {
				t.Fatalf("NodesOf/ServerOf disagree on node %d", j)
			}
		}
	}
	for j, s := range owned {
		if s == -1 {
			t.Fatalf("node %d unowned", j)
		}
	}
}

// TestSection7Properties checks the three §7 properties for every family
// over a smooth ring: load <= ρN/n+1, overlay degree <= load·d, and edge
// multiplicity <= load².
func TestSection7Properties(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	ring := partition.Grow(partition.New(), 128, partition.MultipleChooser(2), rng)
	for _, fam := range AllFamilies() {
		e := Build(fam, ring)
		loadBound := e.LoadBound()
		if got := float64(e.MaxLoad()); got > loadBound {
			t.Errorf("%s: max load %v > ρN/n+1 = %v", fam.Name(), got, loadBound)
		}
		if got := float64(e.Overlay().MaxDegree()); got > e.DegreeBound() {
			t.Errorf("%s: overlay degree %v > bound %v", fam.Name(), got, e.DegreeBound())
		}
		lb := loadBound
		if got := float64(e.MaxEdgeMultiplicity()); got > lb*lb*float64(fam.Degree(e.K)) {
			t.Errorf("%s: edge multiplicity %v > ρ²-style bound", fam.Name(), got)
		}
	}
}

// TestOverlayConnected: the emulated computation graph (active servers) is
// connected for every family; with the dense k choice, every server is
// active and the full overlay is connected.
func TestOverlayConnected(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	ring := partition.Grow(partition.New(), 64, partition.MultipleChooser(2), rng)
	for _, fam := range AllFamilies() {
		e := Build(fam, ring)
		if !e.ConnectedActive() {
			t.Errorf("%s: active overlay disconnected", fam.Name())
		}
		d := BuildDense(fam, ring)
		if len(d.ActiveServers()) != ring.N() {
			t.Errorf("%s: dense build left %d of %d servers inactive",
				fam.Name(), ring.N()-len(d.ActiveServers()), ring.N())
		}
		if !d.Overlay().Connected() {
			t.Errorf("%s: dense overlay disconnected", fam.Name())
		}
	}
}

// TestOverlayEdgesComeFromGk: every overlay edge corresponds to at least
// one G_k edge across the server boundary (no spurious edges).
func TestOverlayEdgesComeFromGk(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	ring := partition.Grow(partition.New(), 48, partition.MultipleChooser(2), rng)
	e := Build(CCC{}, ring)
	for s := 0; s < ring.N(); s++ {
		for _, s2 := range e.Overlay().Neighbors(s) {
			found := false
			for _, u := range e.NodesOf(s) {
				for _, v := range e.Fam.Neighbors(e.K, u) {
					if e.ServerOf(v) == s2 {
						found = true
						break
					}
				}
				if found {
					break
				}
			}
			if !found {
				t.Fatalf("overlay edge %d-%d has no G_k witness", s, s2)
			}
		}
	}
}

// TestEmulationSurvivesChurn: after joins and leaves, rebuilding the
// emulation preserves the properties (the "cost O(ρ) per change" claim is
// about locality; here we verify correctness after change).
func TestEmulationSurvivesChurn(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	ring := partition.Grow(partition.New(), 64, partition.MultipleChooser(2), rng)
	e1 := Build(DeBruijn{}, ring)
	before := e1.Overlay().MaxDegree()

	// Churn: 16 joins, 16 leaves.
	for i := 0; i < 16; i++ {
		partition.Grow(ring, 1, partition.MultipleChooser(2), rng)
		ring.RemoveAt(rng.IntN(ring.N()))
	}
	e2 := Build(DeBruijn{}, ring)
	if got := float64(e2.MaxLoad()); got > e2.LoadBound() {
		t.Errorf("after churn: load %v > bound %v", got, e2.LoadBound())
	}
	if after := e2.Overlay().MaxDegree(); after > 4*before+8 {
		t.Errorf("degree exploded after churn: %d -> %d", before, after)
	}
}

// TestSubUlpSegmentEmulation: the emulation mapping Φ_k stays a partition
// of G_k's nodes even when the decomposition contains a 1-ulp segment.
// This is the degenerate-segment audit for the emulation path (the bug
// class fixed in continuous.DeltaImages and Segment.Half/HalfPlus): the
// finding is that emulate carries no such rounding hazard — ServerOf uses
// exact Ring.Cover and NodesOf a ceiling'd first-node computation, neither
// of which divides a segment length — and this regression pins that down.
func TestSubUlpSegmentEmulation(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 31))
	pts := make([]interval.Point, 0, 34)
	for i := 0; i < 32; i++ {
		pts = append(pts, interval.Point(rng.Uint64()))
	}
	// Adjacent points one ulp apart: the smallest possible segment.
	base := interval.Point(0x4000000000001234)
	pts = append(pts, base, base+1)
	ring := partition.FromPoints(pts)

	for _, fam := range AllFamilies() {
		e := Build(fam, ring)
		N := fam.Nodes(e.K)
		seen := make([]int, N)
		total := 0
		for i := 0; i < ring.N(); i++ {
			for _, j := range e.NodesOf(i) {
				if got := e.ServerOf(j); got != i {
					t.Fatalf("%T: NodesOf(%d) lists node %d but ServerOf(%d) = %d", fam, i, j, j, got)
				}
				seen[j]++
				total++
			}
		}
		if total != N {
			t.Fatalf("%T: Φ_k assigned %d of %d nodes with a 1-ulp segment present", fam, total, N)
		}
		for j, c := range seen {
			if c != 1 {
				t.Fatalf("%T: node %d assigned %d times", fam, j, c)
			}
		}
	}
}

// TestLocalEstimate reproduces the unknown-n variant of §7 (Theorem 7.1):
// every server's k-list covers the true k, and the union degree stays
// within the 2dρ·log ρ-style bound.
func TestLocalEstimate(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	ring := partition.Grow(partition.New(), 64, partition.MultipleChooser(2), rng)
	rho := ring.Smoothness()
	maxDeg, covered := LocalEstimate(DeBruijn{}, ring, rho)
	if !covered {
		t.Error("true k missing from some server's list")
	}
	single := Build(DeBruijn{}, ring).Overlay().MaxDegree()
	if maxDeg < single {
		t.Errorf("union degree %d below single-k degree %d", maxDeg, single)
	}
	// The list has O(log ρ²) entries; allow a generous multiple.
	if float64(maxDeg) > 20*float64(single) {
		t.Errorf("union degree %d too large vs single-k %d", maxDeg, single)
	}
}

// TestNodesOfSortedDisjoint: NodesOf returns each server's nodes in
// ascending order without duplicates (wrap segment included).
func TestNodesOfSortedDisjoint(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	ring := partition.Grow(partition.New(), 30, partition.SingleChooser, rng)
	e := Build(Torus2D{}, ring)
	for s := 0; s < ring.N(); s++ {
		nodes := e.NodesOf(s)
		// The wrapping server may have a descending seam; sort a copy and
		// check for duplicates only.
		c := append([]int(nil), nodes...)
		sort.Ints(c)
		for i := 1; i < len(c); i++ {
			if c[i] == c[i-1] {
				t.Fatalf("server %d has duplicate node %d", s, c[i])
			}
		}
	}
}
