package emulate

import (
	"math"
	"math/bits"

	"condisc/internal/graph"
	"condisc/internal/interval"
	"condisc/internal/partition"
)

// Emulation is a frozen emulation of one family member G_k over a ring
// decomposition.
type Emulation struct {
	Fam  Family
	K    int
	Ring *partition.Ring

	overlay *graph.Undirected
	// loads[i] = number of G_k nodes simulated by server i.
	loads []int
	// maxMult = max number of G_k edges simulated by one overlay edge.
	maxMult int
}

// Build emulates the smallest G_k with Nodes(k) >= n over the ring.
func Build(fam Family, ring *partition.Ring) *Emulation {
	n := ring.N()
	k := 1
	for fam.Nodes(k) < n {
		k++
	}
	return BuildK(fam, ring, k)
}

// BuildK emulates G_k explicitly.
func BuildK(fam Family, ring *partition.Ring, k int) *Emulation {
	e := &Emulation{Fam: fam, K: k, Ring: ring}
	n := ring.N()
	N := fam.Nodes(k)
	e.loads = make([]int, n)
	b := graph.NewBuilder(n)
	multiplicity := map[[2]int]int{}
	for u := 0; u < N; u++ {
		su := e.ServerOf(u)
		e.loads[su]++
		for _, v := range fam.Neighbors(k, u) {
			sv := e.ServerOf(v)
			if su == sv {
				continue
			}
			b.AddEdge(su, sv)
			key := [2]int{su, sv}
			if su > sv {
				key = [2]int{sv, su}
			}
			multiplicity[key]++
		}
	}
	for _, m := range multiplicity {
		// Each undirected G_k edge was visited from both endpoints.
		if m/2 > e.maxMult {
			e.maxMult = m / 2
		}
	}
	e.overlay = b.Build()
	return e
}

// nodePoint returns the point j/N_k as fixed point.
func (e *Emulation) nodePoint(j int) interval.Point {
	N := uint64(e.Fam.Nodes(e.K))
	q, _ := bits.Div64(uint64(j)%N, 0, N) // floor(j * 2^64 / N)
	return interval.Point(q)
}

// ServerOf computes Φ_k(u_j): the server whose segment contains j/N_k.
// It is a purely local computation for the server (it needs only its own
// segment boundaries), which is what makes the scheme distributed.
func (e *Emulation) ServerOf(j int) int {
	return e.Ring.Cover(e.nodePoint(j))
}

// NodesOf returns the G_k nodes simulated by server i.
func (e *Emulation) NodesOf(i int) []int {
	seg := e.Ring.Segment(i)
	N := e.Fam.Nodes(e.K)
	// Smallest j with j/N >= seg.Start: ceil(start * N / 2^64).
	hi, lo := bits.Mul64(uint64(seg.Start), uint64(N))
	j := int(hi)
	if lo > 0 {
		j++
	}
	var out []int
	for ; j < N; j++ {
		if !seg.Contains(e.nodePoint(j)) {
			break
		}
		out = append(out, j)
	}
	// The wrapping segment may also cover node 0 onward.
	if seg.Start+interval.Point(seg.Len) < seg.Start || seg.Len == 0 { // wraps
		for j := 0; j < N; j++ {
			if !seg.Contains(e.nodePoint(j)) {
				break
			}
			out = append(out, j)
		}
	}
	return out
}

// Overlay returns the emulated server-level graph.
func (e *Emulation) Overlay() *graph.Undirected { return e.overlay }

// ActiveServers returns the servers simulating at least one G_k node.
// When N_k is close to n, a short segment may own no node; such servers
// do not participate in the emulated computation (they remain reachable
// through the underlying DHT, which §7 assumes as the substrate).
func (e *Emulation) ActiveServers() []int {
	var out []int
	for i, l := range e.loads {
		if l > 0 {
			out = append(out, i)
		}
	}
	return out
}

// ConnectedActive reports whether the overlay restricted to active servers
// is connected — the property needed for the emulated computation.
func (e *Emulation) ConnectedActive() bool {
	active := e.ActiveServers()
	if len(active) <= 1 {
		return true
	}
	seen := map[int]bool{active[0]: true}
	queue := []int{active[0]}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range e.overlay.Neighbors(u) {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	for _, a := range active {
		if !seen[a] {
			return false
		}
	}
	return true
}

// BuildDense emulates the smallest G_k with Nodes(k) > ρ·n, which
// guarantees every segment (length >= 1/(ρn)) simulates at least one node,
// so all servers are active and the overlay itself is connected.
func BuildDense(fam Family, ring *partition.Ring) *Emulation {
	n := ring.N()
	rho := ring.Smoothness()
	k := 1
	for float64(fam.Nodes(k)) <= rho*float64(n) {
		k++
	}
	return BuildK(fam, ring, k)
}

// MaxLoad returns the maximum number of G_k nodes per server — §7
// property (1): at most ρ·N_k/n + 1.
func (e *Emulation) MaxLoad() int {
	m := 0
	for _, l := range e.loads {
		if l > m {
			m = l
		}
	}
	return m
}

// MaxEdgeMultiplicity returns the maximum G_k edges simulated by a single
// overlay edge — §7 property (2): at most ρ² (scaled by N_k/n).
func (e *Emulation) MaxEdgeMultiplicity() int { return e.maxMult }

// LoadBound returns the §7 property-(1) bound ρ·N_k/n + 1.
func (e *Emulation) LoadBound() float64 {
	rho := e.Ring.Smoothness()
	return rho*float64(e.Fam.Nodes(e.K))/float64(e.Ring.N()) + 1
}

// DegreeBound returns the §7 property-(3) bound (load bound)·d.
func (e *Emulation) DegreeBound() float64 {
	return e.LoadBound() * float64(e.Fam.Degree(e.K))
}

// LocalEstimate reproduces the unknown-n variant at the end of §7: each
// server estimates n_i = 1/|s(V_i)| and opens edges for every k' whose
// node count lies within a factor ρ² of n_i, guaranteeing the true k is on
// every server's list. It returns the max union degree over servers and
// whether the true k was indeed in every list.
func LocalEstimate(fam Family, ring *partition.Ring, rho float64) (maxUnionDegree int, trueKCovered bool) {
	n := ring.N()
	trueK := 1
	for fam.Nodes(trueK) < n {
		trueK++
	}
	trueKCovered = true

	// Precompute per-k emulations lazily over the k-range any server uses.
	emus := map[int]*Emulation{}
	for i := 0; i < n; i++ {
		segLen := ring.Segment(i).Len
		if segLen == 0 {
			continue
		}
		ni := math.Pow(2, 64) / float64(segLen)
		lo, hi := ni/(rho*rho), ni*rho*rho
		covered := false
		union := map[int]bool{}
		for k := 1; k <= 64; k++ {
			nk := float64(fam.Nodes(k))
			if nk < lo {
				continue
			}
			if nk > hi {
				break
			}
			if k == trueK {
				covered = true
			}
			emu, ok := emus[k]
			if !ok {
				emu = BuildK(fam, ring, k)
				emus[k] = emu
			}
			for _, nb := range emu.Overlay().Neighbors(i) {
				union[nb] = true
			}
		}
		if !covered {
			trueKCovered = false
		}
		if len(union) > maxUnionDegree {
			maxUnionDegree = len(union)
		}
	}
	return maxUnionDegree, trueKCovered
}
