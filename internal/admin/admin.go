// Package admin is the live introspection plane: a small HTTP server
// exposing a telemetry registry and a node status callback.
//
// Endpoints:
//
//	/metrics      Prometheus text exposition of the registry
//	/statusz      JSON: node status + metric snapshot + event ring
//	/healthz      "ok" (liveness); 503 "degraded: ..." on invariant breach
//	/journalz     JSON flight-recorder dump (journal.Stream)
//	/doctorz      JSON invariant verdicts (doctor.Report)
//	/debug/pprof  the standard runtime profiles
//
// The package is deliberately dumb: it owns no state of its own — every
// response is computed at scrape time from the registry, the status
// callback, the journal ring, and the doctor callback, so there is no
// cache to go stale and no write path to perturb the node.
package admin

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"condisc/internal/doctor"
	"condisc/internal/journal"
	"condisc/internal/telemetry"
)

// Option configures optional handler features (journal dump, doctor).
type Option func(*handlerOpts)

type handlerOpts struct {
	journalID   uint64
	journalAddr string
	jrn         *journal.Journal
	doctorFn    func() doctor.Report
}

// WithJournal exposes the node's flight recorder at /journalz, tagged
// with the node's identity so dhctl can merge streams across the
// cluster.
func WithJournal(nodeID uint64, addr string, j *journal.Journal) Option {
	return func(o *handlerOpts) {
		o.journalID, o.journalAddr, o.jrn = nodeID, addr, j
	}
}

// WithDoctor exposes the invariant checker at /doctorz and degrades
// /healthz to 503 while any invariant is breached. fn is called at
// scrape time; it must be safe for concurrent use.
func WithDoctor(fn func() doctor.Report) Option {
	return func(o *handlerOpts) { o.doctorFn = fn }
}

// Handler builds the admin mux. status, when non-nil, supplies the
// node-specific half of /statusz (ring pointers, neighbour table,
// items); it is called at scrape time.
func Handler(reg *telemetry.Registry, status func() any, opts ...Option) http.Handler {
	var ho handlerOpts
	for _, o := range opts {
		o(&ho)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		var node any
		if status != nil {
			node = status()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Node    any                `json:"node,omitempty"`
			Metrics telemetry.Snapshot `json:"metrics"`
		}{Node: node, Metrics: reg.Snapshot()})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ho.doctorFn != nil {
			if r := ho.doctorFn(); !r.Healthy {
				w.WriteHeader(http.StatusServiceUnavailable)
				_, _ = w.Write([]byte("degraded: " + strings.Join(r.Breached(), ", ") + "\n"))
				return
			}
		}
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/journalz", func(w http.ResponseWriter, _ *http.Request) {
		if ho.jrn == nil {
			http.Error(w, "no journal attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(journal.Stream{
			Node:    ho.journalID,
			Addr:    ho.journalAddr,
			Dropped: ho.jrn.Dropped(),
			Records: ho.jrn.Records(),
		})
	})
	mux.HandleFunc("/doctorz", func(w http.ResponseWriter, _ *http.Request) {
		if ho.doctorFn == nil {
			http.Error(w, "no doctor attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ho.doctorFn())
	})
	// net/http/pprof only self-registers on http.DefaultServeMux; wire
	// its handlers onto this mux explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is one running admin endpoint.
type Server struct {
	Addr string // bound address (resolved when Serve got ":0")
	srv  *http.Server
	ln   net.Listener
}

// Serve binds addr and serves h in the background. With a ":0" port the
// returned Server.Addr carries the kernel-chosen one.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close stops the server immediately (scrapes in flight are abandoned;
// the admin plane has no state to flush).
func (s *Server) Close() error { return s.srv.Close() }
