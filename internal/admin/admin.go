// Package admin is the live introspection plane: a small HTTP server
// exposing a telemetry registry and a node status callback.
//
// Endpoints:
//
//	/metrics      Prometheus text exposition of the registry
//	/statusz      JSON: node status + metric snapshot + event ring
//	/healthz      "ok" (liveness)
//	/debug/pprof  the standard runtime profiles
//
// The package is deliberately dumb: it owns no state of its own — every
// response is computed at scrape time from the registry and the status
// callback, so there is no cache to go stale and no write path to
// perturb the node.
package admin

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"condisc/internal/telemetry"
)

// Handler builds the admin mux. status, when non-nil, supplies the
// node-specific half of /statusz (ring pointers, neighbour table,
// items); it is called at scrape time.
func Handler(reg *telemetry.Registry, status func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		var node any
		if status != nil {
			node = status()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Node    any                `json:"node,omitempty"`
			Metrics telemetry.Snapshot `json:"metrics"`
		}{Node: node, Metrics: reg.Snapshot()})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	// net/http/pprof only self-registers on http.DefaultServeMux; wire
	// its handlers onto this mux explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is one running admin endpoint.
type Server struct {
	Addr string // bound address (resolved when Serve got ":0")
	srv  *http.Server
	ln   net.Listener
}

// Serve binds addr and serves h in the background. With a ":0" port the
// returned Server.Addr carries the kernel-chosen one.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close stops the server immediately (scrapes in flight are abandoned;
// the admin plane has no state to flush).
func (s *Server) Close() error { return s.srv.Close() }
