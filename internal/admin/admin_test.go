package admin

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"condisc/internal/telemetry"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("demo_total").Add(7)
	reg.Histogram("demo_hops").Observe(3)
	reg.Emitf("join", "node joined at 0.25")
	status := func() any { return map[string]any{"addr": "127.0.0.1:7001", "items": 42} }

	srv, err := Serve("127.0.0.1:0", Handler(reg, status))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"demo_total 7", "# TYPE demo_hops histogram", `demo_hops_bucket{le="3"} 1`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/statusz")
	if code != 200 {
		t.Fatalf("/statusz = %d", code)
	}
	var doc struct {
		Node    map[string]any     `json:"node"`
		Metrics telemetry.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if doc.Node["items"] != float64(42) {
		t.Fatalf("/statusz node = %+v", doc.Node)
	}
	if doc.Metrics.Counters["demo_total"] != 7 {
		t.Fatalf("/statusz metrics = %+v", doc.Metrics)
	}
	if len(doc.Metrics.Events) != 1 || doc.Metrics.Events[0].Kind != "join" {
		t.Fatalf("/statusz events = %+v", doc.Metrics.Events)
	}

	if code, body := get(t, base+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d %q", code, body)
	}
}
