package admin

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"condisc"
	"condisc/internal/doctor"
	"condisc/internal/journal"
	"condisc/internal/telemetry"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("demo_total").Add(7)
	reg.Histogram("demo_hops").Observe(3)
	reg.Emitf("join", "node joined at 0.25")
	status := func() any { return map[string]any{"addr": "127.0.0.1:7001", "items": 42} }

	srv, err := Serve("127.0.0.1:0", Handler(reg, status))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"demo_total 7", "# TYPE demo_hops histogram", `demo_hops_bucket{le="3"} 1`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/statusz")
	if code != 200 {
		t.Fatalf("/statusz = %d", code)
	}
	var doc struct {
		Node    map[string]any     `json:"node"`
		Metrics telemetry.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if doc.Node["items"] != float64(42) {
		t.Fatalf("/statusz node = %+v", doc.Node)
	}
	if doc.Metrics.Counters["demo_total"] != 7 {
		t.Fatalf("/statusz metrics = %+v", doc.Metrics)
	}
	if len(doc.Metrics.Events) != 1 || doc.Metrics.Events[0].Kind != "join" {
		t.Fatalf("/statusz events = %+v", doc.Metrics.Events)
	}

	if code, body := get(t, base+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d %q", code, body)
	}

	// Without WithJournal/WithDoctor the observability endpoints answer
	// 404, not an empty document a scraper could mistake for health.
	if code, _ := get(t, base+"/journalz"); code != 404 {
		t.Fatalf("/journalz without journal = %d, want 404", code)
	}
	if code, _ := get(t, base+"/doctorz"); code != 404 {
		t.Fatalf("/doctorz without doctor = %d, want 404", code)
	}
}

func TestJournalAndDoctorEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	jrn := journal.New(64)
	jrn.Record(journal.KindChurnAdmit, 3, 1, 42, 0, 1)
	jrn.Record(journal.KindEpochPublish, 4, 2, 7, 0, 0)

	report := doctor.Report{Healthy: true, Verdicts: []doctor.Verdict{
		{Invariant: doctor.InvSmoothness, OK: true, Value: 2, Limit: 64, Margin: 0.96875},
	}}
	var mu sync.Mutex
	doctorFn := func() doctor.Report {
		mu.Lock()
		defer mu.Unlock()
		return report
	}

	srv, err := Serve("127.0.0.1:0", Handler(reg, nil,
		WithJournal(9, "127.0.0.1:7009", jrn), WithDoctor(doctorFn)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	code, body := get(t, base+"/journalz")
	if code != 200 {
		t.Fatalf("/journalz = %d", code)
	}
	var stream journal.Stream
	if err := json.Unmarshal([]byte(body), &stream); err != nil {
		t.Fatalf("/journalz not JSON: %v\n%s", err, body)
	}
	if stream.Node != 9 || stream.Addr != "127.0.0.1:7009" {
		t.Fatalf("/journalz identity = %d %q", stream.Node, stream.Addr)
	}
	if len(stream.Records) != 2 || stream.Records[0].Kind != journal.KindChurnAdmit ||
		stream.Records[1].Kind != journal.KindEpochPublish {
		t.Fatalf("/journalz records = %+v", stream.Records)
	}

	code, body = get(t, base+"/doctorz")
	if code != 200 {
		t.Fatalf("/doctorz = %d", code)
	}
	var rep doctor.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/doctorz not JSON: %v\n%s", err, body)
	}
	if !rep.Healthy || len(rep.Verdicts) != 1 || rep.Verdicts[0].Invariant != doctor.InvSmoothness {
		t.Fatalf("/doctorz report = %+v", rep)
	}

	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthy /healthz = %d %q", code, body)
	}

	// Flip the report unhealthy: /healthz must degrade to 503 and name
	// the breached invariants.
	mu.Lock()
	report = doctor.Report{Healthy: false, Verdicts: []doctor.Verdict{
		{Invariant: doctor.InvSmoothness, OK: false, Value: 9000, Limit: 64, Margin: -139.6},
		{Invariant: doctor.InvDegree, OK: true, Value: 6, Limit: 64, Margin: 0.90625},
	}}
	mu.Unlock()
	code, body = get(t, base+"/healthz")
	if code != 503 || body != "degraded: "+doctor.InvSmoothness+"\n" {
		t.Fatalf("degraded /healthz = %d %q", code, body)
	}
}

// TestScrapeUnderChurn runs width-16 churn waves on a live DHT while
// hammering /statusz, /journalz, and /doctorz: the observability plane
// must stay consistent (and race-free under -race) while the state it
// reports is being rewritten underneath it.
func TestScrapeUnderChurn(t *testing.T) {
	reg := telemetry.NewRegistry()
	jrn := journal.New(1 << 14)
	d := condisc.New(64, condisc.Options{Seed: 7, Telemetry: reg, Journal: jrn})
	defer d.Close()

	// The status callback must use churn-safe reads: Doctor serializes
	// with churn on the DHT's own mutex (the bare d.N() would race).
	status := func() any { return map[string]any{"healthy": d.Doctor().Healthy} }
	srv, err := Serve("127.0.0.1:0", Handler(reg, status,
		WithJournal(1, "test", jrn), WithDoctor(d.Doctor)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	done := make(chan struct{})
	go func() {
		defer close(done)
		for wave := 0; wave < 8; wave++ {
			ids := d.JoinBatch(16)
			if err := d.LeaveBatch(ids); err != nil {
				t.Errorf("wave %d leave: %v", wave, err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, ep := range []string{"/statusz", "/journalz", "/doctorz"} {
					code, body := get(t, base+ep)
					if code != 200 {
						t.Errorf("%s = %d under churn", ep, code)
						return
					}
					if !json.Valid([]byte(body)) {
						t.Errorf("%s returned invalid JSON under churn", ep)
						return
					}
				}
			}
		}()
	}
	<-done
	wg.Wait()

	// The journal must have captured the churn: every wave emits admits,
	// applies, retires, and a publish.
	var admits, applies, retires, publishes int
	for _, r := range jrn.Records() {
		switch r.Kind {
		case journal.KindChurnAdmit:
			admits++
		case journal.KindChurnApply:
			applies++
		case journal.KindChurnRetire:
			retires++
		case journal.KindEpochPublish:
			publishes++
		}
	}
	if admits < 256 || applies < 256 || retires < 128 || publishes < 16 {
		t.Fatalf("journal undercounts churn: admits=%d applies=%d retires=%d publishes=%d",
			admits, applies, retires, publishes)
	}
}
