package expander

import (
	"math"
	"math/rand/v2"
	"testing"

	"condisc/internal/geom2d"
	"condisc/internal/spectral"
	"condisc/internal/voronoi"
)

func TestApplyMapInverses(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 500; trial++ {
		v := geom2d.Vec{X: rng.Float64(), Y: rng.Float64()}
		ff := ApplyMap(2, ApplyMap(0, v)) // f⁻¹(f(v))
		gg := ApplyMap(3, ApplyMap(1, v)) // g⁻¹(g(v))
		if geom2d.TorusDist2(ff, v) > 1e-18 || geom2d.TorusDist2(gg, v) > 1e-18 {
			t.Fatalf("maps are not inverse at %v: %v %v", v, ff, gg)
		}
	}
}

// TestGGEdgesMatchContinuousDefinition: for random points y, the cells of y
// and of each map image must be connected in the discrete graph — the
// defining property of the discretization.
func TestGGEdgesMatchContinuousDefinition(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	sites := Grow2D(128, 3, rng)
	net := BuildNetwork(sites)
	for trial := 0; trial < 1500; trial++ {
		v := geom2d.Vec{X: rng.Float64(), Y: rng.Float64()}
		from := net.Diagram.Locate(v)
		for m := 0; m < 4; m++ {
			to := net.Diagram.Locate(ApplyMap(m, v))
			if to != from && !net.Graph.HasEdge(from, to) {
				t.Fatalf("map %d: cells %d -> %d not connected", m, from, to)
			}
		}
	}
}

// TestLemma53Smoothness: the 2D Multiple Choice algorithm achieves
// smoothness <= 2 whp.
func TestLemma53Smoothness(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		rng := rand.New(rand.NewPCG(uint64(n), 3))
		sites := Grow2D(n, 3, rng)
		if !CheckSmooth(sites, 2) {
			// Grid-rounding can cost a little; ρ=4 must certainly hold.
			if !CheckSmooth(sites, 4) {
				t.Errorf("n=%d: 2D multiple choice smoothness worse than 4", n)
			}
		}
	}
}

// TestRandomSitesAreLessSmooth: uniform-random placement needs ρ = Ω(log n)
// — the contrast showing the algorithm matters.
func TestRandomSitesAreLessSmooth(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	const n = 1024
	sites := make([]geom2d.Vec, n)
	for i := range sites {
		sites[i] = geom2d.Vec{X: rng.Float64(), Y: rng.Float64()}
	}
	if CheckSmooth(sites, 2) {
		t.Error("uniform random sites should not be 2-smooth at n=1024")
	}
	mc := Smoothness(Grow2D(n, 3, rng))
	rd := Smoothness(sites)
	if mc >= rd {
		t.Errorf("multiple choice smoothness %v should beat random %v", mc, rd)
	}
}

// TestCor52ConstantDegree: the discretized GG graph over a smooth site set
// has Θ(ρ)-bounded degree.
func TestCor52ConstantDegree(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	sites := Grow2D(256, 3, rng)
	net := BuildNetwork(sites)
	if d := net.Graph.MaxDegree(); d > 64 {
		t.Errorf("max degree %d not constant-like for smooth sites", d)
	}
	if !net.Graph.Connected() {
		t.Error("GG discretization must be connected")
	}
}

// TestCor52Expansion is the headline §5 result: the spectral gap of the
// discretized graph stays bounded away from zero as n grows (we check it
// does not decay the way a ring's gap does).
func TestCor52Expansion(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	var gaps []float64
	for _, n := range []int{64, 256} {
		net := BuildNetwork(Grow2D(n, 3, rng))
		gap := spectral.SpectralGap(net.Graph, 800, rng)
		gaps = append(gaps, gap)
		if gap < 0.05 {
			t.Errorf("n=%d: spectral gap %v too small for an expander", n, gap)
		}
	}
	// Quadrupling n must not collapse the gap (a ring would lose ~16x).
	if gaps[1] < gaps[0]/3 {
		t.Errorf("gap collapsed with n: %v", gaps)
	}
}

// TestExpansionVerifiable: §5.2's selling point — smooth IDs certify
// expansion; we verify the certified lower bound via sampled sets.
func TestExpansionVerifiable(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	sites := Grow2D(256, 3, rng)
	rho := Smoothness(sites)
	if math.IsInf(rho, 1) || rho > 8 {
		t.Fatalf("smoothness %v unexpectedly large", rho)
	}
	net := BuildNetwork(sites)
	// Sampled vertex expansion should be comfortably positive.
	exp := spectral.VertexExpansion(net.Graph, 200, rng)
	if exp <= 0.05 {
		t.Errorf("sampled vertex expansion %v too small", exp)
	}
}

// TestSmoothnessDetectsClustering: CheckSmooth rejects adversarially
// clustered sites.
func TestSmoothnessDetectsClustering(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	const n = 256
	sites := make([]geom2d.Vec, n)
	for i := range sites {
		// All sites inside a tiny corner square.
		sites[i] = geom2d.Vec{X: rng.Float64() * 0.05, Y: rng.Float64() * 0.05}
	}
	if CheckSmooth(sites, 2) || CheckSmooth(sites, 8) {
		t.Error("clustered sites passed the smoothness check")
	}
}

func TestGrow2DPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Grow2D(1, 3, rand.New(rand.NewPCG(9, 9)))
}

// TestBuildGGIsSymmetricAndLoopless: sanity on the generic graph contract.
func TestBuildGGIsSymmetricAndLoopless(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	d := voronoi.Compute(Grow2D(64, 3, rng))
	g := BuildGG(d)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if v == u {
				t.Fatal("self loop present")
			}
			if !g.HasEdge(v, u) {
				t.Fatal("asymmetric edge")
			}
		}
	}
}
