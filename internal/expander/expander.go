// Package expander implements §5: a P2P network that is guaranteed to be a
// constant-degree expander, built by discretizing the Margulis/Gabber–Galil
// continuous graph over a Voronoi tessellation of the unit torus.
//
// The continuous graph Gc over I = [0,1)² connects each point (x,y) to
// f(x,y) = (x+y, y) mod 1, g(x,y) = (x, x+y) mod 1 and their inverses.
// Theorem 5.1 (Gabber–Galil): every set A with µ(A) <= 1/2 satisfies
// µ(δ(A)) >= ((2-√3)/2)·µ(A). Corollary 5.2: if the generator set is
// ρ-smooth, the discretized graph has degree Θ(ρ) and expansion
// Ω((2-√3)/ρ) — and, unlike random constructions, the expansion can be
// *verified* by checking the smoothness of the IDs.
//
// Note on Definition 7: the paper's printed definition transposes the two
// grid sizes (as printed, condition (1) would demand ρn non-empty cells
// with only n points). We implement the evidently intended reading, which
// also matches the 2D Multiple Choice algorithm of §5.3: (1) the n/ρ
// coarse grid cells each contain at least one point, (2) the ρn fine grid
// cells each contain at most one point.
package expander

import (
	"math"
	"math/rand/v2"

	"condisc/internal/geom2d"
	"condisc/internal/graph"
	"condisc/internal/voronoi"
)

// ggMaps are the four edge maps of the continuous graph: linear parts of
// f, g, f⁻¹, g⁻¹ (all shears, determinant ±1).
var ggMaps = [4][4]float64{
	{1, 1, 0, 1},  // f(x,y) = (x+y, y)
	{1, 0, 1, 1},  // g(x,y) = (x, x+y)
	{1, -1, 0, 1}, // f⁻¹(x,y) = (x-y, y)
	{1, 0, -1, 1}, // g⁻¹(x,y) = (x, y-x)
}

// ApplyMap applies GG map m (0..3) to a torus point.
func ApplyMap(m int, v geom2d.Vec) geom2d.Vec {
	c := ggMaps[m]
	return geom2d.WrapVec(geom2d.Vec{
		X: c[0]*v.X + c[1]*v.Y,
		Y: c[2]*v.X + c[3]*v.Y,
	})
}

// BuildGG discretizes the Gabber–Galil continuous graph over the Voronoi
// diagram: cells i and j are connected iff some continuous edge has one
// endpoint in cell i and the other in cell j, computed exactly by
// intersecting the (wrapped) shear images of cell i with cell j.
func BuildGG(d *voronoi.Diagram) *graph.Undirected {
	n := d.N()
	// Wrapped pieces of every cell, indexed by a uniform grid over their
	// bounding boxes for candidate lookup.
	type piece struct {
		cell int
		poly geom2d.Polygon
		min  geom2d.Vec
		max  geom2d.Vec
	}
	var pieces []piece
	for i := 0; i < n; i++ {
		for _, p := range d.WrappedPieces(i) {
			min, max := p.BBox()
			pieces = append(pieces, piece{i, p, min, max})
		}
	}
	gsize := int(math.Max(1, math.Floor(math.Sqrt(float64(n)))))
	grid := make([][]int, gsize*gsize)
	bucketRange := func(min, max geom2d.Vec) (x0, x1, y0, y1 int) {
		clamp := func(v int) int {
			if v < 0 {
				return 0
			}
			if v >= gsize {
				return gsize - 1
			}
			return v
		}
		return clamp(int(min.X * float64(gsize))), clamp(int(max.X * float64(gsize))),
			clamp(int(min.Y * float64(gsize))), clamp(int(max.Y * float64(gsize)))
	}
	for pi, p := range pieces {
		x0, x1, y0, y1 := bucketRange(p.min, p.max)
		for x := x0; x <= x1; x++ {
			for y := y0; y <= y1; y++ {
				grid[x*gsize+y] = append(grid[x*gsize+y], pi)
			}
		}
	}

	const eps = 1e-12
	b := graph.NewBuilder(n)
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		for _, src := range d.WrappedPieces(i) {
			for m := 0; m < 4; m++ {
				c := ggMaps[m]
				img := src.Linear(c[0], c[1], c[2], c[3])
				for _, part := range geom2d.SplitWrap(img, eps) {
					min, max := part.BBox()
					x0, x1, y0, y1 := bucketRange(min, max)
					clear(seen)
					for x := x0; x <= x1; x++ {
						for y := y0; y <= y1; y++ {
							for _, pi := range grid[x*gsize+y] {
								if seen[pi] {
									continue
								}
								seen[pi] = true
								p := pieces[pi]
								if p.cell == i {
									continue
								}
								if !geom2d.BBoxOverlap(min, max, p.min, p.max) {
									continue
								}
								if geom2d.ConvexIntersect(part, p.poly).Area() > eps {
									b.AddEdge(i, p.cell)
								}
							}
						}
					}
				}
			}
		}
	}
	return b.Build()
}

// CheckSmooth verifies Definition 7 (corrected reading, see package doc)
// for smoothness parameter rho: every coarse cell (⌊√(n/ρ)⌋² grid) holds
// at least one site and every fine cell (⌈√(ρn)⌉² grid) at most one.
func CheckSmooth(sites []geom2d.Vec, rho float64) bool {
	n := len(sites)
	coarse := int(math.Floor(math.Sqrt(float64(n) / rho)))
	fine := int(math.Ceil(math.Sqrt(rho * float64(n))))
	if coarse >= 1 {
		counts := gridCounts(sites, coarse)
		for _, c := range counts {
			if c == 0 {
				return false
			}
		}
	}
	if fine >= 1 {
		counts := gridCounts(sites, fine)
		for _, c := range counts {
			if c > 1 {
				return false
			}
		}
	}
	return true
}

// Smoothness returns the smallest power-of-√2 rho satisfying CheckSmooth
// (a convenient monotone search; exact minimal ρ is not needed anywhere).
func Smoothness(sites []geom2d.Vec) float64 {
	rho := 1.0
	for rho <= float64(len(sites)) {
		if CheckSmooth(sites, rho) {
			return rho
		}
		rho *= math.Sqrt2
	}
	return math.Inf(1)
}

func gridCounts(sites []geom2d.Vec, m int) []int {
	counts := make([]int, m*m)
	for _, s := range sites {
		x := int(s.X * float64(m))
		y := int(s.Y * float64(m))
		if x >= m {
			x = m - 1
		}
		if y >= m {
			y = m - 1
		}
		counts[x*m+y]++
	}
	return counts
}

// Grow2D runs the 2D Multiple Choice algorithm of §5.3 to insert target
// sites: each joiner samples t·log n candidate points, preferring one whose
// fine cell AND coarse cell are both empty, falling back to an empty fine
// cell. Lemma 5.3: after n insertions the smoothness is at most 2 whp.
//
// The grids use the target n ("we assume for convenience that the
// estimation of n is accurate").
func Grow2D(target, t int, rng *rand.Rand) []geom2d.Vec {
	if target < 2 {
		panic("expander: need target >= 2")
	}
	fine := int(math.Ceil(math.Sqrt(2 * float64(target))))    // 2n cells
	coarse := int(math.Floor(math.Sqrt(float64(target) / 2))) // n/2 cells
	if coarse < 1 {
		coarse = 1
	}
	fineCount := make([]int, fine*fine)
	coarseCount := make([]int, coarse*coarse)
	cellOf := func(v geom2d.Vec, m int) int {
		x := int(v.X * float64(m))
		y := int(v.Y * float64(m))
		if x >= m {
			x = m - 1
		}
		if y >= m {
			y = m - 1
		}
		return x*m + y
	}
	probes := t * int(math.Ceil(math.Log2(float64(target))))
	if probes < 1 {
		probes = 1
	}
	sites := make([]geom2d.Vec, 0, target)
	for len(sites) < target {
		cands := make([]geom2d.Vec, probes)
		for i := range cands {
			cands[i] = geom2d.Vec{X: rng.Float64(), Y: rng.Float64()}
		}
		chosen := cands[0]
		found := false
		for _, z := range cands { // both grids empty
			if fineCount[cellOf(z, fine)] == 0 && coarseCount[cellOf(z, coarse)] == 0 {
				chosen, found = z, true
				break
			}
		}
		if !found {
			for _, z := range cands { // fine grid empty
				if fineCount[cellOf(z, fine)] == 0 {
					chosen, found = z, true
					break
				}
			}
		}
		sites = append(sites, chosen)
		fineCount[cellOf(chosen, fine)]++
		coarseCount[cellOf(chosen, coarse)]++
	}
	return sites
}

// Network couples the Voronoi partition with its GG expander graph.
type Network struct {
	Diagram *voronoi.Diagram
	Graph   *graph.Undirected
}

// BuildNetwork creates the full §5 construction from a site set.
func BuildNetwork(sites []geom2d.Vec) *Network {
	d := voronoi.Compute(sites)
	return &Network{Diagram: d, Graph: BuildGG(d)}
}
