package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []float64{3, 1, 4, 1, 5} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Errorf("N = %d", h.N())
	}
	if got := h.Mean(); math.Abs(got-2.8) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if h.Max() != 5 || h.Min() != 1 {
		t.Errorf("Max/Min = %v/%v", h.Max(), h.Min())
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("median = %v, want 3", q)
	}
	if q := h.Quantile(1); q != 5 {
		t.Errorf("q1 = %v, want 5", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("q0 = %v, want 1", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should return zeros")
	}
}

func TestHistogramAddAfterQuantile(t *testing.T) {
	var h Histogram
	h.Add(2)
	_ = h.Quantile(0.5)
	h.Add(1)
	if q := h.Quantile(0); q != 1 {
		t.Errorf("histogram did not re-sort after Add: q0 = %v", q)
	}
}

func TestStddev(t *testing.T) {
	var h Histogram
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Add(v)
	}
	if got := h.Stddev(); math.Abs(got-2.138) > 0.01 {
		t.Errorf("Stddev = %v", got)
	}
	var single Histogram
	single.Add(1)
	if single.Stddev() != 0 {
		t.Error("stddev of one sample should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("scheme", "path", "linkage")
	tb.AddRow("Chord", 6.5, 12)
	tb.AddRow("DH", 7.0, 5)
	s := tb.String()
	if !strings.Contains(s, "scheme") || !strings.Contains(s, "Chord") {
		t.Errorf("table missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("expected 4 lines, got %d", len(lines))
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "scheme,path,linkage\n") {
		t.Errorf("bad CSV header: %q", csv)
	}
	if !strings.Contains(csv, "Chord,6.5,12") {
		t.Errorf("bad CSV row: %q", csv)
	}
}
