// Package metrics provides the small statistics and table-formatting
// helpers shared by the experiment harness: histograms with quantiles and
// aligned text/CSV tables in the style of the paper's Table 1.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram accumulates float64 samples.
type Histogram struct {
	vals   []float64
	sorted bool
}

// Add appends a sample.
func (h *Histogram) Add(v float64) {
	h.vals = append(h.vals, v)
	h.sorted = false
}

// AddInt appends an integer sample.
func (h *Histogram) AddInt(v int) { h.Add(float64(v)) }

// N returns the sample count.
func (h *Histogram) N() int { return len(h.vals) }

// Mean returns the sample mean (0 for empty histograms).
func (h *Histogram) Mean() float64 {
	if len(h.vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range h.vals {
		s += v
	}
	return s / float64(len(h.vals))
}

// Max returns the maximum sample (0 for empty).
func (h *Histogram) Max() float64 {
	m := math.Inf(-1)
	for _, v := range h.vals {
		m = math.Max(m, v)
	}
	if len(h.vals) == 0 {
		return 0
	}
	return m
}

// Min returns the minimum sample (0 for empty).
func (h *Histogram) Min() float64 {
	m := math.Inf(1)
	for _, v := range h.vals {
		m = math.Min(m, v)
	}
	if len(h.vals) == 0 {
		return 0
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.vals) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.vals)
		h.sorted = true
	}
	idx := int(q*float64(len(h.vals)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.vals) {
		idx = len(h.vals) - 1
	}
	return h.vals[idx]
}

// Stddev returns the sample standard deviation.
func (h *Histogram) Stddev() float64 {
	n := len(h.vals)
	if n < 2 {
		return 0
	}
	mean := h.Mean()
	s := 0.0
	for _, v := range h.vals {
		d := v - mean
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Table is an aligned text table.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells are formatted with %v (floats with %.3g).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case float32:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, hd := range t.headers {
		widths[i] = len(hd)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.headers, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
