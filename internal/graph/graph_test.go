package graph

import "testing"

func path(n int) *Undirected {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1) // self loop ignored
	g := b.Build()
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
	if g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Errorf("degrees wrong: %d %d", g.Degree(1), g.Degree(2))
	}
}

func TestHasEdge(t *testing.T) {
	g := path(4)
	if !g.HasEdge(1, 2) || g.HasEdge(0, 2) || g.HasEdge(3, 3) {
		t.Error("HasEdge wrong")
	}
}

func TestBFSAndDiameter(t *testing.T) {
	g := path(5)
	d := g.BFSDist(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
	if g.Diameter() != 4 {
		t.Errorf("diameter = %d, want 4", g.Diameter())
	}
	if !g.Connected() {
		t.Error("path is connected")
	}
}

func TestDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	if g.Connected() {
		t.Error("graph is disconnected")
	}
	if g.Diameter() != -1 {
		t.Error("diameter of disconnected graph should be -1")
	}
	if d := g.BFSDist(0); d[2] != -1 {
		t.Error("unreachable vertex should have dist -1")
	}
}

func TestDegreeStats(t *testing.T) {
	b := NewBuilder(4) // star around 0
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	g := b.Build()
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
	if g.AvgDegree() != 1.5 {
		t.Errorf("AvgDegree = %v", g.AvgDegree())
	}
	h := g.DegreeHistogram()
	if h[1] != 3 || h[3] != 1 {
		t.Errorf("histogram = %v", h)
	}
}
