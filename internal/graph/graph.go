// Package graph provides small generic graph utilities (construction,
// degree statistics, BFS, connectivity) shared by the discrete network
// constructions and the baseline comparators.
package graph

import "sort"

// Builder accumulates undirected edges with deduplication.
type Builder struct {
	n    int
	sets []map[int]struct{}
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, sets: make([]map[int]struct{}, n)}
}

// AddEdge inserts the undirected edge {u, v}; duplicates and self-loops are
// ignored (self-loops never help routing or expansion).
func (b *Builder) AddEdge(u, v int) {
	if u == v {
		return
	}
	b.add(u, v)
	b.add(v, u)
}

func (b *Builder) add(u, v int) {
	if b.sets[u] == nil {
		b.sets[u] = make(map[int]struct{})
	}
	b.sets[u][v] = struct{}{}
}

// Build freezes the builder into an Undirected graph with sorted adjacency
// lists.
func (b *Builder) Build() *Undirected {
	g := &Undirected{adj: make([][]int, b.n)}
	for u, set := range b.sets {
		lst := make([]int, 0, len(set))
		for v := range set {
			lst = append(lst, v)
		}
		sort.Ints(lst)
		g.adj[u] = lst
		g.m += len(lst)
	}
	g.m /= 2
	return g
}

// Undirected is a frozen simple undirected graph.
type Undirected struct {
	adj [][]int
	m   int
}

// N returns the number of vertices.
func (g *Undirected) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Undirected) M() int { return g.m }

// Neighbors returns the sorted adjacency list of u (read-only).
func (g *Undirected) Neighbors(u int) []int { return g.adj[u] }

// Degree returns the degree of u.
func (g *Undirected) Degree(u int) int { return len(g.adj[u]) }

// HasEdge reports whether {u,v} is an edge (binary search).
func (g *Undirected) HasEdge(u, v int) bool {
	lst := g.adj[u]
	i := sort.SearchInts(lst, v)
	return i < len(lst) && lst[i] == v
}

// MaxDegree returns the maximum degree.
func (g *Undirected) MaxDegree() int {
	max := 0
	for _, l := range g.adj {
		if len(l) > max {
			max = len(l)
		}
	}
	return max
}

// AvgDegree returns the average degree 2m/n.
func (g *Undirected) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.N())
}

// BFSDist returns the distance from src to every vertex (-1 if
// unreachable).
func (g *Undirected) BFSDist(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (true for empty/1-vertex
// graphs).
func (g *Undirected) Connected() bool {
	if g.N() <= 1 {
		return true
	}
	for _, d := range g.BFSDist(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the exact diameter via all-pairs BFS; O(n·m), intended
// for experiment-sized graphs. Returns -1 if disconnected.
func (g *Undirected) Diameter() int {
	max := 0
	for s := 0; s < g.N(); s++ {
		for _, d := range g.BFSDist(s) {
			if d < 0 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// DegreeHistogram returns counts per degree value.
func (g *Undirected) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, l := range g.adj {
		h[len(l)]++
	}
	return h
}
