// Package overlap implements the fault-tolerant Overlapping Distance
// Halving DHT of §6: the same continuous graph as the plain DH DHT, but
// discretized with overlapping segments so that every point of I — and
// hence every data item — is covered by Θ(log n) servers.
//
// Construction (§6.2): server V_i picks x_i uniformly at random (fixed
// while it lives) and sets y_i = x_i + q_i where q_i estimates log n / n.
// The estimate needs no global knowledge: by Lemma 6.2, inverting the
// distance to the ring predecessor gives α_i = Θ(log n), and q_i is chosen
// so [x_i, x_i + q_i) contains exactly α_i other x-values.
//
// Two lookups are provided:
//
//   - Simple Lookup (Theorem 6.3): emulates the canonical continuous path,
//     forwarding each hop to one random *alive* cover of the next point.
//     O(log n) time and messages; under random fail-stop faults every
//     surviving server can still locate every item (Theorem 6.4).
//
//   - False-Message-Resistant Lookup (Theorem 6.6): floods each hop to all
//     Θ(log n) covers of the next point; each server forwards only the
//     value received from a majority of the previous layer. O(log n)
//     parallel time, O(log³ n) messages, correct data under random
//     false-message injection.
package overlap

import (
	"math"
	"math/rand/v2"

	"condisc/internal/interval"
	"condisc/internal/partition"
)

// Overlay is a static snapshot of the overlapping DHT with fault marks.
type Overlay struct {
	ring  *partition.Ring
	q     []uint64 // arc length of each server's segment
	alpha []int    // each server's local Θ(log n) estimate
	maxQ  uint64

	alive []bool
	byz   []bool // byzantine in the false-message-injection model

	// Load counts messages handled per server across lookups.
	Load []int64
}

// Build creates an overlay of n servers with uniformly random x-values.
// mult scales the replication arc: q_i spans mult·α_i successor points
// (mult = 1 is the paper's construction; larger mult is the §6 knob "for an
// arbitrary value of p it is possible to adjust the q values").
func Build(n int, mult int, rng *rand.Rand) *Overlay {
	if n < 8 {
		panic("overlap: need at least 8 servers")
	}
	if mult < 1 {
		mult = 1
	}
	ring := partition.Grow(partition.New(), n, partition.SingleChooser, rng)
	o := &Overlay{
		ring:  ring,
		q:     make([]uint64, n),
		alpha: make([]int, n),
		alive: make([]bool, n),
		byz:   make([]bool, n),
		Load:  make([]int64, n),
	}
	for i := range o.alive {
		o.alive[i] = true
	}
	for i := 0; i < n; i++ {
		// Lemma 6.2: α_i = log2(1 / d(x_i, pred)) estimates log n within a
		// multiplicative factor.
		pred := ring.Predecessor(i)
		d := interval.CWDist(ring.Point(pred), ring.Point(i))
		a := int(math.Round(interval.Log2Inv(d)))
		if a < 1 {
			a = 1
		}
		if a > n-1 {
			a = n - 1
		}
		o.alpha[i] = a
		span := mult * a
		if span > n-1 {
			span = n - 1
		}
		// q_i = distance to the span-th successor.
		j := i
		for k := 0; k < span; k++ {
			j = ring.Successor(j)
		}
		o.q[i] = interval.CWDist(ring.Point(i), ring.Point(j))
		if o.q[i] > o.maxQ {
			o.maxQ = o.q[i]
		}
	}
	return o
}

// N returns the number of servers.
func (o *Overlay) N() int { return o.ring.N() }

// Segment returns server i's overlapping segment [x_i, x_i + q_i).
func (o *Overlay) Segment(i int) interval.Segment {
	return interval.Segment{Start: o.ring.Point(i), Len: o.q[i]}
}

// Alpha returns server i's local log n estimate.
func (o *Overlay) Alpha(i int) int { return o.alpha[i] }

// Covers returns all servers (alive or not) whose segment contains p, in
// ring order ending at the cover closest below p.
func (o *Overlay) Covers(p interval.Point) []int {
	var out []int
	start := o.ring.Cover(p)
	i := start
	for {
		d := interval.CWDist(o.ring.Point(i), p)
		if d > o.maxQ {
			break
		}
		if d < o.q[i] || o.q[i] == 0 {
			out = append(out, i)
		}
		i = o.ring.Predecessor(i)
		if len(out) >= o.N() || i == start { // walked all the way around
			break
		}
	}
	return out
}

// AliveCovers returns the alive servers covering p.
func (o *Overlay) AliveCovers(p interval.Point) []int {
	var out []int
	for _, i := range o.Covers(p) {
		if o.alive[i] {
			out = append(out, i)
		}
	}
	return out
}

// FailRandom marks each server failed independently with probability p
// (the random fail-stop model). Returns the number of failures.
func (o *Overlay) FailRandom(p float64, rng *rand.Rand) int {
	count := 0
	for i := range o.alive {
		if rng.Float64() < p {
			o.alive[i] = false
			count++
		} else {
			o.alive[i] = true
		}
	}
	return count
}

// SetByzantine marks each server byzantine (false-message injection: it
// forwards corrupted payloads but follows the routing protocol, §6's
// model) independently with probability p.
func (o *Overlay) SetByzantine(p float64, rng *rand.Rand) int {
	count := 0
	for i := range o.byz {
		o.byz[i] = rng.Float64() < p
		if o.byz[i] {
			count++
		}
	}
	return count
}

// Alive reports whether server i is alive.
func (o *Overlay) Alive(i int) bool { return o.alive[i] }

// IsByzantine reports whether server i injects false messages.
func (o *Overlay) IsByzantine(i int) bool { return o.byz[i] }

// canonicalPath returns the continuous positions of the canonical path
// (Claim 2.4) from a point of s(src) to y: h = w(σ(z)_t, y) for the
// minimal t with h ∈ s(src), followed by t backward steps; the final
// position is replaced by the exact target y.
func (o *Overlay) canonicalPath(src int, y interval.Point) []interval.Point {
	seg := o.Segment(src)
	z := seg.Mid()
	var t uint
	for t = 0; t < 66; t++ {
		if seg.Contains(interval.WalkPrefix(z, y, t)) {
			break
		}
	}
	pts := make([]interval.Point, 0, t+1)
	h := interval.WalkPrefix(z, y, t)
	pts = append(pts, h)
	for step := t; step > 0; step-- {
		h = h.Back()
		pts = append(pts, h)
	}
	pts[len(pts)-1] = y // replace the truncated endpoint with the target
	return pts
}

// SimpleLookup routes from server src to some alive cover of y, forwarding
// each hop to a uniformly random alive cover of the next canonical-path
// point (Theorem 6.3). It returns the server path and whether the lookup
// succeeded (it fails only if some path point has no alive cover).
func (o *Overlay) SimpleLookup(src int, y interval.Point, rng *rand.Rand) ([]int, bool) {
	if !o.alive[src] {
		return nil, false
	}
	pts := o.canonicalPath(src, y)
	path := []int{src}
	o.Load[src]++
	for _, p := range pts[1:] {
		cur := path[len(path)-1]
		if o.Segment(cur).Contains(p) {
			continue // current server also covers the next point
		}
		covers := o.AliveCovers(p)
		if len(covers) == 0 {
			return path, false
		}
		next := covers[rng.IntN(len(covers))]
		path = append(path, next)
		o.Load[next]++
	}
	return path, true
}

// FMRResult reports the outcome of a false-message-resistant lookup.
type FMRResult struct {
	OK       bool // requester decoded the true payload
	Messages int  // total messages exchanged
	Hops     int  // parallel time (number of layers traversed)
}

// FMRLookup performs the false-message-resistant lookup of §6.3 for the
// item at y, requested by server src. The item's true payload flows from
// the alive covers of y back along the canonical path; at every layer each
// alive server takes the majority of the values received from the full
// previous layer, and byzantine servers corrupt what they forward. The
// lookup succeeds if the (honest) requester's majority equals the true
// payload.
func (o *Overlay) FMRLookup(src int, y interval.Point) FMRResult {
	if !o.alive[src] {
		return FMRResult{}
	}
	pts := o.canonicalPath(src, y)
	// Data flows y -> src: reverse the path.
	rev := make([]interval.Point, len(pts))
	for i, p := range pts {
		rev[len(pts)-1-i] = p
	}

	// values[i] = payload currently held by server i (true/false);
	// layer 0: covers of y hold the item.
	prev := o.AliveCovers(y)
	if len(prev) == 0 {
		return FMRResult{}
	}
	val := make(map[int]bool, len(prev))
	for _, i := range prev {
		val[i] = !o.byz[i] // byzantine holders start corrupted
		o.Load[i]++
	}
	res := FMRResult{Hops: len(rev) - 1}
	srcDecoded, srcSeen := false, false
	for li := 1; li < len(rev); li++ {
		layer := o.AliveCovers(rev[li])
		if len(layer) == 0 {
			return FMRResult{Messages: res.Messages}
		}
		next := make(map[int]bool, len(layer))
		for _, r := range layer {
			trueVotes, falseVotes := 0, 0
			for _, s := range prev {
				res.Messages++
				if val[s] {
					trueVotes++
				} else {
					falseVotes++
				}
			}
			decoded := trueVotes > falseVotes
			if r == src && li == len(rev)-1 {
				// The requester's own decode, for its own consumption, is
				// the majority it received — even a byzantine server obtains
				// the correct item; it only corrupts what it forwards.
				srcDecoded, srcSeen = decoded, true
			}
			if o.byz[r] {
				decoded = false // corrupts whatever it forwards
			}
			next[r] = decoded
			o.Load[r]++
		}
		val = next
		prev = layer
	}
	if srcSeen {
		res.OK = srcDecoded
		return res
	}
	// src did not appear in the final layer (e.g. the zero-hop case where
	// the target is inside its own segment): it reads all covers directly.
	trueVotes, falseVotes := 0, 0
	for _, s := range prev {
		res.Messages++
		if val[s] {
			trueVotes++
		} else {
			falseVotes++
		}
	}
	res.OK = trueVotes > falseVotes
	return res
}

// DegreeOf returns server i's degree in the overlapping discrete graph:
// servers whose segment overlaps s(V_i), or is connected to it by a
// continuous edge (Theorem 6.3's "degree Θ(log n)").
func (o *Overlay) DegreeOf(i int) int {
	s := o.Segment(i)
	arcs := []interval.Segment{s, s.Half(), s.HalfPlus(), s.BackImage()}
	seen := map[int]bool{}
	for _, arc := range arcs {
		for _, j := range o.coversOfArc(arc) {
			if j != i {
				seen[j] = true
			}
		}
	}
	return len(seen)
}

// coversOfArc returns all servers whose segment overlaps the arc.
func (o *Overlay) coversOfArc(arc interval.Segment) []int {
	var out []int
	n := o.N()
	// Walk backward from the cover of arc.Start while within maxQ reach.
	start := o.ring.Cover(arc.Start)
	i := start
	for steps := 0; steps < n; steps++ {
		d := interval.CWDist(o.ring.Point(i), arc.Start)
		if d > o.maxQ {
			break
		}
		if o.Segment(i).Overlaps(arc) {
			out = append(out, i)
		}
		i = o.ring.Predecessor(i)
	}
	// Walk forward while x_j lies inside the arc.
	i = o.ring.Successor(start)
	for steps := 0; steps < n; steps++ {
		if interval.CWDist(arc.Start, o.ring.Point(i)) >= arc.Len && arc.Len != 0 {
			break
		}
		out = append(out, i)
		i = o.ring.Successor(i)
	}
	return out
}

// MaxMinCoverage returns the max and min number of servers covering the
// points of a random sample — every point should be covered by Θ(log n)
// servers.
func (o *Overlay) MaxMinCoverage(samples int, rng *rand.Rand) (max, min int) {
	min = o.N()
	for k := 0; k < samples; k++ {
		c := len(o.Covers(interval.Point(rng.Uint64())))
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	return max, min
}

// ResetLoad zeroes the per-server message counters.
func (o *Overlay) ResetLoad() {
	for i := range o.Load {
		o.Load[i] = 0
	}
}
