package overlap

import (
	"math/rand/v2"
	"testing"

	"condisc/internal/interval"
)

func BenchmarkSimpleLookup(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	o := Build(4096, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.SimpleLookup(rng.IntN(4096), interval.Point(rng.Uint64()), rng)
	}
}

func BenchmarkFMRLookup(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	o := Build(4096, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.FMRLookup(rng.IntN(4096), interval.Point(rng.Uint64()))
	}
}

func BenchmarkCovers(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 3))
	o := Build(4096, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = o.Covers(interval.Point(rng.Uint64()))
	}
}
