package overlap

import (
	"math"
	"math/rand/v2"
	"testing"

	"condisc/internal/interval"
)

func TestCoverageIsLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	const n = 2048
	o := Build(n, 1, rng)
	max, min := o.MaxMinCoverage(2000, rng)
	logN := math.Log2(n)
	if min < 1 {
		t.Errorf("some point is uncovered (min coverage %d)", min)
	}
	if float64(max) > 24*logN {
		t.Errorf("max coverage %d >> Θ(log n) = %.0f", max, logN)
	}
	if float64(min) < logN/8 {
		t.Errorf("min coverage %d << Θ(log n) = %.0f", min, logN)
	}
}

func TestCoversAreCorrect(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	o := Build(256, 1, rng)
	for trial := 0; trial < 500; trial++ {
		p := interval.Point(rng.Uint64())
		got := map[int]bool{}
		for _, i := range o.Covers(p) {
			got[i] = true
		}
		for i := 0; i < o.N(); i++ {
			want := o.Segment(i).Contains(p)
			if got[i] != want {
				t.Fatalf("server %d: Covers=%v, Segment.Contains=%v", i, got[i], want)
			}
		}
	}
}

func TestAlphaEstimatesLogN(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	const n = 4096
	o := Build(n, 1, rng)
	logN := math.Log2(n)
	// Lemma 6.2 via the bound of §6.2: log n − log log n − 1 <= α <= 3 log n.
	for i := 0; i < n; i++ {
		a := float64(o.Alpha(i))
		if a < logN-math.Log2(logN)-2 || a > 3*logN+1 {
			t.Fatalf("server %d: α=%v outside [log n − log log n − 1, 3 log n]", i, a)
		}
	}
}

// TestSimpleLookupNoFaults reproduces Theorem 6.3: path length
// <= log n + O(1) and delivery to a cover of y.
func TestSimpleLookupNoFaults(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	const n = 2048
	o := Build(n, 1, rng)
	bound := math.Log2(n) + 8
	for trial := 0; trial < 1000; trial++ {
		src := rng.IntN(n)
		y := interval.Point(rng.Uint64())
		path, ok := o.SimpleLookup(src, y, rng)
		if !ok {
			t.Fatalf("lookup failed with no faults")
		}
		if float64(len(path)-1) > bound {
			t.Fatalf("path length %d > log n + O(1) = %.1f", len(path)-1, bound)
		}
		last := path[len(path)-1]
		if !o.Segment(last).Contains(y) {
			t.Fatalf("lookup for %v ended at non-cover %d", y, last)
		}
	}
}

// TestSimpleLookupUnderFailStop reproduces Theorem 6.4: with a small
// constant failure probability, every surviving server finds every item.
func TestSimpleLookupUnderFailStop(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	const n = 2048
	o := Build(n, 1, rng)
	o.FailRandom(0.1, rng)
	fails := 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		src := rng.IntN(n)
		if !o.Alive(src) {
			continue
		}
		_, ok := o.SimpleLookup(src, interval.Point(rng.Uint64()), rng)
		if !ok {
			fails++
		}
	}
	if fails > 0 {
		t.Errorf("%d/%d lookups failed under p=0.1 fail-stop", fails, trials)
	}
}

// TestHigherFailureNeedsBiggerQ demonstrates the §6 adjustment knob: at a
// large failure rate the base overlay may lose points entirely, but
// doubling the replication arcs restores availability.
func TestHigherFailureNeedsBiggerQ(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	const n = 1024
	o := Build(n, 3, rng)
	o.FailRandom(0.5, rng)
	fails := 0
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		src := rng.IntN(n)
		if !o.Alive(src) {
			continue
		}
		if _, ok := o.SimpleLookup(src, interval.Point(rng.Uint64()), rng); !ok {
			fails++
		}
	}
	if fails > trials/100 {
		t.Errorf("with mult=3, %d/%d lookups failed at p=0.5", fails, trials)
	}
}

// TestFMRLookupCorrectness reproduces Theorem 6.6(1): under random
// byzantine (false-injection) faults, requesters decode the true payload.
func TestFMRLookupCorrectness(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	const n = 2048
	o := Build(n, 1, rng)
	o.SetByzantine(0.1, rng)
	bad := 0
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		src := rng.IntN(n)
		res := o.FMRLookup(src, interval.Point(rng.Uint64()))
		if !res.OK {
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("%d/%d FMR lookups decoded wrong data at p=0.1", bad, trials)
	}
}

// TestFMRMessageComplexity reproduces Theorem 6.6(2,3): parallel time
// O(log n), messages O(log³ n).
func TestFMRMessageComplexity(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	const n = 2048
	o := Build(n, 1, rng)
	logN := math.Log2(n)
	for trial := 0; trial < 200; trial++ {
		res := o.FMRLookup(rng.IntN(n), interval.Point(rng.Uint64()))
		if !res.OK {
			t.Fatal("fault-free FMR lookup failed")
		}
		if float64(res.Hops) > logN+8 {
			t.Errorf("FMR hops %d > O(log n)", res.Hops)
		}
		if float64(res.Messages) > 40*logN*logN*logN {
			t.Errorf("FMR messages %d > O(log³ n) = %.0f", res.Messages, 40*logN*logN*logN)
		}
	}
}

// TestFMRBeatsSimpleUnderByzantine: the ablation — a simple lookup trusts a
// single path and gets corrupted with noticeable probability, FMR does not.
func TestFMRBeatsSimpleUnderByzantine(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	const n = 1024
	o := Build(n, 1, rng)
	o.SetByzantine(0.15, rng)
	const trials = 1000
	corruptedSimple := 0
	for trial := 0; trial < trials; trial++ {
		src := rng.IntN(n)
		path, ok := o.SimpleLookup(src, interval.Point(rng.Uint64()), rng)
		if !ok {
			continue
		}
		// A simple lookup is corrupted if any hop (excluding the honest
		// requester) was byzantine.
		for _, v := range path[1:] {
			if o.byz[v] {
				corruptedSimple++
				break
			}
		}
	}
	if corruptedSimple < trials/10 {
		t.Errorf("expected many corrupted simple lookups, got %d", corruptedSimple)
	}
	corruptedFMR := 0
	for trial := 0; trial < trials; trial++ {
		if res := o.FMRLookup(rng.IntN(n), interval.Point(rng.Uint64())); !res.OK {
			corruptedFMR++
		}
	}
	if corruptedFMR > trials/100 {
		t.Errorf("FMR corrupted %d/%d times", corruptedFMR, trials)
	}
}

// TestDegreeLogarithmic: Theorem 6.3 context — node degree is Θ(log n).
func TestDegreeLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	const n = 1024
	o := Build(n, 1, rng)
	logN := math.Log2(n)
	maxDeg := 0
	for i := 0; i < 100; i++ { // sample; DegreeOf is O(n) worst case
		d := o.DegreeOf(rng.IntN(n))
		if d > maxDeg {
			maxDeg = d
		}
		if float64(d) < logN/2 {
			t.Fatalf("degree %d below Θ(log n)", d)
		}
	}
	if float64(maxDeg) > 64*logN {
		t.Errorf("max degree %d far above Θ(log n)", maxDeg)
	}
}

// TestLoadBalancedUnderSimpleLookup: Theorem 6.3(2) — per-server lookup
// participation stays Θ(log n / n) of the traffic.
func TestLoadBalancedUnderSimpleLookup(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	const n = 1024
	o := Build(n, 1, rng)
	o.ResetLoad()
	const lookups = 4 * n
	for k := 0; k < lookups; k++ {
		o.SimpleLookup(rng.IntN(n), interval.Point(rng.Uint64()), rng)
	}
	var max int64
	for _, l := range o.Load {
		if l > max {
			max = l
		}
	}
	// Expected load per server ~ lookups·log n / n = 4 log n; whp O(log n).
	if float64(max) > 40*math.Log2(n) {
		t.Errorf("max load %d exceeds O(log n) per server", max)
	}
}

func TestDeadSourceFails(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	o := Build(64, 1, rng)
	o.alive[7] = false
	if _, ok := o.SimpleLookup(7, interval.Point(rng.Uint64()), rng); ok {
		t.Error("lookup from dead server should fail")
	}
	if res := o.FMRLookup(7, interval.Point(rng.Uint64())); res.OK {
		t.Error("FMR lookup from dead server should fail")
	}
}

// TestDegenerateSegmentDegree: a server whose overlapping segment shrinks
// to a single ulp must keep a local degree, not suddenly neighbour the
// whole network. Regression for the sub-ulp rounding bug audited out of
// Segment.Half/HalfPlus: a 1-ulp segment's forward image used to round to
// Len 0 — the full-circle convention — making DegreeOf count every server
// as a neighbour (the same aliasing continuous.DeltaImages fixed for the
// discrete graph builder).
func TestDegenerateSegmentDegree(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 14))
	const n = 512
	o := Build(n, 1, rng)
	victim := 7
	o.q[victim] = 1 // sub-ulp overlapping segment
	deg := o.DegreeOf(victim)
	logN := math.Log2(n)
	if float64(deg) > 24*logN {
		t.Fatalf("1-ulp segment degree %d ≈ Θ(n): forward image aliased to the full circle (Θ(log n) ≈ %.0f expected)", deg, logN)
	}
	// The victim still covers its own point, and lookups route around it.
	if covers := o.Covers(o.ring.Point(victim)); len(covers) == 0 {
		t.Fatal("degenerate segment lost all covers at its own start")
	}
}

func TestBuildPanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n < 8")
		}
	}()
	Build(4, 1, rand.New(rand.NewPCG(13, 13)))
}
