package interval

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStringFormats(t *testing.T) {
	p := FromFloat(0.5)
	if got := p.String(); got != "0.500000000" {
		t.Errorf("Point.String = %q", got)
	}
	s := Segment{Start: FromFloat(0.25), Len: uint64(FromFloat(0.25))}
	if got := s.String(); !strings.Contains(got, "0.25") || !strings.Contains(got, "0.50") {
		t.Errorf("Segment.String = %q", got)
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(a, b uint64) bool {
		p, q := Point(a), Point(b)
		return p.Add(q).Sub(q) == p && p.Sub(q).Add(q) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentEnd(t *testing.T) {
	s := Segment{Start: FromFloat(0.75), Len: uint64(FromFloat(0.5))}
	if got := s.End(); got != FromFloat(0.25) {
		t.Errorf("wrapping End = %v, want 0.25", got)
	}
}

func TestFullCircleImages(t *testing.T) {
	if FullCircle.Half() != (Segment{0, 1 << 63}) {
		t.Errorf("ℓ(I) = %v", FullCircle.Half())
	}
	if FullCircle.HalfPlus() != (Segment{1 << 63, 1 << 63}) {
		t.Errorf("r(I) = %v", FullCircle.HalfPlus())
	}
	if FullCircle.BackImage() != FullCircle {
		t.Errorf("b(I) = %v", FullCircle.BackImage())
	}
	// A segment of half the circle or more has a full-circle back image.
	big := Segment{0, 1 << 63}
	if big.BackImage() != FullCircle {
		t.Errorf("b(half circle) = %v", big.BackImage())
	}
}

func TestRingDistAntipodal(t *testing.T) {
	// Antipodal points: both directions give exactly half the circle.
	a, b := Point(0), Point(1<<63)
	if d := RingDist(a, b); d != 1<<63 {
		t.Errorf("antipodal RingDist = %d", d)
	}
}

// TestDeltaStepIsDeltaMap: DeltaStep is the documented alias of DeltaMap.
func TestDeltaStepIsDeltaMap(t *testing.T) {
	f := func(v uint64, d uint8) bool {
		delta := uint64(2 + d%14)
		digit := uint64(d) % delta
		return DeltaStep(Point(v), delta, digit) == DeltaMap(Point(v), delta, digit)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeltaMapPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DeltaMap(0, 0, 0)
}
