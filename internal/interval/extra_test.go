package interval

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStringFormats(t *testing.T) {
	p := FromFloat(0.5)
	if got := p.String(); got != "0.500000000" {
		t.Errorf("Point.String = %q", got)
	}
	s := Segment{Start: FromFloat(0.25), Len: uint64(FromFloat(0.25))}
	if got := s.String(); !strings.Contains(got, "0.25") || !strings.Contains(got, "0.50") {
		t.Errorf("Segment.String = %q", got)
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(a, b uint64) bool {
		p, q := Point(a), Point(b)
		return p.Add(q).Sub(q) == p && p.Sub(q).Add(q) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentEnd(t *testing.T) {
	s := Segment{Start: FromFloat(0.75), Len: uint64(FromFloat(0.5))}
	if got := s.End(); got != FromFloat(0.25) {
		t.Errorf("wrapping End = %v, want 0.25", got)
	}
}

func TestFullCircleImages(t *testing.T) {
	if FullCircle.Half() != (Segment{0, 1 << 63}) {
		t.Errorf("ℓ(I) = %v", FullCircle.Half())
	}
	if FullCircle.HalfPlus() != (Segment{1 << 63, 1 << 63}) {
		t.Errorf("r(I) = %v", FullCircle.HalfPlus())
	}
	if FullCircle.BackImage() != FullCircle {
		t.Errorf("b(I) = %v", FullCircle.BackImage())
	}
	// A segment of half the circle or more has a full-circle back image.
	big := Segment{0, 1 << 63}
	if big.BackImage() != FullCircle {
		t.Errorf("b(half circle) = %v", big.BackImage())
	}
}

// TestSubUlpSegmentImagesNonEmpty: the forward image of a sub-∆-ulp
// segment must stay a (tiny) segment, never round to Len 0 — which by
// convention denotes the full circle. Regression for the degenerate-
// segment aliasing first fixed in continuous.DeltaImages and audited here
// into the shared Segment.Half/HalfPlus primitives: before the ceiling
// rounding, a 1-ulp segment's image "covered" every point of I, silently
// connecting its server to the whole network (overlap.DegreeOf,
// p2p.notifyImageCovers).
func TestSubUlpSegmentImagesNonEmpty(t *testing.T) {
	for _, ln := range []uint64{1, 2, 3} {
		s := Segment{Start: FromFloat(0.7), Len: ln}
		for _, img := range []Segment{s.Half(), s.HalfPlus()} {
			if img.Len == 0 {
				t.Fatalf("image of %d-ulp segment rounded to the full circle", ln)
			}
			if img.Len > ln/2+1 {
				t.Fatalf("image of %d-ulp segment over-approximated to %d ulps", ln, img.Len)
			}
		}
		// The image still contains the image of every point of s.
		for off := uint64(0); off < ln; off++ {
			p := s.Start + Point(off)
			if !s.Half().Contains(p.Half()) || !s.HalfPlus().Contains(p.HalfPlus()) {
				t.Fatalf("point image escaped the %d-ulp segment image", ln)
			}
		}
		// And a far-away point is NOT covered (the aliasing symptom).
		if far := FromFloat(0.1); s.Half().Contains(far) && s.HalfPlus().Contains(far) {
			t.Fatalf("%d-ulp segment image still behaves like the full circle", ln)
		}
	}
}

func TestRingDistAntipodal(t *testing.T) {
	// Antipodal points: both directions give exactly half the circle.
	a, b := Point(0), Point(1<<63)
	if d := RingDist(a, b); d != 1<<63 {
		t.Errorf("antipodal RingDist = %d", d)
	}
}

// TestDeltaStepIsDeltaMap: DeltaStep is the documented alias of DeltaMap.
func TestDeltaStepIsDeltaMap(t *testing.T) {
	f := func(v uint64, d uint8) bool {
		delta := uint64(2 + d%14)
		digit := uint64(d) % delta
		return DeltaStep(Point(v), delta, digit) == DeltaMap(Point(v), delta, digit)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeltaMapPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DeltaMap(0, 0, 0)
}
