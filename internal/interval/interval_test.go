package interval

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 0.25, 0.5, 0.75, 0.999999, 1.0 / 3.0, 0.1}
	for _, f := range cases {
		p := FromFloat(f)
		if got := p.Float64(); math.Abs(got-f) > 1e-9 {
			t.Errorf("FromFloat(%v).Float64() = %v", f, got)
		}
	}
}

func TestFromFloatWraps(t *testing.T) {
	if FromFloat(1.25) != FromFloat(0.25) {
		t.Errorf("FromFloat should wrap mod 1")
	}
	if FromFloat(-0.25) != FromFloat(0.75) {
		t.Errorf("FromFloat should wrap negative values: got %v want %v",
			FromFloat(-0.25), FromFloat(0.75))
	}
}

func TestHalfMaps(t *testing.T) {
	y := FromFloat(0.6)
	if got, want := y.Half().Float64(), 0.3; math.Abs(got-want) > 1e-9 {
		t.Errorf("Half(0.6) = %v, want %v", got, want)
	}
	if got, want := y.HalfPlus().Float64(), 0.8; math.Abs(got-want) > 1e-9 {
		t.Errorf("HalfPlus(0.6) = %v, want %v", got, want)
	}
}

// TestBackInvertsMaps checks b(ℓ(y)) = b(r(y)) = y: the backward edge
// undoes either forward edge (the in-degree-1 property of Gc, §2.1). On the
// 64-bit grid the halving maps drop the least significant bit, so the
// round trip is exact up to one ulp.
func TestBackInvertsMaps(t *testing.T) {
	f := func(v uint64) bool {
		y := Point(v)
		return LinDist(y.Half().Back(), y) <= 1 && LinDist(y.HalfPlus().Back(), y) <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// And the round trip in the other direction is fully exact.
	g := func(v uint64) bool {
		y := Point(v)
		return y.Back().Half() == y&^(1<<63) && y.Back().HalfPlus() == y|1<<63
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// TestDistanceHalving verifies Observation 2.3: applying the same move to
// two points exactly halves their linear distance (up to the 1-ulp floor of
// integer shifting).
func TestDistanceHalving(t *testing.T) {
	f := func(a, b uint64, bit bool) bool {
		y, z := Point(a), Point(b)
		d := LinDist(y, z)
		var bt byte
		if bit {
			bt = 1
		}
		dd := LinDist(Step(y, bt), Step(z, bt))
		return dd == d/2 || dd == (d+1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWalkPrefixApproach verifies Claim 2.4: a walk determined by the first
// t bits of σ(y) lands within 2^-t of y, independent of the start z.
func TestWalkPrefixApproach(t *testing.T) {
	f := func(a, b uint64, tRaw uint8) bool {
		y, z := Point(a), Point(b)
		tt := uint(tRaw % 65)
		w := WalkPrefix(y, z, tt)
		if tt >= 64 {
			return w == y
		}
		return LinDist(y, w)>>(64-tt) == 0 // < 2^(64-t) in fixed point
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWalkPrefixIsComposedSteps checks that WalkPrefix(y, z, t) equals the
// explicit composition map_{b1}(map_{b2}(...map_{bt}(z)...)) where b1..bt
// are the most significant bits of y — i.e. the closed form matches the
// paper's recursive definition of w.
func TestWalkPrefixIsComposedSteps(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		y := Point(rng.Uint64())
		z := Point(rng.Uint64())
		tt := uint(rng.IntN(64))
		p := z
		for i := int(tt) - 1; i >= 0; i-- {
			p = Step(p, y.Bit(uint(i)))
		}
		if w := WalkPrefix(y, z, tt); w != p {
			t.Fatalf("WalkPrefix(%v,%v,%d) = %v, composed steps give %v", y, z, tt, w, p)
		}
	}
}

func TestBitExtraction(t *testing.T) {
	y := FromFloat(0.8125) // 0.1101 binary
	want := []byte{1, 1, 0, 1, 0}
	for i, w := range want {
		if got := y.Bit(uint(i)); got != w {
			t.Errorf("Bit(%d) of 0.8125 = %d, want %d", i, got, w)
		}
	}
}

func TestSegmentContains(t *testing.T) {
	// Exact dyadic endpoints: [0.875, 0.125) wrapping through 0.
	s := Segment{FromFloat(0.875), uint64(FromFloat(0.25))}
	for _, c := range []struct {
		p  float64
		in bool
	}{{0.9375, true}, {0.0625, true}, {0.875, true}, {0.125, false}, {0.5, false}, {0.75, false}} {
		if got := s.Contains(FromFloat(c.p)); got != c.in {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.in)
		}
	}
	if !FullCircle.Contains(FromFloat(0.123)) {
		t.Error("FullCircle should contain everything")
	}
}

func TestSegmentImagesHalveLength(t *testing.T) {
	s := Segment{FromFloat(0.3), uint64(FromFloat(0.4))}
	ceil := s.Len/2 + s.Len%2
	if s.Half().Len != ceil || s.HalfPlus().Len != ceil {
		t.Error("images should have half the length (rounded up to the grid)")
	}
	// Every point of s maps into the images.
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 500; i++ {
		p := s.Start + Point(rng.Uint64N(s.Len))
		if !s.Half().Contains(p.Half()) {
			t.Fatalf("ℓ(%v) not in ℓ(s)", p)
		}
		if !s.HalfPlus().Contains(p.HalfPlus()) {
			t.Fatalf("r(%v) not in r(s)", p)
		}
	}
}

func TestBackImageCoversPreimages(t *testing.T) {
	s := Segment{FromFloat(0.3), uint64(FromFloat(0.1))}
	bi := s.BackImage()
	if bi.Len != 2*s.Len {
		t.Errorf("BackImage length = %d, want %d", bi.Len, 2*s.Len)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 500; i++ {
		p := s.Start + Point(rng.Uint64N(s.Len))
		// Both preimages of p (2p and the point mapping to p via r, also 2p
		// shifted) reduce to b(p) = 2p mod 1, which must be in BackImage.
		if !bi.Contains(p.Back()) {
			t.Fatalf("b(%v)=%v not in BackImage %v", p, p.Back(), bi)
		}
	}
}

func TestSegmentOverlaps(t *testing.T) {
	a := Segment{FromFloat(0.1), uint64(FromFloat(0.2))} // [0.1,0.3)
	b := Segment{FromFloat(0.25), uint64(FromFloat(0.2))}
	c := Segment{FromFloat(0.5), uint64(FromFloat(0.2))}
	w := Segment{FromFloat(0.9), uint64(FromFloat(0.25))} // wraps to 0.15
	if !a.Overlaps(b) || b.Overlaps(c) == false && !b.Overlaps(b) {
		t.Error("basic overlap failed")
	}
	if a.Overlaps(c) {
		t.Error("disjoint segments reported overlapping")
	}
	if !w.Overlaps(a) {
		t.Error("wrapping overlap missed")
	}
	if !FullCircle.Overlaps(c) || !c.Overlaps(FullCircle) {
		t.Error("full circle overlaps everything")
	}
}

func TestRingDistances(t *testing.T) {
	a, b := FromFloat(0.125), FromFloat(0.875) // exact dyadic values
	if d := RingDist(a, b); d != uint64(FromFloat(0.25)) {
		t.Errorf("RingDist(0.125,0.875) = %v, want 0.25", Point(d))
	}
	if d := LinDist(a, b); d != uint64(FromFloat(0.75)) {
		t.Errorf("LinDist(0.125,0.875) = %v, want 0.75", Point(d))
	}
	if d := CWDist(b, a); d != uint64(FromFloat(0.25)) {
		t.Errorf("CWDist(0.875,0.125) = %v, want 0.25", Point(d))
	}
}

func TestDeltaMapPowerOfTwoMatchesBinary(t *testing.T) {
	f := func(v uint64) bool {
		y := Point(v)
		return DeltaMap(y, 2, 0) == y.Half() && DeltaMap(y, 2, 1) == y.HalfPlus()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDeltaBackInverts checks the ∆-ary in-edge property: b(f_i(y)) = y up
// to rounding, and the leading digit of f_i(y) is i.
func TestDeltaBackInverts(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for _, delta := range []uint64{2, 3, 4, 5, 8, 16, 100} {
		for trial := 0; trial < 300; trial++ {
			y := Point(rng.Uint64())
			i := rng.Uint64N(delta)
			img := DeltaMap(y, delta, i)
			if got := DeltaDigit(img, delta); got != i {
				t.Fatalf("∆=%d digit(f_%d(%v)) = %d", delta, i, y, got)
			}
			back := DeltaBack(img, delta)
			if LinDist(back, y) > 2*delta {
				t.Fatalf("∆=%d b(f_%d(y)) off by %d ulps", delta, i, LinDist(back, y))
			}
		}
	}
}

// TestDeltaDistanceDivision verifies the generalized Observation 2.3:
// d(f_i(y), f_i(z)) = d(y,z)/∆ up to rounding.
func TestDeltaDistanceDivision(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for _, delta := range []uint64{2, 3, 7, 16} {
		for trial := 0; trial < 300; trial++ {
			y, z := Point(rng.Uint64()), Point(rng.Uint64())
			i := rng.Uint64N(delta)
			d := LinDist(y, z)
			dd := LinDist(DeltaMap(y, delta, i), DeltaMap(z, delta, i))
			if dd > d/delta+1 || dd+1 < d/delta {
				t.Fatalf("∆=%d: distance %d -> %d, want ~%d", delta, d, dd, d/delta)
			}
		}
	}
}

// TestDeltaWalkPrefixApproach is the ∆-ary Claim 2.4: the walk lands within
// ∆^-t of y (plus t ulps of rounding for non-power-of-two ∆).
func TestDeltaWalkPrefixApproach(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, delta := range []uint64{2, 3, 8, 10} {
		for trial := 0; trial < 200; trial++ {
			y, z := Point(rng.Uint64()), Point(rng.Uint64())
			tt := uint(1 + rng.IntN(8))
			w := DeltaWalkPrefix(y, z, delta, tt)
			bound := uint64(math.Pow(float64(delta), -float64(tt)) * math.Pow(2, 64))
			slack := uint64(tt) * delta * 2
			if LinDist(y, w) > bound+slack {
				t.Fatalf("∆=%d t=%d: dist %d > bound %d", delta, tt, LinDist(y, w), bound)
			}
		}
	}
}

func TestLog2Inv(t *testing.T) {
	if got := Log2Inv(uint64(FromFloat(0.25))); math.Abs(got-2) > 1e-9 {
		t.Errorf("Log2Inv(0.25) = %v, want 2", got)
	}
	if got := Log2Inv(uint64(FromFloat(1.0 / 1024))); math.Abs(got-10) > 1e-9 {
		t.Errorf("Log2Inv(1/1024) = %v, want 10", got)
	}
}

func TestSegmentMidAndSize(t *testing.T) {
	s := Segment{FromFloat(0.9), uint64(FromFloat(0.2))}
	if m := s.Mid().Float64(); math.Abs(m-0.0) > 1e-9 && math.Abs(m-1.0) > 1e-9 {
		t.Errorf("Mid of wrapping [0.9,0.1) = %v, want 0.0", m)
	}
	if sz := s.Size(); math.Abs(sz-0.2) > 1e-9 {
		t.Errorf("Size = %v, want 0.2", sz)
	}
	if sz := FullCircle.Size(); sz != 1 {
		t.Errorf("FullCircle.Size = %v", sz)
	}
}
