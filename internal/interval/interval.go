// Package interval provides exact fixed-point arithmetic on the unit
// interval I = [0,1), the continuous space underlying every construction in
// the continuous-discrete approach (Naor & Wieder, SPAA 2003).
//
// A Point is a uint64 v interpreted as the real number v/2^64. With this
// representation the Distance Halving maps become exact bit operations:
//
//	ℓ(y) = y/2       -> v >> 1
//	r(y) = y/2 + 1/2 -> (v >> 1) | 1<<63
//	b(y) = 2y mod 1  -> v << 1
//
// The paper (§2.2.3) notes that its routing is "sensitive to small
// perturbations in the numerical value of the parameters" and suggests
// allocating 4·log n bits per variable; we allocate 64 bits and all binary
// walk operations are exact.
package interval

import (
	"fmt"
	"math"
	"math/bits"
)

// Point is a point of the unit interval I = [0,1), represented in fixed
// point: the Point v denotes the real number v / 2^64.
type Point uint64

// FromFloat converts a float64 in [0,1) to the nearest Point.
// Values outside [0,1) are wrapped modulo 1.
func FromFloat(f float64) Point {
	f -= math.Floor(f)
	// 2^64 is not representable as a float product target, so scale by 2^32
	// twice to avoid overflow at f very close to 1.
	hi := uint64(f * (1 << 32))
	rem := f*(1<<32) - float64(hi)
	lo := uint64(rem * (1 << 32))
	return Point(hi<<32 + lo)
}

// Float64 returns the point as a float64 in [0,1). It loses precision below
// 2^-53 but is convenient for display and statistics.
func (p Point) Float64() float64 {
	return float64(p) / (1 << 63) / 2
}

// String formats the point as a decimal fraction.
func (p Point) String() string {
	return fmt.Sprintf("%.9f", p.Float64())
}

// Bit returns the i-th most significant bit (i in [0,64)) of the binary
// expansion 0.b0 b1 b2 ... of the point.
func (p Point) Bit(i uint) byte {
	return byte(uint64(p)>>(63-i)) & 1
}

// Half returns ℓ(p) = p/2, the "left" edge of the continuous Distance
// Halving graph: it inserts a 0 at the most significant position.
func (p Point) Half() Point { return p >> 1 }

// HalfPlus returns r(p) = p/2 + 1/2, the "right" edge: it inserts a 1 at the
// most significant position.
func (p Point) HalfPlus() Point { return p>>1 | 1<<63 }

// Back returns b(p) = 2p mod 1, the backward edge of the continuous graph:
// the unique point whose ℓ- or r-image is p.
func (p Point) Back() Point { return p << 1 }

// Add returns p + q mod 1 (ring addition).
func (p Point) Add(q Point) Point { return p + q }

// Sub returns p - q mod 1 (ring subtraction).
func (p Point) Sub(q Point) Point { return p - q }

// LinDist returns |p - q|, the linear (non-wrapping) distance used by the
// paper's d(x,y), as a uint64 in fixed-point scale.
func LinDist(p, q Point) uint64 {
	if p > q {
		return uint64(p - q)
	}
	return uint64(q - p)
}

// RingDist returns the circular distance min(|p-q|, 1-|p-q|).
func RingDist(p, q Point) uint64 {
	d := uint64(p - q)
	if d > -d { // d > 2^63
		return -d
	}
	return d
}

// CWDist returns the clockwise (increasing) distance from p to q on the
// ring, i.e. the length of the arc [p, q).
func CWDist(p, q Point) uint64 { return uint64(q - p) }

// WalkPrefix returns w(σ(y)_t, z): the point reached by walking from z
// according to the first t bits of the binary representation of y, applied
// from the least significant (bit t) to the most significant (bit 1), so
// that the result shares its first t bits with y (Claim 2.4 of the paper:
// d(y, w(σ(y)_t, z)) ≤ 2^-t).
//
// In fixed point this is exact: the result is the top t bits of y followed
// by the top 64-t bits of z.
func WalkPrefix(y, z Point, t uint) Point {
	if t == 0 {
		return z
	}
	if t >= 64 {
		return y
	}
	mask := ^Point(0) << (64 - t)
	return (y & mask) | (z >> t)
}

// Step applies one continuous-graph move to p: bit 0 applies ℓ, bit 1
// applies r. A sequence of Steps with bits τ_1, τ_2, ... visits points whose
// top bits are the reversed prefix of τ; two walkers applying the same bits
// halve their distance each step (Observation 2.3).
func Step(p Point, bit byte) Point {
	if bit == 0 {
		return p.Half()
	}
	return p.HalfPlus()
}

// Segment is the half-open arc [Start, Start+Len) of the ring I. Len == 0
// denotes the full circle (the single-server partition).
type Segment struct {
	Start Point
	Len   uint64
}

// FullCircle is the segment covering all of I.
var FullCircle = Segment{0, 0}

// Contains reports whether p lies in the segment.
func (s Segment) Contains(p Point) bool {
	if s.Len == 0 {
		return true
	}
	return uint64(p-s.Start) < s.Len
}

// End returns the exclusive upper endpoint Start+Len (mod 1).
func (s Segment) End() Point { return s.Start + Point(s.Len) }

// Mid returns the midpoint of the segment.
func (s Segment) Mid() Point { return s.Start + Point(s.Len/2) }

// Size returns the length of the segment as a real number in [0,1].
func (s Segment) Size() float64 {
	if s.Len == 0 {
		return 1
	}
	return (float64(s.Len) / (1 << 63)) / 2
}

// Overlaps reports whether two segments intersect (as arcs of the ring).
func (s Segment) Overlaps(o Segment) bool {
	if s.Len == 0 || o.Len == 0 {
		return true
	}
	return uint64(o.Start-s.Start) < s.Len || uint64(s.Start-o.Start) < o.Len
}

// Half returns ℓ(s) = the image of the segment under the left map: an arc
// of half the length starting at ℓ(Start). (Figure 1 of the paper: an
// interval is mapped into two intervals, each half its size.)
//
// The length is rounded UP to the fixed-point grid: the image of a
// nonempty real interval is nonempty, but a floor division would round a
// 1-ulp segment's image to Len 0 — which by convention denotes the full
// circle, silently aliasing the smallest possible segment to the largest.
// This is the same degenerate-segment bug fixed by ceiling division in
// continuous.DeltaImages; the audit of the remaining Segment consumers
// (overlap.DegreeOf, p2p.notifyImageCovers) moved the fix here, to the
// shared primitive. Over-approximating by at most one ulp is harmless:
// the paper's bounds tolerate polynomially small perturbations (§4).
func (s Segment) Half() Segment {
	if s.Len == 0 {
		return Segment{0, 1 << 63}
	}
	return Segment{s.Start.Half(), s.Len/2 + s.Len%2}
}

// HalfPlus returns r(s), the image under the right map (rounded up to the
// grid like Half).
func (s Segment) HalfPlus() Segment {
	if s.Len == 0 {
		return Segment{1 << 63, 1 << 63}
	}
	return Segment{s.Start.HalfPlus(), s.Len/2 + s.Len%2}
}

// BackImage returns b(s) = the preimage arc of s under ℓ and r jointly: the
// contiguous arc of length 2·Len whose halving images cover s. All points
// reaching s via a backward edge originate in it.
func (s Segment) BackImage() Segment {
	if s.Len == 0 || s.Len >= 1<<63 {
		return FullCircle
	}
	return Segment{s.Start.Back(), s.Len * 2}
}

// String formats the segment as [start, end).
func (s Segment) String() string {
	return fmt.Sprintf("[%s, %s)", s.Start, s.End())
}

// DeltaMap computes f_i(y) = y/∆ + i/∆, the generalized De Bruijn edge map
// of alphabet size ∆ (Definition 4 / §2.3). For ∆ a power of two the result
// is exact; otherwise it is correct to one ulp of the 64-bit fixed-point
// grid, which the paper's analysis tolerates (§4: "all bounds remain correct
// even if points are perturbed by polynomially small values").
func DeltaMap(y Point, delta uint64, i uint64) Point {
	if delta == 0 {
		panic("interval: DeltaMap with delta == 0")
	}
	if bits.OnesCount64(delta) == 1 {
		k := uint(bits.TrailingZeros64(delta))
		return y>>k + Point(i<<(64-k))
	}
	q, _ := bits.Div64(i%delta, 0, delta) // floor(i * 2^64 / delta)
	return Point(uint64(y)/delta) + Point(q)
}

// DeltaBack returns b(y) = ∆·y mod 1, the backward edge of the ∆-ary graph.
func DeltaBack(y Point, delta uint64) Point {
	return Point(uint64(y) * delta)
}

// DeltaDigit returns the leading base-∆ digit of y, i.e. floor(y·∆): the
// index i such that y lies in the image of f_i.
func DeltaDigit(y Point, delta uint64) uint64 {
	hi, _ := bits.Mul64(uint64(y), delta)
	return hi
}

// DeltaWalkPrefix is the ∆-ary analogue of WalkPrefix: it walks from z
// according to the first t base-∆ digits of y, deepest digit first, so that
// d(y, result) ≤ ∆^-t (Claim 2.4 generalized in §2.3).
func DeltaWalkPrefix(y, z Point, delta uint64, t uint) Point {
	if t == 0 {
		return z
	}
	// Extract the first t digits of y, most significant first.
	digits := make([]uint64, t)
	v := y
	for i := uint(0); i < t; i++ {
		digits[i] = DeltaDigit(v, delta)
		v = DeltaBack(v, delta)
	}
	// Apply them deepest-first so digit[0] ends up most significant.
	p := z
	for i := int(t) - 1; i >= 0; i-- {
		p = DeltaMap(p, delta, digits[i])
	}
	return p
}

// DeltaStep applies one ∆-ary continuous-graph move with digit d.
func DeltaStep(p Point, delta uint64, d uint64) Point {
	return DeltaMap(p, delta, d)
}

// Log2Inv returns log2(1/x) for a length x given in fixed-point scale,
// i.e. 64 - log2(v). It is the quantity servers use to estimate log n from
// the distance to their ring predecessor (§6.2, Lemma 6.2).
func Log2Inv(length uint64) float64 {
	if length == 0 {
		return 0
	}
	return 64 - math.Log2(float64(length))
}
