package interval_test

// Property tests for the no-sub-ulp-alias invariant the segarith
// analyzer guards statically: Len == 0 denotes the FULL CIRCLE, so no
// exported Segment-producing helper may map a nonempty segment to a
// Len-0 one. PR 1 and PR 3 each fixed a floor division that did
// exactly that (a 1-ulp segment halving to "everything"); these tests
// pin the ceiling-rounded primitives against the same regression from
// the value side, over both adversarial 1-ulp inputs and random ones.

import (
	"math"
	"math/rand/v2"
	"testing"

	"condisc/internal/continuous"
	"condisc/internal/interval"
)

// adversarialLens are the lengths where floor arithmetic collapses:
// sub-ulp and near-boundary values on the fixed-point grid.
var adversarialLens = []uint64{
	1, 2, 3, 5, 7,
	1<<63 - 1, 1 << 63, 1<<63 + 1,
	math.MaxUint64 - 1, math.MaxUint64,
}

var adversarialStarts = []interval.Point{
	0, 1, 1<<63 - 1, 1 << 63, math.MaxUint64,
}

func segments(t *testing.T) []interval.Segment {
	t.Helper()
	var segs []interval.Segment
	for _, l := range adversarialLens {
		for _, s := range adversarialStarts {
			segs = append(segs, interval.Segment{Start: s, Len: l})
		}
	}
	rng := rand.New(rand.NewPCG(0xc0d15c, 7))
	for i := 0; i < 2000; i++ {
		ln := rng.Uint64()
		if ln == 0 {
			ln = 1
		}
		if i%3 == 0 {
			ln = 1 + rng.Uint64N(16) // bias toward the sub-ulp corner
		}
		segs = append(segs, interval.Segment{Start: interval.Point(rng.Uint64()), Len: ln})
	}
	return segs
}

// TestSegmentProducersNeverAliasToFullCircle: Half, HalfPlus and
// DeltaImages map every nonempty segment to nonempty segments.
// BackImage is allowed to return the full circle exactly when the
// preimage genuinely covers it (2·Len wraps), and must be nonempty
// otherwise.
func TestSegmentProducersNeverAliasToFullCircle(t *testing.T) {
	deltas := []uint64{2, 3, 4, 5, 8, 16, 60, 1021}
	for _, s := range segments(t) {
		if h := s.Half(); h.Len == 0 {
			t.Fatalf("Half(%v) aliased to the full circle", s)
		}
		if h := s.HalfPlus(); h.Len == 0 {
			t.Fatalf("HalfPlus(%v) aliased to the full circle", s)
		}
		if b := s.BackImage(); b.Len == 0 && s.Len < 1<<63 {
			t.Fatalf("BackImage(%v) aliased to the full circle without covering it", s)
		}
		for _, d := range deltas {
			for i, img := range continuous.DeltaImages(s, d) {
				if img.Len == 0 {
					t.Fatalf("DeltaImages(%v, %d)[%d] aliased to the full circle", s, d, i)
				}
			}
		}
	}
}

// TestHalfContainsPointImages: the segment image over-approximates the
// pointwise image — for every p in s, ℓ(p) lies in ℓ(s) and r(p) in
// r(s). Together with the nonemptiness property this is what consumers
// (dhgraph edge wiring, overlap degree counting) rely on.
//
// Two approximations are part of the primitives' documented contract
// (§4: all bounds tolerate one-ulp perturbations): the halving maps
// are discontinuous at the wrap point 0, so arcs crossing 0 have
// disconnected images a single Segment cannot cover (the containment
// check restricts itself to non-wrapping arcs); and for odd Start the
// grid image of a point can land exactly one ulp outside the rounded
// image segment, so containment is checked within a one-ulp margin.
// BackImage doubles distances mod 2^64 and must stay exact for every
// arc it reports as non-full.
func TestHalfContainsPointImages(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xa11a5, 11))
	for _, s := range segments(t) {
		wraps := uint64(s.Start) > math.MaxUint64-(s.Len-1)
		for trial := 0; trial < 4; trial++ {
			p := s.Start + interval.Point(rng.Uint64N(s.Len))
			if !s.Contains(p) {
				t.Fatalf("generator bug: %v not in %v", p, s)
			}
			if !wraps {
				if !containsWithin1(s.Half(), p.Half()) {
					t.Fatalf("Half(%v) = %v misses image of contained point %v", s, s.Half(), p)
				}
				if !containsWithin1(s.HalfPlus(), p.HalfPlus()) {
					t.Fatalf("HalfPlus(%v) = %v misses image of contained point %v", s, s.HalfPlus(), p)
				}
			}
			if !s.BackImage().Contains(p.Back()) {
				t.Fatalf("BackImage(%v) = %v misses preimage point %v", s, s.BackImage(), p)
			}
		}
	}
}

// containsWithin1 reports whether p lies in s extended by one ulp at
// either end.
func containsWithin1(s interval.Segment, p interval.Point) bool {
	return s.Contains(p) || s.Contains(p+1) || s.Contains(p-1)
}
