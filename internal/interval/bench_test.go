package interval

import (
	"math/rand/v2"
	"testing"
)

func BenchmarkWalkPrefix(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	y, z := Point(rng.Uint64()), Point(rng.Uint64())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = WalkPrefix(y, z, uint(i%64))
	}
}

func BenchmarkDeltaWalkPrefixBase3(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	y, z := Point(rng.Uint64()), Point(rng.Uint64())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DeltaWalkPrefix(y, z, 3, uint(i%40))
	}
}

func BenchmarkSegmentContains(b *testing.B) {
	s := Segment{Start: FromFloat(0.9), Len: uint64(FromFloat(0.2))}
	p := FromFloat(0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Contains(p)
	}
}
