package partition

import (
	"condisc/internal/interval"
	"condisc/internal/journal"
)

// Snapshot is an immutable, epoch-stamped view of the ring. Readers that
// must not block on churn (lookups, gets, puts) resolve covers and
// segments against a Snapshot instead of the live Ring: the snapshot's
// chunks are frozen by copy-on-write (olist.publishCopy), so a reader
// holding one sees exactly the decomposition as of some Publish — never a
// torn mix of pre- and post-wave state.
//
// Snapshots are cheap: a publish copies only the chunk directory (O(m)
// for m ≈ n/chunkTarget chunks) and marks chunks shared; the (point,
// handle) payload is copied lazily, one chunk at a time, only when churn
// actually mutates it.
type Snapshot struct {
	ol    olist
	epoch uint64
}

// Publish freezes the current ring state into a new Snapshot, stamps it
// with the next epoch, and makes it the value returned by Snapshot().
// It must be called only by the (externally serialized) mutating owner,
// and only at a sanctioned publish point: after a churn wave's item
// copies have landed, so that every owner the snapshot names can serve
// its items. Cost: O(m) chunks, independent of n.
func (r *Ring) Publish() *Snapshot {
	r.epoch++
	s := &Snapshot{ol: r.ol.publishCopy(), epoch: r.epoch}
	r.snap.Store(s)
	r.jrn.Record(journal.KindEpochPublish, r.epoch, r.epoch, uint64(s.N()), 0, 0)
	return s
}

// Snapshot returns the latest published snapshot. Before the first
// Publish it freezes the current state at epoch 0 on demand (callers may
// race to build it; one CAS wins). Reading a never-published ring that is
// concurrently mutating is a caller bug — the lazy build exists so that
// quiescent rings (tests, single-threaded experiments) work without a
// Publish ceremony.
func (r *Ring) Snapshot() *Snapshot {
	if s := r.snap.Load(); s != nil {
		return s
	}
	s := &Snapshot{ol: r.ol.publishCopy(), epoch: r.epoch}
	r.snap.CompareAndSwap(nil, s)
	return r.snap.Load()
}

// Epoch returns the epoch stamp of the latest publish (0 before the
// first). Like mutation, it is owner-side state: concurrent readers
// compare the epochs of snapshots they hold instead.
func (r *Ring) Epoch() uint64 { return r.epoch }

// --- read-side mirror of the Ring query API ---

// N returns the number of servers (segments) in the snapshot.
func (s *Snapshot) N() int { return s.ol.size() }

// Epoch returns the publish stamp this snapshot carries. Two reads that
// observe equal epochs observed the identical decomposition.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Point returns the i-th server point in sorted order (O(log n)).
func (s *Snapshot) Point(i int) interval.Point { return s.ol.pointAt(i) }

// HandleAt returns the stable handle of the server at index i (O(log n)).
func (s *Snapshot) HandleAt(i int) Handle { return s.ol.handleAt(i) }

// Cover returns the index of the server covering p. The snapshot must be
// non-empty.
func (s *Snapshot) Cover(p interval.Point) int {
	i := s.ol.searchGT(p)
	if i == 0 {
		return s.N() - 1 // p precedes all points: wrapping segment
	}
	return i - 1
}

// CoverHandle returns the stable handle of the server covering p.
func (s *Snapshot) CoverHandle(p interval.Point) Handle {
	return s.HandleAt(s.Cover(p))
}

// CoverSegment returns the index of the server covering p together with
// its segment, in a single ordered-list descent.
func (s *Snapshot) CoverSegment(p interval.Point) (int, interval.Segment) {
	if s.N() == 1 {
		return 0, interval.FullCircle
	}
	i, x, next := s.ol.coverSeg(p)
	return i, interval.Segment{Start: x, Len: uint64(next - x)}
}

// SegmentOf returns the segment of the server covering p without
// computing its rank.
func (s *Snapshot) SegmentOf(p interval.Point) interval.Segment {
	if s.N() == 1 {
		return interval.FullCircle
	}
	x, next := s.ol.coverSegOnly(p)
	return interval.Segment{Start: x, Len: uint64(next - x)}
}

// Segment returns s(x_i) = [x_i, x_{i+1}).
func (s *Snapshot) Segment(i int) interval.Segment {
	if s.N() == 1 {
		return interval.FullCircle
	}
	p := s.Point(i)
	next := s.Point(s.Successor(i))
	return interval.Segment{Start: p, Len: uint64(next - p)}
}

// Successor returns the index after i on the ring.
func (s *Snapshot) Successor(i int) int {
	if i == s.N()-1 {
		return 0
	}
	return i + 1
}

// Predecessor returns the index before i on the ring.
func (s *Snapshot) Predecessor(i int) int {
	if i == 0 {
		return s.N() - 1
	}
	return i - 1
}

// CoverHandlesOfArc returns the stable handles of all servers whose
// segments intersect the arc, in ring order (the snapshot-side twin of
// Ring.CoverHandlesOfArc).
func (s *Snapshot) CoverHandlesOfArc(arc interval.Segment) []Handle {
	n := s.N()
	if n == 0 {
		return nil
	}
	var out []Handle
	if arc.Len == 0 { // full circle
		out = make([]Handle, 0, n)
		s.ol.scan(func(_ int, _ interval.Point, h Handle) {
			out = append(out, h)
		})
		return out
	}
	first := true
	s.ol.scanRing(arc.Start, func(p interval.Point, h Handle) bool {
		if !first && (uint64(p-arc.Start) >= arc.Len || p == arc.Start) {
			return false
		}
		first = false
		out = append(out, h)
		return true
	})
	return out
}
