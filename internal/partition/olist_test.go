package partition

import (
	"math/rand/v2"
	"slices"
	"sort"
	"testing"

	"condisc/internal/interval"
)

// refList is the trivially correct flat-slice reference the chunked list is
// differentially tested against.
type refList struct {
	pts []interval.Point
	hs  []Handle
}

func (r *refList) searchGT(p interval.Point) int {
	return sort.Search(len(r.pts), func(i int) bool { return r.pts[i] > p })
}

func (r *refList) insert(p interval.Point, h Handle) (int, bool) {
	i := r.searchGT(p)
	if i > 0 && r.pts[i-1] == p {
		return i - 1, false
	}
	r.pts = slices.Insert(r.pts, i, p)
	r.hs = slices.Insert(r.hs, i, h)
	return i, true
}

func (r *refList) removeAt(i int) {
	r.pts = slices.Delete(r.pts, i, i+1)
	r.hs = slices.Delete(r.hs, i, i+1)
}

func checkAgainstRef(t *testing.T, op int, l *olist, ref *refList) {
	t.Helper()
	if l.size() != len(ref.pts) {
		t.Fatalf("op %d: size %d != %d", op, l.size(), len(ref.pts))
	}
	seen := 0
	l.scan(func(i int, p interval.Point, h Handle) {
		if p != ref.pts[i] || h != ref.hs[i] {
			t.Fatalf("op %d: scan[%d] = (%v,%d), want (%v,%d)", op, i, p, h, ref.pts[i], ref.hs[i])
		}
		seen++
	})
	if seen != len(ref.pts) {
		t.Fatalf("op %d: scan visited %d of %d", op, seen, len(ref.pts))
	}
	// Directory invariants: non-empty chunks, sizes within bounds, maxs
	// match, Fenwick consistent.
	total := 0
	for c, ck := range l.chunks {
		if len(ck.pts) == 0 {
			t.Fatalf("op %d: empty chunk %d", op, c)
		}
		if len(ck.pts) >= chunkMax {
			t.Fatalf("op %d: chunk %d oversized (%d)", op, c, len(ck.pts))
		}
		if l.maxs[c] != ck.pts[len(ck.pts)-1] {
			t.Fatalf("op %d: maxs[%d] = %v, want %v", op, c, l.maxs[c], ck.pts[len(ck.pts)-1])
		}
		if l.fenPrefix(c) != total {
			t.Fatalf("op %d: fenPrefix(%d) = %d, want %d", op, c, l.fenPrefix(c), total)
		}
		total += len(ck.pts)
	}
}

// TestOlistDifferential drives random interleavings of insert/remove/query
// against the flat-slice reference.
func TestOlistDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 202))
	var l olist
	var ref refList
	for op := 0; op < 30_000; op++ {
		switch {
		case ref.pts == nil || rng.IntN(3) > 0 && len(ref.pts) < 2500 || len(ref.pts) < 10:
			p := interval.Point(rng.Uint64() >> 44) // narrow range forces duplicates
			h := Handle(op + 1)
			gi, gok := l.insert(p, h)
			wi, wok := ref.insert(p, h)
			if gi != wi || gok != wok {
				t.Fatalf("op %d: insert(%v) = (%d,%v), want (%d,%v)", op, p, gi, gok, wi, wok)
			}
		default:
			i := rng.IntN(len(ref.pts))
			l.removeAt(i)
			ref.removeAt(i)
		}
		if op%37 == 0 || op < 100 {
			checkAgainstRef(t, op, &l, &ref)
		}
		// Random point queries.
		p := interval.Point(rng.Uint64() >> 44)
		if g, w := l.searchGT(p), ref.searchGT(p); g != w {
			t.Fatalf("op %d: searchGT(%v) = %d, want %d", op, p, g, w)
		}
		if len(ref.pts) > 0 {
			i := rng.IntN(len(ref.pts))
			gp, gh := l.at(i)
			if gp != ref.pts[i] || gh != ref.hs[i] {
				t.Fatalf("op %d: at(%d) = (%v,%d), want (%v,%d)", op, i, gp, gh, ref.pts[i], ref.hs[i])
			}
			gi, gc, gs := l.coverSeg(p)
			wi := ref.searchGT(p) - 1
			if wi < 0 {
				wi = len(ref.pts) - 1
			}
			ws := ref.pts[(wi+1)%len(ref.pts)]
			if gi != wi || gc != ref.pts[wi] || gs != ws {
				t.Fatalf("op %d: coverSeg(%v) = (%d,%v,%v), want (%d,%v,%v)",
					op, p, gi, gc, gs, wi, ref.pts[wi], ws)
			}
		}
	}
	checkAgainstRef(t, -1, &l, &ref)
}

// TestCoverHandlesOfArc: the chunk-walking handle enumeration agrees with
// the index-based CoversOfArc + HandleAt composition on random rings and
// arcs, including wrap-around and full-circle arcs.
func TestCoverHandlesOfArc(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	r := New()
	for i := 0; i < 700; i++ {
		r.Insert(interval.Point(rng.Uint64()))
	}
	check := func(arc interval.Segment) {
		t.Helper()
		want := make([]Handle, 0, 8)
		for _, c := range r.CoversOfArc(arc) {
			want = append(want, r.HandleAt(c))
		}
		got := r.CoverHandlesOfArc(arc)
		if len(got) != len(want) {
			t.Fatalf("arc %v: %d handles, want %d", arc, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("arc %v: handle[%d] = %d, want %d", arc, i, got[i], want[i])
			}
		}
		// SegmentOf must agree with the index path too.
		if s, w := r.SegmentOf(arc.Start), r.Segment(r.Cover(arc.Start)); s != w {
			t.Fatalf("SegmentOf(%v) = %v, want %v", arc.Start, s, w)
		}
	}
	check(interval.FullCircle)
	for i := 0; i < 3000; i++ {
		start := interval.Point(rng.Uint64())
		ln := rng.Uint64() >> uint(rng.IntN(60))
		if ln == 0 {
			ln = 1
		}
		check(interval.Segment{Start: start, Len: ln})
	}
	// Wrapping arcs crossing 0.
	for i := 0; i < 200; i++ {
		check(interval.Segment{Start: interval.Point(^uint64(0) - rng.Uint64()>>40), Len: 1 << 41})
	}
}

// TestOlistGrowShrink pushes the list through a full grow/shrink cycle so
// every split/merge path fires.
func TestOlistGrowShrink(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	var l olist
	var ref refList
	for i := 0; i < 5000; i++ {
		p := interval.Point(rng.Uint64())
		h := Handle(i + 1)
		l.insert(p, h)
		ref.insert(p, h)
	}
	checkAgainstRef(t, 5000, &l, &ref)
	for len(ref.pts) > 0 {
		var i int
		switch rng.IntN(3) {
		case 0:
			i = 0
		case 1:
			i = len(ref.pts) - 1
		default:
			i = rng.IntN(len(ref.pts))
		}
		l.removeAt(i)
		ref.removeAt(i)
		if len(ref.pts)%61 == 0 {
			checkAgainstRef(t, len(ref.pts), &l, &ref)
		}
	}
	if l.size() != 0 || len(l.chunks) != 0 {
		t.Fatalf("drained list not empty: size %d, %d chunks", l.size(), len(l.chunks))
	}
	// The list must be reusable after draining.
	if i, ok := l.insert(42, 1); !ok || i != 0 {
		t.Fatalf("insert after drain = (%d,%v)", i, ok)
	}
}

// TestOlistClone: mutations after a clone do not leak between copies.
func TestOlistClone(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	var l olist
	for i := 0; i < 1000; i++ {
		l.insert(interval.Point(rng.Uint64()), Handle(i+1))
	}
	c := l.clone()
	for i := 0; i < 500; i++ {
		c.removeAt(rng.IntN(c.size()))
		l.insert(interval.Point(rng.Uint64()), Handle(2000+i))
	}
	if l.size() != 1500 || c.size() != 500 {
		t.Fatalf("sizes after divergence: %d, %d", l.size(), c.size())
	}
	prev := interval.Point(0)
	c.scan(func(i int, p interval.Point, _ Handle) {
		if i > 0 && p <= prev {
			t.Fatalf("clone unsorted at %d", i)
		}
		prev = p
	})
}
