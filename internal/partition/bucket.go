package partition

import (
	"math"
	"math/rand/v2"

	"condisc/internal/interval"
)

// This file implements the Bucket Solution of §4.1: smoothness maintenance
// in the presence of deletions. Servers join with Single Choice IDs; a
// distributed coordination mechanism groups contiguous chains of Θ(log n)
// servers into buckets. Within a bucket, servers may shift their IDs so no
// segment is too long or too short; buckets split when they grow beyond
// c·log n members and merge with a neighbour when they shrink below a
// threshold. Additionally, adjacent buckets whose point densities drift
// apart move their shared boundary ("rearrange themselves only when the
// smoothness within the bucket exceeds some tunable parameter" — we apply
// the same tunable rule to a bucket pair, which is what a merge-then-split
// achieves in the paper's scheme).
//
// The correctness rationale (§4.1): whp every interval of length log n / n
// contains Θ(log n) points, so balancing within O(log n)-sized contiguous
// chains suffices to restore smoothness.

// BucketRing is a decomposition of I under churn, with servers organized
// into buckets. Points are stored in clockwise ring order starting from an
// anchor (the first point of bucket 0), which makes in-place ID respacing
// wrap-safe.
type BucketRing struct {
	pts   []interval.Point // ring order: CWDist(anchor, pts[i]) strictly increasing
	sizes []int            // sizes[b] = servers in bucket b; sum = len(pts)
	// smoothCap triggers an internal rebalance when a bucket's max/min
	// segment ratio exceeds it; densityCap triggers a boundary shift when
	// adjacent buckets' densities differ by more than this factor.
	smoothCap  float64
	densityCap float64
}

// NewBucketRing creates a bucket ring seeded with n0 >= 2 servers at
// uniform random IDs. smoothCap tunes how eagerly buckets rebalance.
func NewBucketRing(n0 int, smoothCap float64, rng *rand.Rand) *BucketRing {
	if n0 < 2 {
		n0 = 2
	}
	seen := make(map[interval.Point]bool, n0)
	pts := make([]interval.Point, 0, n0)
	for len(pts) < n0 {
		p := SingleChoice(rng)
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	r := FromPoints(pts)
	b := &BucketRing{
		pts:        r.Points(), // Points() materializes a fresh slice
		smoothCap:  smoothCap,
		densityCap: 2,
	}
	b.rebuildBuckets()
	return b
}

// N returns the number of servers.
func (b *BucketRing) N() int { return len(b.pts) }

// Ring materializes the current decomposition as a sorted Ring (for
// measurement; O(n log n)).
func (b *BucketRing) Ring() *Ring { return FromPoints(b.pts) }

// anchor is the fixed origin of the clockwise ordering.
func (b *BucketRing) anchor() interval.Point { return b.pts[0] }

// cw returns the clockwise offset of p from the anchor.
func (b *BucketRing) cw(p interval.Point) uint64 {
	return interval.CWDist(b.anchor(), p)
}

// gap returns the segment length between consecutive ring points i, i+1.
func (b *BucketRing) gap(i int) uint64 {
	j := i + 1
	if j == len(b.pts) {
		j = 0
	}
	return interval.CWDist(b.pts[i], b.pts[j])
}

// Smoothness returns the global max/min segment ratio.
func (b *BucketRing) Smoothness() float64 {
	min, max := ^uint64(0), uint64(0)
	for i := range b.pts {
		g := b.gap(i)
		if g < min {
			min = g
		}
		if g > max {
			max = g
		}
	}
	if min == 0 {
		return math.Inf(1)
	}
	return float64(max) / float64(min)
}

// targetBucketSize returns Θ(log n) for the current n.
func (b *BucketRing) targetBucketSize() int {
	n := len(b.pts)
	if n < 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n)))) + 1
}

// rebuildBuckets reassigns all servers into buckets of target size.
func (b *BucketRing) rebuildBuckets() {
	n := len(b.pts)
	tgt := b.targetBucketSize()
	b.sizes = b.sizes[:0]
	for n > 0 {
		sz := tgt
		if n < 2*tgt {
			sz = n
		}
		b.sizes = append(b.sizes, sz)
		n -= sz
	}
}

// bucketOf returns the bucket containing ring index i and the ring index of
// that bucket's first server.
func (b *BucketRing) bucketOf(i int) (bkt, first int) {
	acc := 0
	for bi, sz := range b.sizes {
		if i < acc+sz {
			return bi, acc
		}
		acc += sz
	}
	return len(b.sizes) - 1, acc - b.sizes[len(b.sizes)-1]
}

// bucketArcLen returns the length of the arc owned by bucket bkt (from its
// first point to the next bucket's first point, wrapping for the last).
func (b *BucketRing) bucketArcLen(bkt, first int) uint64 {
	nextFirst := first + b.sizes[bkt]
	if nextFirst >= len(b.pts) {
		return interval.CWDist(b.pts[first], b.pts[0])
	}
	return interval.CWDist(b.pts[first], b.pts[nextFirst])
}

// bucketSmoothness returns max/min segment ratio among the bucket's
// members (their segments are the gaps starting at each member).
func (b *BucketRing) bucketSmoothness(bkt, first int) float64 {
	min, max := ^uint64(0), uint64(0)
	for j := 0; j < b.sizes[bkt]; j++ {
		g := b.gap(first + j)
		if g < min {
			min = g
		}
		if g > max {
			max = g
		}
	}
	if min == 0 {
		return math.Inf(1)
	}
	return float64(max) / float64(min)
}

// rebalance evenly respaces the bucket's members over its arc, keeping the
// first point fixed. Safe across the 0-wrap because points are stored in
// ring order from the anchor and the arc never crosses the anchor.
func (b *BucketRing) rebalance(bkt, first int) {
	k := b.sizes[bkt]
	if k <= 1 {
		return
	}
	arcLen := b.bucketArcLen(bkt, first)
	step := arcLen / uint64(k)
	start := b.pts[first]
	for j := 1; j < k; j++ {
		b.pts[first+j] = start + interval.Point(uint64(j)*step)
	}
}

// pairRebalance respaces buckets bkt and bkt+1 jointly over their combined
// arc, moving the shared boundary so both end up with equal segment
// lengths. Skipped for the wrapping pair to keep the anchor fixed.
func (b *BucketRing) pairRebalance(bkt, first int) {
	if bkt+1 >= len(b.sizes) {
		return
	}
	k1, k2 := b.sizes[bkt], b.sizes[bkt+1]
	total := b.bucketArcLen(bkt, first) + b.bucketArcLen(bkt+1, first+k1)
	k := k1 + k2
	step := total / uint64(k)
	start := b.pts[first]
	for j := 1; j < k; j++ {
		b.pts[first+j] = start + interval.Point(uint64(j)*step)
	}
}

// Join inserts a server with a Single Choice ID and maintains the bucket
// invariants, returning the new server's point.
func (b *BucketRing) Join(rng *rand.Rand) interval.Point {
	for {
		p := SingleChoice(rng)
		if b.insert(p) {
			return p
		}
	}
}

// insert places p in ring order; returns false on duplicate.
func (b *BucketRing) insert(p interval.Point) bool {
	idx := b.coverIndex(p)
	if b.pts[idx] == p {
		return false
	}
	at := idx + 1
	b.pts = append(b.pts, 0)
	copy(b.pts[at+1:], b.pts[at:])
	b.pts[at] = p
	bkt, first := b.bucketOf(at)
	b.sizes[bkt]++
	b.maintain(bkt, first)
	return true
}

// coverIndex returns the ring index of the server covering p: the largest i
// with cw(pts[i]) <= cw(p).
func (b *BucketRing) coverIndex(p interval.Point) int {
	d := b.cw(p)
	lo, hi := 0, len(b.pts) // invariant: cw(pts[lo]) <= d or lo == 0
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if b.cw(b.pts[mid]) <= d {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Leave removes the server covering p (e.g. a random failure) and
// maintains the bucket invariants.
func (b *BucketRing) Leave(p interval.Point) {
	if len(b.pts) <= 2 {
		return
	}
	idx := b.coverIndex(p)
	bkt, first := b.bucketOf(idx)
	b.pts = append(b.pts[:idx], b.pts[idx+1:]...)
	b.sizes[bkt]--
	if b.sizes[bkt] == 0 {
		// Bucket vanished: drop it and fold maintenance into the neighbour.
		b.sizes = append(b.sizes[:bkt], b.sizes[bkt+1:]...)
		if len(b.sizes) == 0 {
			b.rebuildBuckets()
			return
		}
		if bkt >= len(b.sizes) {
			bkt = len(b.sizes) - 1
			first -= b.sizes[bkt]
		}
		if first < 0 {
			first = 0
		}
	}
	b.maintain(bkt, first)
}

// maintain enforces size bounds, the smoothness cap, and density diffusion
// on bucket bkt (whose first ring index is first).
func (b *BucketRing) maintain(bkt, first int) {
	n := len(b.pts)
	if n == 0 || len(b.sizes) == 0 {
		return
	}
	tgt := b.targetBucketSize()
	switch {
	case b.sizes[bkt] > 2*tgt:
		// Split into two halves and respace each.
		half := b.sizes[bkt] / 2
		rest := b.sizes[bkt] - half
		b.sizes[bkt] = half
		b.sizes = append(b.sizes, 0)
		copy(b.sizes[bkt+2:], b.sizes[bkt+1:])
		b.sizes[bkt+1] = rest
		b.pairRebalance(bkt, first)
		return
	case b.sizes[bkt] < tgt/2 && len(b.sizes) > 1:
		if bkt+1 < len(b.sizes) {
			// Merge with successor, then respace (and re-split if too big).
			b.sizes[bkt] += b.sizes[bkt+1]
			b.sizes = append(b.sizes[:bkt+1], b.sizes[bkt+2:]...)
			if b.sizes[bkt] > 2*tgt {
				b.maintain(bkt, first)
				return
			}
			b.rebalance(bkt, first)
			return
		}
		// Last bucket: merge with predecessor instead (keeps anchor fixed).
		prev := bkt - 1
		prevFirst := first - b.sizes[prev]
		b.sizes[prev] += b.sizes[bkt]
		b.sizes = b.sizes[:bkt]
		if b.sizes[prev] > 2*tgt {
			b.maintain(prev, prevFirst)
			return
		}
		b.rebalance(prev, prevFirst)
		return
	}
	if b.bucketSmoothness(bkt, first) > b.smoothCap {
		b.rebalance(bkt, first)
	}
	// Density diffusion: if this bucket and its successor have drifted
	// apart in points-per-arc, move the shared boundary.
	if bkt+1 < len(b.sizes) {
		b.diffuse(bkt, first)
	}
	if bkt > 0 {
		prevFirst := first - b.sizes[bkt-1]
		b.diffuse(bkt-1, prevFirst)
	}
}

// diffuse pair-rebalances bkt and bkt+1 when their densities differ by more
// than densityCap.
func (b *BucketRing) diffuse(bkt, first int) {
	a1 := float64(b.bucketArcLen(bkt, first))
	a2 := float64(b.bucketArcLen(bkt+1, first+b.sizes[bkt]))
	if a1 == 0 || a2 == 0 {
		b.pairRebalance(bkt, first)
		return
	}
	d1 := float64(b.sizes[bkt]) / a1
	d2 := float64(b.sizes[bkt+1]) / a2
	if d1/d2 > b.densityCap || d2/d1 > b.densityCap {
		b.pairRebalance(bkt, first)
	}
}

// NumBuckets returns the current number of buckets.
func (b *BucketRing) NumBuckets() int { return len(b.sizes) }

// CheckInvariants verifies bookkeeping: sizes sum to n, no empty buckets,
// and points are in strict clockwise order from the anchor.
func (b *BucketRing) CheckInvariants() bool {
	total := 0
	for _, sz := range b.sizes {
		if sz <= 0 {
			return false
		}
		total += sz
	}
	if total != len(b.pts) {
		return false
	}
	for i := 1; i < len(b.pts); i++ {
		if b.cw(b.pts[i]) <= b.cw(b.pts[i-1]) {
			return false
		}
	}
	return true
}
