package partition

// This file implements arc leases — the per-region locking primitive that
// makes churn concurrent for disjoint neighbourhoods. The paper's locality
// theorem (§2.1, Theorem 2.2) says a Join or Leave rewrites the state of
// only the O(ρ·∆) servers whose segments, forward images, or preimages
// intersect the changed segment; everything else is untouched. An arc
// lease turns that theorem into a synchronization discipline: a churn
// event acquires the set of arcs it may read or write (the changed region
// plus its image/preimage span, LeaseSpan), and two events proceed
// concurrently exactly when their span sets are disjoint. Overlapping
// leases queue and are admitted in arrival order once every conflicting
// earlier lease is released, so a queued event always observes the state
// its conflicting predecessors committed.
//
// Deadlock freedom: a lease's whole span set is acquired atomically under
// one registry lock — a caller never holds part of a lease while waiting
// for the rest — so there is no hold-and-wait and no ordering discipline
// (such as sorting spans by ring position) is required of callers. The
// admission order among conflicting waiters is the total order of their
// arrival tickets, which keeps the wait-for relation acyclic and
// starvation-free: the earliest conflicting waiter is always the next one
// admitted when the arcs it needs drain. (One lease per actor: an actor
// that acquired a lease must release it before acquiring another.)

import (
	"sync"

	"condisc/internal/continuous"
	"condisc/internal/interval"
)

// Lease is a held (or queued) claim over a set of arcs of the ring.
type Lease struct {
	spans  []interval.Segment
	ticket uint64
}

// Spans returns the arcs the lease covers.
func (l *Lease) Spans() []interval.Segment { return l.spans }

// SpansOverlap reports whether any arc of a intersects any arc of b.
func SpansOverlap(a, b []interval.Segment) bool {
	for _, s := range a {
		for _, o := range b {
			if s.Overlaps(o) {
				return true
			}
		}
	}
	return false
}

// Leases is a registry of arc leases over one ring. The zero value is not
// usable; construct with NewLeases.
type Leases struct {
	mu      sync.Mutex
	cond    *sync.Cond
	held    map[*Lease]struct{}
	waiting []*Lease // queued Acquire calls in ticket (arrival) order
	next    uint64
}

// NewLeases returns an empty lease registry.
func NewLeases() *Leases {
	ls := &Leases{held: make(map[*Lease]struct{})}
	ls.cond = sync.NewCond(&ls.mu)
	return ls
}

// conflictsHeldLocked reports whether spans overlap any held lease.
func (ls *Leases) conflictsHeldLocked(spans []interval.Segment) bool {
	for h := range ls.held {
		if SpansOverlap(h.spans, spans) {
			return true
		}
	}
	return false
}

// TryAcquire atomically acquires a lease over all spans if no held lease
// overlaps any of them, reporting whether it succeeded. Queued waiters are
// not consulted: TryAcquire is the non-blocking admission probe the batch
// executor drains conflict waves with (a refused event is simply deferred
// to the next wave rather than parked).
func (ls *Leases) TryAcquire(spans ...interval.Segment) (*Lease, bool) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.conflictsHeldLocked(spans) {
		return nil, false
	}
	l := &Lease{spans: append([]interval.Segment(nil), spans...), ticket: ls.next}
	ls.next++
	ls.held[l] = struct{}{}
	return l, true
}

// Acquire blocks until a lease over all spans can be held, then returns
// it. Conflicting acquisitions are admitted in arrival order; by the time
// Acquire returns, every earlier-queued conflicting lease has been
// released, so the caller observes the ring state those events committed.
func (ls *Leases) Acquire(spans ...interval.Segment) *Lease {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	l := &Lease{spans: append([]interval.Segment(nil), spans...), ticket: ls.next}
	ls.next++
	ls.waiting = append(ls.waiting, l)
	for !ls.admissibleLocked(l) {
		ls.cond.Wait()
	}
	for i, w := range ls.waiting {
		if w == l {
			ls.waiting = append(ls.waiting[:i], ls.waiting[i+1:]...)
			break
		}
	}
	ls.held[l] = struct{}{}
	return l
}

// admissibleLocked reports whether l can be admitted now: no held lease
// conflicts, and no earlier-ticketed waiter conflicts (the earlier waiter
// goes first — arrival order is the total order that keeps admission fair
// and the wait-for relation acyclic).
func (ls *Leases) admissibleLocked(l *Lease) bool {
	if ls.conflictsHeldLocked(l.spans) {
		return false
	}
	for _, w := range ls.waiting {
		if w.ticket < l.ticket && SpansOverlap(w.spans, l.spans) {
			return false
		}
	}
	return true
}

// Release returns the lease's arcs to the registry and wakes queued
// waiters. Releasing a lease twice (or one never acquired) is a no-op.
func (ls *Leases) Release(l *Lease) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if _, ok := ls.held[l]; !ok {
		return
	}
	delete(ls.held, l)
	ls.cond.Broadcast()
}

// Held returns the number of currently held leases.
func (ls *Leases) Held() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return len(ls.held)
}

// sourcePad mirrors the ulp padding the incremental graph engine applies
// before enumerating preimage covers (dhgraph.affectedSources): the lease
// must own the segment of every server that engine will patch.
const sourcePad = 64

// padUlps widens the arc by p ulps on both sides (full circle on
// overflow).
func padUlps(s interval.Segment, p uint64) interval.Segment {
	if s.Len == 0 || p == 0 {
		return s
	}
	widened := s.Len + 2*p
	if widened < s.Len { // overflow: the arc is nearly the whole circle
		return interval.FullCircle
	}
	return interval.Segment{Start: s.Start - interval.Point(p), Len: widened}
}

// snapToCovers extends the arc to the full segments of its boundary
// covers: the start moves back to the start of the segment covering it,
// and the end forward to the end of the segment covering the last point.
// A churn event that enumerates the covers of an arc reads — and may
// rewrite — the state of servers whose segments stick out past the arc's
// ends; snapping makes the lease own those segments entirely, so span
// disjointness implies touched-server disjointness.
func (r *Ring) snapToCovers(arc interval.Segment) interval.Segment {
	if arc.Len == 0 || r.N() <= 1 {
		return interval.FullCircle
	}
	startSeg := r.SegmentOf(arc.Start)
	endSeg := r.SegmentOf(arc.End() - 1)
	if startSeg.Len == 0 || endSeg.Len == 0 {
		return interval.FullCircle
	}
	start := startSeg.Start
	end := endSeg.End()
	ln := interval.CWDist(start, end)
	if ln < arc.Len { // the snapped arc wrapped all the way around
		return interval.FullCircle
	}
	return interval.Segment{Start: start, Len: ln}
}

// LeaseSpan computes the arcs a churn event over the changed region must
// lease: the region itself, its ∆-ary preimage arc (the segments whose
// forward images the event rewrites), and the ∆ forward images of that
// preimage (the targets whose backward lists the rewrites patch) — each
// padded and snapped to cover boundaries. changed is the segment whose
// shape the event alters: for a Join, the predecessor's pre-split
// segment; for a Leave, the union of the leaver's and the absorbing
// predecessor's segments. Two events whose LeaseSpans are disjoint touch
// disjoint server state, so their graph, store, and cache updates commute.
func (r *Ring) LeaseSpan(changed interval.Segment, delta uint64) []interval.Segment {
	if changed.Len == 0 {
		return []interval.Segment{interval.FullCircle}
	}
	// One extra ulp past the end so the ring successor of the changed
	// region (whose adjacency list gains or loses a ring edge) is owned by
	// the span.
	region := interval.Segment{Start: changed.Start, Len: changed.Len + 1}
	if region.Len == 0 {
		region = interval.FullCircle
	}
	region = r.snapToCovers(region)
	if region.Len == 0 {
		return []interval.Segment{interval.FullCircle}
	}
	// The preimage arc, padded exactly as the graph engine pads it before
	// enumerating the affected sources.
	back := r.snapToCovers(continuous.DeltaBackImage(padUlps(region, sourcePad), delta))
	spans := []interval.Segment{region, back}
	if back.Len == 0 {
		return []interval.Segment{interval.FullCircle}
	}
	// The ∆ forward images of both arcs: the servers of `region` and of
	// `back` have their out-lists recomputed, which patches the in-lists
	// of every cover of their segments' images. For power-of-two ∆ the
	// image maps are exact bit shifts; otherwise they carry one-ulp
	// rounding, mirrored here with a small pad.
	imgPad := uint64(0)
	if delta&(delta-1) != 0 {
		imgPad = 2
	}
	for _, arc := range []interval.Segment{region, back} {
		for _, img := range continuous.DeltaImages(arc, delta) {
			spans = append(spans, r.snapToCovers(padUlps(img, imgPad)))
		}
	}
	for _, s := range spans {
		if s.Len == 0 {
			return []interval.Segment{interval.FullCircle}
		}
	}
	return spans
}
