package partition

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"condisc/internal/interval"
)

// overlapChecker is the shared oracle the concurrency tests hang the
// mutual-exclusion property on: every goroutine registers its span set
// while it "holds" the lease, and registration fails the test if any
// already-registered set overlaps.
type overlapChecker struct {
	mu   sync.Mutex
	held map[int][]interval.Segment
	errs []string
}

func (oc *overlapChecker) enter(id int, spans []interval.Segment) {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	for other, os := range oc.held {
		if SpansOverlap(os, spans) {
			oc.errs = append(oc.errs,
				time.Now().Format("15:04:05.000")+": overlapping leases held concurrently")
			_ = other
		}
	}
	if oc.held == nil {
		oc.held = map[int][]interval.Segment{}
	}
	oc.held[id] = spans
}

func (oc *overlapChecker) exit(id int) {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	delete(oc.held, id)
}

// TestOverlappingLeasesNeverConcurrent is the mutual-exclusion property:
// many goroutines acquire seeded random span sets (deliberately clustered
// so conflicts are common); at no instant may two overlapping span sets
// both be held. Run with -race.
func TestOverlappingLeasesNeverConcurrent(t *testing.T) {
	ls := NewLeases()
	oc := &overlapChecker{}
	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), uint64(w)*977+13))
			for r := 0; r < rounds; r++ {
				// Clustered starts: only 64 distinct buckets, so overlap
				// probability per pair is high.
				spans := make([]interval.Segment, 1+rng.IntN(3))
				for i := range spans {
					start := interval.Point(rng.Uint64N(64) << 58)
					spans[i] = interval.Segment{Start: start, Len: 1 << 57}
				}
				l := ls.Acquire(spans...)
				oc.enter(w, spans)
				if rng.IntN(4) == 0 {
					time.Sleep(time.Microsecond)
				}
				oc.exit(w)
				ls.Release(l)
			}
		}(w)
	}
	wg.Wait()
	for _, e := range oc.errs {
		t.Error(e)
	}
	if got := ls.Held(); got != 0 {
		t.Fatalf("%d leases leaked", got)
	}
}

// TestTryAcquireRefusesOverlap pins the non-blocking admission the batch
// executor uses: an overlapping TryAcquire fails without blocking, a
// disjoint one succeeds, and release makes the arc available again.
func TestTryAcquireRefusesOverlap(t *testing.T) {
	ls := NewLeases()
	a, ok := ls.TryAcquire(interval.Segment{Start: 100, Len: 100})
	if !ok {
		t.Fatal("first acquire refused")
	}
	if _, ok := ls.TryAcquire(interval.Segment{Start: 150, Len: 10}); ok {
		t.Fatal("overlapping TryAcquire admitted")
	}
	if _, ok := ls.TryAcquire(interval.Segment{Start: 0, Len: 50}, interval.Segment{Start: 199, Len: 10}); ok {
		t.Fatal("multi-span TryAcquire with one overlapping arc admitted")
	}
	b, ok := ls.TryAcquire(interval.Segment{Start: 200, Len: 100})
	if !ok {
		t.Fatal("disjoint TryAcquire refused")
	}
	ls.Release(a)
	c, ok := ls.TryAcquire(interval.Segment{Start: 150, Len: 10})
	if !ok {
		t.Fatal("arc still held after release")
	}
	ls.Release(b)
	ls.Release(c)
	ls.Release(c) // double release is a no-op
	if ls.Held() != 0 {
		t.Fatalf("%d leases leaked", ls.Held())
	}
}

// TestQueuedAcquireObservesRelease: a blocked Acquire returns only after
// the conflicting lease is released, and conflicting waiters are admitted
// in arrival order (the queued event observes the state its predecessor
// committed — the ordering LeaseSpan-disjoint batches rely on).
func TestQueuedAcquireObservesRelease(t *testing.T) {
	ls := NewLeases()
	arc := interval.Segment{Start: 1000, Len: 1000}
	first := ls.Acquire(arc)

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Stagger arrivals so ticket order is deterministic.
			time.Sleep(time.Duration(i) * 20 * time.Millisecond)
			l := ls.Acquire(arc)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			ls.Release(l)
		}(i)
	}
	close(start)
	time.Sleep(120 * time.Millisecond) // all three are queued behind `first`
	ls.Release(first)
	wg.Wait()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("conflicting waiters admitted out of arrival order: %v", order)
	}
}

// TestFullCircleLeaseSerializesEverything: a full-circle span conflicts
// with any other span (the tiny-ring / wrapped-arc fallback of LeaseSpan
// must serialize the whole batch).
func TestFullCircleLeaseSerializesEverything(t *testing.T) {
	ls := NewLeases()
	full, ok := ls.TryAcquire(interval.FullCircle)
	if !ok {
		t.Fatal("full-circle acquire refused")
	}
	if _, ok := ls.TryAcquire(interval.Segment{Start: 5, Len: 1}); ok {
		t.Fatal("span admitted alongside a full-circle lease")
	}
	ls.Release(full)
}

// TestLeaseSpanCoversChangedRegion: the span set always contains the
// changed region, its preimage arc, and arcs covering its images — and
// two LeaseSpans over well-separated regions of a large smooth ring are
// disjoint (the parallelism exists at all).
func TestLeaseSpanCoversChangedRegion(t *testing.T) {
	r := EquallySpaced(4096)
	seg := r.Segment(100)
	spans := r.LeaseSpan(seg, 2)
	containsPoint := func(p interval.Point) bool {
		for _, s := range spans {
			if s.Contains(p) {
				return true
			}
		}
		return false
	}
	for _, p := range []interval.Point{seg.Start, seg.Mid(), seg.End() - 1, seg.End(),
		seg.BackImage().Start, seg.BackImage().Mid(),
		seg.Half().Start, seg.Half().Mid(), seg.HalfPlus().Start, seg.HalfPlus().Mid()} {
		if !containsPoint(p) {
			t.Errorf("LeaseSpan misses point %d", uint64(p))
		}
	}
	// Disjointness across the ring: segment 100's neighbourhood and
	// segment 2100's neighbourhood must not conflict at n=4096.
	far := r.LeaseSpan(r.Segment(2100), 2)
	if SpansOverlap(spans, far) {
		t.Fatal("well-separated lease spans overlap; no parallelism possible")
	}
}
