// Package partition maintains the dynamic decomposition of the unit
// interval into cells (segments), one per server — the "act discretely"
// half of the continuous-discrete approach (§1.2 of Naor & Wieder) — along
// with the ID-selection (load balancing) algorithms of §4.
//
// The central object is the Ring: the sorted multiset-free set of server
// points x_0 < x_1 < ... < x_{n-1} dividing I into n segments
// s(x_i) = [x_i, x_{i+1}) with the last segment wrapping around. The
// quality of the decomposition is its smoothness ρ = max|s_i| / min|s_j|
// (Definition 1); every theorem in the paper is parameterized by ρ.
//
// Two addressing schemes coexist. The sorted index of a server is its
// position in the decomposition: cheap to enumerate, meaningful only until
// the next churn event (indices shift when any server joins or leaves).
// The Handle is stable: assigned at insertion, never reused, valid until
// that server leaves. All per-server state elsewhere in the system (graph
// adjacency, load counters, caches, item stores) is keyed by Handle, so a
// churn event never renumbers anything; indices are resolved from handles
// only at the moment a ring-order query is needed.
//
// Insert and RemoveAt cost O(log n) amortized: points live in a chunked
// sorted list (olist.go), not a flat slice, so no O(n) memmove is paid.
package partition

import (
	"fmt"
	"sort"
	"sync/atomic"

	"condisc/internal/interval"
	"condisc/internal/journal"
)

// Handle is a stable server identifier, assigned at insertion and never
// reused. Unlike the sorted index of a server (which shifts whenever any
// other server joins or leaves), a Handle keeps naming the same server
// across arbitrary churn, so callers can hold on to it between operations.
type Handle uint64

// Ring is a dynamic decomposition of I into segments. The zero value is an
// empty ring ready for use.
//
// Mutation (Insert/Remove*) is single-writer: the owner serializes it
// externally (churn admission). Concurrent readers do not touch the Ring
// directly — they call Snapshot() and read the immutable epoch-stamped
// view published by the last Publish() (see snapshot.go).
type Ring struct {
	ol    olist
	byH   map[Handle]interval.Point
	nextH Handle

	// epoch counts Publish calls; snap holds the latest published
	// snapshot. Both are written only by the single mutating owner;
	// snap is read concurrently by any number of readers.
	epoch uint64
	snap  atomic.Pointer[Snapshot]

	// jrn, when attached, receives one flight-recorder record per
	// Publish — the sanctioned epoch-visibility point. A nil journal
	// records nothing; the journal is a pure observer either way.
	jrn *journal.Journal
}

// New returns an empty ring.
func New() *Ring { return &Ring{} }

// SetJournal attaches a flight recorder (owner-side, like mutation; set
// it before concurrent publishing starts). Nil detaches.
func (r *Ring) SetJournal(j *journal.Journal) { r.jrn = j }

// FromPoints builds a ring from the given points (duplicates are dropped).
// Handles are assigned in sorted point order.
func FromPoints(pts []interval.Point) *Ring {
	sorted := append([]interval.Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	r := New()
	for _, p := range sorted {
		r.Insert(p)
	}
	return r
}

// N returns the number of servers (segments).
func (r *Ring) N() int { return r.ol.size() }

// Point returns the i-th server point in sorted order (O(log n)).
func (r *Ring) Point(i int) interval.Point { return r.ol.pointAt(i) }

// Points materializes the sorted point set as a fresh slice (O(n)).
func (r *Ring) Points() []interval.Point {
	out := make([]interval.Point, 0, r.ol.size())
	r.ol.scan(func(_ int, p interval.Point, _ Handle) {
		out = append(out, p)
	})
	return out
}

// Clone returns a deep copy of the ring, handles included.
func (r *Ring) Clone() *Ring {
	c := &Ring{
		ol:    r.ol.clone(),
		nextH: r.nextH,
	}
	if r.byH != nil {
		c.byH = make(map[Handle]interval.Point, len(r.byH))
		for h, p := range r.byH {
			c.byH[h] = p
		}
	}
	return c
}

// search returns the index of the first point > p (possibly N()).
func (r *Ring) search(p interval.Point) int {
	return r.ol.searchGT(p)
}

// Insert adds a new server point, implementing the segment split of
// Algorithm Join step 3: the segment covering p is divided so that the new
// server owns [p, oldEnd). It reports the new index and whether the point
// was inserted (false if already present). Only the predecessor's segment
// changed shape; the new server's handle is HandleAt of the returned
// index. Cost: O(log n) amortized.
func (r *Ring) Insert(p interval.Point) (int, bool) {
	h := r.nextH + 1
	i, ok := r.ol.insert(p, h)
	if !ok {
		return i, false
	}
	r.nextH = h
	if r.byH == nil {
		r.byH = make(map[Handle]interval.Point)
	}
	r.byH[h] = p
	return i, true
}

// RemoveAt deletes the i-th server; its segment is absorbed by the ring
// predecessor (the simple Leave of §2.1). The predecessor is the only
// server whose segment changed shape. Cost: O(log n) amortized.
func (r *Ring) RemoveAt(i int) {
	delete(r.byH, r.ol.handleAt(i))
	r.ol.removeAt(i)
}

// HandleAt returns the stable handle of the server currently at index i
// (O(log n)).
func (r *Ring) HandleAt(i int) Handle { return r.ol.handleAt(i) }

// IndexOfHandle returns the current sorted index of the server named by h,
// or false if no such server exists (never joined, or already left).
func (r *Ring) IndexOfHandle(h Handle) (int, bool) {
	p, ok := r.byH[h]
	if !ok {
		return 0, false
	}
	return r.ol.searchGT(p) - 1, true // p is present, so rank(p) = searchGT(p)-1
}

// PointOfHandle returns the point of the server named by h (O(1)).
func (r *Ring) PointOfHandle(h Handle) (interval.Point, bool) {
	p, ok := r.byH[h]
	return p, ok
}

// RemoveHandle deletes the server named by h, reporting the index it
// occupied. It is the churn-safe form of RemoveAt: the handle cannot be
// invalidated by unrelated joins or leaves.
func (r *Ring) RemoveHandle(h Handle) (int, bool) {
	i, ok := r.IndexOfHandle(h)
	if !ok {
		return 0, false
	}
	r.RemoveAt(i)
	return i, true
}

// Remove deletes the server with the given point, reporting whether it was
// present.
func (r *Ring) Remove(p interval.Point) bool {
	i := r.search(p)
	if i == 0 {
		return false
	}
	if q, _ := r.ol.at(i - 1); q != p {
		return false
	}
	r.RemoveAt(i - 1)
	return true
}

// checkHandles is the bookkeeping sanity check used by tests: the chunked
// list, the handle map, and the rank queries all agree.
func (r *Ring) checkHandles() bool {
	if len(r.byH) != r.ol.size() {
		return false
	}
	ok := true
	r.ol.scan(func(i int, p interval.Point, h Handle) {
		if r.byH[h] != p {
			ok = false
		}
		if idx, found := r.IndexOfHandle(h); !found || idx != i {
			ok = false
		}
	})
	return ok
}

// Cover returns the index i of the server covering p, i.e. p ∈ s(x_i).
// The ring must be non-empty.
func (r *Ring) Cover(p interval.Point) int {
	i := r.search(p)
	if i == 0 {
		return r.N() - 1 // p precedes all points: wrapping segment
	}
	return i - 1
}

// CoverHandle returns the stable handle of the server covering p.
func (r *Ring) CoverHandle(p interval.Point) Handle {
	return r.HandleAt(r.Cover(p))
}

// CoverSegment returns the index of the server covering p together with
// its segment, in a single ordered-list descent — the probe primitive of
// the §4 ID-selection algorithms, which sample Θ(log n) segments per join.
func (r *Ring) CoverSegment(p interval.Point) (int, interval.Segment) {
	if r.N() == 1 {
		return 0, interval.FullCircle
	}
	i, x, next := r.ol.coverSeg(p)
	return i, interval.Segment{Start: x, Len: uint64(next - x)}
}

// SegmentOf returns the segment of the server covering p without
// computing its rank — the cheapest probe when the caller only needs the
// segment shape.
func (r *Ring) SegmentOf(p interval.Point) interval.Segment {
	if r.N() == 1 {
		return interval.FullCircle
	}
	x, next := r.ol.coverSegOnly(p)
	return interval.Segment{Start: x, Len: uint64(next - x)}
}

// Successor returns the index after i on the ring.
func (r *Ring) Successor(i int) int {
	if i == r.N()-1 {
		return 0
	}
	return i + 1
}

// Predecessor returns the index before i on the ring.
func (r *Ring) Predecessor(i int) int {
	if i == 0 {
		return r.N() - 1
	}
	return i - 1
}

// Segment returns s(x_i) = [x_i, x_{i+1}).
func (r *Ring) Segment(i int) interval.Segment {
	if r.N() == 1 {
		return interval.FullCircle
	}
	p := r.Point(i)
	next := r.Point(r.Successor(i))
	return interval.Segment{Start: p, Len: uint64(next - p)}
}

// Segments returns all segments in index order (O(n)).
func (r *Ring) Segments() []interval.Segment {
	n := r.N()
	out := make([]interval.Segment, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		out[0] = interval.FullCircle
		return out
	}
	var first, prev interval.Point
	r.ol.scan(func(i int, p interval.Point, _ Handle) {
		if i == 0 {
			first = p
		} else {
			out[i-1] = interval.Segment{Start: prev, Len: uint64(p - prev)}
		}
		prev = p
	})
	out[n-1] = interval.Segment{Start: prev, Len: uint64(first - prev)}
	return out
}

// SegmentLens returns min and max segment lengths (fixed-point scale).
func (r *Ring) SegmentLens() (min, max uint64) {
	n := r.N()
	if n == 0 {
		return 0, 0
	}
	if n == 1 {
		return ^uint64(0), ^uint64(0)
	}
	min = ^uint64(0)
	for _, s := range r.Segments() {
		if s.Len < min {
			min = s.Len
		}
		if s.Len > max {
			max = s.Len
		}
	}
	return min, max
}

// Smoothness returns ρ(x⃗) = max_i |s(x_i)| / min_j |s(x_j)| (Definition 1).
func (r *Ring) Smoothness() float64 {
	min, max := r.SegmentLens()
	if min == 0 {
		return 0
	}
	return float64(max) / float64(min)
}

// CoversOfArc returns the indices of all servers whose segments intersect
// the arc (in ring order starting at the server covering arc.Start). This
// enumerates the discrete endpoints of a continuous edge image and is the
// primitive behind edge derivation (§2.1: "two cells are connected if they
// contain adjacent points in the continuous graph").
func (r *Ring) CoversOfArc(arc interval.Segment) []int {
	n := r.N()
	if n == 0 {
		return nil
	}
	if arc.Len == 0 { // full circle
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := []int{r.Cover(arc.Start)}
	i := r.Successor(out[0])
	for len(out) < n {
		// x_i is the start of the next segment; it intersects the arc iff it
		// lies strictly inside [arc.Start, arc.End).
		p := r.Point(i)
		if uint64(p-arc.Start) >= arc.Len || p == arc.Start {
			break
		}
		out = append(out, i)
		i = r.Successor(i)
	}
	return out
}

// CoverHandlesOfArc is the handle-native CoversOfArc: the stable handles
// of all servers whose segments intersect the arc, in ring order. It walks
// the ordered list chunk-wise — O(log n + covers), no per-step rank
// computation — and is the primitive the incremental graph engine derives
// edges with.
func (r *Ring) CoverHandlesOfArc(arc interval.Segment) []Handle {
	n := r.N()
	if n == 0 {
		return nil
	}
	var out []Handle
	if arc.Len == 0 { // full circle
		out = make([]Handle, 0, n)
		r.ol.scan(func(_ int, _ interval.Point, h Handle) {
			out = append(out, h)
		})
		return out
	}
	first := true
	r.ol.scanRing(arc.Start, func(p interval.Point, h Handle) bool {
		if !first && (uint64(p-arc.Start) >= arc.Len || p == arc.Start) {
			return false
		}
		first = false
		out = append(out, h)
		return true
	})
	return out
}

func (r *Ring) String() string {
	return fmt.Sprintf("Ring(n=%d, ρ=%.2f)", r.N(), r.Smoothness())
}
