// Package partition maintains the dynamic decomposition of the unit
// interval into cells (segments), one per server — the "act discretely"
// half of the continuous-discrete approach (§1.2 of Naor & Wieder) — along
// with the ID-selection (load balancing) algorithms of §4.
//
// The central object is the Ring: the sorted multiset-free set of server
// points x_0 < x_1 < ... < x_{n-1} dividing I into n segments
// s(x_i) = [x_i, x_{i+1}) with the last segment wrapping around. The
// quality of the decomposition is its smoothness ρ = max|s_i| / min|s_j|
// (Definition 1); every theorem in the paper is parameterized by ρ.
package partition

import (
	"fmt"
	"slices"
	"sort"

	"condisc/internal/interval"
)

// Handle is a stable server identifier, assigned at insertion and never
// reused. Unlike the sorted index of a server (which shifts whenever any
// other server joins or leaves), a Handle keeps naming the same server
// across arbitrary churn, so callers can hold on to it between operations.
type Handle uint64

// Ring is a dynamic decomposition of I into segments. The zero value is an
// empty ring ready for use.
type Ring struct {
	pts   []interval.Point // sorted ascending, all distinct
	hs    []Handle         // hs[i] is the stable handle of pts[i]
	byH   map[Handle]interval.Point
	nextH Handle
}

// New returns an empty ring.
func New() *Ring { return &Ring{} }

// FromPoints builds a ring from the given points (duplicates are dropped).
// Handles are assigned in sorted point order.
func FromPoints(pts []interval.Point) *Ring {
	sorted := append([]interval.Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	r := New()
	for _, p := range sorted {
		r.Insert(p)
	}
	return r
}

// N returns the number of servers (segments).
func (r *Ring) N() int { return len(r.pts) }

// Point returns the i-th server point in sorted order.
func (r *Ring) Point(i int) interval.Point { return r.pts[i] }

// Points returns the underlying sorted point slice (read-only view).
func (r *Ring) Points() []interval.Point { return r.pts }

// Clone returns a deep copy of the ring, handles included.
func (r *Ring) Clone() *Ring {
	c := &Ring{
		pts:   append([]interval.Point(nil), r.pts...),
		hs:    append([]Handle(nil), r.hs...),
		nextH: r.nextH,
	}
	if r.byH != nil {
		c.byH = make(map[Handle]interval.Point, len(r.byH))
		for h, p := range r.byH {
			c.byH[h] = p
		}
	}
	return c
}

// search returns the index of the first point > p (possibly len(pts)).
func (r *Ring) search(p interval.Point) int {
	return sort.Search(len(r.pts), func(i int) bool { return r.pts[i] > p })
}

// Insert adds a new server point, implementing the segment split of
// Algorithm Join step 3: the segment covering p is divided so that the new
// server owns [p, oldEnd). It reports the new index and whether the point
// was inserted (false if already present). The affected index range is
// local: only the predecessor's segment changed shape, and only indices
// >= the returned one shifted up by one.
func (r *Ring) Insert(p interval.Point) (int, bool) {
	i := r.search(p)
	if i > 0 && r.pts[i-1] == p {
		return i - 1, false
	}
	r.nextH++
	h := r.nextH
	if r.byH == nil {
		r.byH = make(map[Handle]interval.Point)
	}
	r.byH[h] = p
	r.pts = slices.Insert(r.pts, i, p)
	r.hs = slices.Insert(r.hs, i, h)
	return i, true
}

// RemoveAt deletes the i-th server; its segment is absorbed by the ring
// predecessor (the simple Leave of §2.1). Only indices > i shift (down by
// one); the predecessor is the only server whose segment changed shape.
func (r *Ring) RemoveAt(i int) {
	delete(r.byH, r.hs[i])
	r.pts = slices.Delete(r.pts, i, i+1)
	r.hs = slices.Delete(r.hs, i, i+1)
}

// HandleAt returns the stable handle of the server currently at index i.
func (r *Ring) HandleAt(i int) Handle { return r.hs[i] }

// IndexOfHandle returns the current sorted index of the server named by h,
// or false if no such server exists (never joined, or already left).
func (r *Ring) IndexOfHandle(h Handle) (int, bool) {
	p, ok := r.byH[h]
	if !ok {
		return 0, false
	}
	i := r.search(p)
	return i - 1, true // p is present, so pts[i-1] == p
}

// PointOfHandle returns the point of the server named by h.
func (r *Ring) PointOfHandle(h Handle) (interval.Point, bool) {
	p, ok := r.byH[h]
	return p, ok
}

// RemoveHandle deletes the server named by h, reporting the index it
// occupied. It is the churn-safe form of RemoveAt: the handle cannot be
// invalidated by unrelated joins or leaves.
func (r *Ring) RemoveHandle(h Handle) (int, bool) {
	i, ok := r.IndexOfHandle(h)
	if !ok {
		return 0, false
	}
	r.RemoveAt(i)
	return i, true
}

// Remove deletes the server with the given point, reporting whether it was
// present.
func (r *Ring) Remove(p interval.Point) bool {
	i := r.search(p)
	if i == 0 || r.pts[i-1] != p {
		return false
	}
	r.RemoveAt(i - 1)
	return true
}

// Version-free sanity check used by tests: handles and points agree.
func (r *Ring) checkHandles() bool {
	if len(r.hs) != len(r.pts) || len(r.byH) != len(r.pts) {
		return false
	}
	for i, h := range r.hs {
		if r.byH[h] != r.pts[i] {
			return false
		}
	}
	return true
}

// Cover returns the index i of the server covering p, i.e. p ∈ s(x_i).
// The ring must be non-empty.
func (r *Ring) Cover(p interval.Point) int {
	i := r.search(p)
	if i == 0 {
		return len(r.pts) - 1 // p precedes all points: wrapping segment
	}
	return i - 1
}

// Successor returns the index after i on the ring.
func (r *Ring) Successor(i int) int {
	if i == len(r.pts)-1 {
		return 0
	}
	return i + 1
}

// Predecessor returns the index before i on the ring.
func (r *Ring) Predecessor(i int) int {
	if i == 0 {
		return len(r.pts) - 1
	}
	return i - 1
}

// Segment returns s(x_i) = [x_i, x_{i+1}).
func (r *Ring) Segment(i int) interval.Segment {
	if len(r.pts) == 1 {
		return interval.FullCircle
	}
	next := r.pts[r.Successor(i)]
	return interval.Segment{Start: r.pts[i], Len: uint64(next - r.pts[i])}
}

// Segments returns all segments in index order.
func (r *Ring) Segments() []interval.Segment {
	out := make([]interval.Segment, len(r.pts))
	for i := range r.pts {
		out[i] = r.Segment(i)
	}
	return out
}

// SegmentLens returns min and max segment lengths (fixed-point scale).
func (r *Ring) SegmentLens() (min, max uint64) {
	if len(r.pts) == 0 {
		return 0, 0
	}
	if len(r.pts) == 1 {
		return ^uint64(0), ^uint64(0)
	}
	min = ^uint64(0)
	for i := range r.pts {
		l := r.Segment(i).Len
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	return min, max
}

// Smoothness returns ρ(x⃗) = max_i |s(x_i)| / min_j |s(x_j)| (Definition 1).
func (r *Ring) Smoothness() float64 {
	min, max := r.SegmentLens()
	if min == 0 {
		return 0
	}
	return float64(max) / float64(min)
}

// CoversOfArc returns the indices of all servers whose segments intersect
// the arc (in ring order starting at the server covering arc.Start). This
// enumerates the discrete endpoints of a continuous edge image and is the
// primitive behind edge derivation (§2.1: "two cells are connected if they
// contain adjacent points in the continuous graph").
func (r *Ring) CoversOfArc(arc interval.Segment) []int {
	n := len(r.pts)
	if n == 0 {
		return nil
	}
	if arc.Len == 0 { // full circle
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := []int{r.Cover(arc.Start)}
	i := r.Successor(out[0])
	for len(out) < n {
		// x_i is the start of the next segment; it intersects the arc iff it
		// lies strictly inside [arc.Start, arc.End).
		if uint64(r.pts[i]-arc.Start) >= arc.Len || r.pts[i] == arc.Start {
			break
		}
		out = append(out, i)
		i = r.Successor(i)
	}
	return out
}

func (r *Ring) String() string {
	return fmt.Sprintf("Ring(n=%d, ρ=%.2f)", r.N(), r.Smoothness())
}
