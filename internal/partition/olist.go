package partition

import (
	"sort"

	"condisc/internal/interval"
)

// This file implements the ordered container behind Ring: a chunked sorted
// list of (point, handle) pairs with a Fenwick tree over chunk sizes. It
// replaces the flat sorted slices of the dense-index era, whose every
// Insert/Remove paid an O(n) memmove — the last O(n) term in the churn
// path once the graph and counter layers are handle-keyed.
//
// Costs (m = number of chunks ≈ n/chunkTarget):
//
//	searchGT / upperBound   O(log n)            binary search over chunk maxima + in-chunk
//	at (select by rank)     O(log m)            Fenwick descent + in-chunk offset
//	insert / removeAt       O(log n + chunkMax) in-chunk memmove of ≤ chunkMax pairs
//	scan                    O(n)                sequential chunk walk
//
// Splits and merges rebuild the chunk directory (O(m)) but happen at most
// once per Θ(chunkTarget) mutations, so their amortized cost is O(1).
const (
	chunkTarget = 256             // split threshold is 2×, merge threshold is 1/4×
	chunkMax    = 2 * chunkTarget // a chunk never exceeds this
	chunkMin    = chunkTarget / 4 // below this a chunk merges into a neighbour
)

// chunk is one run of the sorted sequence, kept in parallel slices.
//
// shared marks a chunk that is referenced by a published Snapshot: its
// pts/hs slice headers and backing arrays must never be mutated in place.
// Mutators call own() first, which clones a shared chunk and swaps the
// clone into the live directory — the snapshot keeps the original.
// (Setting shared=true while a snapshot reader walks pts/hs is not a
// race: shared is a distinct word that readers never touch.)
type chunk struct {
	pts    []interval.Point
	hs     []Handle
	shared bool
}

// olist is the ordered (point, handle) sequence.
type olist struct {
	chunks []*chunk
	maxs   []interval.Point // maxs[c] = last point of chunks[c]
	fen    []int            // Fenwick tree over chunk sizes (1-based)
	n      int
}

// --- Fenwick tree over chunk sizes ---

func (l *olist) fenRebuild() {
	l.fen = make([]int, len(l.chunks)+1)
	for i, c := range l.chunks {
		l.fenAdd(i, len(c.pts))
	}
}

func (l *olist) fenAdd(i, d int) {
	for i++; i < len(l.fen); i += i & -i {
		l.fen[i] += d
	}
}

// fenPrefix returns the total size of chunks [0, i).
func (l *olist) fenPrefix(i int) int {
	s := 0
	for ; i > 0; i -= i & -i {
		s += l.fen[i]
	}
	return s
}

// fenFind locates the chunk containing rank i, returning the chunk index
// and the offset of i within it.
func (l *olist) fenFind(i int) (ci, off int) {
	pos := 0
	rem := i
	mask := 1
	for mask < len(l.fen) {
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		next := pos + mask
		if next < len(l.fen) && l.fen[next] <= rem {
			rem -= l.fen[next]
			pos = next
		}
	}
	return pos, rem
}

// --- queries ---

// len returns the number of stored pairs.
func (l *olist) size() int { return l.n }

// chunkFor returns the index of the chunk whose range covers p for search
// purposes: the first chunk with max >= p (or the last chunk).
func (l *olist) chunkFor(p interval.Point) int {
	c := sort.Search(len(l.maxs), func(i int) bool { return l.maxs[i] >= p })
	if c == len(l.maxs) {
		c = len(l.maxs) - 1
	}
	return c
}

// searchGT returns the rank of the first point > p (possibly n), matching
// the sort.Search contract the old flat slice offered.
func (l *olist) searchGT(p interval.Point) int {
	if l.n == 0 {
		return 0
	}
	c := sort.Search(len(l.maxs), func(i int) bool { return l.maxs[i] > p })
	if c == len(l.maxs) {
		return l.n
	}
	ck := l.chunks[c]
	in := sort.Search(len(ck.pts), func(i int) bool { return ck.pts[i] > p })
	return l.fenPrefix(c) + in
}

// coverSeg returns the rank of the last point <= p (wrapping to the
// global last point when p precedes every point), that point, and its
// ring-successor point. The list must be non-empty.
func (l *olist) coverSeg(p interval.Point) (int, interval.Point, interval.Point) {
	c, j := l.coverPos(p)
	cov, succ := l.pairAndSucc(c, j)
	return l.fenPrefix(c) + j, cov, succ
}

// coverPos locates the chunk and offset of the last point <= p, wrapping
// to the global last element when p precedes every point.
func (l *olist) coverPos(p interval.Point) (int, int) {
	c := sort.Search(len(l.maxs), func(i int) bool { return l.maxs[i] > p })
	if c == len(l.maxs) {
		return len(l.chunks) - 1, len(l.chunks[len(l.chunks)-1].pts) - 1
	}
	ck := l.chunks[c]
	j := sort.Search(len(ck.pts), func(i int) bool { return ck.pts[i] > p })
	switch {
	case j > 0:
		return c, j - 1
	case c > 0:
		return c - 1, len(l.chunks[c-1].pts) - 1
	default:
		return len(l.chunks) - 1, len(l.chunks[len(l.chunks)-1].pts) - 1
	}
}

// pairAndSucc returns the point at chunk position (c, j) and its
// ring-successor point (wrapping).
func (l *olist) pairAndSucc(c, j int) (interval.Point, interval.Point) {
	ck := l.chunks[c]
	if j+1 < len(ck.pts) {
		return ck.pts[j], ck.pts[j+1]
	}
	if c+1 < len(l.chunks) {
		return ck.pts[j], l.chunks[c+1].pts[0]
	}
	return ck.pts[j], l.chunks[0].pts[0]
}

// coverSegOnly is coverSeg without the rank computation (no Fenwick
// descent): just the covering point and its ring successor.
func (l *olist) coverSegOnly(p interval.Point) (interval.Point, interval.Point) {
	c, j := l.coverPos(p)
	return l.pairAndSucc(c, j)
}

// scanRing calls fn for consecutive ring positions starting at the cover
// of p (the last point <= p, wrapping), advancing chunk-wise — O(1) per
// step, no Fenwick descent — until fn returns false or the whole ring has
// been visited.
func (l *olist) scanRing(p interval.Point, fn func(pt interval.Point, h Handle) bool) {
	c, j := l.coverPos(p)
	for visited := 0; visited < l.n; visited++ {
		ck := l.chunks[c]
		if !fn(ck.pts[j], ck.hs[j]) {
			return
		}
		j++
		if j == len(ck.pts) {
			j = 0
			c++
			if c == len(l.chunks) {
				c = 0
			}
		}
	}
}

// at returns the pair with rank i.
func (l *olist) at(i int) (interval.Point, Handle) {
	ci, off := l.fenFind(i)
	ck := l.chunks[ci]
	return ck.pts[off], ck.hs[off]
}

// pointAt returns just the point with rank i.
func (l *olist) pointAt(i int) interval.Point {
	ci, off := l.fenFind(i)
	return l.chunks[ci].pts[off]
}

// handleAt returns just the handle with rank i.
func (l *olist) handleAt(i int) Handle {
	ci, off := l.fenFind(i)
	return l.chunks[ci].hs[off]
}

// scan calls fn for every pair in rank order.
func (l *olist) scan(fn func(i int, p interval.Point, h Handle)) {
	i := 0
	for _, ck := range l.chunks {
		for j, p := range ck.pts {
			fn(i, p, ck.hs[j])
			i++
		}
	}
}

// --- mutations ---

// own returns chunk c, cloning it first if a published snapshot still
// references it (copy-on-write). Every mutator must go through own before
// touching a chunk's slices; the directory entry is replaced so snapshots
// keep reading the original.
func (l *olist) own(c int) *chunk {
	ck := l.chunks[c]
	if !ck.shared {
		return ck
	}
	cp := &chunk{
		pts: append([]interval.Point(nil), ck.pts...),
		hs:  append([]Handle(nil), ck.hs...),
	}
	l.chunks[c] = cp
	return cp
}

// publishCopy returns a frozen copy of the list for a Snapshot: every
// live chunk is marked shared (future mutations clone it), and the
// directory (chunk pointers, maxima, Fenwick tree) is freshly copied so
// the live list's in-place directory edits never alias the snapshot.
// Cost: O(m) for m chunks, independent of n.
func (l *olist) publishCopy() olist {
	for _, ck := range l.chunks {
		ck.shared = true
	}
	return olist{
		chunks: append([]*chunk(nil), l.chunks...),
		maxs:   append([]interval.Point(nil), l.maxs...),
		fen:    append([]int(nil), l.fen...),
		n:      l.n,
	}
}

// insert adds the pair (p, h), reporting the rank it received and whether
// it was inserted (false when p is already present).
func (l *olist) insert(p interval.Point, h Handle) (int, bool) {
	if len(l.chunks) == 0 {
		l.chunks = []*chunk{{pts: []interval.Point{p}, hs: []Handle{h}}}
		l.maxs = []interval.Point{p}
		l.fenRebuild()
		l.n = 1
		return 0, true
	}
	c := l.chunkFor(p)
	ck := l.chunks[c]
	in := sort.Search(len(ck.pts), func(i int) bool { return ck.pts[i] >= p })
	if in < len(ck.pts) && ck.pts[in] == p {
		return l.fenPrefix(c) + in, false
	}
	ck = l.own(c)
	ck.pts = insertAt(ck.pts, in, p)
	ck.hs = insertAt(ck.hs, in, h)
	l.fenAdd(c, 1)
	l.n++
	if in == len(ck.pts)-1 {
		l.maxs[c] = p
	}
	rank := l.fenPrefix(c) + in
	if len(ck.pts) >= chunkMax {
		l.split(c)
	}
	return rank, true
}

// removeAt deletes the pair with rank i.
func (l *olist) removeAt(i int) {
	c, off := l.fenFind(i)
	ck := l.own(c)
	ck.pts = deleteAt(ck.pts, off)
	ck.hs = deleteAt(ck.hs, off)
	l.fenAdd(c, -1)
	l.n--
	if len(ck.pts) == 0 {
		l.dropChunk(c)
		return
	}
	if off == len(ck.pts) {
		l.maxs[c] = ck.pts[len(ck.pts)-1]
	}
	if len(ck.pts) < chunkMin && len(l.chunks) > 1 {
		l.mergeAround(c)
	}
}

// split divides chunk c into two halves.
func (l *olist) split(c int) {
	ck := l.own(c)
	half := len(ck.pts) / 2
	right := &chunk{
		pts: append([]interval.Point(nil), ck.pts[half:]...),
		hs:  append([]Handle(nil), ck.hs[half:]...),
	}
	ck.pts = ck.pts[:half:half]
	ck.hs = ck.hs[:half:half]
	l.chunks = insertAt(l.chunks, c+1, right)
	l.maxs = insertAt(l.maxs, c+1, l.maxs[c])
	l.maxs[c] = ck.pts[half-1]
	l.fenRebuild()
}

// dropChunk removes the (empty) chunk c from the directory.
func (l *olist) dropChunk(c int) {
	l.chunks = deleteAt(l.chunks, c)
	l.maxs = deleteAt(l.maxs, c)
	l.fenRebuild()
}

// mergeAround folds the undersized chunk c into a neighbour, re-splitting
// if the result is oversized.
func (l *olist) mergeAround(c int) {
	dst := c - 1
	if dst < 0 {
		dst = c + 1
	}
	a, b := dst, c
	if a > b {
		a, b = b, a
	}
	la, lb := l.own(a), l.chunks[b]
	la.pts = append(la.pts, lb.pts...)
	la.hs = append(la.hs, lb.hs...)
	l.maxs[a] = la.pts[len(la.pts)-1]
	l.chunks = deleteAt(l.chunks, b)
	l.maxs = deleteAt(l.maxs, b)
	l.fenRebuild()
	if len(la.pts) >= chunkMax {
		l.split(a)
	}
}

// clone deep-copies the list.
func (l *olist) clone() olist {
	c := olist{
		chunks: make([]*chunk, len(l.chunks)),
		maxs:   append([]interval.Point(nil), l.maxs...),
		fen:    append([]int(nil), l.fen...),
		n:      l.n,
	}
	for i, ck := range l.chunks {
		c.chunks[i] = &chunk{
			pts: append([]interval.Point(nil), ck.pts...),
			hs:  append([]Handle(nil), ck.hs...),
		}
	}
	return c
}

func insertAt[T any](s []T, i int, v T) []T {
	s = append(s, v)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func deleteAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}
