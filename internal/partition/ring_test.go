package partition

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"condisc/internal/interval"
)

func pt(f float64) interval.Point { return interval.FromFloat(f) }

func TestInsertKeepsSorted(t *testing.T) {
	r := New()
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 1000; i++ {
		r.Insert(interval.Point(rng.Uint64()))
	}
	for i := 1; i < r.N(); i++ {
		if r.Point(i-1) >= r.Point(i) {
			t.Fatalf("points not sorted at %d", i)
		}
	}
}

func TestInsertDuplicate(t *testing.T) {
	r := New()
	if _, ok := r.Insert(pt(0.5)); !ok {
		t.Fatal("first insert failed")
	}
	if _, ok := r.Insert(pt(0.5)); ok {
		t.Fatal("duplicate insert should report false")
	}
	if r.N() != 1 {
		t.Fatalf("N = %d, want 1", r.N())
	}
}

func TestCoverBasic(t *testing.T) {
	r := FromPoints([]interval.Point{pt(0.25), pt(0.5), pt(0.75)})
	cases := []struct {
		p    float64
		want int
	}{
		{0.3, 0}, {0.25, 0}, {0.49, 0},
		{0.5, 1}, {0.6, 1},
		{0.75, 2}, {0.9, 2},
		{0.1, 2}, // wrapping segment [0.75, 0.25)
	}
	for _, c := range cases {
		if got := r.Cover(pt(c.p)); got != c.want {
			t.Errorf("Cover(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

// TestCoverSegmentConsistency: for any point set and query, the covering
// segment contains the query — the defining property of the decomposition.
func TestCoverSegmentConsistency(t *testing.T) {
	f := func(raw []uint64, q uint64) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]interval.Point, len(raw))
		for i, v := range raw {
			pts[i] = interval.Point(v)
		}
		r := FromPoints(pts)
		p := interval.Point(q)
		return r.Segment(r.Cover(p)).Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSegmentsTile verifies the segments tile I exactly: lengths sum to 1
// and consecutive segments abut.
func TestSegmentsTile(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	pts := make([]interval.Point, 100)
	for i := range pts {
		pts[i] = interval.Point(rng.Uint64())
	}
	r := FromPoints(pts)
	var total uint64
	for i := 0; i < r.N(); i++ {
		s := r.Segment(i)
		total += s.Len
		if s.End() != r.Point(r.Successor(i)) {
			t.Fatalf("segment %d does not abut its successor", i)
		}
	}
	if total != 0 { // sum of all segment lengths = 2^64 ≡ 0
		t.Fatalf("segment lengths sum to %d, want 2^64 (overflow to 0)", total)
	}
}

func TestRemove(t *testing.T) {
	r := FromPoints([]interval.Point{pt(0.2), pt(0.4), pt(0.8)})
	if !r.Remove(pt(0.4)) {
		t.Fatal("Remove failed")
	}
	if r.Remove(pt(0.4)) {
		t.Fatal("double Remove should fail")
	}
	// The predecessor absorbs the segment: [0.2, 0.8) now covered by 0.2.
	if got := r.Cover(pt(0.5)); r.Point(got) != pt(0.2) {
		t.Errorf("after removal, 0.5 covered by %v", r.Point(got))
	}
}

func TestSmoothnessEquallySpaced(t *testing.T) {
	r := EquallySpaced(64)
	if s := r.Smoothness(); s != 1 {
		t.Errorf("equally spaced smoothness = %v, want 1", s)
	}
	if r.N() != 64 {
		t.Errorf("N = %d", r.N())
	}
}

func TestCoversOfArc(t *testing.T) {
	r := FromPoints([]interval.Point{pt(0.0), pt(0.25), pt(0.5), pt(0.75)})
	got := r.CoversOfArc(interval.Segment{Start: pt(0.3), Len: uint64(pt(0.3))})
	// Arc [0.3, 0.6) intersects segments of 0.25 and 0.5.
	want := []int{1, 2}
	if len(got) != len(want) {
		t.Fatalf("CoversOfArc = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("CoversOfArc = %v, want %v", got, want)
		}
	}
	// Wrapping arc [0.9, 0.1).
	got = r.CoversOfArc(interval.Segment{Start: pt(0.9), Len: uint64(pt(0.2))})
	want = []int{3, 0}
	if len(got) != 2 || got[0] != 3 || got[1] != 0 {
		t.Fatalf("wrapping CoversOfArc = %v, want %v", got, want)
	}
	// Full circle.
	if got := r.CoversOfArc(interval.FullCircle); len(got) != 4 {
		t.Fatalf("full-circle arc should cover all: %v", got)
	}
}

// TestCoversOfArcExhaustive cross-checks CoversOfArc against a brute-force
// overlap scan on random rings.
func TestCoversOfArcExhaustive(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.IntN(30)
		pts := make([]interval.Point, n)
		for i := range pts {
			pts[i] = interval.Point(rng.Uint64())
		}
		r := FromPoints(pts)
		arc := interval.Segment{Start: interval.Point(rng.Uint64()), Len: rng.Uint64N(1 << 62)}
		got := map[int]bool{}
		for _, i := range r.CoversOfArc(arc) {
			got[i] = true
		}
		for i := 0; i < r.N(); i++ {
			want := r.Segment(i).Overlaps(arc)
			if got[i] != want {
				t.Fatalf("trial %d: server %d overlap=%v but CoversOfArc says %v (arc %v, seg %v)",
					trial, i, want, got[i], arc, r.Segment(i))
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := FromPoints([]interval.Point{pt(0.1), pt(0.6)})
	c := r.Clone()
	c.Insert(pt(0.3))
	if r.N() != 2 || c.N() != 3 {
		t.Error("Clone is not deep")
	}
}

func TestSingleServerSegment(t *testing.T) {
	r := FromPoints([]interval.Point{pt(0.4)})
	if r.Segment(0) != interval.FullCircle {
		t.Errorf("single server should cover the full circle, got %v", r.Segment(0))
	}
	if r.Cover(pt(0.9)) != 0 {
		t.Error("single server covers everything")
	}
}
