package partition

import (
	"math"
	"math/rand/v2"

	"condisc/internal/interval"
)

// This file implements the ID-selection algorithms of §4: how a joining
// server picks its point so that the decomposition stays smooth.

// SingleChoice implements Algorithm Single Choice: V.ID is uniform in [0,1).
// Lemma 4.1: after n insertions the longest segment is Θ(log n / n) and
// some segment is as short as Θ(1/n²) whp.
func SingleChoice(rng *rand.Rand) interval.Point {
	return interval.Point(rng.Uint64())
}

// ImprovedSingleChoice implements the Improved Single Choice Algorithm:
// sample a uniform z, look up the segment covering z, and take its middle
// point. Lemma 4.2: shortest segment Θ(1/(n log n)), longest O(log n / n).
func ImprovedSingleChoice(r *Ring, rng *rand.Rand) interval.Point {
	if r.N() == 0 {
		return interval.Point(rng.Uint64())
	}
	z := interval.Point(rng.Uint64())
	return r.SegmentOf(z).Mid()
}

// ChoiceProbes returns the number of probes Multiple Choice samples for
// a ring of n servers: t·⌈log2(n+1)⌉, at least 1. ("A multiplicative
// estimation of n is easily achievable and suffices.")
func ChoiceProbes(n, t int) int {
	probes := t * int(math.Ceil(math.Log2(float64(n+1))))
	if probes < 1 {
		probes = 1
	}
	return probes
}

// ChooseBest returns the Multiple Choice point for a set of pre-probed
// segments: the middle of the longest (first wins ties, matching
// MultipleChoice's scan order; a full-circle probe wins outright). It is
// the selection half of MultipleChoice, split out so a batch caller can
// probe many draws in parallel and still select identically.
func ChooseBest(segs []interval.Segment) interval.Point {
	best := segs[0]
	for _, seg := range segs[1:] {
		if best.Len == 0 {
			break
		}
		if seg.Len == 0 || seg.Len > best.Len {
			best = seg
		}
	}
	return best.Mid()
}

// MultipleChoice implements the Multiple Choice Algorithm: sample t·log n
// uniform points, find the longest segment among those covering them, and
// take its middle. Lemma 4.3 (t >= 2): the shortest segment stays >= 1/(4n)
// whp; Theorem 4.4: the algorithm self-corrects any initial configuration.
func MultipleChoice(r *Ring, rng *rand.Rand, t int) interval.Point {
	if r.N() == 0 {
		return interval.Point(rng.Uint64())
	}
	probes := ChoiceProbes(r.N(), t)
	var best interval.Segment
	haveBest := false
	for i := 0; i < probes; i++ {
		z := interval.Point(rng.Uint64())
		seg := r.SegmentOf(z)
		if seg.Len == 0 { // full circle: any probe wins
			return seg.Mid()
		}
		if !haveBest || seg.Len > best.Len {
			best, haveBest = seg, true
		}
	}
	return best.Mid()
}

// Chooser is a pluggable ID-selection strategy, letting experiments sweep
// the §4 algorithms uniformly.
type Chooser func(r *Ring, rng *rand.Rand) interval.Point

// SingleChooser adapts SingleChoice to the Chooser interface.
func SingleChooser(_ *Ring, rng *rand.Rand) interval.Point { return SingleChoice(rng) }

// ImprovedChooser adapts ImprovedSingleChoice.
func ImprovedChooser(r *Ring, rng *rand.Rand) interval.Point {
	return ImprovedSingleChoice(r, rng)
}

// MultipleChooser returns a Chooser running MultipleChoice with parameter t.
func MultipleChooser(t int) Chooser {
	return func(r *Ring, rng *rand.Rand) interval.Point {
		return MultipleChoice(r, rng, t)
	}
}

// Grow inserts count servers using the given chooser and returns the ring.
func Grow(r *Ring, count int, choose Chooser, rng *rand.Rand) *Ring {
	for i := 0; i < count; i++ {
		for {
			p := choose(r, rng)
			if _, ok := r.Insert(p); ok {
				break
			}
		}
	}
	return r
}

// EquallySpaced returns a ring of n perfectly smooth points i/n — the
// idealized decomposition under which the discrete DH graph is isomorphic
// to the de Bruijn graph (§2.1, "The De-Bruijn Graph").
func EquallySpaced(n int) *Ring {
	pts := make([]interval.Point, n)
	step := ^uint64(0)/uint64(n) + 1
	for i := range pts {
		pts[i] = interval.Point(uint64(i) * step)
	}
	return FromPoints(pts)
}
