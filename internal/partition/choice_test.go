package partition

import (
	"math"
	"math/rand/v2"
	"testing"

	"condisc/internal/interval"
)

// normalized segment-length statistics: returns (minLen·n, maxLen·n) where
// lengths are fractions of the circle — i.e. how far the extremes are from
// the perfectly smooth value 1.
func normalizedLens(r *Ring) (minN, maxN float64) {
	min, max := r.SegmentLens()
	n := float64(r.N())
	scale := math.Ldexp(1, -64) // 2^-64 per fixed-point ulp
	return float64(min) * scale * n, float64(max) * scale * n
}

// TestSingleChoiceStats reproduces Lemma 4.1's shape: the longest segment
// is Θ(log n / n) and the shortest is far below 1/n (order 1/n²).
func TestSingleChoiceStats(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	const n = 4096
	r := Grow(New(), n, SingleChooser, rng)
	minN, maxN := normalizedLens(r)
	logN := math.Log2(n)
	if maxN < logN/4 || maxN > 4*logN {
		t.Errorf("single choice max segment = %.2f/n, want Θ(log n)=%.1f/n", maxN, logN)
	}
	if minN > 0.1 {
		t.Errorf("single choice min segment = %.4f/n; expected far below 1/n", minN)
	}
}

// TestImprovedSingleChoiceStats reproduces Lemma 4.2: the shortest segment
// is Θ(1/(n log n)) — much better than single choice — and the longest
// stays O(log n / n).
func TestImprovedSingleChoiceStats(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	const n = 4096
	r := Grow(New(), n, ImprovedChooser, rng)
	minN, maxN := normalizedLens(r)
	logN := math.Log2(n)
	if minN < 1/(4*logN) {
		t.Errorf("improved choice min segment = %.5f/n, want Ω(1/log n) = %.5f/n",
			minN, 1/logN)
	}
	if maxN > 4*logN {
		t.Errorf("improved choice max segment = %.2f/n, want O(log n)", maxN)
	}
}

// TestMultipleChoiceStats reproduces Lemma 4.3: with t >= 2, the shortest
// segment is at least 1/(4n) whp, and empirically the smoothness is a small
// constant.
func TestMultipleChoiceStats(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	const n = 4096
	r := Grow(New(), n, MultipleChooser(2), rng)
	minN, maxN := normalizedLens(r)
	if minN < 0.25 {
		t.Errorf("multiple choice min segment = %.4f/n, want >= 1/4n (Lemma 4.3)", minN)
	}
	if maxN > 8 {
		t.Errorf("multiple choice max segment = %.2f/n; expected O(1)", maxN)
	}
	if rho := r.Smoothness(); rho > 32 {
		t.Errorf("multiple choice smoothness = %.1f; expected small constant", rho)
	}
}

// TestSelfCorrection reproduces Theorem 4.4: starting from an adversarial
// configuration (m points crammed into a tiny subinterval, leaving one huge
// segment), inserting n more points with Multiple Choice shrinks the
// largest segment to O(1/n).
func TestSelfCorrection(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	// Adversarial start: 64 points packed in [0, 2^-20).
	r := New()
	for i := 0; i < 64; i++ {
		r.Insert(interval.Point(uint64(i) << 30))
	}
	const n = 2048
	Grow(r, n, MultipleChooser(4), rng)
	_, maxN := normalizedLens(r)
	if maxN > 16 {
		t.Errorf("after self-correction max segment = %.2f/n, want O(1)", maxN)
	}
}

// TestMultipleChoiceNeverBelowQuarter checks Lemma 4.3 across several seeds
// and sizes (the whp claim).
func TestMultipleChoiceNeverBelowQuarter(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewPCG(seed, 99))
		r := Grow(New(), 1024, MultipleChooser(2), rng)
		minN, _ := normalizedLens(r)
		if minN < 0.25 {
			t.Errorf("seed %d: min segment %.4f/n < 1/4n", seed, minN)
		}
	}
}

func TestEquallySpacedIsExact(t *testing.T) {
	for _, n := range []int{2, 3, 7, 64, 100} {
		r := EquallySpaced(n)
		if r.N() != n {
			t.Fatalf("EquallySpaced(%d) has %d points", n, r.N())
		}
		min, max := r.SegmentLens()
		if max-min > 1<<34 { // ~2^-30 relative deviation allowed for non-powers
			t.Errorf("n=%d: segments differ by %d ulps", n, max-min)
		}
	}
}

func TestGrowAvoidsDuplicates(t *testing.T) {
	// A chooser that keeps proposing the same point must not loop forever:
	// Grow retries, and SingleChoice eventually proposes something new. Here
	// we use a deterministic alternating chooser to verify dedup logic.
	calls := 0
	ch := func(r *Ring, rng *rand.Rand) interval.Point {
		calls++
		return interval.Point(calls % 3) // collides often
	}
	r := Grow(New(), 2, ch, rand.New(rand.NewPCG(1, 1)))
	if r.N() != 2 {
		t.Fatalf("Grow produced %d servers, want 2", r.N())
	}
}

func TestBucketRingChurn(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 14))
	b := NewBucketRing(256, 8, rng)
	if !b.CheckInvariants() {
		t.Fatal("invariants broken at construction")
	}
	// Heavy churn: alternate joins and random leaves.
	for i := 0; i < 2000; i++ {
		if rng.IntN(2) == 0 {
			b.Join(rng)
		} else {
			b.Leave(interval.Point(rng.Uint64()))
		}
		if !b.CheckInvariants() {
			t.Fatalf("invariants broken after op %d", i)
		}
	}
	// Smoothness must remain bounded — the point of the bucket solution.
	if rho := b.Ring().Smoothness(); rho > 64 {
		t.Errorf("smoothness after churn = %.1f; bucket scheme failed", rho)
	}
}

// TestBucketRingPureDeletions: delete half the servers; naive predecessor
// absorption would create Ω(log n / n) segments (§4.1), the bucket scheme
// keeps smoothness bounded.
func TestBucketRingPureDeletions(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 15))
	b := NewBucketRing(1024, 8, rng)
	for i := 0; i < 512; i++ {
		b.Leave(interval.Point(rng.Uint64()))
	}
	if !b.CheckInvariants() {
		t.Fatal("invariants broken")
	}
	if rho := b.Ring().Smoothness(); rho > 64 {
		t.Errorf("smoothness after deletions = %.1f", rho)
	}
}
