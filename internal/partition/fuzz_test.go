package partition

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"condisc/internal/interval"
)

// FuzzArcLeases feeds the lease registry adversarial span sets — random
// starts and lengths, wrapped arcs, duplicates, zero-length (full-circle)
// spans — acquired concurrently by several goroutines, and asserts the
// two safety properties:
//
//  1. no overlap admission: at no instant do two goroutines hold
//     overlapping span sets (checked against an independent oracle);
//  2. no deadlock: every acquisition completes. Span sets are acquired
//     atomically and conflicting waiters are admitted in arrival (ticket)
//     order — a total order — so no ordering discipline over ring
//     positions is required of callers; the watchdog enforces that this
//     actually holds for arbitrary span geometry.
//
// Input encoding: each 17-byte record is one lease — goroutine (1 byte,
// mod workers), then two (start, len) u64 pairs... truncated records are
// dropped. Each goroutine acquires its leases in input order.
func FuzzArcLeases(f *testing.F) {
	f.Add([]byte{})
	// Disjoint arcs on two goroutines.
	f.Add(leaseRec(0, 0, 1<<32, 1<<40, 1<<32))
	f.Add(append(leaseRec(0, 0, 1<<60, 1<<61, 1<<60), leaseRec(1, 1<<62, 1<<60, 1<<63, 1<<60)...))
	// Identical span sets on three goroutines: maximal contention.
	f.Add(append(append(leaseRec(0, 5, 100, 5, 100), leaseRec(1, 5, 100, 5, 100)...), leaseRec(2, 5, 100, 5, 100)...))
	// Wrapped arc vs the arc it wraps onto, plus a full-circle span.
	f.Add(append(leaseRec(0, ^uint64(0)-10, 100, 0, 0), leaseRec(1, 50, 25, 1<<63, 1)...))
	// Interleaved adjacent arcs (ends touching: must NOT conflict).
	f.Add(append(leaseRec(0, 0, 100, 200, 100), leaseRec(1, 100, 100, 300, 100)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		const workers = 4
		const rec = 1 + 4*8
		type leaseReq struct{ spans []interval.Segment }
		var reqs [workers][]leaseReq
		total := 0
		for off := 0; off+rec <= len(data) && total < 64; off += rec {
			w := int(data[off]) % workers
			spans := make([]interval.Segment, 0, 2)
			for i := 0; i < 2; i++ {
				base := off + 1 + i*16
				start := binary.LittleEndian.Uint64(data[base:])
				ln := binary.LittleEndian.Uint64(data[base+8:])
				spans = append(spans, interval.Segment{Start: interval.Point(start), Len: ln})
			}
			reqs[w] = append(reqs[w], leaseReq{spans: spans})
			total++
		}

		ls := NewLeases()
		oc := &overlapChecker{}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for _, rq := range reqs[w] {
					l := ls.Acquire(rq.spans...)
					oc.enter(w, rq.spans)
					oc.exit(w)
					ls.Release(l)
				}
			}(w)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("deadlock: lease acquisitions did not complete (%d leases)", total)
		}
		for _, e := range oc.errs {
			t.Error(e)
		}
		if ls.Held() != 0 {
			t.Fatalf("%d leases leaked", ls.Held())
		}
	})
}

// leaseRec encodes one fuzz input record.
func leaseRec(w byte, s1, l1, s2, l2 uint64) []byte {
	b := make([]byte, 1+4*8)
	b[0] = w
	binary.LittleEndian.PutUint64(b[1:], s1)
	binary.LittleEndian.PutUint64(b[9:], l1)
	binary.LittleEndian.PutUint64(b[17:], s2)
	binary.LittleEndian.PutUint64(b[25:], l2)
	return b
}
