package partition

import (
	"math/rand/v2"
	"testing"

	"condisc/internal/interval"
)

// TestHandlesStableAcrossChurn: a handle keeps naming the same point while
// indices shift under arbitrary insertions and removals.
func TestHandlesStableAcrossChurn(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 37))
	r := Grow(New(), 64, MultipleChooser(2), rng)
	if !r.checkHandles() {
		t.Fatal("handle invariant broken after Grow")
	}
	i, _ := r.Insert(interval.Point(1 << 40))
	h := r.HandleAt(i)
	for op := 0; op < 500; op++ {
		if rng.IntN(2) == 0 || r.N() < 8 {
			r.Insert(SingleChoice(rng))
		} else {
			j := rng.IntN(r.N())
			if r.HandleAt(j) == h {
				continue
			}
			r.RemoveAt(j)
		}
		if !r.checkHandles() {
			t.Fatalf("handle invariant broken at op %d", op)
		}
		idx, ok := r.IndexOfHandle(h)
		if !ok || r.Point(idx) != interval.Point(1<<40) {
			t.Fatalf("op %d: handle no longer names its point (ok=%v)", op, ok)
		}
		if p, ok := r.PointOfHandle(h); !ok || p != interval.Point(1<<40) {
			t.Fatalf("op %d: PointOfHandle wrong", op)
		}
	}
	if idx, ok := r.RemoveHandle(h); !ok || idx < 0 {
		t.Fatal("RemoveHandle failed")
	}
	if _, ok := r.IndexOfHandle(h); ok {
		t.Fatal("handle survived removal")
	}
	if _, ok := r.RemoveHandle(h); ok {
		t.Fatal("double removal succeeded")
	}
	if !r.checkHandles() {
		t.Fatal("handle invariant broken after RemoveHandle")
	}
}

// TestCloneCopiesHandles: clones share no handle state with the original.
func TestCloneCopiesHandles(t *testing.T) {
	r := FromPoints([]interval.Point{100, 200, 300})
	c := r.Clone()
	h := r.HandleAt(1)
	if ch := c.HandleAt(1); ch != h {
		t.Fatalf("clone handle %d != original %d", ch, h)
	}
	c.RemoveHandle(h)
	if _, ok := r.IndexOfHandle(h); !ok {
		t.Fatal("removing from clone affected the original")
	}
	if _, ok := c.IndexOfHandle(h); ok {
		t.Fatal("clone removal did not stick")
	}
	if i, ok := c.Insert(interval.Point(200)); !ok || !c.checkHandles() || c.Point(i) != 200 {
		t.Fatal("clone insert after removal broken")
	}
}

// TestInsertDuplicateKeepsHandle: re-inserting an existing point does not
// mint a new handle.
func TestInsertDuplicateKeepsHandle(t *testing.T) {
	r := New()
	i, ok := r.Insert(500)
	if !ok {
		t.Fatal("first insert failed")
	}
	h := r.HandleAt(i)
	if _, ok := r.Insert(500); ok {
		t.Fatal("duplicate insert succeeded")
	}
	if r.HandleAt(i) != h || !r.checkHandles() {
		t.Fatal("duplicate insert disturbed handles")
	}
}
