package partition

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"condisc/internal/interval"
)

// TestCoverMatchesBruteForce cross-checks the binary-search Cover against a
// linear scan on random rings and queries.
func TestCoverMatchesBruteForce(t *testing.T) {
	f := func(raw []uint64, q uint64) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]interval.Point, len(raw))
		for i, v := range raw {
			pts[i] = interval.Point(v)
		}
		r := FromPoints(pts)
		p := interval.Point(q)
		got := r.Cover(p)
		for i := 0; i < r.N(); i++ {
			if r.Segment(i).Contains(p) {
				return got == i
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestInsertRemoveRoundTrip: inserting then removing a point restores the
// exact ring.
func TestInsertRemoveRoundTrip(t *testing.T) {
	f := func(raw []uint64, extra uint64) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]interval.Point, len(raw))
		for i, v := range raw {
			pts[i] = interval.Point(v)
		}
		r := FromPoints(pts)
		before := append([]interval.Point(nil), r.Points()...)
		p := interval.Point(extra)
		if _, ok := r.Insert(p); ok {
			if !r.Remove(p) {
				return false
			}
		}
		after := r.Points()
		if len(after) != len(before) {
			return false
		}
		for i := range after {
			if after[i] != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSuccessorPredecessorInverse: succ(pred(i)) == i everywhere.
func TestSuccessorPredecessorInverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(50, 50))
	r := Grow(New(), 200, SingleChooser, rng)
	for i := 0; i < r.N(); i++ {
		if r.Successor(r.Predecessor(i)) != i || r.Predecessor(r.Successor(i)) != i {
			t.Fatalf("succ/pred not inverse at %d", i)
		}
	}
}

// TestSmoothnessScaleInvariance: smoothness only depends on length ratios,
// so rotating every point by a constant leaves it unchanged.
func TestSmoothnessRotationInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 51))
	pts := make([]interval.Point, 100)
	for i := range pts {
		pts[i] = interval.Point(rng.Uint64())
	}
	r1 := FromPoints(pts)
	shift := interval.Point(rng.Uint64())
	shifted := make([]interval.Point, len(pts))
	for i, p := range pts {
		shifted[i] = p + shift
	}
	r2 := FromPoints(shifted)
	if r1.Smoothness() != r2.Smoothness() {
		t.Errorf("smoothness changed under rotation: %v vs %v",
			r1.Smoothness(), r2.Smoothness())
	}
}

// TestGrowPreservesExistingPoints: Grow only adds.
func TestGrowPreservesExistingPoints(t *testing.T) {
	rng := rand.New(rand.NewPCG(52, 52))
	r := FromPoints([]interval.Point{interval.FromFloat(0.25), interval.FromFloat(0.75)})
	Grow(r, 20, MultipleChooser(2), rng)
	found := 0
	for i := 0; i < r.N(); i++ {
		if r.Point(i) == interval.FromFloat(0.25) || r.Point(i) == interval.FromFloat(0.75) {
			found++
		}
	}
	if found != 2 {
		t.Errorf("original points lost: found %d of 2", found)
	}
}
