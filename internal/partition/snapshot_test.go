package partition

import (
	"math/rand/v2"
	"sync"
	"testing"

	"condisc/internal/interval"
)

// dumpSnap materializes a snapshot as (point, handle) pairs in ring order.
func dumpSnap(s *Snapshot) (pts []interval.Point, hs []Handle) {
	for i := 0; i < s.N(); i++ {
		pts = append(pts, s.Point(i))
		hs = append(hs, s.HandleAt(i))
	}
	return
}

// TestSnapshotImmutableUnderChurn publishes a snapshot, then churns the
// live ring hard enough to split, merge, and drop chunks; the snapshot
// must keep answering exactly as of its publish.
func TestSnapshotImmutableUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	r := New()
	for i := 0; i < 4096; i++ {
		r.Insert(interval.Point(rng.Uint64()))
	}
	snap := r.Snapshot()
	if snap.Epoch() != 0 {
		t.Fatalf("pre-publish snapshot epoch = %d, want 0", snap.Epoch())
	}
	wantPts, wantHs := dumpSnap(snap)

	// Churn: enough removes to force merges/drops, enough inserts to split.
	for i := 0; i < 3500; i++ {
		r.RemoveAt(int(rng.Uint64() % uint64(r.N())))
	}
	for i := 0; i < 8000; i++ {
		r.Insert(interval.Point(rng.Uint64()))
	}
	s2 := r.Publish()
	if s2.Epoch() != 1 {
		t.Fatalf("publish epoch = %d, want 1", s2.Epoch())
	}
	if got := r.Snapshot(); got != s2 {
		t.Fatalf("Snapshot() did not return the latest publish")
	}

	gotPts, gotHs := dumpSnap(snap)
	if len(gotPts) != len(wantPts) {
		t.Fatalf("old snapshot N changed: %d -> %d", len(wantPts), len(gotPts))
	}
	for i := range wantPts {
		if gotPts[i] != wantPts[i] || gotHs[i] != wantHs[i] {
			t.Fatalf("old snapshot mutated at rank %d: (%d,%d) -> (%d,%d)",
				i, wantPts[i], wantHs[i], gotPts[i], gotHs[i])
		}
	}
}

// TestSnapshotQueriesMatchRing checks every snapshot read method against
// the live Ring answer on a quiescent ring.
func TestSnapshotQueriesMatchRing(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 0))
	for _, n := range []int{1, 2, 3, 17, 1000} {
		r := New()
		for r.N() < n {
			r.Insert(interval.Point(rng.Uint64()))
		}
		s := r.Publish()
		if s.N() != r.N() {
			t.Fatalf("n=%d: snapshot N=%d", n, s.N())
		}
		for i := 0; i < n; i++ {
			if s.Point(i) != r.Point(i) || s.HandleAt(i) != r.HandleAt(i) {
				t.Fatalf("n=%d: pair %d differs", n, i)
			}
			if s.Segment(i) != r.Segment(i) {
				t.Fatalf("n=%d: segment %d differs", n, i)
			}
			if s.Successor(i) != r.Successor(i) || s.Predecessor(i) != r.Predecessor(i) {
				t.Fatalf("n=%d: succ/pred %d differ", n, i)
			}
		}
		for trial := 0; trial < 200; trial++ {
			p := interval.Point(rng.Uint64())
			if s.Cover(p) != r.Cover(p) {
				t.Fatalf("n=%d: Cover(%d) differs", n, p)
			}
			if s.CoverHandle(p) != r.CoverHandle(p) {
				t.Fatalf("n=%d: CoverHandle(%d) differs", n, p)
			}
			if s.SegmentOf(p) != r.SegmentOf(p) {
				t.Fatalf("n=%d: SegmentOf(%d) differs", n, p)
			}
			i1, seg1 := s.CoverSegment(p)
			i2, seg2 := r.CoverSegment(p)
			if i1 != i2 || seg1 != seg2 {
				t.Fatalf("n=%d: CoverSegment(%d) differs", n, p)
			}
			arc := interval.Segment{Start: p, Len: rng.Uint64() >> 40}
			sh := s.CoverHandlesOfArc(arc)
			rh := r.CoverHandlesOfArc(arc)
			if len(sh) != len(rh) {
				t.Fatalf("n=%d: CoverHandlesOfArc(%v) length differs", n, arc)
			}
			for k := range sh {
				if sh[k] != rh[k] {
					t.Fatalf("n=%d: CoverHandlesOfArc(%v) differs at %d", n, arc, k)
				}
			}
		}
	}
}

// TestSnapshotConcurrentReaders hammers snapshots from reader goroutines
// while the owner churns and publishes — the race detector is the real
// assertion here; the readers also self-check basic invariants.
func TestSnapshotConcurrentReaders(t *testing.T) {
	r := New()
	rng := rand.New(rand.NewPCG(13, 0))
	for i := 0; i < 2000; i++ {
		r.Insert(interval.Point(rng.Uint64()))
	}
	r.Publish()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rr := rand.New(rand.NewPCG(17, seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Snapshot()
				p := interval.Point(rr.Uint64())
				i := s.Cover(p)
				if i < 0 || i >= s.N() {
					t.Errorf("Cover out of range: %d of %d", i, s.N())
					return
				}
				seg := s.SegmentOf(p)
				if seg.Len != 0 && !seg.Contains(p) {
					t.Errorf("SegmentOf(%d) = %v does not contain p", p, seg)
					return
				}
				_ = s.CoverHandle(p)
				_ = s.Segment(i)
			}
		}(uint64(g))
	}

	for wave := 0; wave < 300; wave++ {
		for k := 0; k < 8; k++ {
			if rng.Uint64()%2 == 0 || r.N() < 100 {
				r.Insert(interval.Point(rng.Uint64()))
			} else {
				r.RemoveAt(int(rng.Uint64() % uint64(r.N())))
			}
		}
		r.Publish()
	}
	close(stop)
	wg.Wait()
}
