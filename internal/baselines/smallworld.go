package baselines

import (
	"math"
	"math/bits"
	"math/rand/v2"

	"condisc/internal/interval"
)

// SmallWorld implements Kleinberg's small-world network (Table 1 row 4): a
// ring with local ±1 edges plus one long-range contact per node drawn from
// the harmonic (1/d) distribution, routed greedily. O(1) linkage and
// Θ(log² n) expected path length.
type SmallWorld struct {
	n    int
	long []int // one long-range contact per node
}

// NewSmallWorld builds the network on n ring positions.
func NewSmallWorld(n int, rng *rand.Rand) *SmallWorld {
	s := &SmallWorld{n: n, long: make([]int, n)}
	// Harmonic sampling: Pr[contact at ring distance d] ∝ 1/d. Use inverse
	// CDF: with H = Σ 1/d ≈ ln(n/2), draw u and find d ≈ exp(u·H).
	for i := 0; i < n; i++ {
		d := s.sampleHarmonic(rng)
		if rng.IntN(2) == 0 {
			s.long[i] = (i + d) % n
		} else {
			s.long[i] = (i - d + n) % n
		}
	}
	return s
}

// sampleHarmonic draws a ring distance in [1, n/2] with Pr ∝ 1/d.
func (s *SmallWorld) sampleHarmonic(rng *rand.Rand) int {
	max := s.n / 2
	if max < 1 {
		max = 1
	}
	// Inverse-transform on the continuous approximation: d = max^u.
	u := rng.Float64()
	d := int(math.Pow(float64(max), u))
	if d < 1 {
		d = 1
	}
	if d > max {
		d = max
	}
	return d
}

// Name implements Scheme.
func (s *SmallWorld) Name() string { return "SmallWorld" }

// N implements Scheme.
func (s *SmallWorld) N() int { return s.n }

// MaxLinkage implements Scheme: two ring edges plus one long link.
func (s *SmallWorld) MaxLinkage() int { return 3 }

// Owner implements Scheme: keys map to ring positions, floor(key·n).
func (s *SmallWorld) Owner(key interval.Point) int {
	hi, _ := bits.Mul64(uint64(key), uint64(s.n))
	return int(hi)
}

// ringDist returns the circular distance between positions a and b.
func (s *SmallWorld) ringDist(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if s.n-d < d {
		d = s.n - d
	}
	return d
}

// Lookup implements Scheme: greedy routing — each hop moves to the
// neighbour (ring or long) closest to the target.
func (s *SmallWorld) Lookup(src int, key interval.Point, _ *rand.Rand) []int {
	tgt := s.Owner(key)
	path := []int{src}
	cur := src
	for cur != tgt {
		best, bestD := cur, s.ringDist(cur, tgt)
		for _, nb := range []int{(cur + 1) % s.n, (cur - 1 + s.n) % s.n, s.long[cur]} {
			if d := s.ringDist(nb, tgt); d < bestD {
				best, bestD = nb, d
			}
		}
		// Greedy routing on this topology always makes progress via the
		// ring edges, so best != cur.
		path = append(path, best)
		cur = best
	}
	return path
}
