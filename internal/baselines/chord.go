package baselines

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"condisc/internal/interval"
)

// Chord implements the Chord DHT (Stoica et al., Table 1 row 1): n nodes on
// the identifier ring with O(log n) fingers each; greedy clockwise routing
// via the closest preceding finger. Expected path (1/2)·log n, linkage
// log n, congestion (log n)/n.
//
// Simplification: the network is built at full stabilization (perfect
// finger tables); join/leave churn is exercised on our own construction,
// not on the baselines.
type Chord struct {
	ids     []interval.Point // sorted node identifiers
	fingers [][]int          // per node: distinct finger node indices (ascending power)
}

// NewChord builds a stabilized Chord ring of n nodes with random IDs.
func NewChord(n int, rng *rand.Rand) *Chord {
	ids := randomDistinctPoints(n, rng)
	c := &Chord{ids: ids, fingers: make([][]int, n)}
	for i := 0; i < n; i++ {
		var fs []int
		prev := -1
		for k := 0; k < 64; k++ {
			target := ids[i] + interval.Point(uint64(1)<<k)
			s := c.successorOf(target)
			if s != prev && s != i {
				fs = append(fs, s)
				prev = s
			}
		}
		c.fingers[i] = fs
	}
	return c
}

// successorOf returns the index of the first node clockwise at or after p
// (Chord's ownership convention).
func (c *Chord) successorOf(p interval.Point) int {
	i := sort.Search(len(c.ids), func(k int) bool { return c.ids[k] >= p })
	if i == len(c.ids) {
		return 0
	}
	return i
}

// Name implements Scheme.
func (c *Chord) Name() string { return "Chord" }

// N implements Scheme.
func (c *Chord) N() int { return len(c.ids) }

// Owner implements Scheme: the successor of the key.
func (c *Chord) Owner(key interval.Point) int { return c.successorOf(key) }

// MaxLinkage implements Scheme: fingers plus the implicit successor link.
func (c *Chord) MaxLinkage() int {
	max := 0
	for _, f := range c.fingers {
		if len(f) > max {
			max = len(f)
		}
	}
	return max + 1
}

// Lookup implements Scheme with the standard greedy finger routing.
func (c *Chord) Lookup(src int, key interval.Point, _ *rand.Rand) []int {
	owner := c.successorOf(key)
	path := []int{src}
	cur := src
	for cur != owner {
		// If the owner is our direct successor region, hop straight to it:
		// key ∈ (cur, owner].
		next := c.closestPreceding(cur, key)
		if next == cur {
			next = c.successorOf(c.ids[cur] + 1) // successor link
		}
		path = append(path, next)
		cur = next
		if len(path) > len(c.ids) {
			panic(fmt.Sprintf("chord: routing loop looking for %v", key))
		}
	}
	return path
}

// closestPreceding returns the finger of cur that most closely precedes
// key clockwise (and strictly advances from cur), or cur if none.
func (c *Chord) closestPreceding(cur int, key interval.Point) int {
	curToKey := interval.CWDist(c.ids[cur], key)
	best, bestDist := cur, uint64(0)
	for _, f := range c.fingers[cur] {
		d := interval.CWDist(c.ids[cur], c.ids[f])
		// Finger must lie strictly inside (cur, key).
		if d > 0 && d < curToKey && d > bestDist {
			best, bestDist = f, d
		}
	}
	return best
}

// randomDistinctPoints draws n distinct sorted points.
func randomDistinctPoints(n int, rng *rand.Rand) []interval.Point {
	seen := make(map[interval.Point]bool, n)
	ids := make([]interval.Point, 0, n)
	for len(ids) < n {
		p := interval.Point(rng.Uint64())
		if !seen[p] {
			seen[p] = true
			ids = append(ids, p)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
