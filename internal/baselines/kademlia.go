package baselines

import (
	"math/bits"
	"math/rand/v2"
	"sort"

	"condisc/internal/interval"
)

// Kademlia implements the XOR-metric DHT of Maymounkov & Mazières (cited
// in the paper's introduction among previous DHT designs): nodes hold one
// bucket per XOR-distance scale (here the single best contact per bucket,
// the k=1 skeleton that determines hop counts), and lookups greedily halve
// the XOR distance, giving log n hops with log n linkage.
//
// Simplification: buckets hold one contact and lookups are fully greedy —
// the α-parallelism and k-redundancy of production Kademlia affect
// robustness, not the hop-count shape Table 1-style comparisons measure.
type Kademlia struct {
	ids []interval.Point // sorted (for owner queries)
	// contact[i][b] = index of a node at XOR distance ~2^(63-b) from i,
	// or -1 when the bucket is empty.
	contact [][]int
}

// NewKademlia builds the overlay with n random node IDs.
func NewKademlia(n int, rng *rand.Rand) *Kademlia {
	k := &Kademlia{ids: randomDistinctPoints(n, rng), contact: make([][]int, n)}
	// For each node and each bucket (prefix length b), pick the XOR-closest
	// node among those whose ID differs from ours first at bit b. The
	// bucket ranges are contiguous in sorted order, so binary search finds
	// them.
	for i := 0; i < n; i++ {
		k.contact[i] = make([]int, 64)
		for b := 0; b < 64; b++ {
			k.contact[i][b] = k.bestInBucket(i, b)
		}
	}
	return k
}

// bestInBucket returns the node minimizing XOR distance to ids[i] among
// nodes sharing exactly b leading bits with it, or -1.
func (k *Kademlia) bestInBucket(i, b int) int {
	id := uint64(k.ids[i])
	// The bucket is the set of ids with prefix = id's first b bits and bit
	// b flipped.
	prefix := id>>(63-b) ^ 1 // first b bits + flipped bit b
	lo := prefix << (63 - b)
	var hi uint64
	if b == 63 {
		hi = lo + 1
	} else {
		hi = lo + 1<<(63-b)
	}
	l := sort.Search(len(k.ids), func(j int) bool { return uint64(k.ids[j]) >= lo })
	h := sort.Search(len(k.ids), func(j int) bool { return uint64(k.ids[j]) >= hi })
	if l == h {
		return -1
	}
	best, bestD := -1, ^uint64(0)
	// XOR-closest within the bucket: check the two neighbours of the
	// target position (XOR order within a fixed prefix equals numeric
	// order around the target).
	pos := sort.Search(len(k.ids), func(j int) bool { return uint64(k.ids[j]) >= id })
	for _, c := range []int{pos - 1, pos, l, h - 1} {
		if c < l || c >= h {
			continue
		}
		if d := uint64(k.ids[c]) ^ id; d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Name implements Scheme.
func (k *Kademlia) Name() string { return "Kademlia" }

// N implements Scheme.
func (k *Kademlia) N() int { return len(k.ids) }

// MaxLinkage implements Scheme: filled buckets.
func (k *Kademlia) MaxLinkage() int {
	max := 0
	for _, cs := range k.contact {
		n := 0
		for _, c := range cs {
			if c >= 0 {
				n++
			}
		}
		if n > max {
			max = n
		}
	}
	return max
}

// Owner implements Scheme: the node XOR-closest to the key.
func (k *Kademlia) Owner(key interval.Point) int {
	return k.xorClosest(uint64(key))
}

// xorClosest scans the two numeric neighbours of key for every prefix
// bucket; with a sorted array the global XOR-closest node is found by
// checking numeric neighbours of the key at each bit boundary. A simple
// linear scan is exact and fast enough for experiment sizes.
func (k *Kademlia) xorClosest(key uint64) int {
	best, bestD := 0, uint64(k.ids[0])^key
	for i := 1; i < len(k.ids); i++ {
		if d := uint64(k.ids[i]) ^ key; d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Lookup implements Scheme: greedy XOR-halving via the bucket contacts.
func (k *Kademlia) Lookup(src int, key interval.Point, _ *rand.Rand) []int {
	target := uint64(key)
	owner := k.xorClosest(target)
	path := []int{src}
	cur := src
	for cur != owner {
		d := uint64(k.ids[cur]) ^ target
		b := bits.LeadingZeros64(d) // first differing bit scale
		next := -1
		// Walk buckets from the most significant differing bit down until a
		// contact strictly improves the XOR distance.
		for bb := b; bb < 64 && next == -1; bb++ {
			c := k.contact[cur][bb]
			if c >= 0 && uint64(k.ids[c])^target < d {
				next = c
			}
		}
		if next == -1 {
			// No contact improves (cur is a local optimum among its
			// contacts): the owner is XOR-adjacent; final hop.
			next = owner
		}
		path = append(path, next)
		cur = next
		if len(path) > len(k.ids) {
			break
		}
	}
	return path
}
