package baselines

import (
	"math/rand/v2"
	"sort"

	"condisc/internal/interval"
)

// Prefix implements Plaxton/Tapestry-style prefix routing (Table 1 row 2):
// random 64-bit IDs read as 16 hexadecimal digits; each hop extends the
// common prefix with the key by at least one digit, giving log_16 n
// expected hops, linkage O(16·log_16 n) ≈ O(log n) and congestion
// (log n)/n.
//
// Simplification: the owner of a key is the node numerically closest to
// the key among those sharing the longest achievable prefix (Plaxton's
// surrogate routing collapsed into a deterministic rule); locality-based
// neighbour selection (Tapestry's distance optimization) is out of scope —
// Table 1 measures hop counts, not stretch.
type Prefix struct {
	ids []interval.Point // sorted
}

// NewPrefix builds the overlay with n random node IDs.
func NewPrefix(n int, rng *rand.Rand) *Prefix {
	return &Prefix{ids: randomDistinctPoints(n, rng)}
}

// Name implements Scheme.
func (p *Prefix) Name() string { return "Tapestry(prefix)" }

// N implements Scheme.
func (p *Prefix) N() int { return len(p.ids) }

const prefixBits = 4 // hexadecimal digits

// rangeOfPrefix returns the [lo, hi) node-index range whose IDs share the
// first `digits` hex digits with key.
func (p *Prefix) rangeOfPrefix(key interval.Point, digits int) (int, int) {
	if digits <= 0 {
		return 0, len(p.ids)
	}
	shift := uint(64 - digits*prefixBits)
	if digits*prefixBits >= 64 {
		shift = 0
	}
	lo := key >> shift << shift //condisc:allow segarith hex-prefix truncation of a node ID, not segment-length arithmetic; the baseline routes on digit prefixes, not interval halving
	var hi interval.Point
	if shift == 0 {
		hi = lo + 1
	} else {
		hi = lo + 1<<shift //condisc:allow segarith prefix-range upper bound from the same digit mask; no ceiling semantics apply
	}
	i := sort.Search(len(p.ids), func(k int) bool { return p.ids[k] >= lo })
	j := i
	if hi != 0 { // hi == 0 means the range extends to the top of the space
		j = sort.Search(len(p.ids), func(k int) bool { return p.ids[k] >= hi })
	} else {
		j = len(p.ids)
	}
	return i, j
}

// commonDigits returns the number of leading hex digits a and b share.
func commonDigits(a, b interval.Point) int {
	x := uint64(a ^ b)
	for d := 0; d < 16; d++ {
		if x>>(60-uint(d)*4)&0xf != 0 {
			return d
		}
	}
	return 16
}

// closestInRange returns the node in [lo,hi) minimizing |id - key|.
func (p *Prefix) closestInRange(lo, hi int, key interval.Point) int {
	i := sort.Search(hi-lo, func(k int) bool { return p.ids[lo+k] >= key }) + lo
	best := -1
	var bestDist uint64
	for _, c := range []int{i - 1, i} {
		if c < lo || c >= hi {
			continue
		}
		d := interval.LinDist(p.ids[c], key)
		if best == -1 || d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// maxPrefixRange returns the longest-prefix non-empty range for key.
func (p *Prefix) maxPrefixRange(key interval.Point) (lo, hi, digits int) {
	lo, hi = 0, len(p.ids)
	for d := 1; d <= 16; d++ {
		l, h := p.rangeOfPrefix(key, d)
		if l == h {
			return lo, hi, d - 1
		}
		lo, hi = l, h
	}
	return lo, hi, 16
}

// Owner implements Scheme: closest node within the maximal-prefix range.
func (p *Prefix) Owner(key interval.Point) int {
	lo, hi, _ := p.maxPrefixRange(key)
	return p.closestInRange(lo, hi, key)
}

// MaxLinkage implements Scheme: a level-by-digit routing table; entry
// (l, d) exists if some node shares l digits with this node's ID followed
// by digit d. We return the max filled-entry count over nodes.
func (p *Prefix) MaxLinkage() int {
	// All nodes see the same expected structure; sample up to 64 nodes for
	// the maximum to keep construction-time bounded.
	maxEntries := 0
	step := len(p.ids)/64 + 1
	for i := 0; i < len(p.ids); i += step {
		entries := 0
		id := p.ids[i]
		for l := 0; l < 16; l++ {
			loL, hiL := p.rangeOfPrefix(id, l)
			if hiL-loL <= 1 {
				break
			}
			// Count distinct next digits present in the level range.
			present := map[uint64]bool{}
			shift := uint(64 - (l+1)*prefixBits)
			for k := loL; k < hiL; k++ {
				present[uint64(p.ids[k])>>shift&0xf] = true //condisc:allow segarith extracts one hex digit of a node ID for table occupancy; not interval arithmetic
			}
			entries += len(present)
		}
		if entries > maxEntries {
			maxEntries = entries
		}
	}
	return maxEntries
}

// Lookup implements Scheme: each hop moves to a node sharing one more
// digit with the key; when no longer possible, the final hop reaches the
// surrogate owner.
func (p *Prefix) Lookup(src int, key interval.Point, _ *rand.Rand) []int {
	path := []int{src}
	cur := src
	for {
		d := commonDigits(p.ids[cur], key)
		lo, hi := p.rangeOfPrefix(key, d+1)
		if lo == hi {
			// No node shares d+1 digits: the owner lives in the d-digit
			// range; final surrogate hop.
			owner := p.Owner(key)
			if owner != cur {
				path = append(path, owner)
			}
			return path
		}
		// A real Plaxton routing table stores ONE node per (level, digit)
		// entry — an arbitrary member of the range, not the globally
		// closest to the key. We model the entry deterministically as the
		// range's first node, so each hop extends the prefix by exactly one
		// digit (the log_16 n behaviour Table 1 cites).
		next := lo
		if next == cur {
			// cur is itself the table entry; artificial, cannot happen
			// since cur shares only d digits. Guard regardless.
			return path
		}
		path = append(path, next)
		cur = next
	}
}
