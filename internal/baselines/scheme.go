// Package baselines implements the lookup schemes the paper compares
// against in Table 1 — Chord, Tapestry-style prefix routing, CAN, Kleinberg
// small worlds, and a Viceroy-style butterfly — behind a single Scheme
// interface, so the Table 1 experiment can measure path length, congestion
// and linkage uniformly across all of them (plus our Distance Halving).
//
// Each implementation is a faithful *routing-shape* comparator: it
// reproduces the asymptotics Table 1 cites (who wins, by what factor), not
// every maintenance detail of the original system. Deliberate
// simplifications are documented on each type.
package baselines

import (
	"math"
	"math/rand/v2"

	"condisc/internal/interval"
)

// Scheme is a static overlay of n nodes supporting key lookups.
type Scheme interface {
	// Name identifies the scheme in tables.
	Name() string
	// N returns the number of nodes.
	N() int
	// MaxLinkage returns the maximum routing-table size (out-links) over
	// nodes — Table 1's "linkage" column.
	MaxLinkage() int
	// Lookup routes from node src to the node responsible for key,
	// returning the path of node indices (src first, owner last).
	Lookup(src int, key interval.Point, rng *rand.Rand) []int
	// Owner returns the node responsible for key (for delivery checks).
	Owner(key interval.Point) int
}

// Stats aggregates measurements over a batch of random lookups.
type Stats struct {
	Scheme     string
	N          int
	Lookups    int
	AvgPath    float64
	MaxPath    int
	MaxLoad    int64
	Linkage    int
	Congestion float64 // MaxLoad / Lookups: Pr[a fixed busiest server is active]
	// NormCong is congestion normalized by log2(n)/n — 1.0 means exactly
	// the (log n)/n congestion Table 1 lists for Chord et al.
	NormCong float64
}

// Measure runs the given number of random lookups (uniform sources, uniform
// keys) against the scheme and aggregates statistics.
func Measure(s Scheme, lookups int, rng *rand.Rand) Stats {
	n := s.N()
	load := make([]int64, n)
	st := Stats{Scheme: s.Name(), N: n, Lookups: lookups, Linkage: s.MaxLinkage()}
	sum := 0
	for i := 0; i < lookups; i++ {
		src := rng.IntN(n)
		key := interval.Point(rng.Uint64())
		path := s.Lookup(src, key, rng)
		for _, v := range path {
			load[v]++
		}
		l := len(path) - 1
		sum += l
		if l > st.MaxPath {
			st.MaxPath = l
		}
	}
	st.AvgPath = float64(sum) / float64(lookups)
	for _, l := range load {
		if l > st.MaxLoad {
			st.MaxLoad = l
		}
	}
	st.Congestion = float64(st.MaxLoad) / float64(lookups)
	st.NormCong = st.Congestion / (math.Log2(float64(n)) / float64(n))
	return st
}
