package baselines

import (
	"fmt"
	"math"
	"math/rand/v2"

	"condisc/internal/interval"
)

// CAN implements the Content Addressable Network (Ratnasamy et al., Table 1
// row 3): a d-dimensional torus of zones with greedy coordinate-wise
// routing. Path length Θ(d·n^(1/d)), linkage 2d, congestion
// Θ(d·n^(1/d-1)).
//
// Simplification: the torus is a perfect k^d grid (k = ⌊n^(1/d)⌋), the
// steady state CAN converges to under uniform splits; the node count is
// therefore k^d rather than exactly n.
type CAN struct {
	d, k int
}

// NewCAN builds a d-dimensional CAN whose grid side is ⌊n^(1/d)⌋.
func NewCAN(n, d int, _ *rand.Rand) *CAN {
	if d < 1 {
		panic("can: dimension must be >= 1")
	}
	k := int(math.Floor(math.Pow(float64(n), 1/float64(d))))
	if k < 2 {
		k = 2
	}
	return &CAN{d: d, k: k}
}

// Name implements Scheme.
func (c *CAN) Name() string { return fmt.Sprintf("CAN(d=%d)", c.d) }

// N implements Scheme.
func (c *CAN) N() int {
	n := 1
	for i := 0; i < c.d; i++ {
		n *= c.k
	}
	return n
}

// MaxLinkage implements Scheme: 2 neighbours per dimension.
func (c *CAN) MaxLinkage() int { return 2 * c.d }

// coords converts a node index to grid coordinates.
func (c *CAN) coords(idx int) []int {
	out := make([]int, c.d)
	for i := 0; i < c.d; i++ {
		out[i] = idx % c.k
		idx /= c.k
	}
	return out
}

// index converts grid coordinates to a node index.
func (c *CAN) index(coords []int) int {
	idx := 0
	for i := c.d - 1; i >= 0; i-- {
		idx = idx*c.k + coords[i]
	}
	return idx
}

// keyCoords hashes a key point to grid coordinates by splitting its bits
// into d chunks.
func (c *CAN) keyCoords(key interval.Point) []int {
	out := make([]int, c.d)
	bitsPer := 64 / c.d
	v := uint64(key)
	for i := 0; i < c.d; i++ {
		chunk := v >> (uint(i) * uint(bitsPer)) & (1<<uint(bitsPer) - 1)
		out[i] = int(chunk % uint64(c.k))
	}
	return out
}

// Owner implements Scheme.
func (c *CAN) Owner(key interval.Point) int { return c.index(c.keyCoords(key)) }

// Lookup implements Scheme: greedy per-dimension torus walk.
func (c *CAN) Lookup(src int, key interval.Point, _ *rand.Rand) []int {
	cur := c.coords(src)
	tgt := c.keyCoords(key)
	path := []int{src}
	for dim := 0; dim < c.d; dim++ {
		for cur[dim] != tgt[dim] {
			fwd := (tgt[dim] - cur[dim] + c.k) % c.k
			if fwd <= c.k-fwd {
				cur[dim] = (cur[dim] + 1) % c.k
			} else {
				cur[dim] = (cur[dim] - 1 + c.k) % c.k
			}
			path = append(path, c.index(cur))
		}
	}
	return path
}
