package baselines

import (
	"math"
	"math/rand/v2"
	"sort"

	"condisc/internal/interval"
)

// Butterfly implements a Viceroy-style constant-degree butterfly overlay
// (Malkhi, Naor & Ratajczak; Table 1 row 5): every node draws a random
// point on the ring and a random level in [1, log n]; the overlay wires
// approximate butterfly down-edges (to points x and x + 2^-ℓ on the next
// level), an up-edge, and global ring edges. Routing proceeds in three
// phases — up to level 1, butterfly descent, ring walk — giving O(log n)
// expected path with O(1) linkage.
//
// Simplification: Viceroy's distributed level-selection and repair
// machinery is replaced by the idealized random level assignment it
// emulates; Table 1 compares routing shape, which this preserves.
type Butterfly struct {
	n      int
	levels int
	pos    []interval.Point // node ring positions
	lvl    []int            // node levels, 1-based
	// byLevel[l] lists node indices of level l sorted by position.
	byLevel [][]int
	sorted  []int // all nodes sorted by position (global ring)
	rank    []int // rank[i] = position of node i in sorted
}

// NewButterfly builds the overlay with n nodes.
func NewButterfly(n int, rng *rand.Rand) *Butterfly {
	levels := int(math.Max(1, math.Round(math.Log2(float64(n)))))
	b := &Butterfly{
		n:       n,
		levels:  levels,
		pos:     randomDistinctPoints(n, rng),
		lvl:     make([]int, n),
		byLevel: make([][]int, levels+1),
		rank:    make([]int, n),
	}
	for i := 0; i < n; i++ {
		b.lvl[i] = 1 + rng.IntN(levels)
		b.byLevel[b.lvl[i]] = append(b.byLevel[b.lvl[i]], i)
	}
	// Positions are already sorted (randomDistinctPoints sorts), so the
	// global ring is the index order and per-level lists are sorted too.
	b.sorted = make([]int, n)
	for i := range b.sorted {
		b.sorted[i] = i
		b.rank[i] = i
	}
	// Guard: if any level ended up empty (tiny n), reassign round-robin.
	for l := 1; l <= levels; l++ {
		if len(b.byLevel[l]) == 0 {
			for i := 0; i < n; i++ {
				b.byLevel[b.lvl[i]] = nil
			}
			for i := 0; i < n; i++ {
				b.lvl[i] = 1 + i%levels
				b.byLevel[b.lvl[i]] = append(b.byLevel[b.lvl[i]], i)
			}
			break
		}
	}
	return b
}

// Name implements Scheme.
func (b *Butterfly) Name() string { return "Viceroy(butterfly)" }

// N implements Scheme.
func (b *Butterfly) N() int { return b.n }

// MaxLinkage implements Scheme: up, down-left, down-right, ring succ/pred,
// level ring — constant.
func (b *Butterfly) MaxLinkage() int { return 6 }

// Owner implements Scheme: the node whose position is the clockwise
// predecessor of the key (cover convention, as in the DH construction).
func (b *Butterfly) Owner(key interval.Point) int {
	i := sort.Search(b.n, func(k int) bool { return b.pos[k] > key })
	if i == 0 {
		return b.n - 1
	}
	return i - 1
}

// nearestAtLevel returns the level-l node nearest to p (ring distance).
func (b *Butterfly) nearestAtLevel(l int, p interval.Point) int {
	lst := b.byLevel[l]
	i := sort.Search(len(lst), func(k int) bool { return b.pos[lst[k]] >= p })
	best, bestD := -1, uint64(0)
	for _, c := range []int{(i - 1 + len(lst)) % len(lst), i % len(lst)} {
		d := interval.RingDist(b.pos[lst[c]], p)
		if best == -1 || d < bestD {
			best, bestD = lst[c], d
		}
	}
	return best
}

// Lookup implements Scheme with the three-phase Viceroy routing.
func (b *Butterfly) Lookup(src int, key interval.Point, _ *rand.Rand) []int {
	tgt := b.Owner(key)
	path := []int{src}
	cur := src
	hop := func(next int) {
		if next != cur {
			path = append(path, next)
			cur = next
		}
	}
	// Phase 1: climb to level 1 via up-edges (nearest node one level up).
	for b.lvl[cur] > 1 {
		hop(b.nearestAtLevel(b.lvl[cur]-1, b.pos[cur]))
	}
	// Phase 2: butterfly descent. At level ℓ the two down-edges lead to the
	// level-(ℓ+1) nodes near pos and near pos + 2^-ℓ. Descent must stay
	// clockwise-BEHIND the key (it can only ever move forward), so the
	// rule compares clockwise gaps: prefer the candidate with the smaller
	// CW distance to the key among those still behind it; a candidate that
	// overshot (CW gap wrapped, > half circle) is chosen only if both
	// overshot, and then the least-ahead one. Descent runs to the bottom:
	// down-left makes progress in scale even without reducing distance.
	for b.lvl[cur] < b.levels {
		l := b.lvl[cur]
		stride := interval.Point(uint64(1) << (64 - uint(l)))
		left := b.nearestAtLevel(l+1, b.pos[cur])
		right := b.nearestAtLevel(l+1, b.pos[cur]+stride)
		cwL := interval.CWDist(b.pos[left], key)
		cwR := interval.CWDist(b.pos[right], key)
		next := left
		switch {
		case cwL < 1<<63 && cwR < 1<<63: // both behind: shrink the gap
			if cwR < cwL {
				next = right
			}
		case cwL >= 1<<63 && cwR >= 1<<63: // both ahead: least overshoot
			if cwR > cwL {
				next = right
			}
		case cwR < 1<<63: // only right is behind
			next = right
		}
		hop(next)
	}
	// Phase 3: greedy ring walk to the owner.
	for cur != tgt {
		var next int
		if interval.CWDist(b.pos[cur], key) <= interval.CWDist(key, b.pos[cur]) {
			next = (cur + 1) % b.n
		} else {
			next = (cur - 1 + b.n) % b.n
		}
		hop(next)
		if len(path) > 4*b.n {
			break // safety net; cannot trigger on a consistent ring
		}
	}
	return path
}
