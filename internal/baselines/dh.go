package baselines

import (
	"fmt"
	"math/rand/v2"

	"condisc/internal/dhgraph"
	"condisc/internal/interval"
	"condisc/internal/partition"
	"condisc/internal/route"
)

// DistanceHalving adapts this repository's own construction (§2) to the
// Scheme interface so Table 1 can measure it alongside the baselines.
type DistanceHalving struct {
	net  *route.Network
	fast bool
}

// NewDistanceHalving builds a DH network of n servers with Multiple Choice
// IDs and alphabet size delta. fast selects Fast Lookup (§2.2.1) instead of
// the randomized Distance Halving Lookup (§2.2.2).
func NewDistanceHalving(n int, delta uint64, fast bool, rng *rand.Rand) *DistanceHalving {
	ring := partition.Grow(partition.New(), n, partition.MultipleChooser(2), rng)
	return &DistanceHalving{net: route.NewNetwork(dhgraph.Build(ring, delta)), fast: fast}
}

// Name implements Scheme.
func (d *DistanceHalving) Name() string {
	return fmt.Sprintf("DistanceHalving(∆=%d)", d.net.G.Delta)
}

// N implements Scheme.
func (d *DistanceHalving) N() int { return d.net.G.N() }

// MaxLinkage implements Scheme.
func (d *DistanceHalving) MaxLinkage() int { return d.net.G.MaxDegree() }

// Owner implements Scheme.
func (d *DistanceHalving) Owner(key interval.Point) int { return d.net.G.CoverOf(key) }

// Lookup implements Scheme.
func (d *DistanceHalving) Lookup(src int, key interval.Point, rng *rand.Rand) []int {
	if d.fast {
		return d.net.FastLookup(src, key)
	}
	return d.net.DHLookup(src, key, rng)
}

// Network exposes the underlying metered network.
func (d *DistanceHalving) Network() *route.Network { return d.net }
