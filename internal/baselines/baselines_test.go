package baselines

import (
	"math"
	"math/rand/v2"
	"testing"

	"condisc/internal/interval"
)

// deliveryCheck runs random lookups and asserts every path ends at Owner.
func deliveryCheck(t *testing.T, s Scheme, trials int, rng *rand.Rand) {
	t.Helper()
	for i := 0; i < trials; i++ {
		src := rng.IntN(s.N())
		key := interval.Point(rng.Uint64())
		path := s.Lookup(src, key, rng)
		if len(path) == 0 || path[0] != src {
			t.Fatalf("%s: path must start at src", s.Name())
		}
		if got, want := path[len(path)-1], s.Owner(key); got != want {
			t.Fatalf("%s: lookup for %v ended at %d, owner is %d", s.Name(), key, got, want)
		}
	}
}

func TestChordDelivery(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	deliveryCheck(t, NewChord(512, rng), 2000, rng)
}

func TestChordPathAndLinkage(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	const n = 2048
	c := NewChord(n, rng)
	st := Measure(c, 4000, rng)
	logN := math.Log2(n)
	if st.AvgPath > logN || st.AvgPath < logN/4 {
		t.Errorf("Chord avg path %.2f, want ~(1/2)log n = %.1f", st.AvgPath, logN/2)
	}
	if float64(st.Linkage) > 2.5*logN || float64(st.Linkage) < logN/2 {
		t.Errorf("Chord linkage %d, want ~log n = %.0f", st.Linkage, logN)
	}
}

func TestPrefixDelivery(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	deliveryCheck(t, NewPrefix(512, rng), 2000, rng)
}

func TestPrefixPathLength(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	const n = 4096
	p := NewPrefix(n, rng)
	st := Measure(p, 4000, rng)
	log16 := math.Log2(n) / 4
	if st.AvgPath > 2*log16+2 {
		t.Errorf("prefix avg path %.2f, want ~log16 n = %.1f", st.AvgPath, log16)
	}
	if st.MaxPath > 17 {
		t.Errorf("prefix max path %d > 16 digits + surrogate", st.MaxPath)
	}
}

func TestCANDelivery(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	deliveryCheck(t, NewCAN(512, 2, rng), 2000, rng)
	deliveryCheck(t, NewCAN(512, 3, rng), 2000, rng)
}

func TestCANPathScalesAsRoot(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	const n = 4096
	c2 := NewCAN(n, 2, rng)
	st := Measure(c2, 4000, rng)
	// Expected path for d=2: 2 · (k/4) = k/2 = 32 for k=64.
	k := math.Sqrt(float64(c2.N()))
	if st.AvgPath < k/4 || st.AvgPath > k {
		t.Errorf("CAN d=2 avg path %.1f, want ~k/2 = %.1f", st.AvgPath, k/2)
	}
	if c2.MaxLinkage() != 4 {
		t.Errorf("CAN d=2 linkage %d, want 4", c2.MaxLinkage())
	}
}

func TestSmallWorldDelivery(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	deliveryCheck(t, NewSmallWorld(512, rng), 2000, rng)
}

func TestSmallWorldPolylogPath(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	const n = 4096
	s := NewSmallWorld(n, rng)
	st := Measure(s, 3000, rng)
	log2N := math.Log2(n) * math.Log2(n)
	if st.AvgPath > log2N {
		t.Errorf("small world avg path %.1f > log² n = %.0f", st.AvgPath, log2N)
	}
	// And it must be far below the Θ(n) ring walk.
	if st.AvgPath > float64(n)/8 {
		t.Errorf("small world path %.1f looks linear", st.AvgPath)
	}
	if s.MaxLinkage() != 3 {
		t.Errorf("small world linkage %d, want 3", s.MaxLinkage())
	}
}

func TestButterflyDelivery(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	deliveryCheck(t, NewButterfly(512, rng), 2000, rng)
}

func TestButterflyLogPathConstantDegree(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	const n = 4096
	b := NewButterfly(n, rng)
	st := Measure(b, 3000, rng)
	logN := math.Log2(n)
	if st.AvgPath > 6*logN {
		t.Errorf("butterfly avg path %.1f > O(log n) = %.0f", st.AvgPath, logN)
	}
	if b.MaxLinkage() > 8 {
		t.Errorf("butterfly linkage %d should be constant", b.MaxLinkage())
	}
}

func TestDistanceHalvingDelivery(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	deliveryCheck(t, NewDistanceHalving(512, 2, true, rng), 1000, rng)
	deliveryCheck(t, NewDistanceHalving(512, 2, false, rng), 1000, rng)
	deliveryCheck(t, NewDistanceHalving(512, 8, true, rng), 1000, rng)
}

// TestTableOneShape is the headline comparison: with matching n, the
// schemes' measured path lengths and linkages reproduce Table 1's ordering.
func TestTableOneShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	const n = 2048
	const lookups = 3000
	chord := Measure(NewChord(n, rng), lookups, rng)
	can := Measure(NewCAN(n, 2, rng), lookups, rng)
	sw := Measure(NewSmallWorld(n, rng), lookups, rng)
	bf := Measure(NewButterfly(n, rng), lookups, rng)
	dh2 := Measure(NewDistanceHalving(n, 2, true, rng), lookups, rng)
	dh16 := Measure(NewDistanceHalving(n, 16, true, rng), lookups, rng)

	// CAN's n^(1/2) path dwarfs the log-with-small-constant schemes.
	for _, log := range []Stats{chord, dh2, dh16} {
		if can.AvgPath < 2*log.AvgPath {
			t.Errorf("CAN path %.1f should far exceed %s path %.1f",
				can.AvgPath, log.Scheme, log.AvgPath)
		}
	}
	// Small world pays log² n: noticeably above Chord.
	if sw.AvgPath < chord.AvgPath {
		t.Errorf("small world path %.1f should exceed Chord %.1f", sw.AvgPath, chord.AvgPath)
	}
	// DH with ∆=16 beats DH with ∆=2 on path length (Thm 2.13 tradeoff).
	if dh16.AvgPath >= dh2.AvgPath {
		t.Errorf("DH ∆=16 path %.1f should beat ∆=2 path %.1f", dh16.AvgPath, dh2.AvgPath)
	}
	// Constant-degree schemes: butterfly and DH(∆=2) linkage far below
	// Chord's log n.
	if bf.Linkage >= chord.Linkage || dh2.Linkage >= chord.Linkage {
		t.Errorf("constant-degree schemes should have smaller linkage than Chord: bf=%d dh=%d chord=%d",
			bf.Linkage, dh2.Linkage, chord.Linkage)
	}
}

// TestMeasureCongestionNormalization: for Chord, congestion should be
// within a small constant of (log n)/n, i.e. NormCong = O(1).
// TestGrowthRates distinguishes the asymptotic families: quadrupling n
// roughly doubles CAN's (d=2) path but increases logarithmic schemes'
// paths only marginally — the crossover structure of Table 1.
func TestGrowthRates(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 21))
	const small, big = 1024, 4096
	const lookups = 2000
	ratio := func(mk func(n int) Scheme) float64 {
		a := Measure(mk(small), lookups, rng)
		b := Measure(mk(big), lookups, rng)
		return b.AvgPath / a.AvgPath
	}
	if r := ratio(func(n int) Scheme { return NewCAN(n, 2, rng) }); r < 1.6 {
		t.Errorf("CAN growth ratio %.2f, want ~2 (path ~ sqrt n)", r)
	}
	for _, mk := range []struct {
		name string
		f    func(n int) Scheme
	}{
		{"chord", func(n int) Scheme { return NewChord(n, rng) }},
		{"butterfly", func(n int) Scheme { return NewButterfly(n, rng) }},
		{"dh", func(n int) Scheme { return NewDistanceHalving(n, 2, true, rng) }},
	} {
		if r := ratio(mk.f); r > 1.45 {
			t.Errorf("%s growth ratio %.2f, want ~log(4n)/log(n) ≈ 1.2", mk.name, r)
		}
	}
}

func TestMeasureCongestionNormalization(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	const n = 1024
	st := Measure(NewChord(n, rng), 8*n, rng)
	if st.NormCong > 16 {
		t.Errorf("Chord normalized congestion %.1f, want O(1)", st.NormCong)
	}
	if st.NormCong < 0.1 {
		t.Errorf("normalized congestion %.2f implausibly low", st.NormCong)
	}
}

func TestCANPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCAN(100, 0, rand.New(rand.NewPCG(14, 14)))
}

func TestKademliaDelivery(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 15))
	deliveryCheck(t, NewKademlia(512, rng), 2000, rng)
}

func TestKademliaLogPathAndLinkage(t *testing.T) {
	rng := rand.New(rand.NewPCG(16, 16))
	const n = 4096
	k := NewKademlia(n, rng)
	st := Measure(k, 3000, rng)
	logN := math.Log2(n)
	if st.AvgPath > logN {
		t.Errorf("Kademlia avg path %.2f, want ~(1/2)log n = %.1f", st.AvgPath, logN/2)
	}
	if st.AvgPath < 2 {
		t.Errorf("Kademlia avg path %.2f implausibly short", st.AvgPath)
	}
	if float64(st.Linkage) > 2.5*logN || float64(st.Linkage) < logN/2 {
		t.Errorf("Kademlia linkage %d, want ~log n = %.0f", st.Linkage, logN)
	}
}

// TestKademliaXORMonotone: every hop strictly decreases XOR distance to
// the key (until the final owner hop) — the defining Kademlia invariant.
func TestKademliaXORMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 17))
	k := NewKademlia(1024, rng)
	for trial := 0; trial < 500; trial++ {
		key := interval.Point(rng.Uint64())
		path := k.Lookup(rng.IntN(1024), key, rng)
		for j := 1; j < len(path)-1; j++ {
			dPrev := uint64(k.ids[path[j-1]]) ^ uint64(key)
			dCur := uint64(k.ids[path[j]]) ^ uint64(key)
			if dCur >= dPrev {
				t.Fatalf("XOR distance did not decrease at hop %d", j)
			}
		}
	}
}
