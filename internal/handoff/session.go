package handoff

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"condisc/internal/interval"
)

// SessionState is the sender-side lifecycle of a transfer.
type SessionState int32

const (
	// StateUnknown: no such session (never prepared, expired, or aborted).
	// A receiver probing an unknown session must treat the sender as the
	// owner and abort its own side.
	StateUnknown SessionState = iota
	// StateStreaming: prepared; the range is fenced against writes and
	// the sender still owns it.
	StateStreaming
	// StateCommitted: the sender deleted the range and flipped ownership;
	// the receiver is the owner even if it has not finished cleaning up.
	StateCommitted
)

func (s SessionState) String() string {
	switch s {
	case StateStreaming:
		return "streaming"
	case StateCommitted:
		return "committed"
	default:
		return "unknown"
	}
}

// Session is one sender-side transfer. Seg is the moving range; Meta is
// caller state carried to commit time (the p2p node stores the peer's
// ring identity there). The session owns a done channel closed at commit
// or abort, so a sender that must outlive its RPC (a leaver waiting for
// its predecessor to pull the stream) can block on the outcome.
type Session struct {
	ID       uint64
	Seg      interval.Segment
	Peer     string
	Meta     any
	state    atomic.Int32
	deadline atomic.Int64 // unixnano; refreshed by activity
	done     chan struct{}
	doneOnce sync.Once
}

// State returns the session's current state.
func (s *Session) State() SessionState { return SessionState(s.state.Load()) }

// Done is closed when the session commits or aborts; check State after.
func (s *Session) Done() <-chan struct{} { return s.done }

func (s *Session) finish(st SessionState) {
	s.state.Store(int32(st))
	s.doneOnce.Do(func() { close(s.done) })
}

// Sessions is a sender's registry of active transfers. It enforces the
// write fence (Fenced), refuses overlapping prepares, and lazily expires
// sessions whose receiver went silent past the TTL — an expired streaming
// session aborts (the sender keeps the range), so an abandoned receiver
// can never wedge the sender's writes forever.
type Sessions struct {
	ttl time.Duration
	now func() time.Time // injected clock; wall time in production
	mu  sync.Mutex
	m   map[uint64]*Session
}

// DefaultTTL is the receiver-silence deadline after which a sender
// unilaterally aborts a streaming session.
const DefaultTTL = 30 * time.Second

// NewSessions returns a registry with the given receiver-silence TTL
// (DefaultTTL if d <= 0).
func NewSessions(d time.Duration) *Sessions {
	if d <= 0 {
		d = DefaultTTL
	}
	// The registry reads the clock only through ss.now, so this is the
	// single wall-clock source of the session machinery.
	//condisc:wallclock receiver-silence TTLs measure real elapsed time across processes; churntest's in-process path never lets a session expire, and tests may override the clock with SetClock
	return &Sessions{ttl: d, now: time.Now, m: map[uint64]*Session{}}
}

// SetClock overrides the registry's time source (tests only: expiry can
// be driven without sleeping). Not safe concurrently with use.
func (ss *Sessions) SetClock(now func() time.Time) { ss.now = now }

// expireLocked drops sessions past their deadline: streaming ones abort
// (ownership stays with the sender), committed ones are garbage-collected
// (their outcome is already durable; a very late status probe reads
// unknown, which the receiver resolves against the ring).
func (ss *Sessions) expireLocked(now time.Time) {
	for id, s := range ss.m {
		if now.UnixNano() > s.deadline.Load() {
			if s.State() == StateStreaming {
				s.finish(StateUnknown)
			}
			delete(ss.m, id)
		}
	}
}

// Prepare opens a session for seg. It refuses a zero or duplicate id and
// any seg overlapping an active session's range — one range, one mover.
func (ss *Sessions) Prepare(id uint64, seg interval.Segment, peer string, meta any) (*Session, error) {
	if id == 0 {
		return nil, fmt.Errorf("handoff: session id must be nonzero")
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	now := ss.now()
	ss.expireLocked(now)
	if _, ok := ss.m[id]; ok {
		return nil, fmt.Errorf("handoff: session %x already exists", id)
	}
	for _, s := range ss.m {
		if s.State() == StateStreaming && s.Seg.Overlaps(seg) {
			return nil, fmt.Errorf("handoff: range %v is mid-handoff (session %x)", seg, s.ID)
		}
	}
	s := &Session{ID: id, Seg: seg, Peer: peer, Meta: meta, done: make(chan struct{})}
	s.state.Store(int32(StateStreaming))
	s.deadline.Store(now.Add(ss.ttl).UnixNano())
	ss.m[id] = s
	return s, nil
}

// Get returns the session if it is still streaming, refreshing its
// deadline (stream activity keeps a session alive).
func (ss *Sessions) Get(id uint64) (*Session, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	now := ss.now()
	ss.expireLocked(now)
	s, ok := ss.m[id]
	if !ok || s.State() != StateStreaming {
		return nil, false
	}
	s.deadline.Store(now.Add(ss.ttl).UnixNano())
	return s, true
}

// Touch refreshes a session's deadline (called per streamed frame).
func (ss *Sessions) Touch(s *Session) {
	s.deadline.Store(ss.now().Add(ss.ttl).UnixNano())
}

// Fenced reports whether p lies in the range of an active (streaming)
// session: a write there would be invisible to a cursor already past it
// and silently lost at commit, so the caller must refuse it.
func (ss *Sessions) Fenced(p interval.Point) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.expireLocked(ss.now())
	for _, s := range ss.m {
		if s.State() == StateStreaming && s.Seg.Contains(p) {
			return true
		}
	}
	return false
}

// Streaming returns the currently streaming sessions, ordered by id so
// callers iterate deterministically. Multiple sessions over disjoint
// ranges may stream at once; the p2p node uses this to bound a new
// join's range at the nearest already-fenced range instead of refusing
// the join.
func (ss *Sessions) Streaming() []*Session {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.expireLocked(ss.now())
	var out []*Session
	for _, s := range ss.m {
		if s.State() == StateStreaming {
			out = append(out, s)
		}
	}
	slices.SortFunc(out, func(a, b *Session) int { return cmp.Compare(a.ID, b.ID) })
	return out
}

// Active returns the number of streaming sessions.
func (ss *Sessions) Active() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.expireLocked(ss.now())
	n := 0
	for _, s := range ss.m {
		if s.State() == StateStreaming {
			n++
		}
	}
	return n
}

// Commit transitions a streaming session to committed and returns it; ok
// is false if the session is unknown, expired, or already resolved — the
// caller must NOT flip ownership then. The caller performs its durable
// range delete and pointer flip in the same critical section that calls
// Commit, making the sender's commit point atomic with the state change.
func (ss *Sessions) Commit(id uint64) (*Session, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.expireLocked(ss.now())
	s, ok := ss.m[id]
	if !ok || s.State() != StateStreaming {
		return nil, false
	}
	// A committed session is kept far past the streaming TTL: a receiver
	// that crashed after the commit landed must still read "committed"
	// (not "unknown") when it restarts and probes, or it would abort a
	// range it now owns. 100× the receiver-silence TTL bounds the leak.
	s.deadline.Store(ss.now().Add(100 * ss.ttl).UnixNano())
	s.finish(StateCommitted)
	return s, true
}

// Abort resolves a streaming session as failed: the fence lifts and the
// sender remains the owner. Aborting an unknown or committed session is a
// no-op (commit wins).
func (ss *Sessions) Abort(id uint64) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if s, ok := ss.m[id]; ok && s.State() == StateStreaming {
		s.finish(StateUnknown)
		delete(ss.m, id)
	}
}

// Status reports a session's state for a receiver probe: streaming and
// committed are reported as such; everything else is unknown.
func (ss *Sessions) Status(id uint64) SessionState {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.expireLocked(ss.now())
	s, ok := ss.m[id]
	if !ok {
		return StateUnknown
	}
	return s.State()
}
