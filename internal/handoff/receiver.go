package handoff

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"condisc/internal/interval"
	"condisc/internal/store"
)

// Receiver is the receiving half of a transfer: a staging store the
// incoming chunks are appended to, plus (when disk-backed) a durable
// manifest that makes the session replayable across a receiver crash.
// Items enter the receiver's live store only at Promote, and Promote runs
// BEFORE the sender is asked to commit — so at every instant each item of
// the range is durable in the sender's store, the staging store, or the
// live store (often two of them; never none).
type Receiver struct {
	ID     uint64
	Role   string // RoleJoin or RoleLeave
	Seg    interval.Segment
	Sender string
	Meta   map[string]string

	dir     string // "" = in-memory staging (no manifest, not recoverable)
	staging store.Store
	state   string
}

// Receiver roles: a join pulls a split range from the segment's owner; a
// leave pulls the leaver's whole segment into its ring predecessor.
const (
	RoleJoin  = "join"
	RoleLeave = "leave"
)

// Receiver states recorded in the manifest. The transition to
// StagePromoting is durable BEFORE the first staged item can reach the
// live store, so a recovering receiver knows whether the live store may
// hold a partial promotion (re-promoting is idempotent: same keys, same
// values).
const (
	StageStreaming = "streaming"
	StagePromoting = "promoting"
)

const manifestName = "manifest.json"

type manifest struct {
	Session  uint64            `json:"session"`
	Role     string            `json:"role"`
	SegStart uint64            `json:"seg_start"`
	SegLen   uint64            `json:"seg_len"`
	Sender   string            `json:"sender"`
	State    string            `json:"state"`
	Meta     map[string]string `json:"meta,omitempty"`
}

// Begin opens a receiver for one session. dir selects the staging engine:
// "" stages in memory (a crash discards the session — fine for mem-backed
// nodes, whose live items die with the process anyway); otherwise a WAL
// staging store plus manifest are created in dir, making the session
// recoverable with Recover.
func Begin(dir string, id uint64, role string, seg interval.Segment, sender string, meta map[string]string) (*Receiver, error) {
	r := &Receiver{ID: id, Role: role, Seg: seg, Sender: sender, Meta: meta, dir: dir, state: StageStreaming}
	if dir == "" {
		r.staging = store.NewMem()
		return r, nil
	}
	s, err := store.OpenLog(dir, store.LogOptions{})
	if err != nil {
		return nil, err
	}
	r.staging = s
	if err := r.writeManifest(); err != nil {
		s.Close()
		return nil, err
	}
	return r, nil
}

// Recover reopens a crashed receiver from its staging directory. The
// staged items (every chunk acknowledged by the WAL before the crash) and
// the manifest state come back; the caller decides — by probing the
// sender's session status — whether to resume streaming, finish
// promoting, or abort.
func Recover(dir string) (*Receiver, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("handoff: corrupt manifest in %s: %w", dir, err)
	}
	if m.Session == 0 || (m.Role != RoleJoin && m.Role != RoleLeave) {
		return nil, fmt.Errorf("handoff: invalid manifest in %s", dir)
	}
	s, err := store.OpenLog(dir, store.LogOptions{})
	if err != nil {
		return nil, err
	}
	return &Receiver{
		ID:     m.Session,
		Role:   m.Role,
		Seg:    interval.Segment{Start: interval.Point(m.SegStart), Len: m.SegLen},
		Sender: m.Sender, Meta: m.Meta,
		dir: dir, staging: s, state: m.State,
	}, nil
}

func (r *Receiver) writeManifest() error {
	m := manifest{
		Session: r.ID, Role: r.Role,
		SegStart: uint64(r.Seg.Start), SegLen: r.Seg.Len,
		Sender: r.Sender, State: r.state, Meta: r.Meta,
	}
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	// Write-sync-close-rename: the rename may survive a crash that the
	// unsynced data did not, and a manifest whose STATE field reads
	// "promoting" is the receiver's commit record — recovery trusts it
	// to decide whether the live store may hold a partial promotion, so
	// it must be durable before it replaces the old manifest.
	tmp := filepath.Join(r.dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(r.dir, manifestName))
}

// State returns the receiver's manifest state.
func (r *Receiver) State() string { return r.state }

// Staged returns how many items are currently staged.
func (r *Receiver) Staged() int { return r.staging.Len() }

// Apply stages one chunk. On a WAL staging store the items are durable
// when Apply returns — the resume point after a crash is wherever the
// last acknowledged chunk ended.
func (r *Receiver) Apply(items []store.Item) error {
	for _, it := range items {
		if err := r.staging.Put(it.Point, it.Key, it.Value); err != nil {
			return err
		}
	}
	return nil
}

// ResumeAfter returns the last staged position in ring order — the
// stream is ordered, so the staged items form a prefix and the next
// connection asks the sender to continue strictly after this position.
// ok is false when nothing is staged yet.
func (r *Receiver) ResumeAfter() (p interval.Point, key string, ok bool, err error) {
	cur := r.staging.Cursor(r.Seg)
	defer cur.Close()
	for {
		items, err := cur.Next(batchItems)
		if err != nil {
			return 0, "", false, err
		}
		if items == nil {
			return p, key, ok, nil
		}
		last := items[len(items)-1]
		p, key, ok = last.Point, last.Key, true
	}
}

// MarkPromoting durably records that staged items may start reaching the
// live store. Must be called (and acknowledged) before Promote.
func (r *Receiver) MarkPromoting() error {
	r.state = StagePromoting
	if r.dir == "" {
		return nil
	}
	return r.writeManifest()
}

// Promote moves the staged items into the live store, draining staging.
// It is idempotent under replay: a crash mid-promote leaves some items in
// both stores, and re-promoting overwrites them with identical values.
func (r *Receiver) Promote(live store.Store) error {
	if r.state != StagePromoting {
		if err := r.MarkPromoting(); err != nil {
			return err
		}
	}
	return live.MergeFrom(r.staging)
}

// Abort rolls the receiver back to "never happened": staged items are
// discarded, and if promotion had begun the range is deleted from the
// live store (the sender never committed, so it still owns every one of
// those items). live may be nil when the receiver never promoted.
func (r *Receiver) Abort(live store.Store) error {
	if r.state == StagePromoting && live != nil {
		if err := live.DeleteRange(r.Seg); err != nil {
			return err
		}
	}
	return r.discard()
}

// Finish destroys the staging store and manifest after a completed
// session (items promoted, sender committed).
func (r *Receiver) Finish() error { return r.discard() }

func (r *Receiver) discard() error {
	if err := store.Destroy(r.staging); err != nil {
		return err
	}
	if r.dir == "" {
		return nil
	}
	return os.RemoveAll(r.dir)
}
