package handoff

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"condisc/internal/interval"
	"condisc/internal/store"
)

// Wire format of a handoff stream: a sequence of CRC-framed chunks,
// mirroring the WAL record framing of internal/store so the same
// torn/corrupt-tail reasoning applies:
//
//	u32 bodyLen | u32 crc32(body) | body
//
// bodies:
//
//	ftItems: u8 ft | u32 count | count × (u64 point | u32 klen | key | u32 vlen | value)
//	ftEOF:   u8 ft | u64 count | u64 sum     (items and checksum of this connection)
//	ftErr:   u8 ft | message                 (remote refusal, e.g. unknown session)
//
// A stream is ftItems* followed by exactly one ftEOF (or ftErr at any
// point). The EOF's count/sum cover the items sent on this connection —
// a resumed connection restarts both — so the receiver verifies every
// connection independently.
const (
	ftItems byte = 1
	ftEOF   byte = 2
	ftErr   byte = 3

	frameHeader = 8 // u32 bodyLen + u32 crc

	// MaxFrameBody bounds a decoded frame body. The decoder rejects
	// larger claims before allocating, so a corrupt length field cannot
	// allocate gigabytes; senders must keep chunk budgets comfortably
	// below it.
	MaxFrameBody = 8 << 20
)

// Frame is one decoded stream frame.
type Frame struct {
	Type  byte
	Items []store.Item // ftItems
	Count uint64       // ftEOF: items streamed on this connection
	Sum   uint64       // ftEOF: order-sensitive checksum of those items
	Err   string       // ftErr
}

// sumItems folds items into the rolling order-sensitive FNV-1a checksum
// both ends of a stream maintain; length prefixes keep the encoding
// prefix-free so distinct item sequences cannot collide trivially.
func sumItems(sum uint64, items []store.Item) uint64 {
	if sum == 0 {
		sum = 14695981039346656037
	}
	var b [8]byte
	mix := func(p []byte) {
		for _, c := range p {
			sum ^= uint64(c)
			sum *= 1099511628211
		}
	}
	for _, it := range items {
		binary.LittleEndian.PutUint64(b[:], uint64(it.Point))
		mix(b[:])
		binary.LittleEndian.PutUint64(b[:], uint64(len(it.Key)))
		mix(b[:])
		mix([]byte(it.Key))
		binary.LittleEndian.PutUint64(b[:], uint64(len(it.Value)))
		mix(b[:])
		mix(it.Value)
	}
	return sum
}

// frame wraps a body in the length+CRC header.
func frame(body []byte) []byte {
	buf := make([]byte, frameHeader+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(body))
	copy(buf[frameHeader:], body)
	return buf
}

// encodeItems encodes one ftItems frame.
func encodeItems(items []store.Item) []byte {
	n := 5
	for _, it := range items {
		n += 8 + 4 + len(it.Key) + 4 + len(it.Value)
	}
	body := make([]byte, n)
	body[0] = ftItems
	binary.LittleEndian.PutUint32(body[1:5], uint32(len(items)))
	off := 5
	for _, it := range items {
		binary.LittleEndian.PutUint64(body[off:], uint64(it.Point))
		binary.LittleEndian.PutUint32(body[off+8:], uint32(len(it.Key)))
		off += 12
		off += copy(body[off:], it.Key)
		binary.LittleEndian.PutUint32(body[off:], uint32(len(it.Value)))
		off += 4
		off += copy(body[off:], it.Value)
	}
	return frame(body)
}

// encodeEOF encodes the ftEOF frame.
func encodeEOF(count, sum uint64) []byte {
	body := make([]byte, 17)
	body[0] = ftEOF
	binary.LittleEndian.PutUint64(body[1:9], count)
	binary.LittleEndian.PutUint64(body[9:17], sum)
	return frame(body)
}

// EncodeError encodes an ftErr frame (a remote refusal the receiver
// surfaces as a non-retryable error).
func EncodeError(msg string) []byte {
	body := make([]byte, 1+len(msg))
	body[0] = ftErr
	copy(body[1:], msg)
	return frame(body)
}

// ReadFrame decodes one frame. It returns io.EOF only at a clean frame
// boundary; a torn header or body, a CRC mismatch, an oversized length
// claim, or a malformed body all return a descriptive error. Item keys
// and values alias the decoded body buffer.
func ReadFrame(br *bufio.Reader) (Frame, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("handoff: torn frame header: %w", err)
	}
	bodyLen := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if bodyLen == 0 || bodyLen > MaxFrameBody {
		return Frame{}, fmt.Errorf("handoff: frame length %d out of range", bodyLen)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(br, body); err != nil {
		return Frame{}, fmt.Errorf("handoff: torn frame body: %w", err)
	}
	if crc32.ChecksumIEEE(body) != crc {
		return Frame{}, fmt.Errorf("handoff: frame CRC mismatch")
	}
	return decodeBody(body)
}

func decodeBody(body []byte) (Frame, error) {
	switch body[0] {
	case ftItems:
		if len(body) < 5 {
			return Frame{}, fmt.Errorf("handoff: short items frame")
		}
		count := int(binary.LittleEndian.Uint32(body[1:5]))
		// Each item needs ≥ 16 bytes; reject count claims the body cannot
		// hold before allocating the slice.
		if count < 0 || count > (len(body)-5)/16 {
			return Frame{}, fmt.Errorf("handoff: item count %d exceeds frame", count)
		}
		items := make([]store.Item, 0, count)
		off := 5
		for i := 0; i < count; i++ {
			if len(body)-off < 12 {
				return Frame{}, fmt.Errorf("handoff: truncated item %d", i)
			}
			p := interval.Point(binary.LittleEndian.Uint64(body[off:]))
			klen := int(binary.LittleEndian.Uint32(body[off+8:]))
			off += 12
			if klen < 0 || len(body)-off < klen+4 {
				return Frame{}, fmt.Errorf("handoff: truncated key in item %d", i)
			}
			key := string(body[off : off+klen])
			off += klen
			vlen := int(binary.LittleEndian.Uint32(body[off:]))
			off += 4
			if vlen < 0 || len(body)-off < vlen {
				return Frame{}, fmt.Errorf("handoff: truncated value in item %d", i)
			}
			items = append(items, store.Item{Point: p, Key: key, Value: body[off : off+vlen : off+vlen]})
			off += vlen
		}
		if off != len(body) {
			return Frame{}, fmt.Errorf("handoff: %d trailing bytes in items frame", len(body)-off)
		}
		return Frame{Type: ftItems, Items: items}, nil
	case ftEOF:
		if len(body) != 17 {
			return Frame{}, fmt.Errorf("handoff: malformed EOF frame")
		}
		return Frame{
			Type:  ftEOF,
			Count: binary.LittleEndian.Uint64(body[1:9]),
			Sum:   binary.LittleEndian.Uint64(body[9:17]),
		}, nil
	case ftErr:
		return Frame{Type: ftErr, Err: string(body[1:])}, nil
	default:
		return Frame{}, fmt.Errorf("handoff: unknown frame type %d", body[0])
	}
}

// Stream drains cur into w as a framed chunk stream: cursor batches are
// accumulated until the chunk budget is reached, flushed as one ftItems
// frame, and finished with an ftEOF carrying the connection's item count
// and checksum. Memory held at any instant is one pending batch set plus
// one encoded frame — O(chunkBytes), never O(range). tick, if non-nil, is
// called after every flushed frame (deadline extension, session
// keep-alive, progress hooks).
func Stream(w io.Writer, cur store.Cursor, chunkBytes int, tick func()) (count, sum uint64, err error) {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	var pending []store.Item
	var pendingBytes int64
	// Whatever is still accounted when we return — the not-yet-emitted
	// tail on a cursor or write error — is released here, so a failed
	// stream cannot permanently inflate the watermark gauge.
	defer func() { transferMem.release(pendingBytes) }()
	// emit writes pending[:cut] as one frame and drops it from pending.
	emit := func(cut int, cutBytes int64) error {
		buf := encodeItems(pending[:cut])
		transferMem.add(int64(len(buf)))
		_, werr := w.Write(buf)
		transferMem.release(int64(len(buf)) + cutBytes)
		count += uint64(cut)
		sum = sumItems(sum, pending[:cut])
		pending = pending[cut:]
		pendingBytes -= cutBytes
		if werr != nil {
			return fmt.Errorf("handoff: stream write: %w", werr)
		}
		if tick != nil {
			tick()
		}
		return nil
	}
	for {
		items, err := cur.Next(batchItems)
		if err != nil {
			return count, sum, err
		}
		if items == nil {
			break
		}
		transferMem.add(itemBytes(items))
		pending = append(pending, items...)
		pendingBytes += itemBytes(items)
		// Carve budget-sized frames — even when one cursor batch exceeds
		// the budget, no frame (and no receiver allocation) outgrows it
		// by more than one item.
		for pendingBytes >= int64(chunkBytes) {
			cut, cutBytes := 0, int64(0)
			for cut < len(pending) && cutBytes < int64(chunkBytes) {
				cutBytes += 8 + int64(len(pending[cut].Key)) + int64(len(pending[cut].Value))
				cut++
			}
			if err := emit(cut, cutBytes); err != nil {
				return count, sum, err
			}
		}
	}
	if len(pending) > 0 {
		if err := emit(len(pending), pendingBytes); err != nil {
			return count, sum, err
		}
	}
	if _, err := w.Write(encodeEOF(count, sum)); err != nil {
		return count, sum, fmt.Errorf("handoff: stream EOF write: %w", err)
	}
	return count, sum, nil
}

// ReadStream consumes one connection's frames, calling apply for each
// items chunk, until the EOF frame, whose count and checksum must match
// what was applied. A remote ftErr is returned as a *RemoteError (non-
// retryable: the sender refused the session, reconnecting cannot help).
// tick, if non-nil, runs before each frame read (deadline extension).
func ReadStream(br *bufio.Reader, apply func([]store.Item) error, tick func()) (count uint64, err error) {
	var sum uint64
	for {
		if tick != nil {
			tick()
		}
		f, err := ReadFrame(br)
		if err != nil {
			if err == io.EOF {
				return count, fmt.Errorf("handoff: stream ended without EOF frame")
			}
			return count, err
		}
		switch f.Type {
		case ftItems:
			b := itemBytes(f.Items)
			transferMem.add(b)
			aerr := apply(f.Items)
			transferMem.release(b)
			if aerr != nil {
				return count, aerr
			}
			count += uint64(len(f.Items))
			sum = sumItems(sum, f.Items)
		case ftEOF:
			if f.Count != count || f.Sum != sum {
				return count, fmt.Errorf("handoff: stream verification failed: got %d items sum %x, sender sent %d sum %x",
					count, sum, f.Count, f.Sum)
			}
			return count, nil
		case ftErr:
			return count, &RemoteError{Msg: f.Err}
		}
	}
}

// RemoteError is a sender-side refusal delivered in-stream (unknown or
// expired session, store failure). It is terminal for the connection AND
// the session: retrying the same session cannot succeed.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "handoff: sender refused: " + e.Msg }
