package handoff

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"testing"

	"condisc/internal/interval"
	"condisc/internal/store"
)

// FuzzHandoffFrames mirrors FuzzLogstoreRecovery for the chunk-frame
// decoder: build a valid stream from a fuzzer-chosen op script, damage it
// (truncation or a bit flip, also fuzzer-chosen), and decode. The decoder
// must never panic and never over-allocate on a corrupt length claim;
// frames before the damage point must decode to exactly what was encoded,
// and an undamaged stream must verify end-to-end through ReadStream.
func FuzzHandoffFrames(f *testing.F) {
	f.Add([]byte{1, 4, 2, 8, 3, 1, 9, 200}, uint16(0))
	f.Add([]byte{0, 1, 0, 1, 2, 1, 12, 7}, uint16(5))
	f.Add([]byte{3, 0, 0, 3, 1, 1, 0, 2}, uint16(300))
	f.Add([]byte{255, 255, 255, 255}, uint16(9))
	f.Fuzz(func(t *testing.T, script []byte, damage uint16) {
		// Build a reference stream: frames of script-derived items, then
		// an EOF with the running count/sum.
		var wire bytes.Buffer
		var frames [][]store.Item
		var count, sum uint64
		for i := 0; i+1 < len(script); i += 2 {
			nitems := int(script[i])%5 + 1
			items := make([]store.Item, nitems)
			for j := range items {
				items[j] = store.Item{
					Point: interval.Point(uint64(script[i+1])<<56 + uint64(i)<<8 + uint64(j)),
					Key:   fmt.Sprintf("k%d.%d", i, j),
					Value: bytes.Repeat([]byte{script[i+1]}, int(script[i])%32),
				}
			}
			wire.Write(encodeItems(items))
			frames = append(frames, items)
			count += uint64(len(items))
			sum = sumItems(sum, items)
		}
		wire.Write(encodeEOF(count, sum))

		// An undamaged stream must verify exactly.
		applied := 0
		n, err := ReadStream(bufio.NewReader(bytes.NewReader(wire.Bytes())), func(items []store.Item) error {
			for _, it := range items {
				want := frames[0][0]
				if it.Point == want.Point && it.Key == want.Key && bytes.Equal(it.Value, want.Value) {
					frames[0] = frames[0][1:]
					if len(frames[0]) == 0 {
						frames = frames[1:]
					}
				} else {
					return fmt.Errorf("frame item diverged: %v vs %v", it, want)
				}
				applied++
			}
			return nil
		}, nil)
		if err != nil || n != count || applied != int(count) {
			t.Fatalf("clean stream failed verification: n=%d applied=%d err=%v", n, applied, err)
		}

		// Damage the wire bytes: odd = truncate, even = flip one bit.
		raw := wire.Bytes()
		if damage != 0 && len(raw) > 0 {
			if damage%2 == 1 {
				raw = raw[:len(raw)-min(int(damage)%len(raw)+1, len(raw))]
			} else {
				raw = append([]byte(nil), raw...)
				raw[int(damage)%len(raw)] ^= 1 << (damage % 8)
			}
		}

		// Decoding damaged input must never panic; every frame either
		// decodes (CRC happened to survive — only possible for the flip
		// landing in already-read bytes? no: treat any successful decode
		// as fine) or errors cleanly. Run to first error or EOF.
		br := bufio.NewReader(bytes.NewReader(raw))
		for {
			fr, err := ReadFrame(br)
			if err != nil {
				break // clean EOF or a detected corruption — both fine
			}
			if fr.Type == ftItems {
				// Decoded items must be internally consistent.
				for _, it := range fr.Items {
					_ = it.Key
					if len(it.Value) > MaxFrameBody {
						t.Fatalf("decoded value larger than any frame body")
					}
				}
			}
			if fr.Type == ftEOF || fr.Type == ftErr {
				continue
			}
		}

		// A huge length claim must be rejected before allocation.
		var evil bytes.Buffer
		evil.Write([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
		if _, err := ReadFrame(bufio.NewReader(&evil)); err == nil ||
			!strings.Contains(err.Error(), "out of range") {
			t.Fatalf("oversized length claim not rejected: %v", err)
		}
	})
}

// TestRemoteErrorFrame: an ftErr frame surfaces as a *RemoteError through
// ReadStream (the non-retryable refusal path).
func TestRemoteErrorFrame(t *testing.T) {
	var wire bytes.Buffer
	wire.Write(EncodeError("unknown session"))
	_, err := ReadStream(bufio.NewReader(&wire), func([]store.Item) error { return nil }, nil)
	var re *RemoteError
	if !errorsAs(err, &re) || re.Msg != "unknown session" {
		t.Fatalf("want RemoteError(unknown session), got %v", err)
	}
}

// errorsAs avoids importing errors just for one assertion helper.
func errorsAs(err error, target **RemoteError) bool {
	for err != nil {
		if re, ok := err.(*RemoteError); ok {
			*target = re
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestStreamEOFTamper: corrupting the EOF count is detected by the
// receiver's verification.
func TestStreamEOFTamper(t *testing.T) {
	items := []store.Item{{Point: 1, Key: "a", Value: []byte("v")}}
	var wire bytes.Buffer
	wire.Write(encodeItems(items))
	wire.Write(encodeEOF(2, sumItems(0, items))) // wrong count
	_, err := ReadStream(bufio.NewReader(&wire), func([]store.Item) error { return nil }, nil)
	if err == nil || !strings.Contains(err.Error(), "verification failed") {
		t.Fatalf("tampered EOF not detected: %v", err)
	}
	var torn bytes.Buffer
	torn.Write(encodeItems(items)) // no EOF at all
	_, err = ReadStream(bufio.NewReader(&torn), func([]store.Item) error { return nil }, nil)
	if err == nil || !strings.Contains(err.Error(), "without EOF") {
		t.Fatalf("missing EOF not detected: %v", err)
	}
}
