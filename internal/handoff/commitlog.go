package handoff

// CommitLog closes the dual-crash corner of the handoff protocol. The
// sender's in-memory session registry keeps a committed session around
// for 100× the TTL so a crashed receiver can probe its fate — but if the
// SENDER also crashes, a restarted (amnesiac) sender answers "unknown",
// and the restarted receiver would abort a range it in fact owns,
// deleting the only durable copies (the sender's commit already deleted
// its side). Persisting every commit decision in a small WAL beside the
// sender's store closes the window entirely: the commit record becomes
// durable before the commit response (or any session-registry state a
// probe could observe) is emitted, so a restarted sender still answers
// opHandStatus with "committed".
//
// Format: fixed 20-byte records — session id (8), unix-nano commit time
// (8), CRC-32C over both (4). A torn tail (partial record or bad CRC,
// from a crash mid-append) is ignored on replay: losing the LAST record
// to a crash is indistinguishable from crashing just before the append,
// which the protocol already survives (the receiver reads "unknown" and
// the sender still holds the items — nothing was deleted yet). Records
// older than the retention are dropped at open and the file compacted.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"slices"
	"time"

	"condisc/internal/telemetry"
)

// commitRecords counts durable commit-log appends process-wide (no
// per-log plumbing: the write is fsync-dominated, one atomic is noise).
var commitRecords = telemetry.Default.Counter("condisc_commitlog_records_total")

const commitRecSize = 20

var commitCRC = crc32.MakeTable(crc32.Castagnoli)

// CommitLog is a durable append-only record of committed handoff
// sessions. Methods are not safe for concurrent use; the p2p node calls
// them under its own mutex.
type CommitLog struct {
	path      string
	f         *os.File
	retention time.Duration
	ids       map[uint64]int64 // session id -> commit unix-nano
}

// OpenCommitLog opens (creating if absent) the commit log at path,
// dropping records older than retention (0 means keep everything).
func OpenCommitLog(path string, retention time.Duration) (*CommitLog, error) {
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("handoff: read commit log: %w", err)
	}
	c := &CommitLog{path: path, retention: retention, ids: map[uint64]int64{}}
	cutoff := int64(0)
	if retention > 0 {
		//condisc:wallclock retention compares persisted commit timestamps against real elapsed time; the log is p2p crash-recovery state, never replayed by churntest
		cutoff = time.Now().Add(-retention).UnixNano()
	}
	dropped := len(raw)%commitRecSize != 0 // partial tail: rewrite it away
	for off := 0; off+commitRecSize <= len(raw); off += commitRecSize {
		rec := raw[off : off+commitRecSize]
		if crc32.Checksum(rec[:16], commitCRC) != binary.LittleEndian.Uint32(rec[16:]) {
			// Torn or corrupt tail: everything after is unusable and MUST
			// be rewritten away — otherwise the append handle would write
			// new records behind a record the next replay stops at,
			// silently losing every commit recorded after the corruption.
			dropped = true
			break
		}
		id := binary.LittleEndian.Uint64(rec[:8])
		at := int64(binary.LittleEndian.Uint64(rec[8:16]))
		if at < cutoff {
			dropped = true
			continue
		}
		c.ids[id] = at
	}
	if dropped {
		if err := c.rewrite(); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("handoff: open commit log: %w", err)
	}
	c.f = f
	return c, nil
}

// rewrite compacts the log to the surviving records (atomic replace).
func (c *CommitLog) rewrite() error {
	tmp := c.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	// Sorted by session id so a compaction is byte-reproducible: two
	// rewrites of the same surviving set produce identical files.
	ids := make([]uint64, 0, len(c.ids))
	for id := range c.ids {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		if _, err := f.Write(encodeCommitRec(id, c.ids[id])); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, c.path)
}

func encodeCommitRec(id uint64, at int64) []byte {
	rec := make([]byte, commitRecSize)
	binary.LittleEndian.PutUint64(rec[:8], id)
	binary.LittleEndian.PutUint64(rec[8:16], uint64(at))
	binary.LittleEndian.PutUint32(rec[16:], crc32.Checksum(rec[:16], commitCRC))
	return rec
}

// compactThreshold is the retained-record count past which Record starts
// checking for expired entries to compact away, bounding the log's file
// and map growth on a long-lived, churn-heavy sender (retention is
// otherwise only enforced at open).
const compactThreshold = 1024

// Record durably notes that session id committed: the record is written
// and fsynced before Record returns, so a crash at any later instant
// cannot forget the commit.
func (c *CommitLog) Record(id uint64) error {
	if c.retention > 0 && len(c.ids) >= compactThreshold {
		c.maybeCompact()
	}
	if c.f == nil {
		return fmt.Errorf("handoff: commit log %s is not open", c.path)
	}
	//condisc:wallclock the commit instant is durability metadata compared against retention on reopen; it never feeds replayed state
	at := time.Now().UnixNano()
	if _, err := c.f.Write(encodeCommitRec(id, at)); err != nil {
		return fmt.Errorf("handoff: append commit record: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("handoff: sync commit log: %w", err)
	}
	c.ids[id] = at
	commitRecords.Inc()
	return nil
}

// maybeCompact drops expired records and rewrites the file when at least
// half the retained entries are stale. Best-effort: on any error the
// existing (larger but complete) log stays in place.
func (c *CommitLog) maybeCompact() {
	//condisc:wallclock staleness is real elapsed time since the persisted commit instant; compaction is p2p housekeeping outside the replayed paths
	cutoff := time.Now().Add(-c.retention).UnixNano()
	stale := 0
	for _, at := range c.ids {
		if at < cutoff {
			stale++
		}
	}
	if stale*2 < len(c.ids) {
		return
	}
	for id, at := range c.ids {
		if at < cutoff {
			delete(c.ids, id)
		}
	}
	// The append handle must move to the rewritten inode, or later
	// records would land in the renamed-away file. A failed rewrite is
	// harmless (the larger log survives); a failed reopen leaves f nil
	// and Record reports it.
	c.f.Close()
	_ = c.rewrite()
	c.f, _ = os.OpenFile(c.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Contains reports whether session id has a (retained) commit record.
func (c *CommitLog) Contains(id uint64) bool {
	_, ok := c.ids[id]
	return ok
}

// Len returns the number of retained commit records.
func (c *CommitLog) Len() int { return len(c.ids) }

// Close releases the underlying file.
func (c *CommitLog) Close() error {
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
