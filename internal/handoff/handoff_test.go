package handoff

import (
	"bufio"
	"fmt"
	"io"
	"testing"
	"time"

	"condisc/internal/interval"
	"condisc/internal/store"
)

func fill(t testing.TB, s store.Store, n int, val []byte) {
	t.Helper()
	step := ^uint64(0)/uint64(n) + 1
	for i := 0; i < n; i++ {
		if err := s.Put(interval.Point(uint64(i)*step), fmt.Sprintf("k%09d", i), val); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMove: the in-process transfer moves exactly the segment, leaves the
// rest, and deletes the moved range at the source.
func TestMove(t *testing.T) {
	src, dst := store.NewMem(), store.NewMem()
	fill(t, src, 128, []byte("v")) // power of two: exact point spacing
	step := uint64(1) << 57
	seg := interval.Segment{Start: interval.Point(120 * step), Len: 16 * step} // wraps
	moved, err := Move(src, dst, seg)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 16 || dst.Len() != 16 || src.Len() != 112 {
		t.Fatalf("moved %d, dst %d, src %d; want 16/16/112", moved, dst.Len(), src.Len())
	}
	dst.Ascend(interval.FullCircle, func(it store.Item) bool {
		if !seg.Contains(it.Point) {
			t.Fatalf("item %s outside the moved segment", it.Key)
		}
		return true
	})
}

// TestStreamRoundtrip: a full sender→receiver stream over an in-memory
// pipe reproduces the range exactly, and the EOF count/sum verification
// passes.
func TestStreamRoundtrip(t *testing.T) {
	src := store.NewMem()
	fill(t, src, 1000, []byte("some-value-payload"))
	recv, err := Begin("", 7, RoleJoin, interval.FullCircle, "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	pr, pw := io.Pipe()
	go func() {
		cur := src.Cursor(interval.FullCircle)
		defer cur.Close()
		_, _, err := Stream(pw, cur, 4<<10, nil)
		pw.CloseWithError(err)
	}()
	n, err := ReadStream(bufio.NewReader(pr), recv.Apply, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 || recv.Staged() != 1000 {
		t.Fatalf("streamed %d, staged %d, want 1000", n, recv.Staged())
	}
	live := store.NewMem()
	if err := recv.Promote(live); err != nil {
		t.Fatal(err)
	}
	if live.Len() != 1000 {
		t.Fatalf("promoted %d items, want 1000", live.Len())
	}
}

// TestStreamResume: a connection broken mid-stream is resumed from the
// receiver's last staged position; the union of both connections is the
// exact range, nothing lost or duplicated.
func TestStreamResume(t *testing.T) {
	src := store.NewMem()
	fill(t, src, 500, []byte("abcdefgh"))
	recv, err := Begin("", 9, RoleJoin, interval.FullCircle, "test", nil)
	if err != nil {
		t.Fatal(err)
	}

	// First connection: apply one chunk, then fail.
	pr, pw := io.Pipe()
	go func() {
		cur := src.Cursor(interval.FullCircle)
		defer cur.Close()
		Stream(pw, cur, 1<<10, nil)
		pw.Close()
	}()
	chunks := 0
	_, err = ReadStream(bufio.NewReader(pr), func(items []store.Item) error {
		if chunks >= 1 {
			return fmt.Errorf("injected receiver failure")
		}
		chunks++
		return recv.Apply(items)
	}, nil)
	pr.CloseWithError(io.ErrClosedPipe)
	if err == nil {
		t.Fatal("first connection should have failed")
	}
	staged := recv.Staged()
	if staged == 0 || staged == 500 {
		t.Fatalf("want a partial stage, got %d", staged)
	}

	// Second connection: resume strictly after the staged prefix.
	p, key, ok, err := recv.ResumeAfter()
	if err != nil || !ok {
		t.Fatalf("ResumeAfter: %v %v", ok, err)
	}
	pr2, pw2 := io.Pipe()
	go func() {
		cur := src.Cursor(interval.FullCircle)
		cur.Seek(p, key)
		defer cur.Close()
		_, _, err := Stream(pw2, cur, 1<<10, nil)
		pw2.CloseWithError(err)
	}()
	if _, err := ReadStream(bufio.NewReader(pr2), recv.Apply, nil); err != nil {
		t.Fatal(err)
	}
	if recv.Staged() != 500 {
		t.Fatalf("after resume staged %d, want 500 (no loss, no duplicates)", recv.Staged())
	}
}

// TestReceiverRecover: a disk-backed receiver crashing mid-stream comes
// back with its staged prefix and manifest intact; after recovery the
// session completes and the staging directory is gone.
func TestReceiverRecover(t *testing.T) {
	dir := t.TempDir() + "/stage"
	seg := interval.Segment{Start: 100, Len: 1 << 62}
	recv, err := Begin(dir, 11, RoleJoin, seg, "sender:1", map[string]string{"pred_addr": "sender:1"})
	if err != nil {
		t.Fatal(err)
	}
	items := []store.Item{
		{Point: 200, Key: "a", Value: []byte("1")},
		{Point: 300, Key: "b", Value: []byte("2")},
	}
	if err := recv.Apply(items); err != nil {
		t.Fatal(err)
	}
	// Crash: drop the receiver without Finish/Abort.
	if err := recv.staging.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ID != 11 || r2.Role != RoleJoin || r2.Seg != seg || r2.Sender != "sender:1" {
		t.Fatalf("recovered wrong manifest: %+v", r2)
	}
	if r2.Meta["pred_addr"] != "sender:1" {
		t.Fatalf("recovered meta lost: %v", r2.Meta)
	}
	if r2.Staged() != 2 {
		t.Fatalf("recovered %d staged items, want 2", r2.Staged())
	}
	p, key, ok, err := r2.ResumeAfter()
	if err != nil || !ok || p != 300 || key != "b" {
		t.Fatalf("resume position = %v %q %v %v, want 300 b", p, key, ok, err)
	}
	live := store.NewMem()
	if err := r2.Promote(live); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-promotion (the crash-mid-promote replay).
	if err := r2.Promote(live); err != nil {
		t.Fatal(err)
	}
	if live.Len() != 2 {
		t.Fatalf("live has %d items after promote, want 2", live.Len())
	}
	if err := r2.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); err == nil {
		t.Fatal("staging directory should be gone after Finish")
	}
}

// TestReceiverAbortAfterPromote: aborting a receiver that already
// promoted deletes exactly the session range from the live store — the
// sender never committed, so it still owns those items.
func TestReceiverAbortAfterPromote(t *testing.T) {
	live := store.NewMem()
	// The receiver's own pre-existing items, outside the session range.
	if err := live.Put(1, "mine", []byte("keep")); err != nil {
		t.Fatal(err)
	}
	seg := interval.Segment{Start: 1000, Len: 1000}
	recv, err := Begin("", 13, RoleLeave, seg, "s", nil)
	if err != nil {
		t.Fatal(err)
	}
	recv.Apply([]store.Item{{Point: 1500, Key: "x", Value: []byte("v")}})
	if err := recv.Promote(live); err != nil {
		t.Fatal(err)
	}
	if err := recv.Abort(live); err != nil {
		t.Fatal(err)
	}
	if live.Len() != 1 {
		t.Fatalf("live has %d items after abort, want only the pre-existing one", live.Len())
	}
	if _, ok, _ := live.Get(1, "mine"); !ok {
		t.Fatal("abort deleted an item outside the session range")
	}
}

// TestSessionLifecycle: prepare/fence/commit/abort/expiry semantics the
// sender relies on.
func TestSessionLifecycle(t *testing.T) {
	ss := NewSessions(50 * time.Millisecond)
	seg := interval.Segment{Start: 100, Len: 100}
	s, err := ss.Prepare(1, seg, "peer", "meta")
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Fenced(150) || ss.Fenced(50) {
		t.Fatal("fence does not match the session range")
	}
	if _, err := ss.Prepare(2, interval.Segment{Start: 150, Len: 10}, "p", nil); err == nil {
		t.Fatal("overlapping prepare accepted")
	}
	if _, err := ss.Prepare(1, interval.Segment{Start: 5000, Len: 1}, "p", nil); err == nil {
		t.Fatal("duplicate session id accepted")
	}
	if st := ss.Status(1); st != StateStreaming {
		t.Fatalf("status = %v, want streaming", st)
	}
	c, ok := ss.Commit(1)
	if !ok || c != s || c.Meta != "meta" {
		t.Fatal("commit failed")
	}
	select {
	case <-s.Done():
	default:
		t.Fatal("done channel not closed at commit")
	}
	if st := ss.Status(1); st != StateCommitted {
		t.Fatalf("status after commit = %v", st)
	}
	if ss.Fenced(150) {
		t.Fatal("fence survived commit")
	}
	if _, ok := ss.Commit(1); ok {
		t.Fatal("double commit accepted")
	}

	// Expiry: an abandoned streaming session aborts and unfences.
	if _, err := ss.Prepare(3, seg, "peer", nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	if ss.Fenced(150) {
		t.Fatal("fence survived expiry")
	}
	if st := ss.Status(3); st != StateUnknown {
		t.Fatalf("expired session status = %v, want unknown", st)
	}
	// A committed session survives the streaming TTL (receiver probes
	// after a crash must read committed, not unknown).
	if st := ss.Status(1); st != StateCommitted {
		t.Fatalf("committed session expired with the streaming TTL: %v", st)
	}
}

// TestStreamMemoryBounded: the transfer path's watermark stays O(chunk)
// as the range grows — the property the CI gate enforces at 1M items.
func TestStreamMemoryBounded(t *testing.T) {
	val := make([]byte, 64)
	var peaks []int64
	for _, n := range []int{1000, 20000} {
		src := store.NewMem()
		fill(t, src, n, val)
		recv, err := Begin("", uint64(n), RoleJoin, interval.FullCircle, "t", nil)
		if err != nil {
			t.Fatal(err)
		}
		ResetMemWatermark()
		pr, pw := io.Pipe()
		go func() {
			cur := src.Cursor(interval.FullCircle)
			defer cur.Close()
			_, _, err := Stream(pw, cur, 16<<10, nil)
			pw.CloseWithError(err)
		}()
		if _, err := ReadStream(bufio.NewReader(pr), recv.Apply, nil); err != nil {
			t.Fatal(err)
		}
		peaks = append(peaks, MemWatermark())
	}
	if peaks[1] > 4*peaks[0] {
		t.Fatalf("transfer memory grew with range size: %d items → %dB, %d items → %dB",
			1000, peaks[0], 20000, peaks[1])
	}
}
