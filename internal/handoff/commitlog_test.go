package handoff

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestCommitLogRecordSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commits")
	c, err := OpenCommitLog(path, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []uint64{1, 42, 1 << 60} {
		if err := c.Record(id); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Contains(42) || c.Contains(43) {
		t.Fatal("membership wrong before reopen")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCommitLog(path, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for _, id := range []uint64{1, 42, 1 << 60} {
		if !c2.Contains(id) {
			t.Fatalf("record %d lost across reopen", id)
		}
	}
	if c2.Contains(7) {
		t.Fatal("phantom record after reopen")
	}
}

func TestCommitLogTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commits")
	c, err := OpenCommitLog(path, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Record(11); err != nil {
		t.Fatal(err)
	}
	if err := c.Record(22); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Crash mid-append: the second record is half-written.
	if err := os.Truncate(path, commitRecSize+7); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCommitLog(path, time.Hour)
	if err != nil {
		t.Fatalf("torn tail must not fail open: %v", err)
	}
	defer c2.Close()
	if !c2.Contains(11) {
		t.Fatal("intact record lost with the torn tail")
	}
	if c2.Contains(22) {
		t.Fatal("torn record resurrected")
	}
	// The compaction rewrote the file to whole records; appends work.
	if err := c2.Record(33); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size()%commitRecSize != 0 {
		t.Fatalf("log not rewritten to whole records: size=%v err=%v", fi.Size(), err)
	}
}

func TestCommitLogAlignedCorruptionCompactedAway(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commits")
	c, err := OpenCommitLog(path, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Record(1); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// A record-aligned run of garbage (e.g. block zero-fill on power
	// loss): the file length stays a multiple of the record size.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, commitRecSize)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The reopen must truncate the corruption, or records appended after
	// it would be lost to every future replay.
	c2, err := OpenCommitLog(path, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Contains(1) {
		t.Fatal("intact record lost")
	}
	if err := c2.Record(2); err != nil {
		t.Fatal(err)
	}
	c2.Close()

	c3, err := OpenCommitLog(path, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if !c3.Contains(1) || !c3.Contains(2) {
		t.Fatal("commit recorded after an aligned-corruption reopen was lost on replay")
	}
}

func TestCommitLogRetentionDropsOldRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commits")
	c, err := OpenCommitLog(path, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Record(5); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Reopen with a zero-width retention horizon: the record is expired.
	c2, err := OpenCommitLog(path, time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Contains(5) {
		t.Fatal("expired record retained")
	}
	if c2.Len() != 0 {
		t.Fatalf("len = %d after expiry", c2.Len())
	}
}
