package handoff

import (
	"bufio"
	"fmt"
	"io"
	"testing"

	"condisc/internal/interval"
	"condisc/internal/store"
)

// BenchmarkHandoff sweeps a full sender→receiver transfer from 1k to 1M
// items at a fixed chunk budget, reporting the transfer path's peak
// memory as "peakB". The acceptance property (CI-gated from
// BENCH_join_leave.json) is that peakB stays ≤ 4× the chunk budget while
// the transferred volume grows 1000× — churn transfers are O(chunk), not
// O(range), so a handoff larger than RAM streams through a node without
// capping at it.
func BenchmarkHandoff(b *testing.B) {
	val := make([]byte, 64)
	for _, sz := range []struct {
		name  string
		items int
	}{
		{"items=1k", 1_000},
		{"items=10k", 10_000},
		{"items=100k", 100_000},
		{"items=1M", 1_000_000},
	} {
		b.Run(sz.name, func(b *testing.B) {
			src := store.NewMem()
			fill(b, src, sz.items, val)
			b.ReportAllocs()
			b.ResetTimer()
			var peak int64
			for i := 0; i < b.N; i++ {
				ResetMemWatermark()
				recv, err := Begin("", uint64(i)+1, RoleJoin, interval.FullCircle, "bench", nil)
				if err != nil {
					b.Fatal(err)
				}
				pr, pw := io.Pipe()
				go func() {
					cur := src.Cursor(interval.FullCircle)
					defer cur.Close()
					_, _, err := Stream(pw, cur, DefaultChunkBytes, nil)
					pw.CloseWithError(err)
				}()
				n, err := ReadStream(bufio.NewReaderSize(pr, 64<<10), recv.Apply, nil)
				if err != nil || n != uint64(sz.items) {
					b.Fatalf("transfer: n=%d err=%v", n, err)
				}
				if recv.Staged() != sz.items {
					b.Fatalf("staged %d, want %d", recv.Staged(), sz.items)
				}
				if MemWatermark() > peak {
					peak = MemWatermark()
				}
				recv.Finish()
			}
			b.ReportMetric(float64(peak), "peakB")
			b.ReportMetric(float64(sz.items)*float64(b.N)/b.Elapsed().Seconds(), "items/s")
		})
	}
}

// BenchmarkMove measures the in-process path the simulator's Join/Leave
// use: a fixed 1024-item range moved out of stores of growing resident
// population — flat in residents, like the engines' SplitRange.
func BenchmarkMove(b *testing.B) {
	for _, resident := range []int{10_000, 1_000_000} {
		b.Run(fmt.Sprintf("resident=%d", resident), func(b *testing.B) {
			src := store.NewMem()
			fill(b, src, resident, []byte("v"))
			step := ^uint64(0)/uint64(resident) + 1
			seg := interval.Segment{Start: interval.Point(uint64(resident/2) * step), Len: 1024 * step}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst := store.NewMem()
				if _, err := Move(src, dst, seg); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := src.MergeFrom(dst); err != nil { // put them back, untimed
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
