// Package handoff is the streaming, two-phase, crash-safe item-transfer
// subsystem behind churn: the §2.1 Join and Leave both move a segment's
// items between two servers, and this package turns that move from "one
// in-memory map inside one RPC" into a resumable session.
//
// A transfer is a session driven by a prepare → stream → commit protocol:
//
//	prepare  the receiver opens the session at the sender; the sender
//	         fences writes to the moving range (reads keep being served —
//	         the sender owns the range until commit) and registers a
//	         deadline after which an abandoned session self-aborts.
//	stream   the sender walks the range with a store.Cursor and writes
//	         CRC-framed chunks; the receiver appends each chunk durably
//	         to a staging store as it arrives. A broken connection is
//	         resumed from the last staged position — items travel in ring
//	         order, so the resume point is a single (point, key).
//	commit   the receiver first promotes the staged items into its live
//	         store (durably), then asks the sender to commit: the sender
//	         deletes the range (one durable range tombstone on a WAL
//	         store) and flips ownership in the same critical section.
//
// The ordering is what makes a crash at ANY point leave exactly one owner
// and never zero copies of an item: the future owner makes the items
// durable and live BEFORE the old owner deletes them, and ownership flips
// only at the sender's commit step. The window the old single-RPC join
// had — the owner drained the range before the joiner had persisted it,
// so a joiner dying mid-RPC stranded the range — cannot be expressed in
// this protocol.
//
// Memory: the sender holds one cursor batch and one encoded frame at a
// time; the receiver holds one decoded frame. Peak transfer memory is
// O(chunk budget) however large the range is (BenchmarkHandoff sweeps
// 1k → 1M items; CI gates the watermark at 4× the chunk budget).
package handoff

import (
	"sync/atomic"

	"condisc/internal/interval"
	"condisc/internal/store"
)

const (
	// DefaultChunkBytes is the per-frame byte budget of a stream: the
	// sender flushes a frame once its encoded items pass this size.
	DefaultChunkBytes = 256 << 10
	// batchItems bounds one cursor batch (the inner fetch unit; several
	// batches fill one frame when items are small).
	batchItems = 256
)

// transferMem is the package-wide accounting of bytes the transfer path
// holds in memory at an instant: cursor batches and encoded frames on the
// sender, decoded frame bodies on the receiver. It is what BenchmarkHandoff
// gates — an explicit watermark rather than a heap sample, so the
// O(chunk) claim is checked deterministically.
var transferMem gauge

type gauge struct {
	cur  atomic.Int64
	peak atomic.Int64
}

func (g *gauge) add(n int64) {
	c := g.cur.Add(n)
	for {
		p := g.peak.Load()
		if c <= p || g.peak.CompareAndSwap(p, c) {
			return
		}
	}
}

func (g *gauge) release(n int64) { g.cur.Add(-n) }

// ResetMemWatermark zeroes the transfer-memory high-water mark.
func ResetMemWatermark() { transferMem.cur.Store(0); transferMem.peak.Store(0) }

// MemWatermark returns the peak bytes the transfer path has held in
// memory since the last reset.
func MemWatermark() int64 { return transferMem.peak.Load() }

// itemBytes is the accounted in-memory footprint of a batch.
func itemBytes(items []store.Item) int64 {
	var n int64
	for _, it := range items {
		n += 8 + int64(len(it.Key)) + int64(len(it.Value))
	}
	return n
}

// Copy replicates seg's items from src to dst through the same bounded-
// memory cursor path the network stream uses, leaving the source intact.
// It is the first half of the epoch-publish churn protocol
// (copy → publish → delete): between the copy and the source-side
// DeleteRange the items exist in both stores, so a reader resolving
// against either the pre- or post-publish epoch finds every item at the
// owner its epoch names. It returns the number of items copied.
func Copy(src, dst store.Store, seg interval.Segment) (int, error) {
	cur := src.Cursor(seg)
	defer cur.Close()
	copied := 0
	for {
		items, err := cur.Next(batchItems)
		if err != nil {
			return copied, err
		}
		if items == nil {
			return copied, nil
		}
		n := itemBytes(items)
		transferMem.add(n)
		for _, it := range items {
			if err := dst.Put(it.Point, it.Key, it.Value); err != nil {
				transferMem.release(n)
				return copied, err
			}
			copied++
		}
		transferMem.release(n)
	}
}

// Move transfers seg's items from src to dst through the bounded-memory
// cursor path, then deletes the range at the source — the in-process
// (simulator) form of a handoff session, with the prepare/commit
// bracketing collapsed: copy-before-delete still holds, so an error
// mid-move leaves every item in at least one store. It returns the
// number of items moved.
func Move(src, dst store.Store, seg interval.Segment) (int, error) {
	moved, err := Copy(src, dst, seg)
	if err != nil {
		return moved, err
	}
	return moved, src.DeleteRange(seg)
}
