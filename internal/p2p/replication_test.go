package p2p

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"condisc/internal/doctor"
	"condisc/internal/interval"
	"condisc/internal/journal"
	"condisc/internal/replicate"
)

// replCluster boots an n-node cluster with K-successor replication, a
// tight RPC deadline (so the crash tests' failure detector trips fast),
// and a shared journal for asserting crash_absorb records.
func replCluster(t *testing.T, n int, seed uint64, k int) (*Cluster, *journal.Journal) {
	t.Helper()
	jrn := journal.New(1 << 12)
	c, err := StartCluster(n, seed,
		WithReplication(replicate.Policy{K: k}),
		WithRPCTimeout(250*time.Millisecond),
		WithJournal(jrn))
	if err != nil {
		t.Fatal(err)
	}
	return c, jrn
}

func TestQuorumFailsWithoutReplicas(t *testing.T) {
	// A node with K=3 (majority quorum 2) and no live successors must
	// refuse writes: one local ack is not crash-safe at that policy.
	c, _ := replCluster(t, 1, 91, 3)
	defer c.Stop()
	_, err := c.Client(0).Put("k", []byte("v"), c.Hash())
	if err == nil || !strings.Contains(err.Error(), "write quorum") {
		t.Fatalf("singleton K=3 put: got %v, want quorum failure", err)
	}
	// Quorum=1 makes the same topology writable again.
	solo, err := StartCluster(1, 92, WithReplication(replicate.Policy{K: 3, Quorum: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Stop()
	if _, err := solo.Client(0).Put("k", []byte("v"), solo.Hash()); err != nil {
		t.Fatalf("singleton Quorum=1 put: %v", err)
	}
}

func TestReplicatedPutPlacesPayloads(t *testing.T) {
	const keys = 30
	c, _ := replCluster(t, 5, 93, 3)
	defer c.Stop()
	h := c.Hash()
	for i := 0; i < keys; i++ {
		if _, err := c.Client(i%5).Put(fmt.Sprintf("key-%d", i), []byte("v"), h); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// K=3 places every value on the owner plus 2 successors, so the
	// replica stores together hold exactly 2 payloads per key.
	total := 0
	for _, n := range c.Nodes {
		total += n.rdata.Len()
	}
	if total != 2*keys {
		t.Fatalf("replica stores hold %d payloads, want %d", total, 2*keys)
	}
}

func TestGetErrorClassification(t *testing.T) {
	// A genuine miss and an unreachable owner are different errors.
	c, err := StartCluster(6, 94)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	h := c.Hash()
	if _, _, err := c.Client(0).Get("absent", h); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss on a healthy ring: got %v, want ErrNotFound", err)
	}
	// Kill the owner of a key (no replication, no detector: the hole
	// stays) — the same Get must now classify as unreachable, because
	// the key's presence is unknown, not absent.
	if _, err := c.Client(0).Put("held", []byte("v"), h); err != nil {
		t.Fatal(err)
	}
	owner, _, err := c.Client(0).Lookup(h("held"))
	if err != nil {
		t.Fatal(err)
	}
	entry := -1
	for i, n := range c.Nodes {
		if n.Addr() == owner {
			n.Close()
		} else if entry < 0 {
			entry = i
		}
	}
	if _, _, err := c.Client(entry).Get("held", h); !errors.Is(err, ErrOwnerUnreachable) {
		t.Fatalf("get with dead owner: got %v, want ErrOwnerUnreachable", err)
	}
}

func TestReplicaFallbackBeforeRepair(t *testing.T) {
	// In the window between a crash and its repair, the dead node's ring
	// predecessor serves the dead range from replicas: its cached
	// successor chain IS the dead owner's replica-holder list.
	const keys = 40
	c, _ := replCluster(t, 6, 95, 3)
	defer c.Stop()
	h := c.Hash()
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		if _, err := c.Client(i%6).Put(key, []byte("val-"+key), h); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
	victim := c.Nodes[3]
	vicAddr := victim.Addr()
	var pred *Node
	for _, n := range c.Nodes {
		if n.succInfo().Addr == vicAddr {
			pred = n
		}
	}
	if pred == nil {
		t.Fatal("no ring predecessor found for the victim")
	}
	victim.Close()
	// No stabilization pass runs: the ring still points at the corpse.
	served := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		if ownedBy(victim, h(key)) {
			served++
			got, _, err := (&Client{Bootstrap: pred.Addr()}).Get(key, h)
			if err != nil || !bytes.Equal(got, []byte("val-"+key)) {
				t.Fatalf("fallback get %s via predecessor: %v %q", key, err, got)
			}
		}
	}
	if served == 0 {
		t.Skip("victim owned none of the keys at this seed")
	}
	if v := pred.met.replFallbackOK.Value(); v < int64(served) {
		t.Fatalf("predecessor served %d fallback gets, metric says %d", served, v)
	}
}

// ownedBy reports whether the (possibly closed) node's segment contains p.
func ownedBy(n *Node, p interval.Point) bool {
	x, end, _, _ := n.State()
	seg := interval.Segment{Start: x, Len: uint64(end - x)}
	if x == end {
		seg = interval.FullCircle
	}
	return seg.Contains(p)
}

func TestCrashAbsorbAndRepair(t *testing.T) {
	// The full crash story: a node dies ungracefully; its predecessor's
	// failure detector trips, absorbs the segment without a handoff
	// session, journals crash_absorb, and the repair pass re-materializes
	// the dead range from replicas — after which every key is served
	// again by the normal read path and the replication invariant holds.
	const keys = 50
	c, jrn := replCluster(t, 8, 96, 3)
	defer c.Stop()
	h := c.Hash()
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		if _, err := c.Client(i%8).Put(key, []byte("val-"+key), h); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
	victim := c.Nodes[5]
	vicAddr := victim.Addr()
	victimKeys := 0
	for i := 0; i < keys; i++ {
		if ownedBy(victim, h(fmt.Sprintf("key-%d", i))) {
			victimKeys++
		}
	}
	victim.Close()

	// Survivors stabilize on their own (StabilizeAll fails the sweep at
	// the first dead node): enough rounds for fdThreshold=3 misses, the
	// absorb, a chain refresh, and the repair.
	survivors := make([]*Node, 0, len(c.Nodes)-1)
	for _, n := range c.Nodes {
		if n.Addr() != vicAddr {
			survivors = append(survivors, n)
		}
	}
	for round := 0; round < 8; round++ {
		for _, n := range survivors {
			_ = n.Stabilize()
		}
	}

	// The ring healed around the corpse...
	c.Nodes = survivors
	order, err := c.RingOrder()
	if err != nil {
		t.Fatalf("ring did not heal: %v", err)
	}
	if len(order) != len(survivors) {
		t.Fatalf("healed ring has %d nodes, want %d", len(order), len(survivors))
	}
	// ...the absorb was journaled...
	absorbs := 0
	for _, rec := range jrn.Records() {
		if rec.Kind == journal.KindCrashAbsorb {
			absorbs++
		}
	}
	if absorbs == 0 {
		t.Fatal("no crash_absorb journal record")
	}
	// ...no acknowledged write was lost (served by the NORMAL path: the
	// repair re-materialized the dead range into its new owner's store)...
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		got, _, err := c.Client(i%len(survivors)).Get(key, h)
		if err != nil || !bytes.Equal(got, []byte("val-"+key)) {
			t.Fatalf("post-repair get %s: %v %q", key, err, got)
		}
	}
	// ...and every survivor settled back to a healthy replication
	// invariant (no suspicion, no pending repairs).
	for i, n := range survivors {
		rep := n.Doctor()
		v, ok := rep.Find(doctor.InvReplication)
		if !ok {
			t.Fatalf("survivor %d: no replication verdict", i)
		}
		if !v.OK {
			t.Fatalf("survivor %d: replication invariant breached: %+v", i, v)
		}
	}
	if victimKeys == 0 {
		t.Skip("victim owned none of the keys at this seed (assertions above still ran)")
	}
}

func TestCrashAbsorbDeclinesWithoutChain(t *testing.T) {
	// A detector trip whose successor chain never resolved past the dead
	// node must NOT fall back to absorbing the whole circle — on any ring
	// larger than two nodes that is split-brain. The absorb declines and
	// retries until the chain names a live next hop.
	c, _ := replCluster(t, 5, 98, 3)
	defer c.Stop()
	pred := c.Nodes[0]
	// The cluster shares telemetry.Default, so compare counter deltas.
	base := pred.met.crashAbsorbs.Value()
	vic := pred.succInfo()
	var victim *Node
	for _, n := range c.Nodes {
		if n.Addr() == vic.Addr {
			victim = n
		}
	}
	// Simulate the walk having broken at the successor: one entry, not
	// wrapped — the successor's successor is unknown.
	pred.mu.Lock()
	full := append([]NodeInfo(nil), pred.succs...)
	pred.succs = full[:1:1]
	pred.succsWrapped = false
	pred.mu.Unlock()
	victim.Close()
	for i := 0; i < 6; i++ {
		_ = pred.Stabilize()
	}
	if v := pred.met.crashAbsorbs.Value() - base; v != 0 {
		t.Fatalf("absorbed %d times with an unknown successor chain, want decline", v)
	}
	x, end, p, _ := pred.State()
	if x == end {
		t.Fatal("predecessor claims the full circle on a 5-node ring")
	}
	if p.ID == pred.id {
		t.Fatal("predecessor set pred=self on a 5-node ring")
	}
	// Once the chain names the dead node's successor the absorb proceeds
	// (the detector is still tripped, so the next probe retries it).
	pred.mu.Lock()
	pred.succs = full
	pred.mu.Unlock()
	for i := 0; i < 4; i++ {
		_ = pred.Stabilize()
	}
	if v := pred.met.crashAbsorbs.Value() - base; v != 1 {
		t.Fatalf("absorbs after the chain resolved = %d, want 1", v)
	}
}

func TestFailedReplicaPushMarksDirty(t *testing.T) {
	// A Put that meets quorum but loses one replica push leaves the value
	// under-replicated; the failed push must mark the owned range dirty
	// so the next stabilization repairs it even on an otherwise stable
	// ring.
	c, _ := replCluster(t, 3, 99, 3)
	defer c.Stop()
	h := c.Hash()
	owner := c.Nodes[0]
	owner.mu.Lock()
	if len(owner.succs) < 2 {
		owner.mu.Unlock()
		t.Fatal("successor chain not populated")
	}
	owner.succs[1].Addr = "127.0.0.1:1" // nothing listens here: one push fails
	owner.replDirty = false
	owner.mu.Unlock()
	key := ""
	for i := 0; key == ""; i++ {
		if k := fmt.Sprintf("key-%d", i); ownedBy(owner, h(k)) {
			key = k
		}
	}
	// Quorum 2 of K=3 still holds: owner's local write + first successor.
	if _, err := (&Client{Bootstrap: owner.Addr()}).Put(key, []byte("v"), h); err != nil {
		t.Fatalf("quorum-met put with one failed push: %v", err)
	}
	owner.mu.Lock()
	dirty := owner.replDirty
	owner.mu.Unlock()
	if !dirty {
		t.Fatal("failed replica push did not mark the owned range dirty for repair")
	}
}

func TestRepairRequeuesWhenHoldersUnreachable(t *testing.T) {
	// A repair pass that reaches no replica holder must re-queue the
	// segment and keep repairPending (and with it the replica-read
	// fallback) — dropping it would turn a transient partition into
	// permanent NotFounds.
	c, _ := replCluster(t, 3, 100, 3)
	defer c.Stop()
	n := c.Nodes[0]
	seg := interval.Segment{Start: 1, Len: 10}
	n.mu.Lock()
	real := append([]NodeInfo(nil), n.succs...)
	n.repairPending = true
	n.repairSegs = []interval.Segment{seg}
	n.succs = []NodeInfo{{ID: 42, Addr: "127.0.0.1:1"}} // unreachable holder
	n.mu.Unlock()
	n.runRepairs()
	n.mu.Lock()
	segs, pending := len(n.repairSegs), n.repairPending
	n.succs = real
	n.mu.Unlock()
	if segs != 1 || !pending {
		t.Fatalf("unreachable holders: segs=%d pending=%v, want segment re-queued and pending kept", segs, pending)
	}
	// With the real (reachable) holders back, the retried pass retires
	// the segment: the gather met the reconstruction quorum.
	n.runRepairs()
	n.mu.Lock()
	segs, pending = len(n.repairSegs), n.repairPending
	n.mu.Unlock()
	if segs != 0 || pending {
		t.Fatalf("after holders reachable: segs=%d pending=%v, want repair retired", segs, pending)
	}
}

func TestDoctorReplDesiredFromPolicy(t *testing.T) {
	// The doctor's desired-replica count comes from the policy, not from
	// the cached chain: a degraded chain walk must breach the invariant,
	// not shrink "desired" in lockstep with "live" and read healthy.
	c, _ := replCluster(t, 4, 101, 3)
	defer c.Stop()
	n := c.Nodes[0]
	rep := n.Doctor()
	if v, ok := rep.Find(doctor.InvReplication); !ok || !v.OK {
		t.Fatalf("healthy ring: replication verdict %+v (found=%v), want pass", v, ok)
	}
	n.mu.Lock()
	full := n.succs
	n.succs = full[:1:1] // walk broke after one hop, NOT a wrap
	n.succsWrapped = false
	n.mu.Unlock()
	rep = n.Doctor()
	if v, ok := rep.Find(doctor.InvReplication); !ok || v.OK {
		t.Fatalf("degraded chain: replication verdict %+v (found=%v), want breach", v, ok)
	}
	n.mu.Lock()
	n.succs = full
	n.mu.Unlock()
}

func TestCrashRepairRestoresReplicationFactor(t *testing.T) {
	// After repair, re-replication restores K copies of everything —
	// including the absorbed range, whose payloads must now live on the
	// NEW owner's successor chain.
	const keys = 30
	c, _ := replCluster(t, 6, 97, 3)
	defer c.Stop()
	h := c.Hash()
	for i := 0; i < keys; i++ {
		if _, err := c.Client(0).Put(fmt.Sprintf("key-%d", i), []byte("v"), h); err != nil {
			t.Fatal(err)
		}
	}
	victim := c.Nodes[2]
	vicAddr := victim.Addr()
	victim.Close()
	survivors := make([]*Node, 0, 5)
	for _, n := range c.Nodes {
		if n.Addr() != vicAddr {
			survivors = append(survivors, n)
		}
	}
	for round := 0; round < 10; round++ {
		for _, n := range survivors {
			_ = n.Stabilize()
		}
	}
	// Count live payloads per key across the survivors' replica stores:
	// every key must again be on 2 successors (K−1), whoever owns it now.
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		copies := 0
		for _, n := range survivors {
			if _, ok, _ := n.rdata.Get(h(key), key); ok {
				copies++
			}
		}
		if copies < 2 {
			t.Fatalf("key %s has %d replica payloads after repair, want >= 2", key, copies)
		}
	}
}
