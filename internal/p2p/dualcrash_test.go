package p2p

// The dual-crash corner (ROADMAP): the owner commits a join handoff —
// durably deleting the moved range — and then BOTH nodes crash before the
// joiner records the acknowledgement. The restarted joiner probes the
// restarted owner, which has lost its in-memory session registry. Before
// the commit log, the amnesiac owner answered "unknown" and the joiner
// aborted — destroying its promoted items, the only remaining copies of
// the range. With the commit record persisted in the owner's WAL
// directory, the restarted owner answers "committed" and the joiner
// finishes the join instead.

import (
	"fmt"
	"math/rand/v2"
	"path/filepath"
	"testing"

	"condisc/internal/store"
)

func TestDualCrashCommitRecordSurvivesRestart(t *testing.T) {
	const items = 120
	owner, ownerDir := handoffHarness(t, 181, items)

	joinerDir := filepath.Join(t.TempDir(), "joiner")
	st, err := store.OpenLog(joinerDir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := NewNode("127.0.0.1:0", 181, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	// Die in exactly the dual-crash window: the owner's commit landed
	// (range durably deleted there, commit durably recorded), but this
	// node never adopts the range or cleans its staging.
	j1.handoffCommitHook = func() error { return fmt.Errorf("kill -9 after commit") }
	if err := j1.StartJoin(owner.Addr(), rand.New(rand.NewPCG(182, 182))); err == nil {
		t.Fatal("killed joiner reported a successful join")
	}
	jAddr, oAddr := j1.Addr(), owner.Addr()
	j1.Close()

	// The owner committed: its store holds only the retained half.
	ownerKept := owner.NumItems()
	if ownerKept == 0 || ownerKept >= items {
		t.Fatalf("owner kept %d items after commit, want a strict subset of %d", ownerKept, items)
	}
	ownerPoint, _, _, _ := owner.State()

	// Crash the owner too.
	owner.Close()

	// Both restart from their directories. The owner's process memory —
	// and with it the session registry — is gone; only the WAL and the
	// commit log remain.
	ownerStore2, err := store.OpenLog(ownerDir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	owner2, err := NewNode(oAddr, 181, WithStore(ownerStore2))
	if err != nil {
		t.Fatal(err)
	}
	defer owner2.Close()
	owner2.StartFirst(ownerPoint)
	if got := owner2.NumItems(); got != ownerKept {
		t.Fatalf("restarted owner replays %d items, want %d", got, ownerKept)
	}

	joinerStore2, err := store.OpenLog(joinerDir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := NewNode(jAddr, 181, WithStore(joinerStore2))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.recovered == nil {
		t.Fatal("restarted joiner did not recover its staging session")
	}
	// The probe must read "committed" from the owner's reopened commit
	// log; the joiner then promotes (idempotently) and adopts the range.
	if err := j2.StartJoin(owner2.Addr(), rand.New(rand.NewPCG(183, 183))); err != nil {
		t.Fatalf("dual-crash recovery join failed: %v", err)
	}
	if sum := owner2.NumItems() + j2.NumItems(); sum != items {
		t.Fatalf("items not conserved across dual crash: owner %d + joiner %d != %d",
			owner2.NumItems(), j2.NumItems(), items)
	}
	if j2.NumItems() != items-ownerKept {
		t.Fatalf("joiner owns %d items, want the committed range's %d", j2.NumItems(), items-ownerKept)
	}
	// The restarted owner booted as a singleton (StartFirst) and learns of
	// the joiner's range through stabilization, exactly like any stale
	// ring pointer.
	for round := 0; round < 3; round++ {
		for _, n := range []*Node{owner2, j2} {
			if err := n.Stabilize(); err != nil {
				t.Fatalf("stabilize: %v", err)
			}
		}
	}
	verifyAllKeys(t, owner2.Addr(), owner2.HashFunc(), items, "after dual-crash recovery")
	if left, _ := filepath.Glob(joinerDir + ".handoff-*"); len(left) != 0 {
		t.Fatalf("staging session not cleaned up: %v", left)
	}

	// Durability: reopen both WALs offline — exactly one copy of every
	// item survives the double restart.
	oN, jN := owner2.NumItems(), j2.NumItems()
	owner2.Close()
	j2.Close()
	if n := countLogItems(t, ownerDir); n != oN {
		t.Fatalf("owner WAL reopened with %d items, want %d", n, oN)
	}
	if n := countLogItems(t, joinerDir); n != jN {
		t.Fatalf("joiner WAL reopened with %d items, want %d", n, jN)
	}
}

// TestDualCrashWithoutRecordWouldAbort pins the counterfactual the commit
// log exists for: an "unknown" status (here: a genuinely unknown session)
// still makes a recovered joiner roll back cleanly — the abort path stays
// intact for sessions that truly never committed.
func TestDualCrashWithoutRecordWouldAbort(t *testing.T) {
	const items = 300
	owner, _ := handoffHarness(t, 191, items)
	defer owner.Close()

	joinerDir := filepath.Join(t.TempDir(), "joiner")
	st, err := store.OpenLog(joinerDir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := NewNode("127.0.0.1:0", 191, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	j1.handoffChunkHook = func(chunk int) error {
		if chunk >= 1 {
			return fmt.Errorf("kill -9 mid-stream")
		}
		return nil
	}
	if err := j1.StartJoin(owner.Addr(), rand.New(rand.NewPCG(192, 192))); err == nil {
		t.Fatal("killed joiner reported a successful join")
	}
	jAddr := j1.Addr()
	j1.Close()

	// The owner never committed; no commit record exists for the session.
	if owner.commits == nil {
		t.Fatal("log-backed owner has no commit log")
	}
	if owner.commits.Len() != 0 {
		t.Fatalf("owner recorded %d commits for an uncommitted session", owner.commits.Len())
	}

	// The restarted joiner reads "streaming" (session still alive) and
	// resumes — or, once the owner expires it, aborts and joins fresh.
	// Either way no item is lost and the owner still owns what it owns.
	st2, err := store.OpenLog(joinerDir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := NewNode(jAddr, 191, WithStore(st2))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := j2.StartJoin(owner.Addr(), rand.New(rand.NewPCG(193, 193))); err != nil {
		t.Fatalf("recovery join failed: %v", err)
	}
	if sum := owner.NumItems() + j2.NumItems(); sum != items {
		t.Fatalf("items not conserved: %d + %d != %d", owner.NumItems(), j2.NumItems(), items)
	}
	verifyAllKeys(t, owner.Addr(), owner.HashFunc(), items, "after mid-stream crash recovery")
}
