package p2p

// This file is the crash-fault-tolerance plane: k-successor replication
// (internal/replicate), the failure detector that declares a silent
// successor dead, the sessionless crash absorb that heals the ring
// around it, and the repair loop that re-materializes the absorbed
// range from replicas and restores the replication factor after any
// membership change.
//
// Placement invariant: the owner of a key holds the authoritative copy
// in n.data; its K−1 ring successors hold replica payloads (full copies
// or RS shards, see replicate.Payloads) in n.rdata, keyed by the same
// (point, key). The two stores never mix: handoffs move n.data only,
// and replica payloads are re-derived by repair instead of being handed
// off — a deliberately simple ownership story.
//
// Crash protocol (this node = the dead node's ring predecessor):
//
//	Stabilize probe fails ×fdThreshold       (failure detection)
//	  → crashAbsorb: end/succ := succ's succ (ring heals, no session)
//	    journal KindCrashAbsorb, segment queued for repair
//	  → next Stabilize: successor chain refreshed past the dead node
//	  → runRepairs: pull the absorbed range's replica payloads from the
//	    new successors (opReplStream), reconstruct, PutIfAbsent into
//	    n.data (never clobbering a write that landed after the absorb),
//	    then re-replicate the owned range to the current chain.
//
// In the window between death and repair, reads are still served: a Get
// that hits the dead node returns Unreachable, and any node on the
// route falls back to querying its successor chain's replica payloads
// directly (replicaFallback).

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"condisc/internal/handoff"
	"condisc/internal/interval"
	"condisc/internal/journal"
	"condisc/internal/replicate"
	"condisc/internal/store"
)

// Repair pacing: reconstruction and re-replication run in batches of
// repairBatch items with repairPause between batches, so a repair after
// a large crash never monopolizes the node's CPU or the ring's RPC
// capacity.
const (
	repairBatch = 128
	repairPause = 2 * time.Millisecond
)

// rpc performs one control RPC with this node's deadline (satellite of
// the package-level call, which keeps the default for node-less
// callers).
func (n *Node) rpc(addr string, req request) (response, error) {
	return callT(addr, req, n.rpcTimeout)
}

// --- replica plane handlers ---

// handleReplPut stores one replica payload pushed by a predecessor. It
// is a direct (never routed) write into the replica store; the payload
// is opaque here — only replicate.Reconstruct interprets it.
func (n *Node) handleReplPut(req request) response {
	if n.rdata == nil {
		return response{Err: "replication disabled"}
	}
	if err := n.rdata.Put(interval.Point(req.Target), req.Key, req.Val); err != nil {
		return response{Err: "replica put: " + err.Error()}
	}
	return response{OK: true}
}

// handleReplGet reads one replica payload (replica-fallback Get, repair
// gather). A miss is a genuine NotFound — the caller tries other
// holders.
func (n *Node) handleReplGet(req request) response {
	if n.rdata == nil {
		return response{Err: "replication disabled", NotFound: true}
	}
	v, ok, err := n.rdata.Get(interval.Point(req.Target), req.Key)
	if err != nil {
		return response{Err: "replica get: " + err.Error()}
	}
	if !ok {
		return response{Err: "replica not held: " + req.Key, NotFound: true}
	}
	return response{OK: true, Val: v}
}

// handleReplStream serves a segment's replica payloads as a framed
// chunk stream on the raw connection — the sessionless cousin of
// handleStream, used by crash repair to gather an absorbed range in one
// pass instead of per-key RPCs. Nothing is fenced or deleted: the
// stream is a read.
func (n *Node) handleReplStream(req request, conn net.Conn) {
	w := deadlineWriter{conn: conn, timeout: n.rpcTimeout}
	if n.rdata == nil {
		w.Write(handoff.EncodeError("replication disabled"))
		return
	}
	seg := interval.Segment{Start: interval.Point(req.SegStart), Len: req.SegLen}
	cur := n.rdata.Cursor(seg)
	defer cur.Close()
	_, _, _ = handoff.Stream(w, cur, n.chunkBytes, func() {})
}

// pullReplStream collects a segment's replica payloads from one holder.
func (n *Node) pullReplStream(addr string, seg interval.Segment) ([]store.Item, error) {
	conn, err := net.DialTimeout("tcp", addr, n.rpcTimeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(n.rpcTimeout))
	req := request{Op: opReplStream, SegStart: uint64(seg.Start), SegLen: seg.Len}
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return nil, err
	}
	var items []store.Item
	_, err = handoff.ReadStream(bufio.NewReaderSize(conn, 64<<10), func(chunk []store.Item) error {
		items = append(items, chunk...)
		return nil
	}, func() {
		conn.SetReadDeadline(time.Now().Add(streamIdleTimeout(n.rpcTimeout)))
	})
	return items, err
}

// --- quorum writes ---

// replicatePut pushes an owned Put's replica payloads to the successor
// chain and enforces the write quorum. It runs OUTSIDE the node mutex
// (the local write already landed under it); on a missed quorum the
// response is rewritten into an error, so the writer knows the value is
// not yet crash-safe — the local copy stays, and repair converges the
// replicas once the successors are reachable again.
func (n *Node) replicatePut(req request, resp *response, succs []NodeInfo) {
	payloads := replicate.Payloads(n.repl, req.Val)
	acks := 1 // the owner's own durable write
	failed := 0
	for i, s := range succs {
		if i >= len(payloads) {
			break
		}
		if s.Addr == n.addr {
			continue
		}
		r := request{Op: opReplPut, Key: req.Key, Val: payloads[i], Target: req.Target}
		if _, err := n.rpc(s.Addr, r); err == nil {
			acks++
			n.met.replPuts.Inc()
		} else {
			failed++
		}
	}
	if failed > 0 {
		// A transient push failure leaves the value under-replicated even
		// when the quorum was met; mark the owned range dirty so the next
		// stabilization's repair pass re-replicates it — without this the
		// value stays degraded until some unrelated membership change.
		n.mu.Lock()
		n.replDirty = true
		n.mu.Unlock()
	}
	// NeedAcksFor, not NeedAcks: a sharded value needs dataK surviving
	// shards to reconstruct, so the ack set must stay recoverable even if
	// the owner crashes right after acking.
	if need := n.repl.NeedAcksFor(len(req.Val)); acks < need {
		n.met.replQuorumFail.Inc()
		*resp = response{Err: fmt.Sprintf("write quorum not reached (%d of %d acks)", acks, need),
			Hops: resp.Hops, Stale: resp.Stale}
	}
}

// --- replica-fallback reads ---

// replicaFallback tries to serve a failed Get from replica payloads:
// its own replica store first (in small rings every node holds replicas
// for every other), then the cached successor chain via opReplGet. At
// the dead node's predecessor the chain is exactly the dead owner's
// replica-holder list, so a read that failed with Unreachable resolves
// here without waiting for repair. Returns base unchanged when the
// value cannot be reconstructed.
func (n *Node) replicaFallback(req request, base response) response {
	n.met.replFallbacks.Inc()
	n.mu.Lock()
	succs := append([]NodeInfo(nil), n.succs...)
	n.mu.Unlock()
	var payloads [][]byte
	p := interval.Point(req.Target)
	if n.rdata != nil {
		if v, ok, _ := n.rdata.Get(p, req.Key); ok {
			payloads = append(payloads, v)
		}
	}
	if val, ok := replicate.Reconstruct(payloads); ok {
		return n.fallbackHit(req, base, val)
	}
	for _, s := range succs {
		if s.Addr == n.addr {
			continue
		}
		r, err := n.rpc(s.Addr, request{Op: opReplGet, Key: req.Key, Target: req.Target})
		if err != nil || !r.OK {
			continue
		}
		payloads = append(payloads, r.Val)
		if val, ok := replicate.Reconstruct(payloads); ok {
			return n.fallbackHit(req, base, val)
		}
	}
	return base
}

func (n *Node) fallbackHit(req request, base response, val []byte) response {
	n.met.replFallbackOK.Inc()
	n.tel.Emitf("repl.fallback", "served %q from replicas (owner unreachable or repairing)", req.Key)
	return response{OK: true, Val: val, Hops: base.Hops, Stale: base.Stale,
		ID: n.id, Addr: n.addr, RingVer: n.ringVer.Load()}
}

// fallbackWanted reports whether a failed Get response should attempt
// the replica fallback: the owner (or some hop toward it) was
// unreachable, or this node owns the key's range but its crash repair
// has not finished re-materializing it.
func (n *Node) fallbackWanted(resp response) bool {
	if !n.repl.Enabled() {
		return false
	}
	if resp.Unreachable {
		return true
	}
	if !resp.NotFound {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.repairPending
}

// --- failure detection + crash absorb ---

// noteSuccMiss records one failed successor probe; trip reports that
// the detector's threshold was reached and the successor should be
// declared dead. Accrual is per-successor: any successful probe, or a
// successor change, resets the count.
func (n *Node) noteSuccMiss(probed NodeInfo) (trip bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.fdThreshold <= 0 || n.succ.ID != probed.ID || n.succ.Addr != probed.Addr {
		return false
	}
	if n.succ.Addr == n.addr {
		return false // singleton ring: nothing to detect
	}
	n.fdMisses++
	n.met.fdSuspicion.Set(int64(n.fdMisses))
	return n.fdMisses >= n.fdThreshold && !n.leaving && n.absorbing == 0
}

// noteSuccHit clears the detector after a successful probe.
func (n *Node) noteSuccHit() {
	n.mu.Lock()
	if n.fdMisses != 0 {
		n.fdMisses = 0
		n.met.fdSuspicion.Set(0)
	}
	n.mu.Unlock()
}

// crashAbsorb declares the successor dead and absorbs its segment
// WITHOUT a handoff session — there is no one left to stream from. The
// ring pointer extension is the same single sanctioned mutation a leave
// absorption publishes (setEndSuccLocked), but the absorbed range's
// items exist only as replica payloads on the new successor chain until
// runRepairs re-materializes them; the segment is queued for exactly
// that.
func (n *Node) crashAbsorb(dead NodeInfo) error {
	n.mu.Lock()
	if n.succ.ID != dead.ID || n.succ.Addr != dead.Addr || n.leaving || n.absorbing > 0 {
		n.fdMisses = 0
		n.met.fdSuspicion.Set(0)
		n.mu.Unlock()
		return nil
	}
	self := NodeInfo{ID: n.id, Point: uint64(n.x), Addr: n.addr}
	var next NodeInfo
	switch {
	case len(n.succs) > 1 && n.succs[1].Addr != dead.Addr && n.succs[1].ID != n.id:
		// The cached chain names the dead node's successor: heal past it.
		next = n.succs[1]
	case n.succsWrapped && len(n.succs) == 1 && n.succs[0].ID == dead.ID:
		// The last healthy walk wrapped right after the successor: this
		// was affirmatively a two-node ring, so the survivor owns the full
		// circle again.
		next = self
	default:
		// The successor's successor is unknown (the chain walk never got
		// past the dead node, or the cache predates a successor change).
		// Absorbing the whole circle here would split-brain a larger ring,
		// so decline; the detector stays tripped and the absorb retries
		// once a later probe or patch reveals a live next hop.
		n.mu.Unlock()
		n.tel.Emitf("crash.absorb", "successor %s suspected dead but its successor is unknown; declining absorb until the chain resolves", dead.Addr)
		return nil
	}
	var deadSeg interval.Segment
	if next.ID == n.id {
		// Two-node ring: the survivor owns the full circle again.
		deadSeg = interval.Segment{Start: n.end, Len: uint64(n.x - n.end)}
	} else {
		deadSeg = interval.Segment{Start: n.end, Len: uint64(interval.Point(next.Point) - n.end)}
	}
	misses := n.fdMisses
	n.fdMisses = 0
	n.setEndSuccLocked(interval.Point(next.Point), next)
	if next.ID == n.id {
		n.pred = self
	}
	n.patchBackLocked(NodeInfo{ID: dead.ID}, true)
	if n.repl.Enabled() {
		n.repairPending = true
		n.repairSegs = append(n.repairSegs, deadSeg)
		n.replDirty = true
	}
	n.jrn.Record(journal.KindCrashAbsorb, n.ringVer.Load(), 0,
		dead.ID, uint64(next.Point), uint64(misses))
	n.mu.Unlock()
	n.met.crashAbsorbs.Inc()
	n.met.fdSuspicion.Set(0)
	n.tel.Emitf("crash.absorb", "successor %s silent for %d probes; absorbed [%v,+%d), new successor %s",
		dead.Addr, misses, deadSeg.Start, deadSeg.Len, next.Addr)
	if next.ID != n.id {
		sendPatch(next.Addr, request{Op: opSetPred, NewPoint: uint64(self.Point), NewAddr: n.addr, NewID: n.id})
	}
	n.notifyImageCovers(false)
	return nil
}

// refreshSuccs rebuilds the cached successor chain from the successor's
// fresh opState response (one extra RPC per additional hop). The chain
// is the replica placement target list; a change — a join, leave, or
// crash anywhere in the next K−1 ring positions — marks the owned range
// for re-replication.
func (n *Node) refreshSuccs(st response) {
	want := n.repl.K - 1
	if want < 2 {
		// Even fd-only nodes track two hops: the crash absorb needs the
		// successor's successor to heal the ring around a dead node.
		want = 2
	}
	chain := []NodeInfo{{ID: st.ID, Point: st.Point, Addr: st.Addr}}
	next := NodeInfo{ID: st.SuccID, Point: st.End, Addr: st.SuccAddr}
	// wrapped means the walk came back to this node (or cycled): the
	// chain affirmatively enumerates every other live ring member. A walk
	// that broke on an unreachable hop leaves wrapped false — a short
	// chain then means "unknown", never "small ring".
	wrapped := false
	for len(chain) < want {
		if next.ID == n.id || next.Addr == n.addr {
			wrapped = true
			break // wrapped around the ring
		}
		if next.Addr == "" {
			break // successor reported no onward pointer: unknown, not a wrap
		}
		dup := false
		for _, c := range chain {
			if c.ID == next.ID {
				dup = true
				break
			}
		}
		if dup {
			wrapped = true
			break
		}
		chain = append(chain, next)
		if len(chain) >= want {
			break
		}
		r, err := n.rpc(next.Addr, request{Op: opState})
		if err != nil {
			break // a dead node mid-chain: keep the prefix, fd handles the rest
		}
		next = NodeInfo{ID: r.SuccID, Point: r.End, Addr: r.SuccAddr}
	}
	n.mu.Lock()
	changed := len(chain) != len(n.succs)
	if !changed {
		for i := range chain {
			if chain[i].ID != n.succs[i].ID {
				changed = true
				break
			}
		}
	}
	n.succs = chain
	n.succsWrapped = wrapped
	if changed && n.repl.Enabled() {
		n.replDirty = true
	}
	n.mu.Unlock()
}

// --- repair ---

// runRepairs is the re-replication/repair pass at the end of a
// stabilization round: first re-materialize any crash-absorbed ranges
// from their replica holders, then push the owned range's replica
// payloads to the (possibly changed) successor chain. Both halves are
// rate-limited (repairBatch/repairPause) and idempotent — PutIfAbsent
// on the pull side, overwriting payload pushes on the push side.
func (n *Node) runRepairs() {
	if !n.repl.Enabled() {
		return
	}
	n.mu.Lock()
	segs := n.repairSegs
	n.repairSegs = nil
	dirty := n.replDirty
	n.replDirty = false
	pending := n.repairPending
	succs := append([]NodeInfo(nil), n.succs...)
	seg := n.segmentLocked()
	n.mu.Unlock()
	if len(segs) == 0 && !dirty && !pending {
		return
	}
	n.met.repairRuns.Inc()
	var retry []interval.Segment
	for _, s := range segs {
		if !n.repairAbsorbed(s, succs) {
			retry = append(retry, s)
		}
	}
	n.repairOwned(seg, succs)
	n.mu.Lock()
	// A segment whose gather missed the reconstruction quorum goes back
	// on the queue (keeping repairPending, and with it the replica-read
	// fallback) — dropping it after one failed pass would turn a
	// transient partition into permanent NotFounds.
	n.repairSegs = append(n.repairSegs, retry...)
	if len(n.repairSegs) == 0 {
		n.repairPending = false
	}
	n.mu.Unlock()
}

// repairAbsorbed re-materializes one crash-absorbed segment: gather its
// replica payloads from the successor chain (each holder streams its
// slice in one pass) plus the local replica store, reconstruct every
// key, and insert whatever is not already present — a write that landed
// at this node after the absorb is fresher than any replica and must
// win, which is exactly store.PutIfAbsent's contract.
//
// The return value reports whether the gather contacted at least a
// reconstruction quorum of remote holders (replicate.ReconstructQuorum,
// capped by how many the chain names): only such a pass may retire the
// segment — a gather that reached fewer holders (say, a partition right
// after the absorb) may simply have missed payloads that still exist,
// so the caller re-queues the segment instead.
func (n *Node) repairAbsorbed(seg interval.Segment, succs []NodeInfo) bool {
	type ik struct {
		p   interval.Point
		key string
	}
	gathered := make(map[ik][][]byte)
	add := func(it store.Item) {
		k := ik{it.Point, it.Key}
		gathered[k] = append(gathered[k], it.Value)
	}
	if n.rdata != nil {
		_ = n.rdata.Ascend(seg, func(it store.Item) bool { add(it); return true })
	}
	remote, reached := 0, 0
	for _, s := range succs {
		if s.Addr == n.addr {
			continue
		}
		remote++
		items, err := n.pullReplStream(s.Addr, seg)
		if err != nil {
			continue // a still-dead holder; the others suffice at quorum
		}
		reached++
		for _, it := range items {
			add(it)
		}
	}
	var repaired, volume int
	for k, payloads := range gathered {
		val, ok := replicate.Reconstruct(payloads)
		if !ok {
			continue // below the code's threshold; lost at this replication factor
		}
		wrote, err := store.PutIfAbsent(n.data, k.p, k.key, val)
		if err == nil && wrote {
			repaired++
			volume += len(val)
			if repaired%repairBatch == 0 {
				time.Sleep(repairPause)
			}
		}
	}
	n.met.repairItems.Add(int64(repaired))
	n.met.repairBytes.Add(int64(volume))
	need := n.repl.ReconstructQuorum()
	if need > remote {
		// The chain itself names fewer holders (tiny ring, or the sole
		// survivor pulling only from its own replica store): reaching all
		// of them is the best any pass can do.
		need = remote
	}
	ok := reached >= need
	if !ok {
		n.tel.Emitf("repair.absorbed", "gather for [%v,+%d) reached %d of %d holders (quorum %d); re-queueing segment",
			seg.Start, seg.Len, reached, remote, need)
		return false
	}
	n.tel.Emitf("repair.absorbed", "re-materialized %d items (%d bytes) of [%v,+%d) from %d replica sources",
		repaired, volume, seg.Start, seg.Len, len(gathered))
	return true
}

// repairOwned re-replicates the owned range to the current successor
// chain. It walks the live store with a cursor (so concurrent writes
// interleave freely) in rate-limited batches; pushes are plain replica
// puts, so repeating them is idempotent.
func (n *Node) repairOwned(seg interval.Segment, succs []NodeInfo) {
	targets := 0
	for _, s := range succs {
		if s.Addr != n.addr {
			targets++
		}
	}
	if targets == 0 {
		return
	}
	cur := n.data.Cursor(seg)
	defer cur.Close()
	pushed := 0
	for {
		items, err := cur.Next(repairBatch)
		if err != nil || len(items) == 0 {
			break
		}
		for _, it := range items {
			payloads := replicate.Payloads(n.repl, it.Value)
			for i, s := range succs {
				if i >= len(payloads) {
					break
				}
				if s.Addr == n.addr {
					continue
				}
				r := request{Op: opReplPut, Key: it.Key, Val: payloads[i], Target: uint64(it.Point)}
				if _, err := n.rpc(s.Addr, r); err == nil {
					n.met.replPuts.Inc()
				}
			}
			pushed++
		}
		time.Sleep(repairPause)
	}
	if pushed > 0 {
		n.tel.Emitf("repair.owned", "re-replicated %d owned items to %d successors", pushed, targets)
	}
}
