package p2p

// This file wires the internal/handoff session protocol into the node:
// Join and Leave both move their segment's items as a streaming, two-phase
// (prepare → stream → commit) transfer instead of a gob map inside one
// RPC. Ownership — ring pointers on the sender plus the sender-side range
// delete — flips only at commit, and the receiver promotes its durably
// staged items into its live store BEFORE asking for that commit, so a
// crash or disconnect at any point leaves exactly one owner and every
// item in at least one durable store.
//
// Join (the joiner drives; the segment owner is the sender):
//
//	joiner                         owner
//	  |--- opHandPrepare(mid) ------>|  fence [mid,end), register session
//	  |<-- ring info ----------------|
//	  |--- opHandStream ------------>|  cursor over the fenced range
//	  |<== framed chunks ===========>|  staged durably as they arrive
//	  |   (disconnect? reconnect with FromPoint/FromKey and resume)
//	  |   promote staging → live store (durable, still unowned)
//	  |--- opHandCommit ------------>|  delete range + end/succ := joiner
//	  |<-- ok ----------------------|
//	  |   adopt ring pointers, serve, patch covers, stabilize
//
// Leave (the leaver offers; its predecessor drives the same pull):
//
//	leaver                         pred
//	  |--- opLeave(seg, succ) ------>|  accept, then asynchronously:
//	  |<== opHandStream pull ========|  leaver streams its segment
//	  |                              |  pred promotes, extends end/succ
//	  |<-- opHandCommit -------------|  leaver clears store, wakes Leave()
//	  |   repoint successor, close
//
// A restarted joiner (same address and data directory) finds its staging
// manifest, probes the owner with opHandStatus, and resumes the stream,
// finishes a committed session, or aborts cleanly and joins fresh.

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"condisc/internal/handoff"
	"condisc/internal/interval"
	"condisc/internal/journal"
	"condisc/internal/store"
)

// sessMeta is the sender-side per-session state: what to do at commit.
type sessMeta struct {
	kind   string // handoff.RoleJoin or handoff.RoleLeave
	joiner NodeInfo
	// ringVer is the node's (end, succ) version at prepare time. A join
	// commit whose stamp is stale AND whose range is no longer the segment
	// tail was prepared against a boundary that has since moved (a leave
	// absorption extended it): it can be refused definitively instead of
	// making the joiner spin on retries that can never succeed.
	ringVer uint64
}

// Stream reconnect policy: a broken stream connection is retried with the
// receiver's resume position; a sender refusal (unknown/expired session)
// is terminal.
const (
	streamAttempts   = 4
	streamRetryDelay = 25 * time.Millisecond
	// joinAttempts bounds the lookup/prepare retries of StartJoin: each
	// refusal (a contested midpoint mid-handoff to a concurrent joiner,
	// an owner absorbing a leave, a route through a still-joining node)
	// retries at a fresh uniformly-sampled point.
	joinAttempts   = 8
	joinRetryDelay = 50 * time.Millisecond
)

// errHookKill marks a test-injected receiver death: the caller must NOT
// clean up (no abort, no staging removal) — the point is to leave the
// on-disk state exactly as a crash would.
var errHookKill = errors.New("p2p: handoff receiver killed by test hook")

func u64s(v uint64) string { return strconv.FormatUint(v, 10) }

func metaU64(m map[string]string, k string) uint64 {
	v, _ := strconv.ParseUint(m[k], 10, 64)
	return v
}

// --- joiner side ---

// StartJoin joins an existing network through the bootstrap address,
// implementing Algorithm Join of §2.1 with the Improved Single Choice ID
// rule of §4: sample a random z, look up its owner, and take the middle of
// that owner's segment. The item transfer is a resumable handoff session;
// if this node crashed mid-join and was restarted on the same address and
// data directory, the recovered session is resumed (or aborted cleanly)
// before any fresh join.
func (n *Node) StartJoin(bootstrap string, rng *rand.Rand) error {
	// Serve (fast refusals, see handle) from the first moment other nodes
	// can learn this address — a concurrent joiner may be told we are its
	// successor before our own join completes.
	n.serve()
	if rec := n.recovered; rec != nil {
		n.recovered = nil
		joined, err := n.resumeJoin(rec)
		if joined || err != nil {
			return err
		}
		// The sender had expired the session and kept the range; the
		// rollback is done and a fresh join follows.
	}
	// Pick a split point and prepare a session at its owner. The first
	// attempt takes the middle of the owner's segment (Improved Single
	// Choice, §4); a refusal — the point's surroundings are mid-handoff
	// to another concurrent joiner, or the owner is absorbing a leave —
	// retries with the fresh uniform sample itself (plain Single Choice),
	// which lands in a disjoint sub-range with fresh randomness instead
	// of recomputing the same contested midpoint.
	var prep response
	var sess uint64
	var joinPt interval.Point
	var ownerAddr string
	for attempt := 0; ; attempt++ {
		retriable := func(err error) error {
			// A refused lookup (a route through a node that is itself
			// mid-join answers "joining; retry") is as transient as a
			// refused prepare: burn an attempt, don't fail the join.
			if attempt >= joinAttempts-1 {
				return err
			}
			time.Sleep(joinRetryDelay)
			return nil
		}
		z := interval.Point(rng.Uint64())
		owner, err := lookupVia(bootstrap, z)
		if err != nil {
			if rerr := retriable(err); rerr != nil {
				return rerr
			}
			continue
		}
		p := interval.Point(owner.Point) + interval.Point(uint64(owner.End-owner.Point)/2)
		if attempt > 0 {
			p = z
		}
		if uint64(p) == owner.Point { // degenerate tiny segment; fall back
			p = interval.Point(rng.Uint64())
			owner, err = lookupVia(bootstrap, p)
			if err != nil {
				if rerr := retriable(err); rerr != nil {
					return rerr
				}
				continue
			}
			if uint64(p) == owner.Point {
				continue
			}
		}
		sess = rng.Uint64() | 1
		prep, err = n.rpc(owner.Addr, request{Op: opHandPrepare, Session: sess,
			NewPoint: uint64(p), NewAddr: n.addr, NewID: n.id})
		if err == nil {
			joinPt, ownerAddr = p, owner.Addr
			break
		}
		if prep.Err == "" || attempt >= joinAttempts-1 {
			return err // transport failure, or out of retries
		}
		// A refused prepare (contested point, owner absorbing a leave) is
		// transient on the scale of a transfer — pace the retries so the
		// budget actually spans one instead of burning out in
		// milliseconds of round-trips.
		time.Sleep(joinRetryDelay)
	}
	// The session range is exactly this node's future segment (bounded at
	// the nearest concurrent join session, if any); the ring identities
	// needed to adopt it at commit time ride in the manifest, so a
	// restarted joiner can finish without re-asking anyone.
	seg := interval.Segment{Start: joinPt, Len: uint64(interval.Point(prep.End) - joinPt)}
	meta := map[string]string{
		"pred_id": u64s(prep.ID), "pred_point": u64s(prep.Point), "pred_addr": prep.Addr,
		"succ_id": u64s(prep.SuccID), "succ_addr": prep.SuccAddr,
	}
	rec, err := handoff.Begin(n.stagingDir(sess), sess, handoff.RoleJoin, seg, ownerAddr, meta)
	if err != nil {
		return err
	}
	return n.completeJoin(rec)
}

// resumeJoin resolves a join session recovered from disk against the
// sender's authoritative state. joined reports that the node is now part
// of the ring; (false, nil) means the session was aborted cleanly and the
// caller should join fresh.
func (n *Node) resumeJoin(rec *handoff.Receiver) (joined bool, err error) {
	st, serr := n.rpc(rec.Sender, request{Op: opHandStatus, Session: rec.ID})
	if serr != nil {
		// The sender is unreachable, so "who owns the range" cannot be
		// decided: aborting could demote items we own, resuming could
		// duplicate items the sender kept. Keep the staging untouched and
		// surface the ambiguity.
		return false, fmt.Errorf("p2p: recovered handoff session %x unresolved (sender %s unreachable): %w",
			rec.ID, rec.Sender, serr)
	}
	switch st.State {
	case handoff.StateStreaming.String():
		// The sender still holds the fenced session: continue where the
		// staged prefix ends.
		return true, n.completeJoin(rec)
	case handoff.StateCommitted.String():
		// The commit already landed — this node owns the range (the
		// sender deleted its copy); only the local finish was lost.
		if err := rec.Promote(n.data); err != nil {
			return false, err
		}
		n.adoptFromReceiver(rec)
		if err := rec.Finish(); err != nil {
			return false, err
		}
		n.serve()
		n.afterJoin()
		return true, nil
	default:
		// Unknown: the sender expired the session and kept the range.
		// Roll back (deleting any promoted items — the sender owns them)
		// and let the caller join fresh.
		return false, rec.Abort(n.data)
	}
}

// completeJoin runs stream → promote → commit → adopt for a prepared
// session (fresh or recovered).
func (n *Node) completeJoin(rec *handoff.Receiver) error {
	t0 := time.Now()
	if err := n.pullStream(rec); err != nil {
		var re *handoff.RemoteError
		if errors.As(err, &re) {
			// The sender refused the session (expired or aborted): it
			// kept the range; roll our side back.
			if aerr := rec.Abort(n.data); aerr != nil {
				return aerr
			}
			return fmt.Errorf("p2p: join handoff aborted by sender: %w", err)
		}
		// Transport failure after all retries, or a test-injected kill:
		// leave the staging session intact for recovery on restart.
		return err
	}
	// Promote before commit: the items become durable and live at their
	// future owner BEFORE the current owner is allowed to delete them.
	if err := rec.Promote(n.data); err != nil {
		return err
	}
	committed, definitive := n.resolveCommit(rec.Sender, rec.ID)
	if !definitive {
		// The sender is unreachable and the commit's fate unknown: keep
		// the staging session untouched so a restart (or retry) can
		// resolve it against the sender later.
		return fmt.Errorf("p2p: commit of join session %x unresolved (owner unreachable)", rec.ID)
	}
	if !committed {
		if aerr := rec.Abort(n.data); aerr != nil {
			return aerr
		}
		return fmt.Errorf("p2p: join session %x expired before commit; the owner kept the range", rec.ID)
	}
	if n.handoffCommitHook != nil {
		if herr := n.handoffCommitHook(); herr != nil {
			// Test-injected crash in the post-commit window: leave the
			// staging session exactly as a dying process would.
			return fmt.Errorf("%w: %v", errHookKill, herr)
		}
	}
	n.adoptFromReceiver(rec)
	if err := rec.Finish(); err != nil {
		return err
	}
	n.tel.Emitf("join.commit", "session %x: adopted [%v,+%d) from %s in %s",
		rec.ID, rec.Seg.Start, rec.Seg.Len, rec.Sender, time.Since(t0).Round(time.Millisecond))
	n.serve()
	n.afterJoin()
	return nil
}

// adoptFromReceiver installs the ring state a committed join session
// implies: the session range is the node's segment, the sender its
// predecessor, the sender's old successor its successor.
func (n *Node) adoptFromReceiver(rec *handoff.Receiver) {
	pred := NodeInfo{ID: metaU64(rec.Meta, "pred_id"), Point: metaU64(rec.Meta, "pred_point"), Addr: rec.Meta["pred_addr"]}
	succ := NodeInfo{ID: metaU64(rec.Meta, "succ_id"), Point: uint64(rec.Seg.End()), Addr: rec.Meta["succ_addr"]}
	n.mu.Lock()
	n.x = rec.Seg.Start
	n.pred = pred
	n.setEndSuccLocked(rec.Seg.End(), succ)
	n.setBackLocked([]NodeInfo{pred})
	n.ready = true
	// The adopted range arrived with no replica payloads anywhere (the
	// sender's replicas cover its OLD segment, not ours): mark it for
	// re-replication so the first stabilization round pushes it out.
	n.replDirty = n.repl.Enabled()
	n.mu.Unlock()
}

// afterJoin repoints the successor and announces the join (the post-
// transfer half of Algorithm Join). Everything here runs AFTER the
// commit, so failures must never surface as a failed join — the caller
// would tear down a node that already owns the range. All steps are
// best-effort with bounded retry; a stale successor pred pointer is only
// a stabilization hint, and the periodic Stabilize pass repairs whatever
// a lost message leaves behind.
func (n *Node) afterJoin() {
	succ := n.succInfo()
	if succ.Addr != n.addr {
		sendPatch(succ.Addr, request{Op: opSetPred, NewPoint: uint64(n.Point()), NewAddr: n.addr, NewID: n.id})
	}
	// Incrementally announce the join to the nodes whose backward tables
	// must now contain us: the covers of our segment's forward images.
	n.notifyImageCovers(false)
	_ = n.Stabilize()
}

// pullStream drives the receiving end of a session's chunk stream,
// reconnecting with the resume position after transport failures. A
// sender refusal (RemoteError) and a test-injected kill are terminal.
func (n *Node) pullStream(rec *handoff.Receiver) error {
	var lastErr error
	for attempt := 0; attempt < streamAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(streamRetryDelay)
		}
		err := n.pullOnce(rec)
		if err == nil {
			return nil
		}
		var re *handoff.RemoteError
		if errors.As(err, &re) || errors.Is(err, errHookKill) {
			return err
		}
		lastErr = err
	}
	return lastErr
}

func (n *Node) pullOnce(rec *handoff.Receiver) error {
	req := request{Op: opHandStream, Session: rec.ID}
	if p, key, ok, err := rec.ResumeAfter(); err != nil {
		return err
	} else if ok {
		req.FromPoint, req.FromKey, req.HasFrom = uint64(p), key, true
	}
	conn, err := net.DialTimeout("tcp", rec.Sender, n.rpcTimeout)
	if err != nil {
		return fmt.Errorf("p2p: dial %s: %w", rec.Sender, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(n.rpcTimeout))
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return fmt.Errorf("p2p: encode stream request: %w", err)
	}
	chunk := 0
	count, err := handoff.ReadStream(bufio.NewReaderSize(conn, 64<<10), func(items []store.Item) error {
		if n.handoffChunkHook != nil {
			if herr := n.handoffChunkHook(chunk); herr != nil {
				return fmt.Errorf("%w: %v", errHookKill, herr)
			}
		}
		chunk++
		return rec.Apply(items)
	}, func() {
		// Per-frame idle deadline, extended before every frame read: a
		// live stream can take arbitrarily long in total, but a sender
		// that goes silent mid-stream (crash, partition) must not pin
		// this receiver — and its staged range — forever. Generous (10×
		// the RPC deadline) so a sender merely slow under load is never
		// falsely abandoned; on expiry the read errors, the connection
		// drops, and pullStream retries or rolls the session back.
		conn.SetReadDeadline(time.Now().Add(streamIdleTimeout(n.rpcTimeout)))
	})
	n.met.handItemsIn.Add(int64(count))
	return err
}

// streamIdleTimeout is the receiver's bound on sender silence BETWEEN
// stream frames — deliberately much larger than the per-RPC deadline
// (which covers dial + one request/response), because a frame's arrival
// time depends on the sender's store and load, but still finite so a
// dead sender cannot leak the receiver's staging session.
func streamIdleTimeout(rpc time.Duration) time.Duration { return 10 * rpc }

// Commit-ambiguity resolution: when a commit RPC fails in transport, the
// commit may have been applied with its response lost — or may still be
// in flight inside the sender. A pure status probe cannot settle the
// latter (a "streaming" answer can be overtaken by the delayed commit a
// moment later, and a receiver that rolled back on it would then lose
// the range from both sides), so the receiver asks the sender to ABORT:
// abort and commit serialize at the sender, making either answer final.
// The sender stays reachable for the whole receiver-silence TTL (a
// leaver blocks in Leave() until commit or expiry), so a handful of
// spaced attempts resolve every single-failure case; only a sender that
// crashed in exactly this window stays unknown.
const (
	commitProbeAttempts = 5
	commitProbeDelay    = 100 * time.Millisecond
)

// commitWaitAttempts bounds how long a receiver re-sends a commit the
// sender refused with Retry (an inner sub-range waiting for the outer
// session to resolve). 40 × 250ms rides out a slow outer stream; past it
// the receiver gives up and rolls back (the outer session most likely
// aborted, after which this commit can never be accepted).
const (
	commitWaitAttempts = 40
	commitWaitDelay    = 250 * time.Millisecond
)

// resolveCommit asks the sender to commit session id and pins down the
// outcome. definitive=false means the sender was unreachable for every
// attempt and the commit's fate is genuinely unknown; otherwise
// committed reports the authoritative answer (after a refusal, or after
// an explicit abort landed, the sender keeps the range — and no delayed
// commit can land afterwards).
func (n *Node) resolveCommit(sender string, id uint64) (committed, definitive bool) {
	for attempt := 0; attempt < commitWaitAttempts; attempt++ {
		resp, err := n.rpc(sender, request{Op: opHandCommit, Session: id})
		if err == nil {
			return true, true
		}
		if resp.Err == "" {
			// Transport failure: the request may still be in flight and
			// could land after any status probe — resolve by abort.
			return n.resolveByAbort(sender, id)
		}
		if !resp.Retry {
			return false, true // definitive remote refusal
		}
		time.Sleep(commitWaitDelay)
	}
	return false, true // the outer session never resolved; roll back
}

// resolveByAbort settles a transport-ambiguous commit by asking the
// sender to abort the session: abort and commit serialize at the sender,
// so either answer is final.
func (n *Node) resolveByAbort(sender string, id uint64) (committed, definitive bool) {
	for attempt := 0; attempt < commitProbeAttempts; attempt++ {
		time.Sleep(commitProbeDelay)
		st, serr := n.rpc(sender, request{Op: opHandAbort, Session: id})
		if serr == nil {
			return st.State == handoff.StateCommitted.String(), true
		}
	}
	return false, false
}

// --- sender side ---

// handleHandPrepare opens a join session: the upper part of this node's
// segment is fenced and registered, but ownership does not move — that
// happens at commit. The response carries the ring identities the joiner
// will adopt.
//
// Concurrent disjoint joins: the prepared range is bounded at the start
// of the nearest already-streaming join session after p, so a second
// joiner splitting the same owner gets the disjoint sub-range [p, bound)
// — and that bounding session's joiner as its successor — instead of a
// refusal. Only a p inside an already-fenced range still refuses (the
// session registry's overlap check): one range, one mover.
//
// An inbound leave absorption does NOT refuse the prepare: the session is
// stamped with the current ring version, and the commit path validates
// the stamp (and the boundary geometry) before flipping — so a join may
// stream concurrently with an absorption, and whichever publishes its
// pointer update second detects the other and resolves cleanly instead of
// both being serialized up front.
func (n *Node) handleHandPrepare(req request) response {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leaving {
		return response{Err: "node is leaving; retry via another node"}
	}
	if n.absorbExtended {
		return response{Err: "leave absorption resolving; retry"}
	}
	p := interval.Point(req.NewPoint)
	if !n.segmentLocked().Contains(p) || p == n.x {
		return response{Err: fmt.Sprintf("join point %v outside segment", p)}
	}
	upper := interval.Segment{Start: p, Len: uint64(n.end - p)}
	if n.x == n.end { // full circle: the joiner takes [p, x)
		upper = interval.Segment{Start: p, Len: uint64(n.x - p)}
	}
	// The joiner's ring successor: by default this node's successor, but
	// if an active join session starts inside [p, end) the new joiner's
	// range stops there and that session's joiner becomes its successor.
	succID, succAddr := n.succ.ID, n.succ.Addr
	if n.x == n.end { // singleton network: this node is its own successor
		succID, succAddr = n.id, n.addr
	}
	for _, s := range n.sessions.Streaming() {
		meta, ok := s.Meta.(sessMeta)
		if !ok || meta.kind != handoff.RoleJoin {
			continue
		}
		if d := uint64(s.Seg.Start - p); d > 0 && d < upper.Len {
			upper.Len = d
			succID, succAddr = meta.joiner.ID, meta.joiner.Addr
		}
	}
	joiner := NodeInfo{ID: req.NewID, Point: req.NewPoint, Addr: req.NewAddr}
	meta := sessMeta{kind: handoff.RoleJoin, joiner: joiner, ringVer: n.ringVer.Load()}
	if _, err := n.sessions.Prepare(req.Session, upper, req.NewAddr, meta); err != nil {
		return response{Err: err.Error()}
	}
	n.met.handPrepares.Inc()
	n.jrn.Record(journal.KindHandPrepare, meta.ringVer, 0,
		req.Session, uint64(upper.Start), upper.Len)
	n.tel.Emitf("handoff.prepare", "session %x: fenced [%v,+%d) for joiner %s",
		req.Session, upper.Start, upper.Len, req.NewAddr)
	return response{
		OK: true,
		ID: n.id, Point: uint64(n.x), Addr: n.addr,
		End: uint64(upper.End()), SuccID: succID, SuccAddr: succAddr,
	}
}

// handleStream serves a session's chunk stream on the raw connection: a
// store cursor walks the fenced range (optionally resumed strictly after
// the receiver's last staged position) in O(chunk) memory, extending the
// write deadline and the session TTL per frame.
func (n *Node) handleStream(req request, conn net.Conn) {
	writeDeadline := func() { conn.SetWriteDeadline(time.Now().Add(n.rpcTimeout)) }
	sess, ok := n.sessions.Get(req.Session)
	if !ok {
		writeDeadline()
		conn.Write(handoff.EncodeError("unknown session"))
		return
	}
	cur := n.data.Cursor(sess.Seg)
	defer cur.Close()
	if req.HasFrom {
		cur.Seek(interval.Point(req.FromPoint), req.FromKey)
	}
	w := deadlineWriter{conn: conn, timeout: n.rpcTimeout}
	// A failed write just drops the connection: the receiver reconnects
	// and resumes; the session stays alive until commit or TTL expiry.
	count, sum, _ := handoff.Stream(w, cur, n.chunkBytes, func() { n.sessions.Touch(sess) })
	n.met.handBytesOut.Add(int64(sum))
	n.jrn.Record(journal.KindHandStream, n.ringVer.Load(), 0,
		req.Session, count, sum)
}

// deadlineWriter extends the connection's write deadline before every
// write, so a stream is bounded per frame rather than in total.
type deadlineWriter struct {
	conn    net.Conn
	timeout time.Duration
}

func (w deadlineWriter) Write(p []byte) (int, error) {
	w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
	return w.conn.Write(p)
}

// handleHandCommit is the ownership flip — the single decision point of a
// transfer. Under the node mutex: mark the session committed, durably
// record the decision, delete the moved range from the local store, and
// (for a join) repoint end/succ at the joiner. After this response the
// receiver is the owner; before it, this node is. There is no state in
// which both or neither own the range.
//
// The ordering matters: the commit decision comes FIRST, so a refusal
// (expired session) leaves the items untouched on this side — the old
// delete-then-commit order could delete here and then refuse, making the
// receiver roll back too and lose the range from both sides. A delete
// failure after the decision leaves unreachable duplicates in a range we
// no longer own — the recoverable direction.
func (n *Node) handleHandCommit(req request) response {
	n.mu.Lock()
	sess, ok := n.sessions.Get(req.Session)
	if !ok {
		// Idempotent re-commit: a receiver whose first commit RPC lost
		// its response (or a restarted receiver replaying it) must read
		// success, not a refusal it would roll back on — the range is
		// already durably theirs.
		if n.committedLocked(req.Session) {
			resp := response{OK: true, ID: n.id, Point: uint64(n.x), Addr: n.addr, End: uint64(n.end)}
			n.mu.Unlock()
			return resp
		}
		n.mu.Unlock()
		return response{Err: "unknown or expired session"}
	}
	meta, _ := sess.Meta.(sessMeta)
	if meta.kind == handoff.RoleJoin && sess.Seg.End() != n.end {
		if meta.ringVer != n.ringVer.Load() && !n.tailSessionLocked() {
			// The boundary moved since this session was prepared (a leave
			// absorption extended the segment past the session's end) and
			// no active session ends at the new boundary — no chain of
			// commits can ever make this range the tail again. Flipping
			// would punch a hole: the joiner's range [Start, End) plus our
			// remaining [x, Start) would strand the absorbed [End, end).
			// Refuse definitively; the joiner rolls back and re-joins
			// against the extended segment.
			n.mu.Unlock()
			return response{Err: "segment boundary moved since prepare; rejoin"}
		}
		// Commit-in-order: concurrent join sessions stream freely, but
		// only the OUTERMOST unresolved sub-range — the one ending at
		// the current segment end — may flip ownership. An inner range
		// committing while the outer one is still streaming would, if
		// the outer later aborted, shrink the segment past a range the
		// owner keeps: a hole no stabilization can repair (and a
		// successor pointer at a joiner that never joined). The inner
		// receiver retries until the outer session commits (then its own
		// end matches) or aborts (then this session can never commit and
		// the receiver gives up and rolls back).
		n.mu.Unlock()
		return response{Err: "outer handoff session unresolved; retry commit", Retry: true}
	}
	if _, ok := n.sessions.Commit(req.Session); !ok {
		n.mu.Unlock()
		return response{Err: "session expired at commit"}
	}
	if n.commits != nil {
		// Durable before anything outside this critical section can read
		// "committed": status and abort handlers serialize on n.mu, and
		// the response is emitted after this returns — so once any
		// observer sees the commit, a crash cannot forget it (dual-crash
		// corner). A crash between the registry flip above and this
		// record is indistinguishable from one just before the flip:
		// nobody observed it and nothing was deleted yet. A failed write
		// only degrades to the old in-memory-registry behaviour.
		_ = n.commits.Record(req.Session)
	}
	if meta.kind == handoff.RoleJoin {
		// The commit-in-order gate above guarantees this session's range
		// is exactly the tail of the current segment, so adopting the
		// joiner always shrinks end from Seg.End() to Seg.Start — there
		// is no out-of-order case left to guard.
		n.setEndSuccLocked(sess.Seg.Start, meta.joiner)
	}
	// RoleLeave: nothing to repoint here — the leaver is departing and
	// its blocked Leave() call wakes on the session's done channel.
	isJoin := uint64(0)
	if meta.kind == handoff.RoleJoin {
		isJoin = 1
	}
	n.jrn.Record(journal.KindHandCommit, n.ringVer.Load(), 0,
		req.Session, uint64(sess.Seg.Start), isJoin)
	resp := response{OK: true, ID: n.id, Point: uint64(n.x), Addr: n.addr, End: uint64(sess.Seg.End())}
	n.mu.Unlock()
	n.met.handCommits.Inc()
	n.tel.Emitf("handoff.commit", "session %x (%s): released [%v,+%d)",
		req.Session, meta.kind, sess.Seg.Start, sess.Seg.Len)

	// The durable range delete runs outside the node mutex: on a WAL
	// store it can trigger compaction, and serving lookups meanwhile is
	// safe — the committed range is no longer this node's segment (a
	// leaver refuses item ops outright), so nothing reads or writes it
	// here. A delete failure leaves unreachable duplicates in a range we
	// no longer own — the recoverable direction; the old delete-then-
	// commit order could instead delete here, then refuse the commit and
	// make the receiver roll back too, losing the range from both sides.
	// (A departing leaver's Close waits out this handler's goroutine, so
	// the store cannot close under the delete.)
	delSeg := sess.Seg
	if meta.kind == handoff.RoleLeave {
		// The whole store departs with the node, not just the nominal
		// segment — a WAL store must not replay anything on a later
		// restart at this directory.
		delSeg = interval.FullCircle
	}
	_ = n.data.DeleteRange(delSeg)
	return resp
}

// tailSessionLocked reports whether some streaming join session ends
// exactly at the current segment end (mu held). While one does, an
// inner session's mismatched commit is a transient ordering matter —
// the chain of outer commits can still make it the tail — so it must
// retry rather than fail.
func (n *Node) tailSessionLocked() bool {
	for _, s := range n.sessions.Streaming() {
		meta, ok := s.Meta.(sessMeta)
		if ok && meta.kind == handoff.RoleJoin && s.Seg.End() == n.end {
			return true
		}
	}
	return false
}

// committedLocked reports whether the session is known committed, by the
// in-memory registry or the durable commit log (mu held).
func (n *Node) committedLocked(id uint64) bool {
	if n.sessions.Status(id) == handoff.StateCommitted {
		return true
	}
	return n.commits != nil && n.commits.Contains(id)
}

// handleHandAbort settles an ambiguous commit for the receiver: abort
// the session unless it already committed, and say which happened. Abort
// and commit serialize on the node mutex, so the answer is final — after
// an "unknown" reply a delayed commit RPC can no longer land (its session
// is gone), and after a "committed" reply the receiver owns the range.
func (n *Node) handleHandAbort(req request) response {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.committedLocked(req.Session) {
		return response{OK: true, State: handoff.StateCommitted.String()}
	}
	n.sessions.Abort(req.Session)
	n.met.handAborts.Inc()
	n.jrn.Record(journal.KindHandAbort, n.ringVer.Load(), 0, req.Session, 0, 0)
	n.tel.Emitf("handoff.abort", "session %x: aborted by receiver probe", req.Session)
	return response{OK: true, State: handoff.StateUnknown.String()}
}

// handleHandStatus answers a receiver's crash-recovery probe. The
// in-memory registry is authoritative while this process lives; after a
// restart the durable commit log still answers for committed sessions.
// It takes the node mutex for the whole read so a probe cannot observe
// the instant between a commit's registry flip and its durable record.
func (n *Node) handleHandStatus(req request) response {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.sessions.Status(req.Session)
	if st == handoff.StateUnknown && n.commits != nil && n.commits.Contains(req.Session) {
		st = handoff.StateCommitted
	}
	return response{OK: true, State: st.String()}
}

// --- leave ---

// Leave gracefully exits: offer the segment to the ring predecessor, let
// it pull the item stream, and shut down once it commits. Ownership flips
// at the commit this node's own session registry serializes — a crash on
// either side before that leaves this node the owner (and still serving
// after an abort); a crash after it leaves the predecessor the owner with
// every item durably promoted.
func (n *Node) Leave() error {
	n.mu.Lock()
	if n.leaving {
		n.mu.Unlock()
		return fmt.Errorf("p2p: leave already in progress")
	}
	if n.sessions.Active() > 0 || n.absorbing > 0 {
		// A join is mid-transfer out of our segment (its session holds a
		// fence a leave stream would violate), or an inbound absorption
		// is still promoting items our leave stream would miss and our
		// commit's store clear would destroy.
		n.mu.Unlock()
		return fmt.Errorf("p2p: handoff in progress; retry")
	}
	pred, succ := n.pred, n.succ
	end := n.end
	if pred.Addr == n.addr {
		// Last node: there is nowhere to hand the items — keep the store
		// intact (a WAL store retains them for a future restart) and stop.
		n.mu.Unlock()
		n.Close()
		return nil
	}
	seg := n.segmentLocked()
	sessID := (n.id ^ uint64(time.Now().UnixNano())) | 1
	sess, err := n.sessions.Prepare(sessID, seg, pred.Addr, sessMeta{kind: handoff.RoleLeave})
	if err != nil {
		n.mu.Unlock()
		return err
	}
	n.leaving = true // refuse item ops: the store must match the stream
	n.mu.Unlock()
	n.tel.Emitf("leave.offer", "session %x: offering [%v,+%d) to predecessor %s",
		sessID, seg.Start, seg.Len, pred.Addr)
	// Tell the covers of our forward images to drop us from their backward
	// tables before the segment moves (with ack + bounded retry; routing
	// falls back to ring hops for any entry a truly lost patch leaves
	// stale, until Stabilize repairs it).
	n.notifyImageCovers(true)
	offer := request{Op: opLeave, Session: sessID, SrcAddr: n.addr,
		SegStart: uint64(seg.Start), SegLen: seg.Len,
		Target: uint64(end), NewAddr: succ.Addr, NewID: succ.ID, NewPoint: uint64(succ.Point)}
	if _, err := n.rpc(pred.Addr, offer); err != nil {
		n.sessions.Abort(sessID)
		n.mu.Lock()
		n.leaving = false
		n.mu.Unlock()
		return err
	}
	// The predecessor accepted and pulls the stream; block until it
	// commits or the session expires (expiry is lazy, so poll it).
	for done := false; !done; {
		select {
		case <-sess.Done():
			done = true
		case <-time.After(n.handoffTTL / 2):
			n.sessions.Status(sessID) // lazily expire an abandoned session
		}
	}
	if sess.State() != handoff.StateCommitted {
		n.mu.Lock()
		n.leaving = false
		n.mu.Unlock()
		n.tel.Emitf("leave.fail", "session %x: predecessor never committed; resuming service", sessID)
		return fmt.Errorf("p2p: leave handoff did not commit (predecessor failed mid-transfer); resuming service")
	}
	n.tel.Emitf("leave.commit", "session %x: segment absorbed by %s; departing", sessID, pred.Addr)
	// Committed: the predecessor owns segment and items, and the commit
	// handler already cleared the local store (durably, on a WAL store).
	// Everything further is best-effort cleanup and must not surface as a
	// failed leave — the caller would treat a departed, committed node as
	// still alive. A lost setpred leaves the successor's pred pointer
	// stale, which is only a stabilization hint and is rewritten by the
	// next join in that gap.
	if succ.Addr != n.addr {
		sendPatch(succ.Addr, request{Op: opSetPred, NewPoint: pred.Point, NewAddr: pred.Addr, NewID: pred.ID})
	}
	n.Close()
	return nil
}

// handleLeave accepts a leave offer (§2.1: "the predecessor on the ring
// enlarges its segment") and pulls the handoff session asynchronously —
// the offer RPC stays fast no matter how many items the leaver holds.
func (n *Node) handleLeave(req request) response {
	n.mu.Lock()
	if n.leaving {
		// We are handing our own store off; absorbing now would park the
		// items in a store about to be cleared. The leaver aborts and
		// retries once our own leave resolves.
		n.mu.Unlock()
		return response{Err: "node is leaving; retry"}
	}
	if n.absorbing > 0 {
		// One absorption at a time: two concurrent extensions would race
		// to rewrite end to different targets. Outbound JOIN sessions, by
		// contrast, no longer exclude an absorption — their streams
		// interleave freely, and absorbLeave validates the boundary under
		// the mutex before publishing its extension.
		n.mu.Unlock()
		return response{Err: "absorption in progress; retry"}
	}
	if req.SrcAddr != n.succ.Addr {
		n.mu.Unlock()
		return response{Err: "leave offer from a node that is not my successor"}
	}
	n.absorbing++
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer func() {
			n.mu.Lock()
			n.absorbing--
			n.mu.Unlock()
		}()
		n.absorbLeave(req)
	}()
	return response{OK: true}
}

// absorbLeave is the predecessor's receiving side of a leave: pull the
// stream into staging, promote, extend the ring pointers, and commit at
// the leaver. The pointers extend before the commit RPC so that the
// moment the leaver's Leave() returns, this node already answers for the
// absorbed range; if the commit then turns out refused (the leaver
// expired the session in that instant), the extension and promotion are
// rolled back and the leaver resumes serving.
//
// Join streams run concurrently with the pull: the extension validates,
// under the mutex, that this node's segment still ends at the leaver's
// start — if an interleaved join committed the tail meanwhile, the
// leaver is no longer the ring successor and the absorption aborts
// itself at the leaver instead of swallowing the joiner's range.
func (n *Node) absorbLeave(req request) {
	seg := interval.Segment{Start: interval.Point(req.SegStart), Len: req.SegLen}
	rec, err := handoff.Begin(n.stagingDir(req.Session), req.Session, handoff.RoleLeave, seg, req.SrcAddr, nil)
	if err != nil {
		return
	}
	if err := n.pullStream(rec); err != nil {
		rec.Abort(n.data)
		return
	}
	if err := rec.Promote(n.data); err != nil {
		rec.Abort(n.data)
		return
	}
	n.mu.Lock()
	if n.end != seg.Start {
		// A join committed while the stream was in flight: the segment
		// tail now belongs to the joiner, the leaver is no longer this
		// node's ring successor, and extending end over the joiner's range
		// would swallow it. Abort authoritatively at the leaver (abort and
		// commit serialize there, so its Leave() resolves as failed and it
		// resumes serving — its next attempt goes to its new predecessor,
		// the joiner) and roll the promotion back.
		n.mu.Unlock()
		_, _ = n.rpc(req.SrcAddr, request{Op: opHandAbort, Session: req.Session})
		rec.Abort(n.data)
		return
	}
	oldEnd, oldSucc := n.end, n.succ
	n.setEndSuccLocked(interval.Point(req.Target), NodeInfo{ID: req.NewID, Point: req.NewPoint, Addr: req.NewAddr})
	n.absorbExtended = true
	n.mu.Unlock()
	committed, definitive := n.resolveCommit(req.SrcAddr, req.Session)
	n.mu.Lock()
	n.absorbExtended = false
	if definitive && !committed {
		// The leaver refused (expired session, or still streaming — the
		// commit never landed) and authoritatively kept its items: roll
		// the pointer extension and the promotion back; the leaver's
		// Leave() times out and resumes serving.
		n.setEndSuccLocked(oldEnd, oldSucc)
	}
	n.mu.Unlock()
	switch {
	case committed:
		rec.Finish()
		// The absorbed range's replicas were placed by the DEPARTED node
		// for its own successor chain; re-replicate for ours.
		n.mu.Lock()
		n.replDirty = n.repl.Enabled()
		n.mu.Unlock()
		n.tel.Emitf("absorb.commit", "session %x: absorbed leaver %s's [%v,+%d)",
			req.Session, req.SrcAddr, seg.Start, seg.Len)
	case definitive:
		rec.Abort(n.data)
		n.tel.Emitf("absorb.abort", "session %x: leaver %s kept its range", req.Session, req.SrcAddr)
	default:
		// The leaver is unreachable and the commit's fate unknown. If it
		// landed, the leaver durably cleared its store before going away
		// — our promoted copies are the ONLY copies, so aborting here
		// would destroy the segment. Keep the items and the extended
		// pointers: the lossy direction is unrecoverable, the duplicate
		// direction is not (a leaver that in fact crashed un-committed
		// re-serves its WAL on restart, and the stabilization pass
		// re-adopts it as successor, shadowing our duplicates).
		rec.Finish()
	}
}

// --- staging recovery ---

// stagingDir returns the disk staging directory for an inbound session,
// or "" (memory staging) when the node's store is not disk-backed — a
// crash then loses the staged items, but it loses the live items too, so
// the session is simply gone, not half-applied.
func (n *Node) stagingDir(id uint64) string {
	lg, ok := n.data.(*store.Log)
	if !ok {
		return ""
	}
	return fmt.Sprintf("%s.handoff-%016x", lg.Dir(), id)
}

// recoverStaging scans for staging sessions a previous process left
// beside this node's WAL directory. A join session is kept for StartJoin
// to resolve against the sender; a leave session that had reached
// promotion is finished (if our commit reached the leaver, these items
// exist nowhere else; if it did not, the duplicates are overwritten by
// the authoritative copies at the next absorb); anything else is debris
// whose sender still owns the range, and is discarded.
func (n *Node) recoverStaging() error {
	lg, ok := n.data.(*store.Log)
	if !ok {
		return nil
	}
	dirs, err := filepath.Glob(lg.Dir() + ".handoff-*")
	if err != nil {
		return err
	}
	for _, dir := range dirs {
		rec, err := handoff.Recover(dir)
		if err != nil {
			os.RemoveAll(dir) // crashed before the manifest write: nothing staged
			continue
		}
		switch {
		case rec.Role == handoff.RoleJoin && n.recovered == nil:
			n.recovered = rec
		case rec.Role == handoff.RoleLeave && rec.State() == handoff.StagePromoting:
			if err := rec.Promote(n.data); err != nil {
				return err
			}
			if err := rec.Finish(); err != nil {
				return err
			}
		default:
			if err := rec.Abort(nil); err != nil {
				return err
			}
		}
	}
	return nil
}
