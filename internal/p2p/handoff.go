package p2p

// This file wires the internal/handoff session protocol into the node:
// Join and Leave both move their segment's items as a streaming, two-phase
// (prepare → stream → commit) transfer instead of a gob map inside one
// RPC. Ownership — ring pointers on the sender plus the sender-side range
// delete — flips only at commit, and the receiver promotes its durably
// staged items into its live store BEFORE asking for that commit, so a
// crash or disconnect at any point leaves exactly one owner and every
// item in at least one durable store.
//
// Join (the joiner drives; the segment owner is the sender):
//
//	joiner                         owner
//	  |--- opHandPrepare(mid) ------>|  fence [mid,end), register session
//	  |<-- ring info ----------------|
//	  |--- opHandStream ------------>|  cursor over the fenced range
//	  |<== framed chunks ===========>|  staged durably as they arrive
//	  |   (disconnect? reconnect with FromPoint/FromKey and resume)
//	  |   promote staging → live store (durable, still unowned)
//	  |--- opHandCommit ------------>|  delete range + end/succ := joiner
//	  |<-- ok ----------------------|
//	  |   adopt ring pointers, serve, patch covers, stabilize
//
// Leave (the leaver offers; its predecessor drives the same pull):
//
//	leaver                         pred
//	  |--- opLeave(seg, succ) ------>|  accept, then asynchronously:
//	  |<== opHandStream pull ========|  leaver streams its segment
//	  |                              |  pred promotes, extends end/succ
//	  |<-- opHandCommit -------------|  leaver clears store, wakes Leave()
//	  |   repoint successor, close
//
// A restarted joiner (same address and data directory) finds its staging
// manifest, probes the owner with opHandStatus, and resumes the stream,
// finishes a committed session, or aborts cleanly and joins fresh.

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"condisc/internal/handoff"
	"condisc/internal/interval"
	"condisc/internal/store"
)

// sessMeta is the sender-side per-session state: what to do at commit.
type sessMeta struct {
	kind   string // handoff.RoleJoin or handoff.RoleLeave
	joiner NodeInfo
}

// Stream reconnect policy: a broken stream connection is retried with the
// receiver's resume position; a sender refusal (unknown/expired session)
// is terminal.
const (
	streamAttempts   = 4
	streamRetryDelay = 25 * time.Millisecond
)

// errHookKill marks a test-injected receiver death: the caller must NOT
// clean up (no abort, no staging removal) — the point is to leave the
// on-disk state exactly as a crash would.
var errHookKill = errors.New("p2p: handoff receiver killed by test hook")

func u64s(v uint64) string { return strconv.FormatUint(v, 10) }

func metaU64(m map[string]string, k string) uint64 {
	v, _ := strconv.ParseUint(m[k], 10, 64)
	return v
}

// --- joiner side ---

// StartJoin joins an existing network through the bootstrap address,
// implementing Algorithm Join of §2.1 with the Improved Single Choice ID
// rule of §4: sample a random z, look up its owner, and take the middle of
// that owner's segment. The item transfer is a resumable handoff session;
// if this node crashed mid-join and was restarted on the same address and
// data directory, the recovered session is resumed (or aborted cleanly)
// before any fresh join.
func (n *Node) StartJoin(bootstrap string, rng *rand.Rand) error {
	if rec := n.recovered; rec != nil {
		n.recovered = nil
		joined, err := n.resumeJoin(rec)
		if joined || err != nil {
			return err
		}
		// The sender had expired the session and kept the range; the
		// rollback is done and a fresh join follows.
	}
	z := interval.Point(rng.Uint64())
	owner, err := lookupVia(bootstrap, z)
	if err != nil {
		return err
	}
	mid := interval.Point(owner.Point) + interval.Point(uint64(owner.End-owner.Point)/2)
	if uint64(mid) == owner.Point { // degenerate tiny segment; fall back
		mid = interval.Point(rng.Uint64())
		owner, err = lookupVia(bootstrap, mid)
		if err != nil {
			return err
		}
	}
	sess := rng.Uint64() | 1
	prep, err := call(owner.Addr, request{Op: opHandPrepare, Session: sess,
		NewPoint: uint64(mid), NewAddr: n.addr, NewID: n.id})
	if err != nil {
		return err
	}
	// The session range is exactly this node's future segment; the ring
	// identities needed to adopt it at commit time ride in the manifest,
	// so a restarted joiner can finish without re-asking anyone.
	seg := interval.Segment{Start: mid, Len: uint64(interval.Point(prep.End) - mid)}
	meta := map[string]string{
		"pred_id": u64s(prep.ID), "pred_point": u64s(prep.Point), "pred_addr": prep.Addr,
		"succ_id": u64s(prep.SuccID), "succ_addr": prep.SuccAddr,
	}
	rec, err := handoff.Begin(n.stagingDir(sess), sess, handoff.RoleJoin, seg, owner.Addr, meta)
	if err != nil {
		return err
	}
	return n.completeJoin(rec)
}

// resumeJoin resolves a join session recovered from disk against the
// sender's authoritative state. joined reports that the node is now part
// of the ring; (false, nil) means the session was aborted cleanly and the
// caller should join fresh.
func (n *Node) resumeJoin(rec *handoff.Receiver) (joined bool, err error) {
	st, serr := call(rec.Sender, request{Op: opHandStatus, Session: rec.ID})
	if serr != nil {
		// The sender is unreachable, so "who owns the range" cannot be
		// decided: aborting could demote items we own, resuming could
		// duplicate items the sender kept. Keep the staging untouched and
		// surface the ambiguity.
		return false, fmt.Errorf("p2p: recovered handoff session %x unresolved (sender %s unreachable): %w",
			rec.ID, rec.Sender, serr)
	}
	switch st.State {
	case handoff.StateStreaming.String():
		// The sender still holds the fenced session: continue where the
		// staged prefix ends.
		return true, n.completeJoin(rec)
	case handoff.StateCommitted.String():
		// The commit already landed — this node owns the range (the
		// sender deleted its copy); only the local finish was lost.
		if err := rec.Promote(n.data); err != nil {
			return false, err
		}
		n.adoptFromReceiver(rec)
		if err := rec.Finish(); err != nil {
			return false, err
		}
		n.serve()
		n.afterJoin()
		return true, nil
	default:
		// Unknown: the sender expired the session and kept the range.
		// Roll back (deleting any promoted items — the sender owns them)
		// and let the caller join fresh.
		return false, rec.Abort(n.data)
	}
}

// completeJoin runs stream → promote → commit → adopt for a prepared
// session (fresh or recovered).
func (n *Node) completeJoin(rec *handoff.Receiver) error {
	if err := n.pullStream(rec); err != nil {
		var re *handoff.RemoteError
		if errors.As(err, &re) {
			// The sender refused the session (expired or aborted): it
			// kept the range; roll our side back.
			if aerr := rec.Abort(n.data); aerr != nil {
				return aerr
			}
			return fmt.Errorf("p2p: join handoff aborted by sender: %w", err)
		}
		// Transport failure after all retries, or a test-injected kill:
		// leave the staging session intact for recovery on restart.
		return err
	}
	// Promote before commit: the items become durable and live at their
	// future owner BEFORE the current owner is allowed to delete them.
	if err := rec.Promote(n.data); err != nil {
		return err
	}
	committed, definitive := n.resolveCommit(rec.Sender, rec.ID)
	if !definitive {
		// The sender is unreachable and the commit's fate unknown: keep
		// the staging session untouched so a restart (or retry) can
		// resolve it against the sender later.
		return fmt.Errorf("p2p: commit of join session %x unresolved (owner unreachable)", rec.ID)
	}
	if !committed {
		if aerr := rec.Abort(n.data); aerr != nil {
			return aerr
		}
		return fmt.Errorf("p2p: join session %x expired before commit; the owner kept the range", rec.ID)
	}
	n.adoptFromReceiver(rec)
	if err := rec.Finish(); err != nil {
		return err
	}
	n.serve()
	n.afterJoin()
	return nil
}

// adoptFromReceiver installs the ring state a committed join session
// implies: the session range is the node's segment, the sender its
// predecessor, the sender's old successor its successor.
func (n *Node) adoptFromReceiver(rec *handoff.Receiver) {
	pred := NodeInfo{ID: metaU64(rec.Meta, "pred_id"), Point: metaU64(rec.Meta, "pred_point"), Addr: rec.Meta["pred_addr"]}
	succ := NodeInfo{ID: metaU64(rec.Meta, "succ_id"), Point: uint64(rec.Seg.End()), Addr: rec.Meta["succ_addr"]}
	n.mu.Lock()
	n.x = rec.Seg.Start
	n.end = rec.Seg.End()
	n.pred, n.succ = pred, succ
	n.setBackLocked([]NodeInfo{pred})
	n.mu.Unlock()
}

// afterJoin repoints the successor and announces the join (the post-
// transfer half of Algorithm Join). Everything here runs AFTER the
// commit, so failures must never surface as a failed join — the caller
// would tear down a node that already owns the range. All steps are
// best-effort with bounded retry; a stale successor pred pointer is only
// a stabilization hint, and the periodic Stabilize pass repairs whatever
// a lost message leaves behind.
func (n *Node) afterJoin() {
	succ := n.succInfo()
	if succ.Addr != n.addr {
		sendPatch(succ.Addr, request{Op: opSetPred, NewPoint: uint64(n.Point()), NewAddr: n.addr, NewID: n.id})
	}
	// Incrementally announce the join to the nodes whose backward tables
	// must now contain us: the covers of our segment's forward images.
	n.notifyImageCovers(false)
	_ = n.Stabilize()
}

// pullStream drives the receiving end of a session's chunk stream,
// reconnecting with the resume position after transport failures. A
// sender refusal (RemoteError) and a test-injected kill are terminal.
func (n *Node) pullStream(rec *handoff.Receiver) error {
	var lastErr error
	for attempt := 0; attempt < streamAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(streamRetryDelay)
		}
		err := n.pullOnce(rec)
		if err == nil {
			return nil
		}
		var re *handoff.RemoteError
		if errors.As(err, &re) || errors.Is(err, errHookKill) {
			return err
		}
		lastErr = err
	}
	return lastErr
}

func (n *Node) pullOnce(rec *handoff.Receiver) error {
	req := request{Op: opHandStream, Session: rec.ID}
	if p, key, ok, err := rec.ResumeAfter(); err != nil {
		return err
	} else if ok {
		req.FromPoint, req.FromKey, req.HasFrom = uint64(p), key, true
	}
	conn, err := net.DialTimeout("tcp", rec.Sender, rpcTimeout)
	if err != nil {
		return fmt.Errorf("p2p: dial %s: %w", rec.Sender, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(rpcTimeout))
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return fmt.Errorf("p2p: encode stream request: %w", err)
	}
	chunk := 0
	_, err = handoff.ReadStream(bufio.NewReaderSize(conn, 64<<10), func(items []store.Item) error {
		if n.handoffChunkHook != nil {
			if herr := n.handoffChunkHook(chunk); herr != nil {
				return fmt.Errorf("%w: %v", errHookKill, herr)
			}
		}
		chunk++
		return rec.Apply(items)
	}, func() {
		conn.SetReadDeadline(time.Now().Add(rpcTimeout)) // a live stream never times out between frames
	})
	return err
}

// Commit-ambiguity probes: when a commit RPC fails in transport, the
// commit may have been applied with its response lost, so the sender is
// probed for the session's status. The sender stays reachable for the
// whole receiver-silence TTL (a leaver blocks in Leave() until commit or
// expiry), so a handful of spaced probes resolve every single-failure
// case; only a sender that crashed in exactly this window stays unknown.
const (
	commitProbeAttempts = 5
	commitProbeDelay    = 100 * time.Millisecond
)

// resolveCommit asks the sender to commit session id and pins down the
// outcome. definitive=false means the sender was unreachable for every
// probe and the commit's fate is genuinely unknown; otherwise committed
// reports the authoritative answer (a refusal or a still/again-streaming
// session both mean the sender kept the range).
func (n *Node) resolveCommit(sender string, id uint64) (committed, definitive bool) {
	resp, err := call(sender, request{Op: opHandCommit, Session: id})
	if err == nil {
		return true, true
	}
	if resp.Err != "" {
		return false, true // remote refusal, definitive
	}
	for attempt := 0; attempt < commitProbeAttempts; attempt++ {
		time.Sleep(commitProbeDelay)
		st, serr := call(sender, request{Op: opHandStatus, Session: id})
		if serr == nil {
			return st.State == handoff.StateCommitted.String(), true
		}
	}
	return false, false
}

// --- sender side ---

// handleHandPrepare opens a join session: the upper part of this node's
// segment is fenced and registered, but ownership does not move — that
// happens at commit. The response carries the ring identities the joiner
// will adopt.
func (n *Node) handleHandPrepare(req request) response {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leaving {
		return response{Err: "node is leaving; retry via another node"}
	}
	if n.absorbing > 0 {
		// An inbound leave absorption is rewriting end/succ; a join
		// prepared against the pre-absorb segment would commit pointers
		// that strand the absorbed range.
		return response{Err: "node is absorbing a leave; retry"}
	}
	p := interval.Point(req.NewPoint)
	if !n.segmentLocked().Contains(p) || p == n.x {
		return response{Err: fmt.Sprintf("join point %v outside segment", p)}
	}
	upper := interval.Segment{Start: p, Len: uint64(n.end - p)}
	if n.x == n.end { // full circle: the joiner takes [p, x)
		upper = interval.Segment{Start: p, Len: uint64(n.x - p)}
	}
	joiner := NodeInfo{ID: req.NewID, Point: req.NewPoint, Addr: req.NewAddr}
	if _, err := n.sessions.Prepare(req.Session, upper, req.NewAddr, sessMeta{kind: handoff.RoleJoin, joiner: joiner}); err != nil {
		return response{Err: err.Error()}
	}
	resp := response{
		OK: true,
		ID: n.id, Point: uint64(n.x), Addr: n.addr,
		End: uint64(n.end), SuccID: n.succ.ID, SuccAddr: n.succ.Addr,
	}
	if n.x == n.end { // first split of a singleton network
		resp.End = uint64(n.x)
		resp.SuccID = n.id
		resp.SuccAddr = n.addr
	}
	return resp
}

// handleStream serves a session's chunk stream on the raw connection: a
// store cursor walks the fenced range (optionally resumed strictly after
// the receiver's last staged position) in O(chunk) memory, extending the
// write deadline and the session TTL per frame.
func (n *Node) handleStream(req request, conn net.Conn) {
	writeDeadline := func() { conn.SetWriteDeadline(time.Now().Add(rpcTimeout)) }
	sess, ok := n.sessions.Get(req.Session)
	if !ok {
		writeDeadline()
		conn.Write(handoff.EncodeError("unknown session"))
		return
	}
	cur := n.data.Cursor(sess.Seg)
	defer cur.Close()
	if req.HasFrom {
		cur.Seek(interval.Point(req.FromPoint), req.FromKey)
	}
	w := deadlineWriter{conn: conn}
	// A failed write just drops the connection: the receiver reconnects
	// and resumes; the session stays alive until commit or TTL expiry.
	_, _, _ = handoff.Stream(w, cur, n.chunkBytes, func() { n.sessions.Touch(sess) })
}

type deadlineWriter struct{ conn net.Conn }

func (w deadlineWriter) Write(p []byte) (int, error) {
	w.conn.SetWriteDeadline(time.Now().Add(rpcTimeout))
	return w.conn.Write(p)
}

// handleHandCommit is the ownership flip — the single decision point of a
// transfer. Under the node mutex: durably delete the moved range from the
// local store, mark the session committed, and (for a join) repoint
// end/succ at the joiner. After this response the receiver is the owner;
// before it, this node is. There is no state in which both or neither own
// the range.
func (n *Node) handleHandCommit(req request) response {
	n.mu.Lock()
	defer n.mu.Unlock()
	sess, ok := n.sessions.Get(req.Session)
	if !ok {
		return response{Err: "unknown or expired session"}
	}
	meta, _ := sess.Meta.(sessMeta)
	delSeg := sess.Seg
	if meta.kind == handoff.RoleLeave {
		// The whole store departs with the node, not just the nominal
		// segment — a WAL store must not replay anything on a later
		// restart at this directory.
		delSeg = interval.FullCircle
	}
	if err := n.data.DeleteRange(delSeg); err != nil {
		// The delete failed, so this node still holds (and keeps owning)
		// the items: abort the session so the receiver rolls back.
		n.sessions.Abort(req.Session)
		return response{Err: "store delete: " + err.Error()}
	}
	if _, ok := n.sessions.Commit(req.Session); !ok {
		return response{Err: "session expired at commit"}
	}
	if meta.kind == handoff.RoleJoin {
		n.end = sess.Seg.Start
		n.succ = meta.joiner
	}
	// RoleLeave: nothing to repoint here — the leaver is departing and
	// its blocked Leave() call wakes on the session's done channel.
	return response{OK: true, ID: n.id, Point: uint64(n.x), Addr: n.addr, End: uint64(sess.Seg.End())}
}

// handleHandStatus answers a receiver's crash-recovery probe.
func (n *Node) handleHandStatus(req request) response {
	return response{OK: true, State: n.sessions.Status(req.Session).String()}
}

// --- leave ---

// Leave gracefully exits: offer the segment to the ring predecessor, let
// it pull the item stream, and shut down once it commits. Ownership flips
// at the commit this node's own session registry serializes — a crash on
// either side before that leaves this node the owner (and still serving
// after an abort); a crash after it leaves the predecessor the owner with
// every item durably promoted.
func (n *Node) Leave() error {
	n.mu.Lock()
	if n.leaving {
		n.mu.Unlock()
		return fmt.Errorf("p2p: leave already in progress")
	}
	if n.sessions.Active() > 0 || n.absorbing > 0 {
		// A join is mid-transfer out of our segment (its session holds a
		// fence a leave stream would violate), or an inbound absorption
		// is still promoting items our leave stream would miss and our
		// commit's store clear would destroy.
		n.mu.Unlock()
		return fmt.Errorf("p2p: handoff in progress; retry")
	}
	pred, succ := n.pred, n.succ
	end := n.end
	if pred.Addr == n.addr {
		// Last node: there is nowhere to hand the items — keep the store
		// intact (a WAL store retains them for a future restart) and stop.
		n.mu.Unlock()
		n.Close()
		return nil
	}
	seg := n.segmentLocked()
	sessID := (n.id ^ uint64(time.Now().UnixNano())) | 1
	sess, err := n.sessions.Prepare(sessID, seg, pred.Addr, sessMeta{kind: handoff.RoleLeave})
	if err != nil {
		n.mu.Unlock()
		return err
	}
	n.leaving = true // refuse item ops: the store must match the stream
	n.mu.Unlock()
	// Tell the covers of our forward images to drop us from their backward
	// tables before the segment moves (with ack + bounded retry; routing
	// falls back to ring hops for any entry a truly lost patch leaves
	// stale, until Stabilize repairs it).
	n.notifyImageCovers(true)
	offer := request{Op: opLeave, Session: sessID, SrcAddr: n.addr,
		SegStart: uint64(seg.Start), SegLen: seg.Len,
		Target: uint64(end), NewAddr: succ.Addr, NewID: succ.ID, NewPoint: uint64(succ.Point)}
	if _, err := call(pred.Addr, offer); err != nil {
		n.sessions.Abort(sessID)
		n.mu.Lock()
		n.leaving = false
		n.mu.Unlock()
		return err
	}
	// The predecessor accepted and pulls the stream; block until it
	// commits or the session expires (expiry is lazy, so poll it).
	for done := false; !done; {
		select {
		case <-sess.Done():
			done = true
		case <-time.After(n.handoffTTL / 2):
			n.sessions.Status(sessID) // lazily expire an abandoned session
		}
	}
	if sess.State() != handoff.StateCommitted {
		n.mu.Lock()
		n.leaving = false
		n.mu.Unlock()
		return fmt.Errorf("p2p: leave handoff did not commit (predecessor failed mid-transfer); resuming service")
	}
	// Committed: the predecessor owns segment and items, and the commit
	// handler already cleared the local store (durably, on a WAL store).
	// Everything further is best-effort cleanup and must not surface as a
	// failed leave — the caller would treat a departed, committed node as
	// still alive. A lost setpred leaves the successor's pred pointer
	// stale, which is only a stabilization hint and is rewritten by the
	// next join in that gap.
	if succ.Addr != n.addr {
		sendPatch(succ.Addr, request{Op: opSetPred, NewPoint: pred.Point, NewAddr: pred.Addr, NewID: pred.ID})
	}
	n.Close()
	return nil
}

// handleLeave accepts a leave offer (§2.1: "the predecessor on the ring
// enlarges its segment") and pulls the handoff session asynchronously —
// the offer RPC stays fast no matter how many items the leaver holds.
func (n *Node) handleLeave(req request) response {
	n.mu.Lock()
	if n.leaving {
		// We are handing our own store off; absorbing now would park the
		// items in a store about to be cleared. The leaver aborts and
		// retries once our own leave resolves.
		n.mu.Unlock()
		return response{Err: "node is leaving; retry"}
	}
	if n.absorbing > 0 || n.sessions.Active() > 0 {
		// One pointer-rewriting transfer at a time: a second absorption
		// (or an outbound join session) racing this one would interleave
		// end/succ updates and strand a range.
		n.mu.Unlock()
		return response{Err: "handoff in progress; retry"}
	}
	if req.SrcAddr != n.succ.Addr {
		n.mu.Unlock()
		return response{Err: "leave offer from a node that is not my successor"}
	}
	n.absorbing++
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer func() {
			n.mu.Lock()
			n.absorbing--
			n.mu.Unlock()
		}()
		n.absorbLeave(req)
	}()
	return response{OK: true}
}

// absorbLeave is the predecessor's receiving side of a leave: pull the
// stream into staging, promote, extend the ring pointers, and commit at
// the leaver. The pointers extend before the commit RPC so that the
// moment the leaver's Leave() returns, this node already answers for the
// absorbed range; if the commit then turns out refused (the leaver
// expired the session in that instant), the extension and promotion are
// rolled back and the leaver resumes serving.
func (n *Node) absorbLeave(req request) {
	seg := interval.Segment{Start: interval.Point(req.SegStart), Len: req.SegLen}
	rec, err := handoff.Begin(n.stagingDir(req.Session), req.Session, handoff.RoleLeave, seg, req.SrcAddr, nil)
	if err != nil {
		return
	}
	if err := n.pullStream(rec); err != nil {
		rec.Abort(n.data)
		return
	}
	if err := rec.Promote(n.data); err != nil {
		rec.Abort(n.data)
		return
	}
	n.mu.Lock()
	oldEnd, oldSucc := n.end, n.succ
	n.end = interval.Point(req.Target)
	n.succ = NodeInfo{ID: req.NewID, Point: req.NewPoint, Addr: req.NewAddr}
	n.mu.Unlock()
	committed, definitive := n.resolveCommit(req.SrcAddr, req.Session)
	switch {
	case committed:
		rec.Finish()
	case definitive:
		// The leaver refused (expired session, or still streaming — the
		// commit never landed) and authoritatively kept its items: roll
		// the pointer extension and the promotion back; the leaver's
		// Leave() times out and resumes serving.
		n.mu.Lock()
		n.end, n.succ = oldEnd, oldSucc
		n.mu.Unlock()
		rec.Abort(n.data)
	default:
		// The leaver is unreachable and the commit's fate unknown. If it
		// landed, the leaver durably cleared its store before going away
		// — our promoted copies are the ONLY copies, so aborting here
		// would destroy the segment. Keep the items and the extended
		// pointers: the lossy direction is unrecoverable, the duplicate
		// direction is not (a leaver that in fact crashed un-committed
		// re-serves its WAL on restart, and the stabilization pass
		// re-adopts it as successor, shadowing our duplicates).
		rec.Finish()
	}
}

// --- staging recovery ---

// stagingDir returns the disk staging directory for an inbound session,
// or "" (memory staging) when the node's store is not disk-backed — a
// crash then loses the staged items, but it loses the live items too, so
// the session is simply gone, not half-applied.
func (n *Node) stagingDir(id uint64) string {
	lg, ok := n.data.(*store.Log)
	if !ok {
		return ""
	}
	return fmt.Sprintf("%s.handoff-%016x", lg.Dir(), id)
}

// recoverStaging scans for staging sessions a previous process left
// beside this node's WAL directory. A join session is kept for StartJoin
// to resolve against the sender; a leave session that had reached
// promotion is finished (if our commit reached the leaver, these items
// exist nowhere else; if it did not, the duplicates are overwritten by
// the authoritative copies at the next absorb); anything else is debris
// whose sender still owns the range, and is discarded.
func (n *Node) recoverStaging() error {
	lg, ok := n.data.(*store.Log)
	if !ok {
		return nil
	}
	dirs, err := filepath.Glob(lg.Dir() + ".handoff-*")
	if err != nil {
		return err
	}
	for _, dir := range dirs {
		rec, err := handoff.Recover(dir)
		if err != nil {
			os.RemoveAll(dir) // crashed before the manifest write: nothing staged
			continue
		}
		switch {
		case rec.Role == handoff.RoleJoin && n.recovered == nil:
			n.recovered = rec
		case rec.Role == handoff.RoleLeave && rec.State() == handoff.StagePromoting:
			if err := rec.Promote(n.data); err != nil {
				return err
			}
			if err := rec.Finish(); err != nil {
				return err
			}
		default:
			if err := rec.Abort(nil); err != nil {
				return err
			}
		}
	}
	return nil
}
