package p2p

import (
	"fmt"
	"math/rand/v2"
	"path/filepath"
	"testing"
	"time"

	"condisc/internal/interval"
	"condisc/internal/store"
)

// handoffHarness: a log-backed single-node network holding `items` keys,
// with a tiny chunk budget so a join transfer spans many frames.
func handoffHarness(t *testing.T, seed uint64, items int, ownerOpts ...NodeOption) (*Node, string) {
	t.Helper()
	ownerDir := filepath.Join(t.TempDir(), "owner")
	st, err := store.OpenLog(ownerDir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts := append([]NodeOption{WithStore(st), WithChunkBytes(256)}, ownerOpts...)
	owner, err := NewNode("127.0.0.1:0", seed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	owner.StartFirst(interval.FromFloat(0.42))
	cl := &Client{Bootstrap: owner.Addr()}
	for i := 0; i < items; i++ {
		if _, err := cl.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%03d", i)), owner.HashFunc()); err != nil {
			t.Fatal(err)
		}
	}
	return owner, ownerDir
}

// verifyAllKeys asserts every key is retrievable through bootstrap and
// returns nothing missing.
func verifyAllKeys(t *testing.T, bootstrap string, h func(string) interval.Point, items int, when string) {
	t.Helper()
	cl := &Client{Bootstrap: bootstrap}
	for i := 0; i < items; i++ {
		key := fmt.Sprintf("k%03d", i)
		v, _, err := cl.Get(key, h)
		if err != nil {
			t.Fatalf("%s: get %s: %v", when, key, err)
		}
		if string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("%s: %s = %q", when, key, v)
		}
	}
}

// countLogItems reopens a WAL directory offline and returns its item count.
func countLogItems(t *testing.T, dir string) int {
	t.Helper()
	s, err := store.OpenLog(dir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	return s.Len()
}

// TestJoinerKilledMidStreamThenResumes is the acceptance scenario for the
// handoff subsystem: a log-backed joiner dies mid-stream; afterwards
// exactly one node owns the range (the owner — ownership never flipped),
// no item is lost or duplicated, and a joiner restarted on the same
// address and data directory resumes the session from its staged prefix
// and completes the join. Durability is verified by reopening both WALs
// offline at the end.
func TestJoinerKilledMidStreamThenResumes(t *testing.T) {
	const items = 300
	owner, ownerDir := handoffHarness(t, 77, items)
	defer owner.Close()

	joinerDir := filepath.Join(t.TempDir(), "joiner")
	openJoiner := func() *Node {
		st, err := store.OpenLog(joinerDir, store.LogOptions{})
		if err != nil {
			t.Fatal(err)
		}
		n, err := NewNode("127.0.0.1:0", 77, WithStore(st))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	// First incarnation: dies after two staged chunks.
	j1 := openJoiner()
	j1.handoffChunkHook = func(chunk int) error {
		if chunk >= 2 {
			return fmt.Errorf("kill -9")
		}
		return nil
	}
	err := j1.StartJoin(owner.Addr(), rand.New(rand.NewPCG(78, 78)))
	if err == nil {
		t.Fatal("killed joiner reported a successful join")
	}
	jAddr := j1.Addr()
	j1.Close() // the crash: no abort, no cleanup

	// Exactly one owner, nothing lost: the owner still serves all keys
	// from its own store (ownership never flipped), and the crashed
	// joiner's staging session survives on disk.
	if got := owner.NumItems(); got != items {
		t.Fatalf("after joiner crash the owner has %d items, want %d", got, items)
	}
	verifyAllKeys(t, owner.Addr(), owner.HashFunc(), items, "after joiner crash")
	staging, err := filepath.Glob(joinerDir + ".handoff-*")
	if err != nil || len(staging) != 1 {
		t.Fatalf("want exactly one staging dir, got %v (%v)", staging, err)
	}
	if n := countLogItems(t, staging[0]); n == 0 || n >= items {
		t.Fatalf("staging holds %d items, want a strict prefix of the range", n)
	}

	// Second incarnation on the same address + data directory: the
	// recovered session resumes from the staged prefix.
	st2, err := store.OpenLog(joinerDir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := NewNode(jAddr, 77, WithStore(st2))
	if err != nil {
		t.Fatal(err)
	}
	if j2.recovered == nil {
		t.Fatal("restarted joiner did not recover the staging session")
	}
	if err := j2.StartJoin(owner.Addr(), rand.New(rand.NewPCG(79, 79))); err != nil {
		t.Fatalf("resumed join failed: %v", err)
	}

	// The range moved exactly once: counts are disjoint and conserved,
	// every key is served, the staging session is gone.
	if sum := owner.NumItems() + j2.NumItems(); sum != items {
		t.Fatalf("items not conserved after resume: owner %d + joiner %d != %d",
			owner.NumItems(), j2.NumItems(), items)
	}
	if j2.NumItems() == 0 {
		t.Fatal("resumed joiner owns no items; the transfer did not complete")
	}
	verifyAllKeys(t, owner.Addr(), owner.HashFunc(), items, "after resumed join")
	verifyAllKeys(t, j2.Addr(), owner.HashFunc(), items, "after resumed join via joiner")
	if left, _ := filepath.Glob(joinerDir + ".handoff-*"); len(left) != 0 {
		t.Fatalf("staging session not cleaned up: %v", left)
	}

	// Durability: reopen both WALs offline — the split survives restarts
	// with no item lost or present on both sides.
	ownerN, joinerN := owner.NumItems(), j2.NumItems()
	owner.Close()
	j2.Close()
	if n := countLogItems(t, ownerDir); n != ownerN {
		t.Fatalf("owner WAL reopened with %d items, want %d", n, ownerN)
	}
	if n := countLogItems(t, joinerDir); n != joinerN {
		t.Fatalf("joiner WAL reopened with %d items, want %d", n, joinerN)
	}
}

// TestJoinerKilledExpiredSessionAbortsCleanly: if the owner expires the
// session before the joiner returns, the restarted joiner rolls its
// staging back and joins fresh — still exactly one copy of every item.
func TestJoinerKilledExpiredSessionAbortsCleanly(t *testing.T) {
	const items = 200
	owner, _ := handoffHarness(t, 91, items, WithHandoffTTL(100*time.Millisecond))
	defer owner.Close()

	joinerDir := filepath.Join(t.TempDir(), "joiner")
	st, err := store.OpenLog(joinerDir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := NewNode("127.0.0.1:0", 91, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	j1.handoffChunkHook = func(chunk int) error {
		if chunk >= 1 {
			return fmt.Errorf("kill -9")
		}
		return nil
	}
	if err := j1.StartJoin(owner.Addr(), rand.New(rand.NewPCG(92, 92))); err == nil {
		t.Fatal("killed joiner reported a successful join")
	}
	jAddr := j1.Addr()
	j1.Close()

	time.Sleep(250 * time.Millisecond) // let the owner's session expire

	// The fence must have lifted: writes to the once-fenced range land.
	if _, err := (&Client{Bootstrap: owner.Addr()}).Put("post-expiry", []byte("x"), owner.HashFunc()); err != nil {
		t.Fatalf("put after session expiry: %v", err)
	}

	st2, err := store.OpenLog(joinerDir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := NewNode(jAddr, 91, WithStore(st2))
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.StartJoin(owner.Addr(), rand.New(rand.NewPCG(93, 93))); err != nil {
		t.Fatalf("fresh join after clean abort failed: %v", err)
	}
	defer j2.Close()

	if sum := owner.NumItems() + j2.NumItems(); sum != items+1 {
		t.Fatalf("items not conserved after abort+rejoin: %d + %d != %d",
			owner.NumItems(), j2.NumItems(), items+1)
	}
	verifyAllKeys(t, j2.Addr(), owner.HashFunc(), items, "after abort and fresh join")
	if left, _ := filepath.Glob(joinerDir + ".handoff-*"); len(left) != 0 {
		t.Fatalf("aborted staging session not cleaned up: %v", left)
	}
}

// TestLeaveStreamsThroughDiskStaging: a leave between two log-backed
// nodes stages on the predecessor's disk, promotes, and cleans up; the
// leaver's WAL is empty on reopen (nothing replays) and the predecessor
// serves everything.
func TestLeaveStreamsThroughDiskStaging(t *testing.T) {
	const items = 150
	predDir := filepath.Join(t.TempDir(), "pred")
	predStore, err := store.OpenLog(predDir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := NewNode("127.0.0.1:0", 55, WithStore(predStore), WithChunkBytes(256), WithHandoffTTL(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer pred.Close()
	pred.StartFirst(interval.FromFloat(0.1))

	leaverDir := filepath.Join(t.TempDir(), "leaver")
	leaverStore, err := store.OpenLog(leaverDir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	leaver, err := NewNode("127.0.0.1:0", 55, WithStore(leaverStore), WithChunkBytes(256), WithHandoffTTL(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if err := leaver.StartJoin(pred.Addr(), rand.New(rand.NewPCG(56, 56))); err != nil {
		t.Fatal(err)
	}
	cl := &Client{Bootstrap: pred.Addr()}
	for i := 0; i < items; i++ {
		if _, err := cl.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%03d", i)), pred.HashFunc()); err != nil {
			t.Fatal(err)
		}
	}
	if leaver.NumItems() == 0 {
		t.Fatal("test needs the leaver to own part of the range")
	}

	if err := leaver.Leave(); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if got := pred.NumItems(); got != items {
		t.Fatalf("predecessor has %d items after absorb, want %d", got, items)
	}
	verifyAllKeys(t, pred.Addr(), pred.HashFunc(), items, "after streamed leave")
	if left, _ := filepath.Glob(predDir + ".handoff-*"); len(left) != 0 {
		t.Fatalf("predecessor staging not cleaned up: %v", left)
	}
	if n := countLogItems(t, leaverDir); n != 0 {
		t.Fatalf("leaver WAL replays %d handed-off items", n)
	}
}

// TestFencedPutRefusedDuringStream: while a join session is streaming, a
// put into the moving range is refused loudly instead of silently lost at
// commit.
func TestFencedPutRefusedDuringStream(t *testing.T) {
	owner, _ := handoffHarness(t, 33, 50)
	defer owner.Close()
	x, _, _, _ := owner.State()
	// The singleton owner covers the full circle; fence the quarter arc
	// opposite its start point (a session opened directly — no joiner
	// process needed to test the fence).
	mid := x + interval.Point(1)<<63
	if _, err := owner.sessions.Prepare(999, interval.Segment{Start: mid, Len: 1 << 62}, "t", sessMeta{kind: "join"}); err != nil {
		t.Fatal(err)
	}
	resp := owner.handle(request{Op: opPut, Key: "fenced", Val: []byte("x"), Target: uint64(mid) + 1})
	if resp.OK || resp.Err == "" {
		t.Fatalf("put into a fenced range was accepted: %+v", resp)
	}
	// Outside the fence writes still land.
	resp = owner.handle(request{Op: opPut, Key: "free", Val: []byte("x"), Target: uint64(x) + 1})
	if !resp.OK {
		t.Fatalf("put outside the fence refused: %+v", resp)
	}
}
