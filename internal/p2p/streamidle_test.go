package p2p

// Satellite tests for the stream idle deadline: a sender that goes
// silent mid-stream (a crash, not a clean disconnect) must not pin the
// receiver forever — the per-frame idle deadline (streamIdleTimeout)
// bounds the wait, and the session then resolves cleanly: a join keeps
// its staging for recovery, a leave absorption rolls back and frees the
// staged range.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"condisc/internal/handoff"
	"condisc/internal/interval"
	"condisc/internal/store"
)

// oneStreamFrame builds the wire bytes of the first chunk frame of a
// 5-item stream over seg (chunkBytes=1: one item per frame).
func oneStreamFrame(t *testing.T, seg interval.Segment) []byte {
	t.Helper()
	ms := store.NewMem()
	for i := 0; i < 5; i++ {
		p := seg.Start + interval.Point(uint64(i)+1)
		if err := ms.Put(p, fmt.Sprintf("it-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	cur := ms.Cursor(seg)
	defer cur.Close()
	lw := &limitWriter{max: 1}
	_, _, _ = handoff.Stream(lw, cur, 1, func() {})
	if len(lw.buf) == 0 {
		t.Fatal("no frame produced")
	}
	return lw.buf
}

// limitWriter accepts max writes, then errors (stopping the stream).
type limitWriter struct {
	buf []byte
	max int
	n   int
}

func (lw *limitWriter) Write(p []byte) (int, error) {
	if lw.n >= lw.max {
		return 0, errors.New("write limit reached")
	}
	lw.n++
	lw.buf = append(lw.buf, p...)
	return len(p), nil
}

// silentSender is a fake stream source: it accepts connections, reads
// the request, optionally emits one valid frame on the FIRST
// connection, and then holds every connection open without writing —
// exactly what a sender frozen mid-stream looks like on the wire.
func silentSender(t *testing.T, firstFrame []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var first atomic.Bool
	first.Store(true)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				var req request
				_ = gob.NewDecoder(c).Decode(&req)
				if firstFrame != nil && first.CompareAndSwap(true, false) {
					_, _ = c.Write(firstFrame)
				}
				<-done // silence: no more frames, no close
			}(conn)
		}
	}()
	t.Cleanup(func() { close(done); ln.Close() })
	return ln.Addr().String()
}

func TestReceiverTimesOutOnSilentSender(t *testing.T) {
	// The receiver of a stream whose sender goes silent before the first
	// frame must abort within the idle deadline — generous (10× the RPC
	// deadline) but finite.
	const rpcT = 50 * time.Millisecond
	sender := silentSender(t, nil)
	n, err := NewNode("127.0.0.1:0", 11, WithRPCTimeout(rpcT))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	seg := interval.Segment{Start: interval.FromFloat(0.25), Len: 1 << 40}
	rec, err := handoff.Begin("", 0x51, handoff.RoleJoin, seg, sender, nil)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	err = n.pullOnce(rec)
	elapsed := time.Since(t0)
	if err == nil {
		t.Fatal("pull from a silent sender succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
	// The idle deadline is 10×rpcTimeout = 500ms: the receiver must wait
	// at least most of it (it is not the plain RPC deadline) and must
	// not wait far beyond it (it is not unbounded).
	if elapsed < streamIdleTimeout(rpcT)/2 {
		t.Fatalf("gave up after %v — the plain RPC deadline, not the idle deadline", elapsed)
	}
	if elapsed > 6*streamIdleTimeout(rpcT) {
		t.Fatalf("receiver hung %v against a silent sender", elapsed)
	}
	if err := rec.Abort(nil); err != nil {
		t.Fatalf("session did not abort cleanly: %v", err)
	}
}

func TestAbsorbFreesStagingWhenSenderDiesMidStream(t *testing.T) {
	// A leave absorption whose sender (the leaver) dies after one frame:
	// the receiver stages the partial range, times out waiting for the
	// next frame, exhausts its reconnect attempts, and rolls back —
	// nothing promoted, ring pointers untouched, staging freed from disk.
	const rpcT = 50 * time.Millisecond
	dir := filepath.Join(t.TempDir(), "pred")
	lg, err := store.OpenLog(dir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := NewNode("127.0.0.1:0", 12, WithStore(lg), WithRPCTimeout(rpcT))
	if err != nil {
		t.Fatal(err)
	}
	defer pred.Close()
	x := interval.FromFloat(0.5)
	pred.StartFirst(x)

	seg := interval.Segment{Start: x, Len: 1 << 40}
	sender := silentSender(t, oneStreamFrame(t, seg))
	req := request{Op: opLeave, Session: 0x61, SrcAddr: sender,
		SegStart: uint64(seg.Start), SegLen: seg.Len,
		Target: uint64(seg.End()), NewAddr: pred.Addr(), NewID: pred.id, NewPoint: uint64(x)}
	pred.absorbLeave(req)

	if got := pred.NumItems(); got != 0 {
		t.Fatalf("%d staged items were promoted into the live store", got)
	}
	px, pend, _, succ := pred.State()
	if px != x || pend != x || succ.Addr != pred.Addr() {
		t.Fatalf("ring pointers moved: x=%v end=%v succ=%s", px, pend, succ.Addr)
	}
	staging, err := filepath.Glob(dir + ".handoff-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(staging) != 0 {
		t.Fatalf("staged range not freed after sender death: %v", staging)
	}
}

var _ io.Writer = (*limitWriter)(nil)
