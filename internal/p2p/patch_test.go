package p2p

import (
	"math/rand/v2"
	"testing"

	"condisc/internal/interval"
)

// backIDs snapshots a node's ID-keyed backward table.
func backIDs(n *Node) map[uint64]NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[uint64]NodeInfo, len(n.back))
	for id, e := range n.back {
		out[id] = e
	}
	return out
}

// TestJoinPatchesBackTablesIncrementally: a joining node announces itself
// to the covers of its forward images with opPatchBack, so their ID-keyed
// backward tables list it without anyone running a Stabilize pass.
func TestJoinPatchesBackTablesIncrementally(t *testing.T) {
	c, err := StartCluster(10, 71)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	joiner, err := NewNode("127.0.0.1:0", 71)
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.StartJoin(c.Nodes[0].Addr(), rand.New(rand.NewPCG(72, 73))); err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()

	// NO StabilizeAll here: only the join-time patches have run. Some node
	// whose backward image intersects the joiner's images must know it.
	found := 0
	for _, n := range c.Nodes {
		if _, ok := backIDs(n)[joiner.ID()]; ok {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no backward table learned the joiner incrementally")
	}

	// Every node's ring pointers must carry real stable IDs: the succ
	// pointer's ID names the node at the succ address (the incremental
	// patch protocol keys on these).
	byAddr := map[string]uint64{joiner.Addr(): joiner.ID()}
	for _, n := range c.Nodes {
		byAddr[n.Addr()] = n.ID()
	}
	for _, n := range append(append([]*Node(nil), c.Nodes...), joiner) {
		n.mu.Lock()
		succ := n.succ
		n.mu.Unlock()
		if succ.ID == 0 || succ.ID != byAddr[succ.Addr] {
			t.Fatalf("node %s: succ pointer %s has ID %x, want %x",
				n.Addr(), succ.Addr, succ.ID, byAddr[succ.Addr])
		}
	}

	// The patched tables route correctly end to end.
	cl := &Client{Bootstrap: c.Nodes[1].Addr()}
	if _, err := cl.Put("patched", []byte("x"), c.Hash()); err != nil {
		t.Fatal(err)
	}
	v, _, err := cl.Get("patched", c.Hash())
	if err != nil || string(v) != "x" {
		t.Fatalf("get after incremental join: %v %q", err, v)
	}
}

// TestLeaveRetractsFromBackTables: a leaving node retracts its ID from the
// backward tables referencing it, so no table keeps routing to a dead
// address even before the next stabilization round.
func TestLeaveRetractsFromBackTables(t *testing.T) {
	c, err := StartCluster(10, 81)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.StabilizeAll(2); err != nil {
		t.Fatal(err)
	}

	victim := c.Nodes[4]
	holders := 0
	for i, n := range c.Nodes {
		if i == 4 {
			continue
		}
		if _, ok := backIDs(n)[victim.ID()]; ok {
			holders++
		}
	}
	if holders == 0 {
		t.Skip("no table lists the victim; nothing to retract")
	}
	if err := victim.Leave(); err != nil {
		t.Fatal(err)
	}
	for i, n := range c.Nodes {
		if i == 4 {
			continue
		}
		if e, ok := backIDs(n)[victim.ID()]; ok {
			t.Fatalf("node %d still lists departed %x -> %s", i, e.ID, e.Addr)
		}
	}
	// Routing still works through the survivors.
	cl := &Client{Bootstrap: c.Nodes[0].Addr()}
	if _, err := cl.Put("after-leave", []byte("y"), c.Hash()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		y := interval.Point(rand.Uint64())
		if _, _, err := cl.Lookup(y); err != nil {
			t.Fatalf("lookup %d failed after retraction: %v", i, err)
		}
	}
}
