package p2p

// Tests for interleaved join and leave transfers: end/succ updates are
// version-stamped pointer writes (setEndSuccLocked), so a join stream and
// a leave absorption against the same node no longer exclude each other
// wholesale — they run concurrently and whichever publishes its pointer
// update second detects the conflict and resolves it cleanly.

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"condisc/internal/store"
)

// TestJoinPreparesAndCommitsDuringLeaveAbsorption freezes a leave
// absorption mid-stream at the predecessor and drives a complete join
// through the same predecessor while it is frozen. The old discipline
// refused the join's prepare outright ("node is absorbing a leave");
// now the prepare succeeds, the join commits first, and the resumed
// absorption detects under the mutex that the leaver is no longer the
// ring successor: it aborts itself at the leaver, whose Leave() returns
// a did-not-commit error and resumes serving. Nothing is lost: the ring
// closes over all three nodes and every key stays readable.
func TestJoinPreparesAndCommitsDuringLeaveAbsorption(t *testing.T) {
	const items = 200
	pred, _ := handoffHarness(t, 510, items, WithHandoffTTL(30*time.Second))
	defer pred.Close()

	// The leaver joins with a tiny chunk budget so its leave stream back
	// to pred spans many frames — room to freeze the absorption mid-way.
	leaver, err := NewNode("127.0.0.1:0", 510, WithChunkBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	defer leaver.Close()
	if err := leaver.StartJoin(pred.Addr(), rand.New(rand.NewPCG(511, 511))); err != nil {
		t.Fatal(err)
	}

	absorbPaused := make(chan struct{})
	absorbResume := make(chan struct{})
	var pauseOnce sync.Once
	pred.handoffChunkHook = func(chunk int) error {
		if chunk >= 1 {
			pauseOnce.Do(func() { close(absorbPaused) })
			<-absorbResume
		}
		return nil
	}

	leaveErr := make(chan error, 1)
	go func() { leaveErr <- leaver.Leave() }()
	<-absorbPaused

	pred.mu.Lock()
	absorbing := pred.absorbing
	pred.mu.Unlock()
	if absorbing != 1 {
		t.Fatalf("pred.absorbing = %d while the pull is frozen, want 1", absorbing)
	}

	// A joiner drives a COMPLETE join through pred while the absorption
	// is frozen: prepare (previously refused at this point), stream,
	// commit. Its point must land in pred's segment; a draw into the
	// leaver's segment is refused ("node is leaving") and retried at a
	// fresh point by StartJoin itself.
	joiner, err := NewNode("127.0.0.1:0", 510)
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	if err := joiner.StartJoin(pred.Addr(), rand.New(rand.NewPCG(512, 512))); err != nil {
		t.Fatalf("join during frozen absorption: %v", err)
	}

	// The join moved pred's boundary; the resumed absorption must detect
	// it and abort, failing the leave.
	close(absorbResume)
	if err := <-leaveErr; err == nil {
		t.Fatal("leave committed although a join took the absorbed boundary; the absorption should have aborted")
	}

	for round := 0; round < 3; round++ {
		for _, n := range []*Node{pred, joiner, leaver} {
			if err := n.Stabilize(); err != nil {
				t.Fatalf("stabilize: %v", err)
			}
		}
	}
	if sum := pred.NumItems() + joiner.NumItems() + leaver.NumItems(); sum != items {
		t.Fatalf("items not conserved: %d + %d + %d != %d",
			pred.NumItems(), joiner.NumItems(), leaver.NumItems(), items)
	}
	for _, n := range []*Node{pred, joiner, leaver} {
		verifyAllKeys(t, n.Addr(), pred.HashFunc(), items, "after aborted absorption via "+n.Addr())
	}
	seen := map[string]bool{}
	addr := pred.Addr()
	for i := 0; i < 4; i++ {
		st, err := call(addr, request{Op: opState})
		if err != nil {
			t.Fatal(err)
		}
		seen[st.Addr] = true
		addr = st.SuccAddr
		if addr == pred.Addr() {
			break
		}
	}
	if len(seen) != 3 {
		t.Fatalf("ring closes over %d nodes, want 3 (%v)", len(seen), seen)
	}
}

// TestLeaveCompletesDuringJoinStream is the opposite interleaving: a join
// stream out of the owner is frozen mid-pull at the joiner, and the
// owner's successor leaves meanwhile. The old discipline made the leaver
// spin ("handoff in progress; retry") until the join resolved; now the
// absorption runs to completion while the join stream is still frozen —
// Leave returns nil on the FIRST attempt. The thawed join's commit is
// then refused definitively (its session was stamped with the pre-absorb
// ring version and its range is no longer the segment tail), and the
// joiner simply rejoins against the extended segment.
func TestLeaveCompletesDuringJoinStream(t *testing.T) {
	const items = 200
	owner, _ := handoffHarness(t, 530, items, WithHandoffTTL(30*time.Second))
	defer owner.Close()

	leaverDir := t.TempDir()
	st, err := store.OpenLog(leaverDir+"/leaver", store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	leaver, err := NewNode("127.0.0.1:0", 530, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	defer leaver.Close()
	if err := leaver.StartJoin(owner.Addr(), rand.New(rand.NewPCG(531, 531))); err != nil {
		t.Fatal(err)
	}

	joinPaused := make(chan struct{})
	joinResume := make(chan struct{})
	var pauseOnce sync.Once
	joiner, err := NewNode("127.0.0.1:0", 530)
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	joiner.handoffChunkHook = func(chunk int) error {
		if chunk >= 1 {
			pauseOnce.Do(func() { close(joinPaused) })
			<-joinResume
		}
		return nil
	}
	joinErr := make(chan error, 1)
	// Seed chosen so the first draw lands in the owner's segment (the
	// leaver owns [0.92, 0.42) after its midpoint join): the join must
	// stream from the OWNER for the leave to interleave with it.
	rng := rand.New(rand.NewPCG(533, 533))
	go func() { joinErr <- joiner.StartJoin(owner.Addr(), rng) }()
	<-joinPaused

	if got := owner.sessions.Active(); got != 1 {
		t.Fatalf("owner has %d active sessions while the join is frozen, want 1", got)
	}

	// The leave must complete on the first attempt, with the join stream
	// still frozen at the owner.
	if err := leaver.Leave(); err != nil {
		t.Fatalf("leave during frozen join stream: %v", err)
	}

	// Thaw the join: its commit is stale (the absorption moved the
	// boundary) and must be refused definitively, not spun on retries.
	start := time.Now()
	close(joinResume)
	err = <-joinErr
	if err == nil {
		t.Fatal("stale join committed although a leave absorption moved the segment boundary")
	}
	if waited := time.Since(start); waited > commitWaitAttempts*commitWaitDelay/2 {
		t.Fatalf("stale join took %v to resolve — it spun on retries instead of failing fast", waited)
	}

	// The joiner rejoins against the extended segment and succeeds.
	if err := joiner.StartJoin(owner.Addr(), rng); err != nil {
		t.Fatalf("rejoin after refused stale commit: %v", err)
	}

	for round := 0; round < 3; round++ {
		for _, n := range []*Node{owner, joiner} {
			if err := n.Stabilize(); err != nil {
				t.Fatalf("stabilize: %v", err)
			}
		}
	}
	if sum := owner.NumItems() + joiner.NumItems(); sum != items {
		t.Fatalf("items not conserved: %d + %d != %d", owner.NumItems(), joiner.NumItems(), items)
	}
	for _, n := range []*Node{owner, joiner} {
		verifyAllKeys(t, n.Addr(), owner.HashFunc(), items, fmt.Sprintf("after leave-during-join via %s", n.Addr()))
	}
}
