package p2p

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"condisc/internal/interval"
	"condisc/internal/journal"
	"condisc/internal/telemetry"
)

// This file implements Fast Lookup (§2.2.1) over the wire, plus the
// stabilization pass that refreshes the backward-neighbour tables.

// maxFastSteps caps the Fast Lookup walk (64 backward hops shrink any
// distance below one fixed-point ulp).
const maxFastSteps = 66

// routeObserved wraps route with the node's observability: the routed-
// message load counter, the entry-node hop histogram, and — for traced
// requests — this node's Hop record, appended as the response unwinds so
// the owner ends up first and the entry node last. Every metric write is
// a pre-resolved atomic; the trace adds work only when TraceOn rode in.
func (n *Node) routeObserved(req request) response {
	entry := !req.Started
	var t0 time.Time
	if req.TraceOn {
		t0 = time.Now()
	}
	n.met.routed.Inc()
	resp := n.route(req)
	if req.Op == opGet && !resp.OK && n.fallbackWanted(resp) {
		// The owner is dead (or this node is mid-crash-repair): try to
		// reconstruct the value from replica payloads before giving up.
		resp = n.replicaFallback(req, resp)
	}
	if entry && resp.OK {
		n.met.hops.Observe(int64(resp.Hops))
	}
	if req.TraceOn && resp.OK {
		n.mu.Lock()
		hop := Hop{ID: n.id, Addr: n.addr, Point: uint64(n.x), RingVer: n.ringVer.Load(),
			StaleIn: req.Stale, SubtreeNanos: time.Since(t0).Nanoseconds()}
		n.mu.Unlock()
		resp.Trace = append(resp.Trace, hop)
	}
	return resp
}

// route handles lookup/get/put: if this node covers the target (or the
// walk has finished), it serves locally; otherwise it advances the Fast
// Lookup state one backward hop and forwards.
func (n *Node) route(req request) response {
	n.mu.Lock()
	seg := n.segmentLocked()
	target := interval.Point(req.Target)

	if !req.Started {
		// Fresh lookup entering at this node: compute the walk (the paper's
		// step 1, with z the middle of our own segment).
		z := seg.Mid()
		t := 0
		for ; t < maxFastSteps; t++ {
			if seg.Contains(interval.WalkPrefix(z, target, uint(t))) {
				break
			}
		}
		req.Pos = uint64(interval.WalkPrefix(z, target, uint(t)))
		req.StepsLeft = t
		req.Started = true
	}

	if req.StepsLeft == 0 {
		// Walk done: we should cover the target; otherwise ring-forward.
		if seg.Contains(target) {
			return n.serveLocalUnlock(req)
		}
		next := n.ringStepLocked(target)
		n.mu.Unlock()
		return forward(next, req)
	}

	// Advance the backward walk: pos' = b(pos). If we also cover pos',
	// loop locally without a network hop.
	pos := interval.Point(req.Pos)
	for req.StepsLeft > 0 {
		pos = pos.Back()
		req.StepsLeft--
		req.Pos = uint64(pos)
		if !seg.Contains(pos) {
			next := n.nextHopLocked(pos)
			ring := n.ringStepLocked(pos)
			n.mu.Unlock()
			resp, delivered := tryForward(next, req)
			if !delivered && ring.Addr != next.Addr {
				// Stale backward-table entry (e.g. a departed node): the
				// ring pointers are maintained synchronously and always
				// name a live node, so fall back to a ring hop. The Stale
				// counter records the repair — the staleness observable
				// E31 sweeps against the stabilization interval.
				req.Stale++
				n.met.staleRepairs.Inc()
				n.jrn.Record(journal.KindStaleRepair, n.ringVer.Load(), 0,
					req.Target, uint64(req.Hops), 0)
				resp, _ = tryForward(ring, req)
			}
			return resp
		}
	}
	// Walk ended inside our own segment.
	if seg.Contains(target) {
		return n.serveLocalUnlock(req)
	}
	next := n.ringStepLocked(target)
	n.mu.Unlock()
	return forward(next, req)
}

// serveLocalUnlock serves the data operation under mu, releases it, and
// then — for an owned Put with replication on — pushes the replica
// payloads to the successor chain and enforces the write quorum. The
// replication RPCs deliberately run outside the mutex: a quorum write
// blocks on the network, and the node must keep routing (and being
// stabilized against) meanwhile.
func (n *Node) serveLocalUnlock(req request) response {
	resp := n.serveLocal(req)
	replicate := req.Op == opPut && resp.OK && n.repl.Enabled()
	var succs []NodeInfo
	if replicate {
		succs = append([]NodeInfo(nil), n.succs...)
	}
	n.mu.Unlock()
	if replicate {
		// An empty chain (a node that has not stabilized yet) still goes
		// through the quorum check: one local ack must not satisfy K>1.
		n.replicatePut(req, &resp, succs)
	}
	return resp
}

// serveLocal executes the data operation at the owner (mu held).
func (n *Node) serveLocal(req request) response {
	if n.leaving && (req.Op == opGet || req.Op == opPut) {
		// The store is mid-handoff to the predecessor: a write now would
		// be invisible to the stream, and after commit a read would be a
		// silent miss. Fail loudly instead.
		return response{Err: "node is leaving; retry", Hops: req.Hops}
	}
	if req.Op == opPut && n.sessions.Fenced(interval.Point(req.Target)) {
		// The target point lies in a range mid-handoff to a joiner: the
		// stream cursor may already be past it, so accepting the write
		// would silently lose it at commit. (Reads keep being served —
		// the range is ours until commit.)
		return response{Err: "range is mid-handoff; retry", Hops: req.Hops}
	}
	n.met.ownerServed.Inc()
	resp := response{OK: true, Hops: req.Hops, Stale: req.Stale,
		ID: n.id, Point: uint64(n.x), End: uint64(n.end), Addr: n.addr,
		SuccID: n.succ.ID, SuccAddr: n.succ.Addr, PredAddr: n.pred.Addr,
		RingVer: n.ringVer.Load()}
	switch req.Op {
	case opGet:
		v, ok, err := n.data.Get(interval.Point(req.Target), req.Key)
		if err != nil {
			return response{Err: "store get: " + err.Error(), Hops: req.Hops}
		}
		if !ok {
			// The owner was reached and the key is absent: a genuine miss,
			// distinct from an unreachable owner (see response.NotFound).
			return response{Err: "key not found: " + req.Key, Hops: req.Hops, NotFound: true}
		}
		resp.Val = v
	case opPut:
		if err := n.data.Put(interval.Point(req.Target), req.Key, req.Val); err != nil {
			return response{Err: "store put: " + err.Error(), Hops: req.Hops}
		}
	}
	return resp
}

// nextHopLocked picks the backward-table entry covering pos (via the
// Point-sorted view of the ID-keyed table), falling back to a ring step
// while tables are stale (mu held).
func (n *Node) nextHopLocked(pos interval.Point) NodeInfo {
	if len(n.backSorted) > 0 {
		i := sort.Search(len(n.backSorted), func(k int) bool { return n.backSorted[k].Point > uint64(pos) })
		if i == 0 {
			i = len(n.backSorted)
		}
		cand := n.backSorted[i-1]
		if cand.Addr != n.addr {
			return cand
		}
	}
	return n.ringStepLocked(pos)
}

// ringStepLocked returns the ring neighbour in the direction of p.
func (n *Node) ringStepLocked(p interval.Point) NodeInfo {
	if interval.CWDist(n.x, p) <= 1<<63 {
		return n.succ
	}
	return n.pred
}

// forward relays the request to the next node, incrementing the hop count.
func forward(next NodeInfo, req request) response {
	resp, _ := tryForward(next, req)
	return resp
}

// tryForward relays the request; delivered is false when the next node was
// unreachable (as opposed to a remote application error).
func tryForward(next NodeInfo, req request) (response, bool) {
	req.Hops++
	if req.Hops > 4096 {
		return response{Err: "hop limit exceeded"}, true
	}
	resp, err := call(next.Addr, req)
	if err != nil && resp.Err == "" {
		// Transport failure (dial/encode/decode), not a remote refusal:
		// the key's presence is unknown, which is what Unreachable means.
		return response{Err: err.Error(), Hops: req.Hops, Unreachable: true}, false
	}
	if err != nil {
		// Remote application error: relay the miss/unreachable flags
		// outward so the entry node (and every hop on the unwind) can
		// distinguish them — the replica fallback triggers on Unreachable.
		return response{Err: resp.Err, Hops: req.Hops,
			NotFound: resp.NotFound, Unreachable: resp.Unreachable}, true
	}
	return resp, true
}

// Stabilize refreshes the node's view: re-reads the successor's state
// (adopting a new successor if one joined in between), re-enumerates
// the covers of the backward image b(s) by walking the ring from the
// owner of the arc start, and — with replication on — refreshes the
// successor chain and runs the repair pass.
//
// The successor probe doubles as the failure detector's heartbeat: no
// extra message class exists, liveness piggybacks on the opState traffic
// stabilization already generates. fdThreshold consecutive probe
// failures declare the successor dead and trigger crashAbsorb.
func (n *Node) Stabilize() error {
	n.mu.Lock()
	succ := n.succ
	n.mu.Unlock()

	// Successor refresh: if succ's pred is between us and succ, adopt it.
	// All RPCs happen without holding mu (a node may be stabilized against
	// while stabilizing).
	st, err := n.rpc(succ.Addr, request{Op: opState})
	if err != nil {
		if n.noteSuccMiss(succ) {
			// The detector tripped: declare the successor dead, absorb its
			// segment, and let the next rounds refresh the chain + repair.
			return n.crashAbsorb(succ)
		}
		return err
	}
	n.noteSuccHit()
	var candidate *response
	if st.PredAddr != "" && st.PredAddr != n.addr {
		if ps, err2 := n.rpc(st.PredAddr, request{Op: opState}); err2 == nil {
			candidate = &ps
		}
	}
	n.mu.Lock()
	if candidate != nil {
		if p := interval.Point(candidate.Point); n.segmentLocked().Contains(p) && p != n.x {
			n.setEndSuccLocked(p, NodeInfo{ID: candidate.ID, Point: candidate.Point, Addr: candidate.Addr})
		}
	} else if st.PredAddr == n.addr && n.end != interval.Point(st.Point) {
		// Steady state re-reads the same end; only a real repair bumps the
		// ring version (a spurious bump would fast-fail in-flight commits).
		n.setEndSuccLocked(interval.Point(st.Point), n.succ)
	}
	seg := n.segmentLocked()
	n.mu.Unlock()

	// Successor-chain refresh for the replica plane (and the crash
	// absorb's two-hop lookahead). The probe response already names the
	// successor's successor, so K=3 costs no extra RPCs here.
	if n.repl.Enabled() || n.fdThreshold > 0 {
		n.refreshSuccs(st)
	}

	// Re-replication/repair pass: runs synchronously (and BEFORE the
	// backward-table refresh, which can still fail while other nodes'
	// tables reference a crashed member) so a fixed number of
	// stabilization sweeps deterministically converges the replication
	// factor after a crash — E34 and the smoke test rely on that.
	n.runRepairs()

	// Re-enumerate backward neighbours: covers of b(s). This wholesale
	// refresh is the repair loop; between passes the ID-keyed table is
	// kept current by the incremental opPatchBack messages joins and
	// leaves send.
	arc := seg.BackImage()
	covers, err := n.coversOfArc(arc)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.setBackLocked(covers)
	n.mu.Unlock()
	return nil
}

// sortByPoint orders routing-table entries by segment start.
func sortByPoint(entries []NodeInfo) {
	sort.Slice(entries, func(a, b int) bool { return entries[a].Point < entries[b].Point })
}

// coversOfArc finds all nodes whose segments intersect the arc, by looking
// up the arc start's owner and walking successor pointers.
func (n *Node) coversOfArc(arc interval.Segment) ([]NodeInfo, error) {
	first, err := lookupVia(n.addr, arc.Start)
	if err != nil {
		return nil, err
	}
	covers := []NodeInfo{{ID: first.ID, Point: first.Point, Addr: first.Addr}}
	cur := first
	for i := 0; i < 4096; i++ {
		if cur.SuccAddr == "" || cur.SuccAddr == first.Addr {
			break
		}
		st, err := n.rpc(cur.SuccAddr, request{Op: opState})
		if err != nil {
			return nil, err
		}
		if !arc.Contains(interval.Point(st.Point)) || st.Addr == first.Addr {
			break
		}
		covers = append(covers, NodeInfo{ID: st.ID, Point: st.Point, Addr: st.Addr})
		cur = st
	}
	sortByPoint(covers)
	return covers, nil
}

// lookupVia resolves the owner of point p through any live node.
func lookupVia(addr string, p interval.Point) (response, error) {
	resp, err := call(addr, request{Op: opLookup, Target: uint64(p)})
	if err != nil {
		return response{}, err
	}
	return resp, nil
}

// --- client API ---

// Client-visible Get failure classes. A genuine miss (the owner was
// reached and the key is absent) and an unreachable owner (connection
// refused or timed out somewhere on the route, so the key's presence is
// unknown) are different failures with different remedies: the former
// is final, the latter is the replica-fallback/repair trigger and is
// worth retrying once the ring heals. Test with errors.Is.
var (
	ErrNotFound         = errors.New("p2p: key not found")
	ErrOwnerUnreachable = errors.New("p2p: key owner unreachable")
)

// classifyGet wraps a failed Get's error with the sentinel matching the
// response's miss/unreachable flags.
func classifyGet(resp response, err error) error {
	if err == nil {
		return nil
	}
	switch {
	case resp.Unreachable:
		return fmt.Errorf("%w: %s", ErrOwnerUnreachable, err)
	case resp.NotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, err)
	}
	return err
}

// Client talks to a cluster through a bootstrap node.
type Client struct {
	Bootstrap string
	// Tel, when non-nil, receives client-side lookup metrics (hops,
	// staleness, errors); nil means telemetry.Default. E31 points it at a
	// fresh registry per sweep configuration so each run's tallies are
	// isolated without any manual counting.
	Tel *telemetry.Registry
}

func (c *Client) reg() *telemetry.Registry {
	if c.Tel != nil {
		return c.Tel
	}
	return telemetry.Default
}

// recordLookup tallies one client-observed operation outcome.
func (c *Client) recordLookup(resp response, err error) {
	r := c.reg()
	r.Counter("condisc_client_lookups_total").Inc()
	if err != nil {
		r.Counter("condisc_client_lookup_errors_total").Inc()
		return
	}
	r.Histogram("condisc_client_lookup_hops").Observe(int64(resp.Hops))
	if resp.Stale > 0 {
		r.Counter("condisc_client_stale_lookups_total").Inc()
		r.Counter("condisc_client_stale_repairs_total").Add(int64(resp.Stale))
	}
}

// Lookup returns the owner of a key's hash point along with the hop count.
func (c *Client) Lookup(p interval.Point) (owner string, hops int, err error) {
	resp, err := lookupVia(c.Bootstrap, p)
	c.recordLookup(resp, err)
	if err != nil {
		return "", 0, err
	}
	return resp.Addr, resp.Hops, nil
}

// LookupStats resolves a point's owner and also reports how many stale
// backward-table entries the route hit (each one a failed dial repaired
// by a ring-hop fallback) — the E31 staleness probe.
func (c *Client) LookupStats(p interval.Point) (owner string, hops, stale int, err error) {
	resp, err := lookupVia(c.Bootstrap, p)
	c.recordLookup(resp, err)
	if err != nil {
		return "", 0, 0, err
	}
	return resp.Addr, resp.Hops, resp.Stale, nil
}

// Put stores a value under key.
func (c *Client) Put(key string, val []byte, h func(string) interval.Point) (int, error) {
	resp, err := call(c.Bootstrap, request{Op: opPut, Key: key, Val: val, Target: uint64(h(key))})
	c.recordLookup(resp, err)
	if err != nil {
		return 0, err
	}
	return resp.Hops, nil
}

// Get retrieves the value under key. Failures are classified: a genuine
// miss matches ErrNotFound, a dead or partitioned owner matches
// ErrOwnerUnreachable (see the sentinels above).
func (c *Client) Get(key string, h func(string) interval.Point) ([]byte, int, error) {
	resp, err := call(c.Bootstrap, request{Op: opGet, Key: key, Target: uint64(h(key))})
	c.recordLookup(resp, err)
	if err != nil {
		return nil, 0, classifyGet(resp, err)
	}
	return resp.Val, resp.Hops, nil
}

// TraceResult is a resolved per-hop lookup trace, origin-first.
type TraceResult struct {
	Owner   string // owner's address
	Hops    int    // network hops taken
	Stale   int    // stale-route repairs along the way
	RingVer uint64 // owner's ring version at serve time (terminal epoch)
	Path    []Hop  // entry node first, owner last
}

// Trace resolves p's owner with per-hop tracing on: every node on the
// route appends its Hop record as the response unwinds (owner-first), and
// Trace reverses it so Path reads in travel order. Per-hop latency is the
// difference of successive SubtreeNanos — each node's span contains its
// downstream's, so no cross-node clock agreement is needed.
func (c *Client) Trace(p interval.Point) (TraceResult, error) {
	resp, err := call(c.Bootstrap, request{Op: opLookup, Target: uint64(p), TraceOn: true})
	c.recordLookup(resp, err)
	if err != nil {
		return TraceResult{}, err
	}
	path := make([]Hop, len(resp.Trace))
	for i, h := range resp.Trace {
		path[len(path)-1-i] = h
	}
	return TraceResult{Owner: resp.Addr, Hops: resp.Hops, Stale: resp.Stale,
		RingVer: resp.RingVer, Path: path}, nil
}

// NodeState is one ring member as seen by RingStates.
type NodeState struct {
	ID        uint64
	Point     uint64
	End       uint64
	Addr      string
	SuccAddr  string
	PredAddr  string
	AdminAddr string
}

// RingStates walks successor pointers from the bootstrap node and returns
// every ring member's state, in ring order starting at the bootstrap.
// This is how dhctl top discovers a whole cluster's admin endpoints from
// a single address.
func (c *Client) RingStates() ([]NodeState, error) {
	first, err := call(c.Bootstrap, request{Op: opState})
	if err != nil {
		return nil, err
	}
	toState := func(r response) NodeState {
		return NodeState{ID: r.ID, Point: r.Point, End: r.End, Addr: r.Addr,
			SuccAddr: r.SuccAddr, PredAddr: r.PredAddr, AdminAddr: r.AdminAddr}
	}
	states := []NodeState{toState(first)}
	cur := first
	for i := 0; i < 4096; i++ {
		if cur.SuccAddr == "" || cur.SuccAddr == first.Addr {
			return states, nil
		}
		st, err := call(cur.SuccAddr, request{Op: opState})
		if err != nil {
			return nil, fmt.Errorf("p2p: ring walk at %s: %w", cur.SuccAddr, err)
		}
		states = append(states, toState(st))
		cur = st
	}
	return nil, fmt.Errorf("p2p: ring walk did not close after %d nodes", 4096)
}

// HashFunc returns the node's item-hash (shared across a cluster seed).
func (n *Node) HashFunc() func(string) interval.Point { return n.hash.Point }

// State returns a snapshot of the node's segment and ring pointers.
func (n *Node) State() (x, end interval.Point, pred, succ NodeInfo) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.x, n.end, n.pred, n.succ
}

// NumItems returns how many items the node stores.
func (n *Node) NumItems() int {
	return n.data.Len()
}
