package p2p

import (
	"bytes"
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"condisc/internal/interval"
)

func TestSingleNodeOwnsEverything(t *testing.T) {
	n, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	n.StartFirst(interval.FromFloat(0.5))
	defer n.Close()
	cl := &Client{Bootstrap: n.Addr()}
	if _, err := cl.Put("k", []byte("v"), n.HashFunc()); err != nil {
		t.Fatal(err)
	}
	v, hops, err := cl.Get("k", n.HashFunc())
	if err != nil || string(v) != "v" {
		t.Fatalf("get: %v %q", err, v)
	}
	if hops != 0 {
		t.Errorf("single-node get took %d hops", hops)
	}
}

func TestClusterRingIntegrity(t *testing.T) {
	c, err := StartCluster(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	order, err := c.RingOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 12 {
		t.Fatalf("ring has %d nodes, want 12", len(order))
	}
	// Points must be in strict clockwise order from node 0.
	for i := 2; i < len(order); i++ {
		a := interval.CWDist(order[0], order[i-1])
		b := interval.CWDist(order[0], order[i])
		if b <= a {
			t.Fatalf("ring order violated at %d", i)
		}
	}
}

func TestClusterPutGet(t *testing.T) {
	c, err := StartCluster(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	h := c.Hash()
	// Put through one node, get through another.
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		val := []byte(fmt.Sprintf("val-%d", i))
		if _, err := c.Client(i%10).Put(key, val, h); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		got, _, err := c.Client((i+5)%10).Get(key, h)
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		if !bytes.Equal(got, []byte(fmt.Sprintf("val-%d", i))) {
			t.Fatalf("get %s = %q", key, got)
		}
	}
}

func TestGetMissingKey(t *testing.T) {
	c, err := StartCluster(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if _, _, err := c.Client(0).Get("nope", c.Hash()); err == nil {
		t.Fatal("expected error for missing key")
	}
}

// TestLookupConsistency: all nodes resolve the same owner for the same
// point, and the owner's segment contains it.
func TestLookupConsistency(t *testing.T) {
	c, err := StartCluster(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	rng := rand.New(rand.NewPCG(6, 6))
	for trial := 0; trial < 30; trial++ {
		p := interval.Point(rng.Uint64())
		owner0, _, err := c.Client(0).Lookup(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(c.Nodes); i++ {
			owner, _, err := c.Client(i).Lookup(p)
			if err != nil {
				t.Fatal(err)
			}
			if owner != owner0 {
				t.Fatalf("node %d resolves %v to %s, node 0 to %s", i, p, owner, owner0)
			}
		}
	}
}

// TestHopsLogarithmic: lookup hop counts stay near the Corollary 2.5 bound
// over real sockets.
func TestHopsLogarithmic(t *testing.T) {
	const n = 16
	c, err := StartCluster(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.StabilizeAll(3); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(8, 8))
	maxHops := 0
	for trial := 0; trial < 60; trial++ {
		_, hops, err := c.Client(rng.IntN(n)).Lookup(interval.Point(rng.Uint64()))
		if err != nil {
			t.Fatal(err)
		}
		if hops > maxHops {
			maxHops = hops
		}
	}
	// log n + log ρ + slack; ρ is small with improved-single-choice joins.
	bound := int(math.Log2(n)) + 10
	if maxHops > bound {
		t.Errorf("max hops %d > %d", maxHops, bound)
	}
}

// TestLeaveHandsOffData: a leaving node's items remain retrievable.
func TestLeaveHandsOffData(t *testing.T) {
	c, err := StartCluster(6, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	h := c.Hash()
	for i := 0; i < 30; i++ {
		if _, err := c.Client(0).Put(fmt.Sprintf("k%d", i), []byte{byte(i)}, h); err != nil {
			t.Fatal(err)
		}
	}
	// Node 3 leaves gracefully.
	if err := c.Nodes[3].Leave(); err != nil {
		t.Fatal(err)
	}
	live := append(append([]*Node{}, c.Nodes[:3]...), c.Nodes[4:]...)
	for _, n := range live {
		if err := n.Stabilize(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		got, _, err := (&Client{Bootstrap: live[0].Addr()}).Get(fmt.Sprintf("k%d", i), h)
		if err != nil {
			t.Fatalf("after leave, get k%d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("after leave, k%d = %v", i, got)
		}
	}
}

// TestJoinTransfersItems: items whose hash falls in the new node's segment
// move to it.
func TestJoinTransfersItems(t *testing.T) {
	c, err := StartCluster(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	h := c.Hash()
	for i := 0; i < 64; i++ {
		if _, err := c.Client(0).Put(fmt.Sprintf("it%d", i), []byte("x"), h); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Nodes[0].NumItems() + c.Nodes[1].NumItems()
	// A third node joins; items must be conserved and redistributed.
	n3, err := NewNode("127.0.0.1:0", 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := n3.StartJoin(c.Nodes[0].Addr(), rand.New(rand.NewPCG(11, 11))); err != nil {
		t.Fatal(err)
	}
	defer n3.Close()
	after := c.Nodes[0].NumItems() + c.Nodes[1].NumItems() + n3.NumItems()
	if before != 64 || after != 64 {
		t.Fatalf("items not conserved: before=%d after=%d", before, after)
	}
	// And all keys remain retrievable from anywhere.
	for i := 0; i < 64; i++ {
		if _, _, err := (&Client{Bootstrap: n3.Addr()}).Get(fmt.Sprintf("it%d", i), h); err != nil {
			t.Fatalf("get it%d: %v", i, err)
		}
	}
}

func TestSegmentsPartitionTheCircle(t *testing.T) {
	c, err := StartCluster(9, 12)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	var total uint64
	for _, n := range c.Nodes {
		x, end, _, _ := n.State()
		total += uint64(end - x)
	}
	if total != 0 { // segments tile the ring: lengths sum to 2^64 ≡ 0
		t.Errorf("segments sum to %d, want 2^64", total)
	}
}
