package p2p

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"condisc/internal/interval"
	"condisc/internal/telemetry"
)

// checkTrace asserts the structural invariants every per-hop trace must
// satisfy, torn or not:
//
//   - the path ends at the owner (the trace unwinds owner-first and the
//     client reverses it);
//   - SubtreeNanos is non-increasing in travel order — each node's span
//     physically contains its downstream's, so a violation means hops from
//     different lookups got mixed into one response;
//   - StaleIn is non-decreasing in travel order — repairs only accumulate.
func checkTrace(t *testing.T, tr TraceResult) {
	t.Helper()
	if len(tr.Path) == 0 {
		t.Fatalf("trace has empty path (owner %s)", tr.Owner)
	}
	last := tr.Path[len(tr.Path)-1]
	if last.Addr != tr.Owner {
		t.Fatalf("trace path ends at %s, owner is %s", last.Addr, tr.Owner)
	}
	if last.RingVer != tr.RingVer {
		t.Fatalf("owner hop ring version %d != terminal epoch %d", last.RingVer, tr.RingVer)
	}
	for i := 1; i < len(tr.Path); i++ {
		if tr.Path[i].SubtreeNanos > tr.Path[i-1].SubtreeNanos {
			t.Fatalf("subtree span grew along the path at hop %d: %d > %d (torn trace?)",
				i, tr.Path[i].SubtreeNanos, tr.Path[i-1].SubtreeNanos)
		}
		if tr.Path[i].StaleIn < tr.Path[i-1].StaleIn {
			t.Fatalf("stale-repair count shrank along the path at hop %d", i)
		}
	}
}

func TestTraceQuiescent(t *testing.T) {
	c, err := StartCluster(10, 41, WithTelemetry(telemetry.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl := c.Client(0)
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 50; i++ {
		tr, err := cl.Trace(interval.Point(rng.Uint64()))
		if err != nil {
			t.Fatal(err)
		}
		checkTrace(t, tr)
		// Quiescent ring: every hop of one lookup sees the same epoch.
		for _, h := range tr.Path {
			if h.StaleIn != 0 {
				t.Fatalf("stale repair on a quiescent ring: %+v", tr.Path)
			}
		}
	}
}

// TestTracePropagationUnderChurn runs traced lookups concurrently with
// join/leave churn and asserts no trace ever tears: whatever mix of ring
// versions a route crosses, each response's hop list must still nest its
// spans and end at the node that answered.
func TestTracePropagationUnderChurn(t *testing.T) {
	c, err := StartCluster(8, 42, WithTelemetry(telemetry.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	var stop atomic.Bool
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; !stop.Load(); i++ {
			if i%2 == 0 {
				if _, err := c.JoinWith(WithTelemetry(telemetry.NewRegistry())); err != nil {
					continue // contested prepare under churn: fine, keep churning
				}
			} else if len(c.Nodes) > 4 {
				_ = c.LeaveAt(1 + i%(len(c.Nodes)-1))
			}
			_ = c.StabilizeAll(1)
		}
	}()

	const tracers, traces = 4, 30
	var ok atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < tracers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), uint64(g)*2654435761+1))
			cl := c.Client(0)
			for i := 0; i < traces; i++ {
				tr, err := cl.Trace(interval.Point(rng.Uint64()))
				if err != nil {
					continue // transient refusal mid-churn (leaving/fenced node)
				}
				checkTrace(t, tr)
				ok.Add(1)
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)
	<-churnDone

	if ok.Load() < tracers*traces/2 {
		t.Fatalf("only %d/%d traces succeeded under churn", ok.Load(), tracers*traces)
	}
}
