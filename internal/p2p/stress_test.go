package p2p

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentPutsAndGets hammers a cluster from many goroutines: the
// node's mutex discipline must keep the stores consistent and the
// request/response protocol must not interleave.
func TestConcurrentPutsAndGets(t *testing.T) {
	const n = 8
	c, err := StartCluster(n, 20)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	h := c.Hash()

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.Client(w % n)
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				val := []byte(fmt.Sprintf("w%d-v%d", w, i))
				if _, err := cl.Put(key, val, h); err != nil {
					errs <- fmt.Errorf("put %s: %w", key, err)
					return
				}
				got, _, err := cl.Get(key, h)
				if err != nil {
					errs <- fmt.Errorf("get %s: %w", key, err)
					return
				}
				if !bytes.Equal(got, val) {
					errs <- fmt.Errorf("get %s = %q, want %q", key, got, val)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Cross-reads: every worker's keys visible from every node.
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i += 7 {
			key := fmt.Sprintf("w%d-k%d", w, i)
			if _, _, err := c.Client((w+3)%n).Get(key, h); err != nil {
				t.Errorf("cross-read %s: %v", key, err)
			}
		}
	}
}

// TestConcurrentStabilizeDuringTraffic runs stabilization passes while
// lookups are in flight — the lock-discipline scenario that would deadlock
// if a node held its mutex across RPCs.
func TestConcurrentStabilizeDuringTraffic(t *testing.T) {
	const n = 6
	c, err := StartCluster(n, 21)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	h := c.Hash()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, node := range c.Nodes {
					_ = node.Stabilize()
				}
			}
		}
	}()
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("traffic-%d", i)
		if _, err := c.Client(i%n).Put(key, []byte("x"), h); err != nil {
			t.Fatalf("put during stabilize: %v", err)
		}
		if _, _, err := c.Client((i+1)%n).Get(key, h); err != nil {
			t.Fatalf("get during stabilize: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}
