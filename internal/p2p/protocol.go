// Package p2p is a real-network implementation of the Distance Halving DHT
// (§2) over TCP: nodes own segments of [0,1), route lookups along the
// backward edges of the continuous graph (Fast Lookup, §2.2.1), and
// maintain their neighbour tables with a Chord-style stabilization pass.
//
// Design notes:
//
//   - The ring pointers (pred/succ) are updated synchronously during Join
//     and Leave, so they are always correct; the de Bruijn backward tables
//     are refreshed by Stabilize and used opportunistically — when a table
//     misses the next hop the node falls back to a ring hop, trading hops
//     for progress (the standard correctness/efficiency split in DHTs).
//   - Every control RPC is one request/response over a fresh TCP
//     connection, encoded with encoding/gob. Recursive routing: each hop
//     dials the next node and relays the response back.
//   - Item transfer during churn is NOT a control RPC: Join and Leave run
//     prepare→stream→commit handoff sessions (internal/handoff), where
//     the opHandStream response is a CRC-framed chunk stream on the same
//     connection — bounded memory however large the range, resumable
//     after a disconnect, and ownership flips only at commit.
//   - All nodes share the item-hash function, derived from a cluster seed.
package p2p

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"
)

// op codes for the wire protocol.
const (
	opState     = "state"     // node status: id, point, end, ring pointers
	opLookup    = "lookup"    // route to the owner of a point
	opGet       = "get"       // route + read
	opPut       = "put"       // route + write
	opSetPred   = "setpred"   // update predecessor pointer
	opPatchBack = "patchback" // incremental backward-table patch (add/remove one ID-keyed entry)
	opLeave     = "leave"     // leave offer: the predecessor pulls a handoff session from the leaver

	// Handoff session ops (two-phase churn transfer, internal/handoff).
	opHandPrepare = "hprepare" // joiner opens a session at the segment owner
	opHandStream  = "hstream"  // pull the chunk stream (framed bytes follow, no gob response)
	opHandCommit  = "hcommit"  // flip ownership: sender deletes the range and repoints (idempotent)
	opHandStatus  = "hstatus"  // receiver probe after a crash: streaming/committed/unknown
	opHandAbort   = "habort"   // receiver resolves an ambiguous commit: abort unless already committed

	// Replication ops (k-successor replica plane, internal/replicate).
	// These address a node directly — they are never routed — and move
	// opaque replica payloads, not live items, so the no-bulk-payload rule
	// below still holds for the routed request types.
	opReplPut    = "replput"    // owner pushes one replica payload to a successor
	opReplGet    = "replget"    // read one replica payload (replica-fallback Get, repair gather)
	opReplStream = "replstream" // pull a segment's replica payloads as a framed chunk stream
)

// request is the single wire request type. There is deliberately no bulk
// item payload: since the handoff protocol replaced the single-RPC
// join/leave transfer, no request or response can carry a range of items,
// so the old unbounded-memory path cannot be reintroduced by accident.
type request struct {
	Op  string
	Key string
	Val []byte
	// Target is the lookup target point (fixed-point uint64).
	Target uint64
	// Pos and StepsLeft carry Fast Lookup routing state; Started marks
	// that the walk has been initialized by the first node on the path.
	Pos       uint64
	StepsLeft int
	Started   bool
	Hops      int
	// Stale counts the stale backward-table entries this lookup hit — a
	// next hop whose node was unreachable, repaired by falling back to a
	// ring hop. E31 sweeps this against the stabilization interval.
	Stale int
	// NewAddr/NewPoint/NewID describe a joining, leaving, or patched node.
	NewAddr  string
	NewPoint uint64
	NewID    uint64
	// Remove marks an opPatchBack that retracts (rather than adds) the
	// entry with NewID.
	Remove bool
	// Handoff session fields. Session names the transfer (nonzero);
	// SrcAddr is the stream source in a leave offer; SegStart/SegLen
	// carry the moving range; FromPoint/FromKey (valid when HasFrom)
	// resume a broken stream strictly after the last staged position.
	Session   uint64
	SrcAddr   string
	SegStart  uint64
	SegLen    uint64
	FromPoint uint64
	FromKey   string
	HasFrom   bool
	// TraceOn asks every node on the route to append a Hop record to the
	// response on the way back — the per-hop lookup trace dhctl renders.
	TraceOn bool
}

// Hop is one node's per-hop trace record, appended as a traced response
// unwinds through the recursive route. The first element of a response's
// Trace is therefore the owner, the last the entry node; clients reverse
// it for display.
type Hop struct {
	ID    uint64
	Addr  string
	Point uint64
	// SubtreeNanos is the time from this node receiving the request to
	// its response being ready — it includes every downstream hop, so
	// successive differences give per-hop latency without any cross-node
	// clock agreement (each node only ever reports its own local
	// monotonic duration).
	SubtreeNanos int64
	// StaleIn is the stale-repair count the request carried when it
	// arrived here (repairs performed upstream of this node).
	StaleIn int
	// RingVer is this node's ring-pointer version when it handled the
	// request.
	RingVer uint64
}

// response is the single wire response type.
type response struct {
	OK  bool
	Err string
	// Retry marks a refusal as transient: the same request may succeed
	// shortly (e.g. a commit waiting for an outer handoff session to
	// resolve). Non-retry refusals are definitive.
	Retry bool
	Val   []byte
	Hops  int
	Stale int
	// Node status fields.
	ID       uint64
	Point    uint64
	End      uint64
	Addr     string
	SuccID   uint64
	SuccAddr string
	PredAddr string
	// AdminAddr is the node's admin HTTP endpoint ("" when disabled),
	// reported in opState so dhctl top can scrape a whole ring having
	// been told only one member.
	AdminAddr string
	// State reports a handoff session's fate to an opHandStatus probe.
	State string
	// NotFound marks a Get refusal as a genuine miss: the owner was
	// reached and the key is not there. Unreachable marks the opposite
	// failure: some hop could not reach the next node (connection
	// refused/timeout), so the key's presence is UNKNOWN — a dead owner
	// and an absent key must not look alike, because only the former is
	// the replica-fallback trigger. Both flags survive the recursive
	// unwind: every relaying hop copies them outward.
	NotFound    bool
	Unreachable bool
	// Trace accumulates per-hop records when the request had TraceOn
	// (owner first; see Hop). RingVer is the owner's ring-pointer
	// version at serve time — the terminal epoch of the lookup.
	Trace   []Hop
	RingVer uint64
}

// rpcTimeout is the package default request/response deadline. Nodes can
// be built with a different one (WithRPCTimeout) — the failure detector
// wants tighter bounds than bulk handoff — so node-context calls go
// through Node.rpc, and only package-level helpers without a node (the
// Client, sendPatch) use this default.
const rpcTimeout = 5 * time.Second

// call performs one RPC with the default timeout.
func call(addr string, req request) (response, error) {
	return callT(addr, req, rpcTimeout)
}

// callT performs one RPC with an explicit dial + I/O deadline.
func callT(addr string, req request, timeout time.Duration) (response, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return response{}, fmt.Errorf("p2p: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return response{}, err
	}
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return response{}, fmt.Errorf("p2p: encode to %s: %w", addr, err)
	}
	var resp response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return response{}, fmt.Errorf("p2p: decode from %s: %w", addr, err)
	}
	if !resp.OK {
		return resp, fmt.Errorf("p2p: remote error from %s: %s", addr, resp.Err)
	}
	return resp, nil
}
