package p2p

import (
	"fmt"
	"math/rand/v2"

	"condisc/internal/interval"
)

// Cluster spins up an in-process network of nodes on loopback TCP —
// the harness examples and the E28 experiment use it to demonstrate the
// same algorithms over real sockets.
type Cluster struct {
	Nodes []*Node
	seed  uint64
	rng   *rand.Rand
	opts  []NodeOption
}

// StartCluster boots n nodes: the first owns the full circle and the rest
// join sequentially through it, with a stabilization pass after each join.
// opts apply to every node of the cluster (and to later Join calls); do
// not pass per-node options like WithStore here.
func StartCluster(n int, seed uint64, opts ...NodeOption) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("p2p: cluster needs n >= 1")
	}
	c := &Cluster{seed: seed, rng: rand.New(rand.NewPCG(seed, seed+1)), opts: opts}
	first, err := NewNode("127.0.0.1:0", seed, opts...)
	if err != nil {
		return nil, err
	}
	first.StartFirst(interval.Point(c.rng.Uint64()))
	c.Nodes = append(c.Nodes, first)
	for i := 1; i < n; i++ {
		if _, err := c.Join(); err != nil {
			c.Stop()
			return nil, fmt.Errorf("p2p: join %d: %w", i, err)
		}
	}
	return c, c.StabilizeAll(2)
}

// Join adds one node through the cluster's first node and appends it to
// Nodes — the churn half the E31 staleness sweep exercises live.
func (c *Cluster) Join() (*Node, error) {
	return c.JoinWith()
}

// JoinWith is Join with per-node options appended after the cluster-wide
// ones — E32 uses it to give each member its own telemetry registry so
// per-node load can be read apart.
func (c *Cluster) JoinWith(extra ...NodeOption) (*Node, error) {
	opts := append(append([]NodeOption{}, c.opts...), extra...)
	node, err := NewNode("127.0.0.1:0", c.seed, opts...)
	if err != nil {
		return nil, err
	}
	if err := node.StartJoin(c.Nodes[0].Addr(), c.rng); err != nil {
		node.Close()
		return nil, err
	}
	c.Nodes = append(c.Nodes, node)
	return node, nil
}

// LeaveAt gracefully removes node i (i > 0: node 0 is the bootstrap) from
// the ring and from Nodes.
func (c *Cluster) LeaveAt(i int) error {
	if i <= 0 || i >= len(c.Nodes) {
		return fmt.Errorf("p2p: cannot leave node %d of %d", i, len(c.Nodes))
	}
	if err := c.Nodes[i].Leave(); err != nil {
		return err
	}
	c.Nodes = append(c.Nodes[:i], c.Nodes[i+1:]...)
	return nil
}

// StabilizeAll runs `rounds` stabilization passes over every node.
func (c *Cluster) StabilizeAll(rounds int) error {
	for r := 0; r < rounds; r++ {
		for _, n := range c.Nodes {
			if err := n.Stabilize(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Client returns a client bootstrapped at node idx.
func (c *Cluster) Client(idx int) *Client {
	return &Client{Bootstrap: c.Nodes[idx].Addr()}
}

// Hash returns the shared item-hash function.
func (c *Cluster) Hash() func(string) interval.Point {
	return c.Nodes[0].HashFunc()
}

// Stop closes every node.
func (c *Cluster) Stop() {
	for _, n := range c.Nodes {
		n.Close()
	}
}

// RingOrder returns the nodes' points in ring-successor order starting at
// node 0, for verifying ring integrity.
func (c *Cluster) RingOrder() ([]interval.Point, error) {
	var out []interval.Point
	start := c.Nodes[0].Addr()
	addr := start
	for i := 0; i <= len(c.Nodes); i++ {
		st, err := call(addr, request{Op: opState})
		if err != nil {
			return nil, err
		}
		out = append(out, interval.Point(st.Point))
		addr = st.SuccAddr
		if addr == start {
			return out, nil
		}
	}
	return out, fmt.Errorf("p2p: ring does not close after %d hops", len(c.Nodes))
}
