package p2p

// Tests for concurrent disjoint handoff sessions: the node no longer
// enforces one transfer at a time — a second joiner splitting the same
// owner gets the disjoint sub-range bounded at the first joiner's fenced
// range and both sessions stream simultaneously.

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

// TestConcurrentJoinsSameOwner proves two join sessions against one owner
// genuinely overlap in time: joiner A is paused mid-stream (its session
// held open at the owner), joiner B then prepares and streams its
// disjoint sub-range — both sessions streaming at once, where the old
// one-transfer discipline refused B's overlapping-range prepare outright.
// Commits resolve in ring order (B's inner range waits for A's outer
// one), both joins complete, items are conserved across both splits, and
// every key stays readable from every node.
func TestConcurrentJoinsSameOwner(t *testing.T) {
	const items = 200
	owner, _ := handoffHarness(t, 140, items, WithHandoffTTL(30*time.Second))
	defer owner.Close()

	aPaused := make(chan struct{})
	aResume := make(chan struct{})
	var pauseOnce sync.Once

	a, err := NewNode("127.0.0.1:0", 140)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.handoffChunkHook = func(chunk int) error {
		if chunk >= 1 {
			pauseOnce.Do(func() { close(aPaused) })
			<-aResume
		}
		return nil
	}
	aErr := make(chan error, 1)
	go func() { aErr <- a.StartJoin(owner.Addr(), rand.New(rand.NewPCG(141, 141))) }()

	<-aPaused
	if got := owner.sessions.Active(); got != 1 {
		t.Fatalf("owner has %d active sessions while A streams, want 1", got)
	}

	// B prepares and streams while A's session is frozen mid-stream. Its
	// prepare must be bounded at A's fenced range, not refused; its
	// commit queues behind A's (commit-in-order), so run it alongside.
	b, err := NewNode("127.0.0.1:0", 140)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	bErr := make(chan error, 1)
	go func() { bErr <- b.StartJoin(owner.Addr(), rand.New(rand.NewPCG(142, 142))) }()

	// Both sessions must be streaming at the owner simultaneously.
	deadline := time.Now().Add(10 * time.Second)
	for owner.sessions.Active() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("owner never held 2 concurrent sessions (have %d)", owner.sessions.Active())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Release A; it commits its outer range, unblocking B's inner commit.
	close(aResume)
	if err := <-aErr; err != nil {
		t.Fatalf("paused join A: %v", err)
	}
	if err := <-bErr; err != nil {
		t.Fatalf("concurrent join B: %v", err)
	}
	if b.NumItems() == 0 {
		t.Fatal("B committed but owns no items; pick seeds that land items in its range")
	}

	for round := 0; round < 3; round++ {
		for _, n := range []*Node{owner, a, b} {
			if err := n.Stabilize(); err != nil {
				t.Fatalf("stabilize: %v", err)
			}
		}
	}
	if sum := owner.NumItems() + a.NumItems() + b.NumItems(); sum != items {
		t.Fatalf("items not conserved across concurrent joins: %d + %d + %d != %d",
			owner.NumItems(), a.NumItems(), b.NumItems(), items)
	}
	if a.NumItems() == 0 {
		t.Fatal("A completed but owns no items")
	}
	for _, n := range []*Node{owner, a, b} {
		verifyAllKeys(t, n.Addr(), owner.HashFunc(), items, "after concurrent joins via "+n.Addr())
	}

	// The ring closes over exactly the three nodes.
	seen := map[string]bool{}
	addr := owner.Addr()
	for i := 0; i < 4; i++ {
		st, err := call(addr, request{Op: opState})
		if err != nil {
			t.Fatal(err)
		}
		seen[st.Addr] = true
		addr = st.SuccAddr
		if addr == owner.Addr() {
			break
		}
	}
	if len(seen) != 3 {
		t.Fatalf("ring closes over %d nodes, want 3 (%v)", len(seen), seen)
	}
}

// TestConcurrentClusterChurn is the stress arm the CI race job runs:
// joins, a leave, and read traffic all in flight against one cluster at
// once. Every operation either succeeds or retries; at the end the ring
// closes and every key is served.
func TestConcurrentClusterChurn(t *testing.T) {
	const n = 6
	const items = 60
	c, err := StartCluster(n, 2024)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	h := c.Hash()
	for i := 0; i < items; i++ {
		if _, err := c.Client(i%n).Put(key2(i), []byte(val2(i)), h); err != nil {
			t.Fatal(err)
		}
	}

	var churnWg sync.WaitGroup
	errs := make(chan error, 8)
	stop := make(chan struct{})

	// Two concurrent joiners through different bootstrap nodes.
	joined := make([]*Node, 2)
	for j := 0; j < 2; j++ {
		churnWg.Add(1)
		go func(j int) {
			defer churnWg.Done()
			node, err := NewNode("127.0.0.1:0", 2024)
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewPCG(uint64(3000+j), uint64(j)+7))
			for attempt := 0; ; attempt++ {
				err = node.StartJoin(c.Nodes[j].Addr(), rng)
				if err == nil {
					break
				}
				if attempt >= 10 {
					errs <- fmt.Errorf("joiner %d: %w", j, err)
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
			joined[j] = node
		}(j)
	}

	// One graceful leave, retried while the neighbourhood is busy.
	leaver := c.Nodes[n-1]
	churnWg.Add(1)
	go func() {
		defer churnWg.Done()
		for attempt := 0; ; attempt++ {
			err := leaver.Leave()
			if err == nil {
				return
			}
			if attempt >= 20 {
				errs <- fmt.Errorf("leave: %w", err)
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
	}()

	// Read traffic throughout (a get may transiently fail while a node is
	// mid-leave; only persistent failures matter and the final sweep below
	// catches those).
	trafficDone := make(chan struct{})
	go func() {
		defer close(trafficDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Client(i%4).Get(key2(i%items), h)
		}
	}()

	churnDone := make(chan struct{})
	go func() { churnWg.Wait(); close(churnDone) }()
	select {
	case <-churnDone:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent churn did not settle in 30s")
	}
	close(stop)
	<-trafficDone

	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	for _, node := range joined {
		if node != nil {
			defer node.Close()
			c.Nodes = append(c.Nodes, node)
		}
	}
	// Drop the departed leaver from the stabilization set.
	var live []*Node
	for _, node := range c.Nodes {
		if node != leaver {
			live = append(live, node)
		}
	}
	c.Nodes = live
	if err := c.StabilizeAll(3); err != nil {
		t.Fatalf("stabilize after churn: %v", err)
	}
	for i := 0; i < items; i++ {
		v, _, err := c.Client(0).Get(key2(i), h)
		if err != nil {
			t.Fatalf("get %s after concurrent churn: %v", key2(i), err)
		}
		if string(v) != val2(i) {
			t.Fatalf("get %s = %q, want %q", key2(i), v, val2(i))
		}
	}
	if _, err := c.RingOrder(); err != nil {
		t.Fatalf("ring integrity after concurrent churn: %v", err)
	}
}

func key2(i int) string { return fmt.Sprintf("ck%03d", i) }
func val2(i int) string { return fmt.Sprintf("cv%03d", i) }
