package p2p

import (
	"math/rand/v2"
	"testing"
)

// TestDroppedJoinPatchRepairedByRetry: every node refuses the first
// opPatchBack it receives (an injected drop). Without the ack + bounded
// retry the join-time patches would all be lost and no backward table
// would learn the joiner until the next stabilization pass; with retry the
// second attempt lands within milliseconds.
func TestDroppedJoinPatchRepairedByRetry(t *testing.T) {
	c, err := StartCluster(10, 91)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for _, n := range c.Nodes {
		n.failPatches.Store(1) // drop exactly the first patch delivery
	}

	joiner, err := NewNode("127.0.0.1:0", 91)
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.StartJoin(c.Nodes[0].Addr(), rand.New(rand.NewPCG(92, 93))); err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()

	// NO StabilizeAll: only the retried join-time patches have run.
	dropped, learned := 0, 0
	for _, n := range c.Nodes {
		if n.failPatches.Load() < 1 {
			dropped++
		}
		if _, ok := backIDs(n)[joiner.ID()]; ok {
			learned++
		}
	}
	if dropped == 0 {
		t.Fatal("no patch was dropped; the injection hook never fired")
	}
	if learned == 0 {
		t.Fatal("dropped join patch was not repaired by retry before stabilization")
	}
}

// TestDroppedLeavePatchRepairedByRetry: the leave-side retraction patch
// survives a drop the same way — the departed node's ID is gone from every
// backward table without any stabilization pass.
func TestDroppedLeavePatchRepairedByRetry(t *testing.T) {
	c, err := StartCluster(10, 101)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.StabilizeAll(2); err != nil {
		t.Fatal(err)
	}

	victim := c.Nodes[4]
	holders := 0
	for i, n := range c.Nodes {
		if i == 4 {
			continue
		}
		if _, ok := backIDs(n)[victim.ID()]; ok {
			holders++
		}
	}
	if holders == 0 {
		t.Skip("no table lists the victim; nothing to retract")
	}
	for i, n := range c.Nodes {
		if i == 4 {
			continue
		}
		n.failPatches.Store(1)
	}
	if err := victim.Leave(); err != nil {
		t.Fatal(err)
	}
	for i, n := range c.Nodes {
		if i == 4 {
			continue
		}
		if e, ok := backIDs(n)[victim.ID()]; ok {
			t.Fatalf("node %d still lists departed %x -> %s after dropped-patch retry", i, e.ID, e.Addr)
		}
	}
}

// TestPatchExhaustedRetriesFallsBackToStabilize: a patch dropped more
// times than the retry budget is genuinely lost — and the stabilization
// loop still repairs the table, preserving the old safety net.
func TestPatchExhaustedRetriesFallsBackToStabilize(t *testing.T) {
	c, err := StartCluster(8, 111)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for _, n := range c.Nodes {
		n.failPatches.Store(patchAttempts) // every retry attempt fails
	}

	joiner, err := NewNode("127.0.0.1:0", 111)
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.StartJoin(c.Nodes[0].Addr(), rand.New(rand.NewPCG(112, 113))); err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()

	learned := 0
	for _, n := range c.Nodes {
		if _, ok := backIDs(n)[joiner.ID()]; ok {
			learned++
		}
	}
	if learned != 0 {
		t.Fatalf("%d tables learned the joiner despite exhausted retries", learned)
	}
	if err := c.StabilizeAll(2); err != nil {
		t.Fatal(err)
	}
	learned = 0
	for _, n := range c.Nodes {
		if _, ok := backIDs(n)[joiner.ID()]; ok {
			learned++
		}
	}
	if learned == 0 {
		t.Fatal("stabilization did not repair the exhausted-retry loss")
	}
}
