package p2p

import (
	"encoding/gob"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"condisc/internal/doctor"
	"condisc/internal/handoff"
	"condisc/internal/hashing"
	"condisc/internal/interval"
	"condisc/internal/journal"
	"condisc/internal/replicate"
	"condisc/internal/store"
	"condisc/internal/telemetry"
)

// NodeInfo is a routing-table entry: a node's stable identifier, segment
// start, and address. The ID plays the role partition.Handle plays in the
// simulator: it names the same node across arbitrary churn, so neighbour
// tables keyed by it can be patched entry-by-entry by join/leave messages
// instead of being rebuilt.
type NodeInfo struct {
	ID    uint64
	Point uint64
	Addr  string
}

// Node is one Distance Halving DHT server.
type Node struct {
	id   uint64 // stable identifier, fixed for the node's lifetime
	addr string
	ln   net.Listener
	hash *hashing.Func

	mu   sync.Mutex
	x    interval.Point // own segment start (fixed for the node's lifetime)
	end  interval.Point // segment end = successor's point
	pred NodeInfo
	succ NodeInfo
	// ringVer counts the (end, succ) updates this node has performed — a
	// version stamp, bumped only by setEndSuccLocked (which still runs
	// under mu). Handoff sessions record it at prepare time so commit can
	// tell a session prepared against the CURRENT segment tail from one
	// whose boundary was moved out from under it by an interleaved leave
	// absorption: the two kinds of transfer no longer exclude each other
	// wholesale, they serialize only at this version-stamped pointer
	// update. It is atomic so lock-free observers — the flight recorder's
	// causal stamps on paths that run outside mu, like stale-route
	// repair — can read it without racing the bump.
	ringVer atomic.Uint64
	// back holds the covers of the backward image b(s) — the neighbours
	// Fast Lookup hops through — keyed by stable node ID. Entries are
	// patched incrementally by opPatchBack messages when a neighbour joins
	// or leaves, and refreshed wholesale by Stabilize. backSorted is the
	// Point-sorted view the routing hot path binary-searches; it is
	// re-derived whenever back changes (the table has O(ρ·∆) entries).
	back       map[uint64]NodeInfo
	backSorted []NodeInfo
	// data is the node's item store, ordered by hash point so that a
	// churn handoff streams exactly the moving range (internal/store). It
	// is the in-memory engine unless WithStore installed a disk-backed one.
	data store.Store
	// leaving marks that a Leave handoff is in flight: item requests are
	// refused (explicit error, not a silent miss or a silently dropped
	// write) until the leave commits or aborts.
	leaving bool
	// ready marks that the node holds a ring position (StartFirst ran, or
	// a join committed and the segment was adopted). A node that is still
	// joining serves fast "retry" refusals instead of leaving peers to
	// hang on its open-but-unserved listener until their RPC deadline.
	ready bool

	// sessions is the sender side of the node's handoff transfers: it
	// fences writes to a mid-handoff range and answers commit/status.
	// Several join sessions over disjoint sub-ranges of the segment may
	// stream at once: a new prepare is bounded at the nearest fenced
	// range (handleHandPrepare), and commits resolve in ring order —
	// only the sub-range ending at the current segment end may flip
	// (handleHandCommit), so an aborted outer session can never strand
	// an inner committed range or leave a dangling successor.
	sessions   *handoff.Sessions
	handoffTTL time.Duration
	chunkBytes int
	// commits durably records every commit decision this node makes as a
	// handoff sender (disk-backed nodes only): a restarted, otherwise
	// amnesiac process can still answer an opHandStatus probe with
	// "committed" — the dual-crash corner where both sides restart
	// between the sender's commit and the receiver's acknowledgement.
	commits *handoff.CommitLog
	// absorbing counts in-flight inbound leave absorptions (this node as
	// receiver). Leaves and further absorptions are refused while one
	// runs. Join prepares are NOT: a join may stream concurrently with
	// the absorption's stream, and the version-stamped commit path sorts
	// out whichever pointer update publishes second.
	absorbing int
	// absorbExtended marks the short window in which an absorption has
	// published its pointer extension but its commit at the leaver is
	// still unresolved. Join prepares are refused during this window
	// only: a session prepared then could not be handed a correct
	// successor — the leaver if the absorption rolls back, the leaver's
	// old successor if it commits.
	absorbExtended bool
	// recovered is a crashed join's staging session found on disk at
	// construction; StartJoin resumes or aborts it before a fresh join.
	recovered *handoff.Receiver
	// noPatches disables the incremental opPatchBack announcements,
	// leaving table repair to Stabilize alone — the ablation arm of the
	// E31 staleness-vs-stabilization experiment.
	noPatches bool

	// rpcTimeout is this node's request/response deadline (default the
	// package rpcTimeout). The failure detector needs tighter bounds than
	// bulk handoff, so it is per-node instead of a package constant.
	rpcTimeout time.Duration
	// repl is the node's replication policy (disabled unless
	// WithReplication turned it on); rdata is the replica-payload store —
	// items this node holds FOR ITS PREDECESSORS, strictly separate from
	// the owned store so handoffs, doctor item counts, and digests never
	// mix the two planes.
	repl  replicate.Policy
	rdata store.Store
	// succs caches the K−1-deep ring successor chain (refreshed by
	// Stabilize; entry 0 is n.succ). It is both the replica placement
	// target list and — after the successor dies — the replica-holder
	// list crash repair pulls from (guarded by mu). succsWrapped records
	// whether the last chain walk affirmatively wrapped the ring (hit
	// this node again) rather than breaking on an unreachable hop — only
	// a wrapped chain proves the ring is smaller than the walk wanted,
	// which gates both the two-node crash absorb and the doctor's
	// desired-replica count.
	succs        []NodeInfo
	succsWrapped bool
	// Failure-detector state (guarded by mu): fdMisses counts consecutive
	// failed successor opState probes; at fdThreshold the successor is
	// declared dead and crashAbsorb runs. repairSegs queues absorbed
	// ranges whose items exist only as replicas until runRepairs
	// re-materializes them (repairPending spans that window); replDirty
	// asks the next Stabilize to re-replicate the owned range (set after
	// any membership change around this node).
	fdMisses      int
	fdThreshold   int
	repairPending bool
	repairSegs    []interval.Segment
	replDirty     bool

	// tel is the node's telemetry registry (telemetry.Default unless
	// WithTelemetry gave this node its own — in-process clusters do, so
	// per-node load skew stays observable). met holds the pre-resolved
	// metric pointers the request path records into.
	tel *telemetry.Registry
	met nodeMetrics
	// jrn is the node's flight recorder (nil unless WithJournal attached
	// one): end/succ flips, handoff phases, and stale-route repairs are
	// recorded with the node's ring version as the causal stamp, then
	// served by /journalz and merged cluster-wide by dhctl journal.
	jrn *journal.Journal
	// adminAddr is the node's admin HTTP endpoint, advertised in opState
	// responses so one ring member is enough to discover every /statusz.
	adminAddr string

	// failPatches injects opPatchBack failures for the retry tests: while
	// positive, incoming patches are refused (and the counter decremented).
	failPatches atomic.Int32
	// handoffChunkHook, when set by a test, runs before each received
	// stream chunk is staged; an error simulates the receiver dying
	// mid-stream (no cleanup runs — staging is left exactly as a crash
	// would leave it).
	handoffChunkHook func(chunk int) error
	// handoffCommitHook, when set by a test, runs after a join's commit
	// has landed at the sender but before this node adopts the range; an
	// error simulates the receiver dying in exactly the dual-crash
	// window (commit durable at the sender, acknowledgement lost here).
	handoffCommitHook func() error

	closed  chan struct{}
	wg      sync.WaitGroup
	started bool
}

// NodeOption configures a Node at construction.
type NodeOption func(*Node)

// WithStore backs the node's items with s (for example a disk-backed WAL
// store from store.OpenLog) instead of the default in-memory store. The
// node takes ownership: Close closes the store.
func WithStore(s store.Store) NodeOption {
	return func(n *Node) { n.data = s }
}

// WithHandoffTTL sets the receiver-silence deadline after which this
// node, as a handoff sender, unilaterally aborts a streaming session and
// keeps its range (default handoff.DefaultTTL). Tests shrink it to
// exercise the expiry paths.
func WithHandoffTTL(d time.Duration) NodeOption {
	return func(n *Node) { n.handoffTTL = d }
}

// WithChunkBytes sets the per-frame byte budget of outgoing handoff
// streams (default handoff.DefaultChunkBytes). Peak transfer memory on
// both ends is O(this budget), independent of the range size.
func WithChunkBytes(b int) NodeOption {
	return func(n *Node) { n.chunkBytes = b }
}

// WithoutPatches disables the incremental join/leave backward-table
// announcements: tables are then repaired only by Stabilize, making table
// staleness a pure function of the stabilization interval (E31).
func WithoutPatches() NodeOption {
	return func(n *Node) { n.noPatches = true }
}

// WithTelemetry gives the node its own telemetry registry instead of the
// process-wide telemetry.Default. In-process clusters use one registry
// per node so /statusz and the E32 skew experiment see per-node load;
// dhnode (one node per process) keeps Default so store-level metrics
// land in the same scrape.
func WithTelemetry(reg *telemetry.Registry) NodeOption {
	return func(n *Node) { n.tel = reg }
}

// WithJournal attaches a flight recorder: the node records end/succ
// flips, handoff prepare/stream/commit/abort, and stale-route repairs
// into j (internal/journal). Like telemetry, the journal is a pure
// observer — it changes no protocol behaviour.
func WithJournal(j *journal.Journal) NodeOption {
	return func(n *Node) { n.jrn = j }
}

// WithRPCTimeout sets the node's request/response deadline (default the
// package rpcTimeout, 5s). Every deadline the node arms scales from it:
// control RPCs and the failure-detector probe use it directly, streamed
// handoff frames get the 10× idle allowance.
func WithRPCTimeout(d time.Duration) NodeOption {
	return func(n *Node) {
		if d > 0 {
			n.rpcTimeout = d
		}
	}
}

// WithReplication enables k-successor replication under pol: every Put
// this node owns is also placed on its K−1 ring successors (acked at
// pol's quorum), owner misses fall back to replicas, and the node
// repairs replication after membership changes. It also arms the
// failure detector: a successor silent for fdThreshold consecutive
// stabilization probes is declared dead and its segment crash-absorbed.
func WithReplication(pol replicate.Policy) NodeOption {
	return func(n *Node) { n.repl = pol }
}

// WithReplicaStore backs the node's replica-payload plane with s (for
// example a second WAL store beside the primary) instead of the default
// in-memory store. The node takes ownership: Close closes the store.
func WithReplicaStore(s store.Store) NodeOption {
	return func(n *Node) { n.rdata = s }
}

// WithFDThreshold sets how many consecutive failed successor probes
// declare the successor dead (default 3). It also arms the failure
// detector even without replication — the ring then heals around a
// crashed node whose items are lost until an operator restores them.
func WithFDThreshold(k int) NodeOption {
	return func(n *Node) {
		if k > 0 {
			n.fdThreshold = k
		}
	}
}

// nodeMetrics holds the node's pre-resolved metric pointers: request
// handlers record through these, never through registry lookups.
type nodeMetrics struct {
	rpc      map[string]*telemetry.Counter // per-op request counter
	rpcOther *telemetry.Counter
	// routed counts every lookup/get/put request this node handled — the
	// paper's Definition 3 "active in a routing" load, live.
	routed       *telemetry.Counter
	ownerServed  *telemetry.Counter
	hops         *telemetry.Histogram // completed-lookup hop counts, recorded at the entry node
	staleRepairs *telemetry.Counter   // ring-hop fallbacks this node performed
	handPrepares *telemetry.Counter
	handCommits  *telemetry.Counter
	handAborts   *telemetry.Counter
	handBytesOut *telemetry.Counter
	handItemsIn  *telemetry.Counter
	// Replication plane: replica writes pushed out, quorum failures
	// surfaced to writers, replica-fallback reads attempted/served, crash
	// absorbs performed, and repair-loop volume. fdSuspicion is the
	// failure detector's live miss count against the current successor.
	replPuts       *telemetry.Counter
	replQuorumFail *telemetry.Counter
	replFallbacks  *telemetry.Counter
	replFallbackOK *telemetry.Counter
	crashAbsorbs   *telemetry.Counter
	repairRuns     *telemetry.Counter
	repairItems    *telemetry.Counter
	repairBytes    *telemetry.Counter
	fdSuspicion    *telemetry.Gauge
}

func newNodeMetrics(reg *telemetry.Registry) nodeMetrics {
	m := nodeMetrics{
		rpc:          map[string]*telemetry.Counter{},
		rpcOther:     reg.Counter(`condisc_p2p_rpc_total{op="other"}`),
		routed:       reg.Counter("condisc_p2p_msgs_routed_total"),
		ownerServed:  reg.Counter("condisc_p2p_owner_served_total"),
		hops:         reg.Histogram("condisc_p2p_lookup_hops"),
		staleRepairs: reg.Counter("condisc_p2p_stale_repairs_total"),
		handPrepares: reg.Counter("condisc_p2p_handoff_prepares_total"),
		handCommits:  reg.Counter("condisc_p2p_handoff_commits_total"),
		handAborts:   reg.Counter("condisc_p2p_handoff_aborts_total"),
		handBytesOut: reg.Counter("condisc_p2p_handoff_stream_bytes_total"),
		handItemsIn:  reg.Counter("condisc_p2p_handoff_items_in_total"),

		replPuts:       reg.Counter("condisc_p2p_repl_puts_total"),
		replQuorumFail: reg.Counter("condisc_p2p_repl_quorum_fail_total"),
		replFallbacks:  reg.Counter("condisc_p2p_repl_fallback_total"),
		replFallbackOK: reg.Counter("condisc_p2p_repl_fallback_hits_total"),
		crashAbsorbs:   reg.Counter("condisc_p2p_crash_absorbs_total"),
		repairRuns:     reg.Counter("condisc_p2p_repair_runs_total"),
		repairItems:    reg.Counter("condisc_p2p_repair_items_total"),
		repairBytes:    reg.Counter("condisc_p2p_repair_bytes_total"),
		fdSuspicion:    reg.Gauge("condisc_p2p_fd_suspicion"),
	}
	for _, op := range []string{opState, opLookup, opGet, opPut, opSetPred, opPatchBack,
		opLeave, opHandPrepare, opHandStream, opHandCommit, opHandStatus, opHandAbort,
		opReplPut, opReplGet, opReplStream} {
		m.rpc[op] = reg.Counter(fmt.Sprintf("condisc_p2p_rpc_total{op=%q}", op))
	}
	return m
}

// NewNode creates a node listening on addr ("127.0.0.1:0" for an ephemeral
// port). seed derives the shared item-hash function: all nodes of a cluster
// must use the same seed. The node's stable ID is derived from the seed and
// the bound address, so it is reproducible for a fixed deployment.
func NewNode(addr string, seed uint64, opts ...NodeOption) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("p2p: listen: %w", err)
	}
	bound := ln.Addr().String()
	n := &Node{
		id:     nodeID(seed, bound),
		addr:   bound,
		ln:     ln,
		hash:   hashing.NewKWise(8, rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))),
		closed: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(n)
	}
	if n.tel == nil {
		n.tel = telemetry.Default
	}
	n.met = newNodeMetrics(n.tel)
	if n.data == nil {
		n.data = store.NewMem()
	}
	if n.rpcTimeout <= 0 {
		n.rpcTimeout = rpcTimeout
	}
	if err := n.repl.Validate(); err != nil {
		ln.Close()
		return nil, err
	}
	// The failure detector arms with replication (crash repair needs it)
	// or with an explicit WithFDThreshold; fdThreshold == 0 keeps it off.
	if n.repl.Enabled() && n.fdThreshold == 0 {
		n.fdThreshold = 3
	}
	if n.repl.Enabled() && n.rdata == nil {
		n.rdata = store.NewMem()
	}
	if n.handoffTTL <= 0 {
		n.handoffTTL = handoff.DefaultTTL
	}
	if n.chunkBytes <= 0 {
		n.chunkBytes = handoff.DefaultChunkBytes
	}
	n.sessions = handoff.NewSessions(n.handoffTTL)
	if lg, ok := n.data.(*store.Log); ok {
		// Same 100×TTL horizon the in-memory registry keeps committed
		// sessions for; past it a probe reading "unknown" resolves against
		// the ring, exactly as before.
		cl, err := handoff.OpenCommitLog(lg.Dir()+".commits", 100*n.handoffTTL)
		if err != nil {
			ln.Close()
			return nil, err
		}
		n.commits = cl
	}
	if err := n.recoverStaging(); err != nil {
		ln.Close()
		return nil, err
	}
	return n, nil
}

// nodeID derives a stable identifier from the cluster seed and the node's
// bound address (FNV-1a, seed-mixed).
func nodeID(seed uint64, addr string) uint64 {
	h := uint64(14695981039346656037) ^ seed
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return h
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.addr }

// Telemetry returns the node's metric registry.
func (n *Node) Telemetry() *telemetry.Registry { return n.tel }

// Journal returns the node's flight recorder (nil if none attached).
func (n *Node) Journal() *journal.Journal { return n.jrn }

// Doctor recomputes the paper's bounds this node can verify from local
// state alone (internal/doctor): routing-table degree vs Theorem 2.2,
// own-lookup hop p99 vs the Theorem 2.8 dilation bound at the §3
// segment-length size estimate, and the own-vs-predecessor segment
// balance proxy for Definition 1 smoothness. /doctorz serves the
// report; /healthz degrades while any verdict is breached.
func (n *Node) Doctor() doctor.Report {
	n.mu.Lock()
	seg := n.segmentLocked()
	var predLen uint64
	if n.pred.Addr != "" && n.pred.ID != n.id {
		predLen = uint64(n.x - interval.Point(n.pred.Point))
	}
	deg := len(n.backSorted) + 2 // back table + pred/succ ring pointers
	stats := doctor.NodeStats{
		SegLen:  seg.Len,
		PredLen: predLen,
		Degree:  deg,
		Delta:   2,
	}
	if n.repl.Enabled() && n.succs != nil {
		// Desired comes from the POLICY — K−1 replica targets — capped by
		// the ring size only when the last chain walk affirmatively
		// wrapped (succsWrapped). A walk that broke early must not shrink
		// desired, or the invariant would read healthy exactly when
		// replica targets are missing. Live is the non-self chain entries,
		// minus a currently-suspected successor; an unfinished crash
		// repair counts as one missing unit — so the verdict degrades the
		// moment the detector suspects and recovers only after absorb +
		// repair both completed.
		desired := n.repl.K - 1
		chainLive := 0
		for _, s := range n.succs {
			if s.ID != n.id && s.Addr != n.addr {
				chainLive++
			}
		}
		if n.succsWrapped && chainLive < desired {
			desired = chainLive // the whole ring is smaller than K
		}
		live := chainLive
		if live > desired {
			live = desired
		}
		if n.fdMisses > 0 && live > 0 {
			live--
		}
		stats.ReplDesired = desired
		stats.ReplLive = live
		if n.repairPending {
			stats.ReplPending = 1
		}
	}
	n.mu.Unlock()
	stats.HopP99 = n.met.hops.Quantile(0.99)
	return doctor.DiagnoseNode(stats)
}

// SetAdminAddr records the node's admin HTTP endpoint; it is advertised
// in opState responses so a single ring member bootstraps discovery of
// every node's /statusz (dhctl top).
func (n *Node) SetAdminAddr(addr string) {
	n.mu.Lock()
	n.adminAddr = addr
	n.mu.Unlock()
}

// NodeStatus is the node half of /statusz: ring position, pointers,
// neighbour table, and store size, read in one consistent snapshot.
type NodeStatus struct {
	ID        uint64     `json:"id"`
	Addr      string     `json:"addr"`
	AdminAddr string     `json:"admin_addr,omitempty"`
	Point     uint64     `json:"point"`
	End       uint64     `json:"end"`
	RingVer   uint64     `json:"ring_ver"`
	Pred      NodeInfo   `json:"pred"`
	Succ      NodeInfo   `json:"succ"`
	Back      []NodeInfo `json:"back"`
	Items     int        `json:"items"`
	Ready     bool       `json:"ready"`
	Leaving   bool       `json:"leaving"`
	Absorbing int        `json:"absorbing"`
	// Replication plane (zero values when replication is off): the
	// policy's K, the cached successor chain replicas go to, the replica
	// payloads held for predecessors, and whether a crash repair is
	// still outstanding.
	ReplK         int        `json:"repl_k,omitempty"`
	Succs         []NodeInfo `json:"succs,omitempty"`
	ReplItems     int        `json:"repl_items,omitempty"`
	RepairPending bool       `json:"repair_pending,omitempty"`
}

// Status assembles the node's introspection snapshot.
func (n *Node) Status() NodeStatus {
	n.mu.Lock()
	st := NodeStatus{
		ID: n.id, Addr: n.addr, AdminAddr: n.adminAddr,
		Point: uint64(n.x), End: uint64(n.end), RingVer: n.ringVer.Load(),
		Pred: n.pred, Succ: n.succ,
		Back:  append([]NodeInfo(nil), n.backSorted...),
		Ready: n.ready, Leaving: n.leaving, Absorbing: n.absorbing,
		ReplK: n.repl.K, Succs: append([]NodeInfo(nil), n.succs...),
		RepairPending: n.repairPending,
	}
	n.mu.Unlock()
	st.Items = n.data.Len()
	if n.rdata != nil {
		st.ReplItems = n.rdata.Len()
	}
	return st
}

// ID returns the node's stable identifier.
func (n *Node) ID() uint64 { return n.id }

// setBackLocked replaces the whole backward table (mu held).
func (n *Node) setBackLocked(entries []NodeInfo) {
	n.back = make(map[uint64]NodeInfo, len(entries))
	for _, e := range entries {
		n.back[e.ID] = e
	}
	n.rebuildBackSortedLocked()
}

// patchBackLocked adds or removes one backward-table entry by stable ID
// (mu held) — the incremental churn message the simulator's handle-keyed
// adjacency lists correspond to on the wire.
func (n *Node) patchBackLocked(e NodeInfo, remove bool) {
	if remove {
		delete(n.back, e.ID)
	} else {
		n.back[e.ID] = e
	}
	n.rebuildBackSortedLocked()
}

func (n *Node) rebuildBackSortedLocked() {
	n.backSorted = n.backSorted[:0]
	for _, e := range n.back {
		n.backSorted = append(n.backSorted, e)
	}
	sortByPoint(n.backSorted)
}

// Point returns the node's segment start.
func (n *Node) Point() interval.Point {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.x
}

// setEndSuccLocked is the single place the node's segment end and ring
// successor change (callers hold mu). Funnelling every update — a join
// commit shrinking the tail, a leave absorption extending it, a
// stabilization repair, a rollback — through one version-bumping setter
// is what lets concurrent transfers interleave: each one validates the
// version (or the boundary geometry) it captured before publishing its
// own update, instead of locking the other kind out for its whole
// duration.
func (n *Node) setEndSuccLocked(end interval.Point, succ NodeInfo) {
	n.end = end
	n.succ = succ
	v := n.ringVer.Add(1)
	n.jrn.Record(journal.KindEndSuccFlip, v, 0, uint64(end), succ.ID, 0)
}

// segment returns the node's current segment (callers hold mu).
func (n *Node) segmentLocked() interval.Segment {
	if n.x == n.end {
		return interval.FullCircle
	}
	return interval.Segment{Start: n.x, Len: uint64(n.end - n.x)}
}

// StartFirst bootstraps a one-node network: the node owns the full circle.
func (n *Node) StartFirst(x interval.Point) {
	n.mu.Lock()
	n.x = x
	self := NodeInfo{ID: n.id, Point: uint64(x), Addr: n.addr}
	n.pred = self
	n.setEndSuccLocked(x, self)
	n.setBackLocked([]NodeInfo{self})
	n.ready = true
	n.mu.Unlock()
	n.serve()
}

func (n *Node) succInfo() NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.succ
}

// serve starts the accept loop.
func (n *Node) serve() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			conn, err := n.ln.Accept()
			if err != nil {
				select {
				case <-n.closed:
					return
				default:
					continue
				}
			}
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				defer conn.Close()
				// Bound the initial request read: a peer that dialed and
				// then died (or never speaks) must not pin this goroutine
				// forever. Generous — 10× the RPC deadline — because the
				// same accept path serves multi-frame streams whose senders
				// legitimately pause between chunks.
				conn.SetReadDeadline(time.Now().Add(10 * n.rpcTimeout))
				var req request
				if err := gob.NewDecoder(conn).Decode(&req); err != nil {
					return
				}
				conn.SetReadDeadline(time.Time{})
				switch req.Op {
				case opHandStream:
					// The response is a framed chunk stream on the same
					// connection, not a gob message.
					n.handleStream(req, conn)
				case opReplStream:
					n.handleReplStream(req, conn)
				default:
					resp := n.handle(req)
					_ = gob.NewEncoder(conn).Encode(resp)
				}
			}()
		}
	}()
}

// Close shuts the node down (without the graceful Leave handoff).
func (n *Node) Close() {
	select {
	case <-n.closed:
		return
	default:
	}
	close(n.closed)
	n.ln.Close()
	n.wg.Wait()
	_ = n.data.Close()
	if n.rdata != nil {
		_ = n.rdata.Close()
	}
	if n.commits != nil {
		_ = n.commits.Close()
	}
}

// handle dispatches one request.
func (n *Node) handle(req request) response {
	if c := n.met.rpc[req.Op]; c != nil {
		c.Inc()
	} else {
		n.met.rpcOther.Inc()
	}
	n.mu.Lock()
	ready := n.ready
	n.mu.Unlock()
	if !ready {
		// Mid-join: no ring position to answer for yet. Refuse fast so a
		// peer that learned this address early (e.g. as the successor of
		// a concurrent join) retries or falls back to a ring hop instead
		// of hanging until its RPC deadline.
		return response{Err: "node is joining; retry"}
	}
	switch req.Op {
	case opState:
		n.mu.Lock()
		defer n.mu.Unlock()
		return response{OK: true, ID: n.id, Point: uint64(n.x), End: uint64(n.end),
			Addr: n.addr, SuccID: n.succ.ID, SuccAddr: n.succ.Addr, PredAddr: n.pred.Addr,
			AdminAddr: n.adminAddr}
	case opSetPred:
		n.mu.Lock()
		n.pred = NodeInfo{ID: req.NewID, Point: req.NewPoint, Addr: req.NewAddr}
		n.mu.Unlock()
		return response{OK: true}
	case opPatchBack:
		if n.failPatches.Load() > 0 && n.failPatches.Add(-1) >= 0 {
			return response{Err: "injected patch drop"} // test hook: see failPatches
		}
		n.mu.Lock()
		n.patchBackLocked(NodeInfo{ID: req.NewID, Point: req.NewPoint, Addr: req.NewAddr}, req.Remove)
		n.mu.Unlock()
		return response{OK: true}
	case opHandPrepare:
		return n.handleHandPrepare(req)
	case opHandCommit:
		return n.handleHandCommit(req)
	case opHandStatus:
		return n.handleHandStatus(req)
	case opHandAbort:
		return n.handleHandAbort(req)
	case opReplPut:
		return n.handleReplPut(req)
	case opReplGet:
		return n.handleReplGet(req)
	case opLeave:
		return n.handleLeave(req)
	case opLookup, opGet, opPut:
		return n.routeObserved(req)
	default:
		return response{Err: "unknown op: " + req.Op}
	}
}

// Patch delivery policy: every opPatchBack is acknowledged by its RPC
// response, and a failed delivery (transport error or remote refusal) is
// retried up to patchAttempts times with a short backoff — so a single
// dropped patch is repaired in milliseconds instead of waiting out a full
// stabilization interval (seconds). Patches remain an optimization over
// the Stabilize repair loop, never the source of truth for ring pointers.
const (
	patchAttempts   = 3
	patchRetryDelay = 5 * time.Millisecond
)

// sendPatch delivers one acknowledged patch with bounded retry, reporting
// whether any attempt succeeded.
func sendPatch(addr string, req request) bool {
	for attempt := 0; attempt < patchAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(patchRetryDelay)
		}
		if _, err := call(addr, req); err == nil {
			return true
		}
	}
	return false
}

// notifyImageCovers sends an incremental backward-table patch (add, or
// remove when leaving) for this node to every node whose segment
// intersects one of the ∆ = 2 forward images of our segment — exactly the
// nodes whose backward image covers part of our segment, i.e. whose `back`
// table must list us. O(ρ) recipients by Theorem 2.2.
func (n *Node) notifyImageCovers(remove bool) {
	if n.noPatches {
		return
	}
	n.mu.Lock()
	seg := n.segmentLocked()
	self := request{Op: opPatchBack, NewID: n.id, NewPoint: uint64(n.x), NewAddr: n.addr, Remove: remove}
	n.mu.Unlock()
	for _, img := range []interval.Segment{seg.Half(), seg.HalfPlus()} {
		covers, err := n.coversOfArc(img)
		if err != nil {
			continue
		}
		for _, c := range covers {
			if c.Addr == n.addr {
				continue
			}
			sendPatch(c.Addr, self)
		}
	}
}
