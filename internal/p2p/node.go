package p2p

import (
	"encoding/gob"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"condisc/internal/hashing"
	"condisc/internal/interval"
	"condisc/internal/store"
)

// NodeInfo is a routing-table entry: a node's stable identifier, segment
// start, and address. The ID plays the role partition.Handle plays in the
// simulator: it names the same node across arbitrary churn, so neighbour
// tables keyed by it can be patched entry-by-entry by join/leave messages
// instead of being rebuilt.
type NodeInfo struct {
	ID    uint64
	Point uint64
	Addr  string
}

// Node is one Distance Halving DHT server.
type Node struct {
	id   uint64 // stable identifier, fixed for the node's lifetime
	addr string
	ln   net.Listener
	hash *hashing.Func

	mu   sync.Mutex
	x    interval.Point // own segment start (fixed for the node's lifetime)
	end  interval.Point // segment end = successor's point
	pred NodeInfo
	succ NodeInfo
	// back holds the covers of the backward image b(s) — the neighbours
	// Fast Lookup hops through — keyed by stable node ID. Entries are
	// patched incrementally by opPatchBack messages when a neighbour joins
	// or leaves, and refreshed wholesale by Stabilize. backSorted is the
	// Point-sorted view the routing hot path binary-searches; it is
	// re-derived whenever back changes (the table has O(ρ·∆) entries).
	back       map[uint64]NodeInfo
	backSorted []NodeInfo
	// data is the node's item store, ordered by hash point so that the
	// Join handoff drains exactly the split range (internal/store). It is
	// the in-memory engine unless WithStore installed a disk-backed one.
	data store.Store
	// leaving marks that Leave has drained the store: item requests are
	// refused (explicit error, not a silent miss or a silently dropped
	// write) until the node finishes shutting down.
	leaving bool

	// failPatches injects opPatchBack failures for the retry tests: while
	// positive, incoming patches are refused (and the counter decremented).
	failPatches atomic.Int32

	closed  chan struct{}
	wg      sync.WaitGroup
	started bool
}

// NodeOption configures a Node at construction.
type NodeOption func(*Node)

// WithStore backs the node's items with s (for example a disk-backed WAL
// store from store.OpenLog) instead of the default in-memory store. The
// node takes ownership: Close closes the store.
func WithStore(s store.Store) NodeOption {
	return func(n *Node) { n.data = s }
}

// NewNode creates a node listening on addr ("127.0.0.1:0" for an ephemeral
// port). seed derives the shared item-hash function: all nodes of a cluster
// must use the same seed. The node's stable ID is derived from the seed and
// the bound address, so it is reproducible for a fixed deployment.
func NewNode(addr string, seed uint64, opts ...NodeOption) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("p2p: listen: %w", err)
	}
	bound := ln.Addr().String()
	n := &Node{
		id:     nodeID(seed, bound),
		addr:   bound,
		ln:     ln,
		hash:   hashing.NewKWise(8, rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))),
		closed: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(n)
	}
	if n.data == nil {
		n.data = store.NewMem()
	}
	return n, nil
}

// nodeID derives a stable identifier from the cluster seed and the node's
// bound address (FNV-1a, seed-mixed).
func nodeID(seed uint64, addr string) uint64 {
	h := uint64(14695981039346656037) ^ seed
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return h
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.addr }

// ID returns the node's stable identifier.
func (n *Node) ID() uint64 { return n.id }

// setBackLocked replaces the whole backward table (mu held).
func (n *Node) setBackLocked(entries []NodeInfo) {
	n.back = make(map[uint64]NodeInfo, len(entries))
	for _, e := range entries {
		n.back[e.ID] = e
	}
	n.rebuildBackSortedLocked()
}

// patchBackLocked adds or removes one backward-table entry by stable ID
// (mu held) — the incremental churn message the simulator's handle-keyed
// adjacency lists correspond to on the wire.
func (n *Node) patchBackLocked(e NodeInfo, remove bool) {
	if remove {
		delete(n.back, e.ID)
	} else {
		n.back[e.ID] = e
	}
	n.rebuildBackSortedLocked()
}

func (n *Node) rebuildBackSortedLocked() {
	n.backSorted = n.backSorted[:0]
	for _, e := range n.back {
		n.backSorted = append(n.backSorted, e)
	}
	sortByPoint(n.backSorted)
}

// Point returns the node's segment start.
func (n *Node) Point() interval.Point {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.x
}

// segment returns the node's current segment (callers hold mu).
func (n *Node) segmentLocked() interval.Segment {
	if n.x == n.end {
		return interval.FullCircle
	}
	return interval.Segment{Start: n.x, Len: uint64(n.end - n.x)}
}

// StartFirst bootstraps a one-node network: the node owns the full circle.
func (n *Node) StartFirst(x interval.Point) {
	n.mu.Lock()
	n.x = x
	n.end = x
	self := NodeInfo{ID: n.id, Point: uint64(x), Addr: n.addr}
	n.pred, n.succ = self, self
	n.setBackLocked([]NodeInfo{self})
	n.mu.Unlock()
	n.serve()
}

// StartJoin joins an existing network through the bootstrap address,
// implementing Algorithm Join of §2.1 with the Improved Single Choice ID
// rule of §4: sample a random z, look up its owner, and take the middle of
// that owner's segment.
func (n *Node) StartJoin(bootstrap string, rng *rand.Rand) error {
	z := interval.Point(rng.Uint64())
	owner, err := lookupVia(bootstrap, z)
	if err != nil {
		return err
	}
	mid := interval.Point(owner.Point) + interval.Point(uint64(owner.End-owner.Point)/2)
	if uint64(mid) == owner.Point { // degenerate tiny segment; fall back
		mid = interval.Point(rng.Uint64())
		owner, err = lookupVia(bootstrap, mid)
		if err != nil {
			return err
		}
	}
	// Ask the owner to split its segment at mid.
	resp, err := call(owner.Addr, request{Op: opJoin, NewPoint: uint64(mid), NewAddr: n.addr, NewID: n.id})
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.x = mid
	n.end = interval.Point(resp.End)
	n.pred = NodeInfo{ID: resp.ID, Point: resp.Point, Addr: resp.Addr}
	n.succ = NodeInfo{ID: resp.SuccID, Point: resp.End, Addr: resp.SuccAddr}
	if resp.SuccAddr == "" { // two-node network: owner is also successor
		n.succ = NodeInfo{ID: resp.ID, Point: resp.Point, Addr: resp.Addr}
	}
	for k, v := range resp.Items {
		if err := n.data.Put(n.hash.Point(k), k, v); err != nil {
			n.mu.Unlock()
			return fmt.Errorf("p2p: store join items: %w", err)
		}
	}
	n.setBackLocked([]NodeInfo{{ID: resp.ID, Point: resp.Point, Addr: resp.Addr}})
	n.mu.Unlock()
	n.serve()
	// Tell the successor its predecessor changed.
	succ := n.succInfo()
	if succ.Addr != n.addr {
		if _, err := call(succ.Addr, request{Op: opSetPred, NewPoint: uint64(mid), NewAddr: n.addr, NewID: n.id}); err != nil {
			return err
		}
	}
	// Incrementally announce the join to the nodes whose backward tables
	// must now contain us: the covers of our segment's forward images.
	// Best-effort — Stabilize repairs anything a lost patch leaves stale.
	n.notifyImageCovers(false)
	return n.Stabilize()
}

func (n *Node) succInfo() NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.succ
}

// serve starts the accept loop.
func (n *Node) serve() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			conn, err := n.ln.Accept()
			if err != nil {
				select {
				case <-n.closed:
					return
				default:
					continue
				}
			}
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				defer conn.Close()
				var req request
				if err := gob.NewDecoder(conn).Decode(&req); err != nil {
					return
				}
				resp := n.handle(req)
				_ = gob.NewEncoder(conn).Encode(resp)
			}()
		}
	}()
}

// Close shuts the node down (without the graceful Leave handoff).
func (n *Node) Close() {
	select {
	case <-n.closed:
		return
	default:
	}
	close(n.closed)
	n.ln.Close()
	n.wg.Wait()
	_ = n.data.Close()
}

// handle dispatches one request.
func (n *Node) handle(req request) response {
	switch req.Op {
	case opState:
		n.mu.Lock()
		defer n.mu.Unlock()
		return response{OK: true, ID: n.id, Point: uint64(n.x), End: uint64(n.end),
			Addr: n.addr, SuccID: n.succ.ID, SuccAddr: n.succ.Addr, PredAddr: n.pred.Addr}
	case opSetPred:
		n.mu.Lock()
		n.pred = NodeInfo{ID: req.NewID, Point: req.NewPoint, Addr: req.NewAddr}
		n.mu.Unlock()
		return response{OK: true}
	case opPatchBack:
		if n.failPatches.Load() > 0 && n.failPatches.Add(-1) >= 0 {
			return response{Err: "injected patch drop"} // test hook: see failPatches
		}
		n.mu.Lock()
		n.patchBackLocked(NodeInfo{ID: req.NewID, Point: req.NewPoint, Addr: req.NewAddr}, req.Remove)
		n.mu.Unlock()
		return response{OK: true}
	case opJoin:
		return n.handleJoin(req)
	case opLeave:
		return n.handleLeave(req)
	case opLookup, opGet, opPut:
		return n.route(req)
	default:
		return response{Err: "unknown op: " + req.Op}
	}
}

// handleJoin splits this node's segment at req.NewPoint, transferring the
// upper part (and its items) to the joiner — Algorithm Join step 3.
func (n *Node) handleJoin(req request) response {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leaving {
		// Our segment and items are mid-handoff to the predecessor: a
		// split now would give the joiner items the predecessor is also
		// absorbing, and ring pointers the opLeave message no longer
		// reflects.
		return response{Err: "node is leaving; retry via another node"}
	}
	p := interval.Point(req.NewPoint)
	if !n.segmentLocked().Contains(p) || p == n.x {
		return response{Err: fmt.Sprintf("join point %v outside segment", p)}
	}
	upper := interval.Segment{Start: p, Len: uint64(n.end - p)}
	if n.x == n.end { // full circle: the joiner takes [p, x)
		upper = interval.Segment{Start: p, Len: uint64(n.x - p)}
	}
	// Drain exactly the handed-off range from the ordered store — the
	// items that stay behind are never touched.
	//
	// Known window (pre-existing in the join protocol, tracked in
	// ROADMAP): the drain happens before the response carrying the items
	// is delivered, so a joiner that dies mid-RPC strands the drained
	// range. Closing it needs a two-phase join handshake; a single
	// request/response cannot sequence "drain after the joiner has the
	// items".
	drained, err := store.Drain(n.data, upper)
	if err != nil {
		return response{Err: fmt.Sprintf("store drain: %v", err)}
	}
	items := make(map[string][]byte, len(drained))
	for _, it := range drained {
		items[it.Key] = it.Value
	}
	resp := response{
		OK: true,
		ID: n.id, Point: uint64(n.x), Addr: n.addr,
		End: uint64(n.end), SuccID: n.succ.ID, SuccAddr: n.succ.Addr,
		Items: items,
	}
	if n.x == n.end { // first split of a singleton network
		resp.End = uint64(n.x)
		resp.SuccID = n.id
		resp.SuccAddr = n.addr
	}
	// The joiner becomes our successor.
	n.end = p
	n.succ = NodeInfo{ID: req.NewID, Point: req.NewPoint, Addr: req.NewAddr}
	return resp
}

// handleLeave absorbs the leaving successor's segment and items (§2.1:
// "the predecessor on the ring enlarges its segment").
func (n *Node) handleLeave(req request) response {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leaving {
		// We are handing our own store off: absorbing the successor's
		// items now would park them in a store about to be drained —
		// they would be in neither snapshot. The leaver aborts and
		// retries once our own leave resolves.
		return response{Err: "node is leaving; retry"}
	}
	// Absorb the items BEFORE committing the ring-pointer change: a store
	// error (the Put is fallible on a disk-backed store) must leave the
	// leaver owning its segment — the aborted leave resumes serving. Items
	// absorbed before a mid-loop failure are orphaned duplicates here
	// (harmless: the leaver still serves the authoritative copies), not
	// losses.
	for k, v := range req.Items {
		if err := n.data.Put(n.hash.Point(k), k, v); err != nil {
			return response{Err: fmt.Sprintf("store absorb: %v", err)}
		}
	}
	n.end = interval.Point(req.Target)                                     // leaver's end
	n.succ = NodeInfo{ID: req.NewID, Point: req.Target, Addr: req.NewAddr} // leaver's successor
	return response{OK: true, Addr: n.addr, Point: uint64(n.x)}
}

// Leave gracefully exits: hand segment and data to the predecessor,
// repoint the successor, and incrementally retract this node from the
// backward tables that reference it.
func (n *Node) Leave() error {
	// Ordering of the handoff, chosen so no crash point loses data:
	//
	//  1. snapshot the items under mu and set `leaving` — later puts/gets
	//     are refused loudly, so the snapshot stays complete;
	//  2. transfer the snapshot to the predecessor and wait for its ack;
	//  3. only then drain the local store (on a WAL store the drain is a
	//     durable tombstone, so it must not happen before the ack: a kill
	//     in between would leave the items nowhere).
	//
	// A crash after the ack but before the drain leaves the items both at
	// the predecessor and in this node's WAL — a restart on the same data
	// directory re-serves stale duplicates, which is recoverable, unlike
	// loss. A failed transfer clears `leaving` and resumes serving; the
	// store was never touched.
	n.mu.Lock()
	if n.leaving {
		n.mu.Unlock()
		return fmt.Errorf("p2p: leave already in progress")
	}
	pred, succ := n.pred, n.succ
	end := n.end
	if pred.Addr == n.addr {
		// Last node: there is nowhere to hand the items — keep the store
		// intact (a WAL store retains them for a future restart) and stop.
		n.mu.Unlock()
		n.Close()
		return nil
	}
	items := make(map[string][]byte, n.data.Len())
	err := n.data.Ascend(interval.FullCircle, func(it store.Item) bool {
		items[it.Key] = it.Value
		return true
	})
	if err != nil {
		n.mu.Unlock()
		return fmt.Errorf("p2p: collect items for leave: %w", err)
	}
	n.leaving = true
	n.mu.Unlock()
	// Tell the covers of our forward images to drop us from their backward
	// tables before the segment moves (with ack + bounded retry; routing
	// falls back to ring hops for any entry a truly lost patch leaves
	// stale, until Stabilize repairs it).
	n.notifyImageCovers(true)
	req := request{Op: opLeave, Target: uint64(end), NewAddr: succ.Addr, NewID: succ.ID, Items: items}
	if _, err := call(pred.Addr, req); err != nil {
		n.mu.Lock()
		n.leaving = false
		n.mu.Unlock()
		return err
	}
	// The leave is committed: the predecessor owns the segment and items.
	// Everything after this point is best-effort cleanup and must not
	// abort the shutdown (aborting would wedge the node: leaving=true
	// refuses all requests and a retried Leave is rejected).
	//
	// Clear our store (no value re-reads — the snapshot already holds
	// them) so a persistent (WAL) store does not replay the handed-off
	// items on a later restart.
	n.mu.Lock()
	cleanupErr := store.Clear(n.data)
	n.mu.Unlock()
	if cleanupErr != nil {
		cleanupErr = fmt.Errorf("p2p: leave handed off, but draining the local store failed (a restart on this data directory will re-serve stale items): %w", cleanupErr)
	}
	if succ.Addr != n.addr {
		// Best-effort: a failure leaves the successor's pred pointer
		// stale, which is only used as a stabilization hint (dials to it
		// fail and are ignored) and is rewritten by the next join in that
		// gap. The handoff is already done either way.
		if _, err := call(succ.Addr, request{Op: opSetPred, NewPoint: pred.Point, NewAddr: pred.Addr, NewID: pred.ID}); err != nil && cleanupErr == nil {
			cleanupErr = fmt.Errorf("p2p: leave handed off, but repointing the successor failed: %w", err)
		}
	}
	n.Close()
	return cleanupErr
}

// Patch delivery policy: every opPatchBack is acknowledged by its RPC
// response, and a failed delivery (transport error or remote refusal) is
// retried up to patchAttempts times with a short backoff — so a single
// dropped patch is repaired in milliseconds instead of waiting out a full
// stabilization interval (seconds). Patches remain an optimization over
// the Stabilize repair loop, never the source of truth for ring pointers.
const (
	patchAttempts   = 3
	patchRetryDelay = 5 * time.Millisecond
)

// sendPatch delivers one acknowledged patch with bounded retry, reporting
// whether any attempt succeeded.
func sendPatch(addr string, req request) bool {
	for attempt := 0; attempt < patchAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(patchRetryDelay)
		}
		if _, err := call(addr, req); err == nil {
			return true
		}
	}
	return false
}

// notifyImageCovers sends an incremental backward-table patch (add, or
// remove when leaving) for this node to every node whose segment
// intersects one of the ∆ = 2 forward images of our segment — exactly the
// nodes whose backward image covers part of our segment, i.e. whose `back`
// table must list us. O(ρ) recipients by Theorem 2.2.
func (n *Node) notifyImageCovers(remove bool) {
	n.mu.Lock()
	seg := n.segmentLocked()
	self := request{Op: opPatchBack, NewID: n.id, NewPoint: uint64(n.x), NewAddr: n.addr, Remove: remove}
	n.mu.Unlock()
	for _, img := range []interval.Segment{seg.Half(), seg.HalfPlus()} {
		covers, err := n.coversOfArc(img)
		if err != nil {
			continue
		}
		for _, c := range covers {
			if c.Addr == n.addr {
				continue
			}
			sendPatch(c.Addr, self)
		}
	}
}
