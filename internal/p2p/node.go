package p2p

import (
	"encoding/gob"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"

	"condisc/internal/hashing"
	"condisc/internal/interval"
)

// NodeInfo is a routing-table entry: a node's stable identifier, segment
// start, and address. The ID plays the role partition.Handle plays in the
// simulator: it names the same node across arbitrary churn, so neighbour
// tables keyed by it can be patched entry-by-entry by join/leave messages
// instead of being rebuilt.
type NodeInfo struct {
	ID    uint64
	Point uint64
	Addr  string
}

// Node is one Distance Halving DHT server.
type Node struct {
	id   uint64 // stable identifier, fixed for the node's lifetime
	addr string
	ln   net.Listener
	hash *hashing.Func

	mu   sync.Mutex
	x    interval.Point // own segment start (fixed for the node's lifetime)
	end  interval.Point // segment end = successor's point
	pred NodeInfo
	succ NodeInfo
	// back holds the covers of the backward image b(s) — the neighbours
	// Fast Lookup hops through — keyed by stable node ID. Entries are
	// patched incrementally by opPatchBack messages when a neighbour joins
	// or leaves, and refreshed wholesale by Stabilize. backSorted is the
	// Point-sorted view the routing hot path binary-searches; it is
	// re-derived whenever back changes (the table has O(ρ·∆) entries).
	back       map[uint64]NodeInfo
	backSorted []NodeInfo
	data       map[string][]byte

	closed  chan struct{}
	wg      sync.WaitGroup
	started bool
}

// NewNode creates a node listening on addr ("127.0.0.1:0" for an ephemeral
// port). seed derives the shared item-hash function: all nodes of a cluster
// must use the same seed. The node's stable ID is derived from the seed and
// the bound address, so it is reproducible for a fixed deployment.
func NewNode(addr string, seed uint64) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("p2p: listen: %w", err)
	}
	bound := ln.Addr().String()
	n := &Node{
		id:     nodeID(seed, bound),
		addr:   bound,
		ln:     ln,
		hash:   hashing.NewKWise(8, rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))),
		data:   make(map[string][]byte),
		closed: make(chan struct{}),
	}
	return n, nil
}

// nodeID derives a stable identifier from the cluster seed and the node's
// bound address (FNV-1a, seed-mixed).
func nodeID(seed uint64, addr string) uint64 {
	h := uint64(14695981039346656037) ^ seed
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return h
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.addr }

// ID returns the node's stable identifier.
func (n *Node) ID() uint64 { return n.id }

// setBackLocked replaces the whole backward table (mu held).
func (n *Node) setBackLocked(entries []NodeInfo) {
	n.back = make(map[uint64]NodeInfo, len(entries))
	for _, e := range entries {
		n.back[e.ID] = e
	}
	n.rebuildBackSortedLocked()
}

// patchBackLocked adds or removes one backward-table entry by stable ID
// (mu held) — the incremental churn message the simulator's handle-keyed
// adjacency lists correspond to on the wire.
func (n *Node) patchBackLocked(e NodeInfo, remove bool) {
	if remove {
		delete(n.back, e.ID)
	} else {
		n.back[e.ID] = e
	}
	n.rebuildBackSortedLocked()
}

func (n *Node) rebuildBackSortedLocked() {
	n.backSorted = n.backSorted[:0]
	for _, e := range n.back {
		n.backSorted = append(n.backSorted, e)
	}
	sortByPoint(n.backSorted)
}

// Point returns the node's segment start.
func (n *Node) Point() interval.Point {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.x
}

// segment returns the node's current segment (callers hold mu).
func (n *Node) segmentLocked() interval.Segment {
	if n.x == n.end {
		return interval.FullCircle
	}
	return interval.Segment{Start: n.x, Len: uint64(n.end - n.x)}
}

// StartFirst bootstraps a one-node network: the node owns the full circle.
func (n *Node) StartFirst(x interval.Point) {
	n.mu.Lock()
	n.x = x
	n.end = x
	self := NodeInfo{ID: n.id, Point: uint64(x), Addr: n.addr}
	n.pred, n.succ = self, self
	n.setBackLocked([]NodeInfo{self})
	n.mu.Unlock()
	n.serve()
}

// StartJoin joins an existing network through the bootstrap address,
// implementing Algorithm Join of §2.1 with the Improved Single Choice ID
// rule of §4: sample a random z, look up its owner, and take the middle of
// that owner's segment.
func (n *Node) StartJoin(bootstrap string, rng *rand.Rand) error {
	z := interval.Point(rng.Uint64())
	owner, err := lookupVia(bootstrap, z)
	if err != nil {
		return err
	}
	mid := interval.Point(owner.Point) + interval.Point(uint64(owner.End-owner.Point)/2)
	if uint64(mid) == owner.Point { // degenerate tiny segment; fall back
		mid = interval.Point(rng.Uint64())
		owner, err = lookupVia(bootstrap, mid)
		if err != nil {
			return err
		}
	}
	// Ask the owner to split its segment at mid.
	resp, err := call(owner.Addr, request{Op: opJoin, NewPoint: uint64(mid), NewAddr: n.addr, NewID: n.id})
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.x = mid
	n.end = interval.Point(resp.End)
	n.pred = NodeInfo{ID: resp.ID, Point: resp.Point, Addr: resp.Addr}
	n.succ = NodeInfo{ID: resp.SuccID, Point: resp.End, Addr: resp.SuccAddr}
	if resp.SuccAddr == "" { // two-node network: owner is also successor
		n.succ = NodeInfo{ID: resp.ID, Point: resp.Point, Addr: resp.Addr}
	}
	for k, v := range resp.Items {
		n.data[k] = v
	}
	n.setBackLocked([]NodeInfo{{ID: resp.ID, Point: resp.Point, Addr: resp.Addr}})
	n.mu.Unlock()
	n.serve()
	// Tell the successor its predecessor changed.
	succ := n.succInfo()
	if succ.Addr != n.addr {
		if _, err := call(succ.Addr, request{Op: opSetPred, NewPoint: uint64(mid), NewAddr: n.addr, NewID: n.id}); err != nil {
			return err
		}
	}
	// Incrementally announce the join to the nodes whose backward tables
	// must now contain us: the covers of our segment's forward images.
	// Best-effort — Stabilize repairs anything a lost patch leaves stale.
	n.notifyImageCovers(false)
	return n.Stabilize()
}

func (n *Node) succInfo() NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.succ
}

// serve starts the accept loop.
func (n *Node) serve() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			conn, err := n.ln.Accept()
			if err != nil {
				select {
				case <-n.closed:
					return
				default:
					continue
				}
			}
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				defer conn.Close()
				var req request
				if err := gob.NewDecoder(conn).Decode(&req); err != nil {
					return
				}
				resp := n.handle(req)
				_ = gob.NewEncoder(conn).Encode(resp)
			}()
		}
	}()
}

// Close shuts the node down (without the graceful Leave handoff).
func (n *Node) Close() {
	select {
	case <-n.closed:
		return
	default:
	}
	close(n.closed)
	n.ln.Close()
	n.wg.Wait()
}

// handle dispatches one request.
func (n *Node) handle(req request) response {
	switch req.Op {
	case opState:
		n.mu.Lock()
		defer n.mu.Unlock()
		return response{OK: true, ID: n.id, Point: uint64(n.x), End: uint64(n.end),
			Addr: n.addr, SuccID: n.succ.ID, SuccAddr: n.succ.Addr, PredAddr: n.pred.Addr}
	case opSetPred:
		n.mu.Lock()
		n.pred = NodeInfo{ID: req.NewID, Point: req.NewPoint, Addr: req.NewAddr}
		n.mu.Unlock()
		return response{OK: true}
	case opPatchBack:
		n.mu.Lock()
		n.patchBackLocked(NodeInfo{ID: req.NewID, Point: req.NewPoint, Addr: req.NewAddr}, req.Remove)
		n.mu.Unlock()
		return response{OK: true}
	case opJoin:
		return n.handleJoin(req)
	case opLeave:
		return n.handleLeave(req)
	case opLookup, opGet, opPut:
		return n.route(req)
	default:
		return response{Err: "unknown op: " + req.Op}
	}
}

// handleJoin splits this node's segment at req.NewPoint, transferring the
// upper part (and its items) to the joiner — Algorithm Join step 3.
func (n *Node) handleJoin(req request) response {
	n.mu.Lock()
	defer n.mu.Unlock()
	p := interval.Point(req.NewPoint)
	if !n.segmentLocked().Contains(p) || p == n.x {
		return response{Err: fmt.Sprintf("join point %v outside segment", p)}
	}
	items := make(map[string][]byte)
	upper := interval.Segment{Start: p, Len: uint64(n.end - p)}
	if n.x == n.end { // full circle: the joiner takes [p, x)
		upper = interval.Segment{Start: p, Len: uint64(n.x - p)}
	}
	for k, v := range n.data {
		if upper.Contains(n.hash.Point(k)) {
			items[k] = v
			delete(n.data, k)
		}
	}
	resp := response{
		OK: true,
		ID: n.id, Point: uint64(n.x), Addr: n.addr,
		End: uint64(n.end), SuccID: n.succ.ID, SuccAddr: n.succ.Addr,
		Items: items,
	}
	if n.x == n.end { // first split of a singleton network
		resp.End = uint64(n.x)
		resp.SuccID = n.id
		resp.SuccAddr = n.addr
	}
	// The joiner becomes our successor.
	n.end = p
	n.succ = NodeInfo{ID: req.NewID, Point: req.NewPoint, Addr: req.NewAddr}
	return resp
}

// handleLeave absorbs the leaving successor's segment and items (§2.1:
// "the predecessor on the ring enlarges its segment").
func (n *Node) handleLeave(req request) response {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.end = interval.Point(req.Target)                                     // leaver's end
	n.succ = NodeInfo{ID: req.NewID, Point: req.Target, Addr: req.NewAddr} // leaver's successor
	for k, v := range req.Items {
		n.data[k] = v
	}
	return response{OK: true, Addr: n.addr, Point: uint64(n.x)}
}

// Leave gracefully exits: hand segment and data to the predecessor,
// repoint the successor, and incrementally retract this node from the
// backward tables that reference it.
func (n *Node) Leave() error {
	n.mu.Lock()
	pred, succ := n.pred, n.succ
	items := n.data
	end := n.end
	n.mu.Unlock()
	if pred.Addr == n.addr {
		n.Close()
		return nil // last node
	}
	// Tell the covers of our forward images to drop us from their backward
	// tables before the segment moves (best-effort; routing falls back to
	// ring hops for any entry a lost patch leaves stale).
	n.notifyImageCovers(true)
	req := request{Op: opLeave, Target: uint64(end), NewAddr: succ.Addr, NewID: succ.ID, Items: items}
	if _, err := call(pred.Addr, req); err != nil {
		return err
	}
	if succ.Addr != n.addr {
		if _, err := call(succ.Addr, request{Op: opSetPred, NewPoint: pred.Point, NewAddr: pred.Addr, NewID: pred.ID}); err != nil {
			return err
		}
	}
	n.Close()
	return nil
}

// notifyImageCovers sends an incremental backward-table patch (add, or
// remove when leaving) for this node to every node whose segment
// intersects one of the ∆ = 2 forward images of our segment — exactly the
// nodes whose backward image covers part of our segment, i.e. whose `back`
// table must list us. O(ρ) recipients by Theorem 2.2. Errors are ignored:
// patches are an optimization over the Stabilize repair loop, never the
// source of truth for ring pointers.
func (n *Node) notifyImageCovers(remove bool) {
	n.mu.Lock()
	seg := n.segmentLocked()
	self := request{Op: opPatchBack, NewID: n.id, NewPoint: uint64(n.x), NewAddr: n.addr, Remove: remove}
	n.mu.Unlock()
	for _, img := range []interval.Segment{seg.Half(), seg.HalfPlus()} {
		covers, err := n.coversOfArc(img)
		if err != nil {
			continue
		}
		for _, c := range covers {
			if c.Addr == n.addr {
				continue
			}
			_, _ = call(c.Addr, self)
		}
	}
}
