package p2p

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"condisc/internal/interval"
	"condisc/internal/store"
)

// TestLogBackedNodeSurvivesRestart: a node backed by the WAL engine serves
// its items again after a stop/restart on the same data directory — the
// durability story the -store=log flag of cmd/dhnode exposes.
func TestLogBackedNodeSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *Node {
		st, err := store.OpenLog(dir, store.LogOptions{})
		if err != nil {
			t.Fatal(err)
		}
		n, err := NewNode("127.0.0.1:0", 77, WithStore(st))
		if err != nil {
			t.Fatal(err)
		}
		n.StartFirst(interval.Point(12345))
		return n
	}
	n := open()
	cl := &Client{Bootstrap: n.Addr()}
	for i := 0; i < 40; i++ {
		if _, err := cl.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)), n.HashFunc()); err != nil {
			t.Fatal(err)
		}
	}
	n.Close() // hard stop, no Leave: items must stay on disk

	r := open()
	defer r.Close()
	if got := r.NumItems(); got != 40 {
		t.Fatalf("restarted node recovered %d items, want 40", got)
	}
	cl = &Client{Bootstrap: r.Addr()}
	for i := 0; i < 40; i++ {
		v, _, err := cl.Get(fmt.Sprintf("k%d", i), r.HashFunc())
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d after restart: %q %v", i, v, err)
		}
	}
}

// TestLeaveDrainsPersistentStore: a graceful Leave hands the items to the
// predecessor AND drains the local WAL, so a later restart on the same
// directory does not resurrect them.
func TestLeaveDrainsPersistentStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenLog(dir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartCluster(2, 88)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	leaver, err := NewNode("127.0.0.1:0", 88, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if err := leaver.StartJoin(c.Nodes[0].Addr(), rand.New(rand.NewPCG(89, 89))); err != nil {
		t.Fatal(err)
	}
	cl := &Client{Bootstrap: leaver.Addr()}
	for i := 0; i < 30; i++ {
		if _, err := cl.Put(fmt.Sprintf("k%d", i), []byte("v"), c.Hash()); err != nil {
			t.Fatal(err)
		}
	}
	if err := leaver.Leave(); err != nil {
		t.Fatal(err)
	}
	// Every item is still served by the survivors...
	cl = &Client{Bootstrap: c.Nodes[0].Addr()}
	for i := 0; i < 30; i++ {
		if _, _, err := cl.Get(fmt.Sprintf("k%d", i), c.Hash()); err != nil {
			t.Fatalf("k%d lost after leave: %v", i, err)
		}
	}
	// ...and the leaver's WAL is empty on reopen.
	r, err := store.OpenLog(dir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.Len(); n != 0 {
		t.Fatalf("leaver's WAL replayed %d handed-off items", n)
	}
}
