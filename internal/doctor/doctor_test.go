package doctor

import (
	"math"
	"testing"
)

func TestDiagnoseHealthy(t *testing.T) {
	// A near-uniform 64-segment decomposition with sane degree, hops,
	// and loads must pass every invariant.
	cs := ClusterStats{N: 64, Delta: 2, MaxDeg: 9, HopP99: 8}
	unit := uint64(1) << 58 // 64 segments of 2^58 = full circle
	for i := 0; i < 64; i++ {
		l := unit
		if i%2 == 0 {
			l += unit / 4 // mild non-uniformity, ratio 1.25
		} else {
			l -= unit / 4
		}
		cs.SegLens = append(cs.SegLens, l)
		cs.Loads = append(cs.Loads, float64(5+i%3))
	}
	r := Diagnose(cs)
	if !r.Healthy {
		t.Fatalf("healthy cluster diagnosed sick: %+v", r.Breached())
	}
	if len(r.Verdicts) != 4 {
		t.Fatalf("got %d verdicts, want 4", len(r.Verdicts))
	}
	for _, v := range r.Verdicts {
		if v.Margin < 0 {
			t.Fatalf("%s: negative margin %f on a passing verdict", v.Invariant, v.Margin)
		}
	}
}

func TestDiagnoseSmoothnessBreach(t *testing.T) {
	// One segment spanning 1000 fair shares next to a tiny one: the
	// adversarial predecessor-absorb shape.
	cs := ClusterStats{N: 100, Delta: 2, MaxDeg: 9, HopP99: 8}
	cs.SegLens = []uint64{1 << 20, 1 << 40} // ratio 2^20
	r := Diagnose(cs)
	if r.Healthy {
		t.Fatal("smoothness breach not flagged")
	}
	v, ok := r.Find(InvSmoothness)
	if !ok || v.OK {
		t.Fatalf("smoothness verdict = %+v, want breach", v)
	}
	if v.Margin >= 0 {
		t.Fatalf("breached verdict has non-negative margin %f", v.Margin)
	}
	// Other invariants unaffected.
	if d, _ := r.Find(InvDegree); !d.OK {
		t.Fatal("degree flagged spuriously")
	}
}

func TestDiagnoseZeroSegment(t *testing.T) {
	cs := ClusterStats{N: 3, Delta: 2, SegLens: []uint64{0, 1 << 60}, HopP99: -1}
	r := Diagnose(cs)
	v, _ := r.Find(InvSmoothness)
	if v.OK || !math.IsInf(v.Value, 1) {
		t.Fatalf("zero-length segment not flagged: %+v", v)
	}
}

func TestDiagnoseSkips(t *testing.T) {
	r := Diagnose(ClusterStats{N: 1, Delta: 2, HopP99: -1})
	if !r.Healthy {
		t.Fatalf("all-skip report should be healthy: %+v", r.Breached())
	}
	for _, name := range []string{InvSmoothness, InvDegree, InvHopP99, InvLoadSkew} {
		v, ok := r.Find(name)
		if !ok {
			t.Fatalf("verdict %s missing", name)
		}
		if !v.OK || v.Detail == "" {
			t.Fatalf("skipped verdict %s should be OK with detail: %+v", name, v)
		}
	}
}

func TestDiagnoseLoadSkewBreach(t *testing.T) {
	cs := ClusterStats{N: 64, Delta: 2, HopP99: -1}
	unit := uint64(1) << 58
	for i := 0; i < 64; i++ {
		cs.SegLens = append(cs.SegLens, unit)
		cs.Loads = append(cs.Loads, 1)
	}
	cs.Loads[0] = 10000 // one server soaks the traffic
	r := Diagnose(cs)
	v, _ := r.Find(InvLoadSkew)
	if v.OK {
		t.Fatalf("load skew %f under limit %f not flagged", v.Value, v.Limit)
	}
}

func TestDiagnoseNode(t *testing.T) {
	// Healthy node: segment ≈ 1/64 of the circle, balanced predecessor.
	seg := uint64(1) << 58
	r := DiagnoseNode(NodeStats{SegLen: seg, PredLen: seg + seg/4, Degree: 7, Delta: 2, HopP99: 5})
	if !r.Healthy {
		t.Fatalf("healthy node diagnosed sick: %+v", r.Breached())
	}
	hop, _ := r.Find(InvHopP99)
	// n̂ = 2^64 / 2^58 = 64 → limit 4·log2(64)+8 = 32.
	if hop.Limit != 32 {
		t.Fatalf("hop limit = %f, want 32 (n̂ = 64)", hop.Limit)
	}

	// Absorb pile-up: own segment 2^16 times the predecessor's.
	r = DiagnoseNode(NodeStats{SegLen: 1 << 50, PredLen: 1 << 34, Degree: 7, Delta: 2, HopP99: -1})
	if r.Healthy {
		t.Fatal("local balance breach not flagged")
	}
	v, _ := r.Find(InvLocalBalance)
	if v.OK || v.Value != float64(uint64(1)<<16) {
		t.Fatalf("local balance verdict = %+v", v)
	}

	// Singleton: everything skips, report healthy.
	r = DiagnoseNode(NodeStats{SegLen: 0, Degree: 2, Delta: 2, HopP99: -1})
	if !r.Healthy {
		t.Fatalf("singleton node diagnosed sick: %+v", r.Breached())
	}
}

func TestEstimateN(t *testing.T) {
	if n := EstimateN(0); n != 1 {
		t.Fatalf("EstimateN(0) = %f, want 1 (full circle)", n)
	}
	if n := EstimateN(1 << 54); n != 1024 {
		t.Fatalf("EstimateN(2^54) = %f, want 1024", n)
	}
}

func TestTableRenders(t *testing.T) {
	r := Diagnose(ClusterStats{N: 4, Delta: 2, SegLens: []uint64{1, 1 << 40}, HopP99: -1})
	s := Table(r)
	if len(s) == 0 {
		t.Fatal("empty table")
	}
	for _, want := range []string{"invariant", "smoothness", "BREACH"} {
		found := false
		for i := 0; i+len(want) <= len(s); i++ {
			if s[i:i+len(want)] == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}
