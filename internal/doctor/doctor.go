// Package doctor is the live invariant checker: it recomputes the
// paper's load-bearing bounds from running state and renders a verdict
// per invariant, with the margin left before (or the overshoot past)
// the bound. The /doctorz admin endpoint serves a per-node Report,
// /healthz degrades when any verdict is breached, and `dhctl doctor`
// aggregates a cluster-wide Report from every node's scraped state.
//
// The bounds checked, and the paper results they concretise:
//
//   - smoothness — Definition 1's ratio max|s| / min|s| over the
//     segment decomposition. The Multiple Choice join rule keeps it
//     within a [1/2^O(1), 2^O(1)] band of 1/n; SmoothnessLimit is that
//     band made concrete. Predecessor-absorb Leave (§2.1) can breach it
//     under adversarial traces — exactly the drift E33 demonstrates and
//     the ROADMAP's smoothness-preserving-Leave item will fix.
//   - degree — Theorem 2.2: in/out-degree O(ρ·∆). With Multiple Choice
//     smoothness ρ = O(1), so node degree is O(∆); DegreeLimit(∆) is
//     the concrete ceiling. A smoothness breach drags this bound down
//     with it: a segment spanning k fair shares images onto ~k·∆
//     segments.
//   - hop p99 — Theorem 2.8 / Corollary 2.5: lookup dilation O(log n)
//     (log_∆ n + O(1) on the fast path). HopLimit(∆, n) allows the
//     additive constant.
//   - load skew — Theorem 2.7: with n servers and n lookups between
//     random pairs, the busiest server routes O(log n) messages while
//     the mean is Θ(1), so max/mean routed load stays O(log n);
//     SkewLimit(n) is that ratio made concrete.
//
// All checks are pure functions of explicitly passed state (segment
// lengths, degree views, hop/load samples) so the simulator, a live
// p2p node, and the dhctl aggregator share one implementation, and
// tests can drive them with synthetic inputs. Sample statistics reuse
// internal/metrics.
package doctor

import (
	"fmt"
	"math"

	"condisc/internal/metrics"
)

// Invariant names, shared by /doctorz JSON, dhctl output, and tests.
const (
	InvSmoothness   = "smoothness"
	InvDegree       = "degree"
	InvHopP99       = "hop_p99"
	InvLoadSkew     = "load_skew"
	InvLocalBalance = "local_balance"
	InvReplication  = "replication"
)

// Verdict is the outcome of one invariant check. Margin is the
// fraction of headroom left under the limit: (Limit-Value)/Limit,
// negative when breached. Skipped verdicts (no data yet) are OK with a
// Detail explaining why.
type Verdict struct {
	Invariant string  `json:"invariant"`
	Bound     string  `json:"bound"`
	Value     float64 `json:"value"`
	Limit     float64 `json:"limit"`
	Margin    float64 `json:"margin"`
	OK        bool    `json:"ok"`
	Detail    string  `json:"detail,omitempty"`
}

// Report is a set of verdicts; Healthy is the conjunction.
type Report struct {
	Verdicts []Verdict `json:"verdicts"`
	Healthy  bool      `json:"healthy"`
}

// Breached lists the names of the breached invariants.
func (r Report) Breached() []string {
	var out []string
	for _, v := range r.Verdicts {
		if !v.OK {
			out = append(out, v.Invariant)
		}
	}
	return out
}

// Find returns the verdict for an invariant name, if present.
func (r Report) Find(name string) (Verdict, bool) {
	for _, v := range r.Verdicts {
		if v.Invariant == name {
			return v, true
		}
	}
	return Verdict{}, false
}

func verdict(name, bound string, value, limit float64, detail string) Verdict {
	m := 0.0
	if limit > 0 {
		m = (limit - value) / limit
	}
	return Verdict{
		Invariant: name, Bound: bound, Value: value, Limit: limit,
		Margin: m, OK: value <= limit, Detail: detail,
	}
}

func skipped(name, bound, why string) Verdict {
	return Verdict{Invariant: name, Bound: bound, OK: true, Detail: "skipped: " + why}
}

func finish(verdicts []Verdict) Report {
	r := Report{Verdicts: verdicts, Healthy: true}
	for _, v := range verdicts {
		if !v.OK {
			r.Healthy = false
		}
	}
	return r
}

// log2 of n, floored at 1 so tiny rings don't produce degenerate limits.
func log2(n float64) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(n)
}

// SmoothnessLimit is the concrete 2^O(1) band for the max/min segment
// ratio: 64 (= 2^6) once the ring is large enough for the Multiple
// Choice concentration to bite, with a laxer small-ring grace of 1024 —
// below ~16 servers the decomposition is a handful of near-random
// splits and the asymptotic constant story does not apply.
func SmoothnessLimit(n int) float64 {
	if n < 16 {
		return 1024
	}
	return 64
}

// DegreeLimit is the concrete Theorem 2.2 ceiling O(ρ·∆) with the
// Multiple Choice ρ = O(1): 32 edges per unit of ∆.
func DegreeLimit(delta uint64) float64 {
	if delta < 1 {
		delta = 1
	}
	return 32 * float64(delta)
}

// HopLimit is the concrete Theorem 2.8 dilation bound: 4·log_∆ n plus an
// additive constant of 8. One factor of 2 is the descent+ascent
// structure of the DH route (the observed mean is ≈ 2·log₂ n, e.g. 11.9
// at n=256); the other covers the telemetry histogram's power-of-two
// bucket rounding — a p99 is reported as its bucket's upper bound 2^k−1,
// up to twice the true value. The +8 covers the end-game hops
// (Corollary 2.5's O(1) tail). Still O(log n) — a breach means routing
// genuinely degenerated, not that a bucket boundary was grazed.
func HopLimit(delta uint64, n float64) float64 {
	if delta < 2 {
		delta = 2
	}
	return 4*log2(n)/math.Log2(float64(delta)) + 8
}

// SkewLimit is the concrete Theorem 2.7 congestion bound on max/mean
// routed load: 2·log2(n) + 2, floored at 4 for tiny rings where a
// single routed message already skews a 3-sample mean.
func SkewLimit(n float64) float64 {
	return math.Max(4, 2*log2(n)+2)
}

// LocalBalanceLimit bounds the per-node own-vs-predecessor segment
// ratio. It is deliberately loose (2^12): with only two local samples
// the global smoothness constant does not transfer, so this check only
// fires on the astronomic imbalance a predecessor-absorb pile-up
// leaves behind, never on an honest random split.
func LocalBalanceLimit() float64 { return 4096 }

// ClusterStats is the input to the cluster-wide Diagnose: the full
// segment decomposition plus whole-ring degree, hop, and load views.
// Zero-valued / empty fields mark data that is not available; the
// corresponding check is skipped rather than guessed.
type ClusterStats struct {
	N       int       // servers in the ring
	Delta   uint64    // the graph degree parameter ∆
	SegLens []uint64  // every segment length (fixed-point units)
	MaxDeg  int       // max routing-table degree over all nodes (0 = unknown)
	HopP99  float64   // p99 observed lookup hops (<0 = no data)
	Loads   []float64 // per-node routed-message loads (empty = no data)
}

// Diagnose recomputes every cluster-wide bound from the stats.
func Diagnose(cs ClusterStats) Report {
	var out []Verdict

	// Smoothness (Definition 1) from the full decomposition.
	smoothBound := "Def. 1 + §4: max|s|/min|s| within 2^O(1)"
	if len(cs.SegLens) < 2 {
		out = append(out, skipped(InvSmoothness, smoothBound, "fewer than 2 segments"))
	} else {
		lo, hi := cs.SegLens[0], cs.SegLens[0]
		for _, l := range cs.SegLens[1:] {
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
		if lo == 0 {
			out = append(out, verdict(InvSmoothness, smoothBound, math.Inf(1),
				SmoothnessLimit(cs.N), "a segment has zero length"))
		} else {
			out = append(out, verdict(InvSmoothness, smoothBound,
				float64(hi)/float64(lo), SmoothnessLimit(cs.N), ""))
		}
	}

	// Degree (Theorem 2.2).
	degBound := "Thm 2.2: degree O(ρ·∆)"
	if cs.MaxDeg <= 0 {
		out = append(out, skipped(InvDegree, degBound, "no degree view"))
	} else {
		out = append(out, verdict(InvDegree, degBound, float64(cs.MaxDeg), DegreeLimit(cs.Delta), ""))
	}

	// Lookup dilation (Theorem 2.8 / Corollary 2.5).
	hopBound := "Thm 2.8: lookup dilation O(log n)"
	if cs.HopP99 < 0 {
		out = append(out, skipped(InvHopP99, hopBound, "no lookups observed"))
	} else {
		out = append(out, verdict(InvHopP99, hopBound, cs.HopP99,
			HopLimit(cs.Delta, float64(cs.N)), ""))
	}

	// Routed-load skew (Theorem 2.7).
	skewBound := "Thm 2.7: max/mean routed load O(log n)"
	var h metrics.Histogram
	for _, l := range cs.Loads {
		h.Add(l)
	}
	if h.N() == 0 || h.Mean() == 0 {
		out = append(out, skipped(InvLoadSkew, skewBound, "no routed load observed"))
	} else {
		out = append(out, verdict(InvLoadSkew, skewBound, h.Max()/h.Mean(),
			SkewLimit(float64(cs.N)), fmt.Sprintf("max %.0f over mean %.1f", h.Max(), h.Mean())))
	}

	return finish(out)
}

// NodeStats is the input to the per-node DiagnoseNode: what one p2p
// node can see of itself without any cluster-wide view.
type NodeStats struct {
	SegLen  uint64  // own segment length (0 = owns the full circle)
	PredLen uint64  // predecessor's segment length (0 = unknown)
	Degree  int     // routing-table size incl. ring pointers
	Delta   uint64  // the graph degree parameter ∆
	HopP99  float64 // p99 hops of lookups this node initiated (<0 = none)
	// Replication-factor view (all zero when replication is off):
	// ReplDesired is the successor-chain length the policy wants (K−1,
	// capped by the ring size), ReplLive the entries currently believed
	// alive by the failure detector, ReplPending the outstanding crash
	// repairs. The invariant holds iff Desired − Live + Pending == 0 —
	// i.e. every replica target is reachable and no absorbed range is
	// still waiting for its items to be re-materialized.
	ReplDesired int
	ReplLive    int
	ReplPending int
}

// EstimateN is the paper's §3 network-size estimator: a segment of
// length ℓ in a ρ-smooth decomposition implies n ≈ 1/ℓ within a
// constant factor (here in 2^64 fixed-point units). SegLen 0 means the
// full circle: a singleton ring.
func EstimateN(segLen uint64) float64 {
	if segLen == 0 {
		return 1
	}
	return math.Exp2(64) / float64(segLen)
}

// DiagnoseNode checks the bounds one node can verify locally. The
// network size is the §3 segment-length estimate, so the hop limit
// self-scales without any global view.
func DiagnoseNode(ns NodeStats) Report {
	var out []Verdict
	nEst := EstimateN(ns.SegLen)

	degBound := "Thm 2.2: degree O(ρ·∆)"
	if ns.Degree <= 0 {
		out = append(out, skipped(InvDegree, degBound, "no routing table yet"))
	} else {
		out = append(out, verdict(InvDegree, degBound, float64(ns.Degree), DegreeLimit(ns.Delta), ""))
	}

	hopBound := "Thm 2.8: lookup dilation O(log n̂)"
	if ns.HopP99 < 0 {
		out = append(out, skipped(InvHopP99, hopBound, "no lookups observed"))
	} else {
		out = append(out, verdict(InvHopP99, hopBound, ns.HopP99,
			HopLimit(ns.Delta, nEst), fmt.Sprintf("n̂ ≈ %.0f from own segment", nEst)))
	}

	balBound := "Def. 1 (local proxy): own vs predecessor segment"
	if ns.SegLen == 0 || ns.PredLen == 0 {
		out = append(out, skipped(InvLocalBalance, balBound, "no two-segment neighbourhood"))
	} else {
		a, b := float64(ns.SegLen), float64(ns.PredLen)
		ratio := a / b
		if b > a {
			ratio = b / a
		}
		out = append(out, verdict(InvLocalBalance, balBound, ratio, LocalBalanceLimit(), ""))
	}

	replBound := "replication factor: every value on K live nodes"
	if ns.ReplDesired <= 0 {
		out = append(out, skipped(InvReplication, replBound, "replication disabled"))
	} else {
		missing := float64(ns.ReplDesired-ns.ReplLive) + float64(ns.ReplPending)
		detail := fmt.Sprintf("%d of %d replica targets live, %d repairs pending",
			ns.ReplLive, ns.ReplDesired, ns.ReplPending)
		out = append(out, verdict(InvReplication, replBound, missing, 0, detail))
	}

	return finish(out)
}

// Table renders a report as an aligned text table (dhctl doctor, E33).
func Table(r Report) string {
	t := metrics.NewTable("invariant", "value", "limit", "margin", "ok", "detail")
	for _, v := range r.Verdicts {
		ok := "pass"
		if !v.OK {
			ok = "BREACH"
		}
		t.AddRow(v.Invariant, v.Value, v.Limit, v.Margin, ok, v.Detail)
	}
	return t.String()
}
