// Package erasure implements the storage extension §6.2 of the paper calls
// for: "storing the data using an erasure correcting code ... and thus
// avoid the need for replication", citing digital fountains (Byers et al.)
// and the replication-vs-coding comparison of Weatherspoon & Kubiatowicz.
//
// The code is a classical systematic Reed–Solomon over GF(2⁸) in the
// evaluation view: the k data shards are the values of a degree-(k-1)
// polynomial at points 0..k-1 and the parity shards its values at points
// k..m-1; any k of the m shards reconstruct the data by Lagrange
// interpolation. In the overlapping DHT every data item is covered by
// Θ(log n) servers that form a clique (§6.2), so fragments can be spread
// across the covers and "the data stored by any small subset of the
// servers suffices to reconstruct the data item".
package erasure

// GF(2^8) arithmetic with the AES/QR-code polynomial x^8+x^4+x^3+x^2+1
// (0x11d), via log/exp tables built at init.
var (
	gfExp [512]byte
	gfLog [256]int
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies in GF(2^8).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

// gfDiv divides in GF(2^8); b must be nonzero.
func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	if b == 0 {
		panic("erasure: division by zero in GF(256)")
	}
	return gfExp[gfLog[a]+255-gfLog[b]]
}

// gfInv inverts a nonzero element.
func gfInv(a byte) byte { return gfDiv(1, a) }
