package erasure

import (
	"fmt"
	"hash/crc32"
)

// Code is a systematic Reed–Solomon erasure code: K data shards, M total
// shards (M-K parity), any K of which reconstruct the data. Requires
// 1 <= K <= M <= 256.
type Code struct {
	K, M int
}

// NewCode validates the parameters.
func NewCode(k, m int) (*Code, error) {
	if k < 1 || m < k || m > 256 {
		return nil, fmt.Errorf("erasure: invalid code (k=%d, m=%d); need 1 <= k <= m <= 256", k, m)
	}
	return &Code{K: k, M: m}, nil
}

// Overhead returns the storage blow-up factor M/K.
func (c *Code) Overhead() float64 { return float64(c.M) / float64(c.K) }

// lagrangeCoeffs returns the coefficients l_i such that a polynomial of
// degree < len(xs) with values vals[i] at points xs[i] evaluates at point
// target as Σ l_i · vals[i].
func lagrangeCoeffs(xs []byte, target byte) []byte {
	out := make([]byte, len(xs))
	for i, xi := range xs {
		num, den := byte(1), byte(1)
		for j, xj := range xs {
			if i == j {
				continue
			}
			num = gfMul(num, target^xj) // (target - xj); subtraction is XOR
			den = gfMul(den, xi^xj)
		}
		out[i] = gfDiv(num, den)
	}
	return out
}

// EncodeShards splits data into K data shards (padded) and appends M-K
// parity shards; every shard has equal length and carries no framing —
// use Encode/Decode for length-framed payloads.
func (c *Code) EncodeShards(data []byte) [][]byte {
	shardLen := (len(data) + c.K - 1) / c.K
	if shardLen == 0 {
		shardLen = 1
	}
	shards := make([][]byte, c.M)
	for i := 0; i < c.K; i++ {
		shards[i] = make([]byte, shardLen)
		start := i * shardLen
		if start < len(data) {
			copy(shards[i], data[start:])
		}
	}
	// Parity shard at evaluation point p (k..m-1): per byte position,
	// Lagrange-extrapolate from the data points 0..k-1.
	xs := make([]byte, c.K)
	for i := range xs {
		xs[i] = byte(i)
	}
	for p := c.K; p < c.M; p++ {
		coeff := lagrangeCoeffs(xs, byte(p))
		shard := make([]byte, shardLen)
		for pos := 0; pos < shardLen; pos++ {
			var acc byte
			for i := 0; i < c.K; i++ {
				acc ^= gfMul(coeff[i], shards[i][pos])
			}
			shard[pos] = acc
		}
		shards[p] = shard
	}
	return shards
}

// ReconstructShards rebuilds the K data shards from any K present shards
// (nil entries mark erasures). The input slice must have length M.
func (c *Code) ReconstructShards(shards [][]byte) ([][]byte, error) {
	if len(shards) != c.M {
		return nil, fmt.Errorf("erasure: got %d shards, want %d", len(shards), c.M)
	}
	var xs []byte
	var present [][]byte
	shardLen := 0
	for i, s := range shards {
		if s == nil {
			continue
		}
		if shardLen == 0 {
			shardLen = len(s)
		} else if len(s) != shardLen {
			return nil, fmt.Errorf("erasure: shard %d has length %d, want %d", i, len(s), shardLen)
		}
		if len(xs) < c.K {
			xs = append(xs, byte(i))
			present = append(present, s)
		}
	}
	if len(xs) < c.K {
		return nil, fmt.Errorf("erasure: only %d of %d required shards present", len(xs), c.K)
	}
	data := make([][]byte, c.K)
	for i := 0; i < c.K; i++ {
		if shards[i] != nil {
			data[i] = shards[i]
			continue
		}
		coeff := lagrangeCoeffs(xs, byte(i))
		shard := make([]byte, shardLen)
		for pos := 0; pos < shardLen; pos++ {
			var acc byte
			for j := range present {
				acc ^= gfMul(coeff[j], present[j][pos])
			}
			shard[pos] = acc
		}
		data[i] = shard
	}
	return data, nil
}

// frameHeader is the length + checksum prefix Encode prepends: 4 bytes
// big-endian payload length, 4 bytes big-endian IEEE CRC32 of the
// payload. Erasures alone never need the checksum (any K intact shards
// reconstruct exactly), but a *corrupted* shard among exactly K present
// ones reconstructs silently wrong bytes — the CRC turns that into a
// detected error, which is what lets Decode promise reconstruct-or-error.
const frameHeader = 8

// Encode produces the M shards of a framed payload: the original length
// and a CRC32 of the data are prepended so Decode can strip the padding
// and refuse a reconstruction built from corrupted shards.
func (c *Code) Encode(data []byte) [][]byte {
	framed := make([]byte, frameHeader+len(data))
	framed[0] = byte(len(data) >> 24)
	framed[1] = byte(len(data) >> 16)
	framed[2] = byte(len(data) >> 8)
	framed[3] = byte(len(data))
	sum := crc32.ChecksumIEEE(data)
	framed[4] = byte(sum >> 24)
	framed[5] = byte(sum >> 16)
	framed[6] = byte(sum >> 8)
	framed[7] = byte(sum)
	copy(framed[frameHeader:], data)
	return c.EncodeShards(framed)
}

// Decode reconstructs the original payload from any K of the M shards.
// It returns an error — never wrong bytes — when the surviving shards
// are inconsistent with the encoded frame (bad length or CRC mismatch).
func (c *Code) Decode(shards [][]byte) ([]byte, error) {
	dataShards, err := c.ReconstructShards(shards)
	if err != nil {
		return nil, err
	}
	var framed []byte
	for _, s := range dataShards {
		framed = append(framed, s...)
	}
	if len(framed) < frameHeader {
		return nil, fmt.Errorf("erasure: reconstructed payload too short")
	}
	n := int(framed[0])<<24 | int(framed[1])<<16 | int(framed[2])<<8 | int(framed[3])
	if n < 0 || n > len(framed)-frameHeader {
		return nil, fmt.Errorf("erasure: corrupt length frame (%d of %d)", n, len(framed)-frameHeader)
	}
	sum := uint32(framed[4])<<24 | uint32(framed[5])<<16 | uint32(framed[6])<<8 | uint32(framed[7])
	data := framed[frameHeader : frameHeader+n]
	if got := crc32.ChecksumIEEE(data); got != sum {
		return nil, fmt.Errorf("erasure: checksum mismatch (corrupted shard among the %d used)", c.K)
	}
	return data, nil
}
