package erasure

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 5000; trial++ {
		a := byte(rng.IntN(256))
		b := byte(rng.IntN(256))
		c := byte(rng.IntN(256))
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatal("multiplication not commutative")
		}
		if gfMul(a, gfMul(b, c)) != gfMul(gfMul(a, b), c) {
			t.Fatal("multiplication not associative")
		}
		// Distributivity over XOR (the field addition).
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatal("not distributive")
		}
		if a != 0 && gfMul(a, gfInv(a)) != 1 {
			t.Fatalf("inverse broken for %d", a)
		}
		if gfMul(a, 1) != a || gfMul(a, 0) != 0 {
			t.Fatal("identity/zero broken")
		}
	}
}

func TestGFDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	gfDiv(3, 0)
}

func TestRoundTripNoErasures(t *testing.T) {
	c, err := NewCode(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the continuous-discrete approach")
	shards := c.Encode(data)
	if len(shards) != 7 {
		t.Fatalf("got %d shards", len(shards))
	}
	got, err := c.Decode(shards)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("decode: %v %q", err, got)
	}
}

// TestAnyKShardsSuffice: every K-subset of shards reconstructs — the
// defining MDS property.
func TestAnyKShardsSuffice(t *testing.T) {
	c, _ := NewCode(3, 6)
	data := []byte("fragmented across the covers of the segment")
	full := c.Encode(data)
	// Enumerate all 3-subsets of 6 shards.
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			for d := b + 1; d < 6; d++ {
				shards := make([][]byte, 6)
				shards[a], shards[b], shards[d] = full[a], full[b], full[d]
				got, err := c.Decode(shards)
				if err != nil || !bytes.Equal(got, data) {
					t.Fatalf("subset {%d,%d,%d}: %v", a, b, d, err)
				}
			}
		}
	}
}

func TestTooFewShardsFails(t *testing.T) {
	c, _ := NewCode(4, 8)
	full := c.Encode([]byte("data"))
	shards := make([][]byte, 8)
	shards[0], shards[1], shards[2] = full[0], full[1], full[2]
	if _, err := c.Decode(shards); err == nil {
		t.Fatal("expected failure with k-1 shards")
	}
}

func TestBadParams(t *testing.T) {
	for _, km := range [][2]int{{0, 4}, {5, 4}, {4, 300}} {
		if _, err := NewCode(km[0], km[1]); err == nil {
			t.Errorf("NewCode(%d,%d) should fail", km[0], km[1])
		}
	}
}

// TestRoundTripProperty: random payloads and random erasure patterns that
// leave >= K shards always reconstruct exactly.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	f := func(raw []byte, seed uint64) bool {
		k := 2 + int(seed%6)               // 2..7
		m := k + 1 + int(seed%9%uint64(8)) // k+1..k+8
		c, err := NewCode(k, m)
		if err != nil {
			return false
		}
		shards := c.Encode(raw)
		// Erase m-k random shards.
		perm := rng.Perm(m)
		for _, i := range perm[:m-k] {
			shards[i] = nil
		}
		got, err := c.Decode(shards)
		return err == nil && bytes.Equal(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptyPayload(t *testing.T) {
	c, _ := NewCode(2, 4)
	shards := c.Encode(nil)
	got, err := c.Decode(shards)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty payload: %v %v", err, got)
	}
}

func TestOverhead(t *testing.T) {
	c, _ := NewCode(4, 12)
	if c.Overhead() != 3 {
		t.Errorf("overhead = %v", c.Overhead())
	}
}

// TestShardMutationDetected is a negative control: erasure codes recover
// erasures, not corruption — a silently corrupted shard yields wrong data
// (callers must authenticate shards; the §6.3 FMR machinery is the paper's
// answer to byzantine corruption).
func TestShardMutationChangesOutput(t *testing.T) {
	c, _ := NewCode(3, 5)
	data := []byte("integrity is a separate concern")
	full := c.Encode(data)
	full[4][0] ^= 0xff
	shards := make([][]byte, 5)
	shards[2], shards[3], shards[4] = full[2], full[3], full[4]
	got, err := c.Decode(shards)
	if err == nil && bytes.Equal(got, data) {
		t.Fatal("corruption went unnoticed AND produced correct data — impossible")
	}
}

func BenchmarkEncode4of8_4KiB(b *testing.B) {
	c, _ := NewCode(4, 8)
	data := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(data)
	}
}
