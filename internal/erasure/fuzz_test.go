package erasure

import (
	"bytes"
	"testing"
)

// FuzzRSReconstruct drives Encode/Decode through randomized shard loss
// and single-byte bit-flip corruption. The property under test is
// reconstruct-or-error: Decode may fail (too few shards, corrupted
// frame), but whenever it succeeds the bytes must be exactly the
// original payload — never a silent wrong reconstruction. Erasure-only
// cases additionally must succeed whenever >= K shards survive.
func FuzzRSReconstruct(f *testing.F) {
	f.Add(uint8(4), uint8(8), []byte("the quick brown fox"), uint16(0x00f0), uint8(0), uint16(0), uint8(0))
	f.Add(uint8(1), uint8(1), []byte(""), uint16(0), uint8(0), uint16(0), uint8(1))
	f.Add(uint8(3), uint8(5), []byte("abc"), uint16(0x3), uint8(2), uint16(1), uint8(0x80))
	f.Add(uint8(4), uint8(12), bytes.Repeat([]byte{0xAB}, 300), uint16(0xAAA), uint8(7), uint16(150), uint8(0x01))
	f.Fuzz(func(t *testing.T, k, m uint8, data []byte, lossMask uint16, corruptShard uint8, corruptPos uint16, flip uint8) {
		if k < 1 || m < k || m > 16 {
			return // out-of-range codes are NewCode's error path, not ours
		}
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		c, err := NewCode(int(k), int(m))
		if err != nil {
			t.Fatalf("NewCode(%d, %d): %v", k, m, err)
		}
		shards := c.Encode(data)

		// Drop the shards selected by lossMask.
		alive := 0
		for i := range shards {
			if lossMask&(1<<uint(i)) != 0 {
				shards[i] = nil
			} else {
				alive++
			}
		}

		// Optionally corrupt one surviving shard in place (flip == 0
		// keeps the run erasure-only).
		corrupted := false
		if flip != 0 {
			idx := int(corruptShard) % len(shards)
			if s := shards[idx]; s != nil && len(s) > 0 {
				s[int(corruptPos)%len(s)] ^= flip
				corrupted = true
			}
		}

		got, err := c.Decode(shards)
		if err != nil {
			// Errors are always acceptable: too few shards, or a
			// corruption the checksum caught.
			if alive >= int(k) && !corrupted {
				t.Fatalf("k=%d m=%d alive=%d: erasure-only decode failed: %v", k, m, alive, err)
			}
			return
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("k=%d m=%d alive=%d corrupted=%v: Decode returned wrong bytes: got %d want %d",
				k, m, alive, corrupted, len(got), len(data))
		}
	})
}
