package replicate

import (
	"bytes"
	"testing"
)

func TestNeedAcks(t *testing.T) {
	cases := []struct {
		pol  Policy
		want int
	}{
		{Policy{K: 0}, 1},
		{Policy{K: 1}, 1},
		{Policy{K: 3}, 2}, // majority of 3
		{Policy{K: 4}, 3}, // majority of 4
		{Policy{K: 3, Quorum: 1}, 1},
		{Policy{K: 3, Quorum: 3}, 3},
		{Policy{K: 3, Quorum: 9}, 3}, // clamped to K
	}
	for _, c := range cases {
		if got := c.pol.NeedAcks(); got != c.want {
			t.Errorf("NeedAcks(%+v) = %d, want %d", c.pol, got, c.want)
		}
	}
}

func TestNeedAcksForSharded(t *testing.T) {
	// A sharded value needs dataK = K−2 surviving shards to reconstruct,
	// so its write quorum must rise to dataK+1 (owner + dataK shards) —
	// otherwise a majority-acked write could be unrecoverable after an
	// owner crash, despite the ack's crash-safety contract.
	p := Policy{K: 5, ShardThreshold: 64}
	if got := p.NeedAcks(); got != 3 {
		t.Fatalf("NeedAcks = %d, want 3", got)
	}
	if got := p.NeedAcksFor(8); got != 3 {
		t.Fatalf("NeedAcksFor(small) = %d, want 3 (copies keep the majority quorum)", got)
	}
	if got := p.NeedAcksFor(64); got != 4 {
		t.Fatalf("NeedAcksFor(sharded) = %d, want 4 (owner + dataK shards)", got)
	}
	// A quorum already at or above dataK+1 is left alone.
	if got := (Policy{K: 5, Quorum: 5, ShardThreshold: 64}).NeedAcksFor(64); got != 5 {
		t.Fatalf("NeedAcksFor(quorum=5) = %d, want 5", got)
	}
	// Without sharding the value size never changes the quorum.
	if got := (Policy{K: 3}).NeedAcksFor(1 << 20); got != 2 {
		t.Fatalf("NeedAcksFor(unsharded) = %d, want 2", got)
	}
}

func TestReconstructQuorum(t *testing.T) {
	cases := []struct {
		pol  Policy
		want int
	}{
		{Policy{}, 0},                         // replication off
		{Policy{K: 3}, 1},                     // full copies: one holder suffices
		{Policy{K: 4, ShardThreshold: 1}, 2},  // dataK = 2
		{Policy{K: 5, ShardThreshold: 64}, 3}, // dataK = 3
		{Policy{K: 5, ShardThreshold: 0}, 1},  // sharding disabled: copies
	}
	for _, c := range cases {
		if got := c.pol.ReconstructQuorum(); got != c.want {
			t.Errorf("ReconstructQuorum(%+v) = %d, want %d", c.pol, got, c.want)
		}
	}
}

func TestCopyRoundTrip(t *testing.T) {
	pol := Policy{K: 3}
	val := []byte("hello replica")
	pls := Payloads(pol, val)
	if len(pls) != 2 {
		t.Fatalf("got %d payloads, want 2", len(pls))
	}
	for i := range pls {
		got, ok := Reconstruct([][]byte{pls[i]})
		if !ok || !bytes.Equal(got, val) {
			t.Fatalf("payload %d did not reconstruct alone", i)
		}
	}
}

func TestShardRoundTrip(t *testing.T) {
	pol := Policy{K: 5, ShardThreshold: 16} // RS(3, 4) over 4 successors
	val := bytes.Repeat([]byte("0123456789abcdef"), 8)
	pls := Payloads(pol, val)
	if len(pls) != 4 {
		t.Fatalf("got %d payloads, want 4", len(pls))
	}
	for i := range pls {
		if pls[i][0] != payloadShard {
			t.Fatalf("payload %d is not a shard", i)
		}
	}
	// Any one successor may be missing alongside the owner.
	for drop := 0; drop < 4; drop++ {
		var have [][]byte
		for i, pl := range pls {
			if i != drop {
				have = append(have, pl)
			}
		}
		got, ok := Reconstruct(have)
		if !ok || !bytes.Equal(got, val) {
			t.Fatalf("reconstruct without shard %d failed", drop)
		}
	}
	// Two missing successors exceed the code's budget.
	if _, ok := Reconstruct(pls[:2]); ok {
		t.Fatal("reconstructed from too few shards")
	}
}

func TestSmallValueStaysCopy(t *testing.T) {
	pol := Policy{K: 5, ShardThreshold: 1 << 20}
	pls := Payloads(pol, []byte("small"))
	for i, pl := range pls {
		if pl[0] != payloadCopy {
			t.Fatalf("payload %d sharded below the threshold", i)
		}
	}
}

func TestReconstructSkipsGarbage(t *testing.T) {
	val := []byte("payload")
	pls := [][]byte{nil, {0xFF, 1, 2}, EncodeCopy(val)}
	got, ok := Reconstruct(pls)
	if !ok || !bytes.Equal(got, val) {
		t.Fatal("garbage payloads broke reconstruction")
	}
	if _, ok := Reconstruct([][]byte{nil, {0x7F}}); ok {
		t.Fatal("reconstructed from garbage alone")
	}
}
