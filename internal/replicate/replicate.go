// Package replicate defines the k-successor replication policy and the
// self-describing replica payload format shared by the TCP node and the
// simulator.
//
// Placement follows the ring: a key's owner keeps the authoritative full
// copy and pushes one replica payload to each of its k−1 ring successors.
// The successors are exactly the nodes that inherit the owner's segment
// under the paper's §2.1 predecessor/successor absorb order, so after a
// crash the absorber's own replica set already covers the lost range —
// no placement metadata has to survive the crash.
//
// Payloads are self-describing: small values ship as full copies, values
// at or above Policy.ShardThreshold ship as systematic Reed–Solomon
// shards (internal/erasure) when k is large enough to make coding
// meaningful. Reconstruct never needs the policy back — every payload
// carries its own code parameters — so readers keep working across a
// rolling policy change.
package replicate

import (
	"fmt"

	"condisc/internal/erasure"
)

// Policy selects the replication factor and write semantics.
type Policy struct {
	// K is the total number of copies including the owner's; K <= 1
	// disables replication entirely.
	K int
	// Quorum is the number of acks (the owner's local write counts as
	// one) a Put needs before it is acknowledged. <= 0 means majority:
	// K/2 + 1. Values are clamped to [1, K].
	Quorum int
	// ShardThreshold is the value size in bytes at which replicas switch
	// from full copies to RS-coded shards. <= 0 keeps full copies at
	// every size. Sharding additionally requires K >= 4 (below that the
	// code degenerates to copies anyway).
	ShardThreshold int
}

// Enabled reports whether the policy replicates at all.
func (p Policy) Enabled() bool { return p.K > 1 }

// NeedAcks returns the effective write quorum in [1, K].
func (p Policy) NeedAcks() int {
	if !p.Enabled() {
		return 1
	}
	q := p.Quorum
	if q <= 0 {
		q = p.K/2 + 1
	}
	if q > p.K {
		q = p.K
	}
	if q < 1 {
		q = 1
	}
	return q
}

// NeedAcksFor returns the effective write quorum for a value of the
// given size. Full-copy values use NeedAcks unchanged. Sharded values
// need dataK surviving shards to reconstruct, so an ack set that could
// lose the owner must still contain dataK shard placements — the
// quorum is raised to at least dataK+1 (owner + dataK shards).
// Without this, a majority-quorum ack (owner + quorum−1 shards) could
// be unrecoverable after an owner crash, breaking the crash-safety
// contract the ack implies.
func (p Policy) NeedAcksFor(valLen int) int {
	q := p.NeedAcks()
	if dataK, _, ok := p.shardParams(); ok && valLen >= p.ShardThreshold {
		if min := dataK + 1; q < min {
			q = min
		}
	}
	return q
}

// ReconstructQuorum returns the minimum number of replica holders a
// repair gather must reach before its reconstruction pass can be
// trusted as complete: dataK holders when the policy shards, one when
// replicas are full copies, zero with replication off. A gather that
// reached fewer holders may simply have missed the payloads and must
// not be treated as authoritative.
func (p Policy) ReconstructQuorum() int {
	if dataK, _, ok := p.shardParams(); ok {
		return dataK
	}
	if p.Enabled() {
		return 1
	}
	return 0
}

// shardParams returns the RS code used for a sharded value: K−2 data
// shards out of K−1 total, one per successor. Any K−2 of the K−1
// successors reconstruct, so a sharded value survives the owner plus one
// successor dying — the same two-fault budget a K=3 full-copy scheme has,
// at roughly 1/(K−3) of the replica bytes.
func (p Policy) shardParams() (dataK, m int, ok bool) {
	if p.K < 4 || p.ShardThreshold <= 0 {
		return 0, 0, false
	}
	return p.K - 2, p.K - 1, true
}

// Payload type tags. A replica payload is one byte of tag followed by
// tag-specific bytes; unknown tags are skipped by Reconstruct so the
// format can grow.
const (
	payloadCopy  = 0x01 // tag ++ value bytes
	payloadShard = 0x02 // tag ++ dataK ++ m ++ idx ++ shard bytes
)

// EncodeCopy wraps a full-value replica payload.
func EncodeCopy(val []byte) []byte {
	out := make([]byte, 1+len(val))
	out[0] = payloadCopy
	copy(out[1:], val)
	return out
}

// Payloads builds the k−1 successor payloads for val: full copies below
// the shard threshold (or when the policy cannot shard), one RS shard
// per successor above it.
func Payloads(p Policy, val []byte) [][]byte {
	n := p.K - 1
	if n < 1 {
		return nil
	}
	out := make([][]byte, n)
	if dataK, m, ok := p.shardParams(); ok && len(val) >= p.ShardThreshold {
		code, err := erasure.NewCode(dataK, m)
		if err == nil {
			shards := code.Encode(val)
			for i := 0; i < n; i++ {
				s := shards[i]
				b := make([]byte, 4+len(s))
				b[0], b[1], b[2], b[3] = payloadShard, byte(dataK), byte(m), byte(i)
				copy(b[4:], s)
				out[i] = b
			}
			return out
		}
	}
	full := EncodeCopy(val)
	for i := range out {
		out[i] = full
	}
	return out
}

// Reconstruct recovers the original value from whatever replica payloads
// could be gathered (order and gaps do not matter). Any full copy wins
// immediately; otherwise shards with consistent code parameters are
// slotted and decoded — erasure.Decode's CRC frame guarantees a
// corrupted gather errors out instead of returning wrong bytes.
func Reconstruct(payloads [][]byte) ([]byte, bool) {
	var shards [][]byte
	dataK, m := 0, 0
	for _, pl := range payloads {
		if len(pl) < 1 {
			continue
		}
		switch pl[0] {
		case payloadCopy:
			return pl[1:], true
		case payloadShard:
			if len(pl) < 4 {
				continue
			}
			dk, mm, idx := int(pl[1]), int(pl[2]), int(pl[3])
			if dk < 1 || mm < dk || idx >= mm {
				continue
			}
			if shards == nil {
				dataK, m = dk, mm
				shards = make([][]byte, m)
			}
			if dk != dataK || mm != m || shards[idx] != nil {
				continue // policy-skew or duplicate; first consistent set wins
			}
			shards[idx] = pl[4:]
		}
	}
	if shards == nil {
		return nil, false
	}
	code, err := erasure.NewCode(dataK, m)
	if err != nil {
		return nil, false
	}
	val, err := code.Decode(shards)
	if err != nil {
		return nil, false
	}
	return val, true
}

// Validate rejects nonsensical policies before a node starts with them.
func (p Policy) Validate() error {
	if p.K < 0 || p.K > 64 {
		return fmt.Errorf("replicate: K=%d out of range [0, 64]", p.K)
	}
	if p.Quorum > p.K && p.K > 1 {
		return fmt.Errorf("replicate: quorum %d exceeds replication factor %d", p.Quorum, p.K)
	}
	return nil
}
