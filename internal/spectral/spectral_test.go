package spectral

import (
	"math"
	"math/rand/v2"
	"testing"

	"condisc/internal/graph"
)

func cycle(n int) *graph.Undirected {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

func complete(n int) *graph.Undirected {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func randomRegular(n, d int, seed uint64) *graph.Undirected {
	rng := rand.New(rand.NewPCG(seed, seed))
	b := graph.NewBuilder(n)
	// Union of d/2 random perfect matchings on even n (simple expander
	// construction for testing).
	for m := 0; m < d/2; m++ {
		perm := rng.Perm(n)
		for i := 0; i+1 < n; i += 2 {
			b.AddEdge(perm[i], perm[i+1])
		}
	}
	// plus a Hamilton cycle to guarantee connectivity
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		b.AddEdge(perm[i], perm[(i+1)%n])
	}
	return b.Build()
}

func TestLambda2Cycle(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	const n = 64
	got := SecondEigenvalue(cycle(n), 3000, rng)
	want := math.Cos(2 * math.Pi / n)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("λ₂(C_%d) = %v, want %v", n, got, want)
	}
}

func TestLambda2Complete(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	const n = 16
	got := SecondEigenvalue(complete(n), 2000, rng)
	want := -1.0 / (n - 1)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("λ₂(K_%d) = %v, want %v", n, got, want)
	}
}

func TestExpanderHasLargeGap(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	g := randomRegular(512, 6, 7)
	gap := SpectralGap(g, 500, rng)
	if gap < 0.15 {
		t.Errorf("random regular graph gap %v, want > 0.15", gap)
	}
	// A cycle of the same size has a vanishing gap — the contrast matters.
	cgap := SpectralGap(cycle(512), 500, rng)
	if cgap > gap/4 {
		t.Errorf("cycle gap %v should be far below expander gap %v", cgap, gap)
	}
}

func TestSweepConductanceBrackets(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	// Two dense clusters joined by one edge: conductance is tiny and the
	// sweep cut should find it.
	b := graph.NewBuilder(20)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			b.AddEdge(i, j)
			b.AddEdge(10+i, 10+j)
		}
	}
	b.AddEdge(0, 10)
	g := b.Build()
	sweep := SweepConductance(g, 2000, rng)
	brute := BruteConductance(g)
	if sweep < brute-1e-9 {
		t.Errorf("sweep %v below true minimum %v", sweep, brute)
	}
	if sweep > 10*brute {
		t.Errorf("sweep %v far above true minimum %v", sweep, brute)
	}
	lambda2 := SecondEigenvalue(g, 2000, rng)
	if low := CheegerLower(lambda2); brute < low-1e-6 {
		t.Errorf("Cheeger lower bound %v exceeds true conductance %v", low, brute)
	}
}

func TestBruteConductanceKnown(t *testing.T) {
	// C_4: min conductance cut splits into two paths: cut=2, vol=4.
	if got := BruteConductance(cycle(4)); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("conductance(C_4) = %v, want 0.5", got)
	}
	// K_4: any single vertex: cut=3, vol=3 -> 1.
	if got := BruteConductance(complete(4)); math.Abs(got-2.0/3.0) > 1e-12 {
		// best is the 2-2 cut: cut=4, vol=6 -> 2/3
		t.Errorf("conductance(K_4) = %v, want 2/3", got)
	}
}

func TestVertexExpansionContrast(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	exp := VertexExpansion(randomRegular(256, 6, 11), 300, rng)
	cyc := VertexExpansion(cycle(256), 300, rng)
	if exp < 4*cyc {
		t.Errorf("expander vertex expansion %v should dwarf cycle's %v", exp, cyc)
	}
}

func TestSmallGraphEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	if SecondEigenvalue(graph.NewBuilder(1).Build(), 10, rng) != 0 {
		t.Error("single vertex should return 0")
	}
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	l := SecondEigenvalue(b.Build(), 200, rng)
	if math.Abs(l-(-1)) > 0.05 {
		t.Errorf("λ₂(K_2) = %v, want -1", l)
	}
}

func TestBruteForcePanicsOnLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BruteConductance(cycle(24))
}

// TestMixingTVExpanderVsCycle: a lazy walk on a 6-regular expander is
// close to stationary after O(log n) steps while the cycle is nowhere
// near.
func TestMixingTVExpanderVsCycle(t *testing.T) {
	const n = 512
	steps := 4 * 9 // 4 log n
	exp := MixingTV(randomRegular(n, 6, 31), 0, steps)
	cyc := MixingTV(cycle(n), 0, steps)
	if exp > 0.1 {
		t.Errorf("expander TV after %d steps = %v, want < 0.1", steps, exp)
	}
	if cyc < 0.5 {
		t.Errorf("cycle TV after %d steps = %v, should still be large", steps, cyc)
	}
}

// TestMixingTVConvergesToZero: TV decreases with more steps and tends to 0.
func TestMixingTVConvergesToZero(t *testing.T) {
	g := randomRegular(128, 4, 33)
	short := MixingTV(g, 5, 5)
	long := MixingTV(g, 5, 100)
	if long > short {
		t.Errorf("TV increased with steps: %v -> %v", short, long)
	}
	if long > 0.01 {
		t.Errorf("TV after 100 steps = %v, want ~0", long)
	}
}
