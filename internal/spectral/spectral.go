// Package spectral verifies expansion properties of graphs: the second
// eigenvalue of the normalized adjacency matrix via deflated power
// iteration, the Cheeger conductance bounds it implies, sweep-cut upper
// bounds, and exact brute-force conductance for tiny graphs (used to test
// the estimators themselves).
//
// This is the measurement side of §5.2's claim ("the main advantage of our
// approach is that the expansion of the network can be verified").
package spectral

import (
	"math"
	"math/rand/v2"
	"sort"

	"condisc/internal/graph"
)

// SecondEigenvalue estimates λ₂ of the normalized adjacency matrix
// N = D^{-1/2} A D^{-1/2} by power iteration on (I+N)/2 with the top
// eigenvector (√d, normalized) deflated. The spectral gap 1-λ₂ lower-bounds
// expansion via Cheeger's inequality.
func SecondEigenvalue(g *graph.Undirected, iters int, rng *rand.Rand) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		deg[i] = float64(g.Degree(i))
		if deg[i] == 0 {
			deg[i] = 1 // isolated vertex: harmless placeholder
		}
	}
	sqrtd := make([]float64, n)
	for i := range deg {
		sqrtd[i] = math.Sqrt(deg[i])
	}
	v1 := normalize(append([]float64(nil), sqrtd...))

	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	deflate(x, v1)
	normalizeIn(x)

	y := make([]float64, n)
	mu := 0.0
	for it := 0; it < iters; it++ {
		// y = (x + N x)/2.
		for i := 0; i < n; i++ {
			s := 0.0
			for _, j := range g.Neighbors(i) {
				s += x[j] / (sqrtd[i] * sqrtd[j])
			}
			y[i] = (x[i] + s) / 2
		}
		deflate(y, v1)
		mu = norm(y) // Rayleigh quotient estimate for unit x
		if mu == 0 {
			return -1 // x collapsed: graph is essentially complete/disconnected oddity
		}
		for i := range y {
			x[i] = y[i] / mu
		}
	}
	return 2*mu - 1
}

// SpectralGap returns 1 - λ₂.
func SpectralGap(g *graph.Undirected, iters int, rng *rand.Rand) float64 {
	return 1 - SecondEigenvalue(g, iters, rng)
}

// CheegerLower returns the conductance lower bound (1-λ₂)/2.
func CheegerLower(lambda2 float64) float64 { return (1 - lambda2) / 2 }

// SweepConductance computes an upper bound on conductance by sweeping the
// (approximate) second eigenvector: for every prefix of vertices sorted by
// eigenvector value, it evaluates the cut conductance and returns the
// minimum. By Cheeger, min conductance <= sqrt(2·(1-λ₂)).
func SweepConductance(g *graph.Undirected, iters int, rng *rand.Rand) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	vec := secondVector(g, iters, rng)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vec[order[a]] < vec[order[b]] })

	inS := make([]bool, n)
	volS, cut := 0, 0
	totalVol := 2 * g.M()
	best := math.Inf(1)
	for k := 0; k < n-1; k++ {
		v := order[k]
		inS[v] = true
		volS += g.Degree(v)
		for _, w := range g.Neighbors(v) {
			if inS[w] {
				cut-- // edge absorbed into S
			} else {
				cut++
			}
		}
		minVol := volS
		if totalVol-volS < minVol {
			minVol = totalVol - volS
		}
		if minVol > 0 {
			if c := float64(cut) / float64(minVol); c < best {
				best = c
			}
		}
	}
	return best
}

// secondVector runs the deflated power iteration and returns the vector.
func secondVector(g *graph.Undirected, iters int, rng *rand.Rand) []float64 {
	n := g.N()
	deg := make([]float64, n)
	sqrtd := make([]float64, n)
	for i := 0; i < n; i++ {
		deg[i] = math.Max(1, float64(g.Degree(i)))
		sqrtd[i] = math.Sqrt(deg[i])
	}
	v1 := normalize(append([]float64(nil), sqrtd...))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	deflate(x, v1)
	normalizeIn(x)
	y := make([]float64, n)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			s := 0.0
			for _, j := range g.Neighbors(i) {
				s += x[j] / (sqrtd[i] * sqrtd[j])
			}
			y[i] = (x[i] + s) / 2
		}
		deflate(y, v1)
		if norm(y) == 0 {
			break
		}
		normalizeIn(y)
		copy(x, y)
	}
	// Convert back to the embedding coordinates D^{-1/2} x.
	for i := range x {
		x[i] /= sqrtd[i]
	}
	return x
}

// BruteConductance computes the exact minimum conductance over all cuts of
// a graph with at most 20 vertices (2^n enumeration) — ground truth for
// testing the estimators.
func BruteConductance(g *graph.Undirected) float64 {
	n := g.N()
	if n > 20 {
		panic("spectral: brute force limited to n <= 20")
	}
	totalVol := 2 * g.M()
	best := math.Inf(1)
	for mask := 1; mask < 1<<n-1; mask++ {
		volS, cut := 0, 0
		for v := 0; v < n; v++ {
			if mask>>v&1 == 0 {
				continue
			}
			volS += g.Degree(v)
			for _, w := range g.Neighbors(v) {
				if mask>>w&1 == 0 {
					cut++
				}
			}
		}
		minVol := volS
		if totalVol-volS < minVol {
			minVol = totalVol - volS
		}
		if minVol == 0 {
			continue
		}
		if c := float64(cut) / float64(minVol); c < best {
			best = c
		}
	}
	return best
}

// VertexExpansion estimates the vertex expansion min |δ(S)|/|S| over
// random connected subsets S with |S| <= n/2, grown by randomized BFS.
// It returns an upper bound (the smallest ratio found).
func VertexExpansion(g *graph.Undirected, samples int, rng *rand.Rand) float64 {
	n := g.N()
	best := math.Inf(1)
	for s := 0; s < samples; s++ {
		size := 1 + rng.IntN(n/2)
		inS := make(map[int]bool, size)
		frontier := []int{rng.IntN(n)}
		inS[frontier[0]] = true
		for len(inS) < size && len(frontier) > 0 {
			idx := rng.IntN(len(frontier))
			v := frontier[idx]
			frontier = append(frontier[:idx], frontier[idx+1:]...)
			for _, w := range g.Neighbors(v) {
				if !inS[w] {
					inS[w] = true
					frontier = append(frontier, w)
					if len(inS) >= size {
						break
					}
				}
			}
		}
		boundary := map[int]bool{}
		for v := range inS {
			for _, w := range g.Neighbors(v) {
				if !inS[w] {
					boundary[w] = true
				}
			}
		}
		if r := float64(len(boundary)) / float64(len(inS)); r < best {
			best = r
		}
	}
	return best
}

// MixingTV runs a lazy random walk from the start vertex for the given
// number of steps and returns the total-variation distance to the
// stationary distribution π(v) = deg(v)/2m. Expanders (and the de Bruijn
// graph, whose mixing time §2.1 of the paper cites as Θ(log n)) mix in
// O(log n) steps; a ring needs Θ(n²).
func MixingTV(g *graph.Undirected, start, steps int) float64 {
	n := g.N()
	dist := make([]float64, n)
	next := make([]float64, n)
	dist[start] = 1
	for s := 0; s < steps; s++ {
		for i := range next {
			next[i] = 0
		}
		for v := 0; v < n; v++ {
			if dist[v] == 0 {
				continue
			}
			next[v] += dist[v] / 2 // lazy self-loop
			d := float64(g.Degree(v))
			if d == 0 {
				next[v] += dist[v] / 2
				continue
			}
			share := dist[v] / 2 / d
			for _, w := range g.Neighbors(v) {
				next[w] += share
			}
		}
		dist, next = next, dist
	}
	totalVol := float64(2 * g.M())
	tv := 0.0
	for v := 0; v < n; v++ {
		pi := float64(g.Degree(v)) / totalVol
		d := dist[v] - pi
		if d > 0 {
			tv += d
		}
	}
	return tv
}

func deflate(x, v []float64) {
	d := 0.0
	for i := range x {
		d += x[i] * v[i]
	}
	for i := range x {
		x[i] -= d * v[i]
	}
}

func norm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func normalize(x []float64) []float64 {
	normalizeIn(x)
	return x
}

func normalizeIn(x []float64) {
	n := norm(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}
