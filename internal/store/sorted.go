package store

import (
	"sort"

	"condisc/internal/interval"
)

// This file implements the ordered container shared by both engines: a
// chunked sorted list of (point, key, V) entries ordered by (point, key).
// memstore instantiates it with V = []byte (the values themselves);
// logstore instantiates it with V = lloc (disk locations), so the same
// range machinery drives both the resident and the disk-backed engine.
//
// The representation mirrors partition/olist (a chunk directory over runs
// of the sorted sequence) but needs no Fenwick tree: stores are addressed
// by (point, key) and by range, never by rank. Chunks are larger than the
// ring's (512 vs 256) so that a range extraction is dominated by the two
// boundary-chunk copies — a resident-count-independent cost — rather than
// by the O(resident/chunk) directory splice.
//
// Costs (S = entries, m = chunks ≈ S/chunkTarget):
//
//	get / put / del          O(log S + chunk)      binary search + in-chunk memmove
//	ascendRange              O(log S + visited)
//	extractRange             O(log S + moved/chunk + chunk + m)
//	absorb (disjoint ranges) O(m_src)              chunk-pointer append/prepend
const (
	chunkTarget = 512
	chunkMax    = 2 * chunkTarget // a chunk splits before reaching this
	chunkMin    = chunkTarget / 4 // below this a chunk merges into a neighbour
)

// entry is one stored (point, key, value) triple.
type entry[V any] struct {
	p   interval.Point
	key string
	val V
}

// entryBefore reports whether e sorts strictly before (p, key).
func entryBefore[V any](e entry[V], p interval.Point, key string) bool {
	return e.p < p || (e.p == p && e.key < key)
}

// chunk is one run of the sorted sequence.
type chunk[V any] struct {
	es []entry[V]
}

func (c *chunk[V]) last() entry[V] { return c.es[len(c.es)-1] }

// list is the chunked sorted sequence.
type list[V any] struct {
	chunks []*chunk[V]
	n      int
}

func (l *list[V]) size() int { return l.n }

func (l *list[V]) clear() {
	l.chunks, l.n = nil, 0
}

// lowerBound locates the first entry >= (p, key), returning its chunk and
// in-chunk index; ci == len(chunks) when every entry sorts before (p, key).
func (l *list[V]) lowerBound(p interval.Point, key string) (ci, i int) {
	c := sort.Search(len(l.chunks), func(i int) bool {
		return !entryBefore(l.chunks[i].last(), p, key)
	})
	if c == len(l.chunks) {
		return c, 0
	}
	es := l.chunks[c].es
	// The chunk's last entry is >= (p, key), so the in-chunk search hits.
	return c, sort.Search(len(es), func(k int) bool { return !entryBefore(es[k], p, key) })
}

// find locates the entry with exactly (p, key).
func (l *list[V]) find(p interval.Point, key string) (ci, i int, ok bool) {
	ci, i = l.lowerBound(p, key)
	if ci == len(l.chunks) || i == len(l.chunks[ci].es) {
		return ci, i, false
	}
	e := l.chunks[ci].es[i]
	return ci, i, e.p == p && e.key == key
}

func (l *list[V]) get(p interval.Point, key string) (V, bool) {
	if ci, i, ok := l.find(p, key); ok {
		return l.chunks[ci].es[i].val, true
	}
	var zero V
	return zero, false
}

// put inserts or replaces the entry (p, key), returning the displaced value.
func (l *list[V]) put(p interval.Point, key string, v V) (old V, replaced bool) {
	if len(l.chunks) == 0 {
		l.chunks = []*chunk[V]{{es: []entry[V]{{p, key, v}}}}
		l.n = 1
		return
	}
	ci, i, ok := l.find(p, key)
	if ci == len(l.chunks) { // beyond every chunk: append to the last one
		ci = len(l.chunks) - 1
		i = len(l.chunks[ci].es)
	}
	ck := l.chunks[ci]
	if ok {
		old, replaced = ck.es[i].val, true
		ck.es[i].val = v
		return
	}
	ck.es = append(ck.es, entry[V]{})
	copy(ck.es[i+1:], ck.es[i:])
	ck.es[i] = entry[V]{p, key, v}
	l.n++
	if len(ck.es) >= chunkMax {
		l.splitChunk(ci)
	}
	return
}

// del removes the entry (p, key), returning its value.
func (l *list[V]) del(p interval.Point, key string) (old V, ok bool) {
	ci, i, ok := l.find(p, key)
	if !ok {
		return old, false
	}
	ck := l.chunks[ci]
	old = ck.es[i].val
	copy(ck.es[i:], ck.es[i+1:])
	ck.es[len(ck.es)-1] = entry[V]{} // release the displaced value
	ck.es = ck.es[:len(ck.es)-1]
	l.n--
	if len(ck.es) == 0 {
		l.dropChunk(ci)
	} else if len(ck.es) < chunkMin && len(l.chunks) > 1 {
		l.mergeAround(ci)
	}
	return old, true
}

// prange is one ascending linear point range: p >= lo and, unless toTop,
// p < hi. Ring segments decompose into at most two of them (see ranges).
type prange struct {
	lo    interval.Point
	hi    interval.Point // exclusive upper bound; ignored when toTop
	toTop bool           // range extends to the top of the point space
}

// ranges decomposes a ring segment into its ascending linear point ranges,
// lowest first, so that per-range extraction preserves (point, key) order.
func ranges(s interval.Segment) []prange {
	if s.Len == 0 { // full circle
		return []prange{{toTop: true}}
	}
	end := s.Start + interval.Point(s.Len)
	switch {
	case end == 0:
		return []prange{{lo: s.Start, toTop: true}}
	case end < s.Start: // wraps past the top
		return []prange{{hi: end}, {lo: s.Start, toTop: true}}
	default:
		return []prange{{lo: s.Start, hi: end}}
	}
}

// contains reports whether p lies in the linear range.
func (r prange) contains(p interval.Point) bool {
	return p >= r.lo && (r.toTop || p < r.hi)
}

// ringRanges decomposes a ring segment like ranges, but ordered clockwise
// from the segment start — the order a streaming handoff walks the segment
// in, so that "resume after the last item received" is a single position.
func ringRanges(s interval.Segment) []prange {
	rs := ranges(s)
	if len(rs) == 2 {
		rs[0], rs[1] = rs[1], rs[0]
	}
	return rs
}

// ascendRange calls fn for every entry in r in (point, key) order until fn
// returns false; it reports whether the walk ran to completion.
func (l *list[V]) ascendRange(r prange, fn func(e entry[V]) bool) bool {
	return l.ascendFrom(r, r.lo, "", fn)
}

// ascendFrom is ascendRange starting at the first entry >= (p, key)
// instead of the range start; the upper end of r still bounds the walk.
func (l *list[V]) ascendFrom(r prange, p interval.Point, key string, fn func(e entry[V]) bool) bool {
	ci, i := l.lowerBound(p, key)
	for ; ci < len(l.chunks); ci++ {
		es := l.chunks[ci].es
		for ; i < len(es); i++ {
			if !r.toTop && es[i].p >= r.hi {
				return true
			}
			if !fn(es[i]) {
				return false
			}
		}
		i = 0
	}
	return true
}

// scanMut calls fn with a pointer to every entry in order, letting the
// caller rewrite values in place (logstore compaction relocates entries
// this way without rebuilding the list).
func (l *list[V]) scanMut(fn func(e *entry[V])) {
	for _, ck := range l.chunks {
		for i := range ck.es {
			fn(&ck.es[i])
		}
	}
}

// extractRange removes every entry in r and returns them as ordered chunks
// ready to seed another list. The boundary chunks are copied (O(chunk));
// interior chunks move by pointer, so the cost is independent of the
// entries that stay behind.
func (l *list[V]) extractRange(r prange) ([]*chunk[V], int) {
	if l.n == 0 {
		return nil, 0
	}
	c0, i0 := l.lowerBound(r.lo, "")
	if c0 == len(l.chunks) {
		return nil, 0
	}
	c1, i1 := len(l.chunks), 0
	if !r.toTop {
		c1, i1 = l.lowerBound(r.hi, "")
	}
	if c0 == c1 && i0 == i1 {
		return nil, 0
	}

	var out []*chunk[V]
	moved := 0
	if c0 == c1 {
		// The moved run lies inside one chunk.
		ck := l.chunks[c0]
		mv := append([]entry[V](nil), ck.es[i0:i1]...)
		k := i0 + copy(ck.es[i0:], ck.es[i1:])
		clearEntries(ck.es[k:])
		ck.es = ck.es[:k]
		out = append(out, &chunk[V]{es: mv})
		moved = len(mv)
	} else {
		startWhole := c0
		if i0 > 0 { // partial head chunk: copy its moved suffix out
			head := l.chunks[c0]
			if i0 < len(head.es) {
				mv := append([]entry[V](nil), head.es[i0:]...)
				clearEntries(head.es[i0:])
				head.es = head.es[:i0]
				out = append(out, &chunk[V]{es: mv})
				moved += len(mv)
			}
			startWhole = c0 + 1
		}
		for _, ck := range l.chunks[startWhole:c1] { // interior chunks move whole
			out = append(out, ck)
			moved += len(ck.es)
		}
		if c1 < len(l.chunks) && i1 > 0 { // partial tail chunk: copy its moved prefix out
			tail := l.chunks[c1]
			mv := append([]entry[V](nil), tail.es[:i1]...)
			k := copy(tail.es, tail.es[i1:])
			clearEntries(tail.es[k:])
			tail.es = tail.es[:k]
			out = append(out, &chunk[V]{es: mv})
			moved += len(mv)
		}
		l.chunks = append(l.chunks[:startWhole], l.chunks[c1:]...)
		c0 = startWhole // boundary position after the splice
	}
	l.n -= moved
	l.fixupAt(c0)
	l.fixupAt(c0 - 1)
	return out, moved
}

// seed installs extracted chunks as the whole content of an empty list.
// The chunks must be sorted and pairwise disjoint (extractRange output,
// appended in ascending range order).
func (l *list[V]) seed(cs []*chunk[V], count int) {
	for _, c := range cs {
		if len(c.es) > 0 {
			l.chunks = append(l.chunks, c)
		}
	}
	l.n += count
}

// absorb moves every entry of src into l, draining src. Disjoint point
// ranges (the churn case: a leaver's segment abuts its predecessor's)
// splice chunk pointers; interleaved ranges fall back to per-entry puts.
func (l *list[V]) absorb(src *list[V]) {
	if src.n == 0 {
		src.clear()
		return
	}
	switch {
	case l.n == 0:
		l.chunks, l.n = src.chunks, src.n
	case func() bool {
		last := l.chunks[len(l.chunks)-1].last()
		f := src.chunks[0].es[0]
		return entryBefore(last, f.p, f.key)
	}():
		l.chunks = append(l.chunks, src.chunks...)
		l.n += src.n
	case func() bool {
		last := src.chunks[len(src.chunks)-1].last()
		f := l.chunks[0].es[0]
		return entryBefore(last, f.p, f.key)
	}():
		l.chunks = append(src.chunks[:len(src.chunks):len(src.chunks)], l.chunks...)
		l.n += src.n
	default:
		for _, ck := range src.chunks {
			for _, e := range ck.es {
				l.put(e.p, e.key, e.val)
			}
		}
	}
	src.clear()
}

// --- chunk directory maintenance ---

func (l *list[V]) splitChunk(ci int) {
	ck := l.chunks[ci]
	half := len(ck.es) / 2
	right := &chunk[V]{es: append([]entry[V](nil), ck.es[half:]...)}
	clearEntries(ck.es[half:])
	ck.es = ck.es[:half:half]
	l.chunks = append(l.chunks, nil)
	copy(l.chunks[ci+2:], l.chunks[ci+1:])
	l.chunks[ci+1] = right
}

func (l *list[V]) dropChunk(ci int) {
	l.chunks = append(l.chunks[:ci], l.chunks[ci+1:]...)
}

// fixupAt repairs chunk ci after a range extraction: drops it if empty,
// folds it into a neighbour if undersized.
func (l *list[V]) fixupAt(ci int) {
	if ci < 0 || ci >= len(l.chunks) {
		return
	}
	ck := l.chunks[ci]
	switch {
	case len(ck.es) == 0:
		l.dropChunk(ci)
	case len(ck.es) < chunkMin && len(l.chunks) > 1:
		l.mergeAround(ci)
	}
}

// mergeAround folds chunk ci into a neighbour, re-splitting if oversized.
func (l *list[V]) mergeAround(ci int) {
	a, b := ci-1, ci
	if a < 0 {
		a, b = ci, ci+1
	}
	la, lb := l.chunks[a], l.chunks[b]
	la.es = append(la.es, lb.es...)
	l.dropChunk(b)
	if len(la.es) >= chunkMax {
		l.splitChunk(a)
	}
}

// clearEntries zeroes a retired slice region so it stops pinning values.
func clearEntries[V any](es []entry[V]) {
	for i := range es {
		es[i] = entry[V]{}
	}
}
