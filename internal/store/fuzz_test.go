package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"condisc/internal/interval"
)

// FuzzLogstoreRecovery drives the WAL engine through a fuzzer-chosen op
// script, then damages the final segment (truncation or a bit flip, also
// fuzzer-chosen) and reopens. Recovery must never panic, and the
// recovered state must be a consistent prefix of history: every item
// carries a value that was actually written for its key, iteration is
// strictly ordered, and with no damage the state matches the model
// exactly.
func FuzzLogstoreRecovery(f *testing.F) {
	f.Add([]byte{0, 1, 4, 2, 8, 3, 1, 1, 9, 200}, uint16(0))
	f.Add([]byte{0, 1, 0, 1, 2, 1, 12, 7}, uint16(5))
	f.Add([]byte{3, 0, 0, 3, 1, 1, 0, 2}, uint16(300))
	f.Fuzz(func(t *testing.T, script []byte, damage uint16) {
		dir := t.TempDir()
		opts := LogOptions{SegmentBytes: 256, CompactAt: 1 << 10}
		s, err := OpenLog(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		const nkeys = 8
		model := map[int]string{}
		history := map[int]map[string]bool{} // every value ever written per key
		for i := 0; i < nkeys; i++ {
			history[i] = map[string]bool{"": true}
		}
		for i := 0; i+1 < len(script); i += 2 {
			op, kb := script[i], int(script[i+1])%nkeys
			key := fmt.Sprintf("k%d", kb)
			p := pointFor(kb)
			switch op % 4 {
			case 0, 1:
				v := fmt.Sprintf("v%d.%d", i, kb)
				if err := s.Put(p, key, []byte(v)); err != nil {
					t.Fatal(err)
				}
				model[kb] = v
				history[kb][v] = true
			case 2:
				if err := s.Delete(p, key); err != nil {
					t.Fatal(err)
				}
				delete(model, kb)
			case 3:
				seg := interval.Segment{Start: pointFor(kb), Len: 1 << 62}
				moved, err := s.SplitRange(seg)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.MergeFrom(moved); err != nil {
					t.Fatal(err)
				}
				if err := Destroy(moved); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		// Damage the final segment: 0 = none, odd = truncate, even = flip.
		ids, err := (&Log{dir: dir}).segmentIDs()
		if err != nil || len(ids) == 0 {
			t.Fatalf("segment listing: %v %v", ids, err)
		}
		last := filepath.Join(dir, segName(ids[len(ids)-1]))
		raw, err := os.ReadFile(last)
		if err != nil {
			t.Fatal(err)
		}
		damaged := damage != 0 && len(raw) > 0
		if damaged {
			if damage%2 == 1 {
				raw = raw[:len(raw)-min(int(damage)%len(raw)+1, len(raw))]
			} else {
				raw[int(damage)%len(raw)] ^= 0x40
			}
			if err := os.WriteFile(last, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		r, err := OpenLog(dir, opts)
		if err != nil {
			// Only acceptable for non-final-segment corruption, which this
			// harness never produces: recovery must succeed.
			t.Fatalf("recovery failed: %v", err)
		}
		defer r.Close()

		// Invariant 1: iteration is strictly (point, key)-ordered and
		// agrees with Len and Get.
		var got []Item
		if err := r.Ascend(interval.FullCircle, func(it Item) bool {
			got = append(got, it)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != r.Len() {
			t.Fatalf("Len %d != iterated %d", r.Len(), len(got))
		}
		for i, it := range got {
			if i > 0 {
				prev := got[i-1]
				if prev.Point > it.Point || (prev.Point == it.Point && prev.Key >= it.Key) {
					t.Fatalf("recovered iteration out of order: %v then %v", prev, it)
				}
			}
			v, ok, err := r.Get(it.Point, it.Key)
			if err != nil || !ok || string(v) != string(it.Value) {
				t.Fatalf("recovered item %q disagrees with Get: %q %v %v", it.Key, v, ok, err)
			}
			var kb int
			fmt.Sscanf(it.Key, "k%d", &kb)
			// Invariant 2: every recovered value was actually written.
			if !history[kb][string(it.Value)] {
				t.Fatalf("recovered %q = %q, never written", it.Key, it.Value)
			}
		}

		// Invariant 3: an undamaged log recovers the exact final state.
		if !damaged {
			if r.Len() != len(model) {
				t.Fatalf("clean recovery: %d items, model %d", r.Len(), len(model))
			}
			for kb, v := range model {
				got, ok, err := r.Get(pointFor(kb), fmt.Sprintf("k%d", kb))
				if err != nil || !ok || string(got) != v {
					t.Fatalf("clean recovery lost k%d: %q %v %v", kb, got, ok, err)
				}
			}
		}
	})
}
