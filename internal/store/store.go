// Package store provides the per-server ordered item storage behind the
// DHT (§2.1 item placement): items are keyed by (hash point, key) and kept
// in (point, key) order, so the item migration a Join or Leave triggers is
// a pure range move — O(log S + moved) — instead of a scan of the whole
// predecessor store.
//
// Two engines implement the interface:
//
//   - Mem: an in-memory chunked sorted list. Range splits move whole
//     chunks by pointer; only the two boundary chunks are copied.
//   - Log: a disk-backed engine with an append-only WAL, an in-memory
//     ordered index of disk locations, segment rotation and compaction,
//     and crash recovery on reopen (a torn or corrupt tail record is
//     truncated; everything acknowledged before it survives).
//
// The simulated DHT (package condisc) keeps one store per server; the TCP
// node (internal/p2p, cmd/dhnode) keeps one per process.
package store

import (
	"fmt"

	"condisc/internal/interval"
)

// Item is one stored item: the hash point it lives at, its key, and its
// value.
type Item struct {
	Point interval.Point
	Key   string
	Value []byte
}

// Store is an ordered item container keyed by (hash point, key).
//
// The three churn-path operations are the reason the interface exists:
// Ascend iterates a segment's items in (point, key) order, SplitRange
// moves a segment's items out as a new store of the same engine, and
// MergeFrom absorbs (and drains) another store. Implementations are safe
// for concurrent use; Ascend callbacks must not call back into the store.
type Store interface {
	// Put stores value under (p, key), replacing any previous value. The
	// value is copied (or persisted); the caller keeps ownership of its
	// slice.
	Put(p interval.Point, key string, value []byte) error
	// Get returns the value stored under (p, key). The returned slice must
	// not be modified.
	Get(p interval.Point, key string) (value []byte, ok bool, err error)
	// Delete removes (p, key); deleting an absent item is a no-op.
	Delete(p interval.Point, key string) error
	// Len returns the number of stored items.
	Len() int
	// Ascend calls fn for every item whose point lies in seg, in global
	// (point, key) order, until fn returns false.
	Ascend(seg interval.Segment, fn func(item Item) bool) error
	// SplitRange removes every item whose point lies in seg and returns
	// them as a new store of the same engine — the §2.1 Join step 3 range
	// handoff. Cost is O(log S + moved), independent of the items that
	// stay behind.
	SplitRange(seg interval.Segment) (Store, error)
	// DeleteRange removes every item whose point lies in seg without
	// reading any values — one range tombstone (Log) or chunk extraction
	// (Mem). It is the commit step of a streaming handoff: the items were
	// already copied elsewhere, only the removal remains.
	DeleteRange(seg interval.Segment) error
	// Cursor returns a batched iterator over seg's items in ring order
	// (clockwise from seg.Start). Unlike Ascend, a cursor acquires the
	// store lock only for the duration of each Next call, so a transfer
	// that interleaves network writes between batches never blocks the
	// store; mutations between batches are tolerated (the cursor re-seeks
	// by position). It is how a handoff streams a range in O(batch)
	// memory regardless of the range size.
	Cursor(seg interval.Segment) Cursor
	// MergeFrom moves every item of src into this store, leaving src
	// empty — the §2.1 Leave absorption. The source must not be mutated
	// concurrently with the merge; a crash or error mid-merge leaves
	// every item in at least one of the two stores (never in neither).
	MergeFrom(src Store) error
	// Close releases the store's resources (open files for disk engines).
	Close() error
}

// Open opens a store of the named engine: "mem" for the in-memory ordered
// store, "log" for the disk-backed WAL engine rooted at dir.
func Open(engine, dir string) (Store, error) {
	switch engine {
	case "mem":
		return NewMem(), nil
	case "log":
		if dir == "" {
			return nil, fmt.Errorf("store: engine %q requires a data directory", engine)
		}
		return OpenLog(dir, LogOptions{})
	default:
		return nil, fmt.Errorf("store: unknown engine %q (want mem or log)", engine)
	}
}

// Cursor is a batched, resumable iterator over one segment's items in
// ring order (clockwise from the segment start, (point, key)-ordered
// within each linear run). Obtained from Store.Cursor.
type Cursor interface {
	// Next returns up to max items and advances the cursor; it returns
	// (nil, nil) once the segment is exhausted. Each call re-acquires the
	// store lock, so callers may interleave arbitrary store operations —
	// or slow network writes — between batches.
	Next(max int) ([]Item, error)
	// Seek positions the cursor so that the next batch starts strictly
	// after (p, key) in ring order — the resume step of an interrupted
	// transfer. The position must lie inside the cursor's segment.
	Seek(p interval.Point, key string)
	// Close releases the cursor. The store itself stays open.
	Close() error
}

// conditionalPutter is the engines' atomic insert-if-absent path: the
// presence check and the write happen under one lock hold.
type conditionalPutter interface {
	putIfAbsent(p interval.Point, key string, value []byte) (bool, error)
}

// PutIfAbsent stores value under (p, key) only when the key is absent,
// reporting whether it wrote. Crash repair re-materializes lost items
// through this so a stale replica can never clobber a fresher write that
// landed after the absorb. The built-in engines check-and-insert under
// one lock; other stores fall back to get-then-put.
func PutIfAbsent(s Store, p interval.Point, key string, value []byte) (bool, error) {
	if cp, ok := s.(conditionalPutter); ok {
		return cp.putIfAbsent(p, key, value)
	}
	if _, ok, err := s.Get(p, key); err != nil {
		return false, err
	} else if ok {
		return false, nil
	}
	return true, s.Put(p, key, value)
}

// atomicDrainer is the engines' collect-and-remove fast path: both steps
// happen under one lock hold, so no concurrent write lands in the gap.
type atomicDrainer interface {
	drainItems(seg interval.Segment) ([]Item, error)
}

// Drain removes and returns all items of s whose point lies in seg, in
// (point, key) order — the wire-transfer form of a range move (the TCP
// node serializes the result into a Join response). On the built-in
// engines the collection and removal are one atomic step.
func Drain(s Store, seg interval.Segment) ([]Item, error) {
	if ad, ok := s.(atomicDrainer); ok {
		return ad.drainItems(seg)
	}
	var items []Item
	if err := s.Ascend(seg, func(it Item) bool {
		items = append(items, it)
		return true
	}); err != nil {
		return nil, err
	}
	for _, it := range items {
		if err := s.Delete(it.Point, it.Key); err != nil {
			return items, err
		}
	}
	return items, nil
}

// Clear removes every item of s without reading any values: one range
// tombstone (Log) or chunk drop (Mem). Use it when the items were already
// transferred and only the removal is needed (the TCP node's post-handoff
// drain).
func Clear(s Store) error {
	return s.DeleteRange(interval.FullCircle)
}

// destroyer is implemented by engines whose Destroy must reclaim more than
// Close does (the WAL engine removes its directory).
type destroyer interface {
	destroy() error
}

// Destroy closes s and reclaims its underlying storage: a drained
// disk-backed store deletes its files (the §2.1 Leave end state), an
// in-memory store just drops its content.
func Destroy(s Store) error {
	if d, ok := s.(destroyer); ok {
		return d.destroy()
	}
	return s.Close()
}
