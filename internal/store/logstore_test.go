package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"condisc/internal/interval"
)

func pointFor(i int) interval.Point { return interval.Point(uint64(i) * 0x9e3779b97f4a7c15) }

// TestLogstoreReopen: a cleanly closed store reopens with its full state.
func TestLogstoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLog(dir, LogOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		mustPut(t, s, pointFor(i), fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	for i := 0; i < 200; i += 3 {
		if err := s.Delete(pointFor(i), fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, "x", nil); err == nil {
		t.Fatal("put after Close succeeded")
	}

	r, err := OpenLog(dir, LogOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 200; i++ {
		v, ok, err := r.Get(pointFor(i), fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if ok {
				t.Fatalf("deleted k%d resurrected", i)
			}
			continue
		}
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q %v after reopen", i, v, ok)
		}
	}
}

// TestLogstoreKillAndReopen: abandoning the store without Close (the
// process-kill model: no flush, no shutdown path) loses nothing — every
// acknowledged Put/Delete survives reopening the directory.
func TestLogstoreKillAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLog(dir, LogOptions{SegmentBytes: 1 << 10, CompactAt: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	model := map[string]string{}
	for i := 0; i < 600; i++ {
		k := fmt.Sprintf("k%d", i%97) // heavy overwrite traffic: rotation + compaction
		v := fmt.Sprintf("v%d", i)
		mustPut(t, s, pointFor(i%97), k, v)
		model[k] = v
		if i%11 == 0 {
			dk := fmt.Sprintf("k%d", (i+3)%97)
			if err := s.Delete(pointFor((i+3)%97), dk); err != nil {
				t.Fatal(err)
			}
			delete(model, dk)
		}
	}
	// No Close: the *Log is simply abandoned, like a killed process.
	r, err := OpenLog(dir, LogOptions{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(model) {
		t.Fatalf("recovered %d items, want %d", r.Len(), len(model))
	}
	for k, v := range model {
		var i int
		fmt.Sscanf(k, "k%d", &i)
		got, ok, err := r.Get(pointFor(i), k)
		if err != nil || !ok || string(got) != v {
			t.Fatalf("acknowledged write %q lost: %q %v %v", k, got, ok, err)
		}
	}
	s.closeFiles() // release the abandoned handles
}

// TestLogstoreTornTail: a record torn mid-write (partial final frame) is
// truncated on reopen; every record before it survives.
func TestLogstoreTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		mustPut(t, s, pointFor(i), fmt.Sprintf("k%02d", i), fmt.Sprintf("value-%d", i))
	}
	s.Close()

	// Tear the last record: chop a few bytes off the final segment.
	seg := filepath.Join(dir, segName(1))
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	r, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatalf("recovery failed on torn tail: %v", err)
	}
	defer r.Close()
	if r.Len() != 49 {
		t.Fatalf("recovered %d items, want 49 (all but the torn record)", r.Len())
	}
	for i := 0; i < 49; i++ {
		v, ok, _ := r.Get(pointFor(i), fmt.Sprintf("k%02d", i))
		if !ok || string(v) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("k%02d lost to an unrelated torn tail", i)
		}
	}
	// The store keeps accepting writes at the truncation point.
	mustPut(t, r, pointFor(49), "k49", "rewritten")
	v, ok, _ := r.Get(pointFor(49), "k49")
	if !ok || !bytes.Equal(v, []byte("rewritten")) {
		t.Fatal("write after tail truncation lost")
	}
}

// TestLogstoreCorruptTail: a bit flip in the final segment stops replay at
// the damaged record (CRC) instead of serving corrupt data.
func TestLogstoreCorruptTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustPut(t, s, pointFor(i), fmt.Sprintf("k%d", i), "vvvvvvvv")
	}
	s.Close()
	seg := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff // flip a bit inside the last record's value
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatalf("recovery failed on corrupt tail: %v", err)
	}
	defer r.Close()
	if r.Len() != 9 {
		t.Fatalf("recovered %d items, want 9 (corrupt record dropped)", r.Len())
	}
	if _, ok, _ := r.Get(pointFor(9), "k9"); ok {
		t.Fatal("corrupt record served")
	}
}

// TestLogstoreCompaction: overwrite churn is reclaimed — the on-disk
// footprint stays bounded by the live set, and no data is lost.
func TestLogstoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLog(dir, LogOptions{SegmentBytes: 1 << 10, CompactAt: 1 << 11})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const keys = 16
	for round := 0; round < 400; round++ {
		k := fmt.Sprintf("k%d", round%keys)
		mustPut(t, s, pointFor(round%keys), k, fmt.Sprintf("round-%d-padding-padding", round))
	}
	var disk int64
	names, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	for _, n := range names {
		st, err := os.Stat(n)
		if err != nil {
			t.Fatal(err)
		}
		disk += st.Size()
	}
	// 400 records were written (~50 bytes each); without compaction the
	// directory would hold ~20 KiB. With it, dead bytes stay under the
	// CompactAt threshold plus one live set.
	if disk > 1<<12 {
		t.Fatalf("compaction not reclaiming: %d bytes on disk for %d live items", disk, keys)
	}
	if s.Len() != keys {
		t.Fatalf("Len = %d, want %d", s.Len(), keys)
	}
	for i := 0; i < keys; i++ {
		v, ok, err := s.Get(pointFor(i), fmt.Sprintf("k%d", i))
		if err != nil || !ok || !bytes.HasPrefix(v, []byte("round-")) {
			t.Fatalf("k%d lost across compaction: %q %v %v", i, v, ok, err)
		}
	}
	// Compacted state must also survive reopen.
	s.Close()
	r, err := OpenLog(dir, LogOptions{SegmentBytes: 1 << 10, CompactAt: 1 << 11})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != keys {
		t.Fatalf("reopen after compaction: Len = %d, want %d", r.Len(), keys)
	}
}

// TestLogstoreSplitIndependence: a split-off store lives in its own
// directory — destroying the parent does not touch it, and vice versa.
func TestLogstoreSplitIndependence(t *testing.T) {
	root := t.TempDir()
	s, err := OpenLog(filepath.Join(root, "parent"), LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		mustPut(t, s, interval.Point(uint64(i)<<58), fmt.Sprintf("k%02d", i), "v")
	}
	moved, err := s.SplitRange(interval.Segment{Start: 0, Len: 1 << 63})
	if err != nil {
		t.Fatal(err)
	}
	child := moved.(*Log)
	if filepath.Dir(child.Dir()) != root {
		t.Fatalf("split store not a sibling: %s", child.Dir())
	}
	if err := Destroy(s); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "parent")); !os.IsNotExist(err) {
		t.Fatal("parent directory survived Destroy")
	}
	if child.Len() != 32 {
		t.Fatalf("child lost items after parent Destroy: %d", child.Len())
	}
	v, ok, err := child.Get(1<<58, "k01")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("child read after parent Destroy: %q %v %v", v, ok, err)
	}
	if err := Destroy(child); err != nil {
		t.Fatal(err)
	}
}

// TestLogstoreClearReclaimsDisk: a bulk Clear (the post-handoff drain of
// a leaving node) triggers compaction directly — the dead WAL must not
// sit on disk waiting for a Put/Delete that will never come.
func TestLogstoreClearReclaimsDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLog(dir, LogOptions{SegmentBytes: 1 << 10, CompactAt: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 200; i++ {
		mustPut(t, s, pointFor(i), fmt.Sprintf("k%d", i), "some-padding-some-padding-some-padding")
	}
	if err := Clear(s); err != nil {
		t.Fatal(err)
	}
	var disk int64
	names, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	for _, n := range names {
		st, err := os.Stat(n)
		if err != nil {
			t.Fatal(err)
		}
		disk += st.Size()
	}
	if disk > 256 {
		t.Fatalf("Clear left %d bytes of dead WAL on disk", disk)
	}
	if s.Len() != 0 {
		t.Fatalf("Clear left %d items", s.Len())
	}
}

// TestLogstoreSevenDigitSegmentIDs: segment ids beyond six digits (a
// long-lived store: compaction consumes one id per pass) must be listed,
// replayed, and appended after — a width-limited name parse used to skip
// them silently on reopen.
func TestLogstoreSevenDigitSegmentIDs(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, 1, "early", "e")
	// Jump the active segment past the six-digit boundary, as a few
	// million rotations/compactions eventually would.
	s.mu.Lock()
	if err := s.openActive(1_000_000); err != nil {
		t.Fatal(err)
	}
	s.mu.Unlock()
	mustPut(t, s, 2, "late", "l")
	s.Close()

	r, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("recovered %d items, want 2 (7-digit segment skipped?)", r.Len())
	}
	if v, ok, _ := r.Get(2, "late"); !ok || string(v) != "l" {
		t.Fatal("item in 7-digit segment lost on reopen")
	}
	if r.activeID < 1_000_000 {
		t.Fatalf("append reopened at id %d, below the newest segment", r.activeID)
	}
}

// TestLogstoreFsync: the Fsync option round-trips (behavioural smoke; the
// durability itself needs power loss to observe).
func TestLogstoreFsync(t *testing.T) {
	s, err := OpenLog(t.TempDir(), LogOptions{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustPut(t, s, 1, "k", "v")
	if v, ok, _ := s.Get(1, "k"); !ok || string(v) != "v" {
		t.Fatal("fsync put lost")
	}
}
