package store

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"condisc/internal/interval"
)

// engines lists every Store implementation under one constructor so each
// test runs identically against both.
func engines(t *testing.T) map[string]func() Store {
	t.Helper()
	return map[string]func() Store{
		"mem": func() Store { return NewMem() },
		"log": func() Store {
			// Tiny segments + eager compaction so the differential tests
			// exercise rotation and compaction, not just the happy path.
			s, err := OpenLog(t.TempDir(), LogOptions{SegmentBytes: 1 << 10, CompactAt: 1 << 11})
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
}

func forEachEngine(t *testing.T, fn func(t *testing.T, open func() Store)) {
	for name, open := range engines(t) {
		t.Run(name, func(t *testing.T) { fn(t, open) })
	}
}

func mustPut(t *testing.T, s Store, p interval.Point, key, val string) {
	t.Helper()
	if err := s.Put(p, key, []byte(val)); err != nil {
		t.Fatalf("put %q: %v", key, err)
	}
}

func TestStoreBasic(t *testing.T) {
	forEachEngine(t, func(t *testing.T, open func() Store) {
		s := open()
		defer s.Close()
		mustPut(t, s, 10, "a", "1")
		mustPut(t, s, 20, "b", "2")
		mustPut(t, s, 10, "a", "1'") // overwrite
		if n := s.Len(); n != 2 {
			t.Fatalf("Len = %d, want 2", n)
		}
		v, ok, err := s.Get(10, "a")
		if err != nil || !ok || string(v) != "1'" {
			t.Fatalf("get a = %q %v %v", v, ok, err)
		}
		if _, ok, _ := s.Get(10, "zz"); ok {
			t.Fatal("phantom key")
		}
		if _, ok, _ := s.Get(11, "a"); ok {
			t.Fatal("key found at the wrong point")
		}
		if err := s.Delete(20, "b"); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(20, "b"); err != nil { // absent delete is a no-op
			t.Fatal(err)
		}
		if n := s.Len(); n != 1 {
			t.Fatalf("Len after delete = %d, want 1", n)
		}
		if err := s.Put(30, "empty", nil); err != nil { // empty values are legal
			t.Fatal(err)
		}
		v, ok, err = s.Get(30, "empty")
		if err != nil || !ok || len(v) != 0 {
			t.Fatalf("empty value round-trip = %q %v %v", v, ok, err)
		}
	})
}

// TestStoreAscendOrdered: Ascend yields (point, key) order, and a segment
// filter (including wrapping segments) matches a reference filter.
func TestStoreAscendOrdered(t *testing.T) {
	forEachEngine(t, func(t *testing.T, open func() Store) {
		s := open()
		defer s.Close()
		rng := rand.New(rand.NewPCG(7, 7))
		type ik struct {
			p   interval.Point
			key string
		}
		ref := map[ik]string{}
		for i := 0; i < 500; i++ {
			p := interval.Point(rng.Uint64())
			k := fmt.Sprintf("k%d", i%300) // some point-collisions via reuse
			v := fmt.Sprintf("v%d", i)
			mustPut(t, s, p, k, v)
			ref[ik{p, k}] = v
		}
		segs := []interval.Segment{
			interval.FullCircle,
			{Start: 1 << 62, Len: 1 << 63},
			{Start: ^interval.Point(0) - 1000, Len: 1 << 62}, // wraps
			{Start: 5, Len: 1},
		}
		for _, seg := range segs {
			var got []Item
			if err := s.Ascend(seg, func(it Item) bool { got = append(got, it); return true }); err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(got); i++ {
				a, b := got[i-1], got[i]
				if a.Point > b.Point || (a.Point == b.Point && a.Key >= b.Key) {
					t.Fatalf("seg %v: out of order at %d: %v then %v", seg, i, a, b)
				}
			}
			want := 0
			for key, v := range ref {
				if seg.Contains(key.p) {
					want++
					found := false
					for _, it := range got {
						if it.Point == key.p && it.Key == key.key {
							if string(it.Value) != v {
								t.Fatalf("seg %v: %q = %q, want %q", seg, key.key, it.Value, v)
							}
							found = true
						}
					}
					if !found {
						t.Fatalf("seg %v: missing (%v, %q)", seg, key.p, key.key)
					}
				}
			}
			if len(got) != want {
				t.Fatalf("seg %v: Ascend yielded %d items, want %d", seg, len(got), want)
			}
		}
	})
}

// modelStore is the reference implementation the engines are checked
// against: a flat map plus brute-force range logic.
type modelStore struct {
	m map[string]string // "point/key" -> value
}

func modelKey(p interval.Point, key string) string { return fmt.Sprintf("%020d/%s", uint64(p), key) }

func (ms *modelStore) put(p interval.Point, key, val string) { ms.m[modelKey(p, key)] = val }
func (ms *modelStore) del(p interval.Point, key string)      { delete(ms.m, modelKey(p, key)) }

func (ms *modelStore) split(seg interval.Segment) *modelStore {
	out := &modelStore{m: map[string]string{}}
	for mk, v := range ms.m {
		var pu uint64
		var key string
		fmt.Sscanf(mk, "%020d/", &pu)
		key = mk[21:]
		if seg.Contains(interval.Point(pu)) {
			out.m[modelKey(interval.Point(pu), key)] = v
			delete(ms.m, mk)
		}
	}
	return out
}

func (ms *modelStore) merge(src *modelStore) {
	for k, v := range src.m {
		ms.m[k] = v
	}
	src.m = map[string]string{}
}

// checkEqual verifies a store's full content against the model.
func checkEqual(t *testing.T, tag string, s Store, ms *modelStore) {
	t.Helper()
	if s.Len() != len(ms.m) {
		t.Fatalf("%s: Len = %d, model %d", tag, s.Len(), len(ms.m))
	}
	var keys []string
	for k := range ms.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	err := s.Ascend(interval.FullCircle, func(it Item) bool {
		if i >= len(keys) {
			t.Fatalf("%s: extra item (%v, %q)", tag, it.Point, it.Key)
		}
		want := keys[i]
		if got := modelKey(it.Point, it.Key); got != want {
			t.Fatalf("%s: item %d = %s, model %s", tag, i, got, want)
		}
		if string(it.Value) != ms.m[want] {
			t.Fatalf("%s: %s = %q, model %q", tag, want, it.Value, ms.m[want])
		}
		i++
		return true
	})
	if err != nil {
		t.Fatalf("%s: ascend: %v", tag, err)
	}
	if i != len(keys) {
		t.Fatalf("%s: ascend stopped at %d of %d", tag, i, len(keys))
	}
}

// TestStoreSplitMergeDifferential drives each engine through a random
// trace of puts, deletes, range splits, and merges, comparing against the
// model after every split/merge — the churn path the DHT exercises.
func TestStoreSplitMergeDifferential(t *testing.T) {
	forEachEngine(t, func(t *testing.T, open func() Store) {
		s := open()
		defer s.Close()
		ms := &modelStore{m: map[string]string{}}
		rng := rand.New(rand.NewPCG(11, 13))
		for op := 0; op < 1200; op++ {
			switch r := rng.IntN(10); {
			case r < 5:
				p := interval.Point(rng.Uint64N(1<<16) << 48) // clustered points: exercises chunk boundaries
				k := fmt.Sprintf("k%d", rng.IntN(400))
				v := fmt.Sprintf("v%d", op)
				mustPut(t, s, p, k, v)
				ms.put(p, k, v)
			case r < 7:
				p := interval.Point(rng.Uint64N(1<<16) << 48)
				k := fmt.Sprintf("k%d", rng.IntN(400))
				if err := s.Delete(p, k); err != nil {
					t.Fatal(err)
				}
				ms.del(p, k)
			default:
				seg := interval.Segment{Start: interval.Point(rng.Uint64()), Len: rng.Uint64N(1 << 63)}
				moved, err := s.SplitRange(seg)
				if err != nil {
					t.Fatal(err)
				}
				mm := ms.split(seg)
				checkEqual(t, fmt.Sprintf("op %d split", op), moved, mm)
				checkEqual(t, fmt.Sprintf("op %d remainder", op), s, ms)
				if err := s.MergeFrom(moved); err != nil {
					t.Fatal(err)
				}
				ms.merge(mm)
				if moved.Len() != 0 {
					t.Fatalf("op %d: merge left %d items in src", op, moved.Len())
				}
				if err := Destroy(moved); err != nil {
					t.Fatal(err)
				}
			}
		}
		checkEqual(t, "final", s, ms)
	})
}

// TestStoreSplitWrapsAndFullCircle: explicit wrap-around and full-circle
// splits, plus cross-engine MergeFrom.
func TestStoreSplitWrapsAndFullCircle(t *testing.T) {
	forEachEngine(t, func(t *testing.T, open func() Store) {
		s := open()
		defer s.Close()
		for i := 0; i < 64; i++ {
			mustPut(t, s, interval.Point(uint64(i)<<58), fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i))
		}
		// Wrap: top quarter plus bottom quarter.
		seg := interval.Segment{Start: 3 << 62, Len: 1 << 63}
		moved, err := s.SplitRange(seg)
		if err != nil {
			t.Fatal(err)
		}
		if moved.Len() != 32 || s.Len() != 32 {
			t.Fatalf("wrap split: moved %d, kept %d, want 32/32", moved.Len(), s.Len())
		}
		moved.Ascend(interval.FullCircle, func(it Item) bool {
			if !seg.Contains(it.Point) {
				t.Fatalf("moved item %q outside segment", it.Key)
			}
			return true
		})
		if err := s.MergeFrom(moved); err != nil {
			t.Fatal(err)
		}
		Destroy(moved)

		// Full circle drains everything.
		all, err := s.SplitRange(interval.FullCircle)
		if err != nil {
			t.Fatal(err)
		}
		if all.Len() != 64 || s.Len() != 0 {
			t.Fatalf("full-circle split: moved %d, kept %d", all.Len(), s.Len())
		}
		// Cross-engine merge: absorb into a fresh Mem regardless of src engine.
		m := NewMem()
		if err := m.MergeFrom(all); err != nil {
			t.Fatal(err)
		}
		if m.Len() != 64 || all.Len() != 0 {
			t.Fatalf("cross-engine merge: dst %d, src %d", m.Len(), all.Len())
		}
		v, ok, _ := m.Get(5<<58, "k05")
		if !ok || !bytes.Equal(v, []byte("v5")) {
			t.Fatalf("item lost in cross-engine merge: %q %v", v, ok)
		}
		Destroy(all)
	})
}

// TestStoreSameEngineIdentity: merging a store into itself is a no-op.
func TestStoreSameEngineIdentity(t *testing.T) {
	forEachEngine(t, func(t *testing.T, open func() Store) {
		s := open()
		defer s.Close()
		mustPut(t, s, 1, "a", "x")
		if err := s.MergeFrom(s); err != nil {
			t.Fatal(err)
		}
		if s.Len() != 1 {
			t.Fatalf("self-merge changed Len to %d", s.Len())
		}
	})
}

// TestDrain: Drain returns seg's items in order and removes them.
func TestDrain(t *testing.T) {
	forEachEngine(t, func(t *testing.T, open func() Store) {
		s := open()
		defer s.Close()
		for i := 0; i < 32; i++ {
			mustPut(t, s, interval.Point(uint64(i)<<59), fmt.Sprintf("k%02d", i), "v")
		}
		seg := interval.Segment{Start: 1 << 62, Len: 1 << 62}
		items, err := Drain(s, seg)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			if !seg.Contains(it.Point) {
				t.Fatalf("drained %q outside segment", it.Key)
			}
		}
		if len(items)+s.Len() != 32 {
			t.Fatalf("drain lost items: %d + %d != 32", len(items), s.Len())
		}
		if err := s.Ascend(seg, func(it Item) bool { t.Fatalf("item %q survived drain", it.Key); return false }); err != nil {
			t.Fatal(err)
		}
	})
}

// TestClear: Clear empties a store in one bulk drop, without duplicating
// items anywhere.
func TestClear(t *testing.T) {
	forEachEngine(t, func(t *testing.T, open func() Store) {
		s := open()
		defer s.Close()
		for i := 0; i < 50; i++ {
			mustPut(t, s, interval.Point(uint64(i)<<57), fmt.Sprintf("k%d", i), "v")
		}
		if err := Clear(s); err != nil {
			t.Fatal(err)
		}
		if s.Len() != 0 {
			t.Fatalf("Clear left %d items", s.Len())
		}
		mustPut(t, s, 7, "again", "x") // the store stays usable
		if v, ok, _ := s.Get(7, "again"); !ok || string(v) != "x" {
			t.Fatal("put after Clear lost")
		}
	})
}

// TestConcurrentOppositeMerges: a.MergeFrom(b) racing b.MergeFrom(a) must
// neither deadlock nor lose items. Only the Mem engine promises item
// conservation here (its same-engine merge steals the source list in one
// atomic step); Log documents that a merge's source must not be mutated
// concurrently, trading that atomicity for crash-safe copy-before-drop
// ordering.
func TestConcurrentOppositeMerges(t *testing.T) {
	t.Run("mem", func(t *testing.T) {
		open := func() Store { return NewMem() }
		a, b := open(), open()
		defer a.Close()
		defer b.Close()
		const each = 200
		for i := 0; i < each; i++ {
			mustPut(t, a, interval.Point(uint64(i)<<54), fmt.Sprintf("a%03d", i), "v")
			mustPut(t, b, interval.Point(uint64(i)<<54|1), fmt.Sprintf("b%03d", i), "v")
		}
		done := make(chan error, 2)
		go func() { done <- a.MergeFrom(b) }()
		go func() { done <- b.MergeFrom(a) }()
		for i := 0; i < 2; i++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		if total := a.Len() + b.Len(); total != 2*each {
			t.Fatalf("concurrent merges conserved %d of %d items", total, 2*each)
		}
	})
}

func TestOpenEngine(t *testing.T) {
	if _, err := Open("bogus", ""); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := Open("log", ""); err == nil {
		t.Fatal("log engine accepted without a directory")
	}
	m, err := Open("mem", "")
	if err != nil || m == nil {
		t.Fatalf("mem open: %v", err)
	}
	l, err := Open("log", t.TempDir())
	if err != nil {
		t.Fatalf("log open: %v", err)
	}
	l.Close()
}
