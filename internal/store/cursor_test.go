package store

import (
	"fmt"
	"testing"

	"condisc/internal/interval"
)

// cursorEngines opens one store per engine for a subtest sweep.
func cursorEngines(t *testing.T) map[string]Store {
	t.Helper()
	ls, err := OpenLog(t.TempDir(), LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ls.Close() })
	return map[string]Store{"mem": NewMem(), "log": ls}
}

// TestCursorRingOrder: a cursor walks a wrapping segment clockwise from
// the segment start, in batches, visiting exactly the segment's items.
func TestCursorRingOrder(t *testing.T) {
	for name, s := range cursorEngines(t) {
		t.Run(name, func(t *testing.T) {
			// 64 items spread over the whole circle.
			const n = 64
			step := ^uint64(0)/n + 1
			for i := 0; i < n; i++ {
				if err := s.Put(interval.Point(uint64(i)*step), fmt.Sprintf("k%02d", i), []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			// A wrapping segment: starts at item 48, wraps to item 16.
			seg := interval.Segment{Start: interval.Point(48 * step), Len: 32 * step}
			cur := s.Cursor(seg)
			defer cur.Close()
			var got []Item
			for {
				batch, err := cur.Next(5)
				if err != nil {
					t.Fatal(err)
				}
				if batch == nil {
					break
				}
				if len(batch) > 5 {
					t.Fatalf("batch of %d exceeds max 5", len(batch))
				}
				got = append(got, batch...)
			}
			if len(got) != 32 {
				t.Fatalf("cursor visited %d items, want 32", len(got))
			}
			for i, it := range got {
				want := (48 + i) % n
				if it.Key != fmt.Sprintf("k%02d", want) {
					t.Fatalf("position %d: got %s, want k%02d (ring order violated)", i, it.Key, want)
				}
				if i > 0 {
					a := interval.CWDist(seg.Start, got[i-1].Point)
					b := interval.CWDist(seg.Start, it.Point)
					if b < a {
						t.Fatalf("clockwise order violated at %d", i)
					}
				}
			}
		})
	}
}

// TestCursorSeekResumes: Seek(p, key) continues strictly after that
// position — the resume step of an interrupted streaming handoff — and a
// fresh cursor resumed at item k yields exactly the items a full walk
// yields after position k.
func TestCursorSeekResumes(t *testing.T) {
	for name, s := range cursorEngines(t) {
		t.Run(name, func(t *testing.T) {
			const n = 40
			step := ^uint64(0)/n + 1
			for i := 0; i < n; i++ {
				if err := s.Put(interval.Point(uint64(i)*step), fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			seg := interval.Segment{Start: interval.Point(30 * step), Len: 20 * step} // wraps
			full := drainCursor(t, s.Cursor(seg))
			for _, k := range []int{0, 1, 7, len(full) - 2, len(full) - 1} {
				cur := s.Cursor(seg)
				cur.Seek(full[k].Point, full[k].Key)
				rest := drainCursor(t, cur)
				if len(rest) != len(full)-k-1 {
					t.Fatalf("resume after %d: %d items, want %d", k, len(rest), len(full)-k-1)
				}
				for i, it := range rest {
					if it.Key != full[k+1+i].Key {
						t.Fatalf("resume after %d diverged at %d: %s vs %s", k, i, it.Key, full[k+1+i].Key)
					}
				}
			}
			// Same-point multi-key resume: two keys at one point.
			p := interval.Point(5 * step)
			s.Put(p, "aa", []byte("1"))
			s.Put(p, "ab", []byte("2"))
			cur := s.Cursor(interval.FullCircle)
			cur.Seek(p, "aa")
			next, err := cur.Next(1)
			if err != nil || len(next) != 1 || next[0].Key != "ab" {
				t.Fatalf("same-point resume: got %v %v, want key ab", next, err)
			}
		})
	}
}

// TestCursorToleratesMutation: deleting already-visited items (the
// sender-side commit of a handoff) between batches does not disturb the
// remaining walk.
func TestCursorToleratesMutation(t *testing.T) {
	for name, s := range cursorEngines(t) {
		t.Run(name, func(t *testing.T) {
			const n = 30
			step := ^uint64(0)/n + 1
			for i := 0; i < n; i++ {
				if err := s.Put(interval.Point(uint64(i)*step), fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			cur := s.Cursor(interval.FullCircle)
			defer cur.Close()
			seen := 0
			for {
				batch, err := cur.Next(4)
				if err != nil {
					t.Fatal(err)
				}
				if batch == nil {
					break
				}
				seen += len(batch)
				for _, it := range batch { // delete behind the cursor
					if err := s.Delete(it.Point, it.Key); err != nil {
						t.Fatal(err)
					}
				}
			}
			if seen != n {
				t.Fatalf("cursor saw %d items under concurrent deletes, want %d", seen, n)
			}
			if s.Len() != 0 {
				t.Fatalf("%d items left after deleting everything visited", s.Len())
			}
		})
	}
}

// TestDeleteRange: the exported bulk removal drops exactly the segment,
// and on the log engine survives a reopen (the tombstone is durable).
func TestDeleteRange(t *testing.T) {
	dir := t.TempDir()
	ls, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]Store{"mem": NewMem(), "log": ls} {
		t.Run(name, func(t *testing.T) {
			const n = 32
			step := ^uint64(0)/n + 1
			for i := 0; i < n; i++ {
				if err := s.Put(interval.Point(uint64(i)*step), fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			seg := interval.Segment{Start: interval.Point(8 * step), Len: 8 * step}
			if err := s.DeleteRange(seg); err != nil {
				t.Fatal(err)
			}
			if s.Len() != n-8 {
				t.Fatalf("DeleteRange left %d items, want %d", s.Len(), n-8)
			}
			s.Ascend(interval.FullCircle, func(it Item) bool {
				if seg.Contains(it.Point) {
					t.Fatalf("item %s survived DeleteRange", it.Key)
				}
				return true
			})
		})
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 24 {
		t.Fatalf("reopened log has %d items, want 24 (range tombstone not durable)", r.Len())
	}
}

func drainCursor(t *testing.T, cur Cursor) []Item {
	t.Helper()
	defer cur.Close()
	var out []Item
	for {
		batch, err := cur.Next(7)
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			return out
		}
		out = append(out, batch...)
	}
}
