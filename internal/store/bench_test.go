package store

import (
	"fmt"
	"sync"
	"testing"

	"condisc/internal/interval"
)

// The split benchmark is the acceptance gate for the ordered-store design:
// the cost of moving a fixed-size range out of a store must not grow with
// the items that stay behind. CI sweeps resident = 10k, 100k, 1M at a
// fixed 1024-item moved range and fails if the cost grows more than 1.5×
// (see .github/workflows/ci.yml).

const splitMoved = 1024

var (
	splitMu     sync.Mutex
	splitStores = map[int]*Mem{}
)

// splitStore builds (once per size) a Mem store with resident items at
// evenly spaced points, so a range of width moved·step holds exactly
// `moved` items.
func splitStore(b *testing.B, resident int) (*Mem, interval.Segment) {
	splitMu.Lock()
	defer splitMu.Unlock()
	step := ^uint64(0)/uint64(resident) + 1
	seg := interval.Segment{
		Start: interval.Point(uint64(resident/2) * step),
		Len:   splitMoved * step,
	}
	if s, ok := splitStores[resident]; ok {
		return s, seg
	}
	s := NewMem()
	val := []byte("sixteen-byte-val")
	for i := 0; i < resident; i++ {
		if err := s.Put(interval.Point(uint64(i)*step), fmt.Sprintf("k%09d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	splitStores[resident] = s
	return s, seg
}

var residentSizes = []struct {
	name string
	n    int
}{{"resident=10k", 10_000}, {"resident=100k", 100_000}, {"resident=1M", 1_000_000}}

// BenchmarkStoreSplit measures one SplitRange of a fixed 1024-item range
// per iteration (the merge restoring the store is untimed). Flat across
// the resident sweep = item migration independent of store size.
func BenchmarkStoreSplit(b *testing.B) {
	for _, sz := range residentSizes {
		b.Run(sz.name, func(b *testing.B) {
			s, seg := splitStore(b, sz.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				moved, err := s.SplitRange(seg)
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				if n := moved.Len(); n != splitMoved {
					b.Fatalf("split moved %d items, want %d", n, splitMoved)
				}
				if err := s.MergeFrom(moved); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkStorePutGet sweeps point writes and reads over both engines at
// a 64k-item working set (the log engine pays one WAL append per put and
// one pread per get).
func BenchmarkStorePutGet(b *testing.B) {
	const n = 65536
	step := ^uint64(0)/n + 1
	key := func(i int) string { return fmt.Sprintf("k%09d", i) }
	engines := []struct {
		name string
		open func(b *testing.B) Store
	}{
		{"engine=mem", func(b *testing.B) Store { return NewMem() }},
		{"engine=log", func(b *testing.B) Store {
			s, err := OpenLog(b.TempDir(), LogOptions{})
			if err != nil {
				b.Fatal(err)
			}
			return s
		}},
	}
	for _, eng := range engines {
		b.Run(eng.name, func(b *testing.B) {
			s := eng.open(b)
			defer s.Close()
			val := []byte("sixteen-byte-val")
			for i := 0; i < n; i++ {
				if err := s.Put(interval.Point(uint64(i)*step), key(i), val); err != nil {
					b.Fatal(err)
				}
			}
			b.Run("op=put", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					j := i % n
					if err := s.Put(interval.Point(uint64(j)*step), key(j), val); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("op=get", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					j := (i * 7919) % n
					if _, ok, err := s.Get(interval.Point(uint64(j)*step), key(j)); !ok || err != nil {
						b.Fatalf("miss at %d: %v", j, err)
					}
				}
			})
		})
	}
}
