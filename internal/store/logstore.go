package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"condisc/internal/interval"
	"condisc/internal/telemetry"
)

// WAL lifecycle telemetry, recorded against the process-wide registry:
// the store layer has no per-instance registry plumbing (dhnode and the
// simulator both want one aggregate view), and the counters are pure
// observers — nothing reads them back, so determinism is untouched.
var (
	walRotations   = telemetry.Default.Counter("condisc_store_wal_rotations_total")
	walCompactions = telemetry.Default.Counter("condisc_store_wal_compactions_total")
	walCompactedBy = telemetry.Default.Counter("condisc_store_wal_compacted_bytes_total")
)

// Log is the disk-backed engine: every mutation is one CRC-framed record
// appended to a write-ahead log, and an in-memory ordered index maps
// (point, key) to the value's disk location. Reads cost one pread; range
// moves extract the index range (chunk moves, like Mem) plus O(moved) WAL
// appends on the receiving store and a single range tombstone here.
//
// WAL layout: dir/wal-NNNNNN.log segment files, appended in id order. A
// segment rotates at SegmentBytes; when dead bytes (overwritten, deleted,
// or split-away records) pass CompactAt and outweigh live bytes, the live
// records are rewritten into fresh segments and the old files deleted.
//
// Record framing (little-endian):
//
//	u32 bodyLen | u32 crc32(body) | body
//
// bodies:
//
//	opPut:      u8 op | u64 point | u32 klen | key | value
//	opDelete:   u8 op | u64 point | u32 klen | key
//	opDelRange: u8 op | u64 start | u64 len      (segment; Len 0 = full circle)
//
// Recovery replays segments in id order. A torn or corrupt record in the
// final segment marks the crash point: the tail is truncated and every
// record before it — every acknowledged write — survives. A corrupt record
// in an earlier segment is reported as an error (real corruption, not a
// crash artifact).
type Log struct {
	dir  string
	opts LogOptions

	mu        sync.Mutex
	idx       list[lloc]
	active    *os.File
	activeID  uint32
	activeOff int64
	readers   map[uint32]*os.File
	liveBytes int64 // record bytes still reachable through the index
	deadBytes int64 // record bytes overwritten, deleted, or tombstoned
	closed    bool
}

// LogOptions tunes the WAL engine; the zero value selects the defaults.
type LogOptions struct {
	// SegmentBytes is the rotation threshold (default 4 MiB).
	SegmentBytes int64
	// CompactAt is the dead-byte volume that arms compaction (default
	// 1 MiB); compaction fires once dead bytes also outweigh live bytes.
	// Negative disables compaction.
	CompactAt int64
	// Fsync syncs the active segment after every mutation. Off by default:
	// acknowledged writes then survive a process kill (the data is in the
	// kernel page cache) but not a power failure.
	Fsync bool
}

func (o LogOptions) withDefaults() LogOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CompactAt == 0 {
		o.CompactAt = 1 << 20
	}
	return o
}

// lloc is a value's disk location.
type lloc struct {
	seg  uint32 // segment id
	off  int64  // byte offset of the value within the segment file
	vlen uint32
}

const (
	logOpPut      = 1
	logOpDelete   = 2
	logOpDelRange = 3

	frameHeaderLen = 8         // u32 bodyLen + u32 crc
	putHeaderLen   = 1 + 8 + 4 // op + point + klen
	maxBodyLen     = 1 << 30   // sanity bound for replay
	segPrefix      = "wal-"    // segment file name: wal-NNNNNN.log
	segSuffix      = ".log"
)

// frameBytes is the on-disk footprint of a put record.
func frameBytes(klen, vlen int) int64 {
	return int64(frameHeaderLen + putHeaderLen + klen + vlen)
}

func segName(id uint32) string { return fmt.Sprintf("%s%06d%s", segPrefix, id, segSuffix) }

// OpenLog opens (creating if necessary) a WAL store rooted at dir and
// replays its segments, recovering every acknowledged write.
func OpenLog(dir string, opts LogOptions) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	s := &Log{dir: dir, opts: opts, readers: map[uint32]*os.File{}}

	ids, err := s.segmentIDs()
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		if err := s.replaySegment(id, i == len(ids)-1); err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	last := uint32(1)
	if len(ids) > 0 {
		last = ids[len(ids)-1]
	}
	if err := s.openActive(last); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

// segmentIDs lists the segment ids present in the directory, ascending.
// Parsing strips the fixed prefix/suffix rather than Sscanf-ing the %06d
// pattern: the format's 06 is a minimum width, so a long-lived store's
// ids grow past six digits and a width-limited scan would silently skip
// those segments on reopen.
func (s *Log) segmentIDs() ([]uint32, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return nil, err
	}
	var ids []uint32
	for _, name := range names {
		base := filepath.Base(name)
		num := strings.TrimSuffix(strings.TrimPrefix(base, segPrefix), segSuffix)
		if id, err := strconv.ParseUint(num, 10, 32); err == nil {
			ids = append(ids, uint32(id))
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids, nil
}

// openActive opens segment id for appending and registers it as a reader.
func (s *Log) openActive(id uint32) error {
	f, ok := s.readers[id]
	if !ok {
		var err error
		f, err = os.OpenFile(filepath.Join(s.dir, segName(id)), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		s.readers[id] = f
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	s.active, s.activeID, s.activeOff = f, id, st.Size()
	return nil
}

// replaySegment reads one segment and applies its records to the index.
// A torn or corrupt tail of the final segment is truncated (crash point);
// the same damage in an earlier segment is an error.
func (s *Log) replaySegment(id uint32, last bool) error {
	path := filepath.Join(s.dir, segName(id))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	s.readers[id] = f
	br := bufio.NewReaderSize(io.NewSectionReader(f, 0, 1<<62), 1<<16)
	var off int64
	truncate := func() error {
		if !last {
			return fmt.Errorf("store: corrupt record at %s:%d (not the final segment)", segName(id), off)
		}
		return f.Truncate(off)
	}
	var hdr [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return truncate() // torn frame header
		}
		bodyLen := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if bodyLen == 0 || bodyLen > maxBodyLen {
			return truncate()
		}
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(br, body); err != nil {
			return truncate() // torn body
		}
		if crc32.ChecksumIEEE(body) != crc {
			return truncate() // corrupt body
		}
		if !s.applyRecord(id, off, body) {
			return truncate() // malformed but checksummed: treat as tail damage
		}
		off += frameHeaderLen + int64(bodyLen)
	}
}

// applyRecord applies one replayed record body to the index, reporting
// whether it parsed.
func (s *Log) applyRecord(seg uint32, off int64, body []byte) bool {
	switch body[0] {
	case logOpPut:
		if len(body) < putHeaderLen {
			return false
		}
		p := interval.Point(binary.LittleEndian.Uint64(body[1:9]))
		klen := int(binary.LittleEndian.Uint32(body[9:13]))
		if klen < 0 || putHeaderLen+klen > len(body) {
			return false
		}
		key := string(body[putHeaderLen : putHeaderLen+klen])
		vlen := len(body) - putHeaderLen - klen
		loc := lloc{seg: seg, off: off + frameHeaderLen + putHeaderLen + int64(klen), vlen: uint32(vlen)}
		s.indexPut(p, key, loc)
	case logOpDelete:
		if len(body) < putHeaderLen || len(body) != putHeaderLen+int(binary.LittleEndian.Uint32(body[9:13])) {
			return false
		}
		p := interval.Point(binary.LittleEndian.Uint64(body[1:9]))
		key := string(body[putHeaderLen:])
		s.indexDelete(p, key)
		s.deadBytes += frameHeaderLen + int64(len(body)) // the tombstone itself
	case logOpDelRange:
		if len(body) != 17 {
			return false
		}
		seg := interval.Segment{
			Start: interval.Point(binary.LittleEndian.Uint64(body[1:9])),
			Len:   binary.LittleEndian.Uint64(body[9:17]),
		}
		s.indexDropRange(seg)
		s.deadBytes += frameHeaderLen + int64(len(body))
	default:
		return false
	}
	return true
}

// indexPut installs a location, moving any displaced record to the dead set.
func (s *Log) indexPut(p interval.Point, key string, loc lloc) {
	fb := frameBytes(len(key), int(loc.vlen))
	s.liveBytes += fb
	if old, replaced := s.idx.put(p, key, loc); replaced {
		ofb := frameBytes(len(key), int(old.vlen))
		s.liveBytes -= ofb
		s.deadBytes += ofb
	}
}

// indexDelete removes a location, moving its record to the dead set.
func (s *Log) indexDelete(p interval.Point, key string) bool {
	old, ok := s.idx.del(p, key)
	if ok {
		fb := frameBytes(len(key), int(old.vlen))
		s.liveBytes -= fb
		s.deadBytes += fb
	}
	return ok
}

// indexDropRange removes every indexed location in seg, moving the
// records to the dead set.
func (s *Log) indexDropRange(seg interval.Segment) {
	for _, r := range ranges(seg) {
		cs, _ := s.idx.extractRange(r)
		for _, c := range cs {
			for _, e := range c.es {
				fb := frameBytes(len(e.key), int(e.val.vlen))
				s.liveBytes -= fb
				s.deadBytes += fb
			}
		}
	}
}

// --- write path ---

// appendRecord frames and appends one record body, returning the segment
// and offset it landed at. Callers hold mu. Bodies beyond the replay
// bound are rejected up front: acknowledging a record that recovery would
// discard as tail damage (or whose length field would wrap) would break
// the zero-lost-acknowledged-writes guarantee.
func (s *Log) appendRecord(body []byte) (seg uint32, off int64, err error) {
	if len(body) > maxBodyLen {
		return 0, 0, fmt.Errorf("store: record too large (%d bytes, max %d)", len(body), maxBodyLen)
	}
	if s.activeOff >= s.opts.SegmentBytes {
		if err := s.rotate(); err != nil {
			return 0, 0, err
		}
	}
	buf := make([]byte, frameHeaderLen+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(body))
	copy(buf[frameHeaderLen:], body)
	seg, off = s.activeID, s.activeOff
	if _, err := s.active.WriteAt(buf, s.activeOff); err != nil {
		return 0, 0, fmt.Errorf("store: append to %s: %w", segName(s.activeID), err)
	}
	s.activeOff += int64(len(buf))
	if s.opts.Fsync {
		if err := s.active.Sync(); err != nil {
			return 0, 0, err
		}
	}
	//condisc:allow fsyncack durability is the explicit LogOptions.Fsync choice: with Fsync off the WAL survives process crashes (page cache) but trades power-loss safety for speed; every Fsync=true path syncs above
	return seg, off, nil
}

// rotate closes the active segment for writing and starts the next one.
func (s *Log) rotate() error {
	if err := s.openActive(s.activeID + 1); err != nil {
		return err
	}
	walRotations.Inc()
	telemetry.Default.Emitf("wal.rotate", "%s: segment %d opened", s.dir, s.activeID)
	return nil
}

func putBody(p interval.Point, key string, value []byte) []byte {
	body := make([]byte, putHeaderLen+len(key)+len(value))
	body[0] = logOpPut
	binary.LittleEndian.PutUint64(body[1:9], uint64(p))
	binary.LittleEndian.PutUint32(body[9:13], uint32(len(key)))
	copy(body[putHeaderLen:], key)
	copy(body[putHeaderLen+len(key):], value)
	return body
}

// Put appends a put record and indexes its value location. When Put
// returns nil the write is acknowledged: it survives reopen (and, with
// Fsync, power loss).
func (s *Log) Put(p interval.Point, key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	seg, off, err := s.appendRecord(putBody(p, key, value))
	if err != nil {
		return err
	}
	loc := lloc{seg: seg, off: off + frameHeaderLen + putHeaderLen + int64(len(key)), vlen: uint32(len(value))}
	s.indexPut(p, key, loc)
	return s.maybeCompact()
}

// putIfAbsent appends a put record only when (p, key) is unindexed; the
// check and the append share one lock hold.
func (s *Log) putIfAbsent(p interval.Point, key string, value []byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, errClosed
	}
	if _, ok := s.idx.get(p, key); ok {
		return false, nil
	}
	seg, off, err := s.appendRecord(putBody(p, key, value))
	if err != nil {
		return false, err
	}
	loc := lloc{seg: seg, off: off + frameHeaderLen + putHeaderLen + int64(len(key)), vlen: uint32(len(value))}
	s.indexPut(p, key, loc)
	return true, s.maybeCompact()
}

// Get reads the value under (p, key) from its WAL segment.
func (s *Log) Get(p interval.Point, key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, errClosed
	}
	loc, ok := s.idx.get(p, key)
	if !ok {
		return nil, false, nil
	}
	v, err := s.readValue(loc)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// readValue preads one value. Callers hold mu.
func (s *Log) readValue(loc lloc) ([]byte, error) {
	f, ok := s.readers[loc.seg]
	if !ok {
		return nil, fmt.Errorf("store: missing segment %d", loc.seg)
	}
	buf := make([]byte, loc.vlen)
	if _, err := f.ReadAt(buf, loc.off); err != nil {
		return nil, fmt.Errorf("store: read %s@%d: %w", segName(loc.seg), loc.off, err)
	}
	return buf, nil
}

// Delete appends a tombstone and unindexes (p, key); absent keys are a
// no-op with no disk write.
func (s *Log) Delete(p interval.Point, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if _, ok := s.idx.get(p, key); !ok {
		return nil
	}
	body := make([]byte, putHeaderLen+len(key))
	body[0] = logOpDelete
	binary.LittleEndian.PutUint64(body[1:9], uint64(p))
	binary.LittleEndian.PutUint32(body[9:13], uint32(len(key)))
	copy(body[putHeaderLen:], key)
	if _, _, err := s.appendRecord(body); err != nil {
		return err
	}
	s.indexDelete(p, key)
	s.deadBytes += frameHeaderLen + int64(len(body))
	return s.maybeCompact()
}

// Len returns the number of live items.
func (s *Log) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx.size()
}

// Ascend iterates seg's items in (point, key) order, reading each value
// from disk.
func (s *Log) Ascend(seg interval.Segment, fn func(item Item) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	var err error
	for _, r := range ranges(seg) {
		done := s.idx.ascendRange(r, func(e entry[lloc]) bool {
			var v []byte
			if v, err = s.readValue(e.val); err != nil {
				return false
			}
			return fn(Item{Point: e.p, Key: e.key, Value: v})
		})
		if err != nil || !done {
			return err
		}
	}
	return nil
}

// SplitRange moves seg's items into a new Log store in a fresh sibling
// directory: O(moved) reads here and appends there, one range tombstone in
// this store's WAL, and index extraction by chunk moves — nothing touches
// the items that stay behind.
//
// Failure atomicity: the moved items are copied into the child BEFORE
// anything here changes, and the range tombstone is appended BEFORE the
// index drops the range (matching replay order) — so an error leaves this
// store exactly as it was, and a crash in between replays to either the
// pre-split state or the post-split state, never a mix. Reclaiming the
// tombstoned bytes is left to the next Put/Delete-triggered compaction.
func (s *Log) SplitRange(seg interval.Segment) (Store, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	dir, err := os.MkdirTemp(filepath.Dir(s.dir), filepath.Base(s.dir)+".split-")
	if err != nil {
		return nil, err
	}
	child, err := OpenLog(dir, s.opts)
	if err != nil {
		return nil, err
	}
	var cerr error
	for _, r := range ranges(seg) {
		s.idx.ascendRange(r, func(e entry[lloc]) bool {
			v, err := s.readValue(e.val)
			if err == nil {
				err = child.Put(e.p, e.key, v)
			}
			cerr = err
			return err == nil
		})
		if cerr != nil {
			child.destroy()
			return nil, cerr
		}
	}
	if err := s.dropRangeLocked(seg); err != nil {
		child.destroy()
		return nil, err
	}
	return child, nil
}

// dropRangeLocked appends a range tombstone and then removes the range
// from the index, in that (replay) order: an append failure leaves the
// store untouched. Callers hold mu.
func (s *Log) dropRangeLocked(seg interval.Segment) error {
	body := make([]byte, 17)
	body[0] = logOpDelRange
	binary.LittleEndian.PutUint64(body[1:9], uint64(seg.Start))
	binary.LittleEndian.PutUint64(body[9:17], seg.Len)
	if _, _, err := s.appendRecord(body); err != nil {
		return err
	}
	s.deadBytes += frameHeaderLen + int64(len(body))
	s.indexDropRange(seg)
	return nil
}

// DeleteRange removes every item in seg with a single range tombstone —
// the handoff-commit / Clear fast path (one WAL append instead of one
// tombstone per item). A bulk drop is where dead bytes spike the most (a
// post-handoff commit kills the whole live set), and no later Put/Delete
// may ever arrive to trigger reclamation, so compaction runs here
// directly; SplitRange deliberately skips it (a compaction error there
// would masquerade as a failed split).
func (s *Log) DeleteRange(seg interval.Segment) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if err := s.dropRangeLocked(seg); err != nil {
		return err
	}
	// Best-effort: the drop is already durable; a compaction failure only
	// leaves dead bytes for a later pass, and reporting it here would
	// make a succeeded drop look failed.
	_ = s.maybeCompact()
	return nil
}

// MergeFrom moves every item of src into this store's WAL, copy-before-
// drop like SplitRange: collect from src (read-only), append here, and
// only then tombstone src — an error or crash at any point leaves every
// item in at least one store (worst case both: duplicates, recoverable),
// never in neither. The two stores' locks are never held together, so
// opposite-direction merges cannot deadlock; per the Store contract the
// source must not be mutated concurrently with the merge.
func (s *Log) MergeFrom(src Store) error {
	if src == Store(s) {
		return nil
	}
	var items []Item
	if err := src.Ascend(interval.FullCircle, func(it Item) bool {
		items = append(items, it)
		return true
	}); err != nil {
		return err
	}
	for _, it := range items {
		if err := s.Put(it.Point, it.Key, it.Value); err != nil {
			return err
		}
	}
	return Clear(src)
}

// drainItems atomically collects and removes every item in seg — the
// collection and the range tombstone happen under one lock hold, so no
// concurrent write can slip into the gap.
func (s *Log) drainItems(seg interval.Segment) ([]Item, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	var items []Item
	var rerr error
	for _, r := range ranges(seg) {
		s.idx.ascendRange(r, func(e entry[lloc]) bool {
			v, err := s.readValue(e.val)
			if err != nil {
				rerr = err
				return false
			}
			items = append(items, Item{Point: e.p, Key: e.key, Value: v})
			return true
		})
		if rerr != nil {
			return nil, rerr
		}
	}
	if len(items) == 0 {
		return nil, nil
	}
	if err := s.dropRangeLocked(seg); err != nil {
		return nil, err
	}
	_ = s.maybeCompact() // best-effort, as in dropRange
	return items, nil
}

// Cursor returns a batched ring-order iterator over seg. Each Next preads
// its batch's values from the WAL segments under one lock hold — the
// memory high-water mark of a full-range walk is one batch, not the
// range (the streaming-handoff property).
func (s *Log) Cursor(seg interval.Segment) Cursor {
	return &logCursor{s: s, rs: ringRanges(seg)}
}

type logCursor struct {
	s        *Log
	rs       []prange
	ri       int
	afterP   interval.Point
	afterKey string
	resuming bool
}

func (c *logCursor) Seek(p interval.Point, key string) {
	c.afterP, c.afterKey, c.resuming = p, key, true
	for i, r := range c.rs {
		if r.contains(p) {
			c.ri = i
			return
		}
	}
	c.ri = len(c.rs)
}

func (c *logCursor) Next(max int) ([]Item, error) {
	if max <= 0 {
		return nil, nil
	}
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if c.s.closed {
		return nil, errClosed
	}
	var out []Item
	var rerr error
	for c.ri < len(c.rs) && len(out) < max {
		r := c.rs[c.ri]
		p, key := r.lo, ""
		if c.resuming && r.contains(c.afterP) {
			p, key = c.afterP, c.afterKey+"\x00"
		}
		done := c.s.idx.ascendFrom(r, p, key, func(e entry[lloc]) bool {
			if len(out) >= max {
				return false
			}
			v, err := c.s.readValue(e.val)
			if err != nil {
				rerr = err
				return false
			}
			out = append(out, Item{Point: e.p, Key: e.key, Value: v})
			return true
		})
		if rerr != nil {
			return nil, rerr
		}
		if len(out) > 0 {
			last := out[len(out)-1]
			c.afterP, c.afterKey, c.resuming = last.Point, last.Key, true
		}
		if !done {
			break
		}
		c.ri++
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

func (c *logCursor) Close() error { return nil }

// --- compaction ---

// maybeCompact rewrites the live records into fresh segments once the dead
// volume passes CompactAt and outweighs the live volume. Callers hold mu.
// Crash safety: the compacted copies land in segments with higher ids than
// every record they replace, so a replay that sees both (crash before the
// old files were removed) converges to the same state.
func (s *Log) maybeCompact() error {
	if s.opts.CompactAt < 0 || s.deadBytes < s.opts.CompactAt || s.deadBytes < s.liveBytes {
		return nil
	}
	reclaiming := s.deadBytes
	firstNew := s.activeID + 1
	if err := s.openActive(firstNew); err != nil {
		return err
	}
	var werr error
	s.idx.scanMut(func(e *entry[lloc]) {
		if werr != nil || e.val.seg >= firstNew {
			return
		}
		v, err := s.readValue(e.val)
		if err != nil {
			werr = err
			return
		}
		seg, off, err := s.appendRecord(putBody(e.p, e.key, v))
		if err != nil {
			werr = err
			return
		}
		e.val = lloc{seg: seg, off: off + frameHeaderLen + putHeaderLen + int64(len(e.key)), vlen: e.val.vlen}
	})
	if werr != nil {
		return werr
	}
	if err := s.active.Sync(); err != nil { // the copies must be durable before the originals go
		return err
	}
	// Remove the obsolete segments in ascending id order: a tombstone
	// always lives in a later-or-equal segment than the put it kills, so
	// a crash mid-removal can never leave a put on disk without its
	// tombstone (which would resurrect a deleted item on replay).
	var old []uint32
	for id := range s.readers {
		if id < firstNew {
			old = append(old, id)
		}
	}
	sort.Slice(old, func(a, b int) bool { return old[a] < old[b] })
	for _, id := range old {
		s.readers[id].Close()
		delete(s.readers, id)
		if err := os.Remove(filepath.Join(s.dir, segName(id))); err != nil {
			return err
		}
	}
	s.deadBytes = 0
	walCompactions.Inc()
	walCompactedBy.Add(reclaiming)
	telemetry.Default.Emitf("wal.compact", "%s: reclaimed %d dead bytes into segment %d+",
		s.dir, reclaiming, firstNew)
	return nil
}

// Close releases the store's files.
func (s *Log) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.opts.Fsync {
		if err := s.active.Sync(); err != nil {
			return err
		}
	}
	s.closeFiles()
	return nil
}

func (s *Log) closeFiles() {
	for id, f := range s.readers {
		f.Close()
		delete(s.readers, id)
	}
	s.active = nil
}

// destroy closes the store and deletes its directory.
func (s *Log) destroy() error {
	s.Close()
	return os.RemoveAll(s.dir)
}

// Dir returns the store's data directory.
func (s *Log) Dir() string { return s.dir }

var errClosed = fmt.Errorf("store: use after Close")
