package store

import (
	"sync"

	"condisc/internal/interval"
)

// Mem is the in-memory engine: a chunked sorted list of items ordered by
// (point, key). Splits and merges move whole chunks by pointer, so a range
// move costs O(log S + moved/chunk + chunk) regardless of how many items
// stay behind.
type Mem struct {
	mu sync.Mutex
	l  list[[]byte]
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{} }

// Put stores a copy of value under (p, key).
func (m *Mem) Put(p interval.Point, key string, value []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.l.put(p, key, append([]byte(nil), value...))
	return nil
}

// putIfAbsent inserts a copy of value only when (p, key) is absent; the
// check and the insert share one lock hold.
func (m *Mem) putIfAbsent(p interval.Point, key string, value []byte) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.l.get(p, key); ok {
		return false, nil
	}
	m.l.put(p, key, append([]byte(nil), value...))
	return true, nil
}

// Get returns the value under (p, key); the slice must not be modified.
func (m *Mem) Get(p interval.Point, key string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.l.get(p, key)
	return v, ok, nil
}

// Delete removes (p, key) if present.
func (m *Mem) Delete(p interval.Point, key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.l.del(p, key)
	return nil
}

// Len returns the number of stored items.
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.l.size()
}

// Ascend iterates seg's items in (point, key) order.
func (m *Mem) Ascend(seg interval.Segment, fn func(item Item) bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range ranges(seg) {
		if !m.l.ascendRange(r, func(e entry[[]byte]) bool {
			return fn(Item{Point: e.p, Key: e.key, Value: e.val})
		}) {
			return nil
		}
	}
	return nil
}

// SplitRange moves seg's items out into a new Mem store.
func (m *Mem) SplitRange(seg interval.Segment) (Store, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := &Mem{}
	for _, r := range ranges(seg) { // ascending ranges keep the seeded chunks sorted
		cs, cnt := m.l.extractRange(r)
		out.l.seed(cs, cnt)
	}
	return out, nil
}

// MergeFrom absorbs src's items, draining it. Merging another Mem whose
// point range does not interleave with ours splices chunk pointers. The
// two locks are never held together (src's list is stolen under src's
// lock, absorbed under ours), so concurrent opposite-direction merges
// cannot deadlock.
func (m *Mem) MergeFrom(src Store) error {
	if sm, ok := src.(*Mem); ok {
		if sm == m {
			return nil
		}
		sm.mu.Lock()
		stolen := sm.l
		sm.l = list[[]byte]{}
		sm.mu.Unlock()
		m.mu.Lock()
		m.l.absorb(&stolen)
		m.mu.Unlock()
		return nil
	}
	// Cross-engine: copy-before-drop (see Log.MergeFrom) — an error mid-
	// merge leaves every item in at least one store.
	var items []Item
	if err := src.Ascend(interval.FullCircle, func(it Item) bool {
		items = append(items, it)
		return true
	}); err != nil {
		return err
	}
	m.mu.Lock()
	for _, it := range items {
		m.l.put(it.Point, it.Key, it.Value)
	}
	m.mu.Unlock()
	return Clear(src)
}

// DeleteRange removes every item in seg by chunk extraction, reading no
// values — the handoff-commit / Clear fast path.
func (m *Mem) DeleteRange(seg interval.Segment) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range ranges(seg) {
		m.l.extractRange(r)
	}
	return nil
}

// Cursor returns a batched ring-order iterator over seg.
func (m *Mem) Cursor(seg interval.Segment) Cursor {
	return &memCursor{m: m, rs: ringRanges(seg)}
}

// memCursor resumes by (point, key) position, so mutations between
// batches — including the range's own deletion — are tolerated.
type memCursor struct {
	m        *Mem
	rs       []prange
	ri       int
	afterP   interval.Point
	afterKey string
	resuming bool
}

func (c *memCursor) Seek(p interval.Point, key string) {
	c.afterP, c.afterKey, c.resuming = p, key, true
	for i, r := range c.rs {
		if r.contains(p) {
			c.ri = i
			return
		}
	}
	c.ri = len(c.rs) // position outside the segment: nothing left
}

func (c *memCursor) Next(max int) ([]Item, error) {
	if max <= 0 {
		return nil, nil
	}
	c.m.mu.Lock()
	defer c.m.mu.Unlock()
	var out []Item
	for c.ri < len(c.rs) && len(out) < max {
		r := c.rs[c.ri]
		p, key := r.lo, ""
		if c.resuming && r.contains(c.afterP) {
			// Strictly after (afterP, afterKey): key+"\x00" is the least
			// string above afterKey, so lowerBound lands one entry past it.
			p, key = c.afterP, c.afterKey+"\x00"
		}
		done := c.m.l.ascendFrom(r, p, key, func(e entry[[]byte]) bool {
			if len(out) >= max {
				return false
			}
			out = append(out, Item{Point: e.p, Key: e.key, Value: e.val})
			return true
		})
		if len(out) > 0 {
			last := out[len(out)-1]
			c.afterP, c.afterKey, c.resuming = last.Point, last.Key, true
		}
		if !done {
			break // max reached inside this range
		}
		c.ri++
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

func (c *memCursor) Close() error { return nil }

// drainItems atomically collects and removes every item in seg (one lock
// hold — no concurrent write can land in the gap).
func (m *Mem) drainItems(seg interval.Segment) ([]Item, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var items []Item
	for _, r := range ranges(seg) {
		cs, _ := m.l.extractRange(r)
		for _, c := range cs {
			for _, e := range c.es {
				items = append(items, Item{Point: e.p, Key: e.key, Value: e.val})
			}
		}
	}
	return items, nil
}

// Close is a no-op for the in-memory engine.
func (m *Mem) Close() error { return nil }

func (m *Mem) destroy() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.l.clear()
	return nil
}
