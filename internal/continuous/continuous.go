// Package continuous models the continuous Distance Halving graph Gc and
// its path trees (§2.1, §3.1 of Naor & Wieder).
//
// The vertex set of Gc is the unit interval I; each point y has out-edges
// ℓ(y) = y/2 and r(y) = y/2 + 1/2 and one in-edge from b(y) = 2y mod 1. The
// ∆-ary generalization (§2.3) has out-edges f_i(y) = y/∆ + i/∆. Point-level
// arithmetic lives in internal/interval; this package adds the structures
// built on top of the maps: path trees (Definition 5) and segment images.
package continuous

import (
	"math/bits"

	"condisc/internal/interval"
)

// TreeNode identifies a node of the path tree rooted at some point y
// (Definition 5): the root is the node at depth 0; node z has children
// ℓ(z) and r(z). Path bit i (0-indexed, counted from the root) selects the
// branch taken at depth i: 0 for the ℓ-child, 1 for the r-child.
type TreeNode struct {
	Depth uint8
	Path  uint64 // bit i = branch at depth i; bits >= Depth are zero
}

// Root is the path-tree root.
var Root = TreeNode{}

// Child returns the child of n reached via branch bit (0 = ℓ, 1 = r).
func (n TreeNode) Child(bit byte) TreeNode {
	c := TreeNode{Depth: n.Depth + 1, Path: n.Path}
	if bit != 0 {
		c.Path |= 1 << n.Depth
	}
	return c
}

// Parent returns the parent of n. The root is its own parent.
func (n TreeNode) Parent() TreeNode {
	if n.Depth == 0 {
		return n
	}
	d := n.Depth - 1
	return TreeNode{Depth: d, Path: n.Path &^ (1 << d)}
}

// AncestorAt returns the ancestor of n at depth d <= n.Depth.
func (n TreeNode) AncestorAt(d uint8) TreeNode {
	if d >= n.Depth {
		return n
	}
	return TreeNode{Depth: d, Path: n.Path & (1<<d - 1)}
}

// IsAncestorOf reports whether n is an ancestor of (or equal to) m.
func (n TreeNode) IsAncestorOf(m TreeNode) bool {
	return n.Depth <= m.Depth && m.Path&(1<<n.Depth-1) == n.Path
}

// PointUnder returns the point of I occupied by this tree node when the
// tree is rooted at root. The node's point is obtained by composing the
// branch maps along the path from the root, so its top Depth bits are the
// path bits in reverse order followed by the top bits of the root. Two
// distinct nodes at depth j are therefore at distance at least 2^-j
// (Observation 3.2).
func (n TreeNode) PointUnder(root interval.Point) interval.Point {
	if n.Depth == 0 {
		return root
	}
	d := uint(n.Depth)
	// Descending the tree applies the branch maps root-first, so the deepest
	// branch bit ends up most significant: top bits are Path reversed-in-time,
	// which is exactly Path shifted to the top of the word.
	return interval.Point(n.Path<<(64-d)) | root>>d
}

// EntryNode converts the random digit string τ (bit i = τ_{i+1}) consumed
// by a Distance Halving lookup of depth t into the path-tree node at which
// the lookup's phase II enters the tree rooted at the target: the node at
// depth t whose branch at depth i is τ_{i+1} (§3.1: "every request for i
// reaches y via a random path in the path tree").
func EntryNode(tau uint64, t uint8) TreeNode {
	return TreeNode{Depth: t, Path: tau & (1<<t - 1)}
}

// DeltaImages returns the ∆ image segments f_0(s), ..., f_{∆-1}(s) of a
// segment. Each has 1/∆ of the length (Figure 1 shows the ∆ = 2 case),
// rounded up to the fixed-point grid: the true image of a nonempty real
// interval is nonempty, but a floor division would round a segment
// shorter than ∆ ulps to Len 0 — which by convention denotes the full
// circle, silently connecting a tiny segment's server to every other
// server. Ceiling division over-approximates each image by at most one
// ulp instead, which the preimage padding in consumers (see
// dhgraph.affectedSources) already tolerates.
func DeltaImages(s interval.Segment, delta uint64) []interval.Segment {
	out := make([]interval.Segment, delta)
	ln := s.Len / delta
	if s.Len%delta != 0 {
		ln++
	}
	if s.Len == 0 { // full circle
		ln = divideCircle(delta)
	}
	for i := uint64(0); i < delta; i++ {
		out[i] = interval.Segment{Start: interval.DeltaMap(s.Start, delta, i), Len: ln}
	}
	return out
}

// divideCircle returns floor(2^64 / delta).
func divideCircle(delta uint64) uint64 {
	q, _ := bits.Div64(1, 0, delta)
	return q
}

// DeltaBackImage returns the preimage arc of s under the ∆ forward maps:
// the contiguous arc of length ∆·|s| starting at b(s.Start). Every point
// with a forward edge into s lies in it.
func DeltaBackImage(s interval.Segment, delta uint64) interval.Segment {
	if s.Len == 0 {
		return interval.FullCircle
	}
	hi, ln := bits.Mul64(s.Len, delta)
	if hi > 0 {
		return interval.FullCircle
	}
	return interval.Segment{Start: interval.DeltaBack(s.Start, delta), Len: ln}
}
