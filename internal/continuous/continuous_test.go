package continuous

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"condisc/internal/interval"
)

func TestChildParentRoundTrip(t *testing.T) {
	f := func(path uint64, depth uint8, bit bool) bool {
		depth %= 60
		n := TreeNode{Depth: depth, Path: path & (1<<depth - 1)}
		var b byte
		if bit {
			b = 1
		}
		return n.Child(b).Parent() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChildrenArePointImages(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 300; trial++ {
		root := interval.Point(rng.Uint64())
		n := TreeNode{}
		for d := 0; d < 20; d++ {
			p := n.PointUnder(root)
			l, r := n.Child(0), n.Child(1)
			if l.PointUnder(root) != p.Half() {
				t.Fatalf("depth %d: ℓ-child point mismatch", d)
			}
			if r.PointUnder(root) != p.HalfPlus() {
				t.Fatalf("depth %d: r-child point mismatch", d)
			}
			n = n.Child(byte(rng.IntN(2)))
		}
	}
}

// TestLayerSeparation verifies Observation 3.2: two distinct nodes of layer
// j are at distance >= 2^-j.
func TestLayerSeparation(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	root := interval.Point(rng.Uint64())
	for j := uint8(1); j <= 10; j++ {
		pts := make(map[interval.Point]bool)
		for path := uint64(0); path < 1<<j; path++ {
			p := TreeNode{Depth: j, Path: path}.PointUnder(root)
			pts[p] = true
		}
		if len(pts) != 1<<j {
			t.Fatalf("layer %d has duplicate points", j)
		}
		var list []interval.Point
		for p := range pts {
			list = append(list, p)
		}
		min := uint64(1) << (64 - j)
		for i := range list {
			for k := i + 1; k < len(list); k++ {
				if d := interval.RingDist(list[i], list[k]); d < min-uint64(j) {
					t.Fatalf("layer %d: distance %d < 2^-%d", j, d, j)
				}
			}
		}
	}
}

func TestAncestorAt(t *testing.T) {
	n := TreeNode{Depth: 5, Path: 0b10110}
	if a := n.AncestorAt(3); a.Depth != 3 || a.Path != 0b110 {
		t.Errorf("AncestorAt(3) = %+v", a)
	}
	if a := n.AncestorAt(9); a != n {
		t.Errorf("AncestorAt beyond depth should return the node itself")
	}
	if !Root.IsAncestorOf(n) {
		t.Error("root is an ancestor of everything")
	}
	if !n.AncestorAt(2).IsAncestorOf(n) {
		t.Error("ancestor relation broken")
	}
	if n.IsAncestorOf(n.AncestorAt(2)) {
		t.Error("descendant is not an ancestor")
	}
}

// TestEntryNodeMatchesPhaseTwoWalk simulates the coupling between a DH
// lookup and the path tree (§3.1): walking from y with digits τ_1..τ_t
// (each step the outermost map) lands exactly on the point of
// EntryNode(τ, t), and backward steps ascend the tree one level at a time.
func TestEntryNodeMatchesPhaseTwoWalk(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 300; trial++ {
		y := interval.Point(rng.Uint64())
		tau := rng.Uint64()
		tt := uint8(1 + rng.IntN(30))
		// Forward walk: q_j = Step_{τ_j}(q_{j-1}).
		q := y
		for j := uint8(0); j < tt; j++ {
			q = interval.Step(q, byte(tau>>j)&1)
		}
		node := EntryNode(tau, tt)
		if got := node.PointUnder(y); got != q {
			t.Fatalf("entry node point %v != walk endpoint %v", got, q)
		}
		// Backward steps ascend: b(q_j) = q_{j-1} == parent's point (exact up
		// to the dropped LSBs of the walk, which Back regenerates as zeros).
		parentPt := node.Parent().PointUnder(y)
		if d := interval.LinDist(q.Back(), parentPt); d >= 1<<node.Depth {
			t.Fatalf("backward step does not reach parent: dist %d", d)
		}
	}
}

func TestDeltaImagesPartition(t *testing.T) {
	s := interval.Segment{Start: interval.FromFloat(0.25), Len: uint64(interval.FromFloat(0.5))}
	for _, delta := range []uint64{2, 3, 4, 8} {
		imgs := DeltaImages(s, delta)
		if len(imgs) != int(delta) {
			t.Fatalf("∆=%d: got %d images", delta, len(imgs))
		}
		rng := rand.New(rand.NewPCG(7, 8))
		for trial := 0; trial < 200; trial++ {
			p := s.Start + interval.Point(rng.Uint64N(s.Len))
			for i := uint64(0); i < delta; i++ {
				img := interval.DeltaMap(p, delta, i)
				// Allow 1-ulp slack at segment ends for non-power-of-two ∆.
				grow := interval.Segment{Start: imgs[i].Start - 2, Len: imgs[i].Len + 4}
				if !grow.Contains(img) {
					t.Fatalf("∆=%d: f_%d(%v)=%v outside image %v", delta, i, p, img, imgs[i])
				}
			}
		}
	}
}

func TestDeltaImagesOfFullCircle(t *testing.T) {
	imgs := DeltaImages(interval.FullCircle, 4)
	for i, im := range imgs {
		if im.Len != 1<<62 {
			t.Errorf("image %d of full circle has length %d, want 2^62", i, im.Len)
		}
	}
	if imgs[0].Start != 0 || imgs[2].Start != 1<<63 {
		t.Errorf("image starts misplaced: %v", imgs)
	}
}

func TestDeltaBackImageContainsPreimages(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for _, delta := range []uint64{2, 3, 8} {
		s := interval.Segment{Start: interval.Point(rng.Uint64()), Len: 1 << 40}
		bi := DeltaBackImage(s, delta)
		for trial := 0; trial < 300; trial++ {
			p := s.Start + interval.Point(rng.Uint64N(s.Len))
			b := interval.DeltaBack(p, delta)
			grow := interval.Segment{Start: bi.Start - interval.Point(2*delta), Len: bi.Len + 4*delta}
			if !grow.Contains(b) {
				t.Fatalf("∆=%d: b(%v)=%v outside back image %v", delta, p, b, bi)
			}
		}
	}
	if DeltaBackImage(interval.Segment{Start: 0, Len: 1 << 63}, 4) != interval.FullCircle {
		t.Error("oversized back image should clamp to the full circle")
	}
}
