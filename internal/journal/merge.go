package journal

import "sort"

// Stream is one node's journal dump, tagged with the node's identity —
// the shape /journalz serves and `dhctl journal` consumes.
type Stream struct {
	Node    uint64   `json:"node_id"`
	Addr    string   `json:"addr,omitempty"`
	Dropped uint64   `json:"dropped"`
	Records []Record `json:"records"`
}

// Tagged is one merged timeline entry: a record plus its origin.
type Tagged struct {
	Node uint64 `json:"node_id"`
	Addr string `json:"addr,omitempty"`
	Record
}

// Merge folds per-node journal dumps into one cluster-wide timeline.
// The order is causal without clock sync: primary key is the record's
// ring version (every ownership mutation bumps it, so records about the
// same boundary move order correctly), then epoch, then node id and the
// node-local sequence number as deterministic tie-breaks. Two calls
// over the same dumps — in any input order — produce the identical
// timeline, and each input record appears exactly once.
func Merge(streams []Stream) []Tagged {
	n := 0
	for _, s := range streams {
		n += len(s.Records)
	}
	out := make([]Tagged, 0, n)
	for _, s := range streams {
		for _, r := range s.Records {
			out = append(out, Tagged{Node: s.Node, Addr: s.Addr, Record: r})
		}
	}
	sort.Slice(out, func(i, k int) bool {
		a, b := out[i], out[k]
		if a.RingVer != b.RingVer {
			return a.RingVer < b.RingVer
		}
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	return out
}
