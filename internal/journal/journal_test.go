package journal

import (
	"encoding/json"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"
)

func TestRecordAndRead(t *testing.T) {
	j := New(64)
	for i := uint64(0); i < 10; i++ {
		j.Record(KindChurnAdmit, i, i/2, i*10, i*100, 1)
	}
	recs := j.Records()
	if len(recs) != 10 {
		t.Fatalf("Records() = %d entries, want 10", len(recs))
	}
	if j.Len() != 10 || j.Dropped() != 0 {
		t.Fatalf("Len/Dropped = %d/%d, want 10/0", j.Len(), j.Dropped())
	}
	for i, r := range recs {
		want := Record{Seq: uint64(i), Kind: KindChurnAdmit, RingVer: uint64(i),
			Epoch: uint64(i / 2), A: uint64(i) * 10, B: uint64(i) * 100, C: 1}
		if r != want {
			t.Fatalf("record %d = %+v, want %+v", i, r, want)
		}
	}
}

func TestWraparoundKeepsNewest(t *testing.T) {
	j := New(16) // exact power of two
	for i := uint64(0); i < 40; i++ {
		j.Record(KindEpochPublish, 0, i, 0, 0, 0)
	}
	recs := j.Records()
	if len(recs) != 16 {
		t.Fatalf("Records() = %d entries, want 16", len(recs))
	}
	if j.Dropped() != 24 {
		t.Fatalf("Dropped() = %d, want 24", j.Dropped())
	}
	for i, r := range recs {
		if want := uint64(24 + i); r.Seq != want || r.Epoch != want {
			t.Fatalf("record %d: seq=%d epoch=%d, want %d", i, r.Seq, r.Epoch, want)
		}
	}
}

func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	j.Record(KindHandCommit, 1, 2, 3, 4, 5) // must not panic
	if j.Records() != nil || j.Len() != 0 || j.Dropped() != 0 {
		t.Fatal("nil journal should read as empty")
	}
}

func TestSetEnabled(t *testing.T) {
	defer SetEnabled(true)
	j := New(16)
	SetEnabled(false)
	j.Record(KindHandAbort, 1, 1, 1, 1, 1)
	if j.Len() != 0 {
		t.Fatal("disabled journal recorded")
	}
	SetEnabled(true)
	j.Record(KindHandAbort, 1, 1, 1, 1, 1)
	if j.Len() != 1 {
		t.Fatal("re-enabled journal did not record")
	}
}

// TestConcurrentRecordNoTorn hammers Record from many goroutines while
// readers snapshot continuously. Every record carries A == B == C, so a
// torn slot (fields from two different writes) is detectable. Run under
// -race this also proves the path is free of unsynchronized access.
func TestConcurrentRecordNoTorn(t *testing.T) {
	j := New(128)
	const writers, perWriter = 8, 4096
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range j.Records() {
					if rec.A != rec.B || rec.B != rec.C {
						t.Errorf("torn record: %+v", rec)
						return
					}
					if rec.Kind != KindStaleRepair {
						t.Errorf("unexpected kind: %+v", rec)
						return
					}
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				v := uint64(w)<<32 | uint64(i)
				j.Record(KindStaleRepair, v, v, v, v, v)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := j.Dropped() + uint64(j.Len()); got != writers*perWriter {
		t.Fatalf("emitted accounting: dropped+len = %d, want %d", got, writers*perWriter)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	j := New(32)
	rng := rand.New(rand.NewPCG(7, 11))
	for i := 0; i < 20; i++ {
		j.Record(Kind(1+rng.IntN(int(kindCount)-1)), rng.Uint64(), rng.Uint64(),
			rng.Uint64(), rng.Uint64(), rng.Uint64())
	}
	want := j.Records()
	got, err := DecodeBinary(j.EncodeBinary())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("binary round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if _, err := DecodeBinary(make([]byte, FrameSize+1)); err == nil {
		t.Fatal("DecodeBinary accepted a truncated dump")
	}
}

func TestKindTextRoundTrip(t *testing.T) {
	for k := KindUnknown; k < kindCount; k++ {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := back.UnmarshalText(b); err != nil || back != k {
			t.Fatalf("kind %d: round trip gave %d, err %v", k, back, err)
		}
	}
	var k Kind
	if err := k.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("UnmarshalText accepted a bogus kind")
	}
	// JSON integration: kinds render as names.
	b, err := json.Marshal(Record{Kind: KindEndSuccFlip})
	if err != nil {
		t.Fatal(err)
	}
	if want := `"kind":"end_succ_flip"`; !contains(string(b), want) {
		t.Fatalf("JSON %s does not contain %s", b, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestMergeDeterministic merges the same streams in two input orders
// and demands identical timelines with every record present once.
func TestMergeDeterministic(t *testing.T) {
	mk := func(node uint64, n int, seed uint64) Stream {
		rng := rand.New(rand.NewPCG(seed, node))
		s := Stream{Node: node}
		for i := 0; i < n; i++ {
			s.Records = append(s.Records, Record{
				Seq: uint64(i), Kind: KindEndSuccFlip,
				RingVer: uint64(rng.IntN(6)), Epoch: uint64(rng.IntN(3)),
				A: rng.Uint64(),
			})
		}
		return s
	}
	a, b, c := mk(1, 20, 42), mk(2, 15, 43), mk(3, 25, 44)
	m1 := Merge([]Stream{a, b, c})
	m2 := Merge([]Stream{c, a, b})
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("merge is input-order dependent")
	}
	if len(m1) != 60 {
		t.Fatalf("merged %d records, want 60", len(m1))
	}
	// Ring-version order, and every (node, seq) exactly once.
	seen := map[[2]uint64]bool{}
	for i, rec := range m1 {
		if i > 0 && rec.RingVer < m1[i-1].RingVer {
			t.Fatalf("timeline out of ring-version order at %d", i)
		}
		k := [2]uint64{rec.Node, rec.Seq}
		if seen[k] {
			t.Fatalf("record %v appears twice", k)
		}
		seen[k] = true
	}
}
