// Package journal is the bounded, wait-free structured flight recorder:
// a fixed-capacity ring of binary-framed records capturing the events
// that mutate routing state — churn admit/apply/retire, epoch Publish,
// handoff prepare/stream/commit/abort, stale-route repair, end/succ
// flips. Each record is stamped with the emitting node's ring version
// and epoch, so journals from different nodes merge into one causally
// ordered cluster timeline (ring-version order, deterministic
// tie-break) without any clock synchronisation — no record ever carries
// a wall-clock timestamp, which also keeps the emit path clean under
// the detpath determinism contract.
//
// Record is a hot-path call under the telemetryhot discipline
// (machine-checked): slot reservation is one atomic add, the slot write
// is seven atomic stores guarded by a seqlock sequence number, and
// nothing on the path allocates, locks, or dispatches dynamically.
// Readers (Records, EncodeBinary — cold paths) validate the sequence
// number around each slot copy and discard torn or overwritten slots,
// so a dump taken mid-churn is always a consistent sample.
//
// The journal is a pure observer: nothing reads it back into a
// decision, so attaching one cannot change externally visible state
// (the churntest digest arm runs the same trace with the journal on and
// off and demands byte-identical dumps).
package journal

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Kind enumerates the event classes the flight recorder captures.
type Kind uint8

const (
	// KindUnknown is the zero value; no emit site uses it.
	KindUnknown Kind = iota
	// KindChurnAdmit: a churn event passed serial admission (ring handle
	// reserved, lease granted). A = server id, B = segment start, C = 1
	// for a join, 0 for a leave.
	KindChurnAdmit
	// KindChurnApply: the parallel apply phase finished for one admitted
	// event (graph patched, items moved). A = server id, C = 1 join / 0 leave.
	KindChurnApply
	// KindChurnRetire: a leave's ring handle was retired at wave end,
	// just before the epoch publish. A = server id.
	KindChurnRetire
	// KindEpochPublish: partition.Ring.Publish made a new immutable
	// snapshot visible. Epoch = the new epoch, A = ring size n.
	KindEpochPublish
	// KindHandPrepare: a handoff session was prepared (sender side).
	// A = session id, B = segment start, C = segment length.
	KindHandPrepare
	// KindHandStream: one streamed handoff chunk left the sender.
	// A = session id, B = items in the chunk, C = bytes in the chunk.
	KindHandStream
	// KindHandCommit: a handoff session committed; the segment changed
	// owner. A = session id, C = 1 join / 0 leave.
	KindHandCommit
	// KindHandAbort: a handoff session aborted; ownership is unchanged.
	// A = session id.
	KindHandAbort
	// KindStaleRepair: routing detected a message addressed past a moved
	// boundary and re-resolved it (PR 7 bounded stale-owner retry).
	// A = the routed key's point, B = hop count when detected.
	KindStaleRepair
	// KindEndSuccFlip: the node's (end, succ) pair flipped — the single
	// sanctioned p2p ownership mutation. RingVer = the new version,
	// A = new segment end, B = new successor id.
	KindEndSuccFlip
	// KindCrashAbsorb: the failure detector declared the successor dead
	// and the node absorbed its segment without a handoff session (the
	// items are gone until repair re-materializes them from replicas).
	// RingVer = the new version, A = the dead successor's id, B = the
	// new segment end, C = the number of opState misses that tripped
	// the detector.
	KindCrashAbsorb

	kindCount // one past the last valid kind
)

var kindNames = [kindCount]string{
	KindUnknown:      "unknown",
	KindChurnAdmit:   "churn_admit",
	KindChurnApply:   "churn_apply",
	KindChurnRetire:  "churn_retire",
	KindEpochPublish: "epoch_publish",
	KindHandPrepare:  "hand_prepare",
	KindHandStream:   "hand_stream",
	KindHandCommit:   "hand_commit",
	KindHandAbort:    "hand_abort",
	KindStaleRepair:  "stale_repair",
	KindEndSuccFlip:  "end_succ_flip",
	KindCrashAbsorb:  "crash_absorb",
}

// String returns the snake_case name used in dumps and timelines.
func (k Kind) String() string {
	if k < kindCount {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalText renders the kind name (JSON dumps carry names, not
// numbers, so /journalz stays greppable).
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText accepts any name String produces.
func (k *Kind) UnmarshalText(b []byte) error {
	s := string(b)
	for i := Kind(0); i < kindCount; i++ {
		if kindNames[i] == s {
			*k = i
			return nil
		}
	}
	return fmt.Errorf("journal: unknown kind %q", s)
}

// Record is one decoded flight-recorder entry. Seq is the global emit
// index at the recording node (monotone per node, gaps only where the
// ring overwrote). RingVer and Epoch are the causal stamps; A, B, C are
// kind-specific operands (see the Kind constants).
type Record struct {
	Seq     uint64 `json:"seq"`
	Kind    Kind   `json:"kind"`
	RingVer uint64 `json:"ring_ver"`
	Epoch   uint64 `json:"epoch"`
	A       uint64 `json:"a"`
	B       uint64 `json:"b"`
	C       uint64 `json:"c"`
}

// FrameSize is the fixed length of one binary-framed record: seven
// little-endian uint64 words (seq, kind, ringVer, epoch, a, b, c).
const FrameSize = 7 * 8

// AppendBinary appends the record's fixed-width frame to b.
func (r Record) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, r.Seq)
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Kind))
	b = binary.LittleEndian.AppendUint64(b, r.RingVer)
	b = binary.LittleEndian.AppendUint64(b, r.Epoch)
	b = binary.LittleEndian.AppendUint64(b, r.A)
	b = binary.LittleEndian.AppendUint64(b, r.B)
	return binary.LittleEndian.AppendUint64(b, r.C)
}

// DecodeBinary parses a stream of fixed-width frames (the inverse of
// AppendBinary applied record after record).
func DecodeBinary(data []byte) ([]Record, error) {
	if len(data)%FrameSize != 0 {
		return nil, fmt.Errorf("journal: binary dump length %d is not a multiple of %d", len(data), FrameSize)
	}
	out := make([]Record, 0, len(data)/FrameSize)
	for off := 0; off < len(data); off += FrameSize {
		f := data[off : off+FrameSize]
		out = append(out, Record{
			Seq:     binary.LittleEndian.Uint64(f[0:]),
			Kind:    Kind(binary.LittleEndian.Uint64(f[8:])),
			RingVer: binary.LittleEndian.Uint64(f[16:]),
			Epoch:   binary.LittleEndian.Uint64(f[24:]),
			A:       binary.LittleEndian.Uint64(f[32:]),
			B:       binary.LittleEndian.Uint64(f[40:]),
			C:       binary.LittleEndian.Uint64(f[48:]),
		})
	}
	return out, nil
}

// slot is one seqlock-guarded ring cell. seq cycles through
// 2*i+1 (writer for global index i is mid-write) and 2*i+2 (the record
// for index i is complete); readers accept a slot only if they observe
// the same even value before and after the copy.
type slot struct {
	seq     atomic.Uint64
	kind    atomic.Uint64
	ringVer atomic.Uint64
	epoch   atomic.Uint64
	a       atomic.Uint64
	b       atomic.Uint64
	c       atomic.Uint64
}

// Journal is the fixed-capacity wait-free ring. The zero Journal is not
// usable; construct with New. A nil *Journal is a valid no-op target —
// every method checks — so emit sites hold a possibly-nil pointer and
// call unconditionally.
type Journal struct {
	slots []slot
	mask  uint64
	next  atomic.Uint64
}

// DefaultCapacity is the ring size New rounds up to when given n <= 0.
const DefaultCapacity = 4096

// New returns a journal holding the last `capacity` records (rounded up
// to a power of two, minimum 16).
func New(capacity int) *Journal {
	n := uint64(16)
	if capacity > 0 {
		for n < uint64(capacity) {
			n <<= 1
		}
	} else {
		n = DefaultCapacity
	}
	return &Journal{slots: make([]slot, n), mask: n - 1}
}

// enabled is the global kill switch, mirroring telemetry's: when false,
// Record is a single atomic load and a branch. The churntest
// digest-invariance arm toggles attachment, not this switch; the switch
// exists so an operator can silence a live node's recorder without
// rewiring it.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns all recording on or off (default on). Records
// already in the ring are retained and still readable.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// Record appends one entry to the ring. Safe for any number of
// concurrent callers; never blocks, never allocates. On a nil journal
// or with recording disabled it is a load and a branch.
//
//condisc:hot
func (j *Journal) Record(kind Kind, ringVer, epoch, a, b, c uint64) {
	if j == nil || !enabled.Load() {
		return
	}
	i := j.next.Add(1) - 1
	s := &j.slots[i&j.mask]
	s.seq.Store(2*i + 1)
	s.kind.Store(uint64(kind))
	s.ringVer.Store(ringVer)
	s.epoch.Store(epoch)
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	s.seq.Store(2*i + 2)
}

// Len reports how many records are currently resident (at most the
// ring capacity).
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	n := j.next.Load()
	if c := uint64(len(j.slots)); n > c {
		n = c
	}
	return int(n)
}

// Dropped reports how many records the ring has overwritten since
// construction (total emitted minus capacity, floored at zero).
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	n := j.next.Load()
	if c := uint64(len(j.slots)); n > c {
		return n - c
	}
	return 0
}

// Records returns a consistent sample of the resident records, oldest
// first. Slots a concurrent writer is mid-way through (or has lapped
// during the read) are skipped, so every returned record is intact; a
// dump taken mid-churn may have gaps but never torn entries. Cold path.
func (j *Journal) Records() []Record {
	if j == nil {
		return nil
	}
	next := j.next.Load()
	start := uint64(0)
	if c := uint64(len(j.slots)); next > c {
		start = next - c
	}
	out := make([]Record, 0, next-start)
	for i := start; i < next; i++ {
		s := &j.slots[i&j.mask]
		before := s.seq.Load()
		r := Record{
			Seq:     i,
			Kind:    Kind(s.kind.Load()),
			RingVer: s.ringVer.Load(),
			Epoch:   s.epoch.Load(),
			A:       s.a.Load(),
			B:       s.b.Load(),
			C:       s.c.Load(),
		}
		if before != 2*i+2 || s.seq.Load() != before {
			continue // torn, overwritten, or still being written
		}
		out = append(out, r)
	}
	return out
}

// EncodeBinary renders the current consistent sample as fixed-width
// binary frames (FrameSize bytes per record, oldest first).
func (j *Journal) EncodeBinary() []byte {
	recs := j.Records()
	out := make([]byte, 0, len(recs)*FrameSize)
	for _, r := range recs {
		out = r.AppendBinary(out)
	}
	return out
}
