// Package applyphasedata is the applyphase exemplar: a miniature
// dhgraph with the admit-only field names, and apply/retire functions
// that violate (and respect) the PR 5 concurrency contract.
package applyphasedata

import "math/rand/v2"

type rec struct {
	out []uint64
}

type ringT struct{}

func (r *ringT) Insert(p uint64)       {}
func (r *ringT) RemoveHandle(h uint64) {}

type graph struct {
	srv   map[uint64]*rec
	ring  *ringT
	nextH uint64
	rng   *rand.Rand
}

// JoinAdmit is the serial admit-phase API; writing admit-only state
// here is its job and is not checked.
func (g *graph) JoinAdmit(p uint64) {
	g.nextH++
	g.ring.Insert(p)
	g.srv[g.nextH] = &rec{}
}

// badApply violates the contract in every way at once: it runs
// concurrently for lease-disjoint patches yet writes the srv map, the
// handle counter, the ring, and the shared RNG stream.
func (g *graph) badApply(h uint64) {
	g.srv[h] = &rec{}      // want `badApply writes the dhgraph srv map`
	g.nextH++              // want `badApply writes the handle counter`
	delete(g.srv, h)       // want `badApply deletes from the dhgraph srv map`
	g.ring.RemoveHandle(h) // want `badApply mutates the ring structure`
	_ = g.rng.Uint64()     // want `badApply draws from the shared RNG`
	g.JoinAdmit(h)         // want `badApply calls admit-phase API JoinAdmit`
}

// goodApply performs the sanctioned apply-phase mutation: records
// REACHED through the srv map are patched in place; the map itself is
// untouched.
func (g *graph) goodApply(h uint64, lst []uint64) {
	g.srv[h].out = lst
}

// RemoveRetire is the serial retire phase: dropping the departed
// server's srv-map record is its job — but the ring and the counters
// still belong to admit.
func (g *graph) RemoveRetire(h uint64) {
	delete(g.srv, h)
	g.nextH++ // want `RemoveRetire writes the handle counter`
}
