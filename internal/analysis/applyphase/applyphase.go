// Package applyphase machine-checks the PR 5 churn concurrency
// contract: functions on the apply/retire side of the admit/apply split
// (names matching *Apply/*Retire, or unexported apply*/retire*) run
// concurrently for lease-disjoint patches, so they must not write
// admit-only state — the dhgraph srv map, the ring structure, or the
// handle/RNG/store counters. Those writes belong in the serial admit
// phase, where trace order fixes handle assignment and RNG draws (the
// churntest differential harness proved byte-identical WriteState
// output depends on exactly this split).
//
// The check is a write-set walk over selector expressions: assignments,
// ++/--, delete() and mutating method calls whose base names an
// admit-only field. RemoveRetire is the one sanctioned exception: the
// retire phase is serial again and drops the departed srv-map record,
// so *Retire functions may write the srv map (but still not the ring or
// the counters).
package applyphase

import (
	"go/ast"
	"strings"

	"condisc/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "applyphase",
	Doc: "functions matching the *Apply/*Retire naming contract must not write admit-only " +
		"state (dhgraph srv map, ring structure, handle/RNG/store counters); the apply phase " +
		"runs concurrently across lease-disjoint patches (PR 5 contract)",
	Run: run,
}

// admitOnlyFields maps each admit-only selector field name to what it
// is, for the diagnostic text.
var admitOnlyFields = map[string]string{
	"srv":      "the dhgraph srv map",
	"ring":     "the ring structure",
	"Ring":     "the ring structure",
	"rng":      "the shared RNG",
	"nextH":    "the handle counter",
	"byH":      "the ring's handle index",
	"storeSeq": "the store sequence counter",
}

// ringMutators are the partition.Ring methods that change the
// decomposition; calling one through an admit-only ring field from the
// apply phase is a write in disguise.
var ringMutators = map[string]bool{
	"Insert": true, "Remove": true, "RemoveAt": true, "RemoveHandle": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			phase := phaseOf(fd.Name.Name)
			if phase == notApply {
				continue
			}
			checkBody(pass, fd, phase)
		}
	}
	return nil
}

type phase int

const (
	notApply phase = iota
	applyPhase
	retirePhase
)

func phaseOf(name string) phase {
	switch {
	case strings.HasSuffix(name, "Retire") || strings.HasPrefix(name, "retire"):
		return retirePhase
	case strings.HasSuffix(name, "Apply") || strings.HasPrefix(name, "apply"):
		return applyPhase
	}
	return notApply
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, ph phase) {
	report := func(n ast.Node, field, verb string) {
		what := admitOnlyFields[field]
		pass.Reportf(n.Pos(),
			"%s %s %s (admit-only state): *Apply/*Retire functions run concurrently for "+
				"lease-disjoint patches; ring, srv-map and counter writes belong in the "+
				"serial admit phase (PR 5 contract)",
			fd.Name.Name, verb, what)
	}
	// srvAllowed: the serial retire phase drops the departed server's
	// (empty) srv-map record; that is its job.
	srvAllowed := ph == retirePhase

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if f := writtenField(lhs); f != "" && !(f == "srv" && srvAllowed) {
					report(n, f, "writes")
				}
			}
		case *ast.IncDecStmt:
			if f := writtenField(n.X); f != "" && !(f == "srv" && srvAllowed) {
				report(n, f, "writes")
			}
		case *ast.CallExpr:
			checkCall(pass, n, fd, srvAllowed, report)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, fd *ast.FuncDecl, srvAllowed bool,
	report func(ast.Node, string, string)) {
	fun := analysis.Unparen(call.Fun)
	// delete(x.srv, h) and clear(x.srv)
	if id, ok := fun.(*ast.Ident); ok && (id.Name == "delete" || id.Name == "clear") && len(call.Args) >= 1 {
		if f := writtenField(call.Args[0]); f != "" && !(f == "srv" && srvAllowed) {
			report(call, f, "deletes from")
		}
		return
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// x.ring.Insert(...) / x.Ring.RemoveHandle(...) — ring mutation.
	if ringMutators[sel.Sel.Name] {
		if base, ok := analysis.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if base.Sel.Name == "ring" || base.Sel.Name == "Ring" {
				report(call, base.Sel.Name, "mutates")
				return
			}
		}
	}
	// x.rng.Uint64() — every draw advances the shared RNG stream, which
	// is a counter the admit phase owns (trace order = draw order).
	if base, ok := analysis.Unparen(sel.X).(*ast.SelectorExpr); ok && base.Sel.Name == "rng" {
		report(call, "rng", "draws from")
		return
	}
	// Calling back into the admit-phase API from apply/retire re-enters
	// serial-only code from concurrent context.
	if strings.HasSuffix(sel.Sel.Name, "Admit") {
		pass.Reportf(call.Pos(),
			"%s calls admit-phase API %s: admit mutates the ring and srv map and must stay "+
				"on the serial path (PR 5 contract)", fd.Name.Name, sel.Sel.Name)
	}
}

// writtenField returns the admit-only field name a write target names,
// or "". Only the outermost shape counts: g.srv = m, g.srv[h] = v,
// *d.ring = r and g.nextH++ are writes to the field, while
// g.srv[h].out = lst mutates a record REACHED through the map — the
// sanctioned in-place apply-phase mutation — and is not flagged.
func writtenField(e ast.Expr) string {
	switch x := analysis.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if _, ok := admitOnlyFields[x.Sel.Name]; ok {
			return x.Sel.Name
		}
	case *ast.IndexExpr:
		if s, ok := analysis.Unparen(x.X).(*ast.SelectorExpr); ok {
			if _, ok := admitOnlyFields[s.Sel.Name]; ok {
				return s.Sel.Name
			}
		}
	case *ast.StarExpr:
		if s, ok := analysis.Unparen(x.X).(*ast.SelectorExpr); ok {
			if _, ok := admitOnlyFields[s.Sel.Name]; ok {
				return s.Sel.Name
			}
		}
	}
	return ""
}
