package applyphase_test

import (
	"testing"

	"condisc/internal/analysis/analysistest"
	"condisc/internal/analysis/applyphase"
)

func TestApplyphase(t *testing.T) {
	analysistest.Run(t, "testdata/src/applyphasedata", "condisc/exemplar/applyphasedata", applyphase.Analyzer)
}
