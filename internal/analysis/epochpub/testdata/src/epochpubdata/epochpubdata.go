// Package epochpubdata is the epochpub exemplar: a miniature ring with
// an epoch publish, an immutable snapshot, and a p2p-style node with a
// version-stamped boundary, exercised by functions that violate (and
// respect) the PR 7 epoch-publication contract.
package epochpubdata

type Ring struct{ epoch uint64 }

func (r *Ring) Publish() { r.epoch++ }

type wave struct {
	ring *Ring
}

// runWave is the sanctioned publish point: every apply and retire of
// the wave has finished, so flipping readers to the new epoch is safe.
func (w *wave) runWave() {
	w.ring.Publish()
}

// admitSplit runs on the serial admit path BEFORE the wave's items are
// copied; publishing here would expose a decomposition whose items are
// still on their old owners.
func (w *wave) admitSplit() {
	w.ring.Publish() // want `admitSplit publishes an epoch from a churn phase function`
}

// applyMove runs concurrently for lease-disjoint events; publishing
// from one event would expose the other events half-applied.
func (w *wave) applyMove(r *Ring) {
	r.Publish() // want `applyMove publishes an epoch from a churn phase function`
}

// RemoveRetire runs serially but still before the wave publishes.
func (w *wave) RemoveRetire() {
	w.ring.Publish() // want `RemoveRetire publishes an epoch from a churn phase function`
}

// Snapshot models partition.Snapshot: immutable once published. Only
// package partition may build one; everyone else holds it read-only.
type Snapshot struct {
	epoch uint64
	byH   map[uint64]int
}

// mutateSnapshot writes a published snapshot in place — a reader
// holding it would observe torn state with no epoch change.
func mutateSnapshot(s *Snapshot) {
	s.epoch = 7  // want `mutateSnapshot writes field epoch of a Snapshot`
	s.byH[3] = 4 // want `mutateSnapshot writes field byH of a Snapshot`
	s.epoch++    // want `mutateSnapshot writes field epoch of a Snapshot`
}

// readSnapshot only reads: fine.
func readSnapshot(s *Snapshot) uint64 { return s.epoch }

// Node models p2p.Node: the segment boundary (end, succ) is guarded by
// a version stamp so stale handoff commits fast-fail.
type Node struct {
	end     uint64
	succ    int
	ringVer uint64
}

// setEndSuccLocked is the single sanctioned boundary writer: the
// version bump and the pointer writes are inseparable.
func (n *Node) setEndSuccLocked(end uint64, succ int) {
	n.end = end
	n.succ = succ
	n.ringVer++
}

// stabilize must route boundary moves through setEndSuccLocked; a raw
// write would skip the ringVer bump and let a stale commit land on a
// moved boundary.
func (n *Node) stabilize(end uint64, succ int) {
	n.end = end   // want `stabilize writes Node.end directly`
	n.succ = succ // want `stabilize writes Node.succ directly`
}

// bootstrap demonstrates the escape hatch: before the node serves
// requests no commit can be in flight, so a raw write is safe — and
// the justification is mandatory.
func (n *Node) bootstrap(end uint64) {
	//condisc:allow epochpub no sessions exist before the node serves
	n.end = end
}
