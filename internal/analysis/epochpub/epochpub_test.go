package epochpub_test

import (
	"testing"

	"condisc/internal/analysis/analysistest"
	"condisc/internal/analysis/epochpub"
)

func TestEpochpub(t *testing.T) {
	analysistest.Run(t, "testdata/src/epochpubdata", "condisc/exemplar/epochpubdata", epochpub.Analyzer)
}
