// Package epochpub machine-checks the epoch-publication contract of
// the wait-free read path (PR 7): readers resolve ownership against
// immutable epoch snapshots behind an atomic pointer, so the states a
// snapshot captures may only change at sanctioned publish points.
//
// Three rules:
//
//  1. No epoch publish from a churn phase function. The batch path's
//     single sanctioned publish point is runWave, AFTER every apply and
//     retire of the wave (copy → publish → delete); the serial path
//     publishes at the end of dhgraph.Build/Insert/Remove. A
//     ring.Publish() inside an admit*/apply*/retire* (or
//     *Admit/*Apply/*Retire) function would flip readers onto a
//     half-applied wave.
//  2. No writes to Snapshot fields outside package partition. A
//     published snapshot is immutable forever; copy-on-write happens in
//     partition.Ring before the epoch flip, never on the snapshot a
//     reader may already hold.
//  3. No direct writes to Node.end / Node.succ outside
//     setEndSuccLocked. The p2p node's segment boundary is a
//     version-stamped pointer update: every boundary move must bump
//     ringVer so in-flight handoff commits stamped with the old version
//     fast-fail instead of committing against a moved boundary.
//
// The opt-out is //condisc:allow epochpub <why> on the same or the
// previous line, and the justification is mandatory.
package epochpub

import (
	"go/ast"
	"go/types"
	"strings"

	"condisc/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "epochpub",
	Doc: "epoch-published state changes only at sanctioned publish points: no ring.Publish " +
		"from admit/apply/retire phase functions, no Snapshot field writes outside partition, " +
		"no Node.end/Node.succ writes outside setEndSuccLocked (PR 7 read-path contract)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	inPartition := pass.Pkg != nil && pass.Pkg.Name() == "partition"
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd, inPartition)
		}
	}
	return nil
}

// phaseFunc reports whether name matches the admit/apply/retire phase
// naming contract (see applyphase): those functions either run
// concurrently for lease-disjoint patches or run serially BEFORE the
// wave's publish point, so neither may publish an epoch itself.
func phaseFunc(name string) bool {
	for _, p := range []string{"admit", "apply", "retire"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	for _, s := range []string{"Admit", "Apply", "Retire"} {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, inPartition bool) {
	fname := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, fd, lhs, inPartition)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, fd, n.X, inPartition)
		case *ast.CallExpr:
			if phaseFunc(fname) && isRingPublish(pass, n) {
				pass.Reportf(n.Pos(),
					"%s publishes an epoch from a churn phase function: the wave's single "+
						"sanctioned publish point is after every apply and retire "+
						"(copy → publish → delete; PR 7 contract)", fname)
			}
		}
		return true
	})
}

// isRingPublish matches ring.Publish() / g.Ring.Publish(): a Publish
// call whose receiver is a partition.Ring by type, or names a ring/Ring
// variable or field when type information is unavailable.
func isRingPublish(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Publish" {
		return false
	}
	if tv, ok := pass.TypesInfo.Types[sel.X]; ok && tv.Type != nil {
		if namedIs(tv.Type, "Ring") {
			return true
		}
	}
	switch x := analysis.Unparen(sel.X).(type) {
	case *ast.Ident:
		return x.Name == "ring" || x.Name == "Ring"
	case *ast.SelectorExpr:
		return x.Sel.Name == "ring" || x.Sel.Name == "Ring"
	}
	return false
}

// checkWrite flags a write target that is (rule 2) a field of a
// Snapshot outside partition, or (rule 3) Node.end / Node.succ outside
// setEndSuccLocked. Writes through a container reached from the field
// (s.byH[h] = v) count: the snapshot owns everything it references.
func checkWrite(pass *analysis.Pass, fd *ast.FuncDecl, lhs ast.Expr, inPartition bool) {
	target := analysis.Unparen(lhs)
	if ix, ok := target.(*ast.IndexExpr); ok {
		target = analysis.Unparen(ix.X)
	}
	sel, ok := target.(*ast.SelectorExpr)
	if !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return
	}
	if !inPartition && namedIs(tv.Type, "Snapshot") && snapshotPkg(tv.Type) {
		pass.Reportf(lhs.Pos(),
			"%s writes field %s of a Snapshot: published snapshots are immutable; "+
				"copy-on-write belongs in partition.Ring before the epoch flip (PR 7 contract)",
			fd.Name.Name, sel.Sel.Name)
		return
	}
	if (sel.Sel.Name == "end" || sel.Sel.Name == "succ") &&
		namedIs(tv.Type, "Node") && fd.Name.Name != "setEndSuccLocked" {
		pass.Reportf(lhs.Pos(),
			"%s writes Node.%s directly: segment boundary moves must go through "+
				"setEndSuccLocked so ringVer stamps every move and stale handoff commits "+
				"fast-fail (PR 7 contract)", fd.Name.Name, sel.Sel.Name)
	}
}

// namedIs reports whether t (after stripping one pointer and aliases)
// is a named type with the given name, regardless of package — the
// contract types (partition.Ring, partition.Snapshot, p2p.Node) are
// effectively unique in the tree, and staying package-agnostic lets the
// testdata exemplar model them locally.
func namedIs(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Name() == name
}

// snapshotPkg narrows the Snapshot rule to the epoch-snapshot type: the
// one partition defines, or a testdata exemplar's local model. Other
// packages may name an unrelated type Snapshot (telemetry's metric dump
// does) without inheriting partition's immutability contract.
func snapshotPkg(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	name := named.Obj().Pkg().Name()
	return name == "partition" || strings.HasSuffix(name, "data")
}
