package telemetryhot_test

import (
	"testing"

	"condisc/internal/analysis/analysistest"
	"condisc/internal/analysis/telemetryhot"
)

// The import path places the exemplar under internal/telemetry, the one
// package the hot-path contract binds.
func TestTelemetryhot(t *testing.T) {
	analysistest.Run(t, "testdata/src/telemetryhotdata",
		"condisc/internal/telemetry/telemetryhotdata", telemetryhot.Analyzer)
}
