// Package telemetryhotdata is the telemetryhot exemplar: hot-marked
// record functions that allocate, lock, or touch maps/channels, next to
// the sanctioned atomic forms, plus record entry points missing the
// marker.
package telemetryhotdata

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Counter models the telemetry counter: the contract binds its Add/Inc
// by name.
type Counter struct {
	v  atomic.Int64
	mu sync.Mutex
	by map[string]int64
}

// Add is the sanctioned shape: a guard load and an atomic add.
//
//condisc:hot
func (c *Counter) Add(n int64) {
	c.v.Add(n)
}

// Inc may call another hot function of the same package.
//
//condisc:hot
func (c *Counter) Inc() { c.Add(1) }

// Gauge models the telemetry gauge with a marker-less entry point.
type Gauge struct{ v atomic.Int64 }

// Set is a record entry point without the marker: the contract must not
// be shed by deleting the comment.
func (g *Gauge) Set(v int64) { // want `Gauge\.Set is a telemetry record entry point and must carry the //condisc:hot marker`
	g.v.Store(v)
}

// Add carries the marker but locks: any non-atomic call is flagged.
//
//condisc:hot
func (g *Gauge) Add(n int64) {
	var mu sync.Mutex
	mu.Lock() // want `Add is //condisc:hot and calls sync\.Lock`
	g.v.Add(n)
	mu.Unlock() // want `Add is //condisc:hot and calls sync\.Unlock`
}

// Histogram models the bucket-indexed histogram.
type Histogram struct {
	buckets [65]atomic.Int64
	sum     atomic.Int64
}

// Observe is the sanctioned shape: bits.Len64 indexing plus atomics.
//
//condisc:hot
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
}

// observeLabeled allocates and formats on the hot path.
//
//condisc:hot
func (c *Counter) observeLabeled(label string, n int64) {
	key := fmt.Sprintf("%s-total", label) // want `observeLabeled is //condisc:hot and calls fmt\.Sprintf`
	c.mu.Lock()                           // want `observeLabeled is //condisc:hot and calls sync\.Lock`
	c.by[key] += n                        // want `observeLabeled is //condisc:hot and may not index a map`
	c.mu.Unlock()                         // want `observeLabeled is //condisc:hot and calls sync\.Unlock`
}

// observeAsync leaks goroutines, channels, and closures into a record.
//
//condisc:hot
func (c *Counter) observeAsync(n int64) {
	ch := make(chan int64, 1) // want `observeAsync is //condisc:hot and may not call make`
	go func() {               // want `observeAsync is //condisc:hot and may not spawn a goroutine` `observeAsync is //condisc:hot and may not build a closure`
		ch <- n
	}()
	c.v.Add(<-ch) // want `observeAsync is //condisc:hot and may not receive from a channel`
}

// observeSlice grows a buffer per record.
//
//condisc:hot
func (c *Counter) observeSlice(buf []int64, n int64) []int64 {
	defer c.v.Add(n)      // want `observeSlice is //condisc:hot and may not defer`
	return append(buf, n) // want `observeSlice is //condisc:hot and may not call append`
}

// observeBoxed converts to an interface, which boxes.
//
//condisc:hot
func (c *Counter) observeBoxed(n int64) any {
	c.v.Add(n)
	return any(n) // want `observeBoxed is //condisc:hot and may not convert to an interface`
}

// observeIndirect calls through a function value.
//
//condisc:hot
func (c *Counter) observeIndirect(record func(int64), n int64) {
	record(n) // want `observeIndirect is //condisc:hot and may not call through a function value`
}

// snapshot is unmarked: cold-path code may allocate and lock freely.
func (c *Counter) snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.by))
	for k, v := range c.by {
		out[k] = v
	}
	return out
}

// observeAllowed documents a justified escape hatch.
//
//condisc:hot
func (c *Counter) observeAllowed(n int64) {
	//condisc:allow telemetryhot exemplar of a justified opt-out: the formatted path is behind a never-true debug flag
	_ = fmt.Sprint(n)
	c.v.Add(n)
}
