// Package telemetryhot machine-checks the telemetry hot-path contract:
// the record functions the instrumented PR 7 read path calls on every
// operation (Counter.Add/Inc, Gauge.Set/Add, Histogram.Observe) must stay
// a handful of atomic writes — no allocation, no locking, no map or
// channel touch, no dynamic dispatch — or the observability layer starts
// perturbing the very path it observes (CI gates the instrumented
// BenchmarkReadUnderChurn at >= 0.9x the telemetry-off baseline).
//
// The contract is carried by //condisc:hot marker comments:
//
//  1. Every //condisc:hot function body is restricted to: atomic
//     operations (sync/atomic), math/bits, calls to other //condisc:hot
//     functions of the same package, allocation-free builtins, and plain
//     arithmetic/array indexing. Allocation (make, new, append, composite
//     literals, closures, interface conversions), locking (any other
//     call: sync.Mutex.Lock is just a non-atomic call), map access,
//     channel operations, defer, go, and select are all flagged.
//  2. The known record entry points — Counter.Add, Counter.Inc,
//     Gauge.Set, Gauge.Add, Histogram.Observe, and the flight
//     recorder's Journal.Record — must carry the marker, so the
//     restriction cannot be shed by deleting the comment.
//
// The opt-out is //condisc:allow telemetryhot <why> with a mandatory
// justification, for a future hot function that provably does not
// allocate despite tripping the syntactic net.
package telemetryhot

import (
	"go/ast"
	"go/types"
	"strings"

	"condisc/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "telemetryhot",
	Doc: "telemetry //condisc:hot record functions may not allocate, lock, or touch " +
		"maps/channels — atomics, math/bits, and other hot functions only — and the known " +
		"record entry points must carry the marker (read-path overhead contract)",
	Run: run,
}

// scopePaths are the packages the contract binds: the telemetry metric
// primitives (testdata exemplars sit under
// condisc/internal/telemetry/telemetryhotdata) and the flight-recorder
// ring, whose Record sits on the same instrumented mutation paths.
var scopePaths = []string{
	"condisc/internal/telemetry",
	"condisc/internal/journal",
}

func inScope(path string) bool {
	for _, sp := range scopePaths {
		if path == sp || strings.HasPrefix(path, sp+"/") {
			return true
		}
	}
	return false
}

// requiredHot maps receiver type name -> method names that must carry
// the //condisc:hot marker.
var requiredHot = map[string][]string{
	"Counter":   {"Add", "Inc"},
	"Gauge":     {"Set", "Add"},
	"Histogram": {"Observe"},
	"Journal":   {"Record"},
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !inScope(pass.Pkg.Path()) {
		return nil
	}
	// First pass: find every marked function, by object, so call sites
	// can recognize hot-to-hot calls.
	hotObjs := map[*types.Func]bool{}
	var hotDecls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if hasHotMarker(fd) {
				hotDecls = append(hotDecls, fd)
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					hotObjs[obj] = true
				}
			} else if recv, ok := recvTypeName(fd); ok {
				for _, want := range requiredHot[recv] {
					if fd.Name.Name == want {
						pass.Reportf(fd.Name.Pos(),
							"%s.%s is a telemetry record entry point and must carry the "+
								"//condisc:hot marker (the telemetryhot contract binds by marker)",
							recv, fd.Name.Name)
					}
				}
			}
		}
	}
	for _, fd := range hotDecls {
		if fd.Body != nil {
			checkHotBody(pass, fd, hotObjs)
		}
	}
	return nil
}

// hasHotMarker reports whether the declaration's doc group contains a
// //condisc:hot directive.
func hasHotMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//condisc:hot" || strings.HasPrefix(c.Text, "//condisc:hot ") {
			return true
		}
	}
	return false
}

// recvTypeName returns the name of the receiver's (pointer-stripped)
// named type, or false for plain functions.
func recvTypeName(fd *ast.FuncDecl) (string, bool) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := analysis.Unparen(t).(*ast.Ident); ok {
		return id.Name, true
	}
	return "", false
}

// checkHotBody flags every construct a hot record function may not use.
func checkHotBody(pass *analysis.Pass, fd *ast.FuncDecl, hotObjs map[*types.Func]bool) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s is //condisc:hot and may not spawn a goroutine", name)
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "%s is //condisc:hot and may not defer (defer allocates a frame)", name)
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "%s is //condisc:hot and may not select", name)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "%s is //condisc:hot and may not send on a channel", name)
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.Pos(), "%s is //condisc:hot and may not receive from a channel", name)
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s is //condisc:hot and may not build a closure (closures allocate)", name)
			return false
		case *ast.CompositeLit:
			pass.Reportf(n.Pos(), "%s is //condisc:hot and may not build a composite literal (allocates)", name)
		case *ast.IndexExpr:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "%s is //condisc:hot and may not index a map "+
						"(map access can grow, hash, and take the write barrier)", name)
				}
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "%s is //condisc:hot and may not range over a map", name)
				case *types.Chan:
					pass.Reportf(n.Pos(), "%s is //condisc:hot and may not range over a channel", name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, name, n, hotObjs)
		}
		return true
	})
}

// checkHotCall classifies one call inside a hot body: atomics, math/bits,
// same-package hot functions, and allocation-free builtins pass;
// everything else — including any lock method, which is just a call on a
// non-atomic type — is flagged.
func checkHotCall(pass *analysis.Pass, name string, call *ast.CallExpr, hotObjs map[*types.Func]bool) {
	// Type conversions are not calls; they only matter when the target is
	// an interface (boxing allocates).
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
			pass.Reportf(call.Pos(),
				"%s is //condisc:hot and may not convert to an interface (boxing allocates)", name)
		}
		return
	}
	if id, ok := analysis.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make", "new", "append":
				pass.Reportf(call.Pos(),
					"%s is //condisc:hot and may not call %s (allocates)", name, b.Name())
			}
			return
		}
	}
	if _, isLit := analysis.Unparen(call.Fun).(*ast.FuncLit); isLit {
		return // the literal itself is already flagged as a closure
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		pass.Reportf(call.Pos(),
			"%s is //condisc:hot and may not call through a function value (dynamic dispatch "+
				"hides allocation and locking from this check)", name)
		return
	}
	switch {
	case fn.Pkg() == nil: // error.Error and other universe methods
	case fn.Pkg().Path() == "sync/atomic", fn.Pkg().Path() == "math/bits":
	case fn.Pkg() == pass.Pkg && hotObjs[fn]:
	default:
		pass.Reportf(call.Pos(),
			"%s is //condisc:hot and calls %s.%s: only sync/atomic, math/bits, and other "+
				"//condisc:hot functions are allowed (anything else may allocate or lock)",
			name, fn.Pkg().Name(), fn.Name())
	}
}
