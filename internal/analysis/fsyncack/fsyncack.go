// Package fsyncack machine-checks the WAL acknowledgement discipline
// of internal/store and internal/handoff: any function that appends a
// framed record to a file (os.File Write/WriteAt/WriteString, or
// os.WriteFile) and then returns a success value must pass through
// Sync() on EVERY path first. Acknowledging an unsynced record breaks
// the zero-lost-acknowledged-writes guarantee the kill-and-reopen tests
// enforce; the PR 5 delete-then-commit bug was exactly this shape — the
// destructive range delete ran before the commit decision was durable,
// so a crash between them lost the range from both sides.
//
// The check is a branch-sensitive abstract interpretation over the
// function body with a two-value lattice (clean/dirty): file writes set
// dirty, Sync() calls (including deferred ones) set clean, and a return
// reached in a dirty state is reported — unless the return is an error
// propagation (`return err`, `return fmt.Errorf(...)`), because a
// failure report is not an acknowledgement.
package fsyncack

import (
	"go/ast"
	"go/types"
	"strings"

	"condisc/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "fsyncack",
	Doc: "in internal/store and internal/handoff, every path from a framed record write to " +
		"a returned acknowledgement must pass through Sync() (delete-then-commit / " +
		"lost-acknowledged-write bug class, PR 5)",
	Run: run,
}

// scopeSubstrings limit the analyzer to the two packages that own
// durable state. (Testdata exemplar packages pick matching paths.)
var scopeSubstrings = []string{"internal/store", "internal/handoff"}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, s := range scopeSubstrings {
		if strings.Contains(pass.Pkg.Path(), s) {
			inScope = true
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					analyzeFunc(pass, n.Body)
				}
				// Inspect continues into the body and will hit any
				// FuncLit below; don't re-analyze the decl body.
				return true
			case *ast.FuncLit:
				analyzeFunc(pass, n.Body)
				return true
			}
			return true
		})
	}
	return nil
}

// state is the write-durability lattice: dirty joins over clean.
type state int

const (
	clean state = iota
	dirty
)

func join(a, b state) state {
	if a == dirty || b == dirty {
		return dirty
	}
	return clean
}

// flow is the result of scanning a statement sequence: the out-state,
// and whether every path through it terminated (returned/panicked).
type flow struct {
	st   state
	term bool
}

type checker struct {
	pass *analysis.Pass
	// deferredSync: a `defer f.Sync()` anywhere in the function makes
	// every later return durable (order approximation: defers run
	// before the caller observes the return value's ack).
	deferredSync bool
}

func analyzeFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass}
	// Pre-scan for deferred syncs so early returns see them too.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested functions are analyzed on their own
		}
		if d, ok := n.(*ast.DeferStmt); ok && c.isSyncCall(d.Call) {
			c.deferredSync = true
		}
		return true
	})
	c.scanStmts(body.List, clean)
}

func (c *checker) scanStmts(stmts []ast.Stmt, st state) flow {
	for _, s := range stmts {
		f := c.scanStmt(s, st)
		if f.term {
			return flow{st: f.st, term: true}
		}
		st = f.st
	}
	return flow{st: st}
}

func (c *checker) scanStmt(s ast.Stmt, st state) flow {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return flow{st: c.evalExpr(s.X, st)}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			st = c.evalExpr(r, st)
		}
		return flow{st: st}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st = c.evalExpr(r, st)
		}
		if st == dirty && !c.deferredSync && !c.isErrorReturn(s) {
			c.pass.Reportf(s.Pos(),
				"acknowledgement returned over an unsynced framed write: every path from a "+
					"record append to its ack must pass through Sync() first — a crash here "+
					"forgets an acknowledged record (delete-then-commit bug class, PR 5)")
		}
		return flow{st: st, term: true}
	case *ast.BlockStmt:
		return c.scanStmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st = c.scanStmt(s.Init, st).st
		}
		st = c.evalExpr(s.Cond, st)
		thenF := c.scanStmts(s.Body.List, st)
		elseF := flow{st: st}
		if s.Else != nil {
			elseF = c.scanStmt(s.Else, st)
		}
		switch {
		case thenF.term && elseF.term:
			return flow{st: join(thenF.st, elseF.st), term: true}
		case thenF.term:
			return flow{st: elseF.st}
		case elseF.term:
			return flow{st: thenF.st}
		default:
			return flow{st: join(thenF.st, elseF.st)}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st = c.scanStmt(s.Init, st).st
		}
		if s.Cond != nil {
			st = c.evalExpr(s.Cond, st)
		}
		// Two passes reach the fixpoint of the 2-value lattice: the
		// second sees any dirtiness the first iteration produced.
		once := c.scanStmts(s.Body.List, st)
		twice := c.scanStmts(s.Body.List, join(st, once.st))
		return flow{st: join(st, twice.st)}
	case *ast.RangeStmt:
		st = c.evalExpr(s.X, st)
		once := c.scanStmts(s.Body.List, st)
		twice := c.scanStmts(s.Body.List, join(st, once.st))
		return flow{st: join(st, twice.st)}
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = c.scanStmt(s.Init, st).st
		}
		if s.Tag != nil {
			st = c.evalExpr(s.Tag, st)
		}
		return c.scanClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = c.scanStmt(s.Init, st).st
		}
		return c.scanClauses(s.Body, st)
	case *ast.SelectStmt:
		return c.scanClauses(s.Body, st)
	case *ast.LabeledStmt:
		return c.scanStmt(s.Stmt, st)
	case *ast.DeferStmt:
		// Argument evaluation can write (rare); the call itself runs at
		// return time and is modelled by the deferredSync pre-scan.
		for _, a := range s.Call.Args {
			st = c.evalExpr(a, st)
		}
		return flow{st: st}
	case *ast.GoStmt:
		return flow{st: st}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = c.evalExpr(v, st)
					}
				}
			}
		}
		return flow{st: st}
	default:
		return flow{st: st}
	}
}

// scanClauses handles switch/select bodies: each clause starts from the
// pre-state; the merged out-state joins the fall-out of every
// non-terminating clause plus the pre-state (no clause may match).
func (c *checker) scanClauses(body *ast.BlockStmt, st state) flow {
	out := st
	allTerm := len(body.List) > 0
	hasDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				st = c.evalExpr(e, st)
			}
		case *ast.CommClause:
			stmts = cl.Body
			if cl.Comm == nil {
				hasDefault = true
			}
		}
		f := c.scanStmts(stmts, st)
		if !f.term {
			out = join(out, f.st)
			allTerm = false
		}
	}
	return flow{st: out, term: allTerm && hasDefault}
}

// evalExpr folds write/sync effects of the calls inside an expression
// into the state. If the expression contains both, the sync wins (the
// idiomatic single-expression form is `return f.Sync()`).
func (c *checker) evalExpr(e ast.Expr, st state) state {
	if e == nil {
		return st
	}
	sawWrite, sawSync := false, false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case c.isSyncCall(call):
			sawSync = true
		case c.isFramedWrite(call):
			sawWrite = true
		}
		return true
	})
	switch {
	case sawSync:
		return clean
	case sawWrite:
		return dirty
	}
	return st
}

// isFramedWrite recognizes the raw durable-write primitives: the Write
// family on *os.File, and os.WriteFile.
func (c *checker) isFramedWrite(call *ast.CallExpr) bool {
	if analysis.IsMethodOn(c.pass.TypesInfo, call, "os", "File",
		"Write", "WriteAt", "WriteString") {
		return true
	}
	return analysis.IsPkgFunc(c.pass.TypesInfo, call, "os", "WriteFile")
}

func (c *checker) isSyncCall(call *ast.CallExpr) bool {
	return analysis.IsMethodOn(c.pass.TypesInfo, call, "os", "File", "Sync")
}

// isErrorReturn reports whether a return propagates a failure rather
// than acknowledging success: some result is an error-typed identifier
// (`return err`) or a direct error construction (fmt.Errorf,
// errors.New/Join). A tail call like `return os.Rename(...)` is NOT an
// error return — it can succeed, and then it IS the ack.
func (c *checker) isErrorReturn(ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		switch r := analysis.Unparen(r).(type) {
		case *ast.Ident:
			if r.Name == "nil" {
				continue
			}
			if obj := c.pass.TypesInfo.Uses[r]; obj != nil && isErrorType(obj.Type()) {
				return true
			}
		case *ast.CallExpr:
			if analysis.IsPkgFunc(c.pass.TypesInfo, r, "fmt", "Errorf") ||
				analysis.IsPkgFunc(c.pass.TypesInfo, r, "errors", "New", "Join") {
				return true
			}
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
