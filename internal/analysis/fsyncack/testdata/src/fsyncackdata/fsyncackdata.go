// Package fsyncackdata is the fsyncack exemplar: the PR 5
// delete-then-commit bug shape, plus the sanctioned
// write-sync-then-ack forms that must stay clean.
package fsyncackdata

import "os"

type wal struct {
	f     *os.File
	items map[uint64][]byte
}

// commitBad reproduces the delete-then-commit bug: the destructive
// range delete runs first, the commit record is appended — and the ack
// returns before the record is durable. A crash between the return and
// the page flush forgets the commit while the delete survives.
func (w *wal) commitBad(id uint64, rec []byte) error {
	delete(w.items, id) // destructive step, already applied
	if _, err := w.f.Write(rec); err != nil {
		return err
	}
	return nil // want `acknowledgement returned over an unsynced framed write`
}

// renameBad is the manifest variant: os.WriteFile leaves the data in
// the page cache, and the tail call's success IS the acknowledgement.
func renameBad(path string, raw []byte) error {
	if err := os.WriteFile(path+".tmp", raw, 0o644); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path) // want `acknowledgement returned over an unsynced framed write`
}

// commitGood syncs on the ack path; the error returns are failure
// reports, not acknowledgements.
func (w *wal) commitGood(id uint64, rec []byte) error {
	if _, err := w.f.Write(rec); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	delete(w.items, id) // destructive step AFTER the record is durable
	return nil
}

// deferGood uses a deferred sync: every return passes through it
// before the caller can observe the ack.
func (w *wal) deferGood(rec []byte) error {
	defer w.f.Sync()
	if _, err := w.f.Write(rec); err != nil {
		return err
	}
	return nil
}

// branchBad syncs on one branch only; the fallthrough path acks an
// unsynced record.
func (w *wal) branchBad(rec []byte, durable bool) error {
	if _, err := w.f.Write(rec); err != nil {
		return err
	}
	if durable {
		return w.f.Sync()
	}
	return nil // want `acknowledgement returned over an unsynced framed write`
}
