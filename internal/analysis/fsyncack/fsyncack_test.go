package fsyncack_test

import (
	"testing"

	"condisc/internal/analysis/analysistest"
	"condisc/internal/analysis/fsyncack"
)

// The import path places the exemplar inside internal/store, the
// analyzer's scope.
func TestFsyncack(t *testing.T) {
	analysistest.Run(t, "testdata/src/fsyncackdata", "condisc/internal/store/fsyncackdata", fsyncack.Analyzer)
}
