// Package segarithdata is the segarith exemplar: the historical 1-ulp
// aliases-to-full-circle bug, written the way PR 1 found it in the
// wild, plus the sanctioned forms that must stay clean.
package segarithdata

import "condisc/internal/interval"

// splitBad reproduces the PR 1 bug verbatim: halving a segment with
// floor division. For tiny.Len == 1 (a 1-ulp segment) the quotient is
// 0 — and Len 0 denotes the FULL CIRCLE, so the smallest possible
// segment aliases to the largest.
func splitBad(tiny interval.Segment) interval.Segment {
	return interval.Segment{
		Start: tiny.Start,
		Len:   tiny.Len / 2, // want `raw "/" arithmetic on interval\.Segment\.Len`
	}
}

// splitShift is the same bug spelled as a shift.
func splitShift(s interval.Segment) uint64 {
	return s.Len >> 1 // want `raw ">>" arithmetic on interval\.Segment\.Len`
}

// pointShift does raw arithmetic on a Point value itself.
func pointShift(p interval.Point) interval.Point {
	return p / 2 // want `raw "/" arithmetic on interval\.Point`
}

// laundered hides the Point behind a basic-type conversion; the
// conversion changes the static type but not the hazard.
func laundered(p interval.Point) uint64 {
	return uint64(p) >> 4 // want `raw ">>" arithmetic on interval\.Point`
}

// fromFloatBad truncates a float straight into the fixed-point grid.
func fromFloatBad(x float64) interval.Point {
	return interval.Point(x * 12345.0) // want `interval\.Point constructed by truncating a float`
}

// splitGood is the sanctioned form: the ceiling-division primitive the
// interval package owns.
func splitGood(tiny interval.Segment) interval.Segment {
	return tiny.Half()
}

// maskAllowed shows the escape hatch for arithmetic that is genuinely
// not segment-length math.
func maskAllowed(p interval.Point) interval.Point {
	return p >> 60 //condisc:allow segarith exemplar of a justified opt-out: extracts a hex digit, no length semantics
}

// unjustified shows that a bare directive is itself a finding.
func unjustified(p interval.Point) interval.Point {
	//condisc:allow segarith
	return p / 4 // want `directive requires a justification`
}
