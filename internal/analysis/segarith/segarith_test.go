package segarith_test

import (
	"testing"

	"condisc/internal/analysis/analysistest"
	"condisc/internal/analysis/segarith"
)

// The exemplar loads under a non-exempt import path: segarith checks
// every package except internal/interval and internal/continuous.
func TestSegarith(t *testing.T) {
	analysistest.Run(t, "testdata/src/segarithdata", "condisc/exemplar/segarithdata", segarith.Analyzer)
}
