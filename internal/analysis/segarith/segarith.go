// Package segarith forbids raw shift/division/float arithmetic on
// interval.Point values and interval.Segment lengths outside the two
// packages that own the ceiling-division primitives.
//
// The bug class (found twice): Segment.Len==0 denotes the FULL CIRCLE,
// so floor arithmetic on a sub-ulp length silently aliases the smallest
// possible segment to the largest. PR 1 fixed `s.Len / delta` in
// continuous.DeltaImages with ceiling division after the dhgraph fuzzer
// found a 1-ulp segment whose forward image connected its server to the
// whole ring; PR 3 re-found the same floor in two more consumers and
// moved the fix into interval.Segment.Half/HalfPlus. Every caller must
// go through those primitives; this analyzer makes sure the third
// rediscovery never gets written.
package segarith

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"condisc/internal/analysis"
)

// intervalPath is the package that owns Point/Segment arithmetic.
const intervalPath = "condisc/internal/interval"

// exemptSuffixes are the packages allowed to do raw length arithmetic:
// interval (the primitives themselves) and continuous (DeltaImages, the
// sanctioned ∆-ary image computation).
var exemptSuffixes = []string{"internal/interval", "internal/continuous"}

var Analyzer = &analysis.Analyzer{
	Name: "segarith",
	Doc: "forbid raw shift/division/float arithmetic on interval.Point and Segment.Len " +
		"outside internal/interval and internal/continuous; a floor-divided 1-ulp segment " +
		"aliases to the full circle (Len 0)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, suf := range exemptSuffixes {
		if strings.HasSuffix(pass.Pkg.Path(), suf) {
			return nil
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, n)
			case *ast.CallExpr:
				checkPointFromFloat(pass, n)
			}
			return true
		})
	}
	return nil
}

// riskyOps are the operators whose floor/truncation/overflow semantics
// can collapse a sub-ulp length to 0 (or wrap it past the ring size).
var riskyOps = map[token.Token]bool{
	token.QUO: true, // floor division: 1/2 == 0 == full circle
	token.REM: true,
	token.SHR: true, // 1>>1 == 0 == full circle
	token.SHL: true, // can shift a length to 0 mod 2^64
	token.MUL: true, // can wrap a length to 0 mod 2^64
}

func checkBinary(pass *analysis.Pass, b *ast.BinaryExpr) {
	if !riskyOps[b.Op] {
		return
	}
	for _, op := range []ast.Expr{b.X, b.Y} {
		switch classify(pass.TypesInfo, op) {
		case kindPoint:
			pass.Reportf(b.Pos(),
				"raw %q arithmetic on interval.Point outside internal/interval: "+
					"use Point.Half/HalfPlus/Back or interval.DeltaMap — floor/overflow "+
					"arithmetic on fixed-point values aliases sub-ulp results (PR 1/PR 3 bug class)",
				b.Op)
			return
		case kindSegLen:
			pass.Reportf(b.Pos(),
				"raw %q arithmetic on interval.Segment.Len outside internal/interval: "+
					"use Segment.Half/HalfPlus/BackImage or continuous.DeltaImages — a "+
					"floor-divided 1-ulp segment gets Len 0, which denotes the FULL CIRCLE "+
					"(PR 1/PR 3 bug class)",
				b.Op)
			return
		}
	}
}

// checkPointFromFloat flags conversions of float expressions into
// interval.Point: fixed-point values must be constructed through
// interval.FromFloat (which wraps and rounds on the grid), never by a
// bare truncating conversion.
func checkPointFromFloat(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || !analysis.IsNamed(tv.Type, intervalPath, "Point") {
		return
	}
	argT := pass.TypesInfo.Types[call.Args[0]].Type
	if argT == nil {
		return
	}
	if basic, ok := argT.Underlying().(*types.Basic); ok && basic.Info()&types.IsFloat != 0 {
		pass.Reportf(call.Pos(),
			"interval.Point constructed by truncating a float: use interval.FromFloat "+
				"(wraps mod 1 and rounds on the fixed-point grid)")
	}
}

type kind int

const (
	kindNone kind = iota
	kindPoint
	kindSegLen
)

// classify decides whether an operand is an interval.Point value or a
// Segment length, looking through parentheses and basic-type
// conversions (a conversion like uint64(p)/2 launders the type but not
// the hazard).
func classify(info *types.Info, e ast.Expr) kind {
	e = analysis.Unparen(e)
	if t := info.Types[e].Type; t != nil && analysis.IsNamed(t, intervalPath, "Point") {
		return kindPoint
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if e.Sel.Name == "Len" {
			if t := info.Types[e.X].Type; t != nil && analysis.IsNamed(t, intervalPath, "Segment") {
				return kindSegLen
			}
		}
	case *ast.CallExpr:
		// Basic-type conversion: classify the converted operand.
		if len(e.Args) == 1 {
			if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
				if _, basic := tv.Type.Underlying().(*types.Basic); basic {
					return classify(info, e.Args[0])
				}
			}
		}
	}
	return kindNone
}
