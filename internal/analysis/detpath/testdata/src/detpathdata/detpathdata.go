// Package detpathdata is the detpath exemplar: wall-clock reads,
// global randomness, and map-order leaks in a determinism-contract
// package, plus the sanctioned seeded/injected/sorted forms.
package detpathdata

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"time"
)

// stampBad reads the wall clock directly: two replays of the same
// trace produce different state.
func stampBad() int64 {
	return time.Now().UnixNano() // want `wall-clock read in a determinism-contract package`
}

// clockRefBad stores the clock as a value; calling through the
// variable would evade a call-site-only check, so the reference itself
// is flagged.
var clockRefBad = time.Now // want `reference to time\.Now in a determinism-contract package`

// drawBad draws from the process-global source.
func drawBad() int {
	return rand.IntN(6) // want `global math/rand source in a determinism-contract package`
}

// drawGood draws from a seeded generator: replayable.
func drawGood(seed uint64) uint64 {
	rng := rand.New(rand.NewPCG(seed, 0))
	return rng.Uint64()
}

// leakBad lets map iteration order reach an ordered sink.
func leakBad(m map[uint64]string) []string {
	var out []string
	for _, v := range m { // want `map iteration appends to "out" without sorting`
		out = append(out, v)
	}
	return out
}

// printBad writes output directly from inside the iteration.
func printBad(m map[uint64]string) {
	for k := range m { // want `map iteration feeds ordered output`
		fmt.Println(k)
	}
}

// leakGood sorts the collected slice before anyone can observe the
// iteration order.
func leakGood(m map[uint64]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// countGood aggregates commutatively; no order reaches the result.
func countGood(m map[uint64]string) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// ttlGood is a justified wall-clock use behind the escape hatch.
func ttlGood() int64 {
	//condisc:wallclock exemplar of a justified opt-out: receiver-silence TTL measured across real processes
	return time.Now().UnixNano()
}
