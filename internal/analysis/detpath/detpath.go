// Package detpath machine-checks the determinism contract of the
// churn differential harness (internal/churntest): the packages it
// replays — condisc, internal/dhgraph, internal/partition and
// internal/handoff — must produce byte-identical state from a seed, so
// their production code may not read the wall clock, draw from the
// global math/rand source, or let map iteration order leak into
// ordered output.
//
// Legitimate wall-clock uses (session TTLs, commit-record timestamps,
// entropy for non-replayed paths) opt out with an explicit
//
//	//condisc:wallclock <justification>
//
// on the same or preceding line; the justification is mandatory.
package detpath

import (
	"go/ast"
	"go/types"
	"strings"

	"condisc/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detpath",
	Doc: "forbid time.Now, the global math/rand source, and map iteration feeding ordered " +
		"output in the packages under the churntest determinism contract; opt out with " +
		"//condisc:wallclock <justification>",
	Run: run,
}

// contractPaths are the package paths (exact, or parents of testdata
// exemplars) bound by the churntest determinism contract.
var contractPaths = []string{
	"condisc",
	"condisc/internal/dhgraph",
	"condisc/internal/partition",
	"condisc/internal/handoff",
}

func inContract(path string) bool {
	for _, p := range contractPaths {
		if path == p || (p != "condisc" && strings.HasPrefix(path, p+"/")) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inContract(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		// Direct calls are flagged at the call; a bare reference to
		// time.Now (stored in a field, passed as a value) is flagged at
		// the reference, so `clk := time.Now; clk()` cannot evade the
		// check — clock injection sites carry the one annotation.
		callFuns := map[ast.Expr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				callFuns[analysis.Unparen(call.Fun)] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.SelectorExpr:
				if !callFuns[ast.Expr(n)] {
					checkClockRef(pass, n)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
	return nil
}

// clockFuncs are the wall-clock reads of package time.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// checkClockRef flags a reference to time.Now &c. in non-call position.
func checkClockRef(pass *analysis.Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !clockFuncs[fn.Name()] {
		return
	}
	pass.Reportf(sel.Pos(),
		"reference to time.%s in a determinism-contract package: this is a wall-clock "+
			"source; if this is a deliberate clock-injection default, annotate it "+
			"//condisc:wallclock <why>", fn.Name())
}

// randConstructors are the math/rand{,/v2} package functions that build
// seeded sources rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if analysis.IsPkgFunc(pass.TypesInfo, call, "time", "Now", "Since", "Until") {
		pass.Reportf(call.Pos(),
			"wall-clock read in a determinism-contract package: churntest replays this code "+
				"from a seed; inject the time or derive it from the trace, or annotate "+
				"//condisc:wallclock <why> if this path is never replayed")
		return
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if (path == "math/rand" || path == "math/rand/v2") && !randConstructors[fn.Name()] {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			pass.Reportf(call.Pos(),
				"global math/rand source in a determinism-contract package: rand.%s draws "+
					"from process-global state; draw from the seeded *rand.Rand instead",
				fn.Name())
		}
	}
}

// checkMapRange flags `for k := range m` over a map when the loop body
// feeds an order-sensitive sink — appending to a slice that is not
// subsequently sorted in the same function, sending on a channel, or
// writing output directly. Iteration that only fills other maps/sets or
// aggregates commutatively is order-insensitive and not flagged.
func checkMapRange(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	var appended []types.Object // slice vars appended to inside the loop
	directSink := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			directSink = true
		case *ast.CallExpr:
			if isOutputCall(pass.TypesInfo, n) {
				directSink = true
			}
		case *ast.AssignStmt:
			// x = append(x, ...) — remember x.
			for i, rhs := range n.Rhs {
				call, ok := analysis.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(n.Lhs) <= i {
					continue
				}
				if id, ok := analysis.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
					if lhs, ok := analysis.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						if obj := pass.TypesInfo.ObjectOf(lhs); obj != nil {
							appended = append(appended, obj)
						}
					}
				}
			}
		}
		return true
	})
	if directSink {
		pass.Reportf(rng.Pos(),
			"map iteration feeds ordered output in a determinism-contract package: iteration "+
				"order varies run to run; iterate a sorted key slice instead")
		return
	}
	if len(appended) == 0 {
		return
	}
	// Appending is fine if every appended slice is sorted later in the
	// enclosing function.
	for _, obj := range appended {
		if !sortedAfter(pass.TypesInfo, file, rng, obj) {
			pass.Reportf(rng.Pos(),
				"map iteration appends to %q without sorting it afterwards in a "+
					"determinism-contract package: iteration order varies run to run; sort "+
					"the slice or iterate sorted keys", obj.Name())
			return
		}
	}
}

// isOutputCall recognizes direct order-sensitive sinks: fmt printing
// and io writes.
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	if analysis.IsPkgFunc(info, call, "fmt",
		"Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println") {
		return true
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}

// sortedAfter reports whether obj is passed to a sort.* or slices.Sort*
// call positioned after the range statement, anywhere in the file.
func sortedAfter(info *types.Info, file *ast.File, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		arg := analysis.Unparen(call.Args[0])
		if u, ok := arg.(*ast.UnaryExpr); ok {
			arg = analysis.Unparen(u.X)
		}
		if id, ok := arg.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
