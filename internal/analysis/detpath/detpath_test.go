package detpath_test

import (
	"testing"

	"condisc/internal/analysis/analysistest"
	"condisc/internal/analysis/detpath"
)

// The import path places the exemplar under internal/dhgraph, one of
// the determinism-contract packages.
func TestDetpath(t *testing.T) {
	analysistest.Run(t, "testdata/src/detpathdata", "condisc/internal/dhgraph/detpathdata", detpath.Analyzer)
}
