// Package handlekey machine-checks the handle-keyed-state contract PR 2
// established: ring indices — bare ints produced by sort/search over
// the current decomposition — shift on every join and leave, so state
// that outlives a churn event must be keyed by the stable
// partition.Handle / condisc.ServerID instead. (The seed's index-keyed
// maps forced an O(n) renumber pass on every churn event; PR 2 deleted
// it, and this analyzer keeps it deleted.)
//
// Two shapes are flagged in the contract packages:
//
//  1. long-lived declarations — struct fields, package-level vars and
//     named types — whose type contains map[int]...: such a map can
//     only be index-keyed state;
//  2. map writes whose key expression is directly a position-returning
//     call (sort.Search, slices.BinarySearch*, Ring.Cover, CoverOf,
//     IndexOfHandle): storing under a current position, even into a
//     handle-typed map, bakes in a value the next churn event
//     invalidates.
package handlekey

import (
	"go/ast"
	"go/types"
	"strings"

	"condisc/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "handlekey",
	Doc: "forbid ring indices (int positions from sort/search) as map keys or struct fields " +
		"that outlive a churn event; key long-lived state by the stable partition.Handle / " +
		"ServerID (the O(n) renumber bug class PR 2 deleted)",
	Run: run,
}

// contractPaths: the churn-facing packages whose long-lived state must
// be handle-keyed. internal/partition itself is exempt — it OWNS the
// index<->handle mapping, and internal/graph &c. are static-snapshot
// structures rebuilt from scratch each use.
var contractPaths = []string{
	"condisc",
	"condisc/internal/dhgraph",
	"condisc/internal/route",
	"condisc/internal/cache",
	"condisc/internal/p2p",
}

func inContract(path string) bool {
	for _, p := range contractPaths {
		if path == p || (p != "condisc" && strings.HasPrefix(path, p+"/")) {
			return true
		}
	}
	return false
}

// positionFuncs are package-level functions returning current sorted
// positions.
var positionFuncs = map[string][]string{
	"sort":   {"Search", "SearchInts", "SearchFloat64s", "SearchStrings"},
	"slices": {"BinarySearch", "BinarySearchFunc"},
}

// positionMethods are methods returning current ring positions.
var positionMethods = map[string]bool{
	"Cover": true, "CoverOf": true, "IndexOfHandle": true,
}

func run(pass *analysis.Pass) error {
	if !inContract(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if mt := intKeyedMapIn(pass.TypesInfo, field.Type); mt != nil {
						pass.Reportf(field.Pos(),
							"struct field typed %s outlives churn events but is keyed by bare "+
								"int: ring indices shift on every join/leave; key it by "+
								"partition.Handle / ServerID (PR 2 renumber bug class)",
							types.TypeString(pass.TypesInfo.Types[field.Type].Type, nil))
					}
				}
			case *ast.GenDecl:
				checkGenDecl(pass, n)
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkIndexWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkIndexWrite(pass, n.X)
			}
			return true
		})
	}
	return nil
}

// checkGenDecl flags package-level vars and named types whose type
// contains an int-keyed map. (Function-local declarations are handled
// by the enclosing FuncDecl check below — locals are transient within
// one churn event and allowed.)
func checkGenDecl(pass *analysis.Pass, gd *ast.GenDecl) {
	if !atPackageLevel(pass, gd) {
		return
	}
	for _, spec := range gd.Specs {
		switch spec := spec.(type) {
		case *ast.ValueSpec:
			if spec.Type != nil && intKeyedMapIn(pass.TypesInfo, spec.Type) != nil {
				pass.Reportf(spec.Pos(),
					"package-level state keyed by bare int: ring indices shift on every "+
						"join/leave; key it by partition.Handle / ServerID (PR 2 renumber bug class)")
			}
		case *ast.TypeSpec:
			if intKeyedMapIn(pass.TypesInfo, spec.Type) != nil {
				pass.Reportf(spec.Pos(),
					"named type %s is keyed by bare int: ring indices shift on every "+
						"join/leave; key long-lived state by partition.Handle / ServerID "+
						"(PR 2 renumber bug class)", spec.Name.Name)
			}
		}
	}
}

// atPackageLevel reports whether the declaration is a top-level decl of
// one of the package's files.
func atPackageLevel(pass *analysis.Pass, gd *ast.GenDecl) bool {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if d == gd {
				return true
			}
		}
	}
	return false
}

// intKeyedMapIn walks a type expression and returns the first MapType
// whose key is the predeclared int, or nil. Named key types (Handle,
// ServerID — both uint64) never match.
func intKeyedMapIn(info *types.Info, texpr ast.Expr) *ast.MapType {
	var found *ast.MapType
	ast.Inspect(texpr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		mt, ok := n.(*ast.MapType)
		if !ok {
			return true
		}
		if kt := info.Types[mt.Key].Type; kt != nil && types.Identical(kt, types.Typ[types.Int]) {
			found = mt
			return false
		}
		return true
	})
	return found
}

// checkIndexWrite flags m[...] = v where the key expression contains a
// direct call to a position-returning function or method.
func checkIndexWrite(pass *analysis.Pass, lhs ast.Expr) {
	idx, ok := analysis.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if t := pass.TypesInfo.Types[idx.X].Type; t == nil {
		return
	} else if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	var bad *ast.CallExpr
	ast.Inspect(idx.Index, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil {
			if sig, isSig := fn.Type().(*types.Signature); isSig {
				if sig.Recv() != nil && positionMethods[fn.Name()] {
					bad = call
					return false
				}
				if sig.Recv() == nil && fn.Pkg() != nil {
					for _, name := range positionFuncs[fn.Pkg().Path()] {
						if fn.Name() == name {
							bad = call
							return false
						}
					}
				}
			}
		}
		return true
	})
	if bad != nil {
		fn := analysis.CalleeFunc(pass.TypesInfo, bad)
		pass.Reportf(lhs.Pos(),
			"map write keyed by the result of %s: that is a CURRENT ring position, "+
				"invalidated by the next join/leave; store under the stable "+
				"partition.Handle / ServerID instead (PR 2 renumber bug class)", fn.Name())
	}
}
