// Package handlekeydata is the handlekey exemplar: churn-unstable ring
// indices used as long-lived keys, plus the stable handle-keyed forms.
package handlekeydata

import "sort"

// Handle is the stable churn-surviving identity (stand-in for
// partition.Handle).
type Handle uint64

// tableBad keys long-lived per-server state by bare int: every
// join/leave shifts the indices and silently re-attributes the state.
type tableBad struct { // want `named type tableBad is keyed by bare int`
	byIdx map[int]string // want `struct field typed map\[int\]string`
}

// cacheBad is package-level index-keyed state.
var cacheBad map[int]int // want `package-level state keyed by bare int`

// tableGood keys the same state by the stable handle.
type tableGood struct {
	byHandle map[Handle]string
}

// storeBad bakes a CURRENT sorted position in as a map key.
func storeBad(points []uint64, p uint64, m map[int]string) {
	m[sort.Search(len(points), func(i int) bool { return points[i] >= p })] = "owner" // want `map write keyed by the result of Search`
}

// storeGood resolves the position to the stable handle first.
func storeGood(points []uint64, handles []Handle, p uint64, m map[Handle]string) {
	i := sort.Search(len(points), func(k int) bool { return points[k] >= p })
	m[handles[i]] = "owner"
}

// scratch is transient within one churn event: function-local
// index-keyed maps are allowed.
func scratch(points []uint64) map[int]uint64 {
	m := map[int]uint64{}
	for i, p := range points {
		m[i] = p
	}
	return m
}
