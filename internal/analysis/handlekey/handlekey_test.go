package handlekey_test

import (
	"testing"

	"condisc/internal/analysis/analysistest"
	"condisc/internal/analysis/handlekey"
)

// The import path places the exemplar under internal/route, one of the
// churn-facing contract packages (internal/partition itself is exempt).
func TestHandlekey(t *testing.T) {
	analysistest.Run(t, "testdata/src/handlekeydata", "condisc/internal/route/handlekeydata", handlekey.Analyzer)
}
