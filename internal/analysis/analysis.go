// Package analysis is a self-contained, stdlib-only reimplementation of
// the golang.org/x/tools/go/analysis surface this repository's custom
// vet suite needs: an Analyzer is a named check with a Run function, a
// Pass hands it one type-checked package, and diagnostics are positions
// plus messages. The container this project builds in has no module
// proxy access, so rather than vendoring x/tools (~10k files) the six
// project analyzers run on this shim; their Run functions are written
// against the same shape (pass.Fset / pass.TypesInfo / pass.Reportf) so
// they would port to the real framework by changing one import.
//
// The suite machine-checks the codebase's four load-bearing invariant
// families (see README "Static analysis & invariants"):
//
//   - sub-ulp segment arithmetic must go through the ceiling-division
//     primitives (segarith),
//   - the PR 5 admit/apply churn split: apply-phase code must not touch
//     admit-only state (applyphase),
//   - the PR 7 epoch-publication contract of the wait-free read path:
//     publishes only at sanctioned points, snapshots immutable,
//     boundary moves only through setEndSuccLocked (epochpub),
//   - WAL discipline: no acknowledgement may be returned over an
//     unsynced framed record (fsyncack),
//   - the determinism contract of the churn differential harness: no
//     wall clock, global randomness, or map-order leaks (detpath), and
//     no churn-unstable ring indices in long-lived keys (handlekey).
//
// Opt-outs are explicit comment directives that must carry a
// justification:
//
//	//condisc:wallclock <why>        – detpath, clock/global-rand hits
//	//condisc:allow <analyzer> <why> – any analyzer, same or previous line
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //condisc:allow directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant, and the
	// historical bug class it guards against.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass provides one type-checked package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report     func(Diagnostic)
	directives map[string]map[int][]directive // file -> line -> directives
}

type directive struct {
	name   string // "wallclock", "allow", ...
	reason string // text after the directive name
}

const directivePrefix = "//condisc:"

// NewPass assembles a Pass over an already type-checked package. report
// receives every non-suppressed diagnostic.
func NewPass(az *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	p := &Pass{
		Analyzer: az, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info,
		report:     report,
		directives: map[string]map[int][]directive{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(text, " ")
				pos := fset.Position(c.Pos())
				byLine := p.directives[pos.Filename]
				if byLine == nil {
					byLine = map[int][]directive{}
					p.directives[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line],
					directive{name: name, reason: strings.TrimSpace(reason)})
			}
		}
	}
	return p
}

// Reportf records a diagnostic at pos unless an opt-out directive
// covers it. A directive with an empty justification does not suppress:
// it produces its own diagnostic instead, so every escape hatch in the
// tree documents why it is safe.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		// The invariants bind production code; tests may use wall
		// clocks, global rand, and raw arithmetic freely.
		return
	}
	if d, ok := p.directiveFor(position, p.acceptedDirectives()...); ok {
		if d.reason == "" || (d.name == "allow" && !strings.ContainsRune(d.reason, ' ')) {
			p.report(Diagnostic{
				Analyzer: p.Analyzer.Name,
				Pos:      position,
				Message:  fmt.Sprintf("%s%s directive requires a justification string", directivePrefix, d.name),
			})
		}
		return
	}
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// acceptedDirectives lists the directive names that suppress this
// analyzer: the generic allow, plus wallclock for detpath (the ISSUE's
// historically named opt-out for legitimate entropy/TTL uses).
func (p *Pass) acceptedDirectives() []string {
	if p.Analyzer.Name == "detpath" {
		return []string{"allow", "wallclock"}
	}
	return []string{"allow"}
}

// directiveFor finds a matching directive on the diagnostic's line or
// the line immediately above it. An "allow" directive must name this
// analyzer as its first word; "wallclock" applies as-is.
func (p *Pass) directiveFor(pos token.Position, names ...string) (directive, bool) {
	byLine := p.directives[pos.Filename]
	if byLine == nil {
		return directive{}, false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			for _, want := range names {
				if d.name != want {
					continue
				}
				if d.name == "allow" {
					target, _, _ := strings.Cut(d.reason, " ")
					if target != p.Analyzer.Name {
						continue
					}
				}
				return d, true
			}
		}
	}
	return directive{}, false
}

// RunAnalyzers applies every analyzer to one type-checked package and
// returns the surviving diagnostics sorted by position.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, az := range analyzers {
		pass := NewPass(az, fset, files, pkg, info, func(d Diagnostic) {
			diags = append(diags, d)
		})
		if err := az.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", az.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// --- shared type helpers used by the analyzers ---

// IsNamed reports whether t (after stripping pointers and aliases) is
// the named type path.name.
func IsNamed(t types.Type, path, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// Unparen strips parentheses from an expression.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// CalleeFunc resolves the called function or method object of a call,
// or nil for calls through function values, type conversions, and
// builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (methods do not match).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsMethodOn reports whether call invokes a method with one of the
// given names whose receiver type is recvPath.recvName (possibly via
// pointer).
func IsMethodOn(info *types.Info, call *ast.CallExpr, recvPath, recvName string, names ...string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if !IsNamed(sig.Recv().Type(), recvPath, recvName) {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}
