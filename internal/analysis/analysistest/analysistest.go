// Package analysistest runs one condisc-vet analyzer over a testdata
// exemplar package and checks its diagnostics against `// want "regex"`
// comments in the sources — the same contract as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the in-repo
// framework. Each want comment names a regexp that must match a
// diagnostic reported on the SAME line; every diagnostic must be
// claimed by exactly one want, and every want must be satisfied.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"condisc/internal/analysis"
	"condisc/internal/analysis/load"
)

// expectation is one `// want "rx"` clause: a regexp anchored to a
// file and line.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the .go files in dir as a package with the given import
// path (the path decides which package-scoped analyzers consider it in
// scope), runs the analyzer, and diffs diagnostics against the want
// comments. Failures are reported on t.
func Run(t *testing.T, dir, importPath string, a *analysis.Analyzer) {
	t.Helper()
	root, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	l, err := load.New(root)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	src, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("analysistest: load %s: %v", dir, err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Analyzer{a}, src.Fset, src.Files, src.Pkg, src.Info)
	if err != nil {
		t.Fatalf("analysistest: run %s: %v", a.Name, err)
	}

	wants, err := collectWants(src)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	claimed := make([]bool, len(diags))
	for _, w := range wants {
		for i, d := range diags {
			if claimed[i] {
				continue
			}
			if filepath.Base(d.Pos.Filename) == w.file && d.Pos.Line == w.line && w.rx.MatchString(d.Message) {
				claimed[i] = true
				w.matched = true
				break
			}
		}
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
	for i, d := range diags {
		if !claimed[i] {
			t.Errorf("%s:%d: unexpected diagnostic: %s",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
}

// wantRe matches the comment marker; the payload after it is one or
// more quoted (double- or back-quoted) regexps.
var wantRe = regexp.MustCompile(`^//\s*want\s+(.*)$`)

func collectWants(src *load.Source) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range src.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := src.Fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: unquote %q: %v", pos.Filename, pos.Line, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{
						file: filepath.Base(pos.Filename), line: pos.Line, rx: rx, raw: pat,
					})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants, nil
}
