// Package load type-checks packages of this module for the condisc-vet
// analyzers without depending on golang.org/x/tools/go/packages: it
// shells out to `go list -export -deps -json` for metadata and compiled
// export data, parses the target package's source with go/parser, and
// type-checks it with go/types, resolving every import (stdlib and
// in-module alike) through the build cache's export files via the
// stdlib gc importer. This is the same division of labor as a
// `go vet -vettool` unit check: one package from source, dependencies
// from export data.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Meta is the `go list` metadata for one package.
type Meta struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// Loader resolves and type-checks packages against one `go list`
// snapshot of the module and its dependency universe.
type Loader struct {
	Fset *token.FileSet
	meta map[string]*Meta
	// roots are the packages matched by the patterns (DepOnly=false),
	// in go list order.
	roots []string
	imp   types.Importer
}

// Source is one parsed, type-checked package.
type Source struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// New runs `go list -e -export -deps -json <patterns>` in dir and
// returns a Loader over the result. Patterns default to "./...".
func New(dir string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.String())
	}
	l := &Loader{Fset: token.NewFileSet(), meta: map[string]*Meta{}}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m Meta
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decode go list output: %v", err)
		}
		l.meta[m.ImportPath] = &m
		if !m.DepOnly {
			l.roots = append(l.roots, m.ImportPath)
		}
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		m := l.meta[path]
		if m == nil || m.Export == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(m.Export)
	})
	return l, nil
}

// Roots returns the import paths matched by the patterns, excluding
// standard-library packages.
func (l *Loader) Roots() []string {
	var out []string
	for _, p := range l.roots {
		if m := l.meta[p]; m != nil && !m.Standard {
			out = append(out, p)
		}
	}
	return out
}

// Meta returns the go list record for an import path, or nil.
func (l *Loader) Meta(importPath string) *Meta { return l.meta[importPath] }

// LoadSource parses and type-checks the named module package from its
// non-test source files.
func (l *Loader) LoadSource(importPath string) (*Source, error) {
	m := l.meta[importPath]
	if m == nil {
		return nil, fmt.Errorf("load: unknown package %q", importPath)
	}
	files := make([]string, len(m.GoFiles))
	for i, f := range m.GoFiles {
		files[i] = filepath.Join(m.Dir, f)
	}
	return l.check(importPath, files)
}

// LoadDir parses every .go file in dir (testdata exemplar packages for
// analysistest) and type-checks them under the given import path —
// the path chooses which package-scoped analyzers consider the package
// in scope.
func (l *Loader) LoadDir(dir, importPath string) (*Source, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	return l.check(importPath, files)
}

func (l *Loader) check(importPath string, filenames []string) (*Source, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("load: type errors in %s: %v", importPath, typeErrs[0])
	}
	return &Source{ImportPath: importPath, Fset: l.Fset, Files: files, Pkg: pkg, Info: info}, nil
}

// ModuleRoot walks upward from dir to the enclosing go.mod directory.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		abs = parent
	}
}
