package cache

import (
	"fmt"
	"math"
	"testing"

	"condisc/internal/continuous"
)

// This file checks structural invariants of the caching protocol that the
// behavioural tests do not pin directly.

// checkAncestorClosed verifies that the active set is ancestor-closed: a
// node is only ever activated as the child of an active leaf, and collapse
// removes leaves — so every active node's parent must be active.
func checkAncestorClosed(t *testing.T, s *System, item string) {
	t.Helper()
	tr, ok := s.trees[item]
	if !ok {
		return
	}
	for z := range tr.active {
		if z.Depth == 0 {
			continue
		}
		if _, ok := tr.active[z.Parent()]; !ok {
			t.Fatalf("active node %+v has inactive parent", z)
		}
	}
}

func TestActiveTreeAncestorClosed(t *testing.T) {
	const n = 512
	c := int(math.Log2(n))
	s, rng := newSystem(n, c, 100)
	for epoch := 0; epoch < 6; epoch++ {
		for i := 0; i < n; i++ {
			item := fmt.Sprintf("it%d", i%3)
			s.Request(rng.IntN(n), item, rng)
			if i%128 == 0 {
				for j := 0; j < 3; j++ {
					checkAncestorClosed(t, s, fmt.Sprintf("it%d", j))
				}
			}
		}
		s.EndEpoch()
		for j := 0; j < 3; j++ {
			checkAncestorClosed(t, s, fmt.Sprintf("it%d", j))
		}
	}
}

// TestSupplyConservation: every request is supplied exactly once — the sum
// of per-server supplies equals the number of requests.
func TestSupplyConservation(t *testing.T) {
	const n = 512
	s, rng := newSystem(n, 8, 101)
	const reqs = 3000
	for i := 0; i < reqs; i++ {
		s.Request(rng.IntN(n), fmt.Sprintf("k%d", i%17), rng)
	}
	var total int64
	for _, v := range s.Supplied {
		total += v
	}
	if total != reqs {
		t.Fatalf("supplies %d != requests %d", total, reqs)
	}
}

// TestRootAlwaysActive: the root (home copy) never deactivates, no matter
// how many epochs pass.
func TestRootAlwaysActive(t *testing.T) {
	s, rng := newSystem(256, 4, 102)
	for i := 0; i < 512; i++ {
		s.Request(rng.IntN(256), "x", rng)
	}
	for e := 0; e < 100; e++ {
		s.EndEpoch()
	}
	tr := s.trees["x"]
	if _, ok := tr.active[continuous.Root]; !ok {
		t.Fatal("root deactivated")
	}
	if len(tr.active) != 1 {
		t.Fatalf("tree not fully collapsed: %d nodes", len(tr.active))
	}
}

// TestServingDepthNeverExceedsEntry: a request is served at or above its
// phase-II entry depth (the protocol never pushes a request deeper).
func TestServingDepthNeverExceedsEntry(t *testing.T) {
	const n = 512
	s, rng := newSystem(n, 4, 103)
	for i := 0; i < 2000; i++ {
		_, depth := s.Request(rng.IntN(n), "deep", rng)
		if depth > 64 {
			t.Fatalf("absurd serving depth %d", depth)
		}
	}
}

// TestManyColdItemsStayRootOnly: one request per item never triggers
// replication, so total copies stay zero.
func TestManyColdItemsStayRootOnly(t *testing.T) {
	const n = 512
	s, rng := newSystem(n, int(math.Log2(n)), 104)
	for i := 0; i < 1000; i++ {
		s.Request(rng.IntN(n), fmt.Sprintf("cold%d", i), rng)
	}
	if got := s.TotalCopies(); got != 0 {
		t.Fatalf("cold items created %d copies", got)
	}
}

// TestInterleavedHotColdEpochs: alternating hot and cold epochs grow and
// shrink the tree without invariant violations.
func TestInterleavedHotColdEpochs(t *testing.T) {
	const n = 1024
	c := int(math.Log2(n))
	s, rng := newSystem(n, c, 105)
	var sizes []int
	for e := 0; e < 8; e++ {
		reqs := 0
		if e%2 == 0 {
			reqs = 2 * n
		}
		for i := 0; i < reqs; i++ {
			s.Request(rng.IntN(n), "wave", rng)
		}
		s.EndEpoch()
		checkAncestorClosed(t, s, "wave")
		sizes = append(sizes, s.ActiveNodes("wave"))
	}
	// Hot epochs grow the tree, the following cold epoch shrinks it.
	if sizes[0] <= 1 {
		t.Fatalf("hot epoch did not grow the tree: %v", sizes)
	}
	if sizes[1] >= sizes[0] {
		t.Fatalf("cold epoch did not shrink the tree: %v", sizes)
	}
}

// TestSplitThresholdStability reproduces the §3.1 remark: when the request
// rate sits right at the threshold, the single-threshold protocol churns —
// every epoch it replicates copies that the end-of-epoch collapse deletes
// again. A lower collapse threshold retains them, eliminating the wasted
// replication work.
func TestSplitThresholdStability(t *testing.T) {
	const n = 1024
	c := int(math.Log2(n))
	copyChurn := func(collapseC int, seed uint64) int {
		s, rng := newSystem(n, c, seed)
		s.CollapseC = collapseC
		churn := 0
		for e := 0; e < 10; e++ {
			// Request rate right at the edge: grows layer 1, barely.
			for i := 0; i < 3*c; i++ {
				s.Request(rng.IntN(n), "edge", rng)
			}
			before := s.ActiveNodes("edge")
			s.EndEpoch()
			churn += before - s.ActiveNodes("edge") // copies deleted
		}
		return churn
	}
	single := copyChurn(0, 200)  // collapse at c (paper's base protocol)
	split := copyChurn(c/4, 200) // collapse only when clearly cold
	if single == 0 {
		t.Skip("edge workload did not trigger replication at this seed")
	}
	if split >= single {
		t.Errorf("split thresholds should churn fewer copies: split=%d single=%d",
			split, single)
	}
}

// TestCollapseCZeroMeansC: the default keeps the single-threshold
// behaviour byte-for-byte.
func TestCollapseCZeroMeansC(t *testing.T) {
	run := func(collapseC int) int {
		s, rng := newSystem(256, 5, 201)
		s.CollapseC = collapseC
		for i := 0; i < 512; i++ {
			s.Request(rng.IntN(256), "x", rng)
		}
		s.EndEpoch()
		return s.ActiveNodes("x")
	}
	if run(0) != run(5) {
		t.Error("CollapseC=0 must behave exactly like CollapseC=C")
	}
}
