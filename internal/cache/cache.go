// Package cache implements the dynamic caching protocol of §3 — the
// paper's mechanism for relieving hot spots.
//
// For each data item i with h(i) = y, the path tree rooted at y
// (Definition 5) is the infinite binary subtree of the continuous graph in
// which node z has children ℓ(z) and r(z). Because the Distance Halving
// lookup's phase II ascends the path tree along a uniformly random branch
// (§3.1, "every request for i reaches y via a random path in the path
// tree"), replicating the item down the tree spreads requests evenly: a
// request is served by the deepest *active* (item-holding) node on its
// branch.
//
// The Continuous Hot Spots Protocol implemented here:
//
//  1. Each leaf of the active tree counts the requests it served this
//     epoch; once the count exceeds the threshold c, the leaf replicates
//     the item into both children, blocking itself from further hits.
//  2. At the end of an epoch, a parent of two active leaves that together
//     supplied the item fewer than c times each deletes both children.
//  3. Step 2 repeats recursively, collapsing the tree when demand fades.
//
// The guarantees reproduced by the experiments (Theorems 3.6 and 3.8): each
// server supplies O(log² n) requests whp under ANY batch of n requests,
// caches hold O(log n) items whp, and the protocol adds no latency.
package cache

import (
	"math/rand/v2"
	"slices"

	"condisc/internal/continuous"
	"condisc/internal/hashing"
	"condisc/internal/interval"
	"condisc/internal/route"
)

// nodeState is the per-active-node bookkeeping.
type nodeState struct {
	hits int // requests served by this node during the current epoch
}

// activeTree is the set of active (item-holding) path-tree nodes for one
// item. The root is always active: it is the item's home server copy.
type activeTree struct {
	root   interval.Point
	active map[continuous.TreeNode]*nodeState
}

func newActiveTree(root interval.Point) *activeTree {
	return &activeTree{
		root:   root,
		active: map[continuous.TreeNode]*nodeState{continuous.Root: {}},
	}
}

// isLeaf reports whether z is an active node with no active children.
func (t *activeTree) isLeaf(z continuous.TreeNode) bool {
	if _, ok := t.active[z]; !ok {
		return false
	}
	_, l := t.active[z.Child(0)]
	_, r := t.active[z.Child(1)]
	return !l && !r
}

// System couples a Distance Halving network with per-item active trees.
type System struct {
	Net *route.Network
	H   *hashing.Func
	// C is the replication threshold c of protocol step 1 (typically
	// Θ(log n), §3.1). C <= 0 disables caching entirely (the ablation
	// baseline): every request routes to the item's home server.
	C int
	// CollapseC is the deletion threshold of protocol step 2. The paper
	// remarks that "it may be beneficial to set a different threshold in
	// Step (1) and Step (2); this adds stability to the active tree when
	// the rate of requests is close to the threshold". Zero means C (the
	// single-threshold protocol as stated).
	CollapseC int

	trees map[string]*activeTree
	// Supplied[i] counts requests served by server i's cache (root copies
	// included) — the "number of times V supplies a data item" of Thm 3.8.
	Supplied []int64
}

// NewSystem creates a caching system over the network with threshold c.
func NewSystem(net *route.Network, h *hashing.Func, c int) *System {
	if net.G.Delta != 2 {
		panic("cache: the hot-spot protocol requires the binary DH graph (∆=2)")
	}
	return &System{
		Net:      net,
		H:        h,
		C:        c,
		trees:    make(map[string]*activeTree),
		Supplied: make([]int64, net.G.N()),
	}
}

// tree returns (creating on demand) the active tree for an item.
func (s *System) tree(item string) *activeTree {
	t, ok := s.trees[item]
	if !ok {
		t = newActiveTree(s.H.Point(item))
		s.trees[item] = t
	}
	return t
}

// Request routes one request for item from server src. The request follows
// a Distance Halving lookup toward h(item) but is served by the first
// active tree node its phase II encounters. It returns the routing path
// (for latency verification: never longer than the plain lookup) and the
// depth of the serving node.
func (s *System) Request(src int, item string, rng *rand.Rand) ([]int, int) {
	t := s.tree(item)
	y := t.root

	if s.C <= 0 {
		// Baseline: no caching; full route to the home server.
		path := s.Net.DHLookup(src, y, rng)
		s.Supplied[path[len(path)-1]]++
		return path, 0
	}

	var served continuous.TreeNode
	found := false
	path, depth := s.Net.DHLookupStoppable(src, y, rng,
		func(digits []uint64, j int, q interval.Point) bool {
			node := nodeAt(digits, j)
			if _, ok := t.active[node]; ok {
				served, found = node, true
				return true
			}
			return false
		})
	if !found {
		// The walk was never intercepted; the root (depth 0) serves. This
		// happens only when phase I ended adjacent to the target already.
		served = continuous.Root
	}

	st := t.active[served]
	st.hits++
	server := s.Net.G.Ring.Cover(served.PointUnder(y))
	s.Supplied[server]++

	// Step 1: a leaf hit more than c times replicates into its children.
	if st.hits > s.C && t.isLeaf(served) {
		t.active[served.Child(0)] = &nodeState{}
		t.active[served.Child(1)] = &nodeState{}
	}
	return path, depth
}

// nodeAt converts a phase-I digit string prefix of length j into the
// path-tree node the lookup's phase II occupies at depth j.
func nodeAt(digits []uint64, j int) continuous.TreeNode {
	var tau uint64
	for i := 0; i < j && i < 64; i++ {
		tau |= (digits[i] & 1) << i
	}
	return continuous.EntryNode(tau, uint8(j))
}

// ServerJoined makes room in the supply accounting for a server inserted
// at index idx. The active trees are untouched: they are keyed by points of
// I, not server indices, so every cached copy outside the changed region
// keeps serving across the churn event.
func (s *System) ServerJoined(idx int) {
	s.Supplied = slices.Insert(s.Supplied, idx, 0)
}

// ServerLeft drops the departed server's supply counter.
func (s *System) ServerLeft(idx int) {
	s.Supplied = slices.Delete(s.Supplied, idx, idx+1)
}

// InvalidateRegion deletes the cached copies physically located in seg —
// the active tree nodes whose points fall in the changed segment — together
// with their active subtrees, so the active sets stay rooted subtrees of
// the path tree. Roots (the items' home copies) are never deleted; they
// migrate with the item store. Everything outside seg survives, which is
// what makes churn local for the §3 protocol: a join or leave invalidates
// only the copies a single server held, not every epoch's state.
func (s *System) InvalidateRegion(seg interval.Segment) {
	for _, t := range s.trees {
		var doomed map[continuous.TreeNode]struct{}
		for z := range t.active {
			if z.Depth > 0 && seg.Contains(z.PointUnder(t.root)) {
				if doomed == nil {
					doomed = make(map[continuous.TreeNode]struct{})
				}
				doomed[z] = struct{}{}
			}
		}
		if doomed == nil {
			continue
		}
		for z := range t.active {
			if z.Depth == 0 {
				continue
			}
			for d := uint8(1); d <= z.Depth; d++ {
				if _, gone := doomed[z.AncestorAt(d)]; gone {
					delete(t.active, z)
					break
				}
			}
		}
	}
}

// EndEpoch performs steps 2–3 of the protocol for every tree: recursively
// collapse sibling leaves that each supplied fewer than c requests, then
// reset the epoch counters.
func (s *System) EndEpoch() {
	for _, t := range s.trees {
		s.collapse(t)
		for _, st := range t.active {
			st.hits = 0
		}
	}
}

// collapse repeatedly removes cold sibling leaf pairs.
func (s *System) collapse(t *activeTree) {
	threshold := s.CollapseC
	if threshold <= 0 {
		threshold = s.C
	}
	for {
		var victims []continuous.TreeNode
		for z := range t.active {
			if z.Depth == 0 {
				continue
			}
			parent := z.Parent()
			bit := byte(z.Path >> (z.Depth - 1) & 1)
			sib := parent.Child(1 - bit)
			if !t.isLeaf(z) {
				continue
			}
			sst, ok := t.active[sib]
			if !ok || !t.isLeaf(sib) {
				continue
			}
			if t.active[z].hits < threshold && sst.hits < threshold {
				victims = append(victims, z, sib)
			}
		}
		if len(victims) == 0 {
			return
		}
		for _, v := range victims {
			delete(t.active, v)
		}
	}
}

// ActiveNodes returns the number of active nodes (cached copies, root
// included) for an item, or 0 if the item is unknown.
func (s *System) ActiveNodes(item string) int {
	if t, ok := s.trees[item]; ok {
		return len(t.active)
	}
	return 0
}

// MaxDepth returns the depth of the deepest active node for an item.
func (s *System) MaxDepth(item string) int {
	t, ok := s.trees[item]
	if !ok {
		return 0
	}
	max := 0
	for z := range t.active {
		if int(z.Depth) > max {
			max = int(z.Depth)
		}
	}
	return max
}

// ServerCacheSizes returns, per server, the number of distinct cached
// copies it stores across all items (excluding depth-0 roots, which are the
// original copies) — Theorem 3.8(i)'s quantity.
func (s *System) ServerCacheSizes() []int {
	sizes := make([]int, s.Net.G.N())
	for _, t := range s.trees {
		for z := range t.active {
			if z.Depth == 0 {
				continue
			}
			sizes[s.Net.G.Ring.Cover(z.PointUnder(t.root))]++
		}
	}
	return sizes
}

// TotalCopies returns the total number of non-root cached copies across
// the network (Observation 3.1 bounds it by 4q/c per item).
func (s *System) TotalCopies() int {
	total := 0
	for _, t := range s.trees {
		total += len(t.active) - 1
	}
	return total
}

// UpdateItem propagates a content update from the item's root along the
// active tree (§3.4, "Content Update"). It returns the number of update
// messages (one per non-root active node) and the parallel time (the tree
// depth), which the paper bounds by O(log(q/c)) <= O(log n).
func (s *System) UpdateItem(item string) (messages, parallelTime int) {
	t, ok := s.trees[item]
	if !ok {
		return 0, 0
	}
	// BFS from the root through active children.
	frontier := []continuous.TreeNode{continuous.Root}
	for len(frontier) > 0 {
		var next []continuous.TreeNode
		for _, z := range frontier {
			for b := byte(0); b < 2; b++ {
				c := z.Child(b)
				if _, ok := t.active[c]; ok {
					messages++
					next = append(next, c)
				}
			}
		}
		if len(next) > 0 {
			parallelTime++
		}
		frontier = next
	}
	return messages, parallelTime
}

// ResetLoadStats zeroes the network load and supply counters (e.g. between
// epochs of an experiment).
func (s *System) ResetLoadStats() {
	s.Net.ResetLoad()
	for i := range s.Supplied {
		s.Supplied[i] = 0
	}
}
