// Package cache implements the dynamic caching protocol of §3 — the
// paper's mechanism for relieving hot spots.
//
// For each data item i with h(i) = y, the path tree rooted at y
// (Definition 5) is the infinite binary subtree of the continuous graph in
// which node z has children ℓ(z) and r(z). Because the Distance Halving
// lookup's phase II ascends the path tree along a uniformly random branch
// (§3.1, "every request for i reaches y via a random path in the path
// tree"), replicating the item down the tree spreads requests evenly: a
// request is served by the deepest *active* (item-holding) node on its
// branch.
//
// The Continuous Hot Spots Protocol implemented here:
//
//  1. Each leaf of the active tree counts the requests it served this
//     epoch; once the count exceeds the threshold c, the leaf replicates
//     the item into both children, blocking itself from further hits.
//  2. At the end of an epoch, a parent of two active leaves that together
//     supplied the item fewer than c times each deletes both children.
//  3. Step 2 repeats recursively, collapsing the tree when demand fades.
//
// The guarantees reproduced by the experiments (Theorems 3.6 and 3.8): each
// server supplies O(log² n) requests whp under ANY batch of n requests,
// caches hold O(log n) items whp, and the protocol adds no latency.
//
// All per-server state is keyed by the ring's stable handle, and every
// non-root cached copy is additionally indexed by the point of I it
// physically occupies (copyIndex). Churn therefore touches only what it
// must: supply counters survive joins and leaves untouched, and
// InvalidateRegion locates the copies inside the changed segment in
// O(log C + k) for C total copies and k hits, instead of walking every
// item's whole tree.
package cache

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"sync"

	"condisc/internal/continuous"
	"condisc/internal/hashing"
	"condisc/internal/interval"
	"condisc/internal/partition"
	"condisc/internal/route"
	"condisc/internal/telemetry"
)

// nodeState is the per-active-node bookkeeping.
type nodeState struct {
	hits int // requests served by this node during the current epoch
}

// activeTree is the set of active (item-holding) path-tree nodes for one
// item. The root is always active: it is the item's home server copy.
type activeTree struct {
	root   interval.Point
	active map[continuous.TreeNode]*nodeState
}

func newActiveTree(root interval.Point) *activeTree {
	return &activeTree{
		root:   root,
		active: map[continuous.TreeNode]*nodeState{continuous.Root: {}},
	}
}

// isLeaf reports whether z is an active node with no active children.
func (t *activeTree) isLeaf(z continuous.TreeNode) bool {
	if _, ok := t.active[z]; !ok {
		return false
	}
	_, l := t.active[z.Child(0)]
	_, r := t.active[z.Child(1)]
	return !l && !r
}

// copyRef locates one non-root cached copy: the item it replicates and the
// path-tree node holding it. Its physical location is the node's point
// under the item's root.
type copyRef struct {
	p    interval.Point
	item string
	node continuous.TreeNode
}

func refLess(a, b copyRef) bool {
	if a.p != b.p {
		return a.p < b.p
	}
	if a.item != b.item {
		return a.item < b.item
	}
	if a.node.Depth != b.node.Depth {
		return a.node.Depth < b.node.Depth
	}
	return a.node.Path < b.node.Path
}

// copyIndex is the sorted-by-point index over all non-root cached copies
// across all items. Range queries cost O(log C + k); inserts and removes
// cost O(log C) plus a memmove bounded by the copy population C, which
// Observation 3.1 bounds by O(q/c) per item.
type copyIndex struct {
	refs []copyRef
}

func (ci *copyIndex) search(r copyRef) (int, bool) {
	i := sort.Search(len(ci.refs), func(k int) bool { return !refLess(ci.refs[k], r) })
	return i, i < len(ci.refs) && ci.refs[i] == r
}

func (ci *copyIndex) add(r copyRef) {
	if i, ok := ci.search(r); !ok {
		ci.refs = append(ci.refs, copyRef{})
		copy(ci.refs[i+1:], ci.refs[i:])
		ci.refs[i] = r
	}
}

func (ci *copyIndex) remove(r copyRef) {
	if i, ok := ci.search(r); ok {
		copy(ci.refs[i:], ci.refs[i+1:])
		ci.refs = ci.refs[:len(ci.refs)-1]
	}
}

// inRegion returns the copies physically located in seg. The segment may
// wrap past 1, in which case it is scanned as two ascending runs.
func (ci *copyIndex) inRegion(seg interval.Segment) []copyRef {
	if seg.Len == 0 { // full circle
		return append([]copyRef(nil), ci.refs...)
	}
	var out []copyRef
	run := func(from interval.Point) {
		i := sort.Search(len(ci.refs), func(k int) bool { return ci.refs[k].p >= from })
		for ; i < len(ci.refs) && seg.Contains(ci.refs[i].p); i++ {
			out = append(out, ci.refs[i])
		}
	}
	run(seg.Start)
	if seg.End() < seg.Start { // wraps: also scan [0, End)
		run(0)
	}
	return out
}

// System couples a Distance Halving network with per-item active trees.
type System struct {
	Net *route.Network
	H   *hashing.Func
	// C is the replication threshold c of protocol step 1 (typically
	// Θ(log n), §3.1). C <= 0 disables caching entirely (the ablation
	// baseline): every request routes to the item's home server.
	C int
	// CollapseC is the deletion threshold of protocol step 2. The paper
	// remarks that "it may be beneficial to set a different threshold in
	// Step (1) and Step (2); this adds stability to the active tree when
	// the rate of requests is close to the threshold". Zero means C (the
	// single-threshold protocol as stated).
	CollapseC int

	// mu guards trees, copies, and Supplied. Both sides take it in short
	// critical sections: churn mutators (InvalidateRegion, Forget) for the
	// whole mutation, the request path only around tree bookkeeping — the
	// routing itself runs lock-free against a ring snapshot, so a request
	// never waits out a churn wave, only a map update.
	mu     sync.Mutex
	trees  map[string]*activeTree
	copies copyIndex
	// Supplied counts requests served by each server's cache (root copies
	// included) — the "number of times V supplies a data item" of Thm 3.8 —
	// keyed by the server's stable handle, so churn never moves or
	// re-buckets a surviving server's count.
	Supplied map[partition.Handle]int64
	// supplied is the aggregate telemetry counter over every supply event
	// (the scrapeable sum of the per-handle map above).
	supplied *telemetry.Counter
}

// NewSystem creates a caching system over the network with threshold c.
func NewSystem(net *route.Network, h *hashing.Func, c int) *System {
	if net.G.Delta != 2 {
		panic("cache: the hot-spot protocol requires the binary DH graph (∆=2)")
	}
	return &System{
		Net:      net,
		H:        h,
		C:        c,
		trees:    make(map[string]*activeTree),
		Supplied: make(map[partition.Handle]int64, net.G.N()),
		supplied: telemetry.Default.Counter("condisc_cache_supplied_total"),
	}
}

// tree returns (creating on demand) the active tree for an item. The
// caller must hold mu; the returned pointer stays valid after release
// (trees are never removed from the map).
func (s *System) tree(item string) *activeTree {
	t, ok := s.trees[item]
	if !ok {
		t = newActiveTree(s.H.Point(item))
		s.trees[item] = t
	}
	return t
}

// supplyAt charges one supplied request to the server covering p under
// the given ring snapshot. The caller must hold mu.
func (s *System) supplyAt(snap *partition.Snapshot, p interval.Point) {
	s.Supplied[snap.CoverHandle(p)]++
	s.supplied.Inc()
}

// SuppliedOf returns the supply count of the server with stable handle h.
func (s *System) SuppliedOf(h partition.Handle) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Supplied[h]
}

// SuppliedAt returns the supply count of the server currently at ring
// index i.
func (s *System) SuppliedAt(i int) int64 {
	h := s.Net.G.Ring.HandleAt(i)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Supplied[h]
}

// Forget drops the departed server's supply counter.
func (s *System) Forget(h partition.Handle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.Supplied, h)
}

// Request routes one request for item from server src. The request follows
// a Distance Halving lookup toward h(item) but is served by the first
// active tree node its phase II encounters. It returns the routing path
// (for latency verification: never longer than the plain lookup) and the
// depth of the serving node.
func (s *System) Request(src int, item string, rng *rand.Rand) ([]int, int) {
	s.mu.Lock()
	t := s.tree(item)
	s.mu.Unlock()
	y := t.root
	snap := s.Net.G.Ring.Snapshot()

	if s.C <= 0 {
		// Baseline: no caching; full route to the home server.
		path := s.Net.DHLookup(src, y, rng)
		s.mu.Lock()
		s.Supplied[snap.HandleAt(path[len(path)-1])]++
		s.supplied.Inc()
		s.mu.Unlock()
		return path, 0
	}

	var served continuous.TreeNode
	found := false
	path, depth := s.Net.DHLookupStoppable(src, y, rng,
		func(digits []uint64, j int, q interval.Point) bool {
			node := nodeAt(digits, j)
			s.mu.Lock()
			_, ok := t.active[node]
			s.mu.Unlock()
			if ok {
				served, found = node, true
				return true
			}
			return false
		})
	if !found {
		// The walk was never intercepted; the root (depth 0) serves. This
		// happens only when phase I ended adjacent to the target already.
		served = continuous.Root
	}

	s.mu.Lock()
	st := t.active[served]
	if st == nil {
		// The serving node was invalidated by churn between the probe and
		// this bookkeeping; the root (never invalidated) serves instead.
		served = continuous.Root
		st = t.active[served]
	}
	st.hits++
	s.supplyAt(snap, served.PointUnder(y))

	// Step 1: a leaf hit more than c times replicates into its children.
	if st.hits > s.C && t.isLeaf(served) {
		s.activate(t, item, served.Child(0))
		s.activate(t, item, served.Child(1))
	}
	s.mu.Unlock()
	return path, depth
}

// activate adds a non-root node to the tree and the point index.
func (s *System) activate(t *activeTree, item string, z continuous.TreeNode) {
	t.active[z] = &nodeState{}
	s.copies.add(copyRef{p: z.PointUnder(t.root), item: item, node: z})
}

// deactivate removes a non-root node from the tree and the point index.
func (s *System) deactivate(t *activeTree, item string, z continuous.TreeNode) {
	delete(t.active, z)
	s.copies.remove(copyRef{p: z.PointUnder(t.root), item: item, node: z})
}

// nodeAt converts a phase-I digit string prefix of length j into the
// path-tree node the lookup's phase II occupies at depth j.
func nodeAt(digits []uint64, j int) continuous.TreeNode {
	var tau uint64
	for i := 0; i < j && i < 64; i++ {
		tau |= (digits[i] & 1) << i
	}
	return continuous.EntryNode(tau, uint8(j))
}

// InvalidateRegion deletes the cached copies physically located in seg —
// the active tree nodes whose points fall in the changed segment — together
// with their active subtrees, so the active sets stay rooted subtrees of
// the path tree. Roots (the items' home copies) are never deleted; they
// migrate with the item store. Everything outside seg survives, which is
// what makes churn local for the §3 protocol: a join or leave invalidates
// only the copies a single server held, not every epoch's state. The doomed
// copies are found through the point index, so the cost is O(log C + k·d)
// for k copies in the region with active subtrees of total size d — the
// total item count never enters.
func (s *System) InvalidateRegion(seg interval.Segment) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ref := range s.copies.inRegion(seg) {
		t, ok := s.trees[ref.item]
		if !ok {
			continue
		}
		s.deleteSubtree(t, ref.item, ref.node)
	}
}

// deleteSubtree removes z and every active descendant (z may already be
// gone if an ancestor was deleted first).
func (s *System) deleteSubtree(t *activeTree, item string, z continuous.TreeNode) {
	if _, ok := t.active[z]; !ok {
		return
	}
	stack := []continuous.TreeNode{z}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := t.active[n]; !ok {
			continue
		}
		s.deactivate(t, item, n)
		stack = append(stack, n.Child(0), n.Child(1))
	}
}

// EndEpoch performs steps 2–3 of the protocol for every tree: recursively
// collapse sibling leaves that each supplied fewer than c requests, then
// reset the epoch counters.
func (s *System) EndEpoch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for item, t := range s.trees {
		s.collapse(t, item)
		for _, st := range t.active {
			st.hits = 0
		}
	}
}

// collapse repeatedly removes cold sibling leaf pairs.
func (s *System) collapse(t *activeTree, item string) {
	threshold := s.CollapseC
	if threshold <= 0 {
		threshold = s.C
	}
	for {
		var victims []continuous.TreeNode
		for z := range t.active {
			if z.Depth == 0 {
				continue
			}
			parent := z.Parent()
			bit := byte(z.Path >> (z.Depth - 1) & 1)
			sib := parent.Child(1 - bit)
			if !t.isLeaf(z) {
				continue
			}
			sst, ok := t.active[sib]
			if !ok || !t.isLeaf(sib) {
				continue
			}
			if t.active[z].hits < threshold && sst.hits < threshold {
				victims = append(victims, z, sib)
			}
		}
		if len(victims) == 0 {
			return
		}
		for _, v := range victims {
			s.deactivate(t, item, v)
		}
	}
}

// ActiveNodes returns the number of active nodes (cached copies, root
// included) for an item, or 0 if the item is unknown.
func (s *System) ActiveNodes(item string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.trees[item]; ok {
		return len(t.active)
	}
	return 0
}

// MaxDepth returns the depth of the deepest active node for an item.
func (s *System) MaxDepth(item string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.trees[item]
	if !ok {
		return 0
	}
	max := 0
	for z := range t.active {
		if int(z.Depth) > max {
			max = int(z.Depth)
		}
	}
	return max
}

// ServerCacheSizes returns, per current ring index, the number of distinct
// cached copies each server stores across all items (excluding depth-0
// roots, which are the original copies) — Theorem 3.8(i)'s quantity.
func (s *System) ServerCacheSizes() []int {
	snap := s.Net.G.Ring.Snapshot()
	sizes := make([]int, snap.N())
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ref := range s.copies.refs {
		sizes[snap.Cover(ref.p)]++
	}
	return sizes
}

// TotalCopies returns the total number of non-root cached copies across
// the network (Observation 3.1 bounds it by 4q/c per item).
func (s *System) TotalCopies() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.copies.refs)
}

// UpdateItem propagates a content update from the item's root along the
// active tree (§3.4, "Content Update"). It returns the number of update
// messages (one per non-root active node) and the parallel time (the tree
// depth), which the paper bounds by O(log(q/c)) <= O(log n).
func (s *System) UpdateItem(item string) (messages, parallelTime int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.trees[item]
	if !ok {
		return 0, 0
	}
	// BFS from the root through active children.
	frontier := []continuous.TreeNode{continuous.Root}
	for len(frontier) > 0 {
		var next []continuous.TreeNode
		for _, z := range frontier {
			for b := byte(0); b < 2; b++ {
				c := z.Child(b)
				if _, ok := t.active[c]; ok {
					messages++
					next = append(next, c)
				}
			}
		}
		if len(next) > 0 {
			parallelTime++
		}
		frontier = next
	}
	return messages, parallelTime
}

// ResetLoadStats zeroes the network load and supply counters (e.g. between
// epochs of an experiment).
func (s *System) ResetLoadStats() {
	s.Net.ResetLoad()
	s.mu.Lock()
	defer s.mu.Unlock()
	clear(s.Supplied)
}

// DumpState writes a canonical, deterministic serialization of the whole
// caching state — thresholds, per-item active trees with epoch hit counts,
// the copy index, and the supply counters — for differential testing: two
// systems that evolved through equivalent histories produce byte-identical
// dumps (internal/churntest compares a concurrent churn run against its
// serial replay with it).
func (s *System) DumpState(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := fmt.Fprintf(w, "cache C=%d collapseC=%d copies=%d\n", s.C, s.CollapseC, len(s.copies.refs)); err != nil {
		return err
	}
	items := make([]string, 0, len(s.trees))
	for item := range s.trees {
		items = append(items, item)
	}
	sort.Strings(items)
	for _, item := range items {
		t := s.trees[item]
		nodes := make([]continuous.TreeNode, 0, len(t.active))
		for z := range t.active {
			nodes = append(nodes, z)
		}
		sort.Slice(nodes, func(i, j int) bool {
			if nodes[i].Depth != nodes[j].Depth {
				return nodes[i].Depth < nodes[j].Depth
			}
			return nodes[i].Path < nodes[j].Path
		})
		fmt.Fprintf(w, "tree %q root=%d\n", item, uint64(t.root))
		for _, z := range nodes {
			fmt.Fprintf(w, "  node d=%d path=%d hits=%d\n", z.Depth, z.Path, t.active[z].hits)
		}
	}
	for _, ref := range s.copies.refs {
		fmt.Fprintf(w, "copy p=%d item=%q d=%d path=%d\n", uint64(ref.p), ref.item, ref.node.Depth, ref.node.Path)
	}
	hs := make([]partition.Handle, 0, len(s.Supplied))
	for h := range s.Supplied {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	for _, h := range hs {
		if _, err := fmt.Fprintf(w, "supplied h=%d n=%d\n", h, s.Supplied[h]); err != nil {
			return err
		}
	}
	return nil
}
