package cache

import (
	"testing"

	"condisc/internal/continuous"
	"condisc/internal/interval"
)

// TestInvalidateRegionIsLocal: only the cached copies inside the changed
// segment (plus their subtrees) are dropped; the rest of the active tree —
// and other items' trees — survive the churn event.
func TestInvalidateRegionIsLocal(t *testing.T) {
	s, rng := newSystem(512, 4, 9)
	n := s.Net.G.N()
	for i := 0; i < 2*n; i++ {
		s.Request(rng.IntN(n), "hot", rng)
	}
	for i := 0; i < 8; i++ {
		s.Request(rng.IntN(n), "cold", rng)
	}
	before := s.ActiveNodes("hot")
	coldBefore := s.ActiveNodes("cold")
	if before < 5 {
		t.Fatalf("active tree too small to test: %d", before)
	}

	// Invalidate the region around one specific depth>=1 copy.
	tr := s.trees["hot"]
	var victim continuous.TreeNode
	for z := range tr.active {
		if z.Depth >= 1 && tr.isLeaf(z) {
			victim = z
			break
		}
	}
	vp := victim.PointUnder(tr.root)
	seg := interval.Segment{Start: vp - 1, Len: 3}
	s.InvalidateRegion(seg)

	if _, ok := tr.active[victim]; ok {
		t.Error("copy inside the invalidated region survived")
	}
	after := s.ActiveNodes("hot")
	if after >= before {
		t.Errorf("nothing invalidated: %d -> %d", before, after)
	}
	// Locality: a tiny segment kills at most the victim's subtree, not the
	// whole tree.
	if after < before/2 {
		t.Errorf("invalidation not local: %d -> %d nodes", before, after)
	}
	if s.ActiveNodes("cold") != coldBefore {
		t.Error("unrelated item's tree damaged")
	}
	// The active sets must remain rooted subtrees (parents of active nodes
	// active), or collapse bookkeeping breaks later.
	for z := range tr.active {
		if z.Depth == 0 {
			continue
		}
		if _, ok := tr.active[z.Parent()]; !ok {
			t.Fatalf("orphaned active node %v after invalidation", z)
		}
	}
	// Requests keep working after invalidation.
	for i := 0; i < 64; i++ {
		if path, _ := s.Request(rng.IntN(n), "hot", rng); len(path) == 0 {
			t.Fatal("request failed after invalidation")
		}
	}
}

// TestServerJoinedLeftPreservesCounters: churn keeps untouched servers'
// supply counters, and the slice tracks the network size.
func TestServerJoinedLeftPreservesCounters(t *testing.T) {
	s, rng := newSystem(64, 4, 10)
	n := s.Net.G.N()
	for i := 0; i < 4*n; i++ {
		s.Request(rng.IntN(n), "item", rng)
	}
	sum := func() (tot int64) {
		for _, v := range s.Supplied {
			tot += v
		}
		return
	}
	before := sum()
	want := append([]int64(nil), s.Supplied...)
	s.ServerJoined(10)
	if len(s.Supplied) != n+1 || s.Supplied[10] != 0 || sum() != before {
		t.Fatalf("ServerJoined corrupted counters (sum %d -> %d)", before, sum())
	}
	for i, v := range want {
		j := i
		if i >= 10 {
			j = i + 1
		}
		if s.Supplied[j] != v {
			t.Fatalf("counter %d moved wrongly: %d != %d", i, s.Supplied[j], v)
		}
	}
	s.ServerLeft(10)
	if len(s.Supplied) != n || sum() != before {
		t.Fatalf("ServerLeft corrupted counters")
	}
}
