package cache

import (
	"fmt"
	"testing"

	"condisc/internal/continuous"
	"condisc/internal/interval"
	"condisc/internal/partition"
)

// TestInvalidateRegionIsLocal: only the cached copies inside the changed
// segment (plus their subtrees) are dropped; the rest of the active tree —
// and other items' trees — survive the churn event.
func TestInvalidateRegionIsLocal(t *testing.T) {
	s, rng := newSystem(512, 4, 9)
	n := s.Net.G.N()
	for i := 0; i < 2*n; i++ {
		s.Request(rng.IntN(n), "hot", rng)
	}
	for i := 0; i < 8; i++ {
		s.Request(rng.IntN(n), "cold", rng)
	}
	before := s.ActiveNodes("hot")
	coldBefore := s.ActiveNodes("cold")
	if before < 5 {
		t.Fatalf("active tree too small to test: %d", before)
	}

	// Invalidate the region around one specific depth>=1 copy.
	tr := s.trees["hot"]
	var victim continuous.TreeNode
	for z := range tr.active {
		if z.Depth >= 1 && tr.isLeaf(z) {
			victim = z
			break
		}
	}
	vp := victim.PointUnder(tr.root)
	seg := interval.Segment{Start: vp - 1, Len: 3}
	s.InvalidateRegion(seg)

	if _, ok := tr.active[victim]; ok {
		t.Error("copy inside the invalidated region survived")
	}
	after := s.ActiveNodes("hot")
	if after >= before {
		t.Errorf("nothing invalidated: %d -> %d", before, after)
	}
	// Locality: a tiny segment kills at most the victim's subtree, not the
	// whole tree.
	if after < before/2 {
		t.Errorf("invalidation not local: %d -> %d nodes", before, after)
	}
	if s.ActiveNodes("cold") != coldBefore {
		t.Error("unrelated item's tree damaged")
	}
	// The active sets must remain rooted subtrees (parents of active nodes
	// active), or collapse bookkeeping breaks later.
	for z := range tr.active {
		if z.Depth == 0 {
			continue
		}
		if _, ok := tr.active[z.Parent()]; !ok {
			t.Fatalf("orphaned active node %v after invalidation", z)
		}
	}
	// The point index and the trees must agree exactly.
	checkCopyIndex(t, s)
	// Requests keep working after invalidation.
	for i := 0; i < 64; i++ {
		if path, _ := s.Request(rng.IntN(n), "hot", rng); len(path) == 0 {
			t.Fatal("request failed after invalidation")
		}
	}
}

// checkCopyIndex asserts the sorted-by-point copy index holds exactly the
// non-root active nodes of every tree.
func checkCopyIndex(t *testing.T, s *System) {
	t.Helper()
	wantTotal := 0
	for item, tr := range s.trees {
		for z := range tr.active {
			if z.Depth == 0 {
				continue
			}
			wantTotal++
			if _, ok := s.copies.search(copyRef{p: z.PointUnder(tr.root), item: item, node: z}); !ok {
				t.Fatalf("active copy %v of %q missing from the point index", z, item)
			}
		}
	}
	if len(s.copies.refs) != wantTotal {
		t.Fatalf("point index has %d refs, trees have %d non-root nodes", len(s.copies.refs), wantTotal)
	}
	for i := 1; i < len(s.copies.refs); i++ {
		if refLess(s.copies.refs[i], s.copies.refs[i-1]) {
			t.Fatalf("point index unsorted at %d", i)
		}
	}
}

// TestSuppliedPreservedAcross1kChurnEvents is the counter-preservation
// property test for the §3 layer: across 1000 random joins and leaves,
// every surviving server's supply counter is bit-for-bit identical to its
// value when the requests stopped, and the copy index stays consistent
// with the active trees throughout.
func TestSuppliedPreservedAcross1kChurnEvents(t *testing.T) {
	s, rng := newSystem(256, 5, 11)
	n := s.Net.G.N()
	for i := 0; i < 8*n; i++ {
		s.Request(rng.IntN(n), fmt.Sprintf("item%d", i%7), rng)
	}
	ring := s.Net.G.Ring

	want := make(map[partition.Handle]int64, len(s.Supplied))
	for h, v := range s.Supplied {
		want[h] = v
	}

	for op := 0; op < 1000; op++ {
		join := rng.IntN(2) == 0
		if ring.N() <= 32 {
			join = true
		} else if ring.N() >= 1024 {
			join = false
		}
		if join {
			idx, ok := s.Net.G.Insert(partition.MultipleChoice(ring, rng, 2))
			if !ok {
				continue
			}
			s.InvalidateRegion(ring.Segment(idx))
		} else {
			victim := rng.IntN(ring.N())
			h := ring.HandleAt(victim)
			seg := ring.Segment(victim)
			s.Net.G.Remove(victim)
			s.Net.Forget(h)
			s.Forget(h)
			s.InvalidateRegion(seg)
			delete(want, h)
		}
		if len(s.Supplied) != len(want) {
			t.Fatalf("op %d: %d supply entries, want %d", op, len(s.Supplied), len(want))
		}
		for h, v := range want {
			if s.Supplied[h] != v {
				t.Fatalf("op %d: survivor %d's supply changed: %d != %d", op, h, s.Supplied[h], v)
			}
		}
		if op%100 == 0 {
			checkCopyIndex(t, s)
		}
	}
	checkCopyIndex(t, s)
}
