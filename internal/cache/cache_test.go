package cache

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"condisc/internal/dhgraph"
	"condisc/internal/hashing"
	"condisc/internal/partition"
	"condisc/internal/route"
)

func newSystem(n, c int, seed uint64) (*System, *rand.Rand) {
	rng := rand.New(rand.NewPCG(seed, seed*7+1))
	ring := partition.Grow(partition.New(), n, partition.MultipleChooser(2), rng)
	net := route.NewNetwork(dhgraph.Build(ring, 2))
	h := hashing.NewKWise(16, rng)
	return NewSystem(net, h, c), rng
}

// TestSingleRequestServedByRoot: with a cold item the root serves and the
// path is a complete lookup.
func TestSingleRequestServedByRoot(t *testing.T) {
	s, rng := newSystem(256, 8, 1)
	path, depth := s.Request(rng.IntN(256), "item", rng)
	if depth != 0 {
		t.Errorf("cold item served at depth %d, want 0", depth)
	}
	home := s.Net.G.Ring.Cover(s.H.Point("item"))
	if path[len(path)-1] != home {
		t.Errorf("request did not reach the home server")
	}
	if s.ActiveNodes("item") != 1 {
		t.Errorf("active nodes = %d, want 1 (root only)", s.ActiveNodes("item"))
	}
}

// TestTreeGrowsUnderLoad: q requests for one item expand the active tree to
// ~q/c nodes within the Observation 3.1 bound of 4q/c, and depth stays near
// log2(q/c) (Lemma 3.3).
func TestTreeGrowsUnderLoad(t *testing.T) {
	const n = 1024
	c := int(math.Log2(n)) // c = Θ(log n)
	s, rng := newSystem(n, c, 2)
	q := n // one request per server, the paper's normalization
	for i := 0; i < q; i++ {
		s.Request(rng.IntN(n), "hot", rng)
	}
	nodes := s.ActiveNodes("hot")
	if nodes > 4*q/c+1 {
		t.Errorf("active nodes %d > 4q/c = %d (Obs 3.1)", nodes, 4*q/c)
	}
	if nodes < 3 {
		t.Errorf("active tree did not grow under hot load: %d nodes", nodes)
	}
	depth := s.MaxDepth("hot")
	bound := math.Log2(float64(q)/float64(c)) + 4
	if float64(depth) > bound {
		t.Errorf("tree depth %d > log(q/c)+O(1) = %.1f (Lemma 3.3)", depth, bound)
	}
}

// TestLeafCapsHits: Lemma 3.4(1) — no active node is hit more than c times
// before replicating, so no single cache point absorbs the hot spot. We
// check the per-server supply cap instead (Thm 3.6: O(log² n)).
func TestPerServerSupplyBounded(t *testing.T) {
	const n = 1024
	c := int(math.Log2(n))
	s, rng := newSystem(n, c, 3)
	for i := 0; i < n; i++ {
		s.Request(rng.IntN(n), "hot", rng)
	}
	logN := math.Log2(n)
	var max int64
	for _, v := range s.Supplied {
		if v > max {
			max = v
		}
	}
	if float64(max) > 4*logN*logN {
		t.Errorf("max supplies %d > O(log² n) = %.0f", max, 4*logN*logN)
	}
}

// TestCachingPreventsSwamping is the headline ablation: with caching off,
// the home server handles all q requests; with caching on, its load drops
// to O(log² n).
func TestCachingPreventsSwamping(t *testing.T) {
	const n = 1024
	q := n
	home := func(s *System) partition.Handle { return s.Net.G.Ring.CoverHandle(s.H.Point("hot")) }

	off, rngOff := newSystem(n, 0, 4)
	for i := 0; i < q; i++ {
		off.Request(rngOff.IntN(n), "hot", rngOff)
	}
	swamped := off.Supplied[home(off)]
	if swamped != int64(q) {
		t.Fatalf("baseline home server supplied %d, want all %d", swamped, q)
	}

	on, rngOn := newSystem(n, int(math.Log2(n)), 4)
	for i := 0; i < q; i++ {
		on.Request(rngOn.IntN(n), "hot", rngOn)
	}
	relieved := on.Supplied[home(on)]
	if relieved*8 > swamped {
		t.Errorf("caching reduced home load only to %d of %d", relieved, swamped)
	}
}

// TestNoCachingLatency: §3's "No Caching Latency" — a cached request's path
// is never longer than the plain DH lookup bound.
func TestNoCachingLatency(t *testing.T) {
	const n = 512
	s, rng := newSystem(n, 8, 5)
	bound := 2*math.Log2(n) + 2*math.Log2(s.Net.G.Ring.Smoothness()) + 3
	for i := 0; i < 2000; i++ {
		path, _ := s.Request(rng.IntN(n), fmt.Sprintf("it%d", i%3), rng)
		if float64(len(path)-1) > bound {
			t.Fatalf("cached request path %d > lookup bound %.1f", len(path)-1, bound)
		}
	}
}

// TestCollapseAfterDemandFades: Step 2–3 of the protocol — epochs without
// requests shrink the tree back to the root.
func TestCollapseAfterDemandFades(t *testing.T) {
	const n = 512
	c := int(math.Log2(n))
	s, rng := newSystem(n, c, 6)
	for i := 0; i < 2*n; i++ {
		s.Request(rng.IntN(n), "fad", rng)
	}
	if s.ActiveNodes("fad") < 3 {
		t.Fatal("tree should have grown")
	}
	// Epochs with no demand: each EndEpoch collapses cold leaf pairs.
	for e := 0; e < 64; e++ {
		s.EndEpoch()
	}
	if got := s.ActiveNodes("fad"); got != 1 {
		t.Errorf("after cold epochs active nodes = %d, want 1 (root)", got)
	}
}

// TestStableUnderSustainedDemand: with ongoing demand the tree reaches a
// steady size rather than collapsing or growing without bound.
func TestStableUnderSustainedDemand(t *testing.T) {
	const n = 512
	c := int(math.Log2(n))
	s, rng := newSystem(n, c, 7)
	var sizes []int
	for e := 0; e < 8; e++ {
		for i := 0; i < n; i++ {
			s.Request(rng.IntN(n), "steady", rng)
		}
		sizes = append(sizes, s.ActiveNodes("steady"))
		s.EndEpoch()
	}
	last := sizes[len(sizes)-1]
	if last > 4*n/c+1 || last < 2 {
		t.Errorf("steady-state tree size %d outside [2, 4q/c]; history %v", last, sizes)
	}
}

// TestMultiHotspotCacheSizes reproduces Theorem 3.8(i): with n requests
// spread over many items (a skewed demand), every server caches O(log n)
// items.
func TestMultiHotspotCacheSizes(t *testing.T) {
	const n = 1024
	c := int(math.Log2(n))
	s, rng := newSystem(n, c, 8)
	// Skewed batch: a few hot items plus a tail, Σq = n.
	type d struct {
		item string
		q    int
	}
	demands := []d{{"h0", n / 4}, {"h1", n / 8}, {"h2", n / 8}}
	rest := n - n/4 - n/8 - n/8
	for i := 0; i < rest; i++ {
		demands = append(demands, d{fmt.Sprintf("tail%d", i), 1})
	}
	for _, dd := range demands {
		for k := 0; k < dd.q; k++ {
			s.Request(rng.IntN(n), dd.item, rng)
		}
	}
	logN := math.Log2(n)
	maxCache := 0
	for _, sz := range s.ServerCacheSizes() {
		if sz > maxCache {
			maxCache = sz
		}
	}
	if float64(maxCache) > 4*logN {
		t.Errorf("max cache size %d > O(log n) = %.0f (Thm 3.8(i))", maxCache, 4*logN)
	}
	// Total new copies O(n / log n) (§3, "Small Caches").
	if total := s.TotalCopies(); float64(total) > 4*float64(n)/logN {
		t.Errorf("total copies %d > 4n/log n", total)
	}
}

// TestMultiHotspotSupplies reproduces Theorem 3.8(ii): max supplies
// O(log² n) under the skewed batch.
func TestMultiHotspotSupplies(t *testing.T) {
	const n = 1024
	c := int(math.Log2(n))
	s, rng := newSystem(n, c, 9)
	for i := 0; i < n; i++ {
		if i%4 == 0 {
			s.Request(rng.IntN(n), "hot", rng)
		} else {
			s.Request(rng.IntN(n), fmt.Sprintf("cold%d", i), rng)
		}
	}
	logN := math.Log2(n)
	var max int64
	for _, v := range s.Supplied {
		if v > max {
			max = v
		}
	}
	if float64(max) > 4*logN*logN {
		t.Errorf("max supplies %d > 4 log² n = %.0f", max, 4*logN*logN)
	}
}

// TestRoutingLoadBounded: total messages through any server (routing +
// caching) stay O(log² n) whp (§3 headline, "Swamp Prevention").
func TestRoutingLoadBounded(t *testing.T) {
	const n = 1024
	c := int(math.Log2(n))
	s, rng := newSystem(n, c, 10)
	s.ResetLoadStats()
	for i := 0; i < n; i++ {
		s.Request(rng.IntN(n), "hot", rng)
	}
	logN := math.Log2(n)
	if max := s.Net.MaxLoad(); float64(max) > 6*logN*logN {
		t.Errorf("max routed messages %d > 6 log² n = %.0f", max, 6*logN*logN)
	}
}

// TestContentUpdate reproduces §3.4: updating a hot item reaches all active
// nodes in O(log n) parallel time with one message per copy.
func TestContentUpdate(t *testing.T) {
	const n = 1024
	c := int(math.Log2(n))
	s, rng := newSystem(n, c, 11)
	for i := 0; i < 2*n; i++ {
		s.Request(rng.IntN(n), "upd", rng)
	}
	msgs, time := s.UpdateItem("upd")
	if msgs != s.ActiveNodes("upd")-1 {
		t.Errorf("update messages %d != copies %d", msgs, s.ActiveNodes("upd")-1)
	}
	if float64(time) > math.Log2(n)+4 {
		t.Errorf("update time %d > O(log n)", time)
	}
	if m, tt := s.UpdateItem("unknown"); m != 0 || tt != 0 {
		t.Error("updating unknown item should be a no-op")
	}
}

// TestRequestsSpreadAcrossLeaves: the randomness of routing divides
// requests roughly evenly among the active layer (the cache-tree property
// of §3.1, Figure 2).
func TestRequestsSpreadAcrossLeaves(t *testing.T) {
	const n = 2048
	s, rng := newSystem(n, 1<<30, 12) // huge c: tree stays at root
	// Manually activate layer 3 (8 nodes) and count hits per node.
	tr := s.tree("x")
	var layer []int
	for path := uint64(0); path < 8; path++ {
		tr.active[nodeAt([]uint64{path & 1, path >> 1 & 1, path >> 2 & 1}, 3)] = &nodeState{}
	}
	const reqs = 4000
	for i := 0; i < reqs; i++ {
		s.Request(rng.IntN(n), "x", rng)
	}
	for path := uint64(0); path < 8; path++ {
		st := tr.active[nodeAt([]uint64{path & 1, path >> 1 & 1, path >> 2 & 1}, 3)]
		layer = append(layer, st.hits)
	}
	// Each of the 8 nodes should get ~reqs/8 = 500; allow ±50%.
	for i, h := range layer {
		if h < reqs/16 || h > reqs {
			t.Errorf("layer-3 node %d hit %d times, want ~%d", i, h, reqs/8)
		}
	}
}

func TestPanicsOnNonBinaryGraph(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	ring := partition.Grow(partition.New(), 64, partition.SingleChooser, rng)
	net := route.NewNetwork(dhgraph.Build(ring, 4))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for ∆ != 2")
		}
	}()
	NewSystem(net, hashing.NewKWise(2, rng), 4)
}
