package cache

import (
	"fmt"
	"testing"

	"condisc/internal/continuous"
	"condisc/internal/interval"
)

// setupItems populates the system with `items` known items (root-only
// trees) plus one hot item whose active tree holds 2^depth-ish copies
// spread over I. Returns the hot tree.
func setupItems(s *System, items, depth int) *activeTree {
	for i := 0; i < items; i++ {
		s.tree(fmt.Sprintf("cold-%d", i))
	}
	t := s.tree("hot")
	var grow func(z continuous.TreeNode)
	grow = func(z continuous.TreeNode) {
		if int(z.Depth) >= depth {
			return
		}
		for b := byte(0); b < 2; b++ {
			c := z.Child(b)
			s.activate(t, "hot", c)
			grow(c)
		}
	}
	grow(continuous.Root)
	return t
}

// BenchmarkInvalidateRegion is the regression benchmark for the point-
// indexed invalidation: the cost of invalidating a fixed-size region must
// track the number of copies in the region, not the total number of items.
// The items=1k and items=32k rows must be near-identical (the dense-index
// era walked every item's whole tree: ~32× apart).
func BenchmarkInvalidateRegion(b *testing.B) {
	for _, items := range []int{1_000, 32_000} {
		b.Run(fmt.Sprintf("items=%d", items), func(b *testing.B) {
			s, _ := newSystem(256, 4, 33)
			t := setupItems(s, items, 6) // 126 hot copies among `items` trees
			// A region holding exactly one deep copy with no active children:
			// each iteration deletes it and puts it back untimed.
			var victim continuous.TreeNode
			for z := range t.active {
				if int(z.Depth) == 6 {
					victim = z
					break
				}
			}
			vp := victim.PointUnder(t.root)
			seg := interval.Segment{Start: vp, Len: 1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.InvalidateRegion(seg)
				b.StopTimer()
				s.activate(t, "hot", victim)
				b.StartTimer()
			}
		})
	}
}

// BenchmarkInvalidateRegionMiss measures the pure lookup cost when the
// changed region holds no copies at all — the common case for a join in a
// cold part of the ring. It must not depend on the item count either.
func BenchmarkInvalidateRegionMiss(b *testing.B) {
	for _, items := range []int{1_000, 32_000} {
		b.Run(fmt.Sprintf("items=%d", items), func(b *testing.B) {
			s, _ := newSystem(256, 4, 34)
			t := setupItems(s, items, 6)
			// A 1-ulp region just outside any copy point.
			var any continuous.TreeNode
			for z := range t.active {
				if z.Depth > 0 {
					any = z
					break
				}
			}
			seg := interval.Segment{Start: any.PointUnder(t.root) - 1, Len: 1}
			if s.copies.inRegion(seg) != nil {
				b.Skip("collision: region unexpectedly holds a copy")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.InvalidateRegion(seg)
			}
		})
	}
}
