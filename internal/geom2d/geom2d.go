// Package geom2d provides the planar geometry substrate for the
// two-dimensional constructions of §5: vectors on the unit torus, convex
// polygons, half-plane clipping, convex intersection, and the shear maps of
// the Gabber–Galil continuous graph.
package geom2d

import "math"

// Vec is a point or vector in the plane.
type Vec struct{ X, Y float64 }

// Add returns u + v.
func (u Vec) Add(v Vec) Vec { return Vec{u.X + v.X, u.Y + v.Y} }

// Sub returns u - v.
func (u Vec) Sub(v Vec) Vec { return Vec{u.X - v.X, u.Y - v.Y} }

// Dot returns the inner product.
func (u Vec) Dot(v Vec) float64 { return u.X*v.X + u.Y*v.Y }

// Scale returns s·u.
func (u Vec) Scale(s float64) Vec { return Vec{s * u.X, s * u.Y} }

// Norm2 returns |u|².
func (u Vec) Norm2() float64 { return u.Dot(u) }

// TorusDist2 returns the squared distance between u and v on the unit
// torus (coordinates wrapped mod 1).
func TorusDist2(u, v Vec) float64 {
	dx := wrapDiff(u.X - v.X)
	dy := wrapDiff(u.Y - v.Y)
	return dx*dx + dy*dy
}

func wrapDiff(d float64) float64 {
	d -= math.Round(d)
	return d
}

// WrapVec reduces both coordinates into [0,1).
func WrapVec(v Vec) Vec {
	return Vec{v.X - math.Floor(v.X), v.Y - math.Floor(v.Y)}
}

// Polygon is a convex polygon with counter-clockwise vertices.
type Polygon []Vec

// Square returns the axis-aligned square [x0,x1]×[y0,y1].
func Square(x0, y0, x1, y1 float64) Polygon {
	return Polygon{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}}
}

// Area returns the polygon area (shoelace; positive for CCW).
func (p Polygon) Area() float64 {
	if len(p) < 3 {
		return 0
	}
	a := 0.0
	for i := 0; i < len(p); i++ {
		j := (i + 1) % len(p)
		a += p[i].X*p[j].Y - p[j].X*p[i].Y
	}
	return a / 2
}

// Centroid returns the polygon centroid (valid for non-degenerate convex
// polygons).
func (p Polygon) Centroid() Vec {
	a := p.Area()
	if a == 0 {
		// Degenerate: average vertices.
		var c Vec
		for _, v := range p {
			c = c.Add(v)
		}
		if len(p) > 0 {
			c = c.Scale(1 / float64(len(p)))
		}
		return c
	}
	var cx, cy float64
	for i := 0; i < len(p); i++ {
		j := (i + 1) % len(p)
		w := p[i].X*p[j].Y - p[j].X*p[i].Y
		cx += (p[i].X + p[j].X) * w
		cy += (p[i].Y + p[j].Y) * w
	}
	return Vec{cx / (6 * a), cy / (6 * a)}
}

// BBox returns the axis-aligned bounding box (min, max).
func (p Polygon) BBox() (Vec, Vec) {
	if len(p) == 0 {
		return Vec{}, Vec{}
	}
	min, max := p[0], p[0]
	for _, v := range p[1:] {
		min.X = math.Min(min.X, v.X)
		min.Y = math.Min(min.Y, v.Y)
		max.X = math.Max(max.X, v.X)
		max.Y = math.Max(max.Y, v.Y)
	}
	return min, max
}

// Translate returns the polygon shifted by d.
func (p Polygon) Translate(d Vec) Polygon {
	out := make(Polygon, len(p))
	for i, v := range p {
		out[i] = v.Add(d)
	}
	return out
}

// Linear applies the linear map with matrix rows (a b; c d) to every
// vertex. Shears (determinant 1) preserve area and convexity.
func (p Polygon) Linear(a, b, c, d float64) Polygon {
	out := make(Polygon, len(p))
	for i, v := range p {
		out[i] = Vec{a*v.X + b*v.Y, c*v.X + d*v.Y}
	}
	// A negative determinant flips orientation; restore CCW.
	if out.Area() < 0 {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}

// ClipHalfPlane returns the part of p with n·x <= c (Sutherland–Hodgman
// single-plane clip). The result is convex (possibly empty).
func ClipHalfPlane(p Polygon, n Vec, c float64) Polygon {
	if len(p) == 0 {
		return nil
	}
	var out Polygon
	for i := 0; i < len(p); i++ {
		cur, next := p[i], p[(i+1)%len(p)]
		curIn := n.Dot(cur) <= c
		nextIn := n.Dot(next) <= c
		if curIn {
			out = append(out, cur)
		}
		if curIn != nextIn {
			// Edge crosses the boundary: add the intersection point.
			t := (c - n.Dot(cur)) / n.Dot(next.Sub(cur))
			out = append(out, cur.Add(next.Sub(cur).Scale(t)))
		}
	}
	return out
}

// ConvexIntersect returns p ∩ q by clipping p against each edge of the
// convex CCW polygon q.
func ConvexIntersect(p, q Polygon) Polygon {
	out := p
	for i := 0; i < len(q) && len(out) > 0; i++ {
		a, b := q[i], q[(i+1)%len(q)]
		// Inside of a CCW edge (a,b) is the left side: normal pointing
		// right of the edge, keep n·x <= n·a.
		e := b.Sub(a)
		n := Vec{e.Y, -e.X}
		out = ClipHalfPlane(out, n, n.Dot(a))
	}
	return out
}

// SplitWrap cuts a polygon with coordinates in (-1, 2) into its unit-torus
// pieces: each piece is the intersection with an integer-translate of the
// unit square, translated back into [0,1)². Pieces below minArea are
// dropped (numerical slivers).
func SplitWrap(p Polygon, minArea float64) []Polygon {
	var out []Polygon
	min, max := p.BBox()
	for kx := math.Floor(min.X); kx < max.X; kx++ {
		for ky := math.Floor(min.Y); ky < max.Y; ky++ {
			piece := ConvexIntersect(p, Square(kx, ky, kx+1, ky+1))
			if piece.Area() > minArea {
				out = append(out, piece.Translate(Vec{-kx, -ky}))
			}
		}
	}
	return out
}

// ContainsPoint reports whether the convex CCW polygon contains v (edges
// inclusive within eps).
func (p Polygon) ContainsPoint(v Vec, eps float64) bool {
	if len(p) < 3 {
		return false
	}
	for i := 0; i < len(p); i++ {
		a, b := p[i], p[(i+1)%len(p)]
		e := b.Sub(a)
		cross := e.X*(v.Y-a.Y) - e.Y*(v.X-a.X)
		if cross < -eps {
			return false
		}
	}
	return true
}

// BBoxOverlap reports whether two bounding boxes intersect.
func BBoxOverlap(min1, max1, min2, max2 Vec) bool {
	return min1.X <= max2.X && min2.X <= max1.X && min1.Y <= max2.Y && min2.Y <= max1.Y
}
