package geom2d

import (
	"math"
	"math/rand/v2"
	"testing"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestAreaAndCentroid(t *testing.T) {
	sq := Square(0, 0, 2, 2)
	if !almostEq(sq.Area(), 4, 1e-12) {
		t.Errorf("area = %v", sq.Area())
	}
	c := sq.Centroid()
	if !almostEq(c.X, 1, 1e-12) || !almostEq(c.Y, 1, 1e-12) {
		t.Errorf("centroid = %v", c)
	}
	tri := Polygon{{0, 0}, {1, 0}, {0, 1}}
	if !almostEq(tri.Area(), 0.5, 1e-12) {
		t.Errorf("triangle area = %v", tri.Area())
	}
}

func TestClipHalfPlane(t *testing.T) {
	sq := Square(0, 0, 1, 1)
	// Keep x <= 0.5.
	left := ClipHalfPlane(sq, Vec{1, 0}, 0.5)
	if !almostEq(left.Area(), 0.5, 1e-12) {
		t.Errorf("clipped area = %v", left.Area())
	}
	// Clip everything away.
	none := ClipHalfPlane(sq, Vec{1, 0}, -1)
	if none.Area() != 0 {
		t.Errorf("full clip should be empty, area %v", none.Area())
	}
	// Clip nothing.
	all := ClipHalfPlane(sq, Vec{1, 0}, 2)
	if !almostEq(all.Area(), 1, 1e-12) {
		t.Errorf("no-op clip area = %v", all.Area())
	}
}

func TestConvexIntersect(t *testing.T) {
	a := Square(0, 0, 1, 1)
	b := Square(0.5, 0.5, 1.5, 1.5)
	inter := ConvexIntersect(a, b)
	if !almostEq(inter.Area(), 0.25, 1e-12) {
		t.Errorf("intersection area = %v", inter.Area())
	}
	c := Square(2, 2, 3, 3)
	if got := ConvexIntersect(a, c).Area(); got != 0 {
		t.Errorf("disjoint intersection area = %v", got)
	}
}

// TestShearPreservesArea: the Gabber–Galil maps are measure preserving —
// the heart of Theorem 5.1's applicability.
func TestShearPreservesArea(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 200; trial++ {
		p := Square(rng.Float64(), rng.Float64(), 1+rng.Float64(), 1+rng.Float64())
		f := p.Linear(1, 1, 0, 1)   // f(x,y) = (x+y, y)
		g := p.Linear(1, 0, 1, 1)   // g(x,y) = (x, x+y)
		fi := p.Linear(1, -1, 0, 1) // f⁻¹
		for _, q := range []Polygon{f, g, fi} {
			if !almostEq(q.Area(), p.Area(), 1e-9) {
				t.Fatalf("shear changed area %v -> %v", p.Area(), q.Area())
			}
		}
	}
}

// TestSplitWrapConservesArea: wrapping a sheared polygon back into the
// torus conserves total area.
func TestSplitWrapConservesArea(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 200; trial++ {
		x0, y0 := rng.Float64(), rng.Float64()
		p := Square(x0, y0, x0+0.3, y0+0.3).Linear(1, 1, 0, 1)
		pieces := SplitWrap(p, 1e-15)
		total := 0.0
		for _, piece := range pieces {
			total += piece.Area()
			min, max := piece.BBox()
			if min.X < -1e-9 || min.Y < -1e-9 || max.X > 1+1e-9 || max.Y > 1+1e-9 {
				t.Fatalf("piece escapes the unit square: %v %v", min, max)
			}
		}
		if !almostEq(total, p.Area(), 1e-9) {
			t.Fatalf("split-wrap area %v != %v", total, p.Area())
		}
	}
}

func TestContainsPoint(t *testing.T) {
	tri := Polygon{{0, 0}, {1, 0}, {0, 1}}
	if !tri.ContainsPoint(Vec{0.2, 0.2}, 1e-12) {
		t.Error("interior point not contained")
	}
	if tri.ContainsPoint(Vec{0.8, 0.8}, 1e-12) {
		t.Error("exterior point contained")
	}
	if !tri.ContainsPoint(Vec{0.5, 0.5}, 1e-9) {
		t.Error("boundary point should be contained within eps")
	}
}

func TestTorusDist(t *testing.T) {
	a, b := Vec{0.05, 0.5}, Vec{0.95, 0.5}
	if d := TorusDist2(a, b); !almostEq(d, 0.01, 1e-12) {
		t.Errorf("torus dist² = %v, want 0.01", d)
	}
	if w := WrapVec(Vec{1.25, -0.25}); !almostEq(w.X, 0.25, 1e-12) || !almostEq(w.Y, 0.75, 1e-12) {
		t.Errorf("WrapVec = %v", w)
	}
}

func TestLinearRestoresOrientation(t *testing.T) {
	p := Square(0, 0, 1, 1)
	// Reflection (det = -1) must still return a CCW polygon.
	r := p.Linear(-1, 0, 0, 1)
	if r.Area() <= 0 {
		t.Errorf("reflected polygon not CCW: area %v", r.Area())
	}
}

func TestBBoxOverlap(t *testing.T) {
	if !BBoxOverlap(Vec{0, 0}, Vec{1, 1}, Vec{0.5, 0.5}, Vec{2, 2}) {
		t.Error("overlapping boxes reported disjoint")
	}
	if BBoxOverlap(Vec{0, 0}, Vec{1, 1}, Vec{1.5, 0}, Vec{2, 1}) {
		t.Error("disjoint boxes reported overlapping")
	}
}
