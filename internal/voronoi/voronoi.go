// Package voronoi computes planar ordinary Voronoi diagrams on the unit
// torus (Definition 6 of §5.1): each generator point is associated with the
// cell of locations closer to it than to any other generator. The dual
// adjacency (which cells share an edge) is the Delaunay triangulation.
//
// The construction is the distributed-friendly one the paper describes:
// each cell is computed separately and locally by clipping half-planes of
// the bisectors with nearby generators, nearest first, stopping once no
// farther generator can cut the cell. Torus topology is handled by
// considering the 3×3 replicas of every generator.
package voronoi

import (
	"sort"

	"condisc/internal/geom2d"
)

// Diagram is a Voronoi tessellation of the unit torus.
type Diagram struct {
	Sites []geom2d.Vec
	// Cells[i] is site i's cell in site-centered coordinates (it may
	// straddle the unit square; its area is exact and its shape convex).
	Cells []geom2d.Polygon
	// Adj[i] lists the sites whose cells share an edge with cell i
	// (Delaunay neighbours), sorted.
	Adj [][]int
}

// Compute builds the diagram for the given generator points (coordinates
// wrapped into [0,1)). At least 2 sites are required.
func Compute(sites []geom2d.Vec) *Diagram {
	n := len(sites)
	if n < 2 {
		panic("voronoi: need at least 2 sites")
	}
	d := &Diagram{
		Sites: make([]geom2d.Vec, n),
		Cells: make([]geom2d.Polygon, n),
		Adj:   make([][]int, n),
	}
	for i, s := range sites {
		d.Sites[i] = geom2d.WrapVec(s)
	}
	type candidate struct {
		site  int
		pos   geom2d.Vec
		dist2 float64
	}
	for i, p := range d.Sites {
		// Candidate generators: all replicas of all other sites within the
		// 3×3 neighbourhood, sorted by distance to p.
		cands := make([]candidate, 0, 9*(n-1))
		for j, q := range d.Sites {
			if j == i {
				continue
			}
			for dx := -1.0; dx <= 1; dx++ {
				for dy := -1.0; dy <= 1; dy++ {
					pos := geom2d.Vec{X: q.X + dx, Y: q.Y + dy}
					cands = append(cands, candidate{j, pos, pos.Sub(p).Norm2()})
				}
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].dist2 < cands[b].dist2 })

		// Start with the box the cell is guaranteed to fit in: bisectors
		// with p's own replicas bound it by ±1/2 in each coordinate.
		cell := geom2d.Square(p.X-0.5, p.Y-0.5, p.X+0.5, p.Y+0.5)
		cut := make([]candidate, 0, 16)
		for _, c := range cands {
			// Early exit: the bisector with c is at distance |c-p|/2 from p;
			// if that exceeds the cell's current radius it cannot cut.
			r2 := maxVertexDist2(cell, p)
			if c.dist2 > 4*r2 {
				break
			}
			// Keep the side closer to p: x·(q-p) <= (|q|²-|p|²)/2.
			nrm := c.pos.Sub(p)
			rhs := (c.pos.Norm2() - p.Norm2()) / 2
			clipped := geom2d.ClipHalfPlane(cell, nrm, rhs)
			if len(clipped) >= 3 {
				cell = clipped
				cut = append(cut, c)
			}
		}
		d.Cells[i] = cell

		// Adjacency: a cut candidate is a neighbour iff the final cell
		// retains an edge on its bisector (two vertices within eps).
		const eps = 1e-9
		seen := map[int]bool{}
		for _, c := range cut {
			nrm := c.pos.Sub(p)
			rhs := (c.pos.Norm2() - p.Norm2()) / 2
			onLine := 0
			for _, v := range cell {
				if diff := nrm.Dot(v) - rhs; diff > -eps && diff < eps {
					onLine++
				}
			}
			if onLine >= 2 && !seen[c.site] {
				seen[c.site] = true
				d.Adj[i] = append(d.Adj[i], c.site)
			}
		}
		sort.Ints(d.Adj[i])
	}
	return d
}

func maxVertexDist2(p geom2d.Polygon, c geom2d.Vec) float64 {
	m := 0.0
	for _, v := range p {
		if d := v.Sub(c).Norm2(); d > m {
			m = d
		}
	}
	return m
}

// N returns the number of sites.
func (d *Diagram) N() int { return len(d.Sites) }

// Locate returns the cell owning the point v: by the Voronoi property,
// the nearest site under the torus metric.
func (d *Diagram) Locate(v geom2d.Vec) int {
	v = geom2d.WrapVec(v)
	best, bestD := 0, geom2d.TorusDist2(v, d.Sites[0])
	for i := 1; i < len(d.Sites); i++ {
		if dd := geom2d.TorusDist2(v, d.Sites[i]); dd < bestD {
			best, bestD = i, dd
		}
	}
	return best
}

// CellArea returns the area of cell i.
func (d *Diagram) CellArea(i int) float64 { return d.Cells[i].Area() }

// TotalArea returns the sum of all cell areas (must be 1).
func (d *Diagram) TotalArea() float64 {
	t := 0.0
	for i := range d.Cells {
		t += d.CellArea(i)
	}
	return t
}

// MaxDegree returns the maximum Delaunay degree.
func (d *Diagram) MaxDegree() int {
	m := 0
	for _, a := range d.Adj {
		if len(a) > m {
			m = len(a)
		}
	}
	return m
}

// AvgDegree returns the average Delaunay degree (≈6 by Euler's formula,
// as the paper notes in §5.1).
func (d *Diagram) AvgDegree() float64 {
	t := 0
	for _, a := range d.Adj {
		t += len(a)
	}
	return float64(t) / float64(len(d.Adj))
}

// WrappedPieces returns cell i cut into unit-square pieces (for rendering
// and for intersection tests against other cells).
func (d *Diagram) WrappedPieces(i int) []geom2d.Polygon {
	return geom2d.SplitWrap(d.Cells[i], 1e-14)
}
