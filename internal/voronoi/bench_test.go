package voronoi

import (
	"testing"
)

func BenchmarkCompute256(b *testing.B) {
	sites := randomSites(256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Compute(sites)
	}
}

func BenchmarkLocate(b *testing.B) {
	d := Compute(randomSites(512, 2))
	pts := randomSites(1024, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Locate(pts[i%len(pts)])
	}
}
