package voronoi

import (
	"math"
	"math/rand/v2"
	"testing"

	"condisc/internal/geom2d"
)

func randomSites(n int, seed uint64) []geom2d.Vec {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	out := make([]geom2d.Vec, n)
	for i := range out {
		out[i] = geom2d.Vec{X: rng.Float64(), Y: rng.Float64()}
	}
	return out
}

// TestGridDiagram: a perfect k×k grid of sites yields square cells of area
// 1/k², each with exactly 4 edge-sharing neighbours.
func TestGridDiagram(t *testing.T) {
	const k = 4
	var sites []geom2d.Vec
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			sites = append(sites, geom2d.Vec{X: (float64(i) + 0.5) / k, Y: (float64(j) + 0.5) / k})
		}
	}
	d := Compute(sites)
	for i := range sites {
		if a := d.CellArea(i); math.Abs(a-1.0/(k*k)) > 1e-9 {
			t.Fatalf("cell %d area %v, want %v", i, a, 1.0/(k*k))
		}
		if len(d.Adj[i]) != 4 {
			t.Fatalf("cell %d has %d neighbours, want 4", i, len(d.Adj[i]))
		}
	}
}

// TestAreasSumToOne: cells tile the torus.
func TestAreasSumToOne(t *testing.T) {
	for _, n := range []int{2, 3, 10, 100, 300} {
		d := Compute(randomSites(n, uint64(n)))
		if a := d.TotalArea(); math.Abs(a-1) > 1e-6 {
			t.Errorf("n=%d: total area %v != 1", n, a)
		}
	}
}

// TestAdjacencySymmetric: i ∈ Adj[j] iff j ∈ Adj[i].
func TestAdjacencySymmetric(t *testing.T) {
	d := Compute(randomSites(200, 7))
	for i, lst := range d.Adj {
		for _, j := range lst {
			found := false
			for _, k := range d.Adj[j] {
				if k == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency asymmetric: %d->%d", i, j)
			}
		}
	}
}

// TestAverageDegreeNearSix: Euler's formula gives average Delaunay degree
// approaching 6 (§5.1).
func TestAverageDegreeNearSix(t *testing.T) {
	d := Compute(randomSites(500, 11))
	if avg := d.AvgDegree(); avg < 5.5 || avg > 6.5 {
		t.Errorf("average degree %v, want ≈6", avg)
	}
}

// TestLocateMatchesCells: the nearest-site rule and the polygon geometry
// agree — random points fall inside the polygon of their Locate winner.
func TestLocateMatchesCells(t *testing.T) {
	d := Compute(randomSites(100, 13))
	rng := rand.New(rand.NewPCG(17, 17))
	for trial := 0; trial < 2000; trial++ {
		v := geom2d.Vec{X: rng.Float64(), Y: rng.Float64()}
		owner := d.Locate(v)
		// The cell is in site-centered coordinates; shift v by integer
		// offsets to test containment.
		ok := false
		for dx := -1.0; dx <= 1 && !ok; dx++ {
			for dy := -1.0; dy <= 1 && !ok; dy++ {
				if d.Cells[owner].ContainsPoint(v.Add(geom2d.Vec{X: dx, Y: dy}), 1e-9) {
					ok = true
				}
			}
		}
		if !ok {
			t.Fatalf("point %v not inside its Locate cell %d", v, owner)
		}
	}
}

// TestTwoSites: the minimal diagram splits the torus into two cells of
// combined area 1.
func TestTwoSites(t *testing.T) {
	d := Compute([]geom2d.Vec{{X: 0.25, Y: 0.5}, {X: 0.75, Y: 0.5}})
	if math.Abs(d.TotalArea()-1) > 1e-9 {
		t.Errorf("two-site total area %v", d.TotalArea())
	}
	if len(d.Adj[0]) != 1 || d.Adj[0][0] != 1 {
		t.Errorf("two sites must be adjacent: %v", d.Adj)
	}
}

// TestNeighborCellsTouch: adjacent cells share boundary — verified by
// wrapped-piece bounding boxes overlapping within tolerance.
func TestNeighborCellsTouch(t *testing.T) {
	d := Compute(randomSites(64, 19))
	for i := 0; i < d.N(); i++ {
		for _, j := range d.Adj[i] {
			touch := false
			for _, pi := range d.WrappedPieces(i) {
				mini, maxi := pi.BBox()
				for _, pj := range d.WrappedPieces(j) {
					minj, maxj := pj.BBox()
					grow := geom2d.Vec{X: 1e-7, Y: 1e-7}
					if geom2d.BBoxOverlap(mini.Sub(grow), maxi.Add(grow), minj, maxj) {
						touch = true
					}
				}
			}
			if !touch {
				t.Fatalf("adjacent cells %d,%d do not touch", i, j)
			}
		}
	}
}

func TestComputePanicsOnOneSite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Compute([]geom2d.Vec{{X: 0.5, Y: 0.5}})
}

// TestSmoothSitesGiveBalancedCells: when sites are spread evenly the cell
// areas are Θ(1/n) — the §5.1 remark that smooth generators give cells of
// area Θ(1/n).
func TestSmoothSitesGiveBalancedCells(t *testing.T) {
	const k = 8 // 64 sites, perturbed grid
	rng := rand.New(rand.NewPCG(23, 23))
	var sites []geom2d.Vec
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			sites = append(sites, geom2d.Vec{
				X: (float64(i) + 0.5 + 0.3*(rng.Float64()-0.5)) / k,
				Y: (float64(j) + 0.5 + 0.3*(rng.Float64()-0.5)) / k,
			})
		}
	}
	d := Compute(sites)
	n := float64(len(sites))
	for i := range sites {
		a := d.CellArea(i) * n
		if a < 0.3 || a > 3 {
			t.Errorf("cell %d normalized area %v outside Θ(1)", i, a)
		}
	}
}
