// Package workload generates the request patterns used by the experiments:
// uniform and Zipf-skewed item demands (hot spots, §3), permutations
// (worst-case routing, §2.2.3), and churn traces (§4).
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Zipf samples item indices 0..k-1 with probability proportional to
// 1/(i+1)^s — the classic model for hot-spot popularity.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf distribution over k items with exponent s > 0.
func NewZipf(k int, s float64) *Zipf {
	if k < 1 {
		panic("workload: Zipf needs k >= 1")
	}
	cdf := make([]float64, k)
	acc := 0.0
	for i := 0; i < k; i++ {
		acc += 1 / math.Pow(float64(i+1), s)
		cdf[i] = acc
	}
	for i := range cdf {
		cdf[i] /= acc
	}
	return &Zipf{cdf: cdf}
}

// Sample draws one item index.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Demands draws total samples and returns the per-item counts.
func (z *Zipf) Demands(total int, rng *rand.Rand) []int {
	counts := make([]int, len(z.cdf))
	for i := 0; i < total; i++ {
		counts[z.Sample(rng)]++
	}
	return counts
}

// Request is one lookup request: origin server and item key.
type Request struct {
	Src  int
	Item string
}

// Batch generates a batch of total requests from uniform random origins
// over n servers, with items drawn Zipf(k, s). Item keys are "item<i>".
func Batch(n, total, k int, s float64, rng *rand.Rand) []Request {
	z := NewZipf(k, s)
	out := make([]Request, total)
	for i := range out {
		out[i] = Request{Src: rng.IntN(n), Item: fmt.Sprintf("item%d", z.Sample(rng))}
	}
	return out
}

// SingleHotBatch generates total requests for one item from random origins
// — the single-hotspot workload of §3.3.
func SingleHotBatch(n, total int, item string, rng *rand.Rand) []Request {
	out := make([]Request, total)
	for i := range out {
		out[i] = Request{Src: rng.IntN(n), Item: item}
	}
	return out
}

// ChurnEvent is one membership change.
type ChurnEvent struct {
	Join bool
}

// ChurnTrace returns length events; each is a join with probability
// joinBias (0.5 = stationary churn).
func ChurnTrace(length int, joinBias float64, rng *rand.Rand) []ChurnEvent {
	out := make([]ChurnEvent, length)
	for i := range out {
		out[i] = ChurnEvent{Join: rng.Float64() < joinBias}
	}
	return out
}
