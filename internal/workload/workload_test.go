package workload

import (
	"math/rand/v2"
	"testing"
)

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	z := NewZipf(100, 1.2)
	counts := z.Demands(20000, rng)
	if counts[0] <= counts[10] || counts[10] <= counts[90] {
		t.Errorf("Zipf counts not decreasing: c0=%d c10=%d c90=%d",
			counts[0], counts[10], counts[90])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 20000 {
		t.Errorf("total = %d", total)
	}
}

func TestZipfUniformLimit(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	z := NewZipf(10, 0.0001) // nearly uniform
	counts := z.Demands(10000, rng)
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("near-uniform Zipf: item %d count %d", i, c)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k=0")
		}
	}()
	NewZipf(0, 1)
}

func TestBatchShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	b := Batch(50, 1000, 20, 1.0, rng)
	if len(b) != 1000 {
		t.Fatalf("batch size %d", len(b))
	}
	items := map[string]bool{}
	for _, r := range b {
		if r.Src < 0 || r.Src >= 50 {
			t.Fatalf("src out of range: %d", r.Src)
		}
		items[r.Item] = true
	}
	if len(items) < 5 {
		t.Errorf("batch uses only %d distinct items", len(items))
	}
}

func TestSingleHotBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	b := SingleHotBatch(10, 100, "hot", rng)
	for _, r := range b {
		if r.Item != "hot" {
			t.Fatal("single-hot batch must use one item")
		}
	}
}

func TestChurnTraceBias(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	tr := ChurnTrace(10000, 0.7, rng)
	joins := 0
	for _, e := range tr {
		if e.Join {
			joins++
		}
	}
	if joins < 6700 || joins > 7300 {
		t.Errorf("join fraction %d/10000, want ~7000", joins)
	}
}
