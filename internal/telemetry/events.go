package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// An Event is one structured lifecycle record: a churn wave phase, a
// handoff prepare/stream/commit, a WAL rotation — the infrequent,
// narratable state changes /statusz shows and dhnode dumps on shutdown.
type Event struct {
	At     time.Time `json:"at"`
	Kind   string    `json:"kind"`
	Detail string    `json:"detail"`
	Seq    uint64    `json:"seq"`
}

// ringCap bounds the event ring: old events are overwritten, never
// accumulated — emitting is safe at any rate, forever.
const ringCap = 256

// eventRing is a bounded, internally synchronized event buffer. Events
// are cold-path by contract (lifecycle, not per-request), so a mutex is
// the right tool; the hot-path analyzer does not cover Emit.
type eventRing struct {
	mu   sync.Mutex
	buf  [ringCap]Event
	next uint64 // total events ever emitted; buf[(next-1)%ringCap] is newest
}

// Emitf formats and records one event, timestamped from the injected
// clock. Disabled telemetry drops events like it drops metric records.
func (r *Registry) Emitf(kind, format string, args ...any) {
	if !enabled.Load() {
		return
	}
	at := now()
	r.ring.mu.Lock()
	r.ring.buf[r.ring.next%ringCap] = Event{
		At:     at,
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
		Seq:    r.ring.next,
	}
	r.ring.next++
	r.ring.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Registry) Events() []Event {
	r.ring.mu.Lock()
	defer r.ring.mu.Unlock()
	n := r.ring.next
	start := uint64(0)
	if n > ringCap {
		start = n - ringCap
	}
	out := make([]Event, 0, n-start)
	for s := start; s < n; s++ {
		out = append(out, r.ring.buf[s%ringCap])
	}
	return out
}

// EventsDropped reports how many events fell off the ring.
func (r *Registry) EventsDropped() uint64 {
	r.ring.mu.Lock()
	defer r.ring.mu.Unlock()
	if r.ring.next <= ringCap {
		return 0
	}
	return r.ring.next - ringCap
}
