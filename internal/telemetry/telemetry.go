// Package telemetry is the runtime instrumentation layer: sharded atomic
// counters, gauges, and fixed-bucket lock-free histograms, collected in
// registries that render Prometheus text and JSON snapshots, plus a
// bounded structured event ring for churn/handoff lifecycle records.
//
// It is designed for two non-negotiable properties:
//
//   - Hot-path records never allocate, lock, or touch a map: Counter.Add,
//     Gauge.Set, and Histogram.Observe are a handful of atomic writes on
//     pre-resolved pointers. The hot functions are marked //condisc:hot
//     and the telemetryhot analyzer machine-checks that no allocation,
//     locking, map access, or non-atomic call creeps into them — that is
//     what lets the PR 7 wait-free read path carry instrumentation
//     without perturbation (CI gates BenchmarkReadUnderChurn with
//     telemetry on at >= 0.9x the disabled baseline).
//
//   - No package under the churntest determinism contract (condisc,
//     partition, handoff, dhgraph) ever reads a clock: every timestamp is
//     taken inside this package, from an injectable clock (SetClock), so
//     the detpath analyzer stays clean and the differential digests stay
//     byte-identical with telemetry enabled.
//
// Metric values are pure observers: nothing in the system reads them
// back into a decision, so enabling or disabling telemetry cannot change
// any externally visible state (the churntest digest arm enforces this).
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// enabled is the global kill switch: when false, every record call is a
// single atomic load and a branch. The on/off benchmark arm measures
// exactly this delta.
var enabled atomic.Bool

func init() {
	enabled.Store(true)
	f := time.Now
	clockPtr.Store(&f)
}

// SetEnabled turns all recording on or off (default on). Values already
// recorded are retained and still readable.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// clockPtr holds the clock every timestamp in this package is drawn
// from. Injection exists so the determinism-contract packages can emit
// timestamped events without ever referencing time.Now themselves, and
// so tests can freeze time.
var clockPtr atomic.Pointer[func() time.Time]

// SetClock injects the clock used for event timestamps, stamped gauges,
// and stopwatches. Passing nil restores the wall clock.
func SetClock(f func() time.Time) {
	if f == nil {
		f = time.Now
	}
	clockPtr.Store(&f)
}

func now() time.Time { return (*clockPtr.Load())() }

// counterShards is the fan-out of one Counter. Each shard sits on its
// own cache line so concurrent writers on different shards never false-
// share; 64 shards keep a counter at 4 KiB — registries hold few enough
// counters that the spread is worth the contention it removes.
const counterShards = 64

type counterShard struct {
	v atomic.Int64
	_ [56]byte // pad to one cache line
}

// A Counter is a monotonically increasing, sharded atomic counter.
// Concurrent Adds land on (probabilistically) distinct shards, chosen
// from the caller's stack address — goroutine stacks live in distinct
// allocations, so concurrent goroutines disperse across shards without
// any per-goroutine state, hashing, or allocation.
type Counter struct {
	name   string
	shards [counterShards]counterShard
}

// Add increments the counter by n.
//
//condisc:hot
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	var probe byte
	i := (uintptr(unsafe.Pointer(&probe)) >> 9) % counterShards
	c.shards[i].v.Add(n)
}

// Inc increments the counter by one.
//
//condisc:hot
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. It is a read-side snapshot: concurrent Adds may
// or may not be included, but nothing is ever double-counted.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// A Gauge is an instantaneous value (published epoch, in-flight
// sessions). Set/Add are single atomic writes.
type Gauge struct {
	name  string
	v     atomic.Int64
	stamp atomic.Int64 // clock nanos of the last SetStamped, 0 = never
}

// Set stores the gauge value.
//
//condisc:hot
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n (n may be negative).
//
//condisc:hot
func (g *Gauge) Add(n int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(n)
}

// SetStamped stores the value and records the clock, so Age can report
// how stale the value is. It reads the injected clock and therefore is
// not a hot-path call — it is meant for infrequent publishes (the epoch
// gauge is stamped once per churn wave).
func (g *Gauge) SetStamped(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
	g.stamp.Store(now().UnixNano())
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Age returns the time since the last SetStamped, or 0 if the gauge was
// never stamped.
func (g *Gauge) Age() time.Duration {
	s := g.stamp.Load()
	if s == 0 {
		return 0
	}
	return now().Sub(time.Unix(0, s))
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// histBuckets is the fixed bucket count of a Histogram: bucket i holds
// observations v with bits.Len64(v) == i, i.e. upper bound 2^i - 1
// (bucket 0 holds exactly v == 0). 65 buckets cover the whole int64
// range, so no observation is ever out of range and no resize can exist.
const histBuckets = 65

// A Histogram is a fixed-bucket, power-of-two histogram with an exact
// atomic maximum. Observe is bucket-indexed by bits.Len64 — no search,
// no float math, no allocation — and every field is an independent
// atomic, so concurrent observers never lock. The exact max (not just
// the max bucket bound) is kept because the experiments report worst-
// case hop counts against the paper's bounds.
type Histogram struct {
	name    string
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one value (negatives clamp to 0).
//
//condisc:hot
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (0 if none).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the average observed value (0 if none).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// A Stopwatch measures a duration using the injected clock, so callers
// under the determinism contract never touch time.Now themselves.
type Stopwatch struct {
	t0 time.Time
}

// StartTimer starts a stopwatch at the injected clock's current time.
func StartTimer() Stopwatch { return Stopwatch{t0: now()} }

// Observe records the elapsed nanoseconds into h.
func (s Stopwatch) Observe(h *Histogram) { h.Observe(s.Nanos()) }

// Nanos returns the elapsed nanoseconds.
func (s Stopwatch) Nanos() int64 { return now().Sub(s.t0).Nanoseconds() }
