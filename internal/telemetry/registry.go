package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// A Registry names and owns a set of metrics plus one event ring. The
// process-wide Default registry serves the simulator and single-node
// processes (dhnode); in-process clusters give each p2p node its own
// registry so per-node load skew stays observable (E32, /statusz).
//
// Registration (Counter/Gauge/Histogram lookup-or-create) takes a
// mutex and may allocate — callers resolve metrics once, at
// construction, and hold the returned pointer; only the record methods
// on the returned metric are hot-path safe.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors map[string]func() float64
	ring       eventRing
}

// Default is the process-wide registry.
var Default = NewRegistry()

// NewRegistry creates an empty registry with a bounded event ring.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		hists:      map[string]*Histogram{},
		collectors: map[string]func() float64{},
	}
}

// Counter returns the named counter, creating it on first use. A name
// may carry a literal Prometheus label set ("x_total{op=\"get\"}"); the
// text writer groups such series under one metric family.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// RegisterCollector installs a gauge computed at scrape time (for
// derived values like snapshot age). Re-registering a name replaces the
// previous collector.
func (r *Registry) RegisterCollector(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors[name] = fn
}

// Bucket is one non-empty histogram bucket in a snapshot: N
// observations with value <= Le (and > the previous bucket's Le).
type Bucket struct {
	Le uint64 `json:"le"`
	N  int64  `json:"n"`
}

// HistogramSnapshot is a point-in-time histogram read.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the snapshot's average value (0 if empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns the q-quantile (0 <= q <= 1) as the inclusive upper
// bound of the power-of-two bucket holding that rank — an upper
// estimate no finer than the bucket width — or -1 for an empty
// snapshot. The doctor compares hop p99 against the paper's O(log n)
// dilation bound with it.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return -1
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.N
		if cum >= rank {
			return float64(b.Le)
		}
	}
	return float64(h.Max)
}

// Merge folds another snapshot into a copy of this one: buckets sum by
// bound, Count/Sum add, Max takes the max. dhctl doctor merges per-node
// hop histograms into the cluster view with it.
func (h HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: h.Count + o.Count, Sum: h.Sum + o.Sum, Max: h.Max}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	i, j := 0, 0
	for i < len(h.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(h.Buckets) && h.Buckets[i].Le < o.Buckets[j].Le):
			out.Buckets = append(out.Buckets, h.Buckets[i])
			i++
		case i >= len(h.Buckets) || o.Buckets[j].Le < h.Buckets[i].Le:
			out.Buckets = append(out.Buckets, o.Buckets[j])
			j++
		default:
			out.Buckets = append(out.Buckets, Bucket{Le: h.Buckets[i].Le, N: h.Buckets[i].N + o.Buckets[j].N})
			i++
			j++
		}
	}
	return out
}

// Snapshot is a point-in-time read of a whole registry, shaped for JSON
// (/statusz) and for experiment post-processing.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Events     []Event                      `json:"events,omitempty"`
}

// bucketBound returns bucket i's inclusive upper bound: 0, 1, 3, 7, ...
func bucketBound(i int) uint64 {
	if i >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << i) - 1
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Sum: h.Sum(), Max: h.Max()}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: bucketBound(i), N: n})
			s.Count += n
		}
	}
	return s
}

// Quantile returns the q-quantile of the observed values as the upper
// bound of its power-of-two bucket, or -1 if nothing was observed.
// Cold path: reads every bucket.
func (h *Histogram) Quantile(q float64) float64 { return h.snapshot().Quantile(q) }

// Snapshot reads every metric and the event ring.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	collectors := make(map[string]func() float64, len(r.collectors))
	for n, fn := range r.collectors {
		collectors[n] = fn
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)+len(collectors)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
		Events:     r.Events(),
	}
	for _, c := range counters {
		s.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		s.Gauges[g.name] = float64(g.Value())
	}
	for n, fn := range collectors {
		s.Gauges[n] = fn()
	}
	for _, h := range hists {
		s.Histograms[h.name] = h.snapshot()
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// family splits a series name into its metric family and label part
// ("x_total{op=\"get\"}" -> "x_total", `{op="get"}`).
func family(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// labeled splices extra labels into a series name, before any existing
// label set ("h", `le="3"` -> `h{le="3"}`; `h{op="x"}` -> `h{op="x",le="3"}`).
func labeled(name, extra string) string {
	fam, labels := family(name)
	if labels == "" {
		return fam + "{" + extra + "}"
	}
	return fam + "{" + labels[1:len(labels)-1] + "," + extra + "}"
}

// escapeSeries re-encodes the label values of a series name so the
// emitted line is valid text-0.0.4: backslash, double-quote, and
// newline inside a label value are written as \\, \", and \n. Values
// escaped at registration round-trip unchanged (\\, \", \n decode and
// re-encode to themselves); raw hostile bytes — a literal newline or a
// trailing backslash smuggled into a label value — are escaped on the
// way out instead of corrupting the exposition framing. A name with no
// label block, or one too malformed to parse, is returned untouched.
func escapeSeries(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name
	}
	inner := name[i+1 : len(name)-1]
	var b strings.Builder
	b.Grow(len(name) + 8)
	b.WriteString(name[:i+1])
	pos := 0
	for pos < len(inner) {
		eq := strings.IndexByte(inner[pos:], '=')
		if eq < 0 {
			return name
		}
		b.WriteString(inner[pos : pos+eq+1])
		pos += eq + 1
		if pos >= len(inner) || inner[pos] != '"' {
			return name
		}
		pos++
		b.WriteByte('"')
		closed := false
		for pos < len(inner) {
			c := inner[pos]
			if c == '\\' && pos+1 < len(inner) {
				d := inner[pos+1]
				pos += 2
				switch d {
				case '\\':
					b.WriteString(`\\`)
				case '"':
					b.WriteString(`\"`)
				case 'n':
					b.WriteString(`\n`)
				default:
					// Unknown escape: the backslash was a raw byte.
					b.WriteString(`\\`)
					b.WriteByte(d)
				}
				continue
			}
			if c == '"' {
				closed = true
				pos++
				b.WriteByte('"')
				break
			}
			switch c {
			case '\\': // lone trailing backslash
				b.WriteString(`\\`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteByte(c)
			}
			pos++
		}
		if !closed {
			return name
		}
		if pos < len(inner) {
			if inner[pos] != ',' {
				return name
			}
			b.WriteByte(',')
			pos++
		}
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (one # TYPE line per family, histograms as cumulative _bucket
// series plus _sum/_count and an exact _max gauge). Output is sorted by
// family name; series of one family (label variants, buckets) stay in
// their natural order. Label values are re-escaped per text-0.0.4 on
// the way out (escapeSeries).
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	type famBlock struct {
		typ   string
		lines []string
	}
	fams := map[string]*famBlock{}
	add := func(fam, typ, line string) {
		fb := fams[fam]
		if fb == nil {
			fb = &famBlock{typ: typ}
			fams[fam] = fb
		}
		fb.lines = append(fb.lines, line)
	}
	for _, name := range sortedKeys(snap.Counters) {
		fam, _ := family(name)
		add(fam, "counter", fmt.Sprintf("%s %d\n", escapeSeries(name), snap.Counters[name]))
	}
	for _, name := range sortedKeys(snap.Gauges) {
		fam, _ := family(name)
		add(fam, "gauge", fmt.Sprintf("%s %g\n", escapeSeries(name), snap.Gauges[name]))
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		// The _bucket/_sum/_count/_max suffix goes on the family name,
		// before any label block the series carries.
		fam, labels := family(name)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.N
			add(fam, "histogram", fmt.Sprintf("%s %d\n",
				escapeSeries(labeled(fam+"_bucket"+labels, fmt.Sprintf("le=%q", fmt.Sprint(b.Le)))), cum))
		}
		add(fam, "histogram", fmt.Sprintf("%s %d\n", escapeSeries(labeled(fam+"_bucket"+labels, `le="+Inf"`)), h.Count))
		add(fam, "histogram", fmt.Sprintf("%s %d\n", escapeSeries(fam+"_sum"+labels), h.Sum))
		add(fam, "histogram", fmt.Sprintf("%s %d\n", escapeSeries(fam+"_count"+labels), h.Count))
		add(fam+"_max", "gauge", fmt.Sprintf("%s %d\n", escapeSeries(fam+"_max"+labels), h.Max))
	}
	famNames := make([]string, 0, len(fams))
	for f := range fams {
		famNames = append(famNames, f)
	}
	sort.Strings(famNames)
	for _, f := range famNames {
		fb := fams[f]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f, fb.typ); err != nil {
			return err
		}
		for _, l := range fb.lines {
			if _, err := io.WriteString(w, l); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
