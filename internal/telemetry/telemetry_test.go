package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrentSum(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	const goroutines, per = 16, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("Counter sum = %d, want %d", got, goroutines*per)
	}
	if r.Counter("x_total") != c {
		t.Fatal("re-registering a name must return the same counter")
	}
}

func TestHistogramBucketsAndMax(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hops")
	for _, v := range []int64{0, 1, 2, 3, 5, 9, 9, -4} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	if got := h.Max(); got != 9 {
		t.Fatalf("Max = %d, want 9", got)
	}
	if got := h.Sum(); got != 29 { // -4 clamps to 0
		t.Fatalf("Sum = %d, want 29", got)
	}
	s := h.snapshot()
	// Buckets: le=0 (0 and the clamped -4), le=1 (1), le=3 (2,3), le=7 (5), le=15 (9,9).
	want := []Bucket{{0, 2}, {1, 1}, {3, 2}, {7, 1}, {15, 2}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
}

func TestSetEnabledDropsRecords(t *testing.T) {
	r := NewRegistry()
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h")
	SetEnabled(false)
	c.Inc()
	g.Set(7)
	h.Observe(3)
	r.Emitf("k", "dropped")
	SetEnabled(true)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || len(r.Events()) != 0 {
		t.Fatal("disabled telemetry must drop every record")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled telemetry must record again")
	}
}

func TestEventRingBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < ringCap+10; i++ {
		r.Emitf("k", "e%d", i)
	}
	ev := r.Events()
	if len(ev) != ringCap {
		t.Fatalf("ring holds %d events, want %d", len(ev), ringCap)
	}
	if ev[0].Detail != "e10" || ev[len(ev)-1].Detail != "e265" {
		t.Fatalf("ring window [%s .. %s], want [e10 .. e265]", ev[0].Detail, ev[len(ev)-1].Detail)
	}
	if got := r.EventsDropped(); got != 10 {
		t.Fatalf("EventsDropped = %d, want 10", got)
	}
}

func TestInjectedClock(t *testing.T) {
	fixed := time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC)
	SetClock(func() time.Time { return fixed })
	defer SetClock(nil)
	r := NewRegistry()
	r.Emitf("k", "x")
	if at := r.Events()[0].At; !at.Equal(fixed) {
		t.Fatalf("event at %v, want injected %v", at, fixed)
	}
	g := r.Gauge("epoch")
	g.SetStamped(5)
	fixed = fixed.Add(3 * time.Second)
	if age := g.Age(); age != 3*time.Second {
		t.Fatalf("Age = %v, want 3s", age)
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter(`rpc_total{op="get"}`).Add(2)
	r.Counter(`rpc_total{op="put"}`).Add(3)
	r.Gauge("epoch").Set(9)
	r.RegisterCollector("age_seconds", func() float64 { return 1.5 })
	h := r.Histogram("hops")
	h.Observe(1)
	h.Observe(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE rpc_total counter\n",
		`rpc_total{op="get"} 2` + "\n",
		`rpc_total{op="put"} 3` + "\n",
		"# TYPE epoch gauge\n", "epoch 9\n",
		"age_seconds 1.5\n",
		"# TYPE hops histogram\n",
		`hops_bucket{le="1"} 1` + "\n",
		`hops_bucket{le="3"} 2` + "\n",
		`hops_bucket{le="+Inf"} 2` + "\n",
		"hops_sum 3\n", "hops_count 2\n",
		"# TYPE hops_max gauge\n", "hops_max 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, out)
		}
	}
	// The TYPE line of a family must precede its series.
	if strings.Index(out, "# TYPE rpc_total counter") > strings.Index(out, `rpc_total{op="get"}`) {
		t.Fatalf("TYPE line after series:\n%s", out)
	}
}

func TestSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(4)
	r.Gauge("g").Set(-2)
	r.Histogram("h").Observe(6)
	r.Emitf("wave", "publish epoch=3")
	s := r.Snapshot()
	if s.Counters["c"] != 4 || s.Gauges["g"] != -2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if hs := s.Histograms["h"]; hs.Count != 1 || hs.Max != 6 || hs.Mean() != 6 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	if len(s.Events) != 1 || s.Events[0].Kind != "wave" {
		t.Fatalf("events = %+v", s.Events)
	}
}

// The hot-path contract: recording allocates nothing. This is the unit-
// level half of the guarantee; the telemetryhot analyzer checks the
// source, and the CI bench gate checks the end-to-end read path.
func TestHotPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(-1)
		h.Observe(42)
	}); n != 0 {
		t.Fatalf("hot-path records allocated %.1f times per run, want 0", n)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 1023))
	}
}
