package telemetry

import (
	"strings"
	"testing"
)

// TestEscapeSeries drives the text-0.0.4 label-value escaper with
// hostile values: raw newlines, raw and pre-escaped backslashes and
// quotes, trailing backslashes, and multi-label sets.
func TestEscapeSeries(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"no labels", "plain_total", "plain_total"},
		{"clean label", `x_total{op="get"}`, `x_total{op="get"}`},
		{"two clean labels", `x_total{op="get",eng="mem"}`, `x_total{op="get",eng="mem"}`},
		{"raw newline in value", "x_total{path=\"a\nb\"}", `x_total{path="a\nb"}`},
		{"escaped newline round-trips", `x_total{path="a\nb"}`, `x_total{path="a\nb"}`},
		{"escaped quote round-trips", `x_total{q="say \"hi\""}`, `x_total{q="say \"hi\""}`},
		{"escaped backslash round-trips", `x_total{p="c:\\tmp"}`, `x_total{p="c:\\tmp"}`},
		{"raw backslash before plain char", `x_total{p="a\tb"}`, `x_total{p="a\\tb"}`},
		// `p="a\"}` is ambiguous: the backslash reads as an escaped
		// quote, the value never closes, and the name passes through
		// untouched rather than being mangled.
		{"trailing backslash reads as escape", "x_total{p=\"a\\\"}", "x_total{p=\"a\\\"}"},
		{"hostile mix across labels", "x_total{a=\"x\ny\",b=\"z\"}", `x_total{a="x\ny",b="z"}`},
		{"malformed: no closing quote", `x_total{op="get}`, `x_total{op="get}`},
		{"malformed: no equals", `x_total{op}`, `x_total{op}`},
		{"malformed: unquoted value", `x_total{op=get}`, `x_total{op=get}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := escapeSeries(tc.in); got != tc.want {
				t.Fatalf("escapeSeries(%q) = %q, want %q", tc.in, got, tc.want)
			}
		})
	}
}

// TestWritePrometheusHostileLabels registers metrics whose label values
// carry raw newlines, quotes-by-escape, and backslashes, and asserts
// the rendered exposition has one series per line with no raw newline
// or unescaped quote inside any value.
func TestWritePrometheusHostileLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total{path=\"a\nb\"}").Add(3)
	r.Gauge(`h_gauge{msg="say \"hi\""}`).Set(7)
	r.Histogram(`h_hist{dir="c:\\tmp"}`).Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Every sample line is `series value`: the value after the last
		// space must parse-shape as a number, which fails if a raw
		// newline split a series in half.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 || sp == len(line)-1 {
			t.Fatalf("malformed exposition line %q in:\n%s", line, out)
		}
	}
	for _, want := range []string{
		"h_total{path=\"a\\nb\"} 3\n",
		`h_gauge{msg="say \"hi\""} 7` + "\n",
		`h_hist_sum{dir="c:\\tmp"} 5` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_hist")
	for i := 0; i < 99; i++ {
		h.Observe(3) // bucket le=3
	}
	h.Observe(100) // bucket le=127
	snap := h.snapshot()
	if q := snap.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %g, want 3", q)
	}
	if q := snap.Quantile(0.99); q != 3 {
		t.Fatalf("p99 = %g, want 3 (99 of 100 samples <= 3)", q)
	}
	if q := snap.Quantile(1.0); q != 127 {
		t.Fatalf("p100 = %g, want 127", q)
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("Histogram.Quantile p50 = %g, want 3", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.99); q != -1 {
		t.Fatalf("empty quantile = %g, want -1", q)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("m_a")
	b := r.Histogram("m_b")
	a.Observe(1)
	a.Observe(5)
	b.Observe(5)
	b.Observe(1000)
	m := a.snapshot().Merge(b.snapshot())
	if m.Count != 4 || m.Sum != 1011 || m.Max != 1000 {
		t.Fatalf("merged count/sum/max = %d/%d/%d", m.Count, m.Sum, m.Max)
	}
	var n int64
	for _, bk := range m.Buckets {
		n += bk.N
	}
	if n != 4 {
		t.Fatalf("merged buckets hold %d samples, want 4", n)
	}
	if q := m.Quantile(0.5); q != 7 {
		t.Fatalf("merged p50 = %g, want 7 (le bucket of 5)", q)
	}
}
